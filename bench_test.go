// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices DESIGN.md calls
// out. Wall-clock numbers measure the simulator; the paper-shaped
// results are the modeled metrics reported alongside (modeled-ms,
// gain-pct, speedup-x).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// One experiment:
//
//	go test -bench=BenchmarkFig8 -benchtime=1x
package blugpu_test

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"blugpu/internal/bench"
	"blugpu/internal/bsort"
	"blugpu/internal/columnar"
	"blugpu/internal/gjoin"
	"blugpu/internal/gpu"
	"blugpu/internal/groupby"
	"blugpu/internal/sched"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// The shared harness amortizes dataset generation across benchmarks.
var (
	harnessOnce sync.Once
	harness     *bench.Harness
	harnessErr  error
)

func sharedHarness(b *testing.B) *bench.Harness {
	b.Helper()
	harnessOnce.Do(func() {
		// The reporting scale: small enough for laptop wall-clock, large
		// enough that the paper's crossovers and the device-memory gate
		// are exercised.
		harness, harnessErr = bench.NewHarness(bench.Config{SF: 0.05})
	})
	if harnessErr != nil {
		b.Fatal(harnessErr)
	}
	return harness
}

func runExperiment(b *testing.B, name string) {
	h := sharedHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(name, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkTable1MaskInit(b *testing.B) {
	in := &groupby.Input{
		NumRows: 0, Keys: []uint64{}, Hashes: []uint64{}, KeyBytes: 8,
		Aggs: []groupby.AggSpec{
			{Kind: groupby.Sum, Type: columnar.Int64},
			{Kind: groupby.Max, Type: columnar.Int64},
			{Kind: groupby.Min, Type: columnar.Int64},
		},
		Payloads: [][]uint64{{}, {}, {}},
	}
	for i := 0; i < b.N; i++ {
		if m := groupby.Mask(in); m[0] != groupby.EmptyKey {
			b.Fatal("bad mask")
		}
	}
}

func BenchmarkFig5Complex(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6Intermediate(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7ROLAP(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkTable2Serial(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkTable3Throughput(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFig8Concurrent(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9MemUtil(b *testing.B)      { runExperiment(b, "fig9") }

// BenchmarkFig5ModeledGain reports the headline complex-query gain as a
// metric so regressions in the calibrated shape show up in bench output.
func BenchmarkFig5ModeledGain(b *testing.B) {
	h := sharedHarness(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		runs, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Complex))
		if err != nil {
			b.Fatal(err)
		}
		var on, off float64
		for _, r := range runs {
			on += r.GPUOn.Seconds()
			off += r.GPUOff.Seconds()
		}
		gain = (1 - on/off) * 100
	}
	b.ReportMetric(gain, "gain-pct")
}

// --- ablations ---

// BenchmarkAblationPinnedTransfer measures the 4x pinned-vs-unpinned
// claim of Section 2.1.2.
func BenchmarkAblationPinnedTransfer(b *testing.B) {
	dev := gpu.NewDevice(0, vtime.TeslaK40())
	res, err := dev.Reserve(1 << 26)
	if err != nil {
		b.Fatal(err)
	}
	defer res.Release()
	buf, _ := res.AllocWords(1 << 20)
	src := make([]uint64, 1<<20)
	var pinned, unpinned vtime.Duration
	for i := 0; i < b.N; i++ {
		tp, _ := dev.CopyToDevice(buf, src, true)
		tu, _ := dev.CopyToDevice(buf, src, false)
		pinned, unpinned = tp, tu
	}
	b.ReportMetric(unpinned.Seconds()/pinned.Seconds(), "unpinned/pinned-x")
}

// BenchmarkAblationKernels sweeps the three group-by kernels across the
// regimes the moderator distinguishes: few groups, regular, many
// aggregates.
func BenchmarkAblationKernels(b *testing.B) {
	model := vtime.Default()
	cases := []struct {
		name   string
		groups int
		aggs   int
	}{
		{"few-groups", 12, 3},
		{"regular", 4096, 3},
		{"many-groups", 60000, 3},
		{"many-aggs", 4096, 8},
	}
	for _, c := range cases {
		in := syntheticInput(150_000, c.groups, c.aggs)
		for _, k := range []groupby.Kernel{groupby.K1Regular, groupby.K2Shared, groupby.K3RowLock} {
			b.Run(c.name+"/"+k.String(), func(b *testing.B) {
				dev := gpu.NewDevice(0, vtime.TeslaK40())
				var modeled vtime.Duration
				for i := 0; i < b.N; i++ {
					res, err := dev.Reserve(groupby.MemoryDemand(in))
					if err != nil {
						b.Fatal(err)
					}
					out, err := groupby.RunGPU(in, res, model, groupby.GPUOptions{Kernel: k, Pinned: true})
					res.Release()
					if err != nil {
						b.Skip("kernel ineligible:", err)
					}
					modeled = out.Stats.KernelTime
				}
				b.ReportMetric(modeled.Microseconds(), "modeled-us")
			})
		}
	}
}

// BenchmarkAblationModeratorRace compares the moderator's single choice
// with racing two kernels.
func BenchmarkAblationModeratorRace(b *testing.B) {
	model := vtime.Default()
	in := syntheticInput(150_000, 12, 4)
	for _, race := range []bool{false, true} {
		name := "single"
		if race {
			name = "race"
		}
		b.Run(name, func(b *testing.B) {
			dev := gpu.NewDevice(0, vtime.TeslaK40())
			var modeled vtime.Duration
			for i := 0; i < b.N; i++ {
				res, err := dev.Reserve(groupby.MemoryDemand(in) * 2)
				if err != nil {
					b.Fatal(err)
				}
				out, err := groupby.RunGPU(in, res, model, groupby.GPUOptions{Race: race, Pinned: true})
				res.Release()
				if err != nil {
					b.Fatal(err)
				}
				modeled = out.Stats.Modeled
			}
			b.ReportMetric(modeled.Microseconds(), "modeled-us")
		})
	}
}

// BenchmarkAblationKMVErrorPath measures the cost of a low group
// estimate: the error path doubles the table and re-runs.
func BenchmarkAblationKMVErrorPath(b *testing.B) {
	model := vtime.Default()
	for _, c := range []struct {
		name string
		est  uint64
	}{
		{"accurate-estimate", 1000},
		{"low-estimate", 300}, // 512 slots: one doubling fits the ~1000 groups
	} {
		b.Run(c.name, func(b *testing.B) {
			in := syntheticInput(100_000, 1000, 2)
			in.EstGroups = c.est
			dev := gpu.NewDevice(0, vtime.TeslaK40())
			var modeled vtime.Duration
			retried := 0
			for i := 0; i < b.N; i++ {
				res, err := dev.Reserve(groupby.MemoryDemand(in) + (64 << 20))
				if err != nil {
					b.Fatal(err)
				}
				out, err := groupby.RunGPU(in, res, model, groupby.GPUOptions{Kernel: groupby.K1Regular, Pinned: true})
				res.Release()
				if err != nil {
					b.Fatal(err)
				}
				modeled = out.Stats.Modeled
				retried = out.Stats.Retried
			}
			b.ReportMetric(modeled.Microseconds(), "modeled-us")
			b.ReportMetric(float64(retried), "retries")
		})
	}
}

// BenchmarkAblationSortCrossover sweeps job sizes across the CPU/GPU
// sort threshold.
func BenchmarkAblationSortCrossover(b *testing.B) {
	model := vtime.Default()
	for _, n := range []int{8_192, 65_536, 524_288} {
		rng := rand.New(rand.NewSource(int64(n)))
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = bsort.AppendInt64Key(nil, rng.Int63(), false)
		}
		src := bsort.NewBytesKeySource(keys)
		for _, useGPU := range []bool{false, true} {
			name := "cpu"
			if useGPU {
				name = "hybrid"
			}
			b.Run(name+"/"+itoa(n), func(b *testing.B) {
				cfg := bsort.Config{Model: model, Degree: 24, GPUThreshold: 1 << 14, Pinned: true}
				if useGPU {
					s, err := sched.New(gpu.NewDevice(0, vtime.TeslaK40()), gpu.NewDevice(1, vtime.TeslaK40()))
					if err != nil {
						b.Fatal(err)
					}
					cfg.Scheduler = s
				}
				var st bsort.Stats
				for i := 0; i < b.N; i++ {
					_, stats, err := bsort.Sort(src, cfg)
					if err != nil {
						b.Fatal(err)
					}
					st = stats
				}
				b.ReportMetric(st.Modeled.Microseconds(), "modeled-us")
				b.ReportMetric(float64(st.GPUJobs), "gpu-jobs")
			})
		}
	}
}

// BenchmarkAblationReservation measures admission contention: tasks
// whose combined demand exceeds the fleet either wait or fall back.
func BenchmarkAblationReservation(b *testing.B) {
	s, err := sched.New(gpu.NewDevice(0, vtime.TeslaK40()))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p1, err := s.TryPlace(7 << 30)
		if err != nil {
			b.Fatal(err)
		}
		// Second 7GB task cannot fit: fallback path.
		if _, err := s.TryPlace(7 << 30); err == nil {
			b.Fatal("expected rejection")
		}
		p1.Release()
	}
}

// BenchmarkGPUJoinVsCPU exercises the future-work join kernel.
func BenchmarkGPUJoinVsCPU(b *testing.B) {
	model := vtime.Default()
	build := make([]int64, 4096)
	probe := make([]int64, 1_000_000)
	for i := range build {
		build[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(9))
	for i := range probe {
		probe[i] = int64(rng.Intn(4096))
	}
	b.Run("cpu", func(b *testing.B) {
		var st gjoin.Stats
		for i := 0; i < b.N; i++ {
			_, stats, err := gjoin.RunCPU(build, probe, model, 24)
			if err != nil {
				b.Fatal(err)
			}
			st = stats
		}
		b.ReportMetric(st.Modeled.Microseconds(), "modeled-us")
	})
	b.Run("gpu", func(b *testing.B) {
		dev := gpu.NewDevice(0, vtime.TeslaK40())
		outCap := len(probe) + 16
		var st gjoin.Stats
		for i := 0; i < b.N; i++ {
			res, err := dev.Reserve(gjoin.MemoryDemand(len(build), len(probe), outCap))
			if err != nil {
				b.Fatal(err)
			}
			_, stats, err := gjoin.RunGPU(build, probe, res, model, outCap, true)
			res.Release()
			if err != nil {
				b.Fatal(err)
			}
			st = stats
		}
		b.ReportMetric(st.Modeled.Microseconds(), "modeled-us")
	})
}

// BenchmarkPartitionedGroupBy compares one device against the
// multi-device partitioned path.
func BenchmarkPartitionedGroupBy(b *testing.B) {
	model := vtime.Default()
	in := syntheticInput(400_000, 50_000, 4)
	b.Run("single-device", func(b *testing.B) {
		dev := gpu.NewDevice(0, vtime.TeslaK40())
		var modeled vtime.Duration
		for i := 0; i < b.N; i++ {
			res, err := dev.Reserve(groupby.MemoryDemand(in))
			if err != nil {
				b.Fatal(err)
			}
			out, err := groupby.RunGPU(in, res, model, groupby.GPUOptions{Pinned: true})
			res.Release()
			if err != nil {
				b.Fatal(err)
			}
			modeled = out.Stats.Modeled
		}
		b.ReportMetric(modeled.Microseconds(), "modeled-us")
	})
	b.Run("two-devices", func(b *testing.B) {
		d0 := gpu.NewDevice(0, vtime.TeslaK40())
		d1 := gpu.NewDevice(1, vtime.TeslaK40())
		var modeled vtime.Duration
		for i := 0; i < b.N; i++ {
			r0, err := d0.Reserve(groupby.MemoryDemand(in))
			if err != nil {
				b.Fatal(err)
			}
			r1, err := d1.Reserve(groupby.MemoryDemand(in))
			if err != nil {
				b.Fatal(err)
			}
			out, err := groupby.RunGPUPartitioned(in, []*gpu.Reservation{r0, r1}, model, groupby.GPUOptions{Pinned: true})
			r0.Release()
			r1.Release()
			if err != nil {
				b.Fatal(err)
			}
			modeled = out.Stats.Modeled
		}
		b.ReportMetric(modeled.Microseconds(), "modeled-us")
	})
}

// --- helpers ---

// syntheticInput builds a narrow-key task with mixed aggregate kinds.
func syntheticInput(rows, groups, aggs int) *groupby.Input {
	in := &groupby.Input{
		NumRows:   rows,
		Keys:      make([]uint64, rows),
		Hashes:    make([]uint64, rows),
		KeyBytes:  8,
		KeyBits:   20,
		EstGroups: uint64(groups),
	}
	kinds := []groupby.AggSpec{
		{Kind: groupby.Sum, Type: columnar.Int64},
		{Kind: groupby.Count},
		{Kind: groupby.Min, Type: columnar.Int64},
		{Kind: groupby.Max, Type: columnar.Int64},
		{Kind: groupby.Sum, Type: columnar.Float64},
	}
	for a := 0; a < aggs; a++ {
		spec := kinds[a%len(kinds)]
		in.Aggs = append(in.Aggs, spec)
		if spec.Kind == groupby.Count {
			in.Payloads = append(in.Payloads, nil)
			continue
		}
		p := make([]uint64, rows)
		for i := range p {
			p[i] = uint64(int64(i % 97))
		}
		in.Payloads = append(in.Payloads, p)
	}
	state := uint64(777)
	for i := 0; i < rows; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		k := (state >> 33) % uint64(groups)
		in.Keys[i] = k
		in.Hashes[i] = mix(k)
	}
	return in
}

func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func itoa(n int) string {
	if n >= 1<<20 {
		return "1M"
	}
	switch n {
	case 8_192:
		return "8k"
	case 65_536:
		return "64k"
	case 524_288:
		return "512k"
	}
	return "n"
}

// BenchmarkAblationFeedbackModerator compares the static moderator with
// the learning one after warm-up (the paper's future-work feature).
func BenchmarkAblationFeedbackModerator(b *testing.B) {
	model := vtime.Default()
	in := syntheticInput(120_000, 12, 4)
	run := func(b *testing.B, fb *groupby.FeedbackModerator) vtime.Duration {
		dev := gpu.NewDevice(0, vtime.TeslaK40())
		var modeled vtime.Duration
		for i := 0; i < b.N; i++ {
			res, err := dev.Reserve(groupby.MemoryDemand(in))
			if err != nil {
				b.Fatal(err)
			}
			out, err := groupby.RunGPU(in, res, model, groupby.GPUOptions{Pinned: true, Feedback: fb})
			res.Release()
			if err != nil {
				b.Fatal(err)
			}
			modeled = out.Stats.Modeled
		}
		return modeled
	}
	b.Run("static", func(b *testing.B) {
		m := run(b, nil)
		b.ReportMetric(m.Microseconds(), "modeled-us")
	})
	b.Run("learned", func(b *testing.B) {
		fb := groupby.NewFeedbackModerator()
		fb.Epsilon = 0
		// Warm up: teach it both kernels' costs for this signature.
		dev := gpu.NewDevice(0, vtime.TeslaK40())
		for _, k := range []groupby.Kernel{groupby.K1Regular, groupby.K2Shared} {
			res, err := dev.Reserve(groupby.MemoryDemand(in))
			if err != nil {
				b.Fatal(err)
			}
			out, err := groupby.RunGPU(in, res, vtime.Default(), groupby.GPUOptions{Kernel: k, Pinned: true, Feedback: fb})
			res.Release()
			if err != nil {
				b.Fatal(err)
			}
			fb.Observe(in, k, out.Stats.Modeled)
		}
		b.ResetTimer()
		m := run(b, fb)
		b.ReportMetric(m.Microseconds(), "modeled-us")
	})
}
