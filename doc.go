// Package blugpu is a reproduction of "Towards a Hybrid Design for Fast
// Query Processing in DB2 with BLU Acceleration Using Graphical
// Processing Units" (SIGMOD 2016): a BLU-style columnar SQL engine whose
// group-by/aggregation and sort operators execute hybrid across the host
// CPU and a fleet of simulated GPUs, with the paper's memory reservation
// discipline, pinned-memory staging, multi-GPU scheduling, kernel
// moderator, and the full evaluation harness for its tables and figures.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and the examples/ directory for runnable
// entry points. The library lives under internal/; the binaries under
// cmd/ (blubench, blushell, blugen) are the public surface.
package blugpu
