// Command tracecheck validates a Chrome trace-event JSON file produced
// by `blubench -trace` (or `\trace save` in blushell) against the
// trace-event schema the exporter promises: a JSON array of complete
// ("ph":"X") events, each with name, cat, non-negative ts/dur and
// pid/tid. It is the checker behind `make trace-smoke`.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"fmt"
	"os"

	"blugpu/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	if err := trace.ValidateChrome(data); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid trace-event JSON (%d bytes)\n", os.Args[1], len(data))
}
