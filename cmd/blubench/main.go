// Command blubench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	blubench [-sf 0.05] [-seed N] [-devices 2] [-degree 24] [all|table1|fig5|fig6|fig7|table2|table3|fig8|fig9]...
//
// With no experiment arguments it runs everything in paper order.
//
// -serve holds the process open after the experiments with the admin
// HTTP surface (/metrics, /healthz, /debug/queries) mounted, so the full
// run's telemetry can be scraped; -metrics-json writes the same snapshot
// to a file and exits. -qlog writes the sustained-serving experiments'
// structured query log (one JSON record per submission, with the
// wall-clock phase breakdown) to a file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blugpu/internal/bench"
	"blugpu/internal/explain"
	"blugpu/internal/metrics"
	"blugpu/internal/qlog"
	"blugpu/internal/trace"
)

func main() {
	sf := flag.Float64("sf", 0.05, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	degree := flag.Int("degree", 24, "intra-query parallelism")
	race := flag.Bool("race", false, "let the GPU moderator race a second kernel")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of every query to this file (load via chrome://tracing or ui.perfetto.dev)")
	serve := flag.String("serve", "", "after the experiments, serve /metrics, /healthz and /debug/queries on this host:port until interrupted")
	metricsJSON := flag.String("metrics-json", "", "write the final metrics snapshot as JSON to this file")
	qlogOut := flag.String("qlog", "", "write the sustained-serving experiments' structured query log (JSONL) to this file")
	explainOut := flag.String("explain", "", "run the explain suite and write its EXPLAIN ANALYZE reports as a JSON array to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: blubench [flags] [experiment]...\nexperiments: all %s\nflags:\n",
			strings.Join(bench.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
	}
	var queryLog *qlog.Logger
	if *qlogOut != "" {
		f, err := os.Create(*qlogOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blubench:", err)
			os.Exit(1)
		}
		defer f.Close()
		queryLog = qlog.New(f)
	}

	start := time.Now()
	fmt.Printf("generating dataset (sf=%g, seed=%d)...\n", *sf, *seed)
	h, err := bench.NewHarness(bench.Config{
		SF: *sf, Seed: *seed, Devices: *devices, Degree: *degree, Race: *race,
		Trace: tracer, QueryLog: queryLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "blubench:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset ready: %.1f MB across %d tables (%.1fs)\n",
		float64(h.Data.TotalBytes())/(1<<20), len(h.Data.Tables), time.Since(start).Seconds())

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "blubench:", err)
		os.Exit(1)
	}
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		if err := h.All(os.Stdout); err != nil {
			fail(err)
		}
	} else {
		for _, name := range args {
			if err := h.Run(name, os.Stdout); err != nil {
				fail(err)
			}
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := tracer.ExportChrome(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d queries, %d spans -> %s\n", tracer.Queries(), len(tracer.Spans()), *traceOut)
	}

	if *explainOut != "" {
		if err := writeExplainReports(h, *explainOut); err != nil {
			fail(err)
		}
	}

	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fail(err)
		}
		err = metrics.Collect(metrics.SourcesFromEngine(h.Eng)()).WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("metrics: snapshot -> %s\n", *metricsJSON)
	}

	if *serve != "" {
		srv, ln, err := metrics.Serve(*serve, metrics.SourcesFromEngine(h.Eng))
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("serving http://%s/metrics until interrupted\n", ln.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// explainSuite is the fixed query set the -explain flag audits: one
// plain group-by, one group-by feeding a sort+limit, and one filtered
// group-by, covering every operator the audit attributes.
var explainSuite = []struct{ name, sql string }{
	{"explain-groupby", "SELECT ss_store_sk, SUM(ss_net_paid) AS total FROM store_sales GROUP BY ss_store_sk"},
	{"explain-sort", "SELECT ss_item_sk, SUM(ss_net_paid) AS paid FROM store_sales GROUP BY ss_item_sk ORDER BY paid DESC LIMIT 10"},
	{"explain-filter", "SELECT sr_store_sk, SUM(sr_return_amt) AS total_ret, COUNT(*) AS cnt FROM store_returns WHERE sr_returned_date_sk BETWEEN 100 AND 400 GROUP BY sr_store_sk"},
}

// writeExplainReports runs the explain suite through EXPLAIN ANALYZE
// and writes the reports as one indented JSON array, the input format
// cmd/explaincheck validates.
func writeExplainReports(h *bench.Harness, path string) error {
	reports := make([]*explain.Report, 0, len(explainSuite))
	for _, q := range explainSuite {
		rep, _, err := h.Eng.ExplainAnalyzeNamed(q.name, q.sql)
		if err != nil {
			return fmt.Errorf("explain %s: %w", q.name, err)
		}
		reports = append(reports, rep)
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("explain: %d reports -> %s\n", len(reports), path)
	return nil
}
