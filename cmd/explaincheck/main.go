// Command explaincheck validates a JSON array of EXPLAIN ANALYZE
// reports produced by `blubench -explain`: every element must pass the
// schema validator, decode cleanly, and be fully reconciled — zero
// unattributed operators, zero orphaned device events, and no
// monitor-vs-span-tree counter mismatches. It is the checker behind
// `make explain-smoke`.
//
// Usage:
//
//	explaincheck reports.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"blugpu/internal/explain"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: explaincheck <reports.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "explaincheck:", err)
		os.Exit(1)
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		fmt.Fprintf(os.Stderr, "explaincheck: not a JSON array of reports: %v\n", err)
		os.Exit(1)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "explaincheck: empty report array")
		os.Exit(1)
	}
	fail := false
	for i, doc := range raw {
		if err := explain.ValidateReport(doc); err != nil {
			fmt.Fprintf(os.Stderr, "explaincheck: report %d: %v\n", i, err)
			fail = true
			continue
		}
		rep, err := explain.Decode(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explaincheck: report %d: %v\n", i, err)
			fail = true
			continue
		}
		if !rep.Reconciled() {
			fmt.Fprintf(os.Stderr,
				"explaincheck: report %d (%s): not reconciled: unattributed=%d orphans=%d mismatches=%v\n",
				i, rep.Query, rep.Unattributed, rep.Orphans, rep.Totals.Mismatches)
			fail = true
			continue
		}
		fmt.Printf("%s: %d operators, %.3f ms, reconciled\n", rep.Query, len(rep.Ops), rep.ModeledMs)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("%s: %d valid, reconciled reports (%d bytes)\n", os.Args[1], len(raw), len(data))
}
