package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blugpu/internal/serve"
	"blugpu/internal/workload"
)

// serveSmokeTest drives the full serving lifecycle over HTTP against
// this process's own listener: a multi-user BD Insights mix through
// POST /query (retrying shed submissions), one inline EXPLAIN ANALYZE,
// a graceful drain, the post-drain 503, and a final counter
// reconciliation via /debug/serve. `make serve-smoke` runs exactly this.
func serveSmokeTest(base string, server *serve.Server) error {
	mix := workload.UserMix{Simple: 14, Intermediate: 4, Complex: 2, QueriesPerUser: 2}
	streams := workload.BDInsightsStreams(mix)

	var submitted, admitted, shedRetries atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, mix.Users())
	for u, stream := range streams {
		wg.Add(1)
		go func(u int, stream []workload.Query) {
			defer wg.Done()
			session := fmt.Sprintf("smoke-user-%d", u)
			for _, q := range stream {
				for attempt := 0; ; attempt++ {
					if attempt > 500 {
						errs <- fmt.Errorf("%s: %s never admitted", session, q.ID)
						return
					}
					submitted.Add(1)
					code, body, err := postJSON(base+"/query", map[string]any{
						"sql": q.SQL, "session": session, "class": string(q.Class), "name": q.ID,
					})
					if err != nil {
						errs <- err
						return
					}
					if code == http.StatusTooManyRequests {
						shedRetries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						errs <- fmt.Errorf("%s: %s: HTTP %d: %.200s", session, q.ID, code, body)
						return
					}
					var resp struct {
						RowCount int    `json:"row_count"`
						Class    string `json:"class"`
					}
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- fmt.Errorf("%s: bad /query body: %w", session, err)
						return
					}
					if resp.Class != string(q.Class) {
						errs <- fmt.Errorf("%s: class %q echoed as %q", session, q.Class, resp.Class)
						return
					}
					admitted.Add(1)
					break
				}
			}
		}(u, stream)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Printf("bluserve: served %d queries over %d users (%d submissions, %d shed retries)\n",
		admitted.Load(), mix.Users(), submitted.Load(), shedRetries.Load())

	// One inline EXPLAIN ANALYZE through the serving path.
	submitted.Add(1)
	code, body, err := postJSON(base+"/query", map[string]any{
		"sql":     "SELECT ss_store_sk, SUM(ss_net_paid) AS total FROM store_sales GROUP BY ss_store_sk",
		"explain": true,
	})
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("explain query: HTTP %d: %.200s", code, body)
	}
	var withExplain struct {
		Explain json.RawMessage `json:"explain"`
	}
	if err := json.Unmarshal(body, &withExplain); err != nil || len(withExplain.Explain) == 0 {
		return fmt.Errorf("inline explain missing: err=%v body=%.200s", err, body)
	}
	admitted.Add(1)
	fmt.Println("bluserve: inline EXPLAIN ANALYZE ok")

	// Graceful drain over HTTP, then prove nothing new is admitted.
	code, body, err = postJSON(base+"/drain?deadline_ms=5000", nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/drain: HTTP %d: %.200s", code, body)
	}
	var rep serve.DrainReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("/drain body: %w", err)
	}
	if rep.ForcedCancels != 0 {
		return fmt.Errorf("drain force-canceled %d queries with no load in flight", rep.ForcedCancels)
	}
	submitted.Add(1)
	code, body, err = postJSON(base+"/query", map[string]any{"sql": "SELECT 1 FROM store_sales LIMIT 1"})
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("post-drain /query: HTTP %d %.200s, want 503", code, body)
	}
	fmt.Printf("bluserve: drain ok (flushed=%d, post-drain submissions refused)\n", rep.Flushed)

	// Reconcile: the server's ledger must match the client's count and
	// the four outcomes must partition it exactly.
	_, body, err = postJSON(base+"/debug/serve", nil)
	if err != nil {
		return err
	}
	snap := server.AdmissionSnapshot()
	var httpSnap struct {
		Submitted uint64 `json:"submitted"`
		Admitted  uint64 `json:"admitted"`
		Shed      uint64 `json:"shed"`
		TimedOut  uint64 `json:"timed_out"`
		Drained   uint64 `json:"drained"`
	}
	if err := json.Unmarshal(body, &httpSnap); err != nil {
		return fmt.Errorf("/debug/serve body: %w", err)
	}
	if httpSnap.Submitted != submitted.Load() {
		return fmt.Errorf("server saw %d submissions, client sent %d", httpSnap.Submitted, submitted.Load())
	}
	if got := httpSnap.Admitted + httpSnap.Shed + httpSnap.TimedOut + httpSnap.Drained; got != httpSnap.Submitted {
		return fmt.Errorf("outcomes do not partition submissions: %d+%d+%d+%d = %d != %d",
			httpSnap.Admitted, httpSnap.Shed, httpSnap.TimedOut, httpSnap.Drained, got, httpSnap.Submitted)
	}
	if snap.Admitted != httpSnap.Admitted || snap.Submitted != httpSnap.Submitted {
		return fmt.Errorf("/debug/serve disagrees with the in-process snapshot: %+v vs %+v", httpSnap, snap)
	}
	fmt.Printf("bluserve: ledger reconciled (submitted=%d admitted=%d shed=%d timed_out=%d drained=%d)\n",
		httpSnap.Submitted, httpSnap.Admitted, httpSnap.Shed, httpSnap.TimedOut, httpSnap.Drained)
	return nil
}

func postJSON(url string, payload map[string]any) (int, []byte, error) {
	var body []byte
	if payload != nil {
		body, _ = json.Marshal(payload)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}
