// Command bluserve runs the hybrid engine as a long-lived process with
// the serving and admin HTTP surfaces mounted on one listener:
//
//	POST /query       SQL in, JSON results out (admission-controlled;
//	                  "explain":true inlines the EXPLAIN ANALYZE report)
//	GET  /sessions    live session list
//	POST /drain       stop admitting, finish in-flight work
//	GET  /debug/serve admission counters (reconciliation snapshot)
//	GET  /debug/trace/{request-id}  one query's retained wall+vtime trace
//	GET  /debug/trace/slow          the top-K slowest retained traces
//	GET  /debug/prof/hotspots       top-N CPU hotspot digest over the
//	                                bounded profile-capture ring
//	GET  /debug/prof/capture        on-demand bounded CPU capture
//	/metrics          Prometheus text exposition (deterministic ordering),
//	                  including blu_go_* runtime, blu_slo_* burn rates,
//	                  blu_prof_* per-class resource attribution and
//	                  blu_device_* utilization
//	/metrics.json     the same snapshot as structured JSON
//	/healthz          scheduler device health + circuit-breaker state +
//	                  firing alerts (a severity-page alert answers 503)
//	/debug/queries    per-query latency rollups + recent requests
//	/debug/explain    EXPLAIN ANALYZE decision audit for ?q=<sql>
//	/debug/alerts     alert rule states + recent transitions (JSON)
//	/debug/dash       self-contained HTML dashboard over the embedded
//	                  time-series history (inline SVG sparklines)
//	/api/v1/query_range  Prometheus-compatible range queries over the
//	                     embedded history (also /api/v1/query)
//	/debug/pprof/     live profiling (only with -pprof)
//
// Usage:
//
//	bluserve [-addr 127.0.0.1:9090] [-sf 0.02] [-seed N] [-devices 2]
//	         [-degree 24] [-warmup 1] [-faults 0] [-queue 64]
//	         [-drain-ms 5000] [-slow-ms 250] [-qlog FILE]
//	         [-qlog-max-bytes 0] [-qlog-keep 3] [-obs-step 5s]
//	         [-obs-retention 15m] [-rules FILE] [-pprof]
//	         [-loop] [-smoke] [-serve-smoke]
//
// On start it generates the dataset, runs -warmup passes over the BD
// Insights suite so the first scrape already has data, then serves.
// SIGTERM/SIGINT drain gracefully: in-flight queries finish (up to
// -drain-ms), queued queries are refused, nothing new is admitted.
// -loop keeps replaying the suite in the background so gauges move.
// An embedded obsd store self-scrapes the registry every -obs-step into
// bounded ring history and evaluates alert rules (-rules FILE, or the
// built-in defaults derived from the SLO and breaker semantics); a
// firing severity-page alert flips /healthz to 503 and halves admission
// capacity. -qlog-max-bytes caps the query log file with keep-N
// rotation (FILE -> FILE.1 -> ... -> FILE.<keep>).
// -smoke binds an ephemeral port, scrapes every admin endpoint against
// its own server (including /healthz in both its 200 and 503 states),
// validates the exposition syntax, and exits — `make metrics-smoke`.
// -serve-smoke drives the full serving lifecycle over HTTP: a
// multi-user mix through POST /query with shed retries, a drain, and a
// counter reconciliation via /debug/serve — `make serve-smoke`.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blugpu/internal/bench"
	"blugpu/internal/explain"
	"blugpu/internal/fault"
	"blugpu/internal/metrics"
	"blugpu/internal/obsd"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/sched"
	"blugpu/internal/serve"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (host:port; port 0 picks a free port)")
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	degree := flag.Int("degree", 24, "intra-query parallelism")
	warmup := flag.Int("warmup", 1, "passes over the BD Insights suite before serving")
	faults := flag.Float64("faults", 0, "uniform GPU fault-injection rate per site (0 disables)")
	queue := flag.Int("queue", 0, "admission queue capacity (0 = default)")
	drainMs := flag.Int("drain-ms", 5000, "graceful-drain deadline on shutdown, in milliseconds")
	slowMs := flag.Int("slow-ms", 0, "slow-query wall threshold in milliseconds (0 = default 250, negative disables)")
	qlogPath := flag.String("qlog", "", `structured query log destination: a file path, or "stderr"`)
	qlogMaxBytes := flag.Int64("qlog-max-bytes", 0, "rotate the qlog file when it would exceed this size (0 = never)")
	qlogKeep := flag.Int("qlog-keep", 0, "rotated qlog generations to keep (0 = default 3)")
	obsStep := flag.Duration("obs-step", 5*time.Second, "embedded time-series scrape interval")
	obsRetention := flag.Duration("obs-retention", 15*time.Minute, "embedded time-series history retention")
	rulesPath := flag.String("rules", "", "alert rules file (default: built-in rules derived from SLO/breaker semantics)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the admin surface")
	loop := flag.Bool("loop", false, "keep replaying the workload in the background while serving")
	smoke := flag.Bool("smoke", false, "self-scrape every admin endpoint, validate, and exit (CI smoke test)")
	serveSmoke := flag.Bool("serve-smoke", false, "drive the full serving lifecycle against this process and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bluserve:", err)
		os.Exit(1)
	}

	cfg := bench.Config{SF: *sf, Seed: *seed, Devices: *devices, Degree: *degree, Trace: trace.New()}
	if *faults > 0 {
		cfg.Faults = fault.New(fault.Config{
			Seed: *seed, Reserve: *faults, H2D: *faults, D2H: *faults, Kernel: *faults,
		})
	}
	fmt.Printf("bluserve: generating dataset (sf=%g, seed=%d)...\n", *sf, *seed)
	h, err := bench.NewHarness(cfg)
	if err != nil {
		fail(err)
	}

	suite := workload.BDInsights()
	runSuite := func() error {
		_, err := h.RunSet(suite)
		return err
	}
	for i := 0; i < *warmup; i++ {
		if err := runSuite(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("bluserve: warmup done (%d passes over %d queries)\n", *warmup, len(suite))

	// Always-on resource attribution: every admitted query's phases are
	// billed per class into the accountant, and the captor keeps a
	// bounded ring of periodic CPU-profile windows for the
	// /debug/prof/* surfaces.
	acct := prof.NewAccountant()
	captor := prof.NewCaptor(acct, prof.Options{})
	captor.Start()
	defer captor.Stop()

	// The obsd store is built below (its Sources closure needs the
	// server); serve and healthz key off it through late-bound hooks.
	var obs *obsd.Store

	serveCfg := serve.Config{
		QueueCapacity: *queue,
		DrainDeadline: time.Duration(*drainMs) * time.Millisecond,
		SlowQuery:     time.Duration(*slowMs) * time.Millisecond,
		Prof:          acct,
		PagesFiring: func() int {
			if obs == nil {
				return 0
			}
			return obs.PagesFiring()
		},
	}
	if *qlogPath != "" {
		switch *qlogPath {
		case "stderr", "-":
			serveCfg.Log = qlog.New(os.Stderr)
		default:
			// With a byte cap the destination is a rotating file
			// (FILE -> FILE.1 -> ...); without one, a plain append.
			var w io.WriteCloser
			if *qlogMaxBytes > 0 {
				w, err = qlog.OpenFile(*qlogPath, qlog.Config{MaxBytes: *qlogMaxBytes, Keep: *qlogKeep})
			} else {
				w, err = os.OpenFile(*qlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			}
			if err != nil {
				fail(err)
			}
			defer w.Close()
			serveCfg.Log = qlog.New(w)
		}
	}
	server, err := serve.New(h.Eng, serveCfg)
	if err != nil {
		fail(err)
	}

	// The admin surface rides the serve mux; every scrape carries the
	// admission counters, a live Go runtime sample, and the obsd/alert
	// self-accounting alongside the engine metrics.
	engineSources := metrics.SourcesFromEngine(h.Eng)
	sources := func() metrics.Sources {
		src := engineSources()
		src.Admission = server.AdmissionSnapshot
		src.Runtime = metrics.SampleRuntime
		src.Prof = acct
		src.Captor = captor
		if obs != nil {
			src.Obs = obs.ObsSnapshot
		}
		return src
	}

	// Embedded observability: self-scrape the registry into ring history
	// and evaluate alert rules on every scrape. Alert transitions land in
	// the qlog, blu_alerts_*, /debug/alerts and the dash; a firing page
	// flips /healthz and halves admission (the hooks wired above).
	obs = obsd.New(obsd.Options{
		Step:      *obsStep,
		Retention: *obsRetention,
		Sources:   sources,
		Log:       serveCfg.Log,
		Prof:      acct,
	})
	rules := obsd.DefaultRules(*obsStep)
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			fail(err)
		}
		if rules, err = obsd.ParseRules(data); err != nil {
			fail(err)
		}
	}
	if err := obs.SetRules(rules); err != nil {
		fail(err)
	}
	obs.Scrape() // synchronous first sample so the surfaces answer immediately
	obs.Start()
	defer obs.Stop()

	admin := metrics.AdminMux(sources)
	obs.Mount(admin)
	if *pprofFlag {
		metrics.MountPprof(admin)
	}
	handler := serve.NewMux(server, admin)

	bind := *addr
	if *smoke || *serveSmoke {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("bluserve: serving %s/query %s/metrics %s/healthz\n", base, base, base)

	if *smoke {
		if err := smokeTest(base, h); err != nil {
			fail(err)
		}
		fmt.Println("bluserve: metrics smoke ok")
		return
	}
	if *serveSmoke {
		if err := serveSmokeTest(base, server); err != nil {
			fail(err)
		}
		fmt.Println("bluserve: serve smoke ok")
		return
	}

	if *loop {
		go func() {
			for {
				if err := runSuite(); err != nil {
					fmt.Fprintln(os.Stderr, "bluserve: workload loop:", err)
					return
				}
				time.Sleep(time.Second)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nbluserve: draining")
	rep := server.Drain(time.Duration(*drainMs) * time.Millisecond)
	fmt.Printf("bluserve: drained (flushed=%d forced=%d waited=%s)\n",
		rep.Flushed, rep.ForcedCancels, rep.Waited.Round(time.Millisecond))
}

// smokeTest scrapes every admin endpoint on the freshly started server
// and validates what comes back: /metrics must parse as exposition
// format and cover the acceptance families, /healthz must answer 200
// while healthy AND 503 once every breaker is tripped (recovering to
// 200 afterwards), /debug/queries must show the warmed-up queries.
func smokeTest(base string, h *bench.Harness) error {
	// One query through the serving path first: the blu_prof_* wall
	// ledger only carries series for classes that actually ran, and the
	// warmup passes go straight to the engine, not through admission.
	qbody := strings.NewReader(`{"sql":"SELECT ss_store_sk, SUM(ss_net_paid) AS total FROM store_sales GROUP BY ss_store_sk","session":"smoke"}`)
	resp, err := http.Post(base+"/query", "application/json", qbody)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/query: HTTP %d", resp.StatusCode)
	}

	body, code, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/metrics: HTTP %d", code)
	}
	if err := metrics.ValidateExposition(body); err != nil {
		return fmt.Errorf("/metrics: invalid exposition: %w", err)
	}
	for _, family := range []string{
		"blu_kernel_executions_total",
		"blu_transfer_bytes_total",
		"blu_sched_placements_total",
		"blu_device_memory_total_bytes",
		"blu_query_latency_seconds_bucket",
		"blu_optimizer_decisions_total",
		"blu_kmv_relative_error_count",
		"blu_serve_queue_depth",
		"blu_serve_submitted_total",
		"blu_go_goroutines",
		"blu_go_gc_cycles_total",
		"blu_prof_wall_seconds_total",
		"blu_prof_captures_total",
		"blu_device_busy_ratio",
		"blu_device_reserved_bytes",
		"blu_obsd_scrapes_total",
		"blu_alerts_rules",
	} {
		if !contains(body, family) {
			return fmt.Errorf("/metrics: family %s missing from scrape", family)
		}
	}
	fmt.Printf("bluserve: /metrics ok (%d bytes, valid exposition)\n", len(body))

	// The profile surfaces: the hotspot digest always answers over the
	// ring; an on-demand capture may race the periodic captor for the
	// process profiler, in which case it reports the conflict (409).
	body, code, err = get(base + "/debug/prof/hotspots")
	if err != nil {
		return err
	}
	if code != http.StatusOK || !contains(body, "prof hotspots:") {
		return fmt.Errorf("/debug/prof/hotspots: HTTP %d: %.120s", code, body)
	}
	body, code, err = get(base + "/debug/prof/capture?window=50ms")
	if err != nil {
		return err
	}
	if code != http.StatusOK && code != http.StatusConflict {
		return fmt.Errorf("/debug/prof/capture: HTTP %d: %.120s", code, body)
	}
	fmt.Printf("bluserve: /debug/prof ok (capture HTTP %d)\n", code)

	body, code, err = get(base + "/healthz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/healthz: HTTP %d: %s", code, body)
	}
	if !contains(body, `"status"`) {
		return fmt.Errorf("/healthz: no status in %s", body)
	}
	fmt.Printf("bluserve: /healthz ok: %s", body)

	// Trip every breaker: all devices quarantined must turn /healthz
	// into a 503 (the same signal the admission shedder keys off).
	sch := h.Eng.Scheduler()
	for _, dev := range sch.Devices() {
		for i := 0; i < sched.DefaultFailThreshold; i++ {
			sch.ReportFailure(dev)
		}
	}
	body, code, err = get(base + "/healthz")
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("/healthz with all breakers open: HTTP %d %s, want 503", code, body)
	}
	if !contains(body, metrics.HealthUnhealthy) {
		return fmt.Errorf("/healthz with all breakers open: no unhealthy status in %s", body)
	}
	fmt.Printf("bluserve: /healthz unhealthy ok: %s", body)

	// Recover: advance the virtual clock past probation and report a
	// successful probe per device — the breakers close again.
	sch.Advance(10 * 60) // ten virtual minutes, far beyond any probation
	for _, dev := range sch.Devices() {
		sch.ReportSuccess(dev)
	}
	body, code, err = get(base + "/healthz")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/healthz after recovery: HTTP %d %s, want 200", code, body)
	}
	fmt.Printf("bluserve: /healthz recovered: %s", body)

	body, code, err = get(base + "/debug/queries")
	if err != nil {
		return err
	}
	if code != http.StatusOK || !contains(body, "queries:") {
		return fmt.Errorf("/debug/queries: HTTP %d: %.120s", code, body)
	}
	fmt.Printf("bluserve: /debug/queries ok (%d bytes)\n", len(body))

	// The embedded observability surfaces: alert states as JSON, the
	// self-contained dashboard, and a Prometheus-compatible range query
	// over the scraped history.
	body, code, err = get(base + "/debug/alerts")
	if err != nil {
		return err
	}
	if code != http.StatusOK || !contains(body, `"rules"`) {
		return fmt.Errorf("/debug/alerts: HTTP %d: %.120s", code, body)
	}
	fmt.Printf("bluserve: /debug/alerts ok (%d bytes)\n", len(body))
	body, code, err = get(base + "/debug/dash")
	if err != nil {
		return err
	}
	if code != http.StatusOK || !contains(body, "<svg") {
		return fmt.Errorf("/debug/dash: HTTP %d: %.120s", code, body)
	}
	fmt.Printf("bluserve: /debug/dash ok (%d bytes)\n", len(body))
	now := time.Now().Unix()
	body, code, err = get(fmt.Sprintf("%s/api/v1/query_range?query=blu_serve_queue_depth&start=%d&end=%d&step=5", base, now-600, now))
	if err != nil {
		return err
	}
	if code != http.StatusOK || !contains(body, `"status":"success"`) {
		return fmt.Errorf("/api/v1/query_range: HTTP %d: %.200s", code, body)
	}
	fmt.Printf("bluserve: /api/v1/query_range ok (%d bytes)\n", len(body))

	sql := "SELECT ss_store_sk, SUM(ss_net_paid) AS total FROM store_sales GROUP BY ss_store_sk"
	body, code, err = get(base + "/debug/explain?q=" + url.QueryEscape(sql))
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/debug/explain: HTTP %d: %.200s", code, body)
	}
	if err := explain.ValidateReport(body); err != nil {
		return fmt.Errorf("/debug/explain: %w", err)
	}
	rep, err := explain.Decode(body)
	if err != nil {
		return fmt.Errorf("/debug/explain: %w", err)
	}
	if !rep.Reconciled() {
		return fmt.Errorf("/debug/explain: report not reconciled: unattributed=%d orphans=%d mismatches=%v",
			rep.Unattributed, rep.Orphans, rep.Totals.Mismatches)
	}
	fmt.Printf("bluserve: /debug/explain ok (%d bytes, %d operators, reconciled)\n", len(body), len(rep.Ops))
	return nil
}

func get(url string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func contains(body []byte, s string) bool {
	return strings.Contains(string(body), s)
}
