// Command blugen generates the TPC-DS-derived dataset and reports its
// shape: table sizes, column statistics, and the workload query sets.
//
// Usage:
//
//	blugen [-sf 0.05] [-seed N] [-stats table] [-queries bd|rolap]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blugpu/internal/optimizer"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.05, "scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	statsTable := flag.String("stats", "", "print column statistics for one table")
	queries := flag.String("queries", "", "print a query set: bd | rolap")
	flag.Parse()

	if *queries != "" {
		printQueries(*queries)
		return
	}

	start := time.Now()
	d := workload.Generate(*sf, *seed)
	fmt.Printf("generated sf=%g in %.2fs: %.1f MB total\n\n",
		*sf, time.Since(start).Seconds(), float64(d.TotalBytes())/(1<<20))

	if *statsTable != "" {
		t := d.Table(*statsTable)
		if t == nil {
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *statsTable)
			os.Exit(1)
		}
		ts := optimizer.Analyze(t)
		fmt.Printf("%s: %d rows\n", ts.Table, ts.Rows)
		fmt.Printf("%-28s %-9s %-12s %-8s %-14s %s\n", "column", "type", "ndv", "nulls", "min", "max")
		for _, c := range t.Columns() {
			cs := ts.Columns[c.Name()]
			min, max := "", ""
			switch cs.Type.String() {
			case "int64":
				min, max = fmt.Sprint(cs.MinI), fmt.Sprint(cs.MaxI)
			case "float64":
				min, max = fmt.Sprintf("%.2f", cs.MinF), fmt.Sprintf("%.2f", cs.MaxF)
			}
			fmt.Printf("%-28s %-9s %-12d %-8d %-14s %s\n",
				cs.Name, cs.Type, cs.NDV, cs.Nulls, min, max)
		}
		return
	}

	fmt.Println("fact tables:")
	for _, n := range workload.FactNames() {
		t := d.Table(n)
		fmt.Printf("  %-20s %10d rows  %10.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
	}
	fmt.Println("dimension tables:")
	for _, n := range workload.DimensionNames() {
		t := d.Table(n)
		fmt.Printf("  %-24s %8d rows  %10.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
	}
}

func printQueries(set string) {
	var qs []workload.Query
	switch set {
	case "bd":
		qs = workload.BDInsights()
	case "rolap":
		qs = workload.CognosROLAP()
	default:
		fmt.Fprintf(os.Stderr, "unknown query set %q (want bd or rolap)\n", set)
		os.Exit(1)
	}
	for _, q := range qs {
		heavy := ""
		if q.MemoryHeavy {
			heavy = "  [memory-heavy]"
		}
		fmt.Printf("-- %s (%s)%s\n%s\n\n", q.ID, q.Class, heavy, q.SQL)
	}
}
