// Command blugen generates the TPC-DS-derived dataset and reports its
// shape: table sizes, column statistics, and the workload query sets.
//
// Usage:
//
//	blugen [-sf 0.05] [-seed N] [-stats table] [-hist table.column] [-queries bd|rolap]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/optimizer"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.05, "scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	statsTable := flag.String("stats", "", "print column statistics for one table")
	hist := flag.String("hist", "", "print a value histogram for one numeric column, as table.column")
	queries := flag.String("queries", "", "print a query set: bd | rolap")
	flag.Parse()

	if *queries != "" {
		printQueries(*queries)
		return
	}

	start := time.Now()
	d := workload.Generate(*sf, *seed)
	fmt.Printf("generated sf=%g in %.2fs: %.1f MB total\n\n",
		*sf, time.Since(start).Seconds(), float64(d.TotalBytes())/(1<<20))

	if *hist != "" {
		if err := printHist(d, *hist); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *statsTable != "" {
		t := d.Table(*statsTable)
		if t == nil {
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *statsTable)
			os.Exit(1)
		}
		ts := optimizer.Analyze(t)
		fmt.Printf("%s: %d rows\n", ts.Table, ts.Rows)
		fmt.Printf("%-28s %-9s %-12s %-8s %-14s %s\n", "column", "type", "ndv", "nulls", "min", "max")
		for _, c := range t.Columns() {
			cs := ts.Columns[c.Name()]
			min, max := "", ""
			switch cs.Type.String() {
			case "int64":
				min, max = fmt.Sprint(cs.MinI), fmt.Sprint(cs.MaxI)
			case "float64":
				min, max = fmt.Sprintf("%.2f", cs.MinF), fmt.Sprintf("%.2f", cs.MaxF)
			}
			fmt.Printf("%-28s %-9s %-12d %-8d %-14s %s\n",
				cs.Name, cs.Type, cs.NDV, cs.Nulls, min, max)
		}
		return
	}

	fmt.Println("fact tables:")
	for _, n := range workload.FactNames() {
		t := d.Table(n)
		fmt.Printf("  %-20s %10d rows  %10.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
	}
	fmt.Println("dimension tables:")
	for _, n := range workload.DimensionNames() {
		t := d.Table(n)
		fmt.Printf("  %-24s %8d rows  %10.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
	}
}

// printHist renders an equal-width value histogram for a numeric column —
// a quick way to eyeball the generated data's skew (group-by kernel choice
// is sensitive to it).
func printHist(d *workload.Dataset, spec string) error {
	name, col, ok := strings.Cut(spec, ".")
	if !ok {
		return fmt.Errorf("blugen: -hist wants table.column, got %q", spec)
	}
	t := d.Table(name)
	if t == nil {
		return fmt.Errorf("blugen: unknown table %q", name)
	}
	c := t.Column(col)
	if c == nil {
		return fmt.Errorf("blugen: table %s has no column %q", name, col)
	}
	var vals []float64
	nulls := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			nulls++
			continue
		}
		switch cc := c.(type) {
		case *columnar.Int64Column:
			vals = append(vals, float64(cc.Int64(i)))
		case *columnar.Float64Column:
			vals = append(vals, cc.Float64(i))
		default:
			return fmt.Errorf("blugen: column %s.%s is %s, -hist wants a numeric column", name, col, c.Type())
		}
	}
	if len(vals) == 0 {
		fmt.Printf("%s.%s: no non-null values\n", name, col)
		return nil
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	const buckets = 16
	counts := make([]int, buckets)
	width := (hi - lo) / buckets
	for _, v := range vals {
		b := buckets - 1
		if width > 0 {
			b = int((v - lo) / width)
			if b >= buckets {
				b = buckets - 1
			}
		}
		counts[b]++
	}
	peak := 0
	for _, n := range counts {
		if n > peak {
			peak = n
		}
	}
	fmt.Printf("%s.%s: %d values (%d null), min=%g max=%g\n", name, col, len(vals), nulls, lo, hi)
	for b := 0; b < buckets; b++ {
		bar := strings.Repeat("#", int(40*float64(counts[b])/float64(peak)))
		fmt.Printf("  [%12.4g, %12.4g) %8d |%-40s|\n", lo+float64(b)*width, lo+float64(b+1)*width, counts[b], bar)
	}
	return nil
}

func printQueries(set string) {
	var qs []workload.Query
	switch set {
	case "bd":
		qs = workload.BDInsights()
	case "rolap":
		qs = workload.CognosROLAP()
	default:
		fmt.Fprintf(os.Stderr, "unknown query set %q (want bd or rolap)\n", set)
		os.Exit(1)
	}
	for _, q := range qs {
		heavy := ""
		if q.MemoryHeavy {
			heavy = "  [memory-heavy]"
		}
		fmt.Printf("-- %s (%s)%s\n%s\n\n", q.ID, q.Class, heavy, q.SQL)
	}
}
