// Command fusecheck is the data-path fusion smoke: it boots two
// harnesses over the same generated dataset — one with the fused device
// pipeline, one with it disabled — runs the full BD Insights and Cognos
// ROLAP query sets through both, and demands
//
//   - byte-for-byte identical result tables (fusion is a pure transfer
//     optimization; any drift is a correctness bug), and
//   - a real H2D byte reduction with at least one fused chain executed
//     (otherwise the fused path silently stopped engaging).
//
// Exit status: 0 when both hold, 1 on a mismatch or a missing win, 2 on
// operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blugpu/internal/bench"
	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	degree := flag.Int("degree", 24, "intra-query parallelism")
	flag.Parse()

	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fusecheck: "+format+"\n", args...)
		os.Exit(code)
	}

	mk := func(noFusion bool) *bench.Harness {
		h, err := bench.NewHarness(bench.Config{
			SF: *sf, Seed: *seed, Devices: *devices, Degree: *degree,
			NoFusion: noFusion,
		})
		if err != nil {
			fail(2, "harness (fusion=%v): %v", !noFusion, err)
		}
		return h
	}
	fmt.Printf("fusecheck: sf=%g seed=%d devices=%d degree=%d\n", *sf, *seed, *devices, *degree)
	fused, staged := mk(false), mk(true)

	qs := append(workload.BDInsights(), workload.CognosROLAP()...)
	mismatches := 0
	for _, q := range qs {
		want, err := run(staged.Eng, q)
		if err != nil {
			fail(2, "%s (fusion off): %v", q.ID, err)
		}
		got, err := run(fused.Eng, q)
		if err != nil {
			fail(2, "%s (fusion on): %v", q.ID, err)
		}
		if want != got {
			mismatches++
			fmt.Fprintf(os.Stderr, "fusecheck: %s: fused result differs from staged\n", q.ID)
		}
	}
	if mismatches > 0 {
		fail(1, "%d of %d queries differ between fused and staged runs", mismatches, len(qs))
	}
	fmt.Printf("fusecheck: %d queries byte-identical across fused and staged runs\n", len(qs))

	chains, saved, uploaded := fused.Eng.Monitor().FusedStats()
	h2dOn, _ := fused.Eng.Monitor().Transfers()
	h2dOff, _ := staged.Eng.Monitor().Transfers()
	fmt.Printf("fusecheck: fused chains=%d saved=%d B cache fills=%d B\n", chains, saved, uploaded)
	fmt.Printf("fusecheck: H2D bytes %d (staged) -> %d (fused), %+.1f%%\n",
		h2dOff.Bytes, h2dOn.Bytes, 100*(float64(h2dOn.Bytes)/float64(h2dOff.Bytes)-1))
	if chains == 0 {
		fail(1, "no fused chains executed — the fused path never engaged")
	}
	if h2dOn.Bytes >= h2dOff.Bytes {
		fail(1, "fusion did not reduce H2D traffic")
	}
	fmt.Println("fusecheck: ok")
}

// run executes one query and renders its result table exactly: every
// cell in row-major order, floats by bit pattern, NULLs marked. Two
// equal renderings mean byte-identical tables.
func run(e *engine.Engine, q workload.Query) (string, error) {
	res, err := e.QueryNamed(q.ID, q.SQL)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	tbl := res.Table
	cols := tbl.Columns()
	for _, c := range cols {
		b.WriteString(c.Name())
		b.WriteByte('\t')
	}
	b.WriteByte('\n')
	for ri := 0; ri < tbl.Rows(); ri++ {
		for _, c := range cols {
			v := c.Value(ri)
			switch {
			case v.Null:
				b.WriteString("NULL")
			case v.Type == columnar.Float64:
				b.WriteString(strconv.FormatFloat(v.F, 'x', -1, 64))
			case v.Type == columnar.Int64:
				b.WriteString(strconv.FormatInt(v.I, 10))
			default:
				b.WriteString(v.S)
			}
			b.WriteByte('\t')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
