// Command profcheck is the resource-attribution smoke test
// (`make prof-smoke`). It boots the engine behind the serving layer on
// an ephemeral port with the prof accountant and profile captor
// attached, posts identified queries over HTTP, and proves the
// attribution join end to end:
//
//   - /metrics exposes the blu_prof_* families and the per-device
//     utilization families (blu_device_busy_ratio,
//     blu_device_busy_seconds_total, blu_device_reserved_bytes), and
//     the scrape validates
//   - the blu_prof_wall_seconds_total ledger reconciles against the
//     query log: for every (class, phase) cell, the scraped wall sum
//     equals the qlog phase sums over the same request IDs within the
//     log's microsecond rounding (0.5µs per record per phase)
//   - the CPU and allocation accounts are sane (non-negative; CPU
//     attribution is statistical, so presence — not magnitude — is
//     asserted)
//   - GET /debug/prof/capture runs a bounded on-demand CPU capture and
//     GET /debug/prof/hotspots serves the top-N digest over the ring
//
// With -artifacts DIR the /metrics scrape, the hotspot digest, the
// capture response and the query log are written into DIR for CI
// upload when the check fails.
//
// Usage:
//
//	profcheck [-sf 0.002] [-seed 20160626] [-queries 9] [-artifacts DIR]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"blugpu/internal/bench"
	"blugpu/internal/metrics"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/serve"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.002, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	nq := flag.Int("queries", 9, "identified queries to post (cycled from the BD Insights suite)")
	artifacts := flag.String("artifacts", "", "directory to dump /metrics, hotspots, capture and the query log into")
	flag.Parse()

	c := &checker{artifacts: *artifacts}
	if err := c.run(*sf, *seed, *nq); err != nil {
		c.dump()
		fmt.Fprintln(os.Stderr, "profcheck:", err)
		os.Exit(1)
	}
	fmt.Println("profcheck: resource attribution ok")
}

type checker struct {
	artifacts string
	logBuf    bytes.Buffer
	metrics   []byte
	hotspots  []byte
	capture   []byte
	base      string
}

func (c *checker) run(sf float64, seed uint64, nq int) error {
	fmt.Printf("profcheck: generating dataset (sf=%g, seed=%d)...\n", sf, seed)
	h, err := bench.NewHarness(bench.Config{SF: sf, Seed: seed, Devices: 2, Degree: 8})
	if err != nil {
		return err
	}
	acct := prof.NewAccountant()
	captor := prof.NewCaptor(acct, prof.Options{Keep: 4, TopN: 10})
	server, err := serve.New(h.Eng, serve.Config{
		Log:       qlog.New(&c.logBuf),
		Prof:      acct,
		SlowQuery: -1,
	})
	if err != nil {
		return err
	}
	engineSources := metrics.SourcesFromEngine(h.Eng)
	sources := func() metrics.Sources {
		src := engineSources()
		src.Admission = server.AdmissionSnapshot
		src.Prof = acct
		src.Captor = captor
		return src
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewMux(server, metrics.AdminMux(sources))}
	go srv.Serve(ln)
	defer srv.Close()
	c.base = "http://" + ln.Addr().String()

	// Post identified queries across the BD Insights mix so several
	// workload classes fill accountant cells.
	suite := workload.BDInsights()
	var ids []string
	for i := 0; i < nq; i++ {
		q := suite[i%len(suite)]
		id := fmt.Sprintf("profcheck-%03d", i+1)
		body, _ := json.Marshal(map[string]any{
			"sql": q.SQL, "name": q.ID, "session": "profcheck",
		})
		req, err := http.NewRequest(http.MethodPost, c.base+"/query", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s (%s): HTTP %d: %.200s", id, q.ID, resp.StatusCode, respBody)
		}
		ids = append(ids, id)
	}
	fmt.Printf("profcheck: %d identified queries ok\n", len(ids))

	// Ledger A: the query log's per-(class, phase) wall sums over the
	// posted IDs.
	if err := qlog.Validate(c.logBuf.Bytes()); err != nil {
		return fmt.Errorf("query log invalid: %w", err)
	}
	recs, err := qlog.Decode(c.logBuf.Bytes())
	if err != nil {
		return err
	}
	type cell struct{ class, phase string }
	logMs := map[cell]float64{}
	logCount := map[string]int{}
	posted := map[string]bool{}
	for _, id := range ids {
		posted[id] = true
	}
	for _, rec := range recs {
		if rec.Event != qlog.EventQuery || !posted[rec.RequestID] {
			continue
		}
		if rec.Outcome != qlog.OutcomeOK {
			return fmt.Errorf("%s: outcome %s (%s)", rec.RequestID, rec.Outcome, rec.Error)
		}
		logCount[rec.Class]++
		logMs[cell{rec.Class, "queue_wait"}] += rec.Phases.QueueWaitMs
		logMs[cell{rec.Class, "admission"}] += rec.Phases.AdmissionMs
		logMs[cell{rec.Class, "parse"}] += rec.Phases.ParseMs
		logMs[cell{rec.Class, "plan"}] += rec.Phases.PlanMs
		logMs[cell{rec.Class, "exec"}] += rec.Phases.ExecMs
		logMs[cell{rec.Class, "serialize"}] += rec.Phases.SerializeMs
	}
	total := 0
	for _, n := range logCount {
		total += n
	}
	if total != len(ids) {
		return fmt.Errorf("query log has %d ok records for posted IDs, want %d", total, len(ids))
	}

	// Ledger B: the scraped blu_prof_* families.
	var code int
	c.metrics, code, err = httpGet(c.base + "/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/metrics: HTTP %d", code)
	}
	if err := metrics.ValidateExposition(c.metrics); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	for _, family := range []string{
		"blu_prof_wall_seconds_total",
		"blu_prof_cpu_seconds_total",
		"blu_prof_alloc_bytes_total",
		"blu_prof_phases_total",
		"blu_prof_captures_total",
		"blu_device_busy_ratio",
		"blu_device_busy_seconds_total",
		"blu_device_reserved_bytes",
	} {
		if !strings.Contains(string(c.metrics), family) {
			return fmt.Errorf("/metrics: family %s missing", family)
		}
	}

	profWall, err := scrapeClassPhase(c.metrics, "blu_prof_wall_seconds_total")
	if err != nil {
		return err
	}
	profCPU, err := scrapeClassPhase(c.metrics, "blu_prof_cpu_seconds_total")
	if err != nil {
		return err
	}
	phases := []string{"queue_wait", "admission", "parse", "plan", "exec", "serialize"}
	cells := 0
	for class, n := range logCount {
		// The accountant and the log were fed the same measured
		// durations; the only slack is qlog's microsecond rounding —
		// 0.5µs per record per phase.
		tol := 0.0005 * float64(n)
		for _, phase := range phases {
			k := [2]string{class, phase}
			got, ok := profWall[k]
			if !ok {
				return fmt.Errorf("blu_prof_wall_seconds_total missing cell class=%s phase=%s", class, phase)
			}
			gotMs := got * 1000
			if d := math.Abs(gotMs - logMs[cell{class, phase}]); d > tol {
				return fmt.Errorf("%s/%s: prof %.6fms vs qlog %.6fms (|Δ|=%.6f > %.6f)",
					class, phase, gotMs, logMs[cell{class, phase}], d, tol)
			}
			// CPU attribution is statistical (profiler sampling) — the
			// account must exist and be non-negative, nothing more.
			if cpu, ok := profCPU[k]; ok && cpu < 0 {
				return fmt.Errorf("%s/%s: negative CPU account %g", class, phase, cpu)
			}
			cells++
		}
	}
	fmt.Printf("profcheck: /metrics reconciles with qlog (%d class/phase cells, %d records)\n", cells, total)

	// The capture surface: an on-demand bounded capture, then the
	// digest over the ring.
	c.capture, code, err = httpGet(c.base + "/debug/prof/capture?window=100ms")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/debug/prof/capture: HTTP %d: %.200s", code, c.capture)
	}
	var capResp struct {
		Captures uint64 `json:"captures"`
		CPUBytes int    `json:"cpu_bytes"`
	}
	if err := json.Unmarshal(c.capture, &capResp); err != nil {
		return fmt.Errorf("/debug/prof/capture: bad JSON: %w", err)
	}
	if capResp.Captures < 1 || capResp.CPUBytes == 0 {
		return fmt.Errorf("/debug/prof/capture: empty capture: %s", c.capture)
	}
	c.hotspots, code, err = httpGet(c.base + "/debug/prof/hotspots")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/debug/prof/hotspots: HTTP %d", code)
	}
	if !bytes.HasPrefix(c.hotspots, []byte("prof hotspots:")) {
		return fmt.Errorf("/debug/prof/hotspots: unexpected body: %.120s", c.hotspots)
	}
	fmt.Printf("profcheck: /debug/prof ok (capture %d bytes CPU, digest %d bytes)\n", capResp.CPUBytes, len(c.hotspots))
	return nil
}

// scrapeClassPhase extracts a {class,phase}-labeled family from the
// exposition text into a map keyed by [class, phase].
func scrapeClassPhase(exposition []byte, family string) (map[[2]string]float64, error) {
	re := regexp.MustCompile(`^` + family + `\{class="([^"]+)",phase="([^"]+)"\} (\S+)$`)
	out := map[[2]string]float64{}
	for _, line := range strings.Split(string(exposition), "\n") {
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q: %w", family, m[3], err)
		}
		out[[2]string{m[1], m[2]}] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no class/phase series in scrape", family)
	}
	return out, nil
}

// dump writes whatever the checker captured into the artifacts
// directory so a CI failure ships the evidence.
func (c *checker) dump() {
	if c.artifacts == "" {
		return
	}
	if err := os.MkdirAll(c.artifacts, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "profcheck: artifacts:", err)
		return
	}
	if c.metrics == nil && c.base != "" {
		c.metrics, _, _ = httpGet(c.base + "/metrics")
	}
	if c.hotspots == nil && c.base != "" {
		c.hotspots, _, _ = httpGet(c.base + "/debug/prof/hotspots")
	}
	for name, data := range map[string][]byte{
		"metrics.txt":  c.metrics,
		"hotspots.txt": c.hotspots,
		"capture.json": c.capture,
		"qlog.jsonl":   c.logBuf.Bytes(),
	} {
		if len(data) == 0 {
			continue
		}
		path := filepath.Join(c.artifacts, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "profcheck: artifacts:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "profcheck: wrote %s (%d bytes)\n", path, len(data))
	}
}

func httpGet(url string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}
