// Command blushell is an interactive SQL shell over a generated
// TPC-DS-like database, executing on the hybrid CPU/GPU engine.
//
// Usage:
//
//	blushell [-sf 0.02] [-devices 2] [-gpu=true]
//
// Meta commands:
//
//	\tables        list tables with row counts
//	\describe T    show table T's columns
//	\gpu on|off    toggle device offload
//	\monitor       print the performance monitor report
//	\metrics       print the Prometheus text exposition of the session
//	\trace on|off  start/stop span tracing of subsequent queries
//	\trace show    print the per-query flame summary
//	\trace save F  write the Chrome trace-event JSON to file F
//	\quit          exit
//
// -serve mounts the admin HTTP surface (/metrics, /healthz,
// /debug/queries) on the given address for the session's lifetime, so a
// scraper can watch the shell's engine live.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/metrics"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	gpuOn := flag.Bool("gpu", true, "start with GPU offload enabled")
	serve := flag.String("serve", "", "also serve /metrics, /healthz and /debug/queries on this host:port")
	flag.Parse()

	fmt.Printf("generating dataset (sf=%g)...\n", *sf)
	data := workload.Generate(*sf, 20160626)
	eng, err := engine.New(engine.Config{Devices: *devices, Degree: 24})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := data.RegisterAll(eng); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng.SetGPUEnabled(*gpuOn)
	if *serve != "" {
		srv, ln, err := metrics.Serve(*serve, metrics.SourcesFromEngine(eng))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("admin surface: http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("ready: %d tables, %.1f MB, GPU %s. Type SQL or \\tables.\n",
		len(data.Tables), float64(data.TotalBytes())/(1<<20), onOff(eng.GPUEnabled()))

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("blu> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if meta(eng, data, line) {
				return
			}
			continue
		}
		run(eng, line)
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// meta handles \commands; returns true on quit.
func meta(eng *engine.Engine, data *workload.Dataset, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q", "\\exit":
		return true
	case "\\tables":
		for _, n := range append(workload.DimensionNames(), workload.FactNames()...) {
			t := data.Table(n)
			fmt.Printf("  %-24s %10d rows  %8.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
		}
	case "\\describe":
		if len(fields) < 2 {
			fmt.Println("usage: \\describe <table>")
			return false
		}
		t := eng.Table(fields[1])
		if t == nil {
			fmt.Printf("unknown table %q\n", fields[1])
			return false
		}
		for _, c := range t.Columns() {
			fmt.Printf("  %-28s %s\n", c.Name(), c.Type())
		}
	case "\\gpu":
		if len(fields) == 2 {
			eng.SetGPUEnabled(fields[1] == "on")
		}
		fmt.Printf("GPU offload: %s\n", onOff(eng.GPUEnabled()))
	case "\\monitor":
		eng.Monitor().Report(os.Stdout)
	case "\\metrics":
		if err := metrics.Collect(metrics.SourcesFromEngine(eng)()).WriteText(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "\\trace":
		metaTrace(eng, fields)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		if sql == "" {
			fmt.Println("usage: \\explain <sql>")
			return false
		}
		out, err := eng.Explain(sql)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(out)
	default:
		fmt.Println("commands: \\tables \\describe <t> \\explain <sql> \\gpu on|off \\monitor \\metrics \\trace on|off|show|save <f> \\quit")
	}
	return false
}

// metaTrace handles the \trace subcommands: toggling the tracer on the
// live engine, printing the flame summary, and exporting Chrome JSON.
func metaTrace(eng *engine.Engine, fields []string) {
	if len(fields) < 2 {
		state := "off"
		if tr := eng.Tracer(); tr != nil {
			state = fmt.Sprintf("on (%d queries, %d spans)", tr.Queries(), len(tr.Spans()))
		}
		fmt.Printf("tracing: %s\nusage: \\trace on|off|show|save <file>\n", state)
		return
	}
	switch fields[1] {
	case "on":
		if eng.Tracer() == nil {
			eng.SetTracer(trace.New())
		}
		fmt.Println("tracing: on")
	case "off":
		eng.SetTracer(nil)
		fmt.Println("tracing: off")
	case "show":
		tr := eng.Tracer()
		if tr == nil {
			fmt.Println("tracing is off; \\trace on first")
			return
		}
		tr.WriteFlame(os.Stdout)
	case "save":
		tr := eng.Tracer()
		if tr == nil {
			fmt.Println("tracing is off; \\trace on first")
			return
		}
		if len(fields) < 3 {
			fmt.Println("usage: \\trace save <file>")
			return
		}
		f, err := os.Create(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		err = tr.ExportChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("wrote %d spans to %s (load via chrome://tracing or ui.perfetto.dev)\n",
			len(tr.Spans()), fields[2])
	default:
		fmt.Println("usage: \\trace on|off|show|save <file>")
	}
}

func run(eng *engine.Engine, sql string) {
	res, err := eng.Query(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
	fmt.Printf("(%d rows, modeled %v, gpu=%v)\n", res.Table.Rows(), res.Modeled, res.GPUUsed)
	for _, op := range res.Ops {
		if op.Op == "groupby" || op.Op == "sort" {
			fmt.Printf("  %s: %s [%v]\n", op.Op, op.Detail, op.Modeled)
		}
	}
}

func printResult(res *engine.Result) {
	const maxRows = 25
	for _, c := range res.Columns {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 18*len(res.Columns)))
	n := res.Table.Rows()
	if n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		for _, v := range res.Table.Row(r) {
			switch {
			case v.Null:
				fmt.Printf("%-18s", "NULL")
			case v.Type == columnar.Float64:
				fmt.Printf("%-18.2f", v.F)
			default:
				fmt.Printf("%-18v", v)
			}
		}
		fmt.Println()
	}
	if res.Table.Rows() > maxRows {
		fmt.Printf("... (%d more rows)\n", res.Table.Rows()-maxRows)
	}
}
