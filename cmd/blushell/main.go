// Command blushell is an interactive SQL shell over a generated
// TPC-DS-like database, executing on the hybrid CPU/GPU engine.
//
// Usage:
//
//	blushell [-sf 0.02] [-devices 2] [-gpu=true]
//
// Meta commands are listed by \help; the table in this file is the
// single source of truth for dispatch, usage and help text.
//
// -serve mounts the admin HTTP surface (/metrics, /healthz,
// /debug/queries, /debug/explain) on the given address for the
// session's lifetime, so a scraper can watch the shell's engine live.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/metrics"
	"blugpu/internal/qlog"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	gpuOn := flag.Bool("gpu", true, "start with GPU offload enabled")
	serve := flag.String("serve", "", "also serve /metrics, /healthz, /debug/queries and /debug/explain on this host:port")
	flag.Parse()

	fmt.Printf("generating dataset (sf=%g)...\n", *sf)
	data := workload.Generate(*sf, 20160626)
	eng, err := engine.New(engine.Config{Devices: *devices, Degree: 24})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := data.RegisterAll(eng); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng.SetGPUEnabled(*gpuOn)
	if *serve != "" {
		srv, ln, err := metrics.Serve(*serve, metrics.SourcesFromEngine(eng))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("admin surface: http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("ready: %d tables, %.1f MB, GPU %s. Type SQL, \\tables or \\help.\n",
		len(data.Tables), float64(data.TotalBytes())/(1<<20), onOff(eng.GPUEnabled()))

	sh := &shell{eng: eng, data: data}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("blu> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if sh.meta(line) {
				return
			}
			continue
		}
		run(eng, line)
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// shell is the session state the meta commands operate on.
type shell struct {
	eng  *engine.Engine
	data *workload.Dataset
}

// metaCommand is one \command: the names it answers to, its usage
// syntax, a one-line description, and the handler. The handler gets the
// whitespace-split fields and the raw line (for commands that take SQL)
// and returns true to quit the shell.
type metaCommand struct {
	names []string
	usage string
	help  string
	run   func(sh *shell, fields []string, line string) bool
}

// metaCommands is the single source of truth for dispatch, the
// "commands:" line and \help. Order is display order.
var metaCommands = []metaCommand{
	{[]string{"\\tables"}, "\\tables", "list tables with row counts", (*shell).cmdTables},
	{[]string{"\\describe"}, "\\describe <t>", "show table t's columns", (*shell).cmdDescribe},
	{[]string{"\\explain"}, "\\explain [analyze] <sql>", "show the plan and optimizer prognosis; analyze runs the query and audits planned vs. actual", (*shell).cmdExplain},
	{[]string{"\\gpu"}, "\\gpu on|off", "toggle device offload", (*shell).cmdGPU},
	{[]string{"\\monitor"}, "\\monitor", "print the performance monitor report", (*shell).cmdMonitor},
	{[]string{"\\metrics"}, "\\metrics", "print the Prometheus text exposition of the session", (*shell).cmdMetrics},
	{[]string{"\\trace"}, "\\trace on|off|show|save <f>", "control span tracing: toggle, flame summary, Chrome JSON export", (*shell).cmdTrace},
	{[]string{"\\help", "\\h", "\\?"}, "\\help", "list commands", nil},
	{[]string{"\\quit", "\\q", "\\exit"}, "\\quit", "exit", func(*shell, []string, string) bool { return true }},
}

func init() {
	// Assigned here rather than in the literal: cmdHelp renders
	// metaCommands, and a direct reference would be an initialization
	// cycle.
	for i := range metaCommands {
		if metaCommands[i].names[0] == "\\help" {
			metaCommands[i].run = (*shell).cmdHelp
		}
	}
}

// meta dispatches one \command line; returns true on quit.
func (sh *shell) meta(line string) bool {
	fields := strings.Fields(line)
	for _, c := range metaCommands {
		for _, n := range c.names {
			if fields[0] == n {
				return c.run(sh, fields, line)
			}
		}
	}
	fmt.Println(commandsLine())
	return false
}

// commandsLine renders the one-line command summary from the table.
func commandsLine() string {
	var sb strings.Builder
	sb.WriteString("commands:")
	for _, c := range metaCommands {
		sb.WriteString(" ")
		sb.WriteString(c.usage)
	}
	return sb.String()
}

func (sh *shell) cmdHelp(fields []string, line string) bool {
	for _, c := range metaCommands {
		fmt.Printf("  %-28s %s\n", c.usage, c.help)
	}
	return false
}

func (sh *shell) cmdTables(fields []string, line string) bool {
	for _, n := range append(workload.DimensionNames(), workload.FactNames()...) {
		t := sh.data.Table(n)
		fmt.Printf("  %-24s %10d rows  %8.1f KB\n", n, t.Rows(), float64(t.SizeBytes())/1024)
	}
	return false
}

func (sh *shell) cmdDescribe(fields []string, line string) bool {
	if len(fields) < 2 {
		fmt.Println("usage: \\describe <table>")
		return false
	}
	t := sh.eng.Table(fields[1])
	if t == nil {
		fmt.Printf("unknown table %q\n", fields[1])
		return false
	}
	for _, c := range t.Columns() {
		fmt.Printf("  %-28s %s\n", c.Name(), c.Type())
	}
	return false
}

func (sh *shell) cmdGPU(fields []string, line string) bool {
	if len(fields) == 2 {
		sh.eng.SetGPUEnabled(fields[1] == "on")
	}
	fmt.Printf("GPU offload: %s\n", onOff(sh.eng.GPUEnabled()))
	return false
}

func (sh *shell) cmdMonitor(fields []string, line string) bool {
	sh.eng.Monitor().Report(os.Stdout)
	return false
}

func (sh *shell) cmdMetrics(fields []string, line string) bool {
	if err := metrics.Collect(metrics.SourcesFromEngine(sh.eng)()).WriteText(os.Stdout); err != nil {
		fmt.Println("error:", err)
	}
	return false
}

// cmdExplain handles both plain \explain (plan + prognosis, no
// execution) and \explain analyze (run the query, print the decision
// audit, then the result).
func (sh *shell) cmdExplain(fields []string, line string) bool {
	sql := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	if len(fields) >= 2 && fields[1] == "analyze" {
		sql = strings.TrimSpace(strings.TrimPrefix(sql, "analyze"))
		if sql == "" {
			fmt.Println("usage: \\explain analyze <sql>")
			return false
		}
		rep, res, err := sh.eng.ExplainAnalyzeNamed("", sql)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		rep.WriteText(os.Stdout)
		fmt.Println()
		printResult(res)
		fmt.Printf("(%d rows, modeled %v, gpu=%v)\n", res.Table.Rows(), res.Modeled, res.GPUUsed)
		return false
	}
	if sql == "" {
		fmt.Println("usage: \\explain [analyze] <sql>")
		return false
	}
	out, err := sh.eng.Explain(sql)
	if err != nil {
		fmt.Println("error:", err)
		return false
	}
	fmt.Print(out)
	return false
}

// cmdTrace handles the \trace subcommands: toggling the tracer on the
// live engine, printing the flame summary, and exporting Chrome JSON.
func (sh *shell) cmdTrace(fields []string, line string) bool {
	eng := sh.eng
	if len(fields) < 2 {
		state := "off"
		if tr := eng.Tracer(); tr != nil {
			state = fmt.Sprintf("on (%d queries, %d spans)", tr.Queries(), len(tr.Spans()))
		}
		fmt.Printf("tracing: %s\nusage: \\trace on|off|show|save <file>\n", state)
		return false
	}
	switch fields[1] {
	case "on":
		if eng.Tracer() == nil {
			eng.SetTracer(trace.New())
		}
		fmt.Println("tracing: on")
	case "off":
		eng.SetTracer(nil)
		fmt.Println("tracing: off")
	case "show":
		tr := eng.Tracer()
		if tr == nil {
			fmt.Println("tracing is off; \\trace on first")
			return false
		}
		tr.WriteFlame(os.Stdout)
	case "save":
		tr := eng.Tracer()
		if tr == nil {
			fmt.Println("tracing is off; \\trace on first")
			return false
		}
		if len(fields) < 3 {
			fmt.Println("usage: \\trace save <file>")
			return false
		}
		f, err := os.Create(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		err = tr.ExportChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("wrote %d spans to %s (load via chrome://tracing or ui.perfetto.dev)\n",
			len(tr.Spans()), fields[2])
	default:
		fmt.Println("usage: \\trace on|off|show|save <file>")
	}
	return false
}

// shellSeq numbers interactive statements; the derived shell-<n>
// request ID is annotated onto the query's trace spans so \trace save
// exports correlate with the printed footer.
var shellSeq int

func run(eng *engine.Engine, sql string) {
	shellSeq++
	reqID := fmt.Sprintf("shell-%d", shellSeq)
	ctx := qlog.WithRequestID(context.Background(), reqID)
	res, err := eng.QueryNamedCtxAttrs(ctx, reqID, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
	fmt.Printf("(%d rows, modeled %v, gpu=%v, request=%s)\n", res.Table.Rows(), res.Modeled, res.GPUUsed, reqID)
	for _, op := range res.Ops {
		if op.Op == "groupby" || op.Op == "sort" {
			fmt.Printf("  %s: %s [%v]\n", op.Op, op.Detail, op.Modeled)
		}
	}
}

func printResult(res *engine.Result) {
	const maxRows = 25
	for _, c := range res.Columns {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 18*len(res.Columns)))
	n := res.Table.Rows()
	if n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		for _, v := range res.Table.Row(r) {
			switch {
			case v.Null:
				fmt.Printf("%-18s", "NULL")
			case v.Type == columnar.Float64:
				fmt.Printf("%-18.2f", v.F)
			default:
				fmt.Printf("%-18v", v)
			}
		}
		fmt.Println()
	}
	if res.Table.Rows() > maxRows {
		fmt.Printf("... (%d more rows)\n", res.Table.Rows()-maxRows)
	}
}
