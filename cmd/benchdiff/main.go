// Command benchdiff is the perf-regression gate: it runs the benchdiff
// experiment suite, writes the result as a BENCH_<n>.json snapshot, and
// compares the modeled (deterministic) timings against a committed
// baseline.
//
// Usage:
//
//	benchdiff [-sf 0.02] [-seed N] [-devices 2] [-degree 24]
//	          [-baseline BENCH_0.json] [-out FILE] [-threshold 0.05]
//	          [-wall-threshold 0] [-wall-floor-ms 25] [-wall-repeats 1]
//	          [-trend-slope 0] [-inflate 1.0]
//
// Exit status: 0 when every gated metric is within threshold, 1 when a
// regression is detected, 2 on operational errors. The default scale
// (sf=0.02) is the smallest at which the optimizer routes work to the
// GPU, keeping the gate meaningful and CI-fast at once. -inflate
// multiplies the fresh snapshot's modeled columns and exists to prove
// the gate trips (`benchdiff -inflate 1.2` must fail a 5% threshold).
//
// -wall-threshold graduates wall_ms_p50 from informational to gated:
// the per-query wall-clock median may exceed the baseline's by at most
// that fraction (3.0 allows 4x — generous on purpose, wall clock is
// machine-dependent). Experiments whose baseline median sits below
// -wall-floor-ms are exempt as noise. -wall-repeats N runs the suite N
// times, asserts the modeled columns did not drift across runs, and
// compares the median of the wall columns — one noisy run cannot trip
// the gate.
//
// -trend-slope gates the sustained run's recorded trend series (queue
// depth, shed rate, wall-latency quantiles, sampled by the embedded
// obsd scraper): a least-squares slope above the ceiling — in units
// per second — means the run drifted instead of holding steady state,
// which the medians alone hide. Repeats median the slopes like the
// wall columns. Baselines without series never gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blugpu/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	degree := flag.Int("degree", 24, "intra-query parallelism")
	baseline := flag.String("baseline", "BENCH_0.json", "baseline snapshot to compare against")
	out := flag.String("out", "", "where to write the fresh snapshot (default: next free BENCH_<n>.json)")
	threshold := flag.Float64("threshold", 0.05, "allowed fractional growth of modeled time before the gate fails")
	wallThreshold := flag.Float64("wall-threshold", 0, "allowed fractional growth of wall_ms_p50 (0 leaves it informational)")
	wallFloorMs := flag.Float64("wall-floor-ms", 25, "baseline wall_ms_p50 below this floor never gates (noise)")
	wallRepeats := flag.Int("wall-repeats", 1, "run the suite N times and compare median wall columns")
	trendSlope := flag.Float64("trend-slope", 0, "max in-run trend-series slope, units per second (0 leaves slopes informational)")
	inflate := flag.Float64("inflate", 1.0, "multiply the fresh snapshot's modeled columns (gate self-test)")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(code)
	}

	baselineExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "baseline" {
			baselineExplicit = true
		}
	})
	// Resolve the baseline before the suite writes anything: a first run
	// may auto-number its snapshot onto the default baseline path, and
	// that must read as "no baseline yet", not as a self-comparison.
	_, statErr := os.Stat(*baseline)
	baselineExists := statErr == nil
	if !baselineExists && baselineExplicit {
		fail(2, fmt.Errorf("baseline %s: %v", *baseline, statErr))
	}

	if *wallRepeats < 1 {
		fail(2, fmt.Errorf("-wall-repeats must be >= 1, got %d", *wallRepeats))
	}
	fmt.Printf("benchdiff: running suite (sf=%g seed=%d devices=%d degree=%d repeats=%d)...\n",
		*sf, *seed, *devices, *degree, *wallRepeats)
	start := time.Now()
	runs := make([]*bench.Snapshot, 0, *wallRepeats)
	for i := 0; i < *wallRepeats; i++ {
		s, err := bench.TakeSnapshot(bench.Config{SF: *sf, Seed: *seed, Devices: *devices, Degree: *degree})
		if err != nil {
			fail(2, err)
		}
		runs = append(runs, s)
	}
	// MergeRepeats both medians the wall columns and proves the modeled
	// columns are repeat-stable — drift there is an operational error,
	// not a regression, because it breaks the gate's premise.
	cur, err := bench.MergeRepeats(runs)
	if err != nil {
		fail(2, err)
	}
	fmt.Printf("benchdiff: suite done in %.1fs\n", time.Since(start).Seconds())

	if *inflate != 1.0 {
		for i := range cur.Experiments {
			cur.Experiments[i].ModeledOnMs *= *inflate
			cur.Experiments[i].ModeledOffMs *= *inflate
			// H2D bytes and the wall median gate in the same direction:
			// inflating must trip them too.
			cur.Experiments[i].TransferH2DBytes = int64(float64(cur.Experiments[i].TransferH2DBytes) * *inflate)
			cur.Experiments[i].WallMsP50 *= *inflate
		}
		fmt.Printf("benchdiff: modeled, transfer, and wall-p50 columns inflated by %.2fx (gate self-test)\n", *inflate)
	}

	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	if err := cur.WriteFile(path); err != nil {
		fail(2, err)
	}
	fmt.Printf("benchdiff: snapshot written to %s\n", path)

	if !baselineExists {
		fmt.Printf("benchdiff: no baseline at %s; commit the snapshot above as the baseline\n", *baseline)
		return
	}
	base, err := bench.ReadSnapshot(*baseline)
	if err != nil {
		fail(2, err)
	}

	opts := bench.GateOptions{
		Threshold:     *threshold,
		WallThreshold: *wallThreshold,
		WallFloorMs:   *wallFloorMs,
		TrendSlopeMax: *trendSlope,
	}
	regs, err := bench.CompareGated(base, cur, opts)
	if err != nil {
		fail(2, err)
	}
	gateDesc := fmt.Sprintf("modeled time within %+.0f%%", *threshold*100)
	if *wallThreshold > 0 {
		gateDesc += fmt.Sprintf(", wall p50 within %+.0f%% above %.0fms", *wallThreshold*100, *wallFloorMs)
	}
	if *trendSlope > 0 {
		gateDesc += fmt.Sprintf(", trend slope <= %g/s", *trendSlope)
	}
	fmt.Printf("\ncomparison against %s (gate: %s):\n", *baseline, gateDesc)
	bench.WriteDiffOpts(os.Stdout, base, cur, regs, opts)
	if len(regs) > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no regressions")
}

// nextSnapshotPath returns the first free BENCH_<n>.json, so repeated
// local runs never clobber a committed baseline.
func nextSnapshotPath() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
