// Command benchdiff is the perf-regression gate: it runs the benchdiff
// experiment suite, writes the result as a BENCH_<n>.json snapshot, and
// compares the modeled (deterministic) timings against a committed
// baseline.
//
// Usage:
//
//	benchdiff [-sf 0.02] [-seed N] [-devices 2] [-degree 24]
//	          [-baseline BENCH_0.json] [-out FILE] [-threshold 0.05]
//	          [-inflate 1.0]
//
// Exit status: 0 when every gated metric is within threshold, 1 when a
// regression is detected, 2 on operational errors. The default scale
// (sf=0.02) is the smallest at which the optimizer routes work to the
// GPU, keeping the gate meaningful and CI-fast at once. -inflate
// multiplies the fresh snapshot's modeled columns and exists to prove
// the gate trips (`benchdiff -inflate 1.2` must fail a 5% threshold).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blugpu/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.02, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	devices := flag.Int("devices", 2, "number of simulated GPUs")
	degree := flag.Int("degree", 24, "intra-query parallelism")
	baseline := flag.String("baseline", "BENCH_0.json", "baseline snapshot to compare against")
	out := flag.String("out", "", "where to write the fresh snapshot (default: next free BENCH_<n>.json)")
	threshold := flag.Float64("threshold", 0.05, "allowed fractional growth of modeled time before the gate fails")
	inflate := flag.Float64("inflate", 1.0, "multiply the fresh snapshot's modeled columns (gate self-test)")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(code)
	}

	baselineExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "baseline" {
			baselineExplicit = true
		}
	})
	// Resolve the baseline before the suite writes anything: a first run
	// may auto-number its snapshot onto the default baseline path, and
	// that must read as "no baseline yet", not as a self-comparison.
	_, statErr := os.Stat(*baseline)
	baselineExists := statErr == nil
	if !baselineExists && baselineExplicit {
		fail(2, fmt.Errorf("baseline %s: %v", *baseline, statErr))
	}

	fmt.Printf("benchdiff: running suite (sf=%g seed=%d devices=%d degree=%d)...\n", *sf, *seed, *devices, *degree)
	start := time.Now()
	cur, err := bench.TakeSnapshot(bench.Config{SF: *sf, Seed: *seed, Devices: *devices, Degree: *degree})
	if err != nil {
		fail(2, err)
	}
	fmt.Printf("benchdiff: suite done in %.1fs\n", time.Since(start).Seconds())

	if *inflate != 1.0 {
		for i := range cur.Experiments {
			cur.Experiments[i].ModeledOnMs *= *inflate
			cur.Experiments[i].ModeledOffMs *= *inflate
			// H2D bytes gate lower-is-better, but the self-test direction is
			// the same: inflating must trip it.
			cur.Experiments[i].TransferH2DBytes = int64(float64(cur.Experiments[i].TransferH2DBytes) * *inflate)
		}
		fmt.Printf("benchdiff: modeled and transfer columns inflated by %.2fx (gate self-test)\n", *inflate)
	}

	path := *out
	if path == "" {
		path = nextSnapshotPath()
	}
	if err := cur.WriteFile(path); err != nil {
		fail(2, err)
	}
	fmt.Printf("benchdiff: snapshot written to %s\n", path)

	if !baselineExists {
		fmt.Printf("benchdiff: no baseline at %s; commit the snapshot above as the baseline\n", *baseline)
		return
	}
	base, err := bench.ReadSnapshot(*baseline)
	if err != nil {
		fail(2, err)
	}

	regs, err := bench.Compare(base, cur, *threshold)
	if err != nil {
		fail(2, err)
	}
	fmt.Printf("\ncomparison against %s (gate: modeled time within %+.0f%%):\n", *baseline, *threshold*100)
	bench.WriteDiff(os.Stdout, base, cur, regs)
	if len(regs) > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no regressions")
}

// nextSnapshotPath returns the first free BENCH_<n>.json, so repeated
// local runs never clobber a committed baseline.
func nextSnapshotPath() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
