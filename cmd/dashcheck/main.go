// Command dashcheck is the embedded-observability smoke test
// (`make dash-smoke`). It boots the engine behind the serving layer
// with an obsd store on an injected clock, posts queries, trips every
// device circuit breaker, and proves the alert lifecycle end to end:
//
//   - the AllBreakersOpen page rule goes pending on the first scrape
//     after the fault and fires within one `for:` hold-down window
//   - while it fires, /healthz answers 503 with the alert attached;
//     after the breakers recover the rule resolves and /healthz is 200
//   - the full pending → firing → resolved lifecycle is visible on all
//     four surfaces: /debug/alerts JSON, the blu_alerts_* metric
//     family, the structured query log's alert events, and /debug/dash
//   - a second identical run (same seed, same injected clock, same
//     scrape sequence) produces byte-identical /debug/alerts JSON,
//     blu_alerts_* exposition lines, and qlog alert records
//   - the store's own scrape overhead, attributed via blu_prof to the
//     (obsd, scrape) cell, stays under 1% of execution wall time (with
//     a small absolute floor for sub-second smoke workloads)
//
// With -artifacts DIR the alert JSON, dash HTML, /metrics scrape and
// query log are written into DIR for CI upload when the check fails.
//
// Usage:
//
//	dashcheck [-sf 0.002] [-seed 20160626] [-queries 6] [-artifacts DIR]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"blugpu/internal/bench"
	"blugpu/internal/metrics"
	"blugpu/internal/obsd"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/sched"
	"blugpu/internal/serve"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.002, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	nq := flag.Int("queries", 6, "queries to post before tripping the breakers")
	artifacts := flag.String("artifacts", "", "directory to dump alert JSON, dash HTML, /metrics and the query log into")
	flag.Parse()

	c := &checker{artifacts: *artifacts}
	if err := c.run(*sf, *seed, *nq); err != nil {
		c.dump()
		fmt.Fprintln(os.Stderr, "dashcheck:", err)
		os.Exit(1)
	}
	fmt.Println("dashcheck: embedded observability ok")
}

// obsStep is the injected scrape interval: the default rules derive a
// 2×step hold-down from it, so the firing deadline under test is two
// scrapes after pending.
const obsStep = time.Second

type checker struct {
	artifacts string
	alerts    []byte
	dash      []byte
	metrics   []byte
	qlogBytes []byte
}

// result captures one full run's deterministic surfaces for the
// cross-run byte comparison.
type result struct {
	alerts        []byte // /debug/alerts JSON
	alertMetrics  []byte // the blu_alerts_* lines of /metrics
	qlogAlerts    []byte // the event:alert records of the query log
	scrapesToFire int    // scrapes from fault injection to firing
}

func (c *checker) run(sf float64, seed uint64, nq int) error {
	r1, err := c.runOnce(sf, seed, nq, true)
	if err != nil {
		return err
	}
	fmt.Printf("dashcheck: lifecycle ok (fired %d scrape(s) after fault, hold-down %s)\n",
		r1.scrapesToFire, 2*obsStep)

	// Determinism: an identical second run must reproduce the alert
	// surfaces bit for bit — the injected clock, not wall time, stamps
	// every transition.
	r2, err := c.runOnce(sf, seed, nq, false)
	if err != nil {
		return fmt.Errorf("second run: %w", err)
	}
	if !bytes.Equal(r1.alerts, r2.alerts) {
		return fmt.Errorf("/debug/alerts not byte-identical across identical runs")
	}
	if !bytes.Equal(r1.alertMetrics, r2.alertMetrics) {
		return fmt.Errorf("blu_alerts_* exposition not byte-identical across identical runs:\n%s\nvs\n%s",
			r1.alertMetrics, r2.alertMetrics)
	}
	if !bytes.Equal(r1.qlogAlerts, r2.qlogAlerts) {
		return fmt.Errorf("qlog alert records not byte-identical across identical runs:\n%s\nvs\n%s",
			r1.qlogAlerts, r2.qlogAlerts)
	}
	fmt.Println("dashcheck: alert surfaces byte-identical across runs")
	return nil
}

// runOnce builds the whole stack, walks the breaker-alert lifecycle,
// and verifies every surface. keep controls whether the captured bytes
// land on the checker for artifact dumps (first run only).
func (c *checker) runOnce(sf float64, seed uint64, nq int, keep bool) (*result, error) {
	h, err := bench.NewHarness(bench.Config{SF: sf, Seed: seed, Devices: 2, Degree: 8})
	if err != nil {
		return nil, err
	}
	acct := prof.NewAccountant()

	// Injected clock, shared by the store and the query log; it only
	// moves when tick() says so, making every transition timestamp a
	// pure function of the scrape sequence.
	var clockMu sync.Mutex
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}

	var qmu sync.Mutex
	var qbuf bytes.Buffer
	qlogger := qlog.New(writerFunc(func(p []byte) (int, error) {
		qmu.Lock()
		defer qmu.Unlock()
		return qbuf.Write(p)
	}), qlog.WithClock(clock))

	var obs *obsd.Store
	server, err := serve.New(h.Eng, serve.Config{
		Log:  qlogger,
		Prof: acct,
		PagesFiring: func() int {
			if obs == nil {
				return 0
			}
			return obs.PagesFiring()
		},
	})
	if err != nil {
		return nil, err
	}
	engineSources := metrics.SourcesFromEngine(h.Eng)
	sources := func() metrics.Sources {
		src := engineSources()
		src.Admission = server.AdmissionSnapshot
		src.Runtime = nil // runtime telemetry is wall-clock noise this check does not need
		src.Prof = acct
		if obs != nil {
			src.Obs = obs.ObsSnapshot
		}
		return src
	}
	obs = obsd.New(obsd.Options{
		Step:      obsStep,
		Retention: 2 * time.Minute,
		Clock:     clock,
		Sources:   sources,
		Log:       qlogger,
		Prof:      acct,
	})
	if err := obs.SetRules(obsd.DefaultRules(obsStep)); err != nil {
		return nil, err
	}
	tick := func() {
		clockMu.Lock()
		now = now.Add(obsStep)
		clockMu.Unlock()
		obs.Scrape()
	}

	admin := metrics.AdminMux(sources)
	obs.Mount(admin)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.NewMux(server, admin)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Traffic first, so the wall histograms and prof exec cells have
	// content before any scrape retains them.
	suite := workload.BDInsights()
	for i := 0; i < nq; i++ {
		q := suite[i%len(suite)]
		body, _ := json.Marshal(map[string]any{"sql": q.SQL, "name": q.ID, "session": "dashcheck"})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("query %d (%s): HTTP %d", i, q.ID, resp.StatusCode)
		}
	}

	// Healthy baseline: two scrapes, no pages firing, /healthz green.
	tick()
	tick()
	if pf := obs.PagesFiring(); pf != 0 {
		return nil, fmt.Errorf("healthy baseline: %d pages firing", pf)
	}
	if code := httpCode(base + "/healthz"); code != http.StatusOK {
		return nil, fmt.Errorf("healthy /healthz: HTTP %d, want 200", code)
	}

	// Inject the fault: open every device breaker, then scrape. The
	// AllBreakersOpen page rule must go pending immediately and fire
	// within one hold-down window (For/step scrapes after pending).
	sch := h.Eng.Scheduler()
	for _, dev := range sch.Devices() {
		for i := 0; i < sched.DefaultFailThreshold; i++ {
			sch.ReportFailure(dev)
		}
	}
	deadline := int(2*obsStep/obsStep) + 1 // pending scrape + For worth of holds
	scrapes := 0
	for obs.PagesFiring() == 0 {
		if scrapes >= deadline {
			return nil, fmt.Errorf("AllBreakersOpen did not fire within %d scrapes (one for: window)", deadline)
		}
		tick()
		scrapes++
	}
	if code := httpCode(base + "/healthz"); code != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("firing page alert: /healthz HTTP %d, want 503", code)
	}

	// Recover: past probation, one success per device closes the
	// breakers; the next scrape resolves the alert.
	sch.Advance(10 * 60)
	for _, dev := range sch.Devices() {
		sch.ReportSuccess(dev)
	}
	tick()
	if pf := obs.PagesFiring(); pf != 0 {
		return nil, fmt.Errorf("after recovery: %d pages still firing", pf)
	}
	if code := httpCode(base + "/healthz"); code != http.StatusOK {
		return nil, fmt.Errorf("after recovery: /healthz HTTP %d, want 200", code)
	}

	// Surface 1: /debug/alerts carries the full lifecycle.
	alerts, code, err := httpGet(base + "/debug/alerts")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/debug/alerts: HTTP %d", code)
	}
	var snap metrics.AlertsSnapshot
	if err := json.Unmarshal(alerts, &snap); err != nil {
		return nil, fmt.Errorf("/debug/alerts: %w", err)
	}
	var lifecycle []string
	for _, tr := range snap.Transitions {
		if tr.Alert == "AllBreakersOpen" {
			lifecycle = append(lifecycle, tr.To)
		}
	}
	if strings.Join(lifecycle, ",") != "pending,firing,resolved" {
		return nil, fmt.Errorf("/debug/alerts lifecycle = %v, want [pending firing resolved]", lifecycle)
	}

	// Surface 2: the blu_alerts_* family on /metrics records the same
	// transitions, and the scrape still validates as exposition text.
	metricsText, code, err := httpGet(base + "/metrics")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", code)
	}
	if err := metrics.ValidateExposition(metricsText); err != nil {
		return nil, fmt.Errorf("/metrics: %w", err)
	}
	for _, needle := range []string{
		"blu_obsd_scrapes_total",
		`blu_alerts_transitions_total{alert="AllBreakersOpen",to="firing"} 1`,
		`blu_alerts_transitions_total{alert="AllBreakersOpen",to="resolved"} 1`,
	} {
		if !bytes.Contains(metricsText, []byte(needle)) {
			return nil, fmt.Errorf("/metrics: %q missing from scrape", needle)
		}
	}
	var alertLines []string
	for _, line := range strings.Split(string(metricsText), "\n") {
		if strings.Contains(line, "blu_alerts") {
			alertLines = append(alertLines, line)
		}
	}

	// Surface 3: the query log carries one alert event per transition,
	// stamped by the injected clock, and still validates as a whole.
	qmu.Lock()
	logBytes := append([]byte(nil), qbuf.Bytes()...)
	qmu.Unlock()
	if err := qlog.Validate(logBytes); err != nil {
		return nil, fmt.Errorf("query log invalid: %w", err)
	}
	recs, err := qlog.Decode(logBytes)
	if err != nil {
		return nil, err
	}
	var qlogLifecycle []string
	var qlogAlerts bytes.Buffer
	for _, line := range bytes.Split(logBytes, []byte("\n")) {
		if bytes.Contains(line, []byte(`"event":"alert"`)) {
			qlogAlerts.Write(line)
			qlogAlerts.WriteByte('\n')
		}
	}
	for _, rec := range recs {
		if rec.Event == qlog.EventAlert && rec.Alert == "AllBreakersOpen" {
			qlogLifecycle = append(qlogLifecycle, rec.AlertState)
		}
	}
	if strings.Join(qlogLifecycle, ",") != "pending,firing,resolved" {
		return nil, fmt.Errorf("qlog lifecycle = %v, want [pending firing resolved]", qlogLifecycle)
	}

	// Surface 4: the dash renders the alert table (with the resolved
	// state) and its sparkline panels.
	dash, code, err := httpGet(base + "/debug/dash")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("/debug/dash: HTTP %d", code)
	}
	for _, needle := range []string{"AllBreakersOpen", "resolved", "<svg"} {
		if !bytes.Contains(dash, []byte(needle)) {
			return nil, fmt.Errorf("/debug/dash: %q missing", needle)
		}
	}

	// Overhead: the store's scrape wall, attributed to the (obsd,
	// scrape) prof cell, must be invisible next to execution — under 1%
	// of exec wall, with an absolute floor because a smoke-sized
	// workload executes for well under a second.
	var obsdWall, execWall float64
	for _, ps := range acct.Snapshot() {
		switch {
		case ps.Class == "obsd" && ps.Phase == "scrape":
			obsdWall += ps.WallSeconds
		case ps.Phase == "exec":
			execWall += ps.WallSeconds
		}
	}
	if obsdWall <= 0 {
		return nil, fmt.Errorf("no (obsd, scrape) wall attributed — scrape overhead unaccounted")
	}
	if budget := max(0.01*execWall, 0.050); obsdWall > budget {
		return nil, fmt.Errorf("obsd scrape wall %.1fms exceeds budget %.1fms (exec wall %.1fms)",
			obsdWall*1e3, budget*1e3, execWall*1e3)
	}
	if keep {
		c.alerts, c.dash, c.metrics, c.qlogBytes = alerts, dash, metricsText, logBytes
		fmt.Printf("dashcheck: surfaces ok (alerts %dB, dash %dB, %d qlog records)\n",
			len(alerts), len(dash), len(recs))
		fmt.Printf("dashcheck: scrape overhead %.2fms over %d scrapes (exec wall %.1fms)\n",
			obsdWall*1e3, 2+scrapes+1, execWall*1e3)
	}
	return &result{
		alerts:        alerts,
		alertMetrics:  []byte(strings.Join(alertLines, "\n")),
		qlogAlerts:    qlogAlerts.Bytes(),
		scrapesToFire: scrapes,
	}, nil
}

// dump writes whatever the checker captured into the artifacts
// directory so a CI failure ships the evidence.
func (c *checker) dump() {
	if c.artifacts == "" {
		return
	}
	if err := os.MkdirAll(c.artifacts, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "dashcheck: artifacts:", err)
		return
	}
	for name, data := range map[string][]byte{
		"alerts.json": c.alerts,
		"dash.html":   c.dash,
		"metrics.txt": c.metrics,
		"qlog.jsonl":  c.qlogBytes,
	} {
		if len(data) == 0 {
			continue
		}
		path := filepath.Join(c.artifacts, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dashcheck: artifacts:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "dashcheck: wrote %s (%d bytes)\n", path, len(data))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func httpGet(url string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func httpCode(url string) int {
	_, code, err := httpGet(url)
	if err != nil {
		return -1
	}
	return code
}
