// Command qlogcheck is the wall-clock observability smoke test
// (`make qlog-smoke`). It boots the engine behind the serving layer on
// an ephemeral port, posts identified queries over HTTP, and then
// proves the request-ID join end to end:
//
//   - every posted X-Request-ID has exactly one structured query-log
//     record, and the log as a whole passes qlog.Validate
//   - ok records account for their wall clock: the phase breakdown
//     (queue-wait + admission + parse + plan + exec + serialize) sums
//     to the total within 5% (with a small absolute floor for
//     sub-millisecond queries)
//   - the same ID resolves at GET /debug/trace/{id} to Chrome
//     trace-event JSON that validates, and appears inside it
//   - EXPLAIN ANALYZE reports carry the same request_id
//   - /metrics exposes the blu_go_* runtime family and the blu_slo_*
//     burn-rate family, and the scrape validates
//   - /debug/trace/slow serves the retained slow traces
//
// With -artifacts DIR the /metrics scrape, the slow-trace JSON and the
// query log are written into DIR for CI upload when the check fails.
//
// Usage:
//
//	qlogcheck [-sf 0.002] [-seed 20160626] [-queries 8] [-artifacts DIR]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"blugpu/internal/bench"
	"blugpu/internal/metrics"
	"blugpu/internal/qlog"
	"blugpu/internal/serve"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.002, "dataset scale factor")
	seed := flag.Uint64("seed", 20160626, "generator seed")
	nq := flag.Int("queries", 8, "identified queries to post (cycled from the BD Insights suite)")
	artifacts := flag.String("artifacts", "", "directory to dump /metrics, slow traces and the query log into")
	flag.Parse()

	c := &checker{artifacts: *artifacts}
	if err := c.run(*sf, *seed, *nq); err != nil {
		c.dump()
		fmt.Fprintln(os.Stderr, "qlogcheck:", err)
		os.Exit(1)
	}
	fmt.Println("qlogcheck: wall-clock observability ok")
}

type checker struct {
	artifacts string
	logBuf    bytes.Buffer
	metrics   []byte
	slowTrace []byte
	base      string
}

func (c *checker) run(sf float64, seed uint64, nq int) error {
	fmt.Printf("qlogcheck: generating dataset (sf=%g, seed=%d)...\n", sf, seed)
	h, err := bench.NewHarness(bench.Config{SF: sf, Seed: seed, Devices: 2, Degree: 8, Trace: trace.New()})
	if err != nil {
		return err
	}
	// A 1µs slow threshold forces every query into slow retention so the
	// slow-trace surface is guaranteed to have content.
	server, err := serve.New(h.Eng, serve.Config{
		Log:       qlog.New(&c.logBuf),
		SlowQuery: time.Microsecond,
	})
	if err != nil {
		return err
	}
	engineSources := metrics.SourcesFromEngine(h.Eng)
	sources := func() metrics.Sources {
		src := engineSources()
		src.Admission = server.AdmissionSnapshot
		src.Runtime = metrics.SampleRuntime
		return src
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewMux(server, metrics.AdminMux(sources))}
	go srv.Serve(ln)
	defer srv.Close()
	c.base = "http://" + ln.Addr().String()

	// Post identified queries: every other one asks for EXPLAIN ANALYZE.
	suite := workload.BDInsights()
	type posted struct {
		id      string
		explain bool
	}
	var sent []posted
	for i := 0; i < nq; i++ {
		q := suite[i%len(suite)]
		id := fmt.Sprintf("qlogcheck-%03d", i+1)
		withExplain := i%2 == 0
		body, _ := json.Marshal(map[string]any{
			"sql": q.SQL, "name": q.ID, "session": "qlogcheck", "explain": withExplain,
		})
		req, err := http.NewRequest(http.MethodPost, c.base+"/query", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s (%s): HTTP %d: %.200s", id, q.ID, resp.StatusCode, respBody)
		}
		if got := resp.Header.Get("X-Request-ID"); got != id {
			return fmt.Errorf("%s: response header echoes %q", id, got)
		}
		var out struct {
			RequestID string          `json:"request_id"`
			Explain   json.RawMessage `json:"explain"`
		}
		if err := json.Unmarshal(respBody, &out); err != nil {
			return fmt.Errorf("%s: bad response body: %w", id, err)
		}
		if out.RequestID != id {
			return fmt.Errorf("%s: body carries request_id %q", id, out.RequestID)
		}
		if withExplain {
			var rep struct {
				RequestID string `json:"request_id"`
			}
			if err := json.Unmarshal(out.Explain, &rep); err != nil {
				return fmt.Errorf("%s: bad explain report: %w", id, err)
			}
			if rep.RequestID != id {
				return fmt.Errorf("%s: EXPLAIN report carries request_id %q", id, rep.RequestID)
			}
		}
		sent = append(sent, posted{id: id, explain: withExplain})
	}
	fmt.Printf("qlogcheck: %d identified queries ok (explain on %d)\n", len(sent), (nq+1)/2)

	// The query log: structurally valid, one record per posted ID, and
	// the phase breakdown accounts for the wall clock.
	if err := qlog.Validate(c.logBuf.Bytes()); err != nil {
		return fmt.Errorf("query log invalid: %w", err)
	}
	recs, err := qlog.Decode(c.logBuf.Bytes())
	if err != nil {
		return err
	}
	byID := map[string]int{}
	slowEvents := 0
	for _, rec := range recs {
		if rec.Event == qlog.EventSlow {
			slowEvents++
			continue
		}
		byID[rec.RequestID]++
		if rec.Outcome != qlog.OutcomeOK {
			return fmt.Errorf("%s: outcome %s (%s)", rec.RequestID, rec.Outcome, rec.Error)
		}
		sum := rec.Phases.SumMs()
		if diff := math.Abs(rec.TotalMs - sum); diff > math.Max(0.05*rec.TotalMs, 0.25) {
			return fmt.Errorf("%s: phases sum %.3fms vs total %.3fms (over 5%%): %+v",
				rec.RequestID, sum, rec.TotalMs, rec.Phases)
		}
		if rec.Phases.SerializeMs <= 0 || rec.ResultBytes == 0 {
			return fmt.Errorf("%s: serialize phase unmeasured (%+v)", rec.RequestID, rec.Phases)
		}
	}
	for _, p := range sent {
		if byID[p.id] != 1 {
			return fmt.Errorf("%s: %d query-log records, want exactly 1", p.id, byID[p.id])
		}
	}
	if slowEvents == 0 {
		return fmt.Errorf("no slow_query events despite a 1µs threshold")
	}
	fmt.Printf("qlogcheck: query log ok (%d records, %d slow events, phases reconcile)\n", len(recs), slowEvents)

	// The live tracer: every posted ID resolves to valid Chrome JSON
	// carrying that ID (the ring is larger than the posted count).
	for _, p := range sent {
		body, code, err := httpGet(c.base + "/debug/trace/" + p.id)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("/debug/trace/%s: HTTP %d: %.120s", p.id, code, body)
		}
		if err := trace.ValidateChrome(body); err != nil {
			return fmt.Errorf("/debug/trace/%s: %w", p.id, err)
		}
		if !bytes.Contains(body, []byte(`"request_id":"`+p.id+`"`)) {
			return fmt.Errorf("/debug/trace/%s: export does not carry the ID", p.id)
		}
	}
	body, code, err := httpGet(c.base + "/debug/trace/qlogcheck-never-sent")
	if err != nil {
		return err
	}
	if code != http.StatusNotFound {
		return fmt.Errorf("unknown trace ID: HTTP %d, want 404: %.120s", code, body)
	}
	c.slowTrace, code, err = httpGet(c.base + "/debug/trace/slow")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/debug/trace/slow: HTTP %d", code)
	}
	if err := trace.ValidateChrome(c.slowTrace); err != nil {
		return fmt.Errorf("/debug/trace/slow: %w", err)
	}
	fmt.Printf("qlogcheck: /debug/trace ok (%d IDs joined, slow export %d bytes)\n", len(sent), len(c.slowTrace))

	// The metrics surface: runtime and SLO families present and valid.
	c.metrics, code, err = httpGet(c.base + "/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/metrics: HTTP %d", code)
	}
	if err := metrics.ValidateExposition(c.metrics); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	for _, family := range []string{
		"blu_go_goroutines",
		"blu_go_heap_objects_bytes",
		"blu_go_gc_cycles_total",
		"blu_slo_threshold_seconds",
		"blu_slo_burn_rate",
		"blu_serve_wall_seconds_bucket",
		"blu_serve_slow_queries_total",
	} {
		if !strings.Contains(string(c.metrics), family) {
			return fmt.Errorf("/metrics: family %s missing", family)
		}
	}
	fmt.Printf("qlogcheck: /metrics ok (%d bytes, blu_go_* and blu_slo_* present)\n", len(c.metrics))
	return nil
}

// dump writes whatever the checker captured into the artifacts
// directory so a CI failure ships the evidence.
func (c *checker) dump() {
	if c.artifacts == "" {
		return
	}
	if err := os.MkdirAll(c.artifacts, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "qlogcheck: artifacts:", err)
		return
	}
	// Fetch anything not yet captured so the dump is as complete as the
	// failure allows.
	if c.metrics == nil && c.base != "" {
		c.metrics, _, _ = httpGet(c.base + "/metrics")
	}
	if c.slowTrace == nil && c.base != "" {
		c.slowTrace, _, _ = httpGet(c.base + "/debug/trace/slow")
	}
	for name, data := range map[string][]byte{
		"metrics.txt":     c.metrics,
		"trace_slow.json": c.slowTrace,
		"qlog.jsonl":      c.logBuf.Bytes(),
	} {
		if len(data) == 0 {
			continue
		}
		path := filepath.Join(c.artifacts, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qlogcheck: artifacts:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "qlogcheck: wrote %s (%d bytes)\n", path, len(data))
	}
}

func httpGet(url string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}
