GO ?= go

# Packages with parallel host-side execution; the race target drives the
# differential tests (degrees 1/2/8), the scheduler/fault stress tests and
# the concurrent span-tracer stress test under the race detector.
PARALLEL_PKGS = ./internal/parallel ./internal/columnar ./internal/expr \
                ./internal/evaluator ./internal/bsort ./internal/engine \
                ./internal/sched ./internal/fault ./internal/trace \
                ./internal/monitor ./internal/metrics ./internal/fusion \
                ./internal/serve ./internal/prof ./internal/hostmem \
                ./internal/obsd

.PHONY: build vet test race bench check trace-smoke metrics-smoke explain-smoke bench-gate wall-gate fuse-smoke serve-smoke qlog-smoke prof-smoke dash-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(PARALLEL_PKGS)

bench:
	$(GO) test -bench 'ParallelGather|PartialKeyBuild' -benchmem -run '^$$' \
		./internal/columnar ./internal/bsort

# End-to-end tracing smoke: run one small traced experiment through
# blubench and validate the exported JSON against the trace-event schema.
trace-smoke:
	$(GO) run ./cmd/blubench -sf 0.004 -trace /tmp/blu-trace-smoke.json fig5 > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/blu-trace-smoke.json

# End-to-end metrics smoke: boot bluserve, warm it up, scrape every admin
# endpoint against the live server and validate the exposition syntax.
# sf=0.02 is the smallest scale where the optimizer routes work to the
# GPU, so the scrape covers the kernel/transfer/scheduler families.
metrics-smoke:
	$(GO) run ./cmd/bluserve -sf 0.02 -smoke

# End-to-end explain smoke: run the EXPLAIN ANALYZE suite through
# blubench and validate every report — schema, decode, and full
# reconciliation (no unattributed operators, no orphaned device events,
# no monitor-vs-span counter mismatches).
explain-smoke:
	$(GO) run ./cmd/blubench -sf 0.004 -explain /tmp/blu-explain-smoke.json fig5 > /dev/null
	$(GO) run ./cmd/explaincheck /tmp/blu-explain-smoke.json

# Perf-regression gate: run the benchdiff suite and compare the modeled
# (deterministic) timings against the committed BENCH_0.json baseline.
bench-gate:
	$(GO) run ./cmd/benchdiff -out /tmp/blu-bench-current.json

# Wall-clock regression gate: the suite runs three times, the modeled
# columns must not drift across repeats, and the median wall_ms_p50 per
# experiment may grow at most 4x (threshold 3.0) over the BENCH_4.json
# baseline, above a 10ms noise floor. The generous threshold, noise
# floor and median-of-repeats make the gate stable enough that CI now
# runs it as a blocking step alongside the modeled bench-gate.
# -trend-slope additionally fails the run if a gated sustained-serving
# trend series (queue depth, shed rate) drifts upward faster than
# 50 units/s instead of holding steady state; it engages once a
# baseline that carries series is committed.
wall-gate:
	$(GO) run ./cmd/benchdiff -baseline BENCH_4.json -wall-repeats 3 \
		-wall-threshold 3.0 -wall-floor-ms 10 -trend-slope 50 \
		-out /tmp/blu-bench-wall.json

# Data-path fusion smoke: run the BD + ROLAP suites through a fused and
# an unfused engine over the same dataset, diff every result table
# byte-for-byte, and assert the fused run moved fewer H2D bytes.
fuse-smoke:
	$(GO) run ./cmd/fusecheck

# End-to-end serving smoke: boot bluserve with a deliberately small
# admission queue, drive a multi-user mix through POST /query over HTTP
# (retrying shed 429s), run one inline EXPLAIN ANALYZE, drain, verify
# the post-drain 503, and reconcile the admission ledger via
# /debug/serve.
serve-smoke:
	$(GO) run ./cmd/bluserve -sf 0.02 -queue 4 -serve-smoke

# Wall-clock observability smoke: post identified queries over HTTP and
# prove the request-ID join end to end — query log (validated, phases
# summing to the wall total), /debug/trace/{id} Chrome JSON, EXPLAIN
# ANALYZE request_id, and the blu_go_*/blu_slo_* metric families. On
# failure the /metrics scrape, slow traces and query log land in
# /tmp/blu-qlog-artifacts for CI upload.
qlog-smoke:
	$(GO) run ./cmd/qlogcheck -artifacts /tmp/blu-qlog-artifacts

# Resource-attribution smoke: post identified queries with the prof
# accountant and profile captor attached, then prove the blu_prof_*
# ledger on /metrics reconciles against the query log per class and
# phase, and that /debug/prof/capture + /debug/prof/hotspots serve. On
# failure the scrape, digest, capture and query log land in
# /tmp/blu-prof-artifacts for CI upload.
prof-smoke:
	$(GO) run ./cmd/profcheck -artifacts /tmp/blu-prof-artifacts

# Embedded-observability smoke: boot the serving stack with an obsd
# store on an injected clock, trip every circuit breaker, and prove the
# AllBreakersOpen page alert fires within one `for:` window, resolves
# after recovery, and shows the full lifecycle on /debug/alerts,
# blu_alerts_*, the query log and /debug/dash — byte-identically across
# two runs. On failure the alert JSON, dash HTML, scrape and query log
# land in /tmp/blu-dash-artifacts for CI upload.
dash-smoke:
	$(GO) run ./cmd/dashcheck -artifacts /tmp/blu-dash-artifacts

check: vet test race trace-smoke metrics-smoke explain-smoke fuse-smoke serve-smoke qlog-smoke prof-smoke dash-smoke bench-gate
