GO ?= go

# Packages with parallel host-side execution; the race target drives the
# differential tests (degrees 1/2/8) and the scheduler/fault stress tests
# under the race detector.
PARALLEL_PKGS = ./internal/parallel ./internal/columnar ./internal/expr \
                ./internal/evaluator ./internal/bsort ./internal/engine \
                ./internal/sched ./internal/fault

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(PARALLEL_PKGS)

bench:
	$(GO) test -bench 'ParallelGather|PartialKeyBuild' -benchmem -run '^$$' \
		./internal/columnar ./internal/bsort

check: vet test race
