GO ?= go

# Packages with parallel host-side execution; the race target drives the
# differential tests (degrees 1/2/8), the scheduler/fault stress tests and
# the concurrent span-tracer stress test under the race detector.
PARALLEL_PKGS = ./internal/parallel ./internal/columnar ./internal/expr \
                ./internal/evaluator ./internal/bsort ./internal/engine \
                ./internal/sched ./internal/fault ./internal/trace \
                ./internal/monitor ./internal/metrics ./internal/fusion \
                ./internal/serve

.PHONY: build vet test race bench check trace-smoke metrics-smoke explain-smoke bench-gate fuse-smoke serve-smoke qlog-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(PARALLEL_PKGS)

bench:
	$(GO) test -bench 'ParallelGather|PartialKeyBuild' -benchmem -run '^$$' \
		./internal/columnar ./internal/bsort

# End-to-end tracing smoke: run one small traced experiment through
# blubench and validate the exported JSON against the trace-event schema.
trace-smoke:
	$(GO) run ./cmd/blubench -sf 0.004 -trace /tmp/blu-trace-smoke.json fig5 > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/blu-trace-smoke.json

# End-to-end metrics smoke: boot bluserve, warm it up, scrape every admin
# endpoint against the live server and validate the exposition syntax.
# sf=0.02 is the smallest scale where the optimizer routes work to the
# GPU, so the scrape covers the kernel/transfer/scheduler families.
metrics-smoke:
	$(GO) run ./cmd/bluserve -sf 0.02 -smoke

# End-to-end explain smoke: run the EXPLAIN ANALYZE suite through
# blubench and validate every report — schema, decode, and full
# reconciliation (no unattributed operators, no orphaned device events,
# no monitor-vs-span counter mismatches).
explain-smoke:
	$(GO) run ./cmd/blubench -sf 0.004 -explain /tmp/blu-explain-smoke.json fig5 > /dev/null
	$(GO) run ./cmd/explaincheck /tmp/blu-explain-smoke.json

# Perf-regression gate: run the benchdiff suite and compare the modeled
# (deterministic) timings against the committed BENCH_0.json baseline.
bench-gate:
	$(GO) run ./cmd/benchdiff -out /tmp/blu-bench-current.json

# Data-path fusion smoke: run the BD + ROLAP suites through a fused and
# an unfused engine over the same dataset, diff every result table
# byte-for-byte, and assert the fused run moved fewer H2D bytes.
fuse-smoke:
	$(GO) run ./cmd/fusecheck

# End-to-end serving smoke: boot bluserve with a deliberately small
# admission queue, drive a multi-user mix through POST /query over HTTP
# (retrying shed 429s), run one inline EXPLAIN ANALYZE, drain, verify
# the post-drain 503, and reconcile the admission ledger via
# /debug/serve.
serve-smoke:
	$(GO) run ./cmd/bluserve -sf 0.02 -queue 4 -serve-smoke

# Wall-clock observability smoke: post identified queries over HTTP and
# prove the request-ID join end to end — query log (validated, phases
# summing to the wall total), /debug/trace/{id} Chrome JSON, EXPLAIN
# ANALYZE request_id, and the blu_go_*/blu_slo_* metric families. On
# failure the /metrics scrape, slow traces and query log land in
# /tmp/blu-qlog-artifacts for CI upload.
qlog-smoke:
	$(GO) run ./cmd/qlogcheck -artifacts /tmp/blu-qlog-artifacts

check: vet test race trace-smoke metrics-smoke explain-smoke fuse-smoke serve-smoke qlog-smoke bench-gate
