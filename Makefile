GO ?= go

# Packages with parallel host-side execution; the race target drives the
# differential tests (degrees 1/2/8), the scheduler/fault stress tests and
# the concurrent span-tracer stress test under the race detector.
PARALLEL_PKGS = ./internal/parallel ./internal/columnar ./internal/expr \
                ./internal/evaluator ./internal/bsort ./internal/engine \
                ./internal/sched ./internal/fault ./internal/trace \
                ./internal/monitor

.PHONY: build vet test race bench check trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(PARALLEL_PKGS)

bench:
	$(GO) test -bench 'ParallelGather|PartialKeyBuild' -benchmem -run '^$$' \
		./internal/columnar ./internal/bsort

# End-to-end tracing smoke: run one small traced experiment through
# blubench and validate the exported JSON against the trace-event schema.
trace-smoke:
	$(GO) run ./cmd/blubench -sf 0.004 -trace /tmp/blu-trace-smoke.json fig5 > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/blu-trace-smoke.json

check: vet test race trace-smoke
