// Quickstart: build a columnar table, run a hybrid group-by query with
// the GPU enabled and disabled, and inspect where it executed.
package main

import (
	"fmt"
	"log"
	"os"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
)

func main() {
	// An engine with two simulated Tesla K40s, like the paper's testbed.
	eng, err := engine.New(engine.Config{Devices: 2, Degree: 24})
	if err != nil {
		log.Fatal(err)
	}

	// Build a 200k-row sales table: month, store, quantity, price.
	month := columnar.NewInt64Builder("month")
	store := columnar.NewInt64Builder("store")
	qty := columnar.NewInt64Builder("qty")
	price := columnar.NewFloat64Builder("price")
	for i := 0; i < 200_000; i++ {
		month.Append(int64(i%12 + 1))
		store.Append(int64((i / 12) % 40))
		qty.Append(int64(i%9 + 1))
		price.Append(float64(i%500)/10 + 0.99)
	}
	sales := columnar.MustNewTable("sales",
		month.Build(), store.Build(), qty.Build(), price.Build())
	if err := eng.Register(sales); err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT month, SUM(qty) AS units, AVG(price) AS avg_price, COUNT(*) AS cnt
FROM sales GROUP BY month ORDER BY units DESC LIMIT 5`
	fmt.Println("query:", sql)

	for _, gpuOn := range []bool{true, false} {
		eng.SetGPUEnabled(gpuOn)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- GPU %v: modeled %v (device used: %v) ---\n",
			onOff(gpuOn), res.Modeled, res.GPUUsed)
		for _, op := range res.Ops {
			fmt.Printf("  %-10s %-24s rows=%-8d %v\n", op.Op, op.Detail, op.Rows, op.Modeled)
		}
		if gpuOn {
			fmt.Println("\nresult:")
			printTable(res)
		}
	}

	fmt.Println("\nmonitor:")
	eng.Monitor().Report(os.Stdout)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func printTable(res *engine.Result) {
	for _, c := range res.Columns {
		fmt.Printf("%-14s", c)
	}
	fmt.Println()
	for r := 0; r < res.Table.Rows(); r++ {
		for _, v := range res.Table.Row(r) {
			if v.Type == columnar.Float64 && !v.Null {
				fmt.Printf("%-14.2f", v.F)
			} else {
				fmt.Printf("%-14v", v)
			}
		}
		fmt.Println()
	}
}
