// BD Insights: generate the TPC-DS-derived dataset, run the workload's
// three user classes (returns dashboards, sales reports, data-scientist
// deep dives) with and without the GPU, and print the class-level gains —
// the experiment behind the paper's Figures 5 and 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"blugpu/internal/bench"
	"blugpu/internal/engine"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.05, "dataset scale factor")
	flag.Parse()

	fmt.Printf("generating BD Insights dataset at sf=%g...\n", *sf)
	h, err := bench.NewHarness(bench.Config{SF: *sf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %.1f MB, %d tables (7 facts, 17 dimensions)\n\n",
		float64(h.Data.TotalBytes())/(1<<20), len(h.Data.Tables))

	bd := workload.BDInsights()
	for _, class := range []workload.Class{workload.Simple, workload.Intermediate, workload.Complex} {
		qs := workload.Filter(bd, class)
		if class == workload.Simple {
			qs = qs[:10] // a sample of the 70 dashboards keeps this quick
		}
		runs, err := h.RunSet(qs)
		if err != nil {
			log.Fatal(err)
		}
		var on, off vtime.Duration
		gpuQueries := 0
		for _, r := range runs {
			on += r.GPUOn
			off += r.GPUOff
			if r.GPUUsed {
				gpuQueries++
			}
		}
		gain := (1 - on.Seconds()/off.Seconds()) * 100
		fmt.Printf("%-14s %3d queries: GPU on %8.2fms, off %8.2fms, gain %+5.1f%% (%d used the device)\n",
			class, len(runs), on.Milliseconds(), off.Milliseconds(), gain, gpuQueries)
	}

	fmt.Println("\nper-query detail for the complex class:")
	if err := h.Fig5(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Multi-user mode: the JMeter-style 7/2/1 analyst mix, GPU on vs off.
	fmt.Println("\nmulti-user mode (7 dashboard / 2 report / 1 data-scientist users):")
	mix := workload.DefaultUserMix()
	var streams []engine.Stream
	for _, qs := range workload.BDInsightsStreams(mix) {
		var s engine.Stream
		for _, q := range qs {
			s = append(s, q.SQL)
		}
		streams = append(streams, s)
	}
	h.Eng.SetGPUEnabled(true)
	on, err := h.Eng.RunConcurrent(streams, 0)
	if err != nil {
		log.Fatal(err)
	}
	h.Eng.SetGPUEnabled(false)
	off, err := h.Eng.RunConcurrent(streams, 0)
	if err != nil {
		log.Fatal(err)
	}
	h.Eng.SetGPUEnabled(true)
	fmt.Printf("  makespan GPU on %8.2fms, off %8.2fms -> %.2fx\n",
		on.Res.Makespan.Seconds()*1e3, off.Res.Makespan.Seconds()*1e3,
		off.Res.Makespan.Seconds()/on.Res.Makespan.Seconds())

	fmt.Println("\nmonitor:")
	h.Eng.Monitor().Report(os.Stdout)
}
