// Multi-GPU: a heterogeneous fleet behind the scheduler. Demonstrates
// admission by up-front memory demand, waiting vs CPU fallback when the
// fleet is busy, partitioning a task too large for any single device
// across the fleet (Section 2.2), and the learning feedback moderator
// picking kernels from observed outcomes (the paper's future-work item).
package main

import (
	"errors"
	"fmt"
	"log"

	"blugpu/internal/gpu"
	"blugpu/internal/groupby"
	"blugpu/internal/sched"
	"blugpu/internal/vtime"
)

func main() {
	model := vtime.Default()

	// A heterogeneous fleet: one full K40 plus a 4 GB card.
	big := vtime.TeslaK40()
	small := vtime.TeslaK40()
	small.Name = "K40 (4GB variant)"
	small.DeviceMemory = 4 << 30
	d0 := gpu.NewDevice(0, big, gpu.WithModel(model))
	d1 := gpu.NewDevice(1, small, gpu.WithModel(model))
	s, err := sched.New(d0, d1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %v, %v\n\n", d0, d1)

	// --- 1. Placement follows memory demand ---
	p, err := s.TryPlace(6 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6GB task placed on device %d (only the 12GB card fits it)\n", p.Device().ID())

	// --- 2. Busy fleet: wait-or-fallback ---
	p2, err := s.TryPlace(8 << 30)
	if errors.Is(err, sched.ErrNoDevice) {
		fmt.Println("8GB task rejected while the fleet is busy -> CPU fallback (Section 2.1.1 option 2)")
	} else if err == nil {
		p2.Release()
	}
	p.Release()

	// --- 3. Too large for any device: partition across the fleet ---
	placements, sizes, err := s.PlacePartitioned(14 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("14GB demand spread across %d devices: %v bytes per chunk\n", len(placements), sizes)
	for _, pl := range placements {
		pl.Release()
	}

	// --- 4. Partitioned group-by across both devices ---
	in := syntheticTask(400_000, 30_000)
	r0, err := d0.Reserve(groupby.MemoryDemand(in))
	if err != nil {
		log.Fatal(err)
	}
	r1, err := d1.Reserve(groupby.MemoryDemand(in))
	if err != nil {
		log.Fatal(err)
	}
	out, err := groupby.RunGPUPartitioned(in, []*gpu.Reservation{r0, r1}, model, groupby.GPUOptions{Pinned: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartitioned group-by: %d groups via %s, modeled %v\n",
		out.Groups, out.Stats.Kernel, out.Stats.Modeled)
	r0.Release()
	r1.Release()

	// --- 5. Feedback moderator learns the best kernel ---
	fb := groupby.NewFeedbackModerator()
	fb.Epsilon = 0
	task := syntheticTask(120_000, 12) // kernel-2 territory
	for round := 1; round <= 3; round++ {
		res, err := d0.Reserve(groupby.MemoryDemand(task))
		if err != nil {
			log.Fatal(err)
		}
		out, err := groupby.RunGPU(task, res, model, groupby.GPUOptions{
			Pinned: true, Feedback: fb, Race: round == 1, // first round races to seed the learner
		})
		res.Release()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: kernel=%s raced=%v modeled=%v\n",
			round, out.Stats.Kernel, out.Stats.Raced, out.Stats.Modeled)
	}
	fmt.Printf("learned state: %v, observations: %v\n", fb, fb.Observations(task))
}

// syntheticTask builds a narrow-key group-by input with the given size.
func syntheticTask(rows, groups int) *groupby.Input {
	in := &groupby.Input{
		NumRows:  rows,
		Keys:     make([]uint64, rows),
		Hashes:   make([]uint64, rows),
		KeyBytes: 8,
		KeyBits:  20,
		Aggs: []groupby.AggSpec{
			{Kind: groupby.Sum, Type: 0},
			{Kind: groupby.Count},
		},
		Payloads:  make([][]uint64, 2),
		EstGroups: uint64(groups),
	}
	in.Payloads[0] = make([]uint64, rows)
	state := uint64(12345)
	for i := 0; i < rows; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		k := (state >> 33) % uint64(groups)
		in.Keys[i] = k
		in.Hashes[i] = hashMix(k)
		in.Payloads[0][i] = uint64(i % 100)
	}
	return in
}

// hashMix mirrors the HASH evaluator's mixing.
func hashMix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
