// Cognos ROLAP: the 46-query analytical workload. Runs the serial
// comparison (Table 2 / Figure 7), including the device-memory gate that
// excludes the 12 heaviest queries, then replays the query profiles from
// concurrent streams through the discrete-event simulator to measure
// throughput (Table 3's phenomenon: offload gains grow with streams).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"blugpu/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.05, "dataset scale factor")
	flag.Parse()

	fmt.Printf("generating dataset at sf=%g...\n", *sf)
	h, err := bench.NewHarness(bench.Config{SF: *sf})
	if err != nil {
		log.Fatal(err)
	}

	// Serial: per-query and total, behind the scaled memory gate.
	if err := h.Run("fig7", os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := h.Run("table2", os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Concurrent: streams x degree throughput matrix.
	if err := h.Run("table3", os.Stdout); err != nil {
		log.Fatal(err)
	}
}
