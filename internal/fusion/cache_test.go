package fusion

import (
	"errors"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/fault"
	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

func testDevice(t *testing.T, mem int64, inj *fault.Injector) *gpu.Device {
	t.Helper()
	spec := vtime.TeslaK40()
	if mem > 0 {
		spec.DeviceMemory = mem
	}
	return gpu.NewDevice(0, spec, gpu.WithModel(vtime.Default()), gpu.WithFaults(inj))
}

func intCol(name string, vals []int64) columnar.Column {
	return columnar.NewInt64Column(name, vals, nil)
}

func TestColumnKeyContentAddressing(t *testing.T) {
	a := intCol("a", []int64{1, 2, 3, 4})
	// Same content in a distinct slice, different name: must collide.
	b := intCol("b", []int64{1, 2, 3, 4})
	if ColumnKey(a) != ColumnKey(b) {
		t.Fatalf("equal content produced different keys")
	}
	c := intCol("a", []int64{1, 2, 3, 5})
	if ColumnKey(a) == ColumnKey(c) {
		t.Fatalf("different content produced equal keys")
	}
	// A null changes the key even when the backing value is equal.
	bld := columnar.NewInt64Builder("a")
	for _, v := range []int64{1, 2, 3} {
		bld.Append(v)
	}
	bld.AppendNull()
	withNull := bld.Build()
	plain := intCol("a", append([]int64{1, 2, 3}, withNull.Data()[3]))
	if ColumnKey(withNull) == ColumnKey(plain) {
		t.Fatalf("null position did not affect the key")
	}
}

func TestEnsureHitSkipsTransfer(t *testing.T) {
	dev := testDevice(t, 0, nil)
	c := NewCache()
	model := vtime.Default()
	cols := []columnar.Column{intCol("x", []int64{1, 2, 3}), intCol("y", []int64{4, 5, 6})}

	l1, err := c.Ensure(dev, cols, 0, model, true, 4)
	if err != nil {
		t.Fatalf("first Ensure: %v", err)
	}
	if l1.Uploaded == 0 || l1.Saved != 0 {
		t.Fatalf("first Ensure: uploaded=%d saved=%d, want uploads only", l1.Uploaded, l1.Saved)
	}
	xfers := dev.Counters().Transfers
	l1.Release()

	// Equal content in fresh slices: both columns must hit.
	again := []columnar.Column{intCol("x2", []int64{1, 2, 3}), intCol("y2", []int64{4, 5, 6})}
	l2, err := c.Ensure(dev, again, 0, model, true, 4)
	if err != nil {
		t.Fatalf("second Ensure: %v", err)
	}
	defer l2.Release()
	if l2.Uploaded != 0 || l2.Saved != l1.Uploaded {
		t.Fatalf("second Ensure: uploaded=%d saved=%d, want 0/%d", l2.Uploaded, l2.Saved, l1.Uploaded)
	}
	if got := dev.Counters().Transfers; got != xfers {
		t.Fatalf("hit performed %d device transfers", got-xfers)
	}
	if l2.Modeled != 0 {
		t.Fatalf("hit charged %v", l2.Modeled)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.SavedBytes != l1.Uploaded {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionLRUAndNoRoom(t *testing.T) {
	// Room for exactly one 4-row column image (16 bytes packed).
	dev := testDevice(t, DeviceBytes(4), nil)
	c := NewCache()
	model := vtime.Default()
	a := intCol("a", []int64{1, 2, 3, 4})
	b := intCol("b", []int64{5, 6, 7, 8})

	la, err := c.Ensure(dev, []columnar.Column{a}, 0, model, true, 4)
	if err != nil {
		t.Fatalf("Ensure a: %v", err)
	}

	// While a is pinned, b cannot fit and nothing is evictable.
	if _, err := c.Ensure(dev, []columnar.Column{b}, 0, model, true, 4); !errors.Is(err, ErrNoRoom) {
		t.Fatalf("Ensure b with a pinned: %v, want ErrNoRoom", err)
	}
	la.Release()

	// Unpinned, a is the LRU victim.
	lb, err := c.Ensure(dev, []columnar.Column{b}, 0, model, true, 4)
	if err != nil {
		t.Fatalf("Ensure b after release: %v", err)
	}
	lb.Release()
	if n, _ := c.Resident(0); n != 1 {
		t.Fatalf("resident entries = %d, want 1", n)
	}
	if c.MissBytes(0, []columnar.Column{a}) == 0 {
		t.Fatalf("a still resident after eviction")
	}
	if c.MissBytes(0, []columnar.Column{b}) != 0 {
		t.Fatalf("b not resident after insert")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}

	// Purge drops the remaining entry and frees its reservation.
	if freed := c.PurgeAll(); freed != DeviceBytes(4) {
		t.Fatalf("PurgeAll freed %d", freed)
	}
	if dev.UsedMemory() != 0 {
		t.Fatalf("device still holds %d bytes after purge", dev.UsedMemory())
	}
}

func TestEnsureFaultPropagates(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, H2D: 1.0})
	dev := testDevice(t, 0, inj)
	c := NewCache()
	_, err := c.Ensure(dev, []columnar.Column{intCol("a", []int64{1, 2})}, 0, vtime.Default(), true, 4)
	if !errors.Is(err, gpu.ErrInjected) {
		t.Fatalf("Ensure under H2D fault: %v, want ErrInjected", err)
	}
	if n, _ := c.Resident(0); n != 0 {
		t.Fatalf("faulted fill left %d entries resident", n)
	}
	if dev.UsedMemory() != 0 {
		t.Fatalf("faulted fill leaked %d reserved bytes", dev.UsedMemory())
	}
}
