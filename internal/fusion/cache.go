// Package fusion implements the device-resident column cache behind the
// engine's fused data path.
//
// The paper's prototype (and the reproduction's staged path) ships every
// group-by's input across PCIe on every execution: the MEMCPY evaluator
// stages into pinned host memory, the moderator uploads, the kernel runs,
// and the reservation is torn down — so the next query over the same
// columns pays the full transfer again. The related work the ROADMAP
// points at (data-path fusion, device-resident processing) gets its win
// largely by keeping operator inputs and intermediates on the device.
//
// This package supplies the resident half of that design: a per-device,
// content-addressed cache of compressed column images. Entries are keyed
// by column *content* (type, length, values, nulls), not by pointer or
// name, because the engine's late-materialization gathers rebuild column
// vectors on every execution — two runs of the same query produce equal
// content in distinct slices. Each entry owns its own device Reservation,
// so cached bytes are visible to the scheduler's admission control
// exactly like any kernel's working set; when a placement cannot be
// satisfied the engine purges the cache and retries, which keeps the
// cache strictly a performance layer — it can never make a query fail
// that would otherwise run.
//
// Entries are pinned (refcounted) for the duration of a fused chain and
// evicted in strict least-recently-used order, tracked by a monotonic use
// sequence so eviction is deterministic run to run.
package fusion

import (
	"errors"
	"math"
	"sync"

	"blugpu/internal/columnar"
	"blugpu/internal/gpu"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// ErrNoRoom is returned by Ensure when the device cannot hold a missing
// column even after evicting every unpinned entry. The caller declines
// fusion and falls back to the staged path; it is an admission outcome,
// not a fault.
var ErrNoRoom = errors.New("fusion: no device memory for column upload")

// Key addresses one column image by content. Length and type ride along
// with the 64-bit content hash so a collision would additionally need
// equal shape.
type Key struct {
	H uint64
	N int
	T columnar.Type
}

// mix64 folds v into h with a splitmix64-style avalanche.
func mix64(h, v uint64) uint64 {
	x := h + v + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mixBytes(h uint64, s string) uint64 {
	// FNV-1a over the string, folded once; dictionary entries are short.
	f := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		f ^= uint64(s[i])
		f *= 1099511628211
	}
	return mix64(h, f)
}

// ColumnKey computes the content address of a column: type, length, every
// value, every null position, and (for strings) the dictionary. Two
// columns with equal keys hold equal data regardless of which gather or
// scan produced them.
func ColumnKey(col columnar.Column) Key {
	h := mix64(0, uint64(col.Len()))
	switch c := col.(type) {
	case *columnar.Int64Column:
		for i, v := range c.Data() {
			h = mix64(h, uint64(v))
			if c.IsNull(i) {
				h = mix64(h, uint64(i)*2+1)
			}
		}
	case *columnar.Float64Column:
		for i, v := range c.Data() {
			h = mix64(h, math.Float64bits(v))
			if c.IsNull(i) {
				h = mix64(h, uint64(i)*2+1)
			}
		}
	case *columnar.StringColumn:
		for i, code := range c.Codes() {
			h = mix64(h, uint64(uint32(code)))
			if c.IsNull(i) {
				h = mix64(h, uint64(i)*2+1)
			}
		}
		for j := 0; j < c.DictSize(); j++ {
			h = mixBytes(h, c.Decode(int32(j)))
		}
	default:
		// Unknown column kinds hash by identity-free shape only; they
		// still cache correctly (equal shape + type), just coarsely.
	}
	return Key{H: h, N: col.Len(), T: col.Type()}
}

// DeviceBytes is the device footprint of one cached column: BLU-style
// 4-byte codes packed two per 64-bit word, the same compressed width the
// staged path models for its uploads.
func DeviceBytes(rows int) int64 {
	return int64((rows+1)/2) * 8
}

// Pack renders a column into its device image: 4-byte codes, two per
// word. NULLs pack as the all-ones code. Kernels never read these words
// (the simulation computes from host slices); the image exists so the
// transfer engine moves — and accounts — real data.
func Pack(col columnar.Column) []uint64 {
	n := col.Len()
	words := make([]uint64, (n+1)/2)
	put := func(i int, code uint32) {
		words[i/2] |= uint64(code) << (uint(i%2) * 32)
	}
	switch c := col.(type) {
	case *columnar.Int64Column:
		for i, v := range c.Data() {
			if c.IsNull(i) {
				put(i, 0xFFFFFFFF)
			} else {
				put(i, uint32(v))
			}
		}
	case *columnar.Float64Column:
		for i, v := range c.Data() {
			if c.IsNull(i) {
				put(i, 0xFFFFFFFF)
			} else {
				put(i, uint32(math.Float64bits(v)>>32))
			}
		}
	case *columnar.StringColumn:
		for i, code := range c.Codes() {
			if c.IsNull(i) {
				put(i, 0xFFFFFFFF)
			} else {
				put(i, uint32(code))
			}
		}
	}
	return words
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	SavedBytes    int64 // H2D bytes avoided by residency
	UploadedBytes int64 // H2D bytes actually moved by cache fills
}

// entry is one resident column image. The reservation is the entry's
// claim on device memory; releasing it is eviction.
type entry struct {
	key     Key
	bytes   int64
	res     *gpu.Reservation
	pins    int
	lastUse uint64
}

type deviceCache struct {
	entries map[Key]*entry
}

// Cache is the engine-wide device-resident column cache. Safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	devs  map[int]*deviceCache
	seq   uint64
	stats Stats
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{devs: make(map[int]*deviceCache)}
}

func (c *Cache) deviceLocked(id int) *deviceCache {
	dc := c.devs[id]
	if dc == nil {
		dc = &deviceCache{entries: make(map[Key]*entry)}
		c.devs[id] = dc
	}
	return dc
}

// MissBytes reports how many H2D bytes a fused chain over cols would
// have to upload on device devID right now — the fuse/decline policy's
// input. Resident columns cost nothing.
func (c *Cache) MissBytes(devID int, cols []columnar.Column) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	dc := c.devs[devID]
	var miss int64
	for _, col := range cols {
		if dc != nil {
			if _, ok := dc.entries[ColumnKey(col)]; ok {
				continue
			}
		}
		miss += DeviceBytes(col.Len())
	}
	return miss
}

// Lease pins a chain's column set on one device for the duration of a
// fused execution. Release unpins; the columns stay resident for the
// next chain until evicted.
type Lease struct {
	c       *Cache
	entries []*entry
	// Modeled is the time charged for the fills: host packing into the
	// pinned segment plus the PCIe transfers. Hits charge nothing.
	Modeled vtime.Duration
	// Uploaded and Saved split the chain's input bytes into moved vs
	// avoided-by-residency.
	Uploaded int64
	Saved    int64
}

// Release unpins the lease's entries. Idempotent.
func (l *Lease) Release() {
	if l == nil || l.c == nil {
		return
	}
	l.c.mu.Lock()
	for _, e := range l.entries {
		if e.pins > 0 {
			e.pins--
		}
	}
	l.c.mu.Unlock()
	l.entries = nil
	l.c = nil
}

// evictOneLocked drops the least-recently-used unpinned entry on dc,
// returning false when nothing is evictable. lastUse is a process-wide
// monotonic sequence, so the victim — and therefore the whole run — is
// deterministic.
func (c *Cache) evictOneLocked(dc *deviceCache) bool {
	var victim *entry
	for _, e := range dc.entries {
		if e.pins > 0 {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(dc.entries, victim.key)
	victim.res.Release()
	c.stats.Evictions++
	return true
}

// Ensure pins every column of cols on dev, uploading the ones not yet
// resident. Fills reserve through dev.ReserveSpan under sp, so cached
// bytes participate in admission control and the reserve/H2D events land
// on the fused chain's span. When the device is full, unpinned entries
// are evicted LRU-first before giving up with ErrNoRoom (decline — run
// staged); injected reserve/H2D faults propagate as-is (chain fault —
// spill and fall back). On error the lease is already unwound.
func (c *Cache) Ensure(dev *gpu.Device, cols []columnar.Column, sp trace.SpanID, model *vtime.CostModel, pinned bool, degree int) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dc := c.deviceLocked(dev.ID())
	lease := &Lease{c: c}
	fail := func(err error) (*Lease, error) {
		for _, e := range lease.entries {
			if e.pins > 0 {
				e.pins--
			}
		}
		return nil, err
	}
	for _, col := range cols {
		key := ColumnKey(col)
		if e, ok := dc.entries[key]; ok {
			c.seq++
			e.lastUse = c.seq
			e.pins++
			lease.entries = append(lease.entries, e)
			lease.Saved += e.bytes
			c.stats.Hits++
			c.stats.SavedBytes += e.bytes
			continue
		}
		words := Pack(col)
		bytes := int64(len(words)) * 8
		var res *gpu.Reservation
		for {
			var err error
			res, err = dev.ReserveSpan(bytes, sp)
			if err == nil {
				break
			}
			if errors.Is(err, gpu.ErrInjected) {
				return fail(err)
			}
			if !c.evictOneLocked(dc) {
				return fail(ErrNoRoom)
			}
		}
		buf, err := res.AllocWords(len(words))
		if err != nil {
			res.Release()
			return fail(err)
		}
		// The fill stages through the registered segment like the MEMCPY
		// evaluator (host copy), then crosses PCIe once.
		t, err := dev.CopyToDevice(buf, words, pinned)
		if err != nil {
			res.Release()
			return fail(err)
		}
		lease.Modeled += model.HostCopy(bytes, degree) + t
		c.seq++
		e := &entry{key: key, bytes: bytes, res: res, pins: 1, lastUse: c.seq}
		dc.entries[key] = e
		lease.entries = append(lease.entries, e)
		lease.Uploaded += bytes
		c.stats.Misses++
		c.stats.UploadedBytes += bytes
	}
	return lease, nil
}

// PurgeAll evicts every unpinned entry on every device, returning the
// bytes freed. The engine calls it when a placement fails, so resident
// columns yield to live queries instead of starving them.
func (c *Cache) PurgeAll() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for _, dc := range c.devs {
		for {
			var victim *entry
			for _, e := range dc.entries {
				if e.pins > 0 {
					continue
				}
				if victim == nil || e.lastUse < victim.lastUse {
					victim = e
				}
			}
			if victim == nil {
				break
			}
			delete(dc.entries, victim.key)
			victim.res.Release()
			c.stats.Evictions++
			freed += victim.bytes
		}
	}
	return freed
}

// Resident returns the number of entries and bytes currently cached on
// device devID.
func (c *Cache) Resident(devID int) (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dc := c.devs[devID]
	if dc == nil {
		return 0, 0
	}
	for _, e := range dc.entries {
		entries++
		bytes += e.bytes
	}
	return entries, bytes
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
