// Package hostmem implements the pinned (registered) host-memory registry
// from paper Section 2.1.2.
//
// Registering individual host buffers with a GPU on every kernel call is
// expensive, so the engine registers one large memory segment with the
// device(s) once at startup and serves all per-kernel staging buffers from
// it with a free-list allocator. Transfers from this registered segment
// run at full pinned PCIe bandwidth (~4x unregistered). When a kernel call
// finishes, its staging buffers return to the registered free pool.
package hostmem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrExhausted is returned when the registered segment cannot satisfy an
// allocation. Callers typically fall back to an unregistered buffer (and
// pay the slow-transfer penalty) or run the operation on the CPU.
var ErrExhausted = errors.New("hostmem: registered segment exhausted")

// Alignment of every block served from the segment. 64 bytes keeps staged
// column vectors cache-line aligned on the host and satisfies the 16-byte
// alignment the device model requires.
const Alignment = 64

// Registry is one large registered host-memory segment with a first-fit
// free-list sub-allocator. It is safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	buf  []byte
	free []span // sorted by offset, coalesced

	inUse     int64
	peakInUse int64
	// watermark is the peak in-use level since the last ResetWatermark —
	// the per-epoch (typically per-query) high-water mark, as opposed to
	// peakInUse which covers the registry's whole lifetime.
	watermark    int64
	maxFreeSpans int
	allocs       uint64
	fails        uint64
}

type span struct {
	off, len int
}

// Block is one allocation from the registered segment. Release returns it
// to the free pool; using the block after Release is a caller bug.
type Block struct {
	reg      *Registry
	off      int
	data     []byte
	released bool
}

// NewRegistry registers a segment of the given size. In the real system
// this is the expensive cudaHostRegister call done once at engine startup.
func NewRegistry(size int) (*Registry, error) {
	if size <= 0 {
		return nil, errors.New("hostmem: segment size must be positive")
	}
	size = alignUp(size)
	return &Registry{
		buf:          make([]byte, size),
		free:         []span{{0, size}},
		maxFreeSpans: 1,
	}, nil
}

// Size returns the total registered segment size in bytes.
func (r *Registry) Size() int { return len(r.buf) }

// InUse returns the number of bytes currently allocated.
func (r *Registry) InUse() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse
}

// Stats describes allocator activity since startup.
type Stats struct {
	Size      int
	InUse     int64
	PeakInUse int64
	// Watermark is the peak in-use level since the last ResetWatermark
	// (per-query memory accounting reads it after each execution).
	Watermark int64
	Allocs    uint64
	Fails     uint64
	// FreeSpans is the current free-list length: 1 means the free space
	// is contiguous, more means fragmentation. MaxFreeSpans is the worst
	// fragmentation the allocator has seen.
	FreeSpans    int
	MaxFreeSpans int
}

// Stats returns a snapshot of allocator counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Size:         len(r.buf),
		InUse:        r.inUse,
		PeakInUse:    r.peakInUse,
		Watermark:    r.watermark,
		Allocs:       r.allocs,
		Fails:        r.fails,
		FreeSpans:    len(r.free),
		MaxFreeSpans: r.maxFreeSpans,
	}
}

// Watermark returns the peak in-use level since the last ResetWatermark.
func (r *Registry) Watermark() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watermark
}

// ResetWatermark rearms the per-epoch high-water mark at the current
// in-use level and returns the previous watermark. Callers doing
// per-query accounting reset before the query and read after it.
func (r *Registry) ResetWatermark() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.watermark
	r.watermark = r.inUse
	return old
}

// Alloc serves an n-byte block from the registered segment (first fit).
// It returns ErrExhausted when no free span is large enough.
func (r *Registry) Alloc(n int) (*Block, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hostmem: invalid allocation size %d", n)
	}
	n = alignUp(n)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.free {
		if s.len < n {
			continue
		}
		off := s.off
		if s.len == n {
			r.free = append(r.free[:i], r.free[i+1:]...)
		} else {
			r.free[i] = span{s.off + n, s.len - n}
		}
		r.inUse += int64(n)
		if r.inUse > r.peakInUse {
			r.peakInUse = r.inUse
		}
		if r.inUse > r.watermark {
			r.watermark = r.inUse
		}
		r.allocs++
		return &Block{reg: r, off: off, data: r.buf[off : off+n : off+n]}, nil
	}
	r.fails++
	return nil, ErrExhausted
}

// Bytes returns the block's backing memory.
func (b *Block) Bytes() []byte { return b.data }

// Len returns the (aligned) block length.
func (b *Block) Len() int { return len(b.data) }

// Registered reports whether the block came from the registered segment
// (always true for Registry blocks; false for fallback buffers).
func (b *Block) Registered() bool { return b.reg != nil }

// Release returns the block to the free pool. Release is idempotent.
func (b *Block) Release() {
	if b.released || b.reg == nil {
		b.released = true
		return
	}
	b.released = true
	r := b.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inUse -= int64(len(b.data))
	r.insertFree(span{b.off, len(b.data)})
}

// Unregistered returns a plain (not registered) buffer. Transfers from it
// model the 4x-slower unpinned PCIe path; the engine only uses it when the
// registered segment is exhausted.
func Unregistered(n int) *Block {
	return &Block{data: make([]byte, alignUp(n))}
}

// insertFree inserts s keeping r.free sorted by offset and coalescing with
// neighbors. Caller holds r.mu.
func (r *Registry) insertFree(s span) {
	i := sort.Search(len(r.free), func(i int) bool { return r.free[i].off > s.off })
	r.free = append(r.free, span{})
	copy(r.free[i+1:], r.free[i:])
	r.free[i] = s
	// Coalesce with next.
	if i+1 < len(r.free) && r.free[i].off+r.free[i].len == r.free[i+1].off {
		r.free[i].len += r.free[i+1].len
		r.free = append(r.free[:i+1], r.free[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && r.free[i-1].off+r.free[i-1].len == r.free[i].off {
		r.free[i-1].len += r.free[i].len
		r.free = append(r.free[:i], r.free[i+1:]...)
	}
	if len(r.free) > r.maxFreeSpans {
		r.maxFreeSpans = len(r.free)
	}
}

func alignUp(n int) int { return (n + Alignment - 1) &^ (Alignment - 1) }
