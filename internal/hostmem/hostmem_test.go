package hostmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(0); err == nil {
		t.Error("zero-size segment should be rejected")
	}
	if _, err := NewRegistry(-5); err == nil {
		t.Error("negative-size segment should be rejected")
	}
	r, err := NewRegistry(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != Alignment {
		t.Errorf("segment size should align up to %d, got %d", Alignment, r.Size())
	}
}

func TestAllocReleaseRoundTrip(t *testing.T) {
	r, _ := NewRegistry(1 << 20)
	b, err := r.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Registered() {
		t.Error("registry block should report Registered")
	}
	if b.Len() != alignUp(1000) {
		t.Errorf("Len = %d, want %d", b.Len(), alignUp(1000))
	}
	if r.InUse() != int64(b.Len()) {
		t.Errorf("InUse = %d, want %d", r.InUse(), b.Len())
	}
	copy(b.Bytes(), []byte("store_sales"))
	b.Release()
	if r.InUse() != 0 {
		t.Errorf("InUse after release = %d, want 0", r.InUse())
	}
	b.Release() // idempotent
	if r.InUse() != 0 {
		t.Error("double release must not corrupt accounting")
	}
}

func TestExhaustion(t *testing.T) {
	r, _ := NewRegistry(4 * Alignment)
	a, err := r.Alloc(3 * Alignment)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(2 * Alignment); err != ErrExhausted {
		t.Errorf("expected ErrExhausted, got %v", err)
	}
	st := r.Stats()
	if st.Fails != 1 {
		t.Errorf("Fails = %d, want 1", st.Fails)
	}
	a.Release()
	if _, err := r.Alloc(4 * Alignment); err != nil {
		t.Errorf("after release full-size alloc should succeed: %v", err)
	}
}

func TestInvalidAllocSize(t *testing.T) {
	r, _ := NewRegistry(1 << 16)
	if _, err := r.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := r.Alloc(-1); err == nil {
		t.Error("Alloc(-1) should fail")
	}
}

func TestCoalescing(t *testing.T) {
	r, _ := NewRegistry(8 * Alignment)
	blocks := make([]*Block, 8)
	for i := range blocks {
		b, err := r.Alloc(Alignment)
		if err != nil {
			t.Fatal(err)
		}
		blocks[i] = b
	}
	// Release in interleaved order; the free list must coalesce back to a
	// single span covering the whole segment.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		blocks[i].Release()
	}
	st := r.Stats()
	if st.FreeSpans != 1 {
		t.Errorf("free spans after full release = %d, want 1", st.FreeSpans)
	}
	if _, err := r.Alloc(8 * Alignment); err != nil {
		t.Errorf("full-segment alloc after coalescing should succeed: %v", err)
	}
}

func TestPeakTracking(t *testing.T) {
	r, _ := NewRegistry(1 << 20)
	a, _ := r.Alloc(100 * Alignment)
	b, _ := r.Alloc(50 * Alignment)
	a.Release()
	b.Release()
	st := r.Stats()
	if st.PeakInUse != int64(150*Alignment) {
		t.Errorf("PeakInUse = %d, want %d", st.PeakInUse, 150*Alignment)
	}
	if st.Allocs != 2 {
		t.Errorf("Allocs = %d, want 2", st.Allocs)
	}
}

func TestWatermarkResetsPerEpoch(t *testing.T) {
	r, _ := NewRegistry(1 << 20)
	a, _ := r.Alloc(100 * Alignment)
	a.Release()
	if got := r.Watermark(); got != int64(100*Alignment) {
		t.Errorf("Watermark = %d, want %d", got, 100*Alignment)
	}
	// Reset rearms at the current (zero) in-use level; the lifetime peak
	// is untouched.
	if old := r.ResetWatermark(); old != int64(100*Alignment) {
		t.Errorf("ResetWatermark returned %d, want %d", old, 100*Alignment)
	}
	if got := r.Watermark(); got != 0 {
		t.Errorf("Watermark after reset = %d, want 0", got)
	}
	b, _ := r.Alloc(30 * Alignment)
	defer b.Release()
	st := r.Stats()
	if st.Watermark != int64(30*Alignment) {
		t.Errorf("Watermark after second epoch = %d, want %d", st.Watermark, 30*Alignment)
	}
	if st.PeakInUse != int64(100*Alignment) {
		t.Errorf("PeakInUse = %d, want %d (lifetime peak must survive reset)", st.PeakInUse, 100*Alignment)
	}
}

func TestWatermarkResetWithLiveBlocks(t *testing.T) {
	r, _ := NewRegistry(1 << 20)
	a, _ := r.Alloc(10 * Alignment)
	r.ResetWatermark()
	// The watermark restarts at the live level, not zero.
	if got := r.Watermark(); got != int64(10*Alignment) {
		t.Errorf("Watermark = %d, want %d", got, 10*Alignment)
	}
	a.Release()
	if got := r.Watermark(); got != int64(10*Alignment) {
		t.Error("release must not lower the watermark")
	}
}

func TestMaxFreeSpansTracksFragmentation(t *testing.T) {
	r, _ := NewRegistry(8 * Alignment)
	blocks := make([]*Block, 8)
	for i := range blocks {
		blocks[i], _ = r.Alloc(Alignment)
	}
	if st := r.Stats(); st.FreeSpans != 0 {
		t.Errorf("FreeSpans fully allocated = %d, want 0", st.FreeSpans)
	}
	// Releasing every second block leaves four non-adjacent holes.
	for _, i := range []int{0, 2, 4, 6} {
		blocks[i].Release()
	}
	st := r.Stats()
	if st.FreeSpans != 4 {
		t.Errorf("FreeSpans after alternating release = %d, want 4", st.FreeSpans)
	}
	if st.MaxFreeSpans != 4 {
		t.Errorf("MaxFreeSpans = %d, want 4", st.MaxFreeSpans)
	}
	// Coalescing shrinks the live count but the high-water mark stays.
	for _, i := range []int{1, 3, 5, 7} {
		blocks[i].Release()
	}
	st = r.Stats()
	if st.FreeSpans != 1 {
		t.Errorf("FreeSpans after full release = %d, want 1", st.FreeSpans)
	}
	if st.MaxFreeSpans != 4 {
		t.Errorf("MaxFreeSpans after coalescing = %d, want 4", st.MaxFreeSpans)
	}
}

func TestUnregisteredFallback(t *testing.T) {
	b := Unregistered(100)
	if b.Registered() {
		t.Error("Unregistered block should not report Registered")
	}
	if len(b.Bytes()) != alignUp(100) {
		t.Errorf("len = %d, want %d", len(b.Bytes()), alignUp(100))
	}
	b.Release() // no-op, must not panic
}

func TestBlocksDoNotOverlap(t *testing.T) {
	r, _ := NewRegistry(1 << 16)
	a, _ := r.Alloc(128)
	b, _ := r.Alloc(128)
	for i := range a.Bytes() {
		a.Bytes()[i] = 0xAA
	}
	for i := range b.Bytes() {
		b.Bytes()[i] = 0xBB
	}
	for _, v := range a.Bytes() {
		if v != 0xAA {
			t.Fatal("block A was overwritten by block B")
		}
	}
}

func TestConcurrentAllocRelease(t *testing.T) {
	r, _ := NewRegistry(1 << 22)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b, err := r.Alloc(1024)
				if err != nil {
					continue
				}
				b.Bytes()[0] = 1
				b.Release()
			}
		}()
	}
	wg.Wait()
	if r.InUse() != 0 {
		t.Errorf("InUse after all releases = %d, want 0", r.InUse())
	}
}

// TestConcurrentWatermarkReset races ResetWatermark against live
// alloc/release traffic — the shape of concurrent EXPLAIN ANALYZE
// epochs sharing one registry. Invariants that must hold on every
// snapshot regardless of interleaving: the watermark never exceeds the
// lifetime peak, never goes negative, and a reset always rearms at the
// in-use level at or below the value it returned. Run under -race this
// is the data-race proof for the per-epoch reset.
func TestConcurrentWatermarkReset(t *testing.T) {
	r, _ := NewRegistry(1 << 22)
	var allocs sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		allocs.Add(1)
		go func() {
			defer allocs.Done()
			for i := 0; i < 300; i++ {
				b, err := r.Alloc(4096)
				if err != nil {
					continue
				}
				b.Release()
			}
		}()
	}
	resetterDone := make(chan struct{})
	go func() {
		defer close(resetterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			old := r.ResetWatermark()
			if old < 0 {
				t.Error("ResetWatermark returned negative")
				return
			}
			st := r.Stats()
			if st.Watermark < 0 || st.Watermark > st.PeakInUse {
				t.Errorf("snapshot broken: watermark=%d peak=%d", st.Watermark, st.PeakInUse)
				return
			}
		}
	}()
	allocs.Wait()
	close(stop)
	<-resetterDone
	if r.InUse() != 0 {
		t.Errorf("InUse after all releases = %d, want 0", r.InUse())
	}
	if r.Watermark() > r.Stats().PeakInUse {
		t.Errorf("final watermark %d exceeds peak %d", r.Watermark(), r.Stats().PeakInUse)
	}
}

func TestAllocNeverExceedsSegment(t *testing.T) {
	// Property: any sequence of aligned allocations either fits or fails,
	// and accounting stays consistent.
	f := func(sizes []uint16) bool {
		r, _ := NewRegistry(1 << 16)
		var live []*Block
		var sum int64
		for _, s := range sizes {
			n := int(s%2048) + 1
			b, err := r.Alloc(n)
			if err != nil {
				continue
			}
			live = append(live, b)
			sum += int64(b.Len())
		}
		if r.InUse() != sum || sum > int64(r.Size()) {
			return false
		}
		for _, b := range live {
			b.Release()
		}
		return r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
