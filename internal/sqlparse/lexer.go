// Package sqlparse implements the SQL subset the engine speaks: SELECT
// with expressions and aggregates (SUM/COUNT/AVG/MIN/MAX), star-join
// FROM/JOIN...ON chains, WHERE with AND/OR/NOT/BETWEEN/IN/IS NULL,
// GROUP BY, HAVING over select aliases, ORDER BY ... ASC/DESC, LIMIT, and
// RANK() OVER (ORDER BY ...) — the OLAP construct the paper calls out as
// driving SORT in the Cognos ROLAP workload.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents lower-cased
	pos  int
}

// keywords recognized by the lexer.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "BETWEEN": true, "IN": true, "IS": true,
	"NULL": true, "JOIN": true, "INNER": true, "ON": true, "ASC": true,
	"DESC": true, "SUM": true, "COUNT": true, "AVG": true, "MIN": true,
	"MAX": true, "RANK": true, "OVER": true, "PARTITION": true,
	"DISTINCT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
	}
}

func (l *lexer) number() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at offset %d", start)
}

func (l *lexer) symbol() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
}
