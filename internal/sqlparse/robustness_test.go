package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds arbitrary bytes and mutated valid queries:
// the parser must return (stmt, nil) or (nil, err), never panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnMutations(t *testing.T) {
	base := "SELECT a, SUM(b) AS s FROM t JOIN d ON x = y WHERE a BETWEEN 1 AND 9 GROUP BY a HAVING s > 2 ORDER BY s DESC LIMIT 5"
	// Truncations at every byte offset.
	for i := 0; i <= len(base); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", i, r)
				}
			}()
			Parse(base[:i])
		}()
	}
	// Token deletions.
	words := strings.Fields(base)
	for i := range words {
		mutated := strings.Join(append(append([]string{}, words[:i]...), words[i+1:]...), " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic deleting token %d (%q): %v", i, words[i], r)
				}
			}()
			Parse(mutated)
		}()
	}
}

// TestValidQueriesAllReparse: every workload query must survive a
// parse -> render -> parse round trip with an identical rendering.
func TestRenderedQueriesReparse(t *testing.T) {
	queries := []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE a > 1 AND b IN (1, 2) ORDER BY a LIMIT 3",
		"SELECT a, SUM(b) AS s, RANK() OVER (PARTITION BY a ORDER BY s DESC) AS r FROM t GROUP BY a",
		"SELECT a FROM t WHERE NOT a = 1 OR b IS NOT NULL",
		"SELECT a + b * 2 AS z FROM t WHERE c BETWEEN -1 AND 1",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip diverged:\n%s\n%s", s1.String(), s2.String())
		}
	}
}
