package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting with %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	p.accept(tokKeyword, "DISTINCT") // tolerated; grouping makes it moot

	if p.accept(tokSymbol, "*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.From = from.text

	for p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") {
		p.accept(tokKeyword, "INNER")
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		tbl, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tbl.text, LeftCol: left, RightCol: right})
	}

	if p.accept(tokKeyword, "WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			id, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, id)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		items, err := p.orderItems()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = items
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, p.errf("invalid LIMIT %q", n.text)
		}
		stmt.Limit = v
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.addExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.text
	} else if p.at(tokIdent, "") {
		// bare alias: SELECT sum(x) total
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) orderItems() ([]OrderItem, error) {
	var items []OrderItem
	for {
		e, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Expr: e}
		if p.accept(tokKeyword, "DESC") {
			item.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
		items = append(items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return items, nil
}

// --- expression grammar: or > and > not > cmp > add > mul > unary > primary ---

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", Inner: inner}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// BETWEEN / IN / IS
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi}, nil
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []Expr
		for {
			v, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InList{X: left, Vals: vals}, nil
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Negate: neg}, nil
	}
	for _, op := range []string{"<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", Inner: inner}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &NumberLit{Text: t.text, IsFloat: strings.Contains(t.text, ".")}, nil
	case t.kind == tokString:
		p.next()
		return &StringLit{Val: t.text}, nil
	case t.kind == tokKeyword && isFuncKeyword(t.text):
		return p.funcCall()
	case t.kind == tokIdent:
		return p.ident()
	case p.accept(tokSymbol, "("):
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func isFuncKeyword(s string) bool {
	switch s {
	case "SUM", "COUNT", "AVG", "MIN", "MAX", "RANK":
		return true
	}
	return false
}

func (p *parser) funcCall() (Expr, error) {
	name := p.next().text
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.accept(tokSymbol, "*") {
		fc.Star = true
	} else if !p.at(tokSymbol, ")") {
		p.accept(tokKeyword, "DISTINCT") // tolerated, not implemented
		for {
			arg, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, arg)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "OVER") {
		w, err := p.windowSpec()
		if err != nil {
			return nil, err
		}
		fc.Over = w
	}
	if name == "RANK" && fc.Over == nil {
		return nil, p.errf("RANK() requires an OVER clause")
	}
	return fc, nil
}

func (p *parser) windowSpec() (*WindowSpec, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	w := &WindowSpec{}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			id, err := p.ident()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, id)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		items, err := p.orderItems()
		if err != nil {
			return nil, err
		}
		w.OrderBy = items
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *parser) ident() (*Ident, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	id := &Ident{Name: t.text}
	if p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		id.Qualifier = id.Name
		id.Name = t2.text
	}
	return id, nil
}
