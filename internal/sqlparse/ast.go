package sqlparse

import (
	"fmt"
	"strings"
)

// Node is any AST node.
type Node interface{ String() string }

// Expr is any expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident references a column, optionally qualified (table.col).
type Ident struct {
	Qualifier string
	Name      string
}

func (e *Ident) exprNode() {}
func (e *Ident) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	Text    string
	IsFloat bool
}

func (e *NumberLit) exprNode()      {}
func (e *NumberLit) String() string { return e.Text }

// StringLit is a quoted string literal.
type StringLit struct{ Val string }

func (e *StringLit) exprNode()      {}
func (e *StringLit) String() string { return "'" + e.Val + "'" }

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or logical (AND OR).
type Binary struct {
	Op          string
	Left, Right Expr
}

func (e *Binary) exprNode() {}
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// Unary is NOT or unary minus.
type Unary struct {
	Op    string
	Inner Expr
}

func (e *Unary) exprNode()      {}
func (e *Unary) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.Inner) }

// Between is x BETWEEN lo AND hi.
type Between struct{ X, Lo, Hi Expr }

func (e *Between) exprNode() {}
func (e *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", e.X, e.Lo, e.Hi)
}

// InList is x IN (a, b, ...).
type InList struct {
	X    Expr
	Vals []Expr
}

func (e *InList) exprNode() {}
func (e *InList) String() string {
	parts := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.X, strings.Join(parts, ", "))
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

func (e *IsNull) exprNode() {}
func (e *IsNull) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// FuncCall is an aggregate (SUM/COUNT/AVG/MIN/MAX) or RANK() with an OVER
// clause. Star marks COUNT(*).
type FuncCall struct {
	Name string // upper-case
	Args []Expr
	Star bool
	Over *WindowSpec
}

func (e *FuncCall) exprNode() {}
func (e *FuncCall) String() string {
	arg := ""
	if e.Star {
		arg = "*"
	} else {
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		arg = strings.Join(parts, ", ")
	}
	s := fmt.Sprintf("%s(%s)", e.Name, arg)
	if e.Over != nil {
		s += " OVER (" + e.Over.String() + ")"
	}
	return s
}

// WindowSpec is the OVER (...) clause of RANK().
type WindowSpec struct {
	PartitionBy []*Ident
	OrderBy     []OrderItem
}

func (w *WindowSpec) String() string {
	var parts []string
	if len(w.PartitionBy) > 0 {
		cols := make([]string, len(w.PartitionBy))
		for i, c := range w.PartitionBy {
			cols[i] = c.String()
		}
		parts = append(parts, "PARTITION BY "+strings.Join(cols, ", "))
	}
	if len(w.OrderBy) > 0 {
		items := make([]string, len(w.OrderBy))
		for i, o := range w.OrderBy {
			items[i] = o.String()
		}
		parts = append(parts, "ORDER BY "+strings.Join(items, ", "))
	}
	return strings.Join(parts, " ")
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// JoinClause is one INNER JOIN with a single equi-condition.
type JoinClause struct {
	Table    string
	LeftCol  *Ident
	RightCol *Ident
}

func (j JoinClause) String() string {
	return fmt.Sprintf("JOIN %s ON %s = %s", j.Table, j.LeftCol, j.RightCol)
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Star    bool
	Items   []SelectItem
	From    string
	Joins   []JoinClause
	Where   Expr
	GroupBy []*Ident
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Star {
		sb.WriteString("*")
	} else {
		items := make([]string, len(s.Items))
		for i, it := range s.Items {
			items[i] = it.String()
		}
		sb.WriteString(strings.Join(items, ", "))
	}
	sb.WriteString(" FROM " + s.From)
	for _, j := range s.Joins {
		sb.WriteString(" " + j.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		cols := make([]string, len(s.GroupBy))
		for i, c := range s.GroupBy {
			cols[i] = c.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(cols, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		items := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			items[i] = o.String()
		}
		sb.WriteString(" ORDER BY " + strings.Join(items, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}
