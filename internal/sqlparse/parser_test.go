package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t")
	if stmt.From != "t" || len(stmt.Items) != 2 || stmt.Star {
		t.Fatalf("stmt = %+v", stmt)
	}
	if id, ok := stmt.Items[0].Expr.(*Ident); !ok || id.Name != "a" {
		t.Errorf("first item = %v", stmt.Items[0])
	}
	if stmt.Limit != -1 {
		t.Errorf("limit = %d, want -1", stmt.Limit)
	}
}

func TestSelectStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM store_sales LIMIT 10")
	if !stmt.Star || stmt.Limit != 10 {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestAggregatesAndAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT SUM(qty) AS total, COUNT(*) cnt, AVG(price) FROM s GROUP BY region")
	if len(stmt.Items) != 3 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.Items[0].Alias != "total" || stmt.Items[1].Alias != "cnt" {
		t.Errorf("aliases = %q, %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
	fc := stmt.Items[1].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Errorf("COUNT(*) parsed as %+v", fc)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Name != "region" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestJoins(t *testing.T) {
	stmt := mustParse(t, `SELECT s.x FROM store_sales
		JOIN date_dim ON ss_sold_date_sk = d_date_sk
		INNER JOIN item ON ss_item_sk = i_item_sk`)
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	j := stmt.Joins[0]
	if j.Table != "date_dim" || j.LeftCol.Name != "ss_sold_date_sk" || j.RightCol.Name != "d_date_sk" {
		t.Errorf("join = %+v", j)
	}
	// Qualified select item.
	if id := stmt.Items[0].Expr.(*Ident); id.Qualifier != "s" || id.Name != "x" {
		t.Errorf("qualified ident = %+v", id)
	}
}

func TestWherePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	// AND binds tighter: a=1 OR (b=2 AND c=3)
	or := stmt.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("root = %v", or.Op)
	}
	if and := or.Right.(*Binary); and.Op != "AND" {
		t.Errorf("right = %v", and.Op)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a + b * c FROM t")
	add := stmt.Items[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Fatalf("root op = %s", add.Op)
	}
	if mul := add.Right.(*Binary); mul.Op != "*" {
		t.Errorf("* should bind tighter than +")
	}
}

func TestBetweenInIsNull(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 10
		AND b IN ('x', 'y') AND c IS NOT NULL AND NOT d = 4`)
	s := stmt.Where.String()
	for _, want := range []string{"BETWEEN", "IN", "IS NOT NULL", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("where %q missing %s", s, want)
		}
	}
}

func TestRankOver(t *testing.T) {
	stmt := mustParse(t, `SELECT region, RANK() OVER (PARTITION BY region ORDER BY total DESC) AS rnk FROM v`)
	fc := stmt.Items[1].Expr.(*FuncCall)
	if fc.Name != "RANK" || fc.Over == nil {
		t.Fatalf("rank = %+v", fc)
	}
	if len(fc.Over.PartitionBy) != 1 || fc.Over.PartitionBy[0].Name != "region" {
		t.Errorf("partition = %v", fc.Over.PartitionBy)
	}
	if len(fc.Over.OrderBy) != 1 || !fc.Over.OrderBy[0].Desc {
		t.Errorf("order = %v", fc.Over.OrderBy)
	}
}

func TestRankRequiresOver(t *testing.T) {
	if _, err := Parse("SELECT RANK() FROM t"); err == nil {
		t.Error("RANK without OVER should fail")
	}
}

func TestOrderByHavingLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT region, SUM(x) AS total FROM t
		GROUP BY region HAVING total > 100 ORDER BY total DESC, region LIMIT 5`)
	if stmt.Having == nil {
		t.Fatal("missing HAVING")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestStringsAndNumbers(t *testing.T) {
	stmt := mustParse(t, `SELECT 'it''s', 3.25, -7 FROM t`)
	if s := stmt.Items[0].Expr.(*StringLit); s.Val != "it's" {
		t.Errorf("escaped string = %q", s.Val)
	}
	if n := stmt.Items[1].Expr.(*NumberLit); !n.IsFloat || n.Text != "3.25" {
		t.Errorf("float = %+v", n)
	}
	if u := stmt.Items[2].Expr.(*Unary); u.Op != "-" {
		t.Errorf("negative = %+v", stmt.Items[2].Expr)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, "select A, Sum(B) from T group by A")
	if stmt.From != "t" {
		t.Errorf("table name should lower-case: %q", stmt.From)
	}
	if id := stmt.Items[0].Expr.(*Ident); id.Name != "a" {
		t.Errorf("identifiers should lower-case: %q", id.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t trailing garbage (",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE a ~ 3",
		"SELECT a FROM t JOIN u ON a",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	sql := "SELECT region, SUM(qty) AS total FROM sales WHERE year = 2003 GROUP BY region ORDER BY total DESC LIMIT 3"
	stmt := mustParse(t, sql)
	// Re-parse the rendering; it must produce the same rendering again.
	again := mustParse(t, stmt.String())
	if stmt.String() != again.String() {
		t.Errorf("round trip mismatch:\n%s\n%s", stmt.String(), again.String())
	}
}
