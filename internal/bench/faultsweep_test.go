package bench

// The degradation invariant, tested differentially: whatever the fault
// injector does to the GPU path — per-site fault rates of 0 / 0.1 / 0.5,
// or a whole device dying mid-run — every workload query must complete
// without error and return the same results as the fault-free engine,
// and the monitor must account for every injected fault as either a
// same-placement retry or a CPU fallback.

import (
	"testing"

	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/optimizer"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// sweepEngine builds an engine that sends every eligible operation to
// the device: T1=1 forces the GPU chain for any grouped query and a tiny
// sort threshold forces radix-sort jobs, so the toy-scale dataset still
// exercises every fault site.
func sweepEngine(t *testing.T, data *workload.Dataset, inj *fault.Injector) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Devices:          2,
		DeviceSpec:       vtime.TeslaK40(),
		Degree:           8,
		Thresholds:       optimizer.Thresholds{T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40},
		GPUSortThreshold: 256,
		Faults:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := data.RegisterAll(eng); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFaultSweepDifferential(t *testing.T) {
	data := workload.Generate(0.004, 7)
	qs := append(workload.BDInsights(), workload.CognosROLAP()...)
	if testing.Short() {
		qs = qs[:30]
	}

	clean := sweepEngine(t, data, nil)
	baseline := make([]*engine.Result, len(qs))
	gpuQueries := 0
	for i, q := range qs {
		res, err := clean.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s (fault-free): %v", q.ID, err)
		}
		baseline[i] = res
		if res.GPUUsed {
			gpuQueries++
		}
	}
	if gpuQueries == 0 {
		t.Fatal("no query took the GPU path; the sweep would be vacuous")
	}
	t.Logf("%d/%d baseline queries used the GPU", gpuQueries, len(qs))

	cases := []struct {
		name       string
		rate       float64
		killAtHalf bool
		wantFaults bool
	}{
		{name: "rate-0", rate: 0},
		{name: "rate-0.1", rate: 0.1, wantFaults: true},
		{name: "rate-0.5", rate: 0.5, wantFaults: true},
		{name: "device-dead", rate: 0, killAtHalf: true, wantFaults: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := fault.New(fault.Config{
				Seed:    20160626,
				Reserve: tc.rate,
				H2D:     tc.rate,
				D2H:     tc.rate,
				Kernel:  tc.rate,
			})
			eng := sweepEngine(t, data, inj)
			for i, q := range qs {
				// Kill device 0: the placement tie-break prefers it, so in
				// a serial run it is the device actually doing the work —
				// losing it forces real breaker trips and re-placements.
				if tc.killAtHalf && i == len(qs)/2 {
					inj.KillDevice(0)
				}
				res, err := eng.Query(q.SQL)
				if err != nil {
					t.Fatalf("invariant violated: %s errored under faults: %v", q.ID, err)
				}
				if msg := diffResults(baseline[i], res); msg != "" {
					t.Errorf("%s differs from fault-free run: %s", q.ID, msg)
				}
			}

			// Accounting: every injected fault surfaces in the monitor
			// (device events), and is handled as exactly one faulted
			// retry or one faulted fallback.
			mon := eng.Monitor()
			total := mon.FaultTotal()
			if injected := inj.Counts().Total(); total != injected {
				t.Errorf("monitor saw %d faults, injector fired %d", total, injected)
			}
			var handled uint64
			for _, ds := range mon.Retries() {
				handled += ds.Faulted
			}
			for _, ds := range mon.Fallbacks() {
				handled += ds.Faulted
			}
			if handled != total {
				t.Errorf("accounting leak: %d faults injected, %d handled as retries+fallbacks", total, handled)
			}
			if tc.wantFaults && total == 0 {
				t.Error("expected faults to fire, none did")
			}
			if !tc.wantFaults && total != 0 {
				t.Errorf("expected no faults, got %d", total)
			}
			if tc.killAtHalf {
				trips, _ := mon.BreakerCounts()
				if trips == 0 {
					t.Error("dead device never tripped the circuit breaker")
				}
				for _, h := range eng.Scheduler().Health() {
					if h.Device == 0 && h.Trips == 0 {
						t.Errorf("device 0 health shows no trips: %+v", h)
					}
				}
			}
			t.Logf("%s: %d faults, breaker %v, retries %v, fallbacks %v",
				tc.name, total, firstOf(mon.BreakerCounts()), mon.Retries(), mon.Fallbacks())
		})
	}
}

func firstOf(trips, _ uint64) uint64 { return trips }
