package bench

// End-to-end tests of the observability layer: every device event must be
// attributed to a query-rooted span, the Chrome export must be both
// schema-valid and byte-stable for a fixed seed, and a traced fault sweep
// must show every injected fault as a span attribute.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/optimizer"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// tracedEngine forces the GPU chain at toy scale (like sweepEngine) with
// a tracer attached, so kernel/transfer attribution is actually exercised.
func tracedEngine(t *testing.T, data *workload.Dataset, tr *trace.Tracer, inj *fault.Injector) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Devices:          2,
		DeviceSpec:       vtime.TeslaK40(),
		Degree:           8,
		Thresholds:       optimizer.Thresholds{T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40},
		GPUSortThreshold: 256,
		Faults:           inj,
		Tracer:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := data.RegisterAll(eng); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTraceSmoke(t *testing.T) {
	data := workload.Generate(0.004, 7)
	tr := trace.New()
	eng := tracedEngine(t, data, tr, nil)
	qs := append(workload.BDInsights()[:10], workload.CognosROLAP()[:10]...)
	for _, q := range qs {
		if _, err := eng.QueryNamed(q.ID, q.SQL); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}

	if got := tr.Queries(); got != uint64(len(qs)) {
		t.Errorf("query roots = %d, want %d", got, len(qs))
	}
	if tr.Orphans() != 0 {
		t.Errorf("orphan device events = %d, want 0", tr.Orphans())
	}

	// Every span must be reachable from a query root through the parent
	// chain, and kernels/transfers must actually be present.
	spans := tr.Spans()
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	kernels, transfers := 0, 0
	for _, s := range spans {
		switch s.Cat {
		case "kernel":
			kernels++
		case "transfer":
			transfers++
		}
		cur, hops := s, 0
		for cur.Parent != 0 {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %d (%s:%s) has dangling parent %d", s.ID, s.Cat, s.Name, cur.Parent)
			}
			cur, hops = p, hops+1
			if hops > 64 {
				t.Fatalf("span %d: parent chain does not terminate", s.ID)
			}
		}
		if cur.Cat != "query" {
			t.Errorf("span %d (%s:%s) roots at %s:%s, not a query", s.ID, s.Cat, s.Name, cur.Cat, cur.Name)
		}
		if s.Query != cur.Query {
			t.Errorf("span %d carries query %d but roots under query %d", s.ID, s.Query, cur.Query)
		}
	}
	if kernels == 0 || transfers == 0 {
		t.Errorf("trace has %d kernel and %d transfer spans; the GPU chain was not exercised", kernels, transfers)
	}

	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("smoke export fails validation: %v", err)
	}
}

// TestTraceHarnessWiring checks the blubench path: a harness built with
// Config.Trace records spans for the experiment engines too.
func TestTraceHarnessWiring(t *testing.T) {
	tr := trace.New()
	h, err := NewHarness(Config{SF: 0.004, Seed: 7, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunBoth(workload.BDInsights()[0]); err != nil {
		t.Fatal(err)
	}
	// RunBoth executes the query twice (GPU on and off).
	if got := tr.Queries(); got != 2 {
		t.Errorf("harness run traced %d queries, want 2", got)
	}
	if tr.Orphans() != 0 {
		t.Errorf("orphans = %d", tr.Orphans())
	}
}

// TestTraceGoldenStable pins the Chrome export of a fixed-seed run
// byte-for-byte. Regenerate with: go test ./internal/bench -run Golden -update
func TestTraceGoldenStable(t *testing.T) {
	// Span layout depends only on modeled time, but run single-threaded
	// anyway so functional scheduling cannot perturb anything.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	data := workload.Generate(0.004, 7)
	export := func() []byte {
		tr := trace.New()
		eng := tracedEngine(t, data, tr, nil)
		for _, q := range workload.BDInsights()[:6] {
			if _, err := eng.QueryNamed(q.ID, q.SQL); err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
		}
		var buf bytes.Buffer
		if err := tr.ExportChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	got := export()
	if again := export(); !bytes.Equal(got, again) {
		t.Fatal("two identical fixed-seed runs exported different bytes")
	}
	if err := trace.ValidateChrome(got); err != nil {
		t.Fatalf("golden export invalid: %v", err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export drifted from %s: got %d bytes, want %d (regenerate with -update if intentional)",
			golden, len(got), len(want))
	}
}

// TestTraceFaultAttribution asserts the acceptance invariant: with
// tracing on, every injected fault appears as exactly one span attribute.
func TestTraceFaultAttribution(t *testing.T) {
	data := workload.Generate(0.004, 7)
	inj := fault.New(fault.Config{Seed: 20160626, Reserve: 0.3, H2D: 0.2, D2H: 0.2, Kernel: 0.3})
	tr := trace.New()
	eng := tracedEngine(t, data, tr, inj)
	qs := append(workload.BDInsights(), workload.CognosROLAP()...)
	if testing.Short() {
		qs = qs[:30]
	}
	for i, q := range qs {
		if i == len(qs)/2 {
			inj.KillDevice(0)
		}
		if _, err := eng.QueryNamed(q.ID, q.SQL); err != nil {
			t.Fatalf("%s errored under faults: %v", q.ID, err)
		}
	}
	injected := inj.Counts().Total()
	if injected == 0 {
		t.Fatal("no faults fired; the test is vacuous")
	}
	if got := tr.FaultAttrCount(); got != injected {
		t.Errorf("trace shows %d fault attributes, injector fired %d", got, injected)
	}
	if tr.Orphans() != 0 {
		t.Errorf("orphan device events = %d, want 0", tr.Orphans())
	}
}

// TestFaultsExperimentReportsTrace checks the blubench surface: the
// faults experiment prints the trace accounting line when tracing is on.
func TestFaultsExperimentReportsTrace(t *testing.T) {
	tr := trace.New()
	h, err := NewHarness(Config{SF: 0.004, Seed: 7, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := h.Faults(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fault span attributes") {
		t.Errorf("faults output missing trace accounting line:\n%s", out)
	}
	if strings.Contains(out, "0 fault span attributes") && tr.FaultAttrCount() == 0 && injTotalFromOutput(out) > 0 {
		t.Error("faults fired but none reached the trace")
	}
	if tr.Orphans() != 0 {
		t.Errorf("orphans = %d", tr.Orphans())
	}
	if got, want := tr.FaultAttrCount(), injTotalFromOutput(out); got != want {
		t.Errorf("trace shows %d fault attributes, experiment reported %d injected", got, want)
	}
}

// injTotalFromOutput parses "faults injected: ... (total N)" from the
// faults experiment report.
func injTotalFromOutput(out string) uint64 {
	_, rest, ok := strings.Cut(out, "(total ")
	if !ok {
		return 0
	}
	num, _, _ := strings.Cut(rest, ")")
	var n uint64
	for _, c := range num {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}
