package bench

import (
	"fmt"
	"io"
	"math"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// Faults demonstrates the degradation invariant the paper's
// infrastructure layer implies but never measures: with aggressive fault
// injection at every GPU operation site — and one device lost mid-run —
// every workload query still completes with the same results as the
// fault-free engine, and the monitor accounts for every injected fault
// as a same-placement retry or a CPU fallback.
func (h *Harness) Faults(w io.Writer) error {
	header(w, "fault sweep: graceful degradation under GPU faults (beyond the paper)")
	inj := fault.New(fault.Config{
		Seed:    h.cfg.Seed,
		Reserve: 0.3,
		H2D:     0.2,
		D2H:     0.2,
		Kernel:  0.3,
	})
	faulted, err := h.newFaultedEngine(inj)
	if err != nil {
		return err
	}
	qs := workload.CognosROLAP()
	h.Eng.SetGPUEnabled(true)
	// Device 0 is the placement tie-break winner, i.e. the device doing
	// the work in a serial run — losing it is the interesting failure.
	lost := 0
	mismatches, errored := 0, 0
	for i, q := range qs {
		if i == len(qs)/2 {
			inj.KillDevice(lost)
			fmt.Fprintf(w, "-- device %d lost after %d queries --\n", lost, i)
		}
		want, err := h.Eng.Query(q.SQL)
		if err != nil {
			return fmt.Errorf("%s (clean): %w", q.ID, err)
		}
		got, err := faulted.QueryNamed(q.ID, q.SQL)
		if err != nil {
			// The invariant says this can never happen; report loudly.
			errored++
			fmt.Fprintf(w, "INVARIANT VIOLATED: %s failed under faults: %v\n", q.ID, err)
			continue
		}
		if msg := diffResults(want, got); msg != "" {
			mismatches++
			fmt.Fprintf(w, "MISMATCH %s: %s\n", q.ID, msg)
		}
	}
	mon := faulted.Monitor()
	counts := inj.Counts()
	fmt.Fprintf(w, "queries: %d   errors: %d   result mismatches: %d\n", len(qs), errored, mismatches)
	fmt.Fprintf(w, "faults injected: reserve=%d h2d=%d d2h=%d kernel=%d (total %d)\n",
		counts.Reserve, counts.H2D, counts.D2H, counts.Kernel, counts.Total())
	var retryF, fbF uint64
	for _, ds := range mon.Retries() {
		fmt.Fprintf(w, "retries[%s]: %d (faulted %d)\n", ds.Op, ds.Count, ds.Faulted)
		retryF += ds.Faulted
	}
	for _, ds := range mon.Fallbacks() {
		fmt.Fprintf(w, "cpu fallbacks[%s]: %d (faulted %d)\n", ds.Op, ds.Count, ds.Faulted)
		fbF += ds.Faulted
	}
	trips, recovers := mon.BreakerCounts()
	fmt.Fprintf(w, "breaker: %d trips, %d recoveries\n", trips, recovers)
	fmt.Fprintf(w, "accounting: %d faults = %d faulted retries + %d faulted fallbacks\n",
		counts.Total(), retryF, fbF)
	if tr := faulted.Tracer(); tr != nil {
		// With tracing on, every injected fault must also appear as a span
		// attribute in the trace — the per-query view of the same ledger.
		fmt.Fprintf(w, "trace: %d fault span attributes, %d orphan device events\n",
			tr.FaultAttrCount(), tr.Orphans())
	}
	if errored > 0 || mismatches > 0 {
		return fmt.Errorf("bench: fault sweep degraded incorrectly (%d errors, %d mismatches)", errored, mismatches)
	}
	return nil
}

// newFaultedEngine builds a second engine over the harness dataset with
// the given injector wired into every device.
func (h *Harness) newFaultedEngine(inj *fault.Injector) (*engine.Engine, error) {
	spec := vtime.TeslaK40()
	if h.cfg.DeviceMemory > 0 {
		spec.DeviceMemory = h.cfg.DeviceMemory
	}
	eng, err := engine.New(engine.Config{
		Devices:    h.cfg.Devices,
		DeviceSpec: spec,
		Degree:     h.cfg.Degree,
		Race:       h.cfg.Race,
		Faults:     inj,
		Tracer:     h.cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	if err := h.Data.RegisterAll(eng); err != nil {
		return nil, err
	}
	return eng, nil
}

// diffResults compares two query results row by row and returns a short
// description of the first difference, or "" when identical. Integer,
// string and NULL cells must match exactly; float cells compare with a
// 1e-9 relative tolerance, because parallel float aggregation is
// order-sensitive in the last bits whichever path runs.
func diffResults(want, got *engine.Result) string {
	wt, gt := want.Table, got.Table
	if wt.Rows() != gt.Rows() {
		return fmt.Sprintf("%d rows vs %d", gt.Rows(), wt.Rows())
	}
	wc, gc := wt.Columns(), gt.Columns()
	if len(wc) != len(gc) {
		return fmt.Sprintf("%d columns vs %d", len(gc), len(wc))
	}
	for ci := range wc {
		if wc[ci].Name() != gc[ci].Name() {
			return fmt.Sprintf("column %d named %q vs %q", ci, gc[ci].Name(), wc[ci].Name())
		}
		for ri := 0; ri < wt.Rows(); ri++ {
			a, b := wc[ci].Value(ri), gc[ci].Value(ri)
			if !cellsEqual(a, b) {
				return fmt.Sprintf("row %d column %q: %v vs %v", ri, wc[ci].Name(), b, a)
			}
		}
	}
	return ""
}

func cellsEqual(a, b columnar.Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	if a.Type == columnar.Float64 || b.Type == columnar.Float64 {
		toF := func(v columnar.Value) float64 {
			if v.Type == columnar.Int64 {
				return float64(v.I)
			}
			return v.F
		}
		x, y := toF(a), toF(b)
		if x == y {
			return true
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= 1e-9*math.Max(scale, 1)
	}
	return a.Equal(b)
}
