package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// takeQuickSnapshot shares one small snapshot across the tests in this
// file; TakeSnapshot runs the whole suite, so take it once.
var quickSnap *Snapshot

func quickSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	if quickSnap == nil {
		// 0.02 is the smallest scale where the optimizer routes work to
		// the GPU (smaller inputs sit below the Figure-3 thresholds), so
		// the kernel/placement counter assertions are meaningful.
		s, err := TakeSnapshot(Config{SF: 0.02, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		quickSnap = s
	}
	return quickSnap
}

func TestSnapshotCoversSuite(t *testing.T) {
	s := quickSnapshot(t)
	want := []string{"bd_complex", "bd_intermediate", "rolap_gated", "mixed_makespan", "serve_sustained"}
	if len(s.Experiments) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(s.Experiments), len(want))
	}
	for i, name := range want {
		e := s.Experiments[i]
		if e.Name != name {
			t.Errorf("experiment %d = %q, want %q", i, e.Name, name)
		}
		if name == "serve_sustained" {
			// Wall-clock trend columns only; modeled stays zero by design
			// so the deterministic gate never engages.
			if e.ModeledOnMs != 0 || e.ModeledOffMs != 0 || e.TransferH2DBytes != 0 {
				t.Errorf("serve_sustained must not carry gated columns: %+v", e)
			}
			if e.QPS <= 0 {
				t.Errorf("serve_sustained: qps = %g, want > 0", e.QPS)
			}
			continue
		}
		if e.ModeledOnMs <= 0 || e.ModeledOffMs <= 0 {
			t.Errorf("%s: modeled times must be positive: on=%g off=%g", name, e.ModeledOnMs, e.ModeledOffMs)
		}
		if e.Queries == 0 {
			t.Errorf("%s: no queries recorded", name)
		}
	}
	if s.Schema != SnapshotSchema || s.SF != 0.02 || s.Seed != 7 || s.Devices != 2 || s.Degree != 24 {
		t.Errorf("config not captured: %+v", s)
	}
	if s.Counters.KernelExecs == 0 {
		t.Error("no kernel executions counted — the GPU path never ran")
	}
	if s.Counters.Placements == 0 {
		t.Error("no scheduler placements counted")
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	s := quickSnapshot(t)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Compare(s, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("roundtripped snapshot regressed against itself: %v", regs)
	}
}

func TestCompareDetectsInjectedRegression(t *testing.T) {
	base := quickSnapshot(t)
	cur := *base
	cur.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
	// Inflate one experiment's GPU-on time by 20%: a 5% gate must trip
	// on exactly that metric.
	cur.Experiments[0].ModeledOnMs *= 1.20
	regs, err := Compare(base, &cur, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Experiment != base.Experiments[0].Name || r.Metric != "modeled_on_ms" {
		t.Fatalf("wrong regression attributed: %+v", r)
	}
	if r.Frac < 0.19 || r.Frac > 0.21 {
		t.Fatalf("frac = %g, want ~0.20", r.Frac)
	}

	// The same inflation under a 25% gate passes.
	regs, err = Compare(base, &cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("20%% growth must pass a 25%% gate: %v", regs)
	}
}

// TestCompareGatesTransferH2D is the lower-is-better gate's self-test:
// H2D byte growth beyond the threshold must trip, shrinkage (the fusion
// win) must pass, and baselines from before the direction split — which
// carry only the combined TransferBytes — must gate against that total.
func TestCompareGatesTransferH2D(t *testing.T) {
	base := quickSnapshot(t)
	if base.Experiments[0].TransferH2DBytes == 0 {
		t.Fatal("suite snapshot records no H2D bytes; the gate would be inert")
	}
	clone := func() *Snapshot {
		cur := *base
		cur.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
		return &cur
	}

	// Growth trips on exactly the inflated experiment.
	cur := clone()
	cur.Experiments[0].TransferH2DBytes = int64(float64(cur.Experiments[0].TransferH2DBytes) * 1.20)
	regs, err := Compare(base, cur, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "transfer_h2d_bytes" || regs[0].Experiment != base.Experiments[0].Name {
		t.Fatalf("20%% H2D growth must trip the gate once, got %v", regs)
	}

	// Shrinkage never trips: lower is better.
	cur = clone()
	for i := range cur.Experiments {
		cur.Experiments[i].TransferH2DBytes /= 2
	}
	if regs, err = Compare(base, cur, 0.05); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("halved H2D bytes must pass: %v", regs)
	}

	// Pre-split baseline: H2D column absent, combined TransferBytes is
	// the stand-in base. Current runs at or below it pass; beyond it trip.
	old := clone()
	for i := range old.Experiments {
		old.Experiments[i].TransferH2DBytes = 0
		old.Experiments[i].TransferD2HBytes = 0
	}
	if regs, err = Compare(old, base, 0.05); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("current H2D below the combined baseline must pass: %v", regs)
	}
	cur = clone()
	cur.Experiments[0].TransferH2DBytes = int64(float64(old.Experiments[0].TransferBytes) * 1.20)
	if regs, err = Compare(old, cur, 0.05); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "transfer_h2d_bytes" {
		t.Fatalf("growth past the combined baseline must trip, got %v", regs)
	}
}

// TestWallGateGraduation exercises the wall_ms_p50 gate through
// CompareGated: off by default, floor-exempt when the baseline median is
// noise-small, tripping past the threshold above the floor, and passing
// on improvement.
func TestWallGateGraduation(t *testing.T) {
	base := quickSnapshot(t)
	clone := func() *Snapshot {
		cur := *base
		cur.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
		return &cur
	}
	// Give the baseline a wall median well above the default 25ms floor
	// so the gate is armed for the first experiment.
	baseWall := clone()
	baseWall.Experiments[0].WallMsP50 = 100

	// 5x growth with the wall gate off (plain Compare) never trips.
	cur := clone()
	cur.Experiments[0].WallMsP50 = 500
	regs, err := Compare(baseWall, cur, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("wall growth with gate off must pass: %v", regs)
	}

	// The same growth under a 3.0 (allow 4x) wall threshold trips on
	// exactly the wall metric.
	opts := GateOptions{Threshold: 0.05, WallThreshold: 3.0}
	regs, err = CompareGated(baseWall, cur, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "wall_ms_p50" || regs[0].Experiment != base.Experiments[0].Name {
		t.Fatalf("5x wall growth must trip a 3.0 gate once, got %v", regs)
	}
	if regs[0].Frac < 3.9 || regs[0].Frac > 4.1 {
		t.Fatalf("frac = %g, want ~4.0", regs[0].Frac)
	}

	// The gated row must render ok/FAIL in the opts-aware diff table,
	// and stay blank (informational) in the plain one.
	var gatedTab, plainTab strings.Builder
	WriteDiffOpts(&gatedTab, baseWall, cur, regs, opts)
	WriteDiff(&plainTab, baseWall, cur, nil)
	if !strings.Contains(gatedTab.String(), "FAIL") {
		t.Fatalf("opts-aware diff must mark the failed wall gate:\n%s", gatedTab.String())
	}
	if strings.Contains(plainTab.String(), "FAIL") {
		t.Fatalf("plain diff must leave wall_ms_p50 informational:\n%s", plainTab.String())
	}

	// 3x growth passes the allow-4x gate.
	cur = clone()
	cur.Experiments[0].WallMsP50 = 300
	if regs, err = CompareGated(baseWall, cur, opts); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("3x growth must pass an allow-4x gate: %v", regs)
	}

	// Improvement passes.
	cur = clone()
	cur.Experiments[0].WallMsP50 = 10
	if regs, err = CompareGated(baseWall, cur, opts); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("wall improvement must pass: %v", regs)
	}

	// A baseline median below the floor never gates, however large the
	// growth — sub-floor medians are bucket noise.
	subFloor := clone()
	subFloor.Experiments[0].WallMsP50 = 5
	cur = clone()
	cur.Experiments[0].WallMsP50 = 500
	if regs, err = CompareGated(subFloor, cur, opts); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor baseline must never gate: %v", regs)
	}
}

// TestMergeRepeats proves the repeat fold: wall columns become the
// per-experiment median, the modeled columns must be repeat-stable, and
// any modeled drift is an error rather than a silent average.
func TestMergeRepeats(t *testing.T) {
	base := quickSnapshot(t)
	repeat := func(wallP50 float64) *Snapshot {
		s := *base
		s.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
		s.Experiments[0].WallMsP50 = wallP50
		return &s
	}

	merged, err := MergeRepeats([]*Snapshot{repeat(10), repeat(90), repeat(30)})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Experiments[0].WallMsP50; got != 30 {
		t.Fatalf("median of {10,90,30} = %g, want 30", got)
	}
	// The merged snapshot keeps the deterministic columns untouched.
	if merged.Experiments[0].ModeledOnMs != base.Experiments[0].ModeledOnMs {
		t.Fatal("merge must not touch modeled columns")
	}

	// Drift in a modeled column across repeats is an error in either
	// direction.
	drifted := repeat(10)
	drifted.Experiments[0].ModeledOnMs *= 1.01
	if _, err := MergeRepeats([]*Snapshot{repeat(10), drifted}); err == nil {
		t.Fatal("modeled drift up across repeats must error")
	}
	if _, err := MergeRepeats([]*Snapshot{drifted, repeat(10)}); err == nil {
		t.Fatal("modeled drift down across repeats must error")
	}

	if _, err := MergeRepeats(nil); err == nil {
		t.Fatal("empty repeat set must error")
	}
}

// TestTrendSeriesRecorded: the sustained experiment carries the trend
// series the embedded obsd scraper recorded during the run — at minimum
// queue depth with the before/after bracket samples.
func TestTrendSeriesRecorded(t *testing.T) {
	s := quickSnapshot(t)
	sus := s.Experiments[len(s.Experiments)-1]
	if sus.Name != "serve_sustained" {
		t.Fatalf("last experiment = %q, want serve_sustained", sus.Name)
	}
	if len(sus.Series) == 0 {
		t.Fatal("serve_sustained carries no trend series")
	}
	byName := map[string]SeriesSnap{}
	for _, ss := range sus.Series {
		byName[ss.Name] = ss
		if len(ss.Samples) < 2 {
			t.Errorf("%s: %d samples, want >= 2 (pre/post scrapes bracket the run)", ss.Name, len(ss.Samples))
		}
		if len(ss.Samples) > trendMaxPoints {
			t.Errorf("%s: %d samples exceed the %d-point cap", ss.Name, len(ss.Samples), trendMaxPoints)
		}
		// Run-to-date quantile series ramp by construction; only the
		// steady-state series may face the slope ceiling.
		if strings.Contains(ss.Name, "wall_ms") && ss.Gated {
			t.Errorf("%s: quantile series must not be slope-gated", ss.Name)
		}
	}
	qd, ok := byName["queue_depth"]
	if !ok {
		t.Fatalf("queue_depth series missing; recorded: %v", keysOf(byName))
	}
	if !qd.Gated {
		t.Error("queue_depth must be slope-gated")
	}
}

func keysOf(m map[string]SeriesSnap) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTrendSlopeGate: the slope ceiling trips only when requested, only
// on series the baseline carries, and judges the current slope against
// the absolute ceiling (steady state ≈ 0), not the baseline's slope.
func TestTrendSlopeGate(t *testing.T) {
	base := quickSnapshot(t)
	withSlope := func(slope float64) *Snapshot {
		s := *base
		s.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
		last := len(s.Experiments) - 1
		s.Experiments[last].Series = []SeriesSnap{
			{Name: "queue_depth", Samples: []float64{0, 1}, Slope: slope, Gated: true},
			{Name: "p99_wall_ms", Samples: []float64{0, 1}, Slope: slope * 100},
		}
		return &s
	}

	// Drifting current slope fails once the gate is armed — and only on
	// the Gated series: the ungated quantile series drifts 100x harder
	// in the same snapshot without tripping.
	regs, err := CompareGated(withSlope(0.01), withSlope(5), GateOptions{TrendSlopeMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "slope(queue_depth)" {
		t.Fatalf("drifting slope must gate exactly the gated series: %v", regs)
	}
	if regs[0].Current != 5 || regs[0].Frac <= 0 {
		t.Fatalf("regression records the offending slope: %+v", regs[0])
	}

	// Below the ceiling passes, even when worse than the baseline.
	regs, err = CompareGated(withSlope(0.0), withSlope(0.4), GateOptions{TrendSlopeMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-ceiling slope must pass: %v", regs)
	}

	// Unarmed gate (TrendSlopeMax zero) never trips.
	regs, err = CompareGated(withSlope(0.01), withSlope(100), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unarmed slope gate must not trip: %v", regs)
	}

	// A baseline without series (pre-series snapshot) never gates.
	noSeries := *base
	noSeries.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
	noSeries.Experiments[len(noSeries.Experiments)-1].Series = nil
	regs, err = CompareGated(&noSeries, withSlope(100), GateOptions{TrendSlopeMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if strings.HasPrefix(r.Metric, "slope(") {
			t.Fatalf("series-less baseline must not slope-gate: %v", regs)
		}
	}

	// The diff table marks the failed slope row.
	bad, cur := withSlope(0.01), withSlope(5)
	regs, err = CompareGated(bad, cur, GateOptions{TrendSlopeMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteDiffOpts(&sb, bad, cur, regs, GateOptions{TrendSlopeMax: 0.5})
	if !strings.Contains(sb.String(), "slope(queue_depth)") || !strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("diff table must render the failed slope row:\n%s", sb.String())
	}

	// MergeRepeats medians the slopes without touching the input.
	r1, r2, r3 := withSlope(1), withSlope(9), withSlope(3)
	merged, err := MergeRepeats([]*Snapshot{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	last := len(merged.Experiments) - 1
	if got := merged.Experiments[last].Series[0].Slope; got != 3 {
		t.Fatalf("median slope of {1,9,3} = %g, want 3", got)
	}
	if r1.Experiments[last].Series[0].Slope != 1 {
		t.Fatal("MergeRepeats mutated its input snapshot")
	}
}

func TestCompareMissingExperiment(t *testing.T) {
	base := quickSnapshot(t)
	cur := *base
	cur.Experiments = base.Experiments[:len(base.Experiments)-1]
	regs, err := Compare(base, &cur, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regs {
		if r.Metric == "missing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped experiment must be a regression: %v", regs)
	}
}

func TestCompareRejectsConfigMismatch(t *testing.T) {
	base := quickSnapshot(t)
	cur := *base
	cur.Seed = base.Seed + 1
	if _, err := Compare(base, &cur, 0.05); err == nil {
		t.Fatal("seed mismatch must not be comparable")
	}
	cur = *base
	cur.Schema = base.Schema + 1
	if _, err := Compare(base, &cur, 0.05); err == nil {
		t.Fatal("schema mismatch must not be comparable")
	}
}

func TestWriteDiffMarksFailures(t *testing.T) {
	base := quickSnapshot(t)
	cur := *base
	cur.Experiments = append([]ExperimentSnap(nil), base.Experiments...)
	cur.Experiments[0].ModeledOnMs *= 2
	regs, err := Compare(base, &cur, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteDiff(&sb, base, &cur, regs)
	out := sb.String()
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("diff table must mark the failed gate:\n%s", out)
	}
	if !strings.Contains(out, "wall_ms") {
		t.Fatalf("diff table must include ungated wall column:\n%s", out)
	}
}

func TestSnapshotDeterministicModeledColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("second full snapshot is slow")
	}
	a := quickSnapshot(t)
	b, err := TakeSnapshot(Config{SF: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Compare(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("two snapshots of the same config differ in modeled time: %v", regs)
	}
	for i := range a.Experiments {
		// Modeled time drifts by at most one 1e-6 ms quantum (float
		// summation order in the parallel host pool); activity counters
		// must match exactly.
		dOn := a.Experiments[i].ModeledOnMs - b.Experiments[i].ModeledOnMs
		if dOn < -1e-6 || dOn > 1e-6 ||
			a.Experiments[i].KernelExecs != b.Experiments[i].KernelExecs {
			t.Fatalf("experiment %s not deterministic:\n%+v\n%+v",
				a.Experiments[i].Name, a.Experiments[i], b.Experiments[i])
		}
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil {
		t.Fatal("malformed JSON must error")
	}
}
