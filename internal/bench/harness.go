// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated testbed: BD Insights figures 5
// and 6, Cognos ROLAP figure 7 and table 2, the throughput matrix of
// table 3, the mixed concurrent workload of figure 8, the device-memory
// utilization series of figure 9, and the hash-table mask of table 1.
//
// Absolute numbers are modeled (the substrate is a simulator, not the
// authors' POWER8 + K40 testbed); the reproduced artifact is the *shape*:
// who wins, by what rough factor, and where the crossovers sit.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"blugpu/internal/des"
	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/optimizer"
	"blugpu/internal/qlog"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// Config sizes the benchmark environment.
type Config struct {
	// SF is the dataset scale factor (default 0.05 — the paper's 100 GB
	// instance scaled to laptop wall-clock).
	SF float64
	// Seed drives the deterministic generator.
	Seed uint64
	// Devices is the GPU count (default 2, like the testbed).
	Devices int
	// Degree is the default intra-query parallelism (default 24).
	Degree int
	// DeviceMemory overrides the per-device memory; 0 auto-calibrates so
	// that exactly the memory-heavy ROLAP queries exceed it, scaling the
	// K40's 12 GB to the scaled dataset.
	DeviceMemory int64
	// Race lets the GPU moderator race a second kernel per query.
	Race bool
	// NoFusion disables the fused device data path (and its column cache)
	// on every engine the harness builds — the control arm for fusion
	// A/B runs (cmd/fusecheck, TestFusionDifferential).
	NoFusion bool
	// Faults optionally injects GPU faults into the harness engine
	// (robustness experiments); nil disables injection.
	Faults *fault.Injector
	// Trace, when set, records per-query span trees across every engine
	// the harness builds (including the throughput and fault engines).
	Trace *trace.Tracer
	// QueryLog, when set, receives one structured record per submission
	// from the sustained-serving experiments (blubench -qlog).
	QueryLog *qlog.Logger
}

// Harness owns the generated dataset and a hybrid engine.
type Harness struct {
	cfg  Config
	Data *workload.Dataset
	Eng  *engine.Engine
}

// NewHarness generates the dataset and boots the engine.
func NewHarness(cfg Config) (*Harness, error) {
	if cfg.SF <= 0 {
		cfg.SF = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20160626 // SIGMOD'16 opening day
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 2
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 24
	}
	h := &Harness{cfg: cfg}
	h.Data = workload.Generate(cfg.SF, cfg.Seed)
	eng, err := h.newEngine(cfg.Degree, cfg.DeviceMemory)
	if err != nil {
		return nil, err
	}
	h.Eng = eng
	if err := h.Data.RegisterAll(h.Eng); err != nil {
		return nil, err
	}
	return h, nil
}

// newEngine builds an engine over the harness dataset with the given
// degree and device memory (0 = full K40).
func (h *Harness) newEngine(degree int, devMem int64) (*engine.Engine, error) {
	spec := vtime.TeslaK40()
	if devMem > 0 {
		spec.DeviceMemory = devMem
	}
	return engine.New(engine.Config{
		Devices:    h.cfg.Devices,
		DeviceSpec: spec,
		Degree:     degree,
		Race:       h.cfg.Race,
		NoFusion:   h.cfg.NoFusion,
		Faults:     h.cfg.Faults,
		Tracer:     h.cfg.Trace,
	})
}

// QueryRun is one measured query execution.
type QueryRun struct {
	Query   workload.Query
	GPUOn   vtime.Duration
	GPUOff  vtime.Duration
	GPUUsed bool
	// WallOn/WallOff are the real elapsed times of the functional
	// execution on this machine. They track the host worker pool (engine
	// Degree), unlike the modeled columns, which simulate the paper's
	// testbed and are run-to-run stable.
	WallOn  time.Duration
	WallOff time.Duration
	// Reason is the group-by path note from the operator stats.
	Reason string
	// Demand is the largest device-memory demand the query placed.
	Demand int64
	// ProfileOn/ProfileOff feed the concurrency simulator.
	ProfileOn  des.Profile
	ProfileOff des.Profile
}

// Gain returns the fractional improvement of GPU-on over GPU-off.
func (r QueryRun) Gain() float64 {
	if r.GPUOff <= 0 {
		return 0
	}
	return 1 - r.GPUOn.Seconds()/r.GPUOff.Seconds()
}

// RunBoth executes a query with the GPU enabled and disabled on the same
// engine and returns both measurements.
func (h *Harness) RunBoth(q workload.Query) (QueryRun, error) {
	run := QueryRun{Query: q}
	h.Eng.SetGPUEnabled(true)
	start := time.Now()
	on, err := h.Eng.QueryNamed(q.ID, q.SQL)
	run.WallOn = time.Since(start)
	if err != nil {
		return run, fmt.Errorf("%s (gpu on): %w", q.ID, err)
	}
	h.Eng.SetGPUEnabled(false)
	start = time.Now()
	off, err := h.Eng.QueryNamed(q.ID, q.SQL)
	run.WallOff = time.Since(start)
	if err != nil {
		return run, fmt.Errorf("%s (gpu off): %w", q.ID, err)
	}
	h.Eng.SetGPUEnabled(true)

	run.GPUOn = on.Modeled
	run.GPUOff = off.Modeled
	run.GPUUsed = on.GPUUsed
	run.ProfileOn = on.Profile
	run.ProfileOn.Name = q.ID
	run.ProfileOff = off.Profile
	run.ProfileOff.Name = q.ID
	for _, op := range on.Ops {
		if op.Op == "groupby" {
			run.Reason = op.Detail
		}
	}
	for _, p := range on.Profile.Phases {
		if p.Kind == des.GPUPhase && p.Mem > run.Demand {
			run.Demand = p.Mem
		}
	}
	return run, nil
}

// RunSet measures a whole query set.
func (h *Harness) RunSet(qs []workload.Query) ([]QueryRun, error) {
	out := make([]QueryRun, 0, len(qs))
	for _, q := range qs {
		r, err := h.RunBoth(q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ErrCannotCalibrate reports that the dataset is too small for the
// memory-gate experiment: at toy scales few queries take the device path,
// so no memory boundary separates a "heavy dozen". Callers run ungated.
var ErrCannotCalibrate = errors.New("bench: scale too small to calibrate the device-memory gate")

// CalibrateROLAPMemory runs all 46 ROLAP queries with full device memory,
// collects each query's device demand, and returns a scaled per-device
// memory that exactly the 12 largest demands exceed — the paper's "12 of
// the queries had memory requirements which exceeded the memory
// available", rescaled to the generated dataset.
func (h *Harness) CalibrateROLAPMemory() (int64, []QueryRun, error) {
	runs, err := h.RunSet(workload.CognosROLAP())
	if err != nil {
		return 0, nil, err
	}
	demands := make([]int64, 0, len(runs))
	for _, r := range runs {
		demands = append(demands, r.Demand)
	}
	sort.Slice(demands, func(a, b int) bool { return demands[a] > demands[b] })
	if len(demands) < 13 {
		return 0, runs, fmt.Errorf("bench: too few ROLAP queries for calibration")
	}
	// Memory between the 12th and 13th largest demand: the dozen heavy
	// queries exceed it, everything else fits.
	mem := (demands[11] + demands[12]) / 2
	if mem <= 0 || demands[11] == demands[12] {
		return 0, runs, ErrCannotCalibrate
	}
	return mem, runs, nil
}

// --- formatting helpers ---

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

func rule(w io.Writer, n int) {
	fmt.Fprintln(w, strings.Repeat("-", n))
}

func ms(d vtime.Duration) string { return fmt.Sprintf("%.2f", d.Milliseconds()) }

func pct(f float64) string { return fmt.Sprintf("%+.1f%%", f*100) }

// thresholdsNote renders the active Figure-3 thresholds.
func thresholdsNote(w io.Writer) {
	th := optimizer.DefaultThresholds()
	fmt.Fprintf(w, "thresholds: T1=%d rows, T2=%d groups, T3=%d rows\n",
		th.T1Rows, th.T2Groups, th.T3Rows)
}
