package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/des"
	"blugpu/internal/groupby"
	"blugpu/internal/monitor"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// Experiments lists the runnable experiment ids in paper order.
func Experiments() []string {
	return []string{"table1", "fig5", "fig6", "fig7", "table2", "table3", "fig8", "fig9", "faults", "serve"}
}

// Run dispatches one experiment by id.
func (h *Harness) Run(name string, w io.Writer) error {
	switch name {
	case "table1":
		return h.Table1(w)
	case "fig5":
		return h.Fig5(w)
	case "fig6":
		return h.Fig6(w)
	case "fig7":
		return h.Fig7Table2(w, true)
	case "table2":
		return h.Fig7Table2(w, false)
	case "table3":
		return h.Table3(w)
	case "fig8":
		_, _, err := h.Fig8(w)
		return err
	case "fig9":
		return h.Fig9(w)
	case "faults":
		return h.Faults(w)
	case "serve":
		return h.Serve(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(Experiments(), ", "))
	}
}

// All runs every experiment in paper order.
func (h *Harness) All(w io.Writer) error {
	for _, name := range Experiments() {
		if err := h.Run(name, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// Table1 prints the hash-table initialization mask for the paper's
// example: SELECT SUM(C1), MAX(C2), MIN(C3) FROM table1 GROUP BY C1.
func (h *Harness) Table1(w io.Writer) error {
	header(w, "Table 1: hash table mask initialization")
	in := &groupby.Input{
		NumRows: 0, Keys: []uint64{}, Hashes: []uint64{}, KeyBytes: 8,
		Aggs: []groupby.AggSpec{
			{Kind: groupby.Sum, Type: columnar.Int64},
			{Kind: groupby.Max, Type: columnar.Int64},
			{Kind: groupby.Min, Type: columnar.Int64},
		},
		Payloads: [][]uint64{{}, {}, {}},
	}
	mask := groupby.Mask(in)
	fmt.Fprintf(w, "query: SELECT SUM(C1), MAX(C2), MIN(C3) FROM table1 GROUP BY C1\n")
	fmt.Fprintf(w, "%-20s %-20s %-22s %-20s %s\n", "C1 (key)", "SUM(C1) init", "MAX(C2) init", "MIN(C3) init", "padding")
	rule(w, 100)
	for row := 0; row < 3; row++ {
		fmt.Fprintf(w, "%-20s %-20d %-22d %-20d %d\n",
			fmt.Sprintf("%X", mask[0]), int64(mask[1]), int64(mask[2]), int64(mask[3]),
			func() uint64 {
				if len(mask) > 4 {
					return mask[4]
				}
				return 0
			}())
	}
	fmt.Fprintf(w, "(every slot is initialized by parallel threads copying this mask; entry = %d words, 16-byte aligned)\n", in.EntryWords())
	return nil
}

// Fig5 reproduces Figure 5: the five BD Insights complex queries,
// end-to-end time with and without the GPU (paper: ~20% total gain).
func (h *Harness) Fig5(w io.Writer) error {
	header(w, "Figure 5: BD Insights complex queries (end-to-end modeled time)")
	runs, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Complex))
	if err != nil {
		return err
	}
	printRunTable(w, runs, h.Eng.Monitor())
	return nil
}

// Fig6 reproduces Figure 6: the 25 intermediate queries, which sit close
// to baseline because the optimizer keeps their small group-by/sort
// components on the CPU rather than paying the transfer cost.
func (h *Harness) Fig6(w io.Writer) error {
	header(w, "Figure 6: BD Insights intermediate queries (end-to-end modeled time)")
	thresholdsNote(w)
	runs, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Intermediate))
	if err != nil {
		return err
	}
	printRunTable(w, runs, h.Eng.Monitor())
	return nil
}

// rolapGated runs the full 46-query ROLAP set on an engine whose device
// memory is calibrated so the dozen memory-heavy queries exceed it, and
// splits the runs into (ran-on-GPU-config, memory-gated).
func (h *Harness) rolapGated() (ran, gated []QueryRun, mem int64, mon *monitor.Monitor, err error) {
	mem = h.cfg.DeviceMemory
	if mem == 0 {
		mem, _, err = h.CalibrateROLAPMemory()
		if errors.Is(err, ErrCannotCalibrate) {
			// Toy scale: no memory boundary exists; run ungated against
			// the full device.
			mem = 0
			err = nil
		} else if err != nil {
			return nil, nil, 0, nil, err
		}
	}
	eng, err := h.newEngine(h.cfg.Degree, mem)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	if err := h.Data.RegisterAll(eng); err != nil {
		return nil, nil, 0, nil, err
	}
	old := h.Eng
	h.Eng = eng
	defer func() { h.Eng = old }()

	runs, err := h.RunSet(workload.CognosROLAP())
	if err != nil {
		return nil, nil, 0, nil, err
	}
	for _, r := range runs {
		if strings.Contains(r.Reason, "exceeds-device-memory") {
			gated = append(gated, r)
		} else {
			ran = append(ran, r)
		}
	}
	return ran, gated, mem, eng.Monitor(), nil
}

// Fig7Table2 reproduces Figure 7 (per-query serial times for the 34
// ROLAP queries that fit device memory) and Table 2 (their total, with
// the ~8% GPU gain). perQuery selects the figure or the table.
func (h *Harness) Fig7Table2(w io.Writer, perQuery bool) error {
	ran, gated, mem, mon, err := h.rolapGated()
	if err != nil {
		return err
	}
	if perQuery {
		header(w, "Figure 7: Cognos ROLAP per-query serial execution")
	} else {
		header(w, "Table 2: Cognos ROLAP total serial execution")
	}
	if mem > 0 {
		fmt.Fprintf(w, "device memory scaled to %.1f MB; %d of %d queries exceed it and are excluded (paper: 12 of 46)\n",
			float64(mem)/(1<<20), len(gated), len(ran)+len(gated))
	} else {
		fmt.Fprintf(w, "scale too small to reproduce the memory gate; all %d queries run ungated (use -sf 0.05+)\n",
			len(ran)+len(gated))
	}
	if perQuery {
		printRunTable(w, ran, mon)
		return nil
	}
	var on, off vtime.Duration
	for _, r := range ran {
		on += r.GPUOn
		off += r.GPUOff
	}
	gain := 1 - on.Seconds()/off.Seconds()
	fmt.Fprintf(w, "%-14s %-14s %s\n", "GPU On(ms)", "GPU Off(ms)", "GPU Gain")
	rule(w, 40)
	fmt.Fprintf(w, "%-14s %-14s %s\n", ms(on), ms(off), pct(gain))
	fmt.Fprintf(w, "(paper reports 8.33%%; its printed columns are transposed)\n")
	return nil
}

// Table3 reproduces the throughput matrix: ROLAP streams x degree, in
// queries/hour, GPU on vs off. The gain grows with concurrent streams —
// offload frees CPU that other streams consume — and is nearly flat in
// the intra-query degree, matching the paper's explanation.
func (h *Harness) Table3(w io.Writer) error {
	header(w, "Table 3: ROLAP throughput (queries/hour)")
	ran, _, _, _, err := h.rolapGated()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-8s %-14s %-14s %s\n", "#stream", "#degree", "GPU On", "GPU Off", "GPU Gain")
	rule(w, 60)
	for _, streams := range []int{1, 2} {
		for _, degree := range []int{24, 48, 64} {
			onT, offT, err := h.throughput(ran, streams, degree)
			if err != nil {
				return err
			}
			gain := onT/offT - 1
			fmt.Fprintf(w, "%-8d %-8d %-14.2f %-14.2f %s\n", streams, degree, onT, offT, pct(gain))
		}
	}
	return nil
}

// throughput replays the runs' profiles from `streams` concurrent
// streams at the given degree and returns (gpuOn, gpuOff) queries/hour.
func (h *Harness) throughput(runs []QueryRun, streams, degree int) (float64, float64, error) {
	// Re-measure profiles at the requested degree.
	eng, err := h.newEngine(degree, 0)
	if err != nil {
		return 0, 0, err
	}
	if err := h.Data.RegisterAll(eng); err != nil {
		return 0, 0, err
	}
	old := h.Eng
	h.Eng = eng
	var onProfiles, offProfiles []des.Profile
	for _, r := range runs {
		rr, err := h.RunBoth(r.Query)
		if err != nil {
			h.Eng = old
			return 0, 0, err
		}
		onProfiles = append(onProfiles, rr.ProfileOn)
		offProfiles = append(offProfiles, rr.ProfileOff)
	}
	h.Eng = old

	cfg := des.Config{
		CPUCapacity: vtime.PowerS824().EffectiveParallelism(96),
		Devices:     h.desDevices(),
	}
	mk := func(profiles []des.Profile) [][]des.Profile {
		out := make([][]des.Profile, streams)
		for s := 0; s < streams; s++ {
			out[s] = append([]des.Profile(nil), profiles...)
		}
		return out
	}
	onRes, err := des.Run(cfg, mk(onProfiles))
	if err != nil {
		return 0, 0, err
	}
	offCfg := cfg
	offCfg.Devices = nil
	offRes, err := des.Run(offCfg, mk(offProfiles))
	if err != nil {
		return 0, 0, err
	}
	return onRes.Throughput(), offRes.Throughput(), nil
}

func (h *Harness) desDevices() []des.DeviceSpec {
	out := make([]des.DeviceSpec, h.cfg.Devices)
	for i := range out {
		out[i] = des.DeviceSpec{Mem: vtime.TeslaK40().DeviceMemory}
	}
	return out
}

// Fig8 reproduces the mixed concurrent workload: five JMeter-style thread
// groups of two users each, with and without the GPU (paper: ~2x).
// It returns both DES results so Fig9 can reuse the GPU-on run and the
// benchdiff snapshot can record both makespans.
func (h *Harness) Fig8(w io.Writer) (*des.Result, *des.Result, error) {
	header(w, "Figure 8: concurrent mixed workload (10 users in 5 thread groups)")
	groups := workload.MixedThreadGroups()

	const reps = 2
	var onStreams, offStreams [][]des.Profile
	groupOfStream := map[int]string{}
	var maxDemand int64
	for _, g := range groups {
		var on, off []des.Profile
		for rep := 0; rep < reps; rep++ {
			for _, q := range g.Queries {
				r, err := h.RunBoth(q)
				if err != nil {
					return nil, nil, err
				}
				on = append(on, r.ProfileOn)
				off = append(off, r.ProfileOff)
				if r.Demand > maxDemand {
					maxDemand = r.Demand
				}
			}
		}
		for t := 0; t < g.Threads; t++ {
			groupOfStream[len(onStreams)] = g.Name
			onStreams = append(onStreams, on)
			offStreams = append(offStreams, off)
		}
	}

	// Scale the DES device memory with the dataset so Figure 9 shows the
	// paper's near-capacity spikes.
	devMem := maxDemand + maxDemand/4
	if devMem == 0 {
		devMem = vtime.TeslaK40().DeviceMemory
	}
	cfg := des.Config{
		CPUCapacity: vtime.PowerS824().EffectiveParallelism(96),
		SampleEvery: 0, // event-driven samples suffice
	}
	for i := 0; i < h.cfg.Devices; i++ {
		cfg.Devices = append(cfg.Devices, des.DeviceSpec{Mem: devMem})
	}
	onRes, err := des.Run(cfg, onStreams)
	if err != nil {
		return nil, nil, err
	}
	offCfg := cfg
	offCfg.Devices = nil
	offRes, err := des.Run(offCfg, offStreams)
	if err != nil {
		return nil, nil, err
	}

	// Per-group elapsed: last completion among the group's streams.
	elapsed := func(res *des.Result) map[string]float64 {
		out := map[string]float64{}
		for _, q := range res.Queries {
			g := groupOfStream[q.Stream]
			if q.End > out[g] {
				out[g] = q.End
			}
		}
		return out
	}
	onG, offG := elapsed(onRes), elapsed(offRes)
	fmt.Fprintf(w, "%-20s %-14s %-14s %s\n", "thread group", "GPU On(ms)", "GPU Off(ms)", "speedup")
	rule(w, 64)
	for _, g := range groups {
		on, off := onG[g.Name], offG[g.Name]
		speed := 0.0
		if on > 0 {
			speed = off / on
		}
		fmt.Fprintf(w, "%-20s %-14.2f %-14.2f %.2fx\n", g.Name, on*1e3, off*1e3, speed)
	}
	rule(w, 64)
	fmt.Fprintf(w, "%-20s %-14.2f %-14.2f %.2fx\n", "TOTAL (makespan)",
		onRes.Makespan.Seconds()*1e3, offRes.Makespan.Seconds()*1e3,
		offRes.Makespan.Seconds()/onRes.Makespan.Seconds())
	fmt.Fprintf(w, "(paper: almost 2x end-to-end with GPU)\n")
	return onRes, offRes, nil
}

// Fig9 reproduces the GPU memory-utilization series sampled during the
// Figure-8 run: a spiky pattern with peaks near device capacity.
func (h *Harness) Fig9(w io.Writer) error {
	onRes, _, err := h.Fig8(io.Discard)
	if err != nil {
		return err
	}
	header(w, "Figure 9: GPU memory utilization during the concurrent run")
	for dev, series := range onRes.MemSeries {
		if len(series) == 0 {
			continue
		}
		var capMem int64
		for _, s := range series {
			if s.Used > capMem {
				capMem = s.Used
			}
		}
		fmt.Fprintf(w, "GPU %d (peak %.1f MB):\n", dev, float64(capMem)/(1<<20))
		for _, s := range downsample(series, 24) {
			bar := strings.Repeat("#", int(40*float64(s.Used)/float64(max64(capMem, 1))))
			fmt.Fprintf(w, "  t=%8.3fms %8.2fMB |%-40s|\n", s.At*1e3, float64(s.Used)/(1<<20), bar)
		}
	}
	fmt.Fprintf(w, "(spiky, near-capacity peaks: the workload repeatedly fills and drains device memory)\n")
	return nil
}

func downsample(s []des.MemSample, n int) []des.MemSample {
	if len(s) <= n {
		return s
	}
	out := make([]des.MemSample, 0, n)
	step := float64(len(s)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, s[int(float64(i)*step)])
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// printRunTable renders per-query GPU-on/off rows plus totals. Modeled
// columns simulate the paper's testbed; the wall columns are the real
// elapsed time of the functional execution on this machine and vary
// run to run. mon, when non-nil, supplies the per-query latency rollup
// (log-scale histogram quantiles over every recorded run of each query).
func printRunTable(w io.Writer, runs []QueryRun, mon *monitor.Monitor) {
	fmt.Fprintf(w, "%-16s %-12s %-12s %-9s %-12s %-12s %s\n",
		"query", "GPU On(ms)", "GPU Off(ms)", "gain", "wall on", "wall off", "groupby path")
	rule(w, 96)
	var on, off vtime.Duration
	var wallOn, wallOff time.Duration
	for _, r := range runs {
		fmt.Fprintf(w, "%-16s %-12s %-12s %-9s %-12s %-12s %s\n",
			r.Query.ID, ms(r.GPUOn), ms(r.GPUOff), pct(r.Gain()),
			wall(r.WallOn), wall(r.WallOff), r.Reason)
		on += r.GPUOn
		off += r.GPUOff
		wallOn += r.WallOn
		wallOff += r.WallOff
	}
	rule(w, 96)
	gain := 0.0
	if off > 0 {
		gain = 1 - on.Seconds()/off.Seconds()
	}
	fmt.Fprintf(w, "%-16s %-12s %-12s %-9s %-12s %-12s\n",
		"TOTAL", ms(on), ms(off), pct(gain), wall(wallOn), wall(wallOff))
	printQueryRollups(w, runs, mon)
}

// printQueryRollups appends the latency-histogram columns for the table's
// queries: modeled p50/p95/p99/max over every run the monitor has seen
// (each query runs at least twice here — GPU on and off).
func printQueryRollups(w io.Writer, runs []QueryRun, mon *monitor.Monitor) {
	if mon == nil {
		return
	}
	want := map[string]bool{}
	for _, r := range runs {
		want[r.Query.ID] = true
	}
	var rows []monitor.QueryStats
	for _, qs := range mon.Queries() {
		if want[qs.Name] {
			rows = append(rows, qs)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "latency histograms (modeled, all runs of each query):\n")
	fmt.Fprintf(w, "%-16s %-6s %-12s %-12s %-12s %s\n", "query", "runs", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	rule(w, 72)
	for _, qs := range rows {
		fmt.Fprintf(w, "%-16s %-6d %-12s %-12s %-12s %s\n",
			qs.Name, qs.Count, ms(qs.P50), ms(qs.P95), ms(qs.P99), ms(qs.Max))
	}
}

// wall formats a wall-clock duration to match the modeled ms columns.
func wall(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}

// sortedByDemand is used by tests to inspect calibration.
func sortedByDemand(runs []QueryRun) []QueryRun {
	out := append([]QueryRun(nil), runs...)
	sort.Slice(out, func(a, b int) bool { return out[a].Demand > out[b].Demand })
	return out
}
