package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"blugpu/internal/metrics"
	"blugpu/internal/obsd"
	"blugpu/internal/serve"
	"blugpu/internal/workload"
)

// SustainedResult is one sustained-serving measurement: a multi-user
// mix pushed through the admission-controlled serving layer, with
// clients retrying shed submissions until admitted. All numbers are
// wall-clock on this machine — trend data, never gated.
type SustainedResult struct {
	Users    int
	Wall     time.Duration
	QPS      float64 // admitted queries per wall second
	ShedRate float64 // shed submissions / total submissions
	P50Ms    float64 // client-observed latency incl. queueing + retries
	P95Ms    float64
	P99Ms    float64
	// Phase medians from the server's wall-clock phase breakdown of each
	// admitted query: time queued, time inside the engine call, and time
	// serializing the client payload. Machine-dependent, never gated.
	QueueWaitP50Ms float64
	ExecWallP50Ms  float64
	SerializeP50Ms float64
	PerClass       map[workload.Class][]float64 // per-class client latencies (ms)
	Snapshot       *metrics.AdmissionSnapshot   // final server ledger
	DrainRep       serve.DrainReport
	// Series are the trend series an embedded obsd scraper recorded over
	// the run: queue depth, shed rate, and wall-latency quantiles sampled
	// every trendStep. Benchdiff gates on their slopes (steady state ≈ 0),
	// not on the machine-dependent sample values.
	Series    []SeriesSnap
	perClassO []workload.Class // class print order
}

// trendStep is the embedded scraper's sample interval during sustained
// runs: fine enough to see queue ramps inside a multi-second run, coarse
// enough that scraping stays invisible next to query execution.
const trendStep = 25 * time.Millisecond

// trendMaxPoints bounds the samples kept per series in a snapshot: the
// range query widens its step until the run fits, so BENCH_<n>.json
// stays tidy no matter how long the run was.
const trendMaxPoints = 64

// trendExprs are the headline series extracted from the run's history.
// The rate window and the quantile source are instant-vector reads of
// the admission snapshot's counters/histograms; scale converts seconds
// to the milliseconds the snapshot columns use. Only the steady-state
// series gate (slope ceiling): the run-to-date wall quantiles ramp by
// construction as early samples accumulate, so they stay informational.
var trendExprs = []struct {
	name  string
	expr  string
	scale float64
	gated bool
}{
	{"queue_depth", "blu_serve_queue_depth", 1, true},
	{"shed_per_s", `rate(blu_serve_queries_total{outcome="shed"}[100ms])`, 1, true},
	{"p50_wall_ms", "histogram_quantile(0.5, blu_serve_wall_seconds_bucket)", 1e3, false},
	{"p99_wall_ms", "histogram_quantile(0.99, blu_serve_wall_seconds_bucket)", 1e3, false},
}

// trendName renders a series identity for the snapshot: the headline
// name plus any distinguishing labels (the wall quantiles split by user
// class). Labels the expression's matcher pins are redundant and
// dropped.
func trendName(base string, labels []metrics.Label, pinned map[string]bool) string {
	var parts []string
	for _, l := range labels {
		if pinned[l.Name] {
			continue
		}
		parts = append(parts, l.Name+"="+l.Value)
	}
	if len(parts) == 0 {
		return base
	}
	return base + "{" + strings.Join(parts, ",") + "}"
}

// slopePerSec fits a least-squares line through the points and returns
// its slope in (scaled) units per second — the within-run drift the
// trend gate judges.
func slopePerSec(pts []obsd.RangePoint, scale float64) float64 {
	if len(pts) < 2 {
		return 0
	}
	n := float64(len(pts))
	t0 := pts[0].T
	var st, sv, stt, stv float64
	for _, p := range pts {
		t := p.T - t0
		v := p.V * scale
		st += t
		sv += v
		stt += t * t
		stv += t * v
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	return (n*stv - st*sv) / den
}

// captureTrend extracts the headline series from the run's history.
// Values are quantized like the modeled columns so snapshots stay tidy;
// the slope is computed over the same downsampled points it ships with.
func captureTrend(obs *obsd.Store, start, end time.Time) []SeriesSnap {
	step := obs.Step()
	if wall := end.Sub(start); wall > time.Duration(trendMaxPoints-1)*step {
		step = wall / (trendMaxPoints - 1)
	}
	var out []SeriesSnap
	for _, te := range trendExprs {
		series, err := obs.QueryRange(te.expr, start, end, step)
		if err != nil {
			continue
		}
		pinned := map[string]bool{}
		if e, err := obsd.ParseExpr(te.expr); err == nil {
			for _, m := range e.Matchers {
				pinned[m.Name] = true
			}
		}
		for _, rs := range series {
			snap := SeriesSnap{Name: trendName(te.name, rs.Labels, pinned), Gated: te.gated}
			for _, p := range rs.Points {
				snap.Samples = append(snap.Samples, roundMs(p.V*te.scale))
			}
			snap.Slope = roundMs(slopePerSec(rs.Points, te.scale))
			out = append(out, snap)
		}
	}
	return out
}

// countWriter counts bytes; the sustained bench serializes real JSON
// through it so the serialize phase measures actual encoding work
// without buffering every payload.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// RunSustained drives one stream per user of mix through a serve.Server
// over the harness engine. Every user retries shed submissions (each
// retry counts as a new submission on the server's ledger) until the
// query is admitted, so the run measures saturated steady-state
// behaviour: queueing delay, shed rate, and delivered throughput.
func (h *Harness) RunSustained(mix workload.UserMix, scfg serve.Config) (*SustainedResult, error) {
	if scfg.Log == nil {
		scfg.Log = h.cfg.QueryLog
	}
	s, err := serve.New(h.Eng, scfg)
	if err != nil {
		return nil, err
	}
	streams := workload.BDInsightsStreams(mix)

	// The embedded scraper samples the server's admission state into
	// ring history over the run; captureTrend turns that history into
	// the snapshot's trend series after drain. One synchronous scrape
	// before and after the run guarantees at least two points even when
	// the run is shorter than a tick.
	obs := obsd.New(obsd.Options{
		Step:      trendStep,
		Retention: 5 * time.Minute,
		Sources: func() metrics.Sources {
			return metrics.Sources{Admission: s.AdmissionSnapshot}
		},
	})
	obs.Scrape()
	obs.Start()

	var mu sync.Mutex
	perClass := map[workload.Class][]float64{}
	var waitMs, execMs, serMs []float64
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for u, stream := range streams {
		wg.Add(1)
		go func(u int, stream []workload.Query) {
			defer wg.Done()
			session := fmt.Sprintf("user-%d", u)
			for _, q := range stream {
				qStart := time.Now()
				for attempt := 0; ; attempt++ {
					if attempt > 5000 {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s: %s never admitted", session, q.ID)
						}
						mu.Unlock()
						return
					}
					resp, err := s.Do(context.Background(), serve.Request{
						Session: session, SQL: q.SQL, Class: q.Class, Name: q.ID,
						// Encode the same row-major payload the HTTP
						// handler ships, so the serialize phase measures
						// real client-facing work.
						Serialize: func(r *serve.Response) (int, error) {
							cw := &countWriter{}
							if err := json.NewEncoder(cw).Encode(serve.TableRows(r.Result.Table.Columns())); err != nil {
								return 0, err
							}
							return cw.n, nil
						},
					})
					var refused *serve.RefusedError
					if errors.As(err, &refused) {
						time.Sleep(time.Millisecond)
						continue
					}
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("%s: %s: %w", session, q.ID, err)
						}
						mu.Unlock()
						return
					}
					ms := float64(time.Since(qStart).Nanoseconds()) / 1e6
					perClass[q.Class] = append(perClass[q.Class], ms)
					waitMs = append(waitMs, resp.Phases.QueueWaitMs)
					execMs = append(execMs, resp.Phases.ExecMs)
					serMs = append(serMs, resp.Phases.SerializeMs)
					mu.Unlock()
					break
				}
			}
		}(u, stream)
	}
	wg.Wait()
	wall := time.Since(start)
	obs.Stop()
	obs.Scrape()
	if firstErr != nil {
		return nil, firstErr
	}
	rep := s.Drain(5 * time.Second)
	snap := s.AdmissionSnapshot()
	if got := snap.Admitted + snap.Shed + snap.TimedOut + snap.Drained; got != snap.Submitted {
		return nil, fmt.Errorf("bench: serving ledger does not reconcile: %d+%d+%d+%d != %d",
			snap.Admitted, snap.Shed, snap.TimedOut, snap.Drained, snap.Submitted)
	}

	res := &SustainedResult{
		Users:     mix.Users(),
		Wall:      wall,
		PerClass:  perClass,
		Snapshot:  snap,
		DrainRep:  rep,
		perClassO: []workload.Class{workload.Simple, workload.Intermediate, workload.Complex},
	}
	if wall > 0 {
		res.QPS = float64(snap.Admitted) / wall.Seconds()
	}
	if snap.Submitted > 0 {
		res.ShedRate = float64(snap.Shed) / float64(snap.Submitted)
	}
	var all []float64
	for _, lats := range perClass {
		all = append(all, lats...)
	}
	res.P50Ms, res.P95Ms, res.P99Ms = quantileMs(all, 0.50), quantileMs(all, 0.95), quantileMs(all, 0.99)
	res.QueueWaitP50Ms = quantileMs(waitMs, 0.50)
	res.ExecWallP50Ms = quantileMs(execMs, 0.50)
	res.SerializeP50Ms = quantileMs(serMs, 0.50)
	res.Series = captureTrend(obs, start.Add(-trendStep), time.Now())
	return res, nil
}

// quantileMs returns the q-quantile of samples (nearest-rank).
func quantileMs(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Serve is the sustained-throughput experiment: the BD Insights user
// mix scaled to 205 users (140 dashboard / 45 report / 20 data
// scientist, one query each) against a deliberately tight admission
// queue, so the run exercises queueing, weighted dequeue and load
// shedding at saturation. Wall-clock numbers are machine-dependent
// trend data.
func (h *Harness) Serve(w io.Writer) error {
	header(w, "Sustained serving throughput (205 users, admission-controlled)")
	mix := workload.UserMix{Simple: 140, Intermediate: 45, Complex: 20, QueriesPerUser: 1}
	res, err := h.RunSustained(mix, serve.Config{QueueCapacity: 32})
	if err != nil {
		return err
	}
	snap := res.Snapshot
	fmt.Fprintf(w, "users=%d wall=%.2fs qps=%.1f shed_rate=%.1f%% (submitted=%d admitted=%d shed=%d)\n",
		res.Users, res.Wall.Seconds(), res.QPS, res.ShedRate*100, snap.Submitted, snap.Admitted, snap.Shed)
	fmt.Fprintf(w, "client latency (queueing + retries + execution): p50=%.1fms p95=%.1fms p99=%.1fms\n",
		res.P50Ms, res.P95Ms, res.P99Ms)
	fmt.Fprintf(w, "server phase medians: queue_wait=%.2fms exec_wall=%.2fms serialize=%.2fms\n",
		res.QueueWaitP50Ms, res.ExecWallP50Ms, res.SerializeP50Ms)
	fmt.Fprintf(w, "%-14s %-8s %-12s %-12s %s\n", "class", "queries", "p50(ms)", "p99(ms)", "max(ms)")
	rule(w, 60)
	for _, c := range res.perClassO {
		lats := res.PerClass[c]
		if len(lats) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %-8d %-12.1f %-12.1f %.1f\n",
			string(c), len(lats), quantileMs(lats, 0.50), quantileMs(lats, 0.99), quantileMs(lats, 1.0))
	}
	fmt.Fprintf(w, "ledger: admitted+shed+timed_out+drained = %d+%d+%d+%d = submitted %d\n",
		snap.Admitted, snap.Shed, snap.TimedOut, snap.Drained, snap.Submitted)
	if len(res.Series) > 0 {
		fmt.Fprintf(w, "series: in-run trend (slope ≈ 0 means steady state; benchdiff -trend-slope gates it)\n")
		fmt.Fprintf(w, "  %-34s %-6s %-10s %-10s %s\n", "name", "n", "first", "last", "slope(/s)")
		for _, ss := range res.Series {
			if len(ss.Samples) == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-34s %-6d %-10.3f %-10.3f %+.4f\n",
				ss.Name, len(ss.Samples), ss.Samples[0], ss.Samples[len(ss.Samples)-1], ss.Slope)
		}
	}
	return nil
}
