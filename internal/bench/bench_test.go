package bench

import (
	"io"
	"strings"
	"testing"

	"blugpu/internal/workload"
)

// smallHarness is fast: tiny facts, most queries below T1.
func smallHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(Config{SF: 0.004, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// shapeHarness is the scale the experiments report at.
func shapeHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(Config{SF: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHarnessDefaults(t *testing.T) {
	h := smallHarness(t)
	if len(h.Data.Tables) != 24 {
		t.Errorf("tables = %d", len(h.Data.Tables))
	}
	if len(h.Eng.Devices()) != 2 {
		t.Errorf("devices = %d", len(h.Eng.Devices()))
	}
}

func TestRunBothConsistency(t *testing.T) {
	h := smallHarness(t)
	q := workload.BDInsights()[0]
	r, err := h.RunBoth(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUOn <= 0 || r.GPUOff <= 0 {
		t.Errorf("times = %v / %v", r.GPUOn, r.GPUOff)
	}
	// The engine must be left GPU-enabled.
	if !h.Eng.GPUEnabled() {
		t.Error("RunBoth must restore GPU-enabled state")
	}
}

func TestTable1Output(t *testing.T) {
	h := smallHarness(t)
	var sb strings.Builder
	if err := h.Table1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FFFFFFFFFFFFFFFF", "-9223372036854775808", "9223372036854775807", "16-byte aligned"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestExperimentDispatch(t *testing.T) {
	h := smallHarness(t)
	if err := h.Run("table1", io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := h.Run("nope", io.Discard); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(Experiments()) != 10 {
		t.Errorf("experiments = %v", Experiments())
	}
}

func TestFig5AndFig6Run(t *testing.T) {
	h := smallHarness(t)
	var sb strings.Builder
	if err := h.Fig5(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Error("fig5 missing totals")
	}
	sb.Reset()
	if err := h.Fig6(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bd-inter-01") {
		t.Error("fig6 missing per-query rows")
	}
}

func TestROLAPMemoryGate(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs the full scale factor")
	}
	h := shapeHarness(t)
	mem, runs, err := h.CalibrateROLAPMemory()
	if err != nil {
		t.Fatal(err)
	}
	if mem <= 0 {
		t.Fatal("calibrated memory must be positive")
	}
	if len(runs) != 46 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Exactly 12 demands exceed the calibrated memory.
	over := 0
	for _, r := range runs {
		if r.Demand > mem {
			over++
		}
	}
	if over != 12 {
		t.Errorf("queries over calibrated memory = %d, want 12", over)
	}
	// The over-memory queries should be the flagged heavy ones.
	byDemand := sortedByDemand(runs)
	heavy := 0
	for _, r := range byDemand[:12] {
		if r.Query.MemoryHeavy {
			heavy++
		}
	}
	if heavy < 10 {
		t.Errorf("only %d of the 12 largest demands are flagged MemoryHeavy", heavy)
	}
}

// TestPaperShapes asserts the headline directions of every evaluation
// artifact at the reporting scale.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs the full scale factor")
	}
	h := shapeHarness(t)

	// Figure 5: complex queries gain with the GPU.
	complexRuns, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Complex))
	if err != nil {
		t.Fatal(err)
	}
	var on, off float64
	for _, r := range complexRuns {
		on += r.GPUOn.Seconds()
		off += r.GPUOff.Seconds()
	}
	gain := 1 - on/off
	if gain < 0.05 {
		t.Errorf("fig5 total gain = %.1f%%, want clearly positive (paper ~20%%)", gain*100)
	}

	// Figure 6: intermediate queries stay close to baseline (within 10%).
	interRuns, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Intermediate))
	if err != nil {
		t.Fatal(err)
	}
	on, off = 0, 0
	for _, r := range interRuns {
		on += r.GPUOn.Seconds()
		off += r.GPUOff.Seconds()
	}
	interGain := 1 - on/off
	if interGain < -0.10 || interGain > 0.15 {
		t.Errorf("fig6 total gain = %.1f%%, want near baseline", interGain*100)
	}

	// Complex queries must beat intermediate queries on GPU benefit.
	if gain <= interGain {
		t.Errorf("complex gain (%.1f%%) should exceed intermediate gain (%.1f%%)", gain*100, interGain*100)
	}

	// Simple queries never touch the device.
	simple, err := h.RunSet(workload.Filter(workload.BDInsights(), workload.Simple)[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range simple {
		if r.GPUUsed {
			t.Errorf("%s: simple query used the GPU", r.Query.ID)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs the full scale factor")
	}
	h := shapeHarness(t)
	var sb strings.Builder
	res, _, err := h.Fig8(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gpu-heavy") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("fig8 output incomplete:\n%s", out)
	}
	// ~2x claim: the GPU-on run must be at least 1.5x faster overall.
	// Parse is brittle; recompute from the result instead: makespan must
	// be well under the GPU-off run, which the output asserts via the
	// printed speedup. Here just sanity-check the DES result.
	if res.Makespan <= 0 || len(res.Queries) == 0 {
		t.Error("fig8 DES result empty")
	}
	// Memory series exists for figure 9.
	if len(res.MemSeries) == 0 || len(res.MemSeries[0]) == 0 {
		t.Error("fig8 run must produce memory samples")
	}
}
