package bench

// Data-path fusion, tested differentially: the fused device pipeline is
// a pure transfer optimization. With fusion on it must return exactly
// the results the staged (fusion-off) engine returns while moving fewer
// H2D bytes — and under injected mid-chain faults it must spill, fall
// back and still match, with every fault accounted as exactly one
// faulted retry or fallback and the decision audit naming the cause.

import (
	"testing"

	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/optimizer"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// fusionEngine is sweepEngine with the fused data path switchable: T1=1
// forces the GPU chain for any grouped query, so the toy-scale dataset
// still forms fused chains.
func fusionEngine(t *testing.T, data *workload.Dataset, inj *fault.Injector, noFusion bool) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Devices:          2,
		DeviceSpec:       vtime.TeslaK40(),
		Degree:           8,
		Thresholds:       optimizer.Thresholds{T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40},
		GPUSortThreshold: 256,
		Faults:           inj,
		NoFusion:         noFusion,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := data.RegisterAll(eng); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestFusionDifferential runs the full BD + ROLAP query sets through a
// fused and an unfused engine over the same dataset and demands
// bit-identical tables, real fused-chain executions, and an H2D byte
// reduction — the property the BENCH gate measures, checked at test
// scale on every run.
func TestFusionDifferential(t *testing.T) {
	data := workload.Generate(0.004, 7)
	qs := append(workload.BDInsights(), workload.CognosROLAP()...)
	if testing.Short() {
		qs = qs[:30]
	}

	off := fusionEngine(t, data, nil, true)
	on := fusionEngine(t, data, nil, false)
	for _, q := range qs {
		want, err := off.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s (fusion off): %v", q.ID, err)
		}
		got, err := on.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s (fusion on): %v", q.ID, err)
		}
		if msg := diffResults(want, got); msg != "" {
			t.Errorf("%s: fused result differs from staged: %s", q.ID, msg)
		}
	}

	chains, saved, uploaded := on.Monitor().FusedStats()
	if chains == 0 {
		t.Fatal("no fused chains executed; the differential is vacuous")
	}
	if saved == 0 {
		t.Error("fused chains never hit the column cache (saved bytes == 0)")
	}
	if c, _, _ := off.Monitor().FusedStats(); c != 0 {
		t.Errorf("NoFusion engine executed %d fused chains", c)
	}
	h2dOn, _ := on.Monitor().Transfers()
	h2dOff, _ := off.Monitor().Transfers()
	if h2dOn.Bytes >= h2dOff.Bytes {
		t.Errorf("fusion did not reduce H2D traffic: %d bytes on vs %d off", h2dOn.Bytes, h2dOff.Bytes)
	}
	t.Logf("fused chains=%d saved=%d B fills=%d B; H2D %d -> %d bytes (%+.1f%%)",
		chains, saved, uploaded, h2dOff.Bytes, h2dOn.Bytes,
		100*(float64(h2dOn.Bytes)/float64(h2dOff.Bytes)-1))
}

// TestFusedChainFaultSweep is the mid-chain fault discipline check: with
// fusion on and faults injected at every device site, chains that lose
// their device mid-pipeline must spill, resume on the CPU and produce
// the same bytes an engine that never fused produces. The monitor's
// one-fault-one-handling ledger must stay exact through the spill path.
func TestFusedChainFaultSweep(t *testing.T) {
	data := workload.Generate(0.004, 7)
	qs := append(workload.BDInsights(), workload.CognosROLAP()...)
	if testing.Short() {
		qs = qs[:30]
	}

	// The baseline arm never fuses: a faulted fused run must match
	// results produced with the fused path never engaged at all.
	clean := fusionEngine(t, data, nil, true)
	baseline := make([]*engine.Result, len(qs))
	for i, q := range qs {
		res, err := clean.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s (baseline): %v", q.ID, err)
		}
		baseline[i] = res
	}

	cases := []struct {
		name       string
		rate       float64
		killAtHalf bool
		wantFaults bool
	}{
		{name: "rate-0", rate: 0},
		{name: "rate-0.1", rate: 0.1, wantFaults: true},
		{name: "rate-0.5", rate: 0.5, wantFaults: true},
		{name: "device-dead", rate: 0, killAtHalf: true, wantFaults: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := fault.New(fault.Config{
				Seed:    20160626,
				Reserve: tc.rate,
				H2D:     tc.rate,
				D2H:     tc.rate,
				Kernel:  tc.rate,
			})
			eng := fusionEngine(t, data, inj, false)
			for i, q := range qs {
				if tc.killAtHalf && i == len(qs)/2 {
					inj.KillDevice(0)
				}
				res, err := eng.Query(q.SQL)
				if err != nil {
					t.Fatalf("invariant violated: %s errored under faults: %v", q.ID, err)
				}
				if msg := diffResults(baseline[i], res); msg != "" {
					t.Errorf("%s: fused-under-fault differs from unfused baseline: %s", q.ID, msg)
				}
			}

			mon := eng.Monitor()
			// Under sustained fault rates the breakers trip early and the
			// toy-scale run's virtual time never outlives the probation, so
			// chains only reliably complete while devices are healthy: the
			// fault-free case and the pre-kill half of device-dead.
			if chains, _, _ := mon.FusedStats(); chains == 0 && tc.rate == 0 {
				t.Error("no fused chain completed; the sweep never exercised the fused path")
			}
			total := mon.FaultTotal()
			if injected := inj.Counts().Total(); total != injected {
				t.Errorf("monitor saw %d faults, injector fired %d", total, injected)
			}
			var handled uint64
			for _, ds := range mon.Retries() {
				handled += ds.Faulted
			}
			for _, ds := range mon.Fallbacks() {
				handled += ds.Faulted
			}
			if handled != total {
				t.Errorf("accounting leak: %d faults injected, %d handled as retries+fallbacks", total, handled)
			}
			if tc.wantFaults && total == 0 {
				t.Error("expected faults to fire, none did")
			}
			if !tc.wantFaults && total != 0 {
				t.Errorf("expected no faults, got %d", total)
			}
			t.Logf("%s: %d faults, retries %v, fallbacks %v", tc.name, total, mon.Retries(), mon.Fallbacks())
		})
	}
}

// TestFusedFaultExplainAttribution pins the decision audit under a
// mid-chain fault: with every kernel launch faulting, the fused chain
// places, fills its cache, faults at the first stage kernel, spills, and
// the EXPLAIN ANALYZE group-by audit must name the injected fault as the
// fallback cause while reconciling its double-entry totals.
func TestFusedFaultExplainAttribution(t *testing.T) {
	data := workload.Generate(0.004, 7)
	inj := fault.New(fault.Config{Seed: 20160626, Kernel: 1.0})
	eng := fusionEngine(t, data, inj, false)

	sql := workload.BDInsights()[0].SQL
	rep, err := eng.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, op := range rep.Ops {
		if op.Groupby == nil {
			continue
		}
		found = true
		if op.Groupby.FallbackCause == "" {
			t.Errorf("group-by audit has no fallback cause under kernel faults: %+v", op.Groupby)
		} else {
			t.Logf("fallback cause: %s", op.Groupby.FallbackCause)
		}
		if op.Groupby.Fused {
			t.Error("a chain that faulted before finishing must not audit as fused")
		}
	}
	if !found {
		t.Fatal("no group-by operator in the report")
	}
	if len(rep.Totals.Mismatches) != 0 {
		t.Errorf("double-entry mismatches under fused fault: %v", rep.Totals.Mismatches)
	}
	if total := eng.Monitor().FaultTotal(); total == 0 {
		t.Error("no faults fired; attribution check is vacuous")
	}
}
