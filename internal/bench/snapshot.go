package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"blugpu/internal/monitor"
	"blugpu/internal/serve"
	"blugpu/internal/workload"
)

// roundMs quantizes a modeled-millisecond value to 1e-6 ms (one modeled
// nanosecond). Modeled time is deterministic only up to float-summation
// order — the parallel host pool accumulates chunk durations in
// completion order, which drifts by ~1 ulp run to run. Quantizing keeps
// committed snapshots tidy and byte-comparable while sitting many orders
// of magnitude below any real regression.
func roundMs(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// SnapshotSchema versions the BENCH_<n>.json layout. Bump it when a
// field changes meaning; Compare refuses to diff across schema versions.
const SnapshotSchema = 1

// ExperimentSnap records one experiment's headline numbers. The modeled
// columns are deterministic for a given (SF, Seed, Devices, Degree) and
// are what the regression gate compares; WallMs is the real elapsed time
// on whatever machine took the snapshot and is informational only.
type ExperimentSnap struct {
	Name         string  `json:"name"`
	Queries      int     `json:"queries"`
	ModeledOnMs  float64 `json:"modeled_on_ms"`
	ModeledOffMs float64 `json:"modeled_off_ms"`
	WallMs       float64 `json:"wall_ms"`
	// WallMsP50/WallMsP95 are per-query wall-clock latency quantiles from
	// the monitor's wall histogram (bucket resolution). Machine-dependent:
	// p95 is informational only, while p50 gates when CompareGated runs
	// with a WallThreshold — generous fraction, noise floor, and a median
	// over repeated runs (MergeRepeats) keep the gate honest.
	WallMsP50 float64 `json:"wall_ms_p50,omitempty"`
	WallMsP95 float64 `json:"wall_ms_p95,omitempty"`
	// KernelExecs and TransferBytes are the GPU activity the experiment
	// generated (deltas on the engine's monitor), so a plan change that
	// silently moves work off the device shows up even when modeled time
	// barely shifts.
	KernelExecs   uint64 `json:"kernel_execs"`
	TransferBytes int64  `json:"transfer_bytes"`
	// TransferH2DBytes/TransferD2HBytes split TransferBytes by direction.
	// H2D is gated lower-is-better: data-path work (fusion, caching) earns
	// its keep by cutting upload traffic, and a change that silently
	// re-inflates it fails the diff. Old baselines carry only the combined
	// TransferBytes; Compare falls back to it (historically all-H2D).
	TransferH2DBytes int64 `json:"transfer_h2d_bytes,omitempty"`
	TransferD2HBytes int64 `json:"transfer_d2h_bytes,omitempty"`
	// KMVMeanRelErr is the mean KMV group-count estimator relative error
	// across the experiment's group-bys — estimate-accountability
	// tracking, informational only (never gated).
	KMVMeanRelErr float64 `json:"kmv_mean_rel_err"`
	// QPS/P99WallMs/ShedRate come from the sustained-serving experiment:
	// delivered throughput, tail client latency and shed fraction under a
	// saturated multi-user mix. Wall-clock and load-dependent, so they are
	// trend columns only — never gated.
	QPS       float64 `json:"qps,omitempty"`
	P99WallMs float64 `json:"p99_wall_ms,omitempty"`
	ShedRate  float64 `json:"shed_rate,omitempty"`
	// QueueWaitMsP50/ExecWallMsP50/SerializeMsP50 are the sustained run's
	// wall-clock phase medians from the server's per-query breakdown:
	// time queued, time inside the engine call, and time serializing the
	// client payload. Machine- and load-dependent trend columns —
	// informational only, never gated.
	QueueWaitMsP50 float64 `json:"queue_wait_ms_p50,omitempty"`
	ExecWallMsP50  float64 `json:"exec_wall_ms_p50,omitempty"`
	SerializeMsP50 float64 `json:"serialize_ms_p50,omitempty"`
	// Series are in-run trend series the embedded obsd scraper recorded
	// during the sustained experiment (queue depth, shed rate, wall-
	// latency quantiles). Sample values are wall-clock trend data, but a
	// sustained run is supposed to be steady-state, so each series'
	// least-squares slope should sit near zero regardless of machine —
	// benchdiff gates on slope (GateOptions.TrendSlopeMax), not on the
	// samples.
	Series []SeriesSnap `json:"series,omitempty"`
}

// SeriesSnap is one trend series recorded over a sustained run: the
// sampled values (downsampled to at most trendMaxPoints, quantized like
// the modeled columns) plus their least-squares slope in units per
// second. A drifting slope means the run never reached steady state —
// queue depth climbing, latency inflating — which medians alone hide.
// Gated marks series whose steady-state value is flat (queue depth,
// shed rate) and may face the slope ceiling; run-to-date quantile
// series ramp by construction early in a run and stay informational.
type SeriesSnap struct {
	Name    string    `json:"name"`
	Samples []float64 `json:"samples"`
	Slope   float64   `json:"slope"`
	Gated   bool      `json:"gated,omitempty"`
}

// CounterSnap is the engine-wide counter state after the suite ran.
type CounterSnap struct {
	KernelExecs      uint64 `json:"kernel_execs"`
	TransferH2DBytes int64  `json:"transfer_h2d_bytes"`
	TransferD2HBytes int64  `json:"transfer_d2h_bytes"`
	ReserveOK        uint64 `json:"reserve_ok"`
	ReserveFail      uint64 `json:"reserve_fail"`
	Placements       uint64 `json:"placements"`
	PlaceFails       uint64 `json:"place_fails"`
}

// Snapshot is one benchdiff baseline: the configuration that produced it
// plus per-experiment results. Snapshots with different configurations
// are not comparable and Compare rejects them.
type Snapshot struct {
	Schema      int              `json:"schema"`
	SF          float64          `json:"sf"`
	Seed        uint64           `json:"seed"`
	Devices     int              `json:"devices"`
	Degree      int              `json:"degree"`
	Experiments []ExperimentSnap `json:"experiments"`
	Counters    CounterSnap      `json:"counters"`
}

// monitorTotals sums the kernel executions and per-direction transferred
// bytes a monitor has seen, for before/after deltas around an experiment.
func monitorTotals(m *monitor.Monitor) (kernels uint64, h2dBytes, d2hBytes int64) {
	for _, k := range m.Kernels() {
		kernels += k.Count
	}
	h2d, d2h := m.Transfers()
	return kernels, h2d.Bytes, d2h.Bytes
}

// wallQuantiles converts a wall-histogram delta into (p50, p95)
// milliseconds.
func wallQuantiles(h monitor.Hist) (p50, p95 float64) {
	return h.Quantile(0.50).Milliseconds(), h.Quantile(0.95).Milliseconds()
}

// kmvMean turns before/after KMV error histogram totals into the mean
// relative error of the samples recorded in between, quantized like the
// modeled columns so snapshots stay byte-comparable. Zero samples yield
// zero rather than NaN.
func kmvMean(s0 monitor.KMVErrorStats, s1 monitor.KMVErrorStats) float64 {
	n := s1.Count - s0.Count
	if n == 0 {
		return 0
	}
	return roundMs((s1.Sum - s0.Sum) / float64(n))
}

// TakeSnapshot runs the benchdiff experiment suite — the BD Insights
// complex and intermediate sets, the memory-gated ROLAP total, and the
// Figure-8 mixed-workload makespan — and returns the snapshot. The
// suite is a subset of the full experiment list chosen to cover every
// execution path (CPU evaluators, GPU kernels, the memory gate, the
// concurrency simulator) while staying fast enough for CI.
func TakeSnapshot(cfg Config) (*Snapshot, error) {
	h, err := NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Schema:  SnapshotSchema,
		SF:      h.cfg.SF,
		Seed:    h.cfg.Seed,
		Devices: h.cfg.Devices,
		Degree:  h.cfg.Degree,
	}

	// runSet measures one query set on the harness engine and appends
	// the experiment, attributing monitor deltas to it.
	runSet := func(name string, qs []workload.Query) error {
		k0, h0, d0 := monitorTotals(h.Eng.Monitor())
		kmv0 := h.Eng.Monitor().KMVError()
		w0 := h.Eng.Monitor().WallHist()
		start := time.Now()
		runs, err := h.RunSet(qs)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		k1, h1, d1 := monitorTotals(h.Eng.Monitor())
		e := ExperimentSnap{
			Name:             name,
			Queries:          len(runs),
			WallMs:           float64(wall.Nanoseconds()) / 1e6,
			KernelExecs:      k1 - k0,
			TransferBytes:    (h1 - h0) + (d1 - d0),
			TransferH2DBytes: h1 - h0,
			TransferD2HBytes: d1 - d0,
			KMVMeanRelErr:    kmvMean(kmv0, h.Eng.Monitor().KMVError()),
		}
		e.WallMsP50, e.WallMsP95 = wallQuantiles(h.Eng.Monitor().WallHist().Sub(w0))
		for _, r := range runs {
			e.ModeledOnMs += r.GPUOn.Milliseconds()
			e.ModeledOffMs += r.GPUOff.Milliseconds()
		}
		e.ModeledOnMs, e.ModeledOffMs = roundMs(e.ModeledOnMs), roundMs(e.ModeledOffMs)
		snap.Experiments = append(snap.Experiments, e)
		return nil
	}

	if err := runSet("bd_complex", workload.Filter(workload.BDInsights(), workload.Complex)); err != nil {
		return nil, err
	}
	if err := runSet("bd_intermediate", workload.Filter(workload.BDInsights(), workload.Intermediate)); err != nil {
		return nil, err
	}

	// ROLAP runs on its own memory-calibrated engine; its monitor is
	// fresh, so totals are the experiment's own counters.
	start := time.Now()
	ran, gated, _, mon, err := h.rolapGated()
	if err != nil {
		return nil, fmt.Errorf("rolap: %w", err)
	}
	rolap := ExperimentSnap{
		Name:    "rolap_gated",
		Queries: len(ran) + len(gated),
		WallMs:  float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	rolap.KernelExecs, rolap.TransferH2DBytes, rolap.TransferD2HBytes = monitorTotals(mon)
	rolap.TransferBytes = rolap.TransferH2DBytes + rolap.TransferD2HBytes
	rolap.KMVMeanRelErr = kmvMean(monitor.KMVErrorStats{}, mon.KMVError())
	rolap.WallMsP50, rolap.WallMsP95 = wallQuantiles(mon.WallHist())
	for _, r := range ran {
		rolap.ModeledOnMs += r.GPUOn.Milliseconds()
		rolap.ModeledOffMs += r.GPUOff.Milliseconds()
	}
	rolap.ModeledOnMs, rolap.ModeledOffMs = roundMs(rolap.ModeledOnMs), roundMs(rolap.ModeledOffMs)
	snap.Experiments = append(snap.Experiments, rolap)

	// Mixed concurrent workload: gate the two DES makespans.
	k0, h0, d0 := monitorTotals(h.Eng.Monitor())
	kmv0 := h.Eng.Monitor().KMVError()
	w0 := h.Eng.Monitor().WallHist()
	start = time.Now()
	onRes, offRes, err := h.Fig8(io.Discard)
	if err != nil {
		return nil, fmt.Errorf("mixed: %w", err)
	}
	k1, h1, d1 := monitorTotals(h.Eng.Monitor())
	mixed := ExperimentSnap{
		Name:             "mixed_makespan",
		Queries:          len(onRes.Queries),
		ModeledOnMs:      roundMs(onRes.Makespan.Seconds() * 1e3),
		ModeledOffMs:     roundMs(offRes.Makespan.Seconds() * 1e3),
		WallMs:           float64(time.Since(start).Nanoseconds()) / 1e6,
		KernelExecs:      k1 - k0,
		TransferBytes:    (h1 - h0) + (d1 - d0),
		TransferH2DBytes: h1 - h0,
		TransferD2HBytes: d1 - d0,
		KMVMeanRelErr:    kmvMean(kmv0, h.Eng.Monitor().KMVError()),
	}
	mixed.WallMsP50, mixed.WallMsP95 = wallQuantiles(h.Eng.Monitor().WallHist().Sub(w0))
	snap.Experiments = append(snap.Experiments, mixed)

	// Sustained serving: a scaled-down user mix through the admission-
	// controlled serving layer with a tight queue, so the shed path is
	// exercised. Every column is load- and machine-dependent trend data;
	// the modeled and transfer columns stay zero because concurrent
	// interleaving makes cache hit patterns (and so H2D traffic)
	// nondeterministic — zero base means the gate skips them.
	start = time.Now()
	sus, err := h.RunSustained(
		workload.UserMix{Simple: 28, Intermediate: 9, Complex: 4, QueriesPerUser: 1},
		serve.Config{QueueCapacity: 8},
	)
	if err != nil {
		return nil, fmt.Errorf("serve_sustained: %w", err)
	}
	sustained := ExperimentSnap{
		Name:           "serve_sustained",
		Queries:        int(sus.Snapshot.Admitted),
		WallMs:         float64(time.Since(start).Nanoseconds()) / 1e6,
		QPS:            sus.QPS,
		P99WallMs:      sus.P99Ms,
		ShedRate:       sus.ShedRate,
		QueueWaitMsP50: sus.QueueWaitP50Ms,
		ExecWallMsP50:  sus.ExecWallP50Ms,
		SerializeMsP50: sus.SerializeP50Ms,
		Series:         sus.Series,
	}
	snap.Experiments = append(snap.Experiments, sustained)

	m := h.Eng.Monitor()
	snap.Counters.KernelExecs, _, _ = monitorTotals(m)
	h2d, d2h := m.Transfers()
	snap.Counters.TransferH2DBytes = h2d.Bytes
	snap.Counters.TransferD2HBytes = d2h.Bytes
	snap.Counters.ReserveOK, snap.Counters.ReserveFail = m.ReserveCounts()
	snap.Counters.Placements, snap.Counters.PlaceFails = h.Eng.Scheduler().PlaceCounts()
	return snap, nil
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads a snapshot file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Regression is one gated metric that got worse than the threshold
// allows.
type Regression struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Base       float64 `json:"base"`
	Current    float64 `json:"current"`
	// Frac is the fractional change, current/base - 1.
	Frac float64 `json:"frac"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %.3f -> %.3f (%+.1f%%)", r.Experiment, r.Metric, r.Base, r.Current, r.Frac*100)
}

// GateOptions tunes CompareGated.
type GateOptions struct {
	// Threshold is the allowed fractional growth of the deterministic
	// modeled columns (0.05 allows 5%).
	Threshold float64
	// WallThreshold, when positive, graduates wall_ms_p50 from
	// informational to gated: the current median may exceed the
	// baseline's by at most this fraction. Wall clock is machine- and
	// load-dependent, so callers pick generous thresholds (3.0 = 4x)
	// and median the column over repeated runs before comparing.
	WallThreshold float64
	// WallFloorMs exempts experiments whose baseline wall_ms_p50 sits
	// below the floor: sub-floor medians are dominated by scheduler
	// noise and histogram bucket resolution, not by code under test.
	// Defaults to 25ms when WallThreshold is set.
	WallFloorMs float64
	// TrendSlopeMax, when positive, gates the recorded trend-series
	// slopes: a current slope above this ceiling (units per second —
	// queue entries/s, ms of latency per second, …) fails the diff. A
	// steady-state sustained run has slopes near zero on any machine, so
	// the gate catches within-run drift (latency inflating, queue
	// climbing, shed rate ramping) that medians average away. Only
	// series the baseline carries AND marks Gated face the ceiling, so
	// old baselines without series never fail and the run-to-date
	// quantile series (which ramp by construction) stay informational.
	TrendSlopeMax float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.WallThreshold > 0 && o.WallFloorMs <= 0 {
		o.WallFloorMs = 25
	}
	return o
}

// Compare diffs cur against base and returns the modeled-time
// regressions exceeding threshold (e.g. 0.05 allows 5% growth). Only the
// deterministic modeled columns gate; wall-clock and counters are
// reported by callers but never fail the comparison. Snapshots from
// different configurations (schema, SF, seed, devices, degree) are not
// comparable and return an error. An experiment present in base but
// missing from cur is itself a regression.
func Compare(base, cur *Snapshot, threshold float64) ([]Regression, error) {
	return CompareGated(base, cur, GateOptions{Threshold: threshold})
}

// CompareGated is Compare with the full gate surface: the deterministic
// modeled columns always gate at opt.Threshold, and when
// opt.WallThreshold is set the wall_ms_p50 column gates too (above the
// floor).
func CompareGated(base, cur *Snapshot, opt GateOptions) ([]Regression, error) {
	opt = opt.withDefaults()
	threshold := opt.Threshold
	if base.Schema != cur.Schema {
		return nil, fmt.Errorf("bench: snapshot schema mismatch: base %d, current %d", base.Schema, cur.Schema)
	}
	if base.SF != cur.SF || base.Seed != cur.Seed || base.Devices != cur.Devices || base.Degree != cur.Degree {
		return nil, fmt.Errorf("bench: snapshot config mismatch: base (sf=%g seed=%d devices=%d degree=%d), current (sf=%g seed=%d devices=%d degree=%d)",
			base.SF, base.Seed, base.Devices, base.Degree, cur.SF, cur.Seed, cur.Devices, cur.Degree)
	}
	curBy := make(map[string]ExperimentSnap, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curBy[e.Name] = e
	}
	var regs []Regression
	for _, b := range base.Experiments {
		c, ok := curBy[b.Name]
		if !ok {
			regs = append(regs, Regression{Experiment: b.Name, Metric: "missing", Base: 1, Current: 0, Frac: -1})
			continue
		}
		check := func(metric string, base, cur float64) {
			if base <= 0 {
				return
			}
			// One quantum (1e-6 ms) of absolute tolerance: quantized
			// values within a ulp of a rounding boundary may land one
			// quantum apart across runs, and that must never trip even a
			// zero threshold.
			if cur-base <= 1e-6 {
				return
			}
			frac := cur/base - 1
			if frac > threshold {
				regs = append(regs, Regression{Experiment: b.Name, Metric: metric, Base: base, Current: cur, Frac: frac})
			}
		}
		check("modeled_on_ms", b.ModeledOnMs, c.ModeledOnMs)
		check("modeled_off_ms", b.ModeledOffMs, c.ModeledOffMs)
		// H2D transfer bytes gate lower-is-better: growth beyond the
		// threshold is a regression (the fused data path's savings must not
		// silently erode). The counter is deterministic, so the same
		// one-quantum tolerance story does not apply — but transfer sizes
		// are whole bytes, so the 1e-6 absolute slack in check is inert.
		// Baselines from before the direction split carry only the combined
		// TransferBytes, which was all-H2D (d2h was unaccounted then).
		baseH2D := float64(b.TransferH2DBytes)
		if b.TransferH2DBytes == 0 {
			baseH2D = float64(b.TransferBytes)
		}
		check("transfer_h2d_bytes", baseH2D, float64(c.TransferH2DBytes))
		// wall_ms_p50 gates only on request (WallThreshold > 0) and only
		// above the noise floor: wall clock is real elapsed time on
		// whatever machine took the snapshots, so the fractional
		// threshold is generous and sub-floor medians — dominated by
		// scheduler jitter and histogram bucket width — never gate.
		if opt.WallThreshold > 0 && b.WallMsP50 >= opt.WallFloorMs {
			if frac := c.WallMsP50/b.WallMsP50 - 1; frac > opt.WallThreshold {
				regs = append(regs, Regression{
					Experiment: b.Name, Metric: "wall_ms_p50",
					Base: b.WallMsP50, Current: c.WallMsP50, Frac: frac,
				})
			}
		}
		// Trend-slope gate: the current run's slope is judged against the
		// absolute ceiling, not against the baseline slope — steady state
		// means ~0 on every machine, so "did the baseline also drift?" is
		// not a defense. Frac reports the fractional excess over the
		// ceiling rather than over the base.
		if opt.TrendSlopeMax > 0 && len(b.Series) > 0 {
			curSeries := make(map[string]SeriesSnap, len(c.Series))
			for _, s := range c.Series {
				curSeries[s.Name] = s
			}
			for _, bs := range b.Series {
				cs, ok := curSeries[bs.Name]
				if !ok || !bs.Gated {
					continue
				}
				if cs.Slope > opt.TrendSlopeMax {
					regs = append(regs, Regression{
						Experiment: b.Name, Metric: "slope(" + bs.Name + ")",
						Base: bs.Slope, Current: cs.Slope,
						Frac: cs.Slope/opt.TrendSlopeMax - 1,
					})
				}
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Experiment != regs[j].Experiment {
			return regs[i].Experiment < regs[j].Experiment
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// MergeRepeats folds repeated snapshots of the same configuration into
// one. The deterministic modeled columns must agree across every repeat
// — any drift beyond the rounding quantum is an error, because it would
// mean the "deterministic" columns are not — and the wall-clock columns
// (wall_ms, wall_ms_p50, wall_ms_p95) are replaced by their
// per-experiment median, so a single noisy run cannot trip the wall
// gate.
func MergeRepeats(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("bench: MergeRepeats needs at least one snapshot")
	}
	for i, s := range snaps[1:] {
		// A zero-threshold comparison in both directions proves the
		// modeled columns did not drift across repeats (the one-quantum
		// absolute slack still applies).
		for _, pair := range [2][2]*Snapshot{{snaps[0], s}, {s, snaps[0]}} {
			regs, err := Compare(pair[0], pair[1], 0)
			if err != nil {
				return nil, fmt.Errorf("bench: repeat %d: %w", i+2, err)
			}
			if len(regs) > 0 {
				return nil, fmt.Errorf("bench: modeled columns drifted across repeats (run %d): %s", i+2, regs[0])
			}
		}
	}
	out := *snaps[0]
	out.Experiments = append([]ExperimentSnap(nil), snaps[0].Experiments...)
	for ei := range out.Experiments {
		var wall, p50, p95 []float64
		for _, s := range snaps {
			if ei < len(s.Experiments) {
				e := s.Experiments[ei]
				wall = append(wall, e.WallMs)
				p50 = append(p50, e.WallMsP50)
				p95 = append(p95, e.WallMsP95)
			}
		}
		out.Experiments[ei].WallMs = median(wall)
		out.Experiments[ei].WallMsP50 = median(p50)
		out.Experiments[ei].WallMsP95 = median(p95)
		// Trend slopes median by series name like the wall columns; the
		// samples stay from the first run (their length varies with wall
		// duration across repeats, so there is no per-sample pairing).
		out.Experiments[ei].Series = append([]SeriesSnap(nil), out.Experiments[ei].Series...)
		for si, bs := range out.Experiments[ei].Series {
			var slopes []float64
			for _, s := range snaps {
				if ei >= len(s.Experiments) {
					continue
				}
				for _, cs := range s.Experiments[ei].Series {
					if cs.Name == bs.Name {
						slopes = append(slopes, cs.Slope)
					}
				}
			}
			out.Experiments[ei].Series[si].Slope = median(slopes)
		}
	}
	return &out, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// WriteDiff renders a human-readable comparison table of every
// experiment in both snapshots, marking the gated modeled columns.
// wall_ms_p50 renders as informational; use WriteDiffOpts to mark it
// gated.
func WriteDiff(w io.Writer, base, cur *Snapshot, regs []Regression) {
	WriteDiffOpts(w, base, cur, regs, GateOptions{})
}

// WriteDiffOpts is WriteDiff with the gate configuration that produced
// regs, so the table's gate column matches what CompareGated enforced:
// with a WallThreshold set, wall_ms_p50 rows at or above the floor show
// ok/FAIL instead of blank.
func WriteDiffOpts(w io.Writer, base, cur *Snapshot, regs []Regression, opt GateOptions) {
	opt = opt.withDefaults()
	bad := make(map[string]bool, len(regs))
	for _, r := range regs {
		bad[r.Experiment+"/"+r.Metric] = true
	}
	curBy := make(map[string]ExperimentSnap, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curBy[e.Name] = e
	}
	fmt.Fprintf(w, "%-18s %-16s %-12s %-12s %-9s %s\n", "experiment", "metric", "base", "current", "delta", "gate")
	rule(w, 78)
	for _, b := range base.Experiments {
		c, ok := curBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-18s %-16s %-12s %-12s %-9s %s\n", b.Name, "-", "-", "MISSING", "-", "FAIL")
			continue
		}
		row := func(metric string, bv, cv float64, gated bool) {
			delta := "-"
			if bv > 0 {
				delta = pct(cv/bv - 1)
			}
			status := ""
			if gated {
				status = "ok"
				if bad[b.Name+"/"+metric] {
					status = "FAIL"
				}
			}
			fmt.Fprintf(w, "%-18s %-16s %-12.3f %-12.3f %-9s %s\n", b.Name, metric, bv, cv, delta, status)
		}
		row("modeled_on_ms", b.ModeledOnMs, c.ModeledOnMs, true)
		row("modeled_off_ms", b.ModeledOffMs, c.ModeledOffMs, true)
		row("wall_ms", b.WallMs, c.WallMs, false)
		row("wall_ms_p50", b.WallMsP50, c.WallMsP50,
			opt.WallThreshold > 0 && b.WallMsP50 >= opt.WallFloorMs)
		row("wall_ms_p95", b.WallMsP95, c.WallMsP95, false)
		row("kernel_execs", float64(b.KernelExecs), float64(c.KernelExecs), false)
		row("transfer_bytes", float64(b.TransferBytes), float64(c.TransferBytes), false)
		baseH2D := float64(b.TransferH2DBytes)
		if b.TransferH2DBytes == 0 {
			baseH2D = float64(b.TransferBytes)
		}
		row("transfer_h2d_bytes", baseH2D, float64(c.TransferH2DBytes), true)
		row("transfer_d2h_bytes", float64(b.TransferD2HBytes), float64(c.TransferD2HBytes), false)
		row("kmv_mean_rel_err", b.KMVMeanRelErr, c.KMVMeanRelErr, false)
		if b.QPS != 0 || c.QPS != 0 {
			row("qps", b.QPS, c.QPS, false)
			row("p99_wall_ms", b.P99WallMs, c.P99WallMs, false)
			row("shed_rate", b.ShedRate, c.ShedRate, false)
			row("queue_wait_ms_p50", b.QueueWaitMsP50, c.QueueWaitMsP50, false)
			row("exec_wall_ms_p50", b.ExecWallMsP50, c.ExecWallMsP50, false)
			row("serialize_ms_p50", b.SerializeMsP50, c.SerializeMsP50, false)
		}
		if len(b.Series) > 0 {
			curSeries := make(map[string]SeriesSnap, len(c.Series))
			for _, s := range c.Series {
				curSeries[s.Name] = s
			}
			for _, bs := range b.Series {
				cs, ok := curSeries[bs.Name]
				row("slope("+bs.Name+")", bs.Slope, cs.Slope, ok && bs.Gated && opt.TrendSlopeMax > 0)
			}
		}
	}
}
