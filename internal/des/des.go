// Package des is a discrete-event simulator for concurrent query
// execution on the paper's testbed: a processor-sharing CPU pool (24
// POWER8 cores, SMT-4) plus GPU devices with finite memory and
// processor-shared compute.
//
// Serial query times come straight from the cost model; the *concurrent*
// results — Table 3's throughput matrix, Figure 8's mixed-workload
// elapsed times, Figure 9's spiky device-memory series — depend on
// resource contention, which this simulator models. Each query is a
// Profile: an alternating sequence of CPU phases (so many core-seconds of
// work, up to a parallelism cap) and GPU phases (so many device-seconds,
// holding so much device memory). Streams issue their queries back to
// back; the simulator advances a virtual clock from completion to
// completion, redistributing rates max-min fairly at every event.
package des

import (
	"errors"
	"fmt"
	"sort"

	"blugpu/internal/vtime"
)

// PhaseKind distinguishes host from device phases.
type PhaseKind int

// Phase kinds.
const (
	// CPUPhase consumes core-seconds from the shared host pool.
	CPUPhase PhaseKind = iota
	// GPUPhase consumes device-seconds on one GPU while holding memory.
	GPUPhase
)

// Phase is one resource demand in a query's execution.
type Phase struct {
	Kind PhaseKind
	// Work is the phase's demand: core-seconds for CPUPhase (work done at
	// rate r consumes r core-seconds per second), device-seconds for
	// GPUPhase.
	Work float64
	// MaxPar caps the rate a CPU phase can absorb (the query's effective
	// parallelism). Ignored for GPU phases, which absorb at most 1.
	MaxPar float64
	// Mem is the device memory (bytes) held for the whole GPU phase.
	Mem int64
}

// Profile is one query's resource demand sequence.
type Profile struct {
	Name   string
	Phases []Phase
}

// SerialSeconds returns the profile's uncontended execution time.
func (p Profile) SerialSeconds() float64 {
	t := 0.0
	for _, ph := range p.Phases {
		switch ph.Kind {
		case CPUPhase:
			par := ph.MaxPar
			if par <= 0 {
				par = 1
			}
			t += ph.Work / par
		case GPUPhase:
			t += ph.Work
		}
	}
	return t
}

// DeviceSpec is a simulated GPU's capacity.
type DeviceSpec struct {
	Mem int64
}

// Config describes the simulated machine.
type Config struct {
	// CPUCapacity is the host pool in core-equivalents (24 cores at
	// SMT scaling 1.9 ≈ 45.6).
	CPUCapacity float64
	// Devices is the GPU fleet; empty means no GPU phases may appear.
	Devices []DeviceSpec
	// SampleEvery adds device-memory samples at this virtual-time
	// interval in addition to event-driven samples (0 disables).
	SampleEvery float64
}

// MemSample is one device-memory utilization point.
type MemSample struct {
	At   float64
	Used int64
}

// QueryResult reports one query's simulated execution.
type QueryResult struct {
	Stream, Index int
	Name          string
	Start, End    float64
}

// Elapsed returns the query's simulated wall time.
func (q QueryResult) Elapsed() vtime.Duration { return vtime.Duration(q.End - q.Start) }

// Result is a completed simulation.
type Result struct {
	// Makespan is the time the last query finished.
	Makespan vtime.Duration
	// Queries holds every query's timing in completion order.
	Queries []QueryResult
	// MemSeries holds per-device memory samples.
	MemSeries [][]MemSample
	// GPUWaits counts GPU-phase admissions that had to queue.
	GPUWaits int
}

// Throughput returns queries per hour over the makespan.
func (r Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Queries)) / r.Makespan.Seconds() * 3600
}

type task struct {
	stream, index int
	profile       Profile
	phase         int
	remaining     float64
	started       float64
	// device the current GPU phase runs on, -1 when none.
	device  int
	waiting bool
	rate    float64
}

// Run simulates the streams to completion. Each stream executes its
// profiles sequentially; all streams start at time zero.
func Run(cfg Config, streams [][]Profile) (*Result, error) {
	if cfg.CPUCapacity <= 0 {
		return nil, errors.New("des: CPUCapacity must be positive")
	}
	free := make([]int64, len(cfg.Devices))
	for i, d := range cfg.Devices {
		free[i] = d.Mem
	}

	res := &Result{MemSeries: make([][]MemSample, len(cfg.Devices))}
	now := 0.0
	lastSample := 0.0

	sample := func() {
		for d := range cfg.Devices {
			used := cfg.Devices[d].Mem - free[d]
			s := res.MemSeries[d]
			if len(s) > 0 && s[len(s)-1].At == now {
				s[len(s)-1].Used = used
				res.MemSeries[d] = s
				continue
			}
			res.MemSeries[d] = append(s, MemSample{At: now, Used: used})
		}
	}

	var active []*task   // tasks with a running phase
	var gpuQueue []*task // tasks waiting for device memory
	var launchNext func(s int) error

	// startPhase enters the task's next non-empty phase; if none remain
	// (the profile ended on zero-work phases) it records the completion
	// and launches the stream's next query.
	startPhase := func(t *task) error {
		for {
			if t.phase >= len(t.profile.Phases) {
				res.Queries = append(res.Queries, QueryResult{
					Stream: t.stream, Index: t.index, Name: t.profile.Name,
					Start: t.started, End: now,
				})
				return launchNext(t.stream)
			}
			ph := t.profile.Phases[t.phase]
			if ph.Work <= 0 {
				t.phase++
				continue
			}
			t.remaining = ph.Work
			if ph.Kind == GPUPhase {
				if len(cfg.Devices) == 0 {
					return fmt.Errorf("des: %s has a GPU phase but no devices configured", t.profile.Name)
				}
				// Admit to the device with the most free memory that fits.
				best := -1
				for d := range cfg.Devices {
					if free[d] >= ph.Mem && (best == -1 || free[d] > free[best]) {
						best = d
					}
				}
				if best == -1 {
					if ph.Mem > maxMem(cfg.Devices) {
						return fmt.Errorf("des: %s needs %d bytes, exceeding every device", t.profile.Name, ph.Mem)
					}
					t.waiting = true
					gpuQueue = append(gpuQueue, t)
					res.GPUWaits++
					return nil
				}
				t.device = best
				free[best] -= ph.Mem
				sample()
			} else {
				t.device = -1
			}
			active = append(active, t)
			return nil
		}
	}

	// Seed: first query of every stream.
	var pending []*task
	for s, qs := range streams {
		for i, p := range qs {
			pending = append(pending, &task{stream: s, index: i, profile: p, device: -1})
		}
	}
	// Index stream heads.
	nextOf := map[int]int{}
	byStream := map[int][]*task{}
	for _, t := range pending {
		byStream[t.stream] = append(byStream[t.stream], t)
	}
	for s := range byStream {
		sort.Slice(byStream[s], func(a, b int) bool { return byStream[s][a].index < byStream[s][b].index })
		nextOf[s] = 0
	}
	launchNext = func(s int) error {
		i := nextOf[s]
		if i >= len(byStream[s]) {
			return nil
		}
		nextOf[s] = i + 1
		t := byStream[s][i]
		t.started = now
		return startPhase(t)
	}
	for s := range byStream {
		if err := launchNext(s); err != nil {
			return nil, err
		}
	}
	sample()

	const eps = 1e-12
	for len(active) > 0 {
		// Assign rates: max-min fair on the CPU pool; per-device fair
		// sharing with cap 1 on each GPU.
		assignRates(active, cfg.CPUCapacity, len(cfg.Devices))

		// Time to the next completion.
		dt := -1.0
		for _, t := range active {
			if t.rate <= eps {
				continue
			}
			d := t.remaining / t.rate
			if dt < 0 || d < dt {
				dt = d
			}
		}
		if dt < 0 {
			return nil, errors.New("des: deadlock: active tasks with zero rate")
		}
		// Periodic samples between events.
		if cfg.SampleEvery > 0 {
			for lastSample+cfg.SampleEvery < now+dt {
				lastSample += cfg.SampleEvery
				for d := range cfg.Devices {
					res.MemSeries[d] = append(res.MemSeries[d],
						MemSample{At: lastSample, Used: cfg.Devices[d].Mem - free[d]})
				}
			}
		}
		now += dt

		// Advance everyone; split completions from survivors in place.
		var completed []*task
		keep := active[:0]
		for _, t := range active {
			t.remaining -= t.rate * dt
			if t.remaining > eps {
				keep = append(keep, t)
			} else {
				completed = append(completed, t)
			}
		}
		active = keep

		// Handle completions; startPhase/launchNext append new phases to
		// the (now settled) active slice through the closures.
		var completedGPU bool
		for _, t := range completed {
			ph := t.profile.Phases[t.phase]
			if ph.Kind == GPUPhase {
				free[t.device] += ph.Mem
				t.device = -1
				completedGPU = true
			}
			t.phase++
			if err := startPhase(t); err != nil {
				return nil, err
			}
		}

		// Admit waiting GPU tasks when memory freed.
		if completedGPU && len(gpuQueue) > 0 {
			var remain []*task
			for _, t := range gpuQueue {
				ph := t.profile.Phases[t.phase]
				best := -1
				for d := range cfg.Devices {
					if free[d] >= ph.Mem && (best == -1 || free[d] > free[best]) {
						best = d
					}
				}
				if best == -1 {
					remain = append(remain, t)
					continue
				}
				t.waiting = false
				t.device = best
				free[best] -= ph.Mem
				t.remaining = ph.Work
				active = append(active, t)
			}
			gpuQueue = remain
		}
		sample()
	}
	if len(gpuQueue) > 0 {
		return nil, errors.New("des: tasks stuck waiting for device memory at end of run")
	}
	res.Makespan = vtime.Duration(now)
	sort.Slice(res.Queries, func(a, b int) bool { return res.Queries[a].End < res.Queries[b].End })
	return res, nil
}

func maxMem(devs []DeviceSpec) int64 {
	var m int64
	for _, d := range devs {
		if d.Mem > m {
			m = d.Mem
		}
	}
	return m
}

// assignRates computes each active task's progress rate: GPU tasks share
// their device's unit capacity evenly (cap 1 each); CPU tasks split the
// pool max-min fairly under their parallelism caps.
func assignRates(active []*task, cpuCapacity float64, devices int) {
	// GPU: count residents per device.
	perDev := make([]int, devices)
	for _, t := range active {
		if t.device >= 0 {
			perDev[t.device]++
		}
	}
	// CPU water-filling.
	type capTask struct {
		t   *task
		cap float64
	}
	var cpu []capTask
	for _, t := range active {
		if t.device >= 0 {
			share := 1.0 / float64(perDev[t.device])
			if share > 1 {
				share = 1
			}
			t.rate = share
			continue
		}
		ph := t.profile.Phases[t.phase]
		c := ph.MaxPar
		if c <= 0 {
			c = 1
		}
		cpu = append(cpu, capTask{t: t, cap: c})
	}
	remainingCap := cpuCapacity
	sort.Slice(cpu, func(a, b int) bool { return cpu[a].cap < cpu[b].cap })
	n := len(cpu)
	for i, ct := range cpu {
		share := remainingCap / float64(n-i)
		r := ct.cap
		if r > share {
			r = share
		}
		ct.t.rate = r
		remainingCap -= r
	}
}
