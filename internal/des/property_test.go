package des

import (
	"testing"
	"testing/quick"
)

// TestConservationProperty: every submitted query completes exactly once,
// and the makespan is bounded below by the total work over capacity and
// above by the sum of serial times (no superlinear slowdown in a
// processor-sharing system without blocking).
func TestConservationProperty(t *testing.T) {
	cfg := Config{CPUCapacity: 32, Devices: []DeviceSpec{{Mem: 1 << 30}}}
	f := func(rawStreams []uint8) bool {
		if len(rawStreams) == 0 {
			return true
		}
		if len(rawStreams) > 6 {
			rawStreams = rawStreams[:6]
		}
		var streams [][]Profile
		total := 0
		var totalCPUWork float64
		var serialSum float64
		for si, raw := range rawStreams {
			n := int(raw%4) + 1
			var qs []Profile
			for q := 0; q < n; q++ {
				work := float64((si+1)*(q+1)) * 3
				par := float64(q%8 + 1)
				p := Profile{
					Name:   "q",
					Phases: []Phase{{Kind: CPUPhase, Work: work, MaxPar: par}},
				}
				if q%3 == 1 {
					p.Phases = append(p.Phases, Phase{Kind: GPUPhase, Work: 0.5, Mem: 64 << 20})
				}
				qs = append(qs, p)
				total++
				totalCPUWork += work
				serialSum += p.SerialSeconds()
			}
			streams = append(streams, qs)
		}
		res, err := Run(cfg, streams)
		if err != nil {
			return false
		}
		if len(res.Queries) != total {
			return false
		}
		// Each (stream, index) appears exactly once.
		seen := map[[2]int]bool{}
		for _, q := range res.Queries {
			k := [2]int{q.Stream, q.Index}
			if seen[k] {
				return false
			}
			seen[k] = true
			if q.End < q.Start {
				return false
			}
		}
		lower := totalCPUWork / cfg.CPUCapacity
		if res.Makespan.Seconds() < lower-1e-9 {
			return false // finished faster than the capacity allows
		}
		if res.Makespan.Seconds() > serialSum+1e-6 {
			return false // worse than running everything serially
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMemoryNeverExceedsCapacity: admission control must keep every
// device's resident memory within capacity at every sample.
func TestMemoryNeverExceedsCapacity(t *testing.T) {
	cfg := Config{CPUCapacity: 16, Devices: []DeviceSpec{{Mem: 256 << 20}, {Mem: 128 << 20}}}
	var streams [][]Profile
	for s := 0; s < 6; s++ {
		var qs []Profile
		for q := 0; q < 4; q++ {
			qs = append(qs, Profile{
				Name: "gq",
				Phases: []Phase{
					{Kind: CPUPhase, Work: 1, MaxPar: 4},
					{Kind: GPUPhase, Work: 0.5, Mem: int64(64+32*q) << 20},
				},
			})
		}
		streams = append(streams, qs)
	}
	res, err := Run(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	for d, series := range res.MemSeries {
		for _, s := range series {
			if s.Used > cfg.Devices[d].Mem {
				t.Fatalf("device %d over capacity: %d > %d at t=%v", d, s.Used, cfg.Devices[d].Mem, s.At)
			}
			if s.Used < 0 {
				t.Fatalf("device %d negative memory at t=%v", d, s.At)
			}
		}
		if series[len(series)-1].Used != 0 {
			t.Errorf("device %d did not drain", d)
		}
	}
}
