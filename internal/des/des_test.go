package des

import (
	"math"
	"testing"
)

func cfg1GPU() Config {
	return Config{CPUCapacity: 45.6, Devices: []DeviceSpec{{Mem: 12 << 30}}}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleCPUQuery(t *testing.T) {
	// 100 core-seconds at parallelism 10 on an empty machine: 10 seconds.
	p := Profile{Name: "q", Phases: []Phase{{Kind: CPUPhase, Work: 100, MaxPar: 10}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 10, 1e-9) {
		t.Errorf("makespan = %v, want 10s", r.Makespan)
	}
	if len(r.Queries) != 1 || !almost(r.Queries[0].Elapsed().Seconds(), 10, 1e-9) {
		t.Errorf("queries = %+v", r.Queries)
	}
	if !almost(p.SerialSeconds(), 10, 1e-9) {
		t.Errorf("SerialSeconds = %v", p.SerialSeconds())
	}
}

func TestCPUContention(t *testing.T) {
	// Two queries each wanting 40 cores on a 45.6-core pool must slow
	// down; alone each takes 100/40 = 2.5s, together the pool gives each
	// 22.8 cores -> ~4.39s.
	p := Profile{Name: "q", Phases: []Phase{{Kind: CPUPhase, Work: 100, MaxPar: 40}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}, {p}})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 / (45.6 / 2)
	if !almost(r.Makespan.Seconds(), want, 1e-6) {
		t.Errorf("makespan = %v, want %.3fs", r.Makespan, want)
	}
}

func TestCPUNoContentionUnderCapacity(t *testing.T) {
	// Two queries at parallelism 10 fit side by side in 45.6 cores: no
	// slowdown.
	p := Profile{Name: "q", Phases: []Phase{{Kind: CPUPhase, Work: 100, MaxPar: 10}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}, {p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 10, 1e-9) {
		t.Errorf("makespan = %v, want 10s (no contention)", r.Makespan)
	}
}

func TestGPUPhaseAndMemory(t *testing.T) {
	p := Profile{Name: "gq", Phases: []Phase{
		{Kind: CPUPhase, Work: 10, MaxPar: 10},
		{Kind: GPUPhase, Work: 2, Mem: 8 << 30},
		{Kind: CPUPhase, Work: 10, MaxPar: 10},
	}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 1+2+1, 1e-9) {
		t.Errorf("makespan = %v, want 4s", r.Makespan)
	}
	// Memory series must show the 8GB spike and return to zero.
	series := r.MemSeries[0]
	var peak int64
	for _, s := range series {
		if s.Used > peak {
			peak = s.Used
		}
	}
	if peak != 8<<30 {
		t.Errorf("peak device memory = %d, want 8GB", peak)
	}
	if series[len(series)-1].Used != 0 {
		t.Error("device memory should drain to zero")
	}
}

func TestGPUMemoryBlocksAdmission(t *testing.T) {
	// Two queries each need 8GB on a 12GB device: the second must wait.
	p := Profile{Name: "gq", Phases: []Phase{{Kind: GPUPhase, Work: 2, Mem: 8 << 30}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}, {p}})
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUWaits != 1 {
		t.Errorf("GPUWaits = %d, want 1", r.GPUWaits)
	}
	// Serialized: 4 seconds, not 2.
	if !almost(r.Makespan.Seconds(), 4, 1e-9) {
		t.Errorf("makespan = %v, want 4s (serialized by memory)", r.Makespan)
	}
}

func TestTwoDevices(t *testing.T) {
	// With two devices the same pair runs in parallel.
	cfg := Config{CPUCapacity: 45.6, Devices: []DeviceSpec{{Mem: 12 << 30}, {Mem: 12 << 30}}}
	p := Profile{Name: "gq", Phases: []Phase{{Kind: GPUPhase, Work: 2, Mem: 8 << 30}}}
	r, err := Run(cfg, [][]Profile{{p}, {p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 2, 1e-9) {
		t.Errorf("makespan = %v, want 2s (parallel devices)", r.Makespan)
	}
	if r.GPUWaits != 0 {
		t.Errorf("GPUWaits = %d, want 0", r.GPUWaits)
	}
}

func TestGPUComputeSharing(t *testing.T) {
	// Two kernels resident on one device share its compute: each 2
	// device-seconds -> 4 seconds total.
	p := Profile{Name: "gq", Phases: []Phase{{Kind: GPUPhase, Work: 2, Mem: 1 << 30}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}, {p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 4, 1e-9) {
		t.Errorf("makespan = %v, want 4s (shared device)", r.Makespan)
	}
}

func TestStreamsAreSequential(t *testing.T) {
	p := Profile{Name: "q", Phases: []Phase{{Kind: CPUPhase, Work: 10, MaxPar: 10}}}
	r, err := Run(cfg1GPU(), [][]Profile{{p, p, p}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(r.Queries))
	}
	if !almost(r.Makespan.Seconds(), 3, 1e-9) {
		t.Errorf("makespan = %v, want 3s (sequential stream)", r.Makespan)
	}
	// Start times must be 0, 1, 2.
	for i, q := range r.Queries {
		if !almost(q.Start, float64(i), 1e-9) {
			t.Errorf("query %d started at %v, want %d", i, q.Start, i)
		}
	}
}

func TestOffloadImprovesThroughput(t *testing.T) {
	// The paper's core claim: moving group-by work to the GPU frees CPU
	// for other streams. CPU-only profile: 100 core-seconds. Offloaded:
	// 60 core-seconds + 1 device-second. With 8 concurrent streams the
	// offloaded variant must finish sooner.
	cpuOnly := Profile{Name: "cpu", Phases: []Phase{{Kind: CPUPhase, Work: 100, MaxPar: 24}}}
	offload := Profile{Name: "gpu", Phases: []Phase{
		{Kind: CPUPhase, Work: 60, MaxPar: 24},
		{Kind: GPUPhase, Work: 1, Mem: 2 << 30},
	}}
	mk := func(p Profile) [][]Profile {
		streams := make([][]Profile, 8)
		for i := range streams {
			streams[i] = []Profile{p, p}
		}
		return streams
	}
	base, err := Run(cfg1GPU(), mk(cpuOnly))
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Run(cfg1GPU(), mk(offload))
	if err != nil {
		t.Fatal(err)
	}
	if accel.Makespan >= base.Makespan {
		t.Errorf("offload makespan %v should beat CPU-only %v", accel.Makespan, base.Makespan)
	}
	if accel.Throughput() <= base.Throughput() {
		t.Errorf("offload throughput %.1f should beat %.1f", accel.Throughput(), base.Throughput())
	}
}

func TestPeriodicSampling(t *testing.T) {
	cfg := cfg1GPU()
	cfg.SampleEvery = 0.25
	p := Profile{Name: "gq", Phases: []Phase{{Kind: GPUPhase, Work: 2, Mem: 4 << 30}}}
	r, err := Run(cfg, [][]Profile{{p}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MemSeries[0]) < 8 {
		t.Errorf("expected ~8 periodic samples, got %d", len(r.MemSeries[0]))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("zero CPU capacity should error")
	}
	// GPU phase with no devices.
	p := Profile{Name: "gq", Phases: []Phase{{Kind: GPUPhase, Work: 1, Mem: 1}}}
	if _, err := Run(Config{CPUCapacity: 10}, [][]Profile{{p}}); err == nil {
		t.Error("GPU phase without devices should error")
	}
	// GPU demand exceeding every device.
	big := Profile{Name: "big", Phases: []Phase{{Kind: GPUPhase, Work: 1, Mem: 64 << 30}}}
	if _, err := Run(cfg1GPU(), [][]Profile{{big}}); err == nil {
		t.Error("oversized GPU demand should error")
	}
}

func TestZeroWorkPhasesSkipped(t *testing.T) {
	p := Profile{Name: "q", Phases: []Phase{
		{Kind: CPUPhase, Work: 0, MaxPar: 4},
		{Kind: CPUPhase, Work: 10, MaxPar: 10},
		{Kind: GPUPhase, Work: 0},
	}}
	r, err := Run(cfg1GPU(), [][]Profile{{p}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Makespan.Seconds(), 1, 1e-9) {
		t.Errorf("makespan = %v, want 1s", r.Makespan)
	}
}

func TestTrailingZeroWorkQueryRecorded(t *testing.T) {
	p := Profile{Name: "q", Phases: []Phase{
		{Kind: CPUPhase, Work: 10, MaxPar: 10},
		{Kind: GPUPhase, Work: 0},
	}}
	r, err := Run(cfg1GPU(), [][]Profile{{p, p}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Queries) != 2 {
		t.Fatalf("queries recorded = %d, want 2", len(r.Queries))
	}
}
