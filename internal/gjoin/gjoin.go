// Package gjoin implements a GPU hash-join kernel — the paper's stated
// next step ("we would like to study the performance of other compute
// intensive operations (like join) on the GPU", Section 6). The engine's
// prototype path keeps joins on the CPU, exactly like the paper's; this
// package provides the device kernel for study, with the same memory
// discipline (reserve up front, stage through pinned memory) and an
// equivalent CPU implementation for comparison.
//
// The kernel is a classic two-phase device hash join over 64-bit keys:
// phase 1 inserts the build side into a device hash table with atomicCAS
// slot claiming (chained duplicates through a per-slot list); phase 2
// probes with the stream side, emitting (buildRow, probeRow) pairs into a
// preallocated output buffer through an atomic cursor.
package gjoin

import (
	"errors"
	"sync/atomic"

	"blugpu/internal/gpu"
	"blugpu/internal/murmur"
	"blugpu/internal/vtime"
)

// Pair is one join match: row indices into the build and probe inputs.
type Pair struct {
	Build, Probe int32
}

// Stats reports a join execution.
type Stats struct {
	Path    string
	Matches int
	Modeled vtime.Duration
}

// ErrOutputOverflow is returned when the match count exceeds the
// preallocated output buffer (the caller sized it from optimizer
// estimates and must retry bigger or fall back).
var ErrOutputOverflow = errors.New("gjoin: output buffer overflow")

// MemoryDemand returns the device bytes needed to join build (n rows)
// against probe (m rows) with the given output capacity.
func MemoryDemand(buildRows, probeRows, outCap int) int64 {
	slots := tableSlots(buildRows)
	if outCap <= 0 {
		outCap = buildRows + probeRows
	}
	return int64(maxInt(buildRows, 1))*8 + // build keys
		int64(maxInt(probeRows, 1))*8 + // probe keys
		int64(slots)*16 + // table: key word + chain head per slot
		int64(maxInt(buildRows, 1))*8 + // chain links
		int64(maxInt(outCap, 1))*8 // packed output pairs
}

func tableSlots(buildRows int) int {
	s := 16
	for s < buildRows*2 {
		s <<= 1
	}
	return s
}

// RunGPU joins build and probe key vectors on the device. outCap bounds
// the emitted matches. NULL keys (represented by the caller as absent —
// use a sentinel filter beforehand) are the caller's concern; every key
// participates.
func RunGPU(build, probe []int64, res *gpu.Reservation, model *vtime.CostModel, outCap int, pinned bool) ([]Pair, Stats, error) {
	if outCap <= 0 {
		outCap = len(build) + len(probe)
	}
	// -1 collides with the empty-slot sentinel; surrogate keys are
	// non-negative, so reject rather than corrupt.
	for _, k := range build {
		if k == -1 {
			return nil, Stats{}, errors.New("gjoin: key -1 collides with the empty sentinel")
		}
	}
	dev := res.Device()
	slots := tableSlots(len(build))
	mask := uint64(slots - 1)

	// Device buffers: staged inputs, table, chains, output.
	buildBuf, err := res.AllocWords(maxInt(len(build), 1))
	if err != nil {
		return nil, Stats{}, err
	}
	probeBuf, err := res.AllocWords(maxInt(len(probe), 1))
	if err != nil {
		return nil, Stats{}, err
	}
	table, err := res.AllocWords(slots * 2)
	if err != nil {
		return nil, Stats{}, err
	}
	chains, err := res.AllocWords(maxInt(len(build), 1))
	if err != nil {
		return nil, Stats{}, err
	}
	out, err := res.AllocWords(outCap)
	if err != nil {
		return nil, Stats{}, err
	}

	var total vtime.Duration
	t, err := dev.CopyToDevice(buildBuf, int64sToWords(build), pinned)
	if err != nil {
		return nil, Stats{}, err
	}
	total += t
	t, err = dev.CopyToDevice(probeBuf, int64sToWords(probe), pinned)
	if err != nil {
		return nil, Stats{}, err
	}
	total += t

	const empty = ^uint64(0)
	// Initialize table slots to empty.
	kr := dev.RunKernel("join_init", nil, func(g *gpu.Grid) (vtime.Duration, error) {
		words := table.Words()
		err := g.ParallelFor(slots, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				words[2*s] = empty
				words[2*s+1] = empty
			}
		})
		return model.DeviceFill(int64(slots) * 16), err
	})
	if kr.Err != nil {
		return nil, Stats{}, kr.Err
	}
	total += kr.Modeled

	// Phase 1: build. Slot holds (key, head row); duplicates chain
	// through chains[row] -> previous head.
	kr = dev.RunKernel("join_build", nil, func(g *gpu.Grid) (vtime.Duration, error) {
		words := table.Words()
		links := chains.Words()
		err := g.ParallelFor(len(build), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				key := uint64(build[i])
				s := int(murmur.Sum64Uint64(key, 0xfeed) & mask)
				for {
					cur := atomic.LoadUint64(&words[2*s])
					if cur == empty {
						if atomic.CompareAndSwapUint64(&words[2*s], empty, key) {
							// Claimed a fresh slot: install self as head.
							links[i] = atomic.SwapUint64(&words[2*s+1], uint64(i))
							break
						}
						cur = atomic.LoadUint64(&words[2*s])
					}
					if cur == key {
						// Same key: push self onto the chain.
						links[i] = atomic.SwapUint64(&words[2*s+1], uint64(i))
						break
					}
					s = int(uint64(s+1) & mask)
				}
			}
		})
		return vtime.Duration(float64(len(build)) / model.GPUHashInsertRate), err
	})
	if kr.Err != nil {
		return nil, Stats{}, kr.Err
	}
	total += kr.Modeled

	// Phase 2: probe, emitting pairs through an atomic cursor.
	var cursor atomic.Int64
	var overflow atomic.Bool
	kr = dev.RunKernel("join_probe", nil, func(g *gpu.Grid) (vtime.Duration, error) {
		words := table.Words()
		links := chains.Words()
		outWords := out.Words()
		err := g.ParallelFor(len(probe), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if overflow.Load() {
					return
				}
				key := uint64(probe[i])
				s := int(murmur.Sum64Uint64(key, 0xfeed) & mask)
				for step := 0; step < slots; step++ {
					cur := atomic.LoadUint64(&words[2*s])
					if cur == empty {
						break
					}
					if cur == key {
						// Walk the duplicate chain.
						for r := atomic.LoadUint64(&words[2*s+1]); r != empty; r = links[r] {
							idx := cursor.Add(1) - 1
							if int(idx) >= outCap {
								overflow.Store(true)
								return
							}
							outWords[idx] = r<<32 | uint64(uint32(i))
						}
						break
					}
					s = int(uint64(s+1) & mask)
				}
			}
		})
		return vtime.Duration(float64(len(probe)) / model.GPUHashInsertRate), err
	})
	if kr.Err != nil {
		return nil, Stats{}, kr.Err
	}
	total += kr.Modeled
	if overflow.Load() {
		return nil, Stats{}, ErrOutputOverflow
	}

	n := int(cursor.Load())
	resultWords := make([]uint64, n)
	t, err = dev.CopyFromDevice(resultWords, out, pinned)
	if err != nil {
		return nil, Stats{}, err
	}
	total += t

	pairs := make([]Pair, n)
	for i, w := range resultWords {
		pairs[i] = Pair{Build: int32(w >> 32), Probe: int32(uint32(w))}
	}
	return pairs, Stats{Path: "gpu", Matches: n, Modeled: total}, nil
}

// RunCPU is the host hash join used for comparison, with the same output
// contract.
func RunCPU(build, probe []int64, model *vtime.CostModel, degree int) ([]Pair, Stats, error) {
	ht := make(map[int64][]int32, len(build))
	for i, k := range build {
		ht[k] = append(ht[k], int32(i))
	}
	var pairs []Pair
	for i, k := range probe {
		for _, b := range ht[k] {
			pairs = append(pairs, Pair{Build: b, Probe: int32(i)})
		}
	}
	modeled := model.CPUTime(float64(len(build)), model.CPUHashBuildRate, degree) +
		model.CPUTime(float64(len(probe)), model.CPUHashProbeRate, degree)
	return pairs, Stats{Path: "cpu", Matches: len(pairs), Modeled: modeled}, nil
}

func int64sToWords(v []int64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = uint64(x)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
