package gjoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

func device() *gpu.Device { return gpu.NewDevice(0, vtime.TeslaK40()) }

func reserve(t *testing.T, build, probe, outCap int) *gpu.Reservation {
	t.Helper()
	res, err := device().Reserve(MemoryDemand(build, probe, outCap))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sortPairs normalizes for comparison.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Build != ps[b].Build {
			return ps[a].Build < ps[b].Build
		}
		return ps[a].Probe < ps[b].Probe
	})
}

func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	sortPairs(a)
	sortPairs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGPUMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := make([]int64, 5000)
	probe := make([]int64, 20000)
	for i := range build {
		build[i] = rng.Int63n(3000)
	}
	for i := range probe {
		probe[i] = rng.Int63n(3000)
	}
	model := vtime.Default()
	cpuPairs, cpuStats, err := RunCPU(build, probe, model, 24)
	if err != nil {
		t.Fatal(err)
	}
	res := reserve(t, len(build), len(probe), len(cpuPairs)+100)
	defer res.Release()
	gpuPairs, gpuStats, err := RunGPU(build, probe, res, model, len(cpuPairs)+100, true)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(cpuPairs, gpuPairs) {
		t.Fatalf("results differ: cpu=%d pairs, gpu=%d pairs", len(cpuPairs), len(gpuPairs))
	}
	if cpuStats.Matches != gpuStats.Matches {
		t.Errorf("match counts differ: %d vs %d", cpuStats.Matches, gpuStats.Matches)
	}
	if gpuStats.Modeled <= 0 || cpuStats.Modeled <= 0 {
		t.Error("modeled times missing")
	}
}

func TestDuplicateKeysBothSides(t *testing.T) {
	build := []int64{1, 1, 2, 3, 3, 3}
	probe := []int64{1, 3, 3, 4}
	model := vtime.Default()
	cpuPairs, _, _ := RunCPU(build, probe, model, 4)
	// 1 matches 2 build rows; 3 matches 3 build rows twice: 2 + 6 = 8.
	if len(cpuPairs) != 8 {
		t.Fatalf("cpu pairs = %d, want 8", len(cpuPairs))
	}
	res := reserve(t, len(build), len(probe), 16)
	defer res.Release()
	gpuPairs, _, err := RunGPU(build, probe, res, model, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(cpuPairs, gpuPairs) {
		t.Fatalf("duplicate-key results differ")
	}
}

func TestNoMatches(t *testing.T) {
	res := reserve(t, 3, 3, 8)
	defer res.Release()
	pairs, st, err := RunGPU([]int64{1, 2, 3}, []int64{7, 8, 9}, res, vtime.Default(), 8, true)
	if err != nil || len(pairs) != 0 || st.Matches != 0 {
		t.Errorf("no-match join: %v pairs, %v", pairs, err)
	}
}

func TestEmptyInputs(t *testing.T) {
	res := reserve(t, 0, 5, 8)
	defer res.Release()
	pairs, _, err := RunGPU(nil, []int64{1, 2, 3, 4, 5}, res, vtime.Default(), 8, true)
	if err != nil || len(pairs) != 0 {
		t.Errorf("empty build join: %v, %v", pairs, err)
	}
}

func TestOutputOverflow(t *testing.T) {
	build := []int64{1, 1, 1, 1}
	probe := []int64{1, 1}
	res := reserve(t, len(build), len(probe), 4)
	defer res.Release()
	_, _, err := RunGPU(build, probe, res, vtime.Default(), 4, true) // needs 8
	if err != ErrOutputOverflow {
		t.Errorf("want ErrOutputOverflow, got %v", err)
	}
}

func TestSentinelKeyRejected(t *testing.T) {
	res := reserve(t, 2, 2, 4)
	defer res.Release()
	if _, _, err := RunGPU([]int64{-1, 2}, []int64{2}, res, vtime.Default(), 4, true); err == nil {
		t.Error("key -1 should be rejected")
	}
}

func TestGPUJoinCostShape(t *testing.T) {
	// Star joins (tiny build, huge probe) are what the engine runs; the
	// device should be at least competitive at large probe counts.
	model := vtime.Default()
	build := make([]int64, 2000)
	probe := make([]int64, 2_000_000)
	for i := range build {
		build[i] = int64(i)
	}
	for i := range probe {
		probe[i] = int64(i % 2000)
	}
	_, cpuStats, _ := RunCPU(build, probe, model, 24)
	res := reserve(t, len(build), len(probe), len(probe)+10)
	defer res.Release()
	_, gpuStats, err := RunGPU(build, probe, res, model, len(probe)+10, true)
	if err != nil {
		t.Fatal(err)
	}
	// Not asserting a win — the paper left join offload as future work —
	// but the device should be within 4x either way, or the cost model
	// is broken.
	ratio := gpuStats.Modeled.Seconds() / cpuStats.Modeled.Seconds()
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("gpu/cpu join ratio = %.2f, outside sanity band", ratio)
	}
}

func TestJoinProperty(t *testing.T) {
	model := vtime.Default()
	f := func(rawBuild, rawProbe []uint8) bool {
		build := make([]int64, len(rawBuild))
		probe := make([]int64, len(rawProbe))
		for i, v := range rawBuild {
			build[i] = int64(v % 32)
		}
		for i, v := range rawProbe {
			probe[i] = int64(v % 32)
		}
		cpuPairs, _, _ := RunCPU(build, probe, model, 4)
		outCap := len(cpuPairs) + 8
		res, err := device().Reserve(MemoryDemand(len(build), len(probe), outCap))
		if err != nil {
			return false
		}
		defer res.Release()
		gpuPairs, _, err := RunGPU(build, probe, res, model, outCap, true)
		if err != nil {
			return false
		}
		return samePairs(cpuPairs, gpuPairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
