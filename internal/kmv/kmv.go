// Package kmv implements the K-Minimum-Values distinct-count sketch.
//
// The hybrid group-by chain (paper Section 4.2) feeds every hashed
// grouping key through a KMV sketch while the HASH evaluator runs, and
// uses the resulting estimate of the number of groups to size the GPU's
// global hash table: the table only needs to be "slightly larger than the
// estimated number of groups" instead of as large as the input row count.
//
// KMV keeps the k smallest distinct hash values seen. If the k-th smallest
// of uniformly distributed hashes (normalized into [0,1)) is m, the
// distinct count is estimated as (k-1)/m.
package kmv

import (
	"errors"
	"math"

	"blugpu/internal/murmur"
)

// DefaultK is a good default sketch size: standard error ≈ 1/sqrt(k-2),
// about 3.2% at k=1024.
const DefaultK = 1024

// Sketch is a K-Minimum-Values distinct-count estimator. The zero value is
// not usable; construct with New. Sketch is not safe for concurrent use;
// the evaluator chain keeps one per thread and merges.
type Sketch struct {
	k    int
	heap []uint64 // max-heap of the k smallest values seen
	seen map[uint64]struct{}
	n    uint64 // total values offered
}

// New returns a sketch keeping the k smallest distinct hash values.
func New(k int) (*Sketch, error) {
	if k < 2 {
		return nil, errors.New("kmv: k must be >= 2")
	}
	return &Sketch{
		k:    k,
		heap: make([]uint64, 0, k),
		seen: make(map[uint64]struct{}, k),
	}, nil
}

// MustNew is New for known-good k; it panics on error.
func MustNew(k int) *Sketch {
	s, err := New(k)
	if err != nil {
		panic(err)
	}
	return s
}

// K returns the sketch size parameter.
func (s *Sketch) K() int { return s.k }

// Observed returns the total number of values offered to the sketch.
func (s *Sketch) Observed() uint64 { return s.n }

// AddHash offers one already-hashed value.
func (s *Sketch) AddHash(h uint64) {
	s.n++
	if len(s.heap) == s.k && h >= s.heap[0] {
		return
	}
	if _, dup := s.seen[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.seen[h] = struct{}{}
		s.heap = append(s.heap, h)
		s.siftUp(len(s.heap) - 1)
		return
	}
	// Replace the current maximum.
	delete(s.seen, s.heap[0])
	s.seen[h] = struct{}{}
	s.heap[0] = h
	s.siftDown(0)
}

// Add hashes and offers a byte-slice key.
func (s *Sketch) Add(key []byte) { s.AddHash(murmur.Sum64(key, 0x9747b28c)) }

// AddUint64 hashes and offers a 64-bit key.
func (s *Sketch) AddUint64(v uint64) { s.AddHash(murmur.Sum64Uint64(v, 0x9747b28c)) }

// Estimate returns the estimated number of distinct values observed.
func (s *Sketch) Estimate() float64 {
	if len(s.heap) < s.k {
		// Sketch not yet full: the exact distinct count so far.
		return float64(len(s.heap))
	}
	// kth minimum normalized into (0,1].
	m := (float64(s.heap[0]) + 1) / math.Pow(2, 64)
	return float64(s.k-1) / m
}

// EstimateUint64 returns the estimate rounded to a count, never less
// than 1 when anything was observed.
func (s *Sketch) EstimateUint64() uint64 {
	if s.n == 0 {
		return 0
	}
	e := s.Estimate()
	if e < 1 {
		return 1
	}
	return uint64(e + 0.5)
}

// Merge folds other into s. Both sketches must have been built with the
// same hash scheme; the merged sketch keeps the k smallest of the union.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	s.n += other.n
	for _, h := range other.heap {
		// Count bookkeeping only once: AddHash increments n.
		s.n--
		s.AddHash(h)
	}
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l] > s.heap[largest] {
			largest = l
		}
		if r < n && s.heap[r] > s.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}
