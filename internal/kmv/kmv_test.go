package kmv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("k=1 should be rejected")
	}
	if _, err := New(2); err != nil {
		t.Errorf("k=2 should be accepted: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestExactBelowK(t *testing.T) {
	s := MustNew(256)
	for i := 0; i < 100; i++ {
		s.AddUint64(uint64(i))
	}
	// Duplicates must not inflate the count.
	for i := 0; i < 100; i++ {
		s.AddUint64(uint64(i))
	}
	if got := s.EstimateUint64(); got != 100 {
		t.Errorf("estimate below k should be exact: got %d, want 100", got)
	}
	if s.Observed() != 200 {
		t.Errorf("Observed = %d, want 200", s.Observed())
	}
}

func TestEmpty(t *testing.T) {
	s := MustNew(64)
	if s.EstimateUint64() != 0 {
		t.Error("empty sketch should estimate 0")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Known distinct counts; estimate should land within a few standard
	// errors (1/sqrt(k-2) ~ 3.2% at k=1024).
	for _, distinct := range []int{5_000, 50_000, 500_000} {
		s := MustNew(1024)
		for i := 0; i < distinct; i++ {
			s.AddUint64(uint64(i) * 2654435761)
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(distinct)) / float64(distinct)
		if relErr > 0.15 {
			t.Errorf("distinct=%d: estimate %.0f off by %.1f%%", distinct, est, relErr*100)
		}
	}
}

func TestDuplicateHeavyStream(t *testing.T) {
	// 1M rows but only 12 groups (the paper's birth-month example).
	s := MustNew(1024)
	for i := 0; i < 1_000_000; i++ {
		s.AddUint64(uint64(i % 12))
	}
	if got := s.EstimateUint64(); got != 12 {
		t.Errorf("estimate = %d, want exactly 12 (below k is exact)", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(512), MustNew(512)
	for i := 0; i < 40_000; i++ {
		a.AddUint64(uint64(i))
	}
	for i := 20_000; i < 60_000; i++ {
		b.AddUint64(uint64(i))
	}
	a.Merge(b)
	est := a.Estimate()
	relErr := math.Abs(est-60_000) / 60_000
	if relErr > 0.2 {
		t.Errorf("merged estimate %.0f off by %.1f%% (want ~60000)", est, relErr*100)
	}
	if a.Observed() != 80_000 {
		t.Errorf("merged Observed = %d, want 80000", a.Observed())
	}
	a.Merge(nil) // must not panic
}

func TestAddBytesAndUint64Consistent(t *testing.T) {
	s := MustNew(64)
	s.Add([]byte("store_sk=1"))
	s.Add([]byte("store_sk=1"))
	s.Add([]byte("store_sk=2"))
	if got := s.EstimateUint64(); got != 2 {
		t.Errorf("estimate = %d, want 2", got)
	}
}

func TestHeapInvariant(t *testing.T) {
	// Property: after arbitrary inserts the heap keeps exactly the k
	// smallest distinct hashes, with the max at the root.
	f := func(values []uint64) bool {
		s := MustNew(16)
		distinct := map[uint64]struct{}{}
		for _, v := range values {
			s.AddHash(v)
			distinct[v] = struct{}{}
		}
		if len(distinct) <= 16 {
			return len(s.heap) == len(distinct)
		}
		// Root is the maximum of the kept set.
		root := s.heap[0]
		for _, h := range s.heap {
			if h > root {
				return false
			}
		}
		// Every kept value must be <= every discarded distinct value rank:
		// equivalently, the kept set is exactly the 16 smallest.
		smaller := 0
		for v := range distinct {
			if v < root {
				smaller++
			}
		}
		return smaller <= 16 && len(s.heap) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
