package vtime

import "math"

// CostModel bundles the hardware specs with calibrated per-operation
// throughput rates. All rates are in operations per second; CPU rates are
// per effective core (see CPUSpec.EffectiveParallelism), GPU rates are for
// the whole device at full occupancy.
//
// The constants are calibrated so that the relative shapes of the paper's
// results hold: CPU wins on small inputs (kernel launch + PCIe transfer
// overhead), the GPU wins on large group-by/aggregation/sort work by
// integer factors, shared-memory grouping beats the global-table kernel
// when the groups fit in 48 KiB, and the row-lock kernel beats
// per-aggregate atomics when there are many aggregate functions or low
// contention.
type CostModel struct {
	CPU  CPUSpec
	GPU  GPUSpec
	PCIe PCIeSpec

	// --- CPU rates (per effective core) ---

	// CPUScanRate: dictionary-encoded column scan + predicate, rows/s.
	CPUScanRate float64
	// CPUHashBuildRate: hash-table build, rows/s.
	CPUHashBuildRate float64
	// CPUHashProbeRate: hash-table probe, rows/s.
	CPUHashProbeRate float64
	// CPUGroupByRate: local-hash-table grouping (LGHT), rows/s, while the
	// hash tables fit in cache.
	CPUGroupByRate float64
	// CPUGroupByRateLarge: LGHT throughput once the tables far exceed
	// cache and every probe misses (the regime where the device's memory
	// bandwidth advantage pays off).
	CPUGroupByRateLarge float64
	// CPUGroupByCacheGroups is the group count up to which LGHT runs at
	// the cached rate; the rate declines log-linearly to the large rate
	// at 64x this count.
	CPUGroupByCacheGroups float64
	// CPUAggRate: one aggregate update, updates/s.
	CPUAggRate float64
	// CPUMergeRate: merging local hash tables into the global table,
	// entries/s.
	CPUMergeRate float64
	// CPUSortRate: comparison-sort key operations (n*log2(n) of them), /s.
	CPUSortRate float64
	// CPUKeyGenRate: partial-key/payload generation for sort, rows/s.
	CPUKeyGenRate float64
	// CPUExprRate: scalar expression evaluations, /s.
	CPUExprRate float64
	// CPUMemBandwidthBps: host memory bandwidth for bulk copies (MEMCPY
	// evaluator staging into pinned memory).
	CPUMemBandwidthBps float64

	// --- GPU rates (whole device) ---

	// GPUKernelLaunch is the fixed cost of launching one kernel.
	GPUKernelLaunch Duration
	// GPURadixSortRate: Merrill LSD radix sort over (key32,payload32)
	// pairs, keys/s.
	GPURadixSortRate float64
	// GPUHashInsertRate: global-hash-table probe/insert, rows/s at low
	// contention.
	GPUHashInsertRate float64
	// GPUAtomicRate: atomic aggregate updates, /s at low contention.
	GPUAtomicRate float64
	// GPUAtomicContention scales the serialization penalty when many rows
	// collapse onto few groups (hot addresses serialize).
	GPUAtomicContention float64
	// GPUAtomicContentionCap bounds the atomic serialization multiplier.
	GPUAtomicContentionCap float64
	// GPULockRate: spin-lock acquire+release pairs, /s.
	GPULockRate float64
	// GPULockContention scales lock serialization with rows/groups.
	GPULockContention float64
	// GPULockContentionCap bounds the lock serialization multiplier.
	GPULockContentionCap float64
	// GPUPlainAggRate: non-atomic aggregate updates under a held row lock
	// (kernel 3's inner loop), /s.
	GPUPlainAggRate float64
	// GPUSharedGroupRate: shared-memory (SMX-local) grouping, rows/s.
	GPUSharedGroupRate float64
	// GPUMergeRate: merging SMX-local tables into device memory, entries/s.
	GPUMergeRate float64
	// GPUScanRate: device-side streaming over input rows (reads feeding the
	// grouping kernels), rows/s.
	GPUScanRate float64
}

// Default returns the calibrated cost model for the paper's testbed:
// POWER8 S824 host, Tesla K40 devices, PCIe gen3.
func Default() *CostModel {
	return &CostModel{
		CPU:  PowerS824(),
		GPU:  TeslaK40(),
		PCIe: PCIeGen3(),

		CPUScanRate:           220e6,
		CPUHashBuildRate:      35e6,
		CPUHashProbeRate:      60e6,
		CPUGroupByRate:        14e6,
		CPUGroupByRateLarge:   3.5e6,
		CPUGroupByCacheGroups: 4096,
		CPUAggRate:            120e6,
		CPUMergeRate:          45e6,
		CPUSortRate:           110e6,
		CPUKeyGenRate:         160e6,
		CPUExprRate:           300e6,
		CPUMemBandwidthBps:    100e9,

		GPUKernelLaunch:        10 * Microsecond,
		GPURadixSortRate:       1.0e9,
		GPUHashInsertRate:      3e9,
		GPUAtomicRate:          3e9,
		GPUAtomicContention:    0.004,
		GPUAtomicContentionCap: 50,
		GPULockRate:            1e9,
		GPULockContention:      0.008,
		GPULockContentionCap:   100,
		GPUPlainAggRate:        10e9,
		GPUSharedGroupRate:     5.5e9,
		GPUMergeRate:           1.2e9,
		GPUScanRate:            8e9,
	}
}

// CPUGroupByRateFor returns the LGHT throughput (rows/s/core) at the
// given group count: the cached rate up to CPUGroupByCacheGroups, then a
// log-linear decline to CPUGroupByRateLarge at 64x that count. This is
// the cache-miss wall that makes very large grouping sets the GPU's best
// case in the paper's Section 5.3.
func (m *CostModel) CPUGroupByRateFor(groups float64) float64 {
	lo := m.CPUGroupByCacheGroups
	if groups <= lo || lo <= 0 {
		return m.CPUGroupByRate
	}
	hi := lo * 64
	if groups >= hi {
		return m.CPUGroupByRateLarge
	}
	// Interpolate in log space between the two rates.
	t := math.Log(groups/lo) / math.Log(64)
	return m.CPUGroupByRate * math.Pow(m.CPUGroupByRateLarge/m.CPUGroupByRate, t)
}

// AtomicContentionFactor returns the serialization multiplier (>= 1) for
// atomic aggregate updates when rows collapse onto few groups: the hotter
// a hash-table row, the more the device serializes on it.
func (m *CostModel) AtomicContentionFactor(rows, groups float64) float64 {
	if groups <= 0 || rows <= groups {
		return 1
	}
	f := 1 + m.GPUAtomicContention*(rows/groups-1)
	if f > m.GPUAtomicContentionCap {
		f = m.GPUAtomicContentionCap
	}
	return f
}

// LockContentionFactor is the lock analogue of AtomicContentionFactor;
// locks degrade faster under contention (paper Section 4.4).
func (m *CostModel) LockContentionFactor(rows, groups float64) float64 {
	if groups <= 0 || rows <= groups {
		return 1
	}
	f := 1 + m.GPULockContention*(rows/groups-1)
	if f > m.GPULockContentionCap {
		f = m.GPULockContentionCap
	}
	return f
}

// CPUTime models `work` operations at `rate` ops/s/core spread over
// `degree` threads on the host.
func (m *CostModel) CPUTime(work float64, rate float64, degree int) Duration {
	if work <= 0 || rate <= 0 {
		return 0
	}
	p := m.CPU.EffectiveParallelism(degree)
	return Duration(work / (rate * p))
}

// GPUTime models `work` operations at `rate` ops/s on the device,
// including one kernel launch.
func (m *CostModel) GPUTime(work float64, rate float64) Duration {
	if rate <= 0 {
		return m.GPUKernelLaunch
	}
	if work < 0 {
		work = 0
	}
	return m.GPUKernelLaunch + Duration(work/rate)
}

// Transfer models one host<->device copy.
func (m *CostModel) Transfer(bytes int64, pinned bool) Duration {
	return m.PCIe.TransferTime(bytes, pinned)
}

// DeviceFill models initializing n bytes of device memory at full
// device-memory bandwidth (the parallel mask copy of Section 4.3.1).
func (m *CostModel) DeviceFill(bytes int64) Duration {
	if bytes <= 0 {
		return 0
	}
	return Duration(float64(bytes) / m.GPU.MemBandwidthBps)
}

// HostCopy models copying n bytes host-to-host (e.g. the MEMCPY evaluator
// staging column data into the pinned segment) across `degree` threads.
func (m *CostModel) HostCopy(bytes int64, degree int) Duration {
	if bytes <= 0 {
		return 0
	}
	p := m.CPU.EffectiveParallelism(degree)
	perCore := m.CPUMemBandwidthBps / float64(m.CPU.Cores)
	bw := perCore * p
	if bw > m.CPUMemBandwidthBps {
		bw = m.CPUMemBandwidthBps
	}
	return Duration(float64(bytes) / bw)
}
