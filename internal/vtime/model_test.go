package vtime

import (
	"math"
	"testing"
)

func TestCPUGroupByRateFor(t *testing.T) {
	m := Default()
	// Below the cache cliff: full rate.
	if got := m.CPUGroupByRateFor(100); got != m.CPUGroupByRate {
		t.Errorf("cached rate = %v", got)
	}
	if got := m.CPUGroupByRateFor(m.CPUGroupByCacheGroups); got != m.CPUGroupByRate {
		t.Errorf("at cliff = %v", got)
	}
	// Far beyond: the large-table rate.
	if got := m.CPUGroupByRateFor(m.CPUGroupByCacheGroups * 1000); got != m.CPUGroupByRateLarge {
		t.Errorf("large rate = %v", got)
	}
	// Monotone non-increasing in between.
	prev := m.CPUGroupByRate
	for g := m.CPUGroupByCacheGroups; g < m.CPUGroupByCacheGroups*64; g *= 2 {
		r := m.CPUGroupByRateFor(g)
		if r > prev+1e-9 {
			t.Fatalf("rate not monotone at %v groups: %v > %v", g, r, prev)
		}
		prev = r
	}
	// Degenerate model with no cliff configured.
	m2 := *m
	m2.CPUGroupByCacheGroups = 0
	if m2.CPUGroupByRateFor(1e9) != m2.CPUGroupByRate {
		t.Error("zero cliff should disable degradation")
	}
}

func TestContentionFactors(t *testing.T) {
	m := Default()
	// No contention at or below one row per group.
	if m.AtomicContentionFactor(100, 100) != 1 || m.AtomicContentionFactor(50, 100) != 1 {
		t.Error("low ratios should not contend")
	}
	if m.AtomicContentionFactor(0, 0) != 1 {
		t.Error("degenerate inputs should be 1")
	}
	// Grows with ratio, capped.
	f10 := m.AtomicContentionFactor(1000, 100)
	f100 := m.AtomicContentionFactor(10000, 100)
	if !(f100 > f10 && f10 > 1) {
		t.Errorf("atomic contention not increasing: %v, %v", f10, f100)
	}
	if got := m.AtomicContentionFactor(1e12, 1); got != m.GPUAtomicContentionCap {
		t.Errorf("atomic cap = %v, want %v", got, m.GPUAtomicContentionCap)
	}
	// Locks degrade faster and have their own cap.
	if m.LockContentionFactor(10000, 100) <= m.AtomicContentionFactor(10000, 100) {
		t.Error("locks should contend harder than atomics")
	}
	if got := m.LockContentionFactor(1e12, 1); got != m.GPULockContentionCap {
		t.Errorf("lock cap = %v", got)
	}
	if m.LockContentionFactor(10, 100) != 1 {
		t.Error("lock factor at low ratio should be 1")
	}
}

func TestHostCopy(t *testing.T) {
	m := Default()
	if m.HostCopy(0, 8) != 0 {
		t.Error("zero bytes should be free")
	}
	one := m.HostCopy(1<<30, 1)
	all := m.HostCopy(1<<30, 24)
	if all >= one {
		t.Error("more threads should not slow the copy")
	}
	// Bandwidth saturates: degree beyond cores cannot exceed the bus.
	sat := m.HostCopy(1<<30, 96)
	floor := Duration(float64(1<<30) / m.CPUMemBandwidthBps)
	if sat < floor-1e-12 {
		t.Errorf("copy faster than the memory bus: %v < %v", sat, floor)
	}
}

func TestGPUTimeEdgeCases(t *testing.T) {
	m := Default()
	// Zero rate degenerates to launch cost.
	if m.GPUTime(100, 0) != m.GPUKernelLaunch {
		t.Error("zero rate should cost one launch")
	}
	// Negative work clamps.
	if m.GPUTime(-5, 1e9) != m.GPUKernelLaunch {
		t.Error("negative work should clamp to zero")
	}
	if m.CPUTime(100, 0, 4) != 0 {
		t.Error("zero rate CPU time should be 0")
	}
	if m.CPUTime(-1, 1e9, 4) != 0 {
		t.Error("negative CPU work should be 0")
	}
}

func TestDurationMinMaxBothBranches(t *testing.T) {
	if Max(2*Second, Second) != 2*Second || Max(Second, 2*Second) != 2*Second {
		t.Error("Max broken")
	}
	if Min(2*Second, Second) != Second || Min(Second, 2*Second) != Second {
		t.Error("Min broken")
	}
}

func TestEffectiveParallelismZeroDegree(t *testing.T) {
	cpu := PowerS824()
	if cpu.EffectiveParallelism(0) != 1 || cpu.EffectiveParallelism(-3) != 1 {
		t.Error("non-positive degree should give parallelism 1")
	}
}

func TestRateInterpolationContinuity(t *testing.T) {
	// The log-linear interpolation should meet its endpoints.
	m := Default()
	lo, hi := m.CPUGroupByCacheGroups, m.CPUGroupByCacheGroups*64
	atLo := m.CPUGroupByRateFor(lo * 1.0000001)
	if math.Abs(atLo-m.CPUGroupByRate)/m.CPUGroupByRate > 0.01 {
		t.Errorf("discontinuity at the cliff: %v vs %v", atLo, m.CPUGroupByRate)
	}
	atHi := m.CPUGroupByRateFor(hi * 0.9999999)
	if math.Abs(atHi-m.CPUGroupByRateLarge)/m.CPUGroupByRateLarge > 0.01 {
		t.Errorf("discontinuity at the floor: %v vs %v", atHi, m.CPUGroupByRateLarge)
	}
}
