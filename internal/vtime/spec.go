package vtime

// GPUSpec describes a GPU device for the cost model. The defaults mirror
// the Nvidia Tesla K40 cards used in the paper's testbed, but devices need
// not be homogeneous: the multi-GPU scheduler supports mixed fleets.
type GPUSpec struct {
	Name string

	// CUDACores is the number of scalar cores (K40: 2880).
	CUDACores int
	// SMXCount is the number of streaming multiprocessors (K40: 15).
	SMXCount int
	// ClockHz is the core clock (K40 boost: 745 MHz).
	ClockHz float64
	// MemBandwidthBps is device-memory bandwidth in bytes/sec (K40: 288 GB/s).
	MemBandwidthBps float64
	// DeviceMemory is total device memory in bytes (K40: 12 GB).
	DeviceMemory int64
	// SharedMemPerSMX is the configurable shared-memory/L1 pool per SMX in
	// bytes (Kepler: 64 KiB, split 48/16 by the group-by kernels).
	SharedMemPerSMX int
	// MaxConcurrentKernels bounds kernels resident on the device at once
	// (Kepler Hyper-Q: 32).
	MaxConcurrentKernels int
}

// TeslaK40 returns the spec of the paper's accelerator.
func TeslaK40() GPUSpec {
	return GPUSpec{
		Name:                 "Tesla K40",
		CUDACores:            2880,
		SMXCount:             15,
		ClockHz:              745e6,
		MemBandwidthBps:      288e9,
		DeviceMemory:         12 << 30,
		SharedMemPerSMX:      64 << 10,
		MaxConcurrentKernels: 32,
	}
}

// CPUSpec describes the host for the cost model. The defaults mirror the
// paper's IBM Power S824: 2 sockets, 24 cores, SMT-4 (96 hardware
// threads), 3.92 GHz.
type CPUSpec struct {
	Name string
	// Cores is the number of physical cores.
	Cores int
	// SMT is the number of hardware threads per core.
	SMT int
	// ClockHz is the core clock.
	ClockHz float64
	// SMTScaling is the throughput multiplier gained by filling all SMT
	// threads of a core relative to one thread per core. Analytic
	// operators are memory-bound, so SMT-4 adds modest throughput
	// (~1.3x), which is why the paper's Table 3 gains barely move with
	// intra-query degree but grow with concurrent streams.
	SMTScaling float64
}

// PowerS824 returns the spec of the paper's host system.
func PowerS824() CPUSpec {
	return CPUSpec{
		Name:       "IBM Power S824",
		Cores:      24,
		SMT:        4,
		ClockHz:    3.92e9,
		SMTScaling: 1.3,
	}
}

// HardwareThreads returns the total number of schedulable hardware threads.
func (c CPUSpec) HardwareThreads() int { return c.Cores * c.SMT }

// EffectiveParallelism converts a requested thread count into an effective
// core-equivalent parallelism, accounting for diminishing SMT returns.
// degree <= Cores scales linearly; beyond that, the extra SMT threads add
// throughput up to Cores*SMTScaling at full SMT occupancy.
func (c CPUSpec) EffectiveParallelism(degree int) float64 {
	if degree <= 0 {
		return 1
	}
	if degree <= c.Cores {
		return float64(degree)
	}
	maxThreads := c.HardwareThreads()
	if degree > maxThreads {
		degree = maxThreads
	}
	// Linear interpolation between 1x at Cores threads and SMTScaling at
	// full SMT occupancy.
	extra := float64(degree-c.Cores) / float64(maxThreads-c.Cores)
	return float64(c.Cores) * (1 + extra*(c.SMTScaling-1))
}

// PCIeSpec describes the host-device interconnect. Pinned (registered)
// host memory transfers are ~4x faster than unregistered transfers, per
// the paper's Section 2.1.2 measurement on PCIe gen3.
type PCIeSpec struct {
	Name string
	// PinnedBps is host<->device bandwidth from registered memory.
	PinnedBps float64
	// UnpinnedBps is bandwidth from unregistered memory.
	UnpinnedBps float64
	// Latency is the fixed per-transfer setup cost.
	Latency Duration
}

// PCIeGen3 returns the paper's interconnect: ~12 GB/s effective pinned
// bandwidth on a x16 link, 4x slower unpinned.
func PCIeGen3() PCIeSpec {
	return PCIeSpec{
		Name:        "PCIe gen3 x16",
		PinnedBps:   12e9,
		UnpinnedBps: 3e9,
		Latency:     25 * Microsecond,
	}
}

// TransferTime models one host<->device copy of n bytes.
func (p PCIeSpec) TransferTime(bytes int64, pinned bool) Duration {
	if bytes <= 0 {
		return 0
	}
	bw := p.UnpinnedBps
	if pinned {
		bw = p.PinnedBps
	}
	return p.Latency + Duration(float64(bytes)/bw)
}
