package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{5 * Nanosecond, "5.0ns"},
		{3 * Microsecond, "3.00µs"},
		{250 * Millisecond, "250.00ms"},
		{2 * Second, "2.000s"},
		{90 * Second, "1.5m"},
		{2 * Hour, "2.00h"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%v seconds).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", d.Seconds())
	}
	if d.Milliseconds() != 1500 {
		t.Errorf("Milliseconds() = %v, want 1500", d.Milliseconds())
	}
	if math.Abs(d.Microseconds()-1.5e6) > 1e-6 {
		t.Errorf("Microseconds() = %v, want 1.5e6", d.Microseconds())
	}
}

func TestMinMax(t *testing.T) {
	if Max(Second, Minute) != Minute {
		t.Error("Max(1s, 1m) should be 1m")
	}
	if Min(Second, Minute) != Second {
		t.Error("Min(1s, 1m) should be 1s")
	}
}

func TestTimeArithmetic(t *testing.T) {
	var t0 Time
	t1 := t0.Add(5 * Second)
	if !t0.Before(t1) || !t1.After(t0) {
		t.Error("ordering broken")
	}
	if got := t1.Sub(t0); got != 5*Second {
		t.Errorf("Sub = %v, want 5s", got)
	}
}

func TestEffectiveParallelism(t *testing.T) {
	cpu := PowerS824()
	if got := cpu.EffectiveParallelism(1); got != 1 {
		t.Errorf("degree 1 => %v, want 1", got)
	}
	if got := cpu.EffectiveParallelism(24); got != 24 {
		t.Errorf("degree 24 => %v, want 24", got)
	}
	full := cpu.EffectiveParallelism(96)
	want := 24 * cpu.SMTScaling
	if math.Abs(full-want) > 1e-9 {
		t.Errorf("degree 96 => %v, want %v", full, want)
	}
	// Requests beyond the hardware thread count clamp.
	if cpu.EffectiveParallelism(1000) != full {
		t.Error("beyond HW threads should clamp to full SMT occupancy")
	}
	// Monotone non-decreasing in degree.
	prev := 0.0
	for d := 1; d <= 96; d++ {
		p := cpu.EffectiveParallelism(d)
		if p < prev {
			t.Fatalf("EffectiveParallelism not monotone at degree %d: %v < %v", d, p, prev)
		}
		prev = p
	}
}

func TestTransferPinnedFaster(t *testing.T) {
	p := PCIeGen3()
	const n = 64 << 20
	pinned := p.TransferTime(n, true)
	unpinned := p.TransferTime(n, false)
	ratio := unpinned.Seconds() / pinned.Seconds()
	// Paper: registered-memory transfers are "more than 4X faster".
	if ratio < 3.5 {
		t.Errorf("unpinned/pinned ratio = %.2f, want ~4x", ratio)
	}
	if p.TransferTime(0, true) != 0 {
		t.Error("zero-byte transfer should be free")
	}
}

func TestCostModelBasics(t *testing.T) {
	m := Default()
	// More parallelism should never be slower.
	t1 := m.CPUTime(1e9, m.CPUScanRate, 1)
	t24 := m.CPUTime(1e9, m.CPUScanRate, 24)
	if t24 >= t1 {
		t.Errorf("24-way scan (%v) should beat 1-way (%v)", t24, t1)
	}
	// GPU time includes launch overhead.
	if m.GPUTime(0, m.GPUHashInsertRate) < m.GPUKernelLaunch {
		t.Error("GPU time must include kernel launch")
	}
	// Device fill is bandwidth bound.
	fill := m.DeviceFill(288e9 / 10)
	if math.Abs(fill.Seconds()-0.1) > 1e-9 {
		t.Errorf("DeviceFill(28.8GB) = %v, want 100ms", fill)
	}
	if m.DeviceFill(0) != 0 {
		t.Error("DeviceFill(0) should be 0")
	}
}

func TestGPUWinsBigGroupBy(t *testing.T) {
	// Sanity calibration: a 100M-row group-by should be several times
	// faster on the device than on 24 host cores, even counting transfer.
	m := Default()
	const rows = 100e6
	cpu := m.CPUTime(rows, m.CPUGroupByRate, 24) + m.CPUTime(rows, m.CPUAggRate, 24)
	gpu := m.Transfer(int64(rows*12), true) + m.GPUTime(rows, m.GPUHashInsertRate) + m.GPUTime(rows, m.GPUAtomicRate)
	if gpu >= cpu {
		t.Errorf("GPU (%v) should beat CPU (%v) on 100M-row group-by", gpu, cpu)
	}
}

func TestCPUWinsSmallGroupBy(t *testing.T) {
	// ...and the CPU should win on a small one (transfer+launch dominate).
	m := Default()
	const rows = 20e3
	cpu := m.CPUTime(rows, m.CPUGroupByRate, 24) + m.CPUTime(rows, m.CPUAggRate, 24)
	gpu := m.Transfer(int64(rows*12), true) + m.GPUTime(rows, m.GPUHashInsertRate) + m.GPUTime(rows, m.GPUAtomicRate)
	if cpu >= gpu {
		t.Errorf("CPU (%v) should beat GPU (%v) on 20K-row group-by", cpu, gpu)
	}
}

func TestCPUTimeProperties(t *testing.T) {
	m := Default()
	f := func(work uint32, degree uint8) bool {
		d := int(degree%96) + 1
		dur := m.CPUTime(float64(work), m.CPUScanRate, d)
		return dur >= 0 && !math.IsNaN(dur.Seconds()) && !math.IsInf(dur.Seconds(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferMonotoneInBytes(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.Transfer(lo, true) <= m.Transfer(hi, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
