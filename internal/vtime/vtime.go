// Package vtime provides the virtual-time foundation for the hybrid
// CPU/GPU query engine.
//
// Every operator in the engine executes functionally on real data, but the
// elapsed time it reports is *modeled*: computed from the amount of work it
// measured (rows, bytes, hash collisions, lock acquisitions) and a set of
// device parameters describing the paper's testbed (IBM POWER8 S824 host,
// Nvidia Tesla K40 GPUs, PCIe gen3 interconnect). This lets a pure-Go,
// stdlib-only build reproduce the *shape* of the paper's results — which
// path wins where, and by roughly what factor — without CUDA hardware.
package vtime

import (
	"fmt"
	"math"
)

// Duration is a span of virtual time, in seconds. It is a distinct type
// from time.Duration so that modeled time can never be accidentally mixed
// with wall-clock time.
type Duration float64

// Common durations.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds returns the duration as a float64 number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

// Microseconds returns the duration as a float64 number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) * 1e6 }

// String formats the duration with a unit chosen by magnitude.
func (d Duration) String() string {
	abs := math.Abs(float64(d))
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", float64(d)*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.2fµs", float64(d)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", float64(d)*1e3)
	case abs < 60:
		return fmt.Sprintf("%.3fs", float64(d))
	case abs < 3600:
		return fmt.Sprintf("%.1fm", float64(d)/60)
	default:
		return fmt.Sprintf("%.2fh", float64(d)/3600)
	}
}

// Max returns the larger of a and b.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Time is an instant on a virtual clock, in seconds since the start of the
// simulation.
type Time float64

// Add advances the instant by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }
