package obsd

import (
	"testing"
	"time"
)

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in       string
		name     string
		fn       string
		win      time.Duration
		quantile float64
		hasQ     bool
		cmp      string
		val      float64
		matchers int
		err      bool
	}{
		{in: "blu_serve_queue_depth", name: "blu_serve_queue_depth"},
		{in: `blu_serve_queries_total{outcome="shed"}`, name: "blu_serve_queries_total", matchers: 1},
		{in: `blu_x{a="1",b="2"}`, name: "blu_x", matchers: 2},
		{in: "rate(blu_serve_queries_total[20s])", name: "blu_serve_queries_total", fn: "rate", win: 20 * time.Second},
		{in: `rate(blu_serve_queries_total{outcome="shed"}[1m]) > 5`, name: "blu_serve_queries_total", fn: "rate", win: time.Minute, matchers: 1, cmp: ">", val: 5},
		{in: "delta(blu_serve_queue_depth[30s])", name: "blu_serve_queue_depth", fn: "delta", win: 30 * time.Second},
		{in: "histogram_quantile(0.99, rate(blu_serve_wall_seconds_bucket[20s]))", name: "blu_serve_wall_seconds_bucket", fn: "rate", win: 20 * time.Second, hasQ: true, quantile: 0.99},
		{in: "histogram_quantile(0.5, blu_serve_wall_seconds_bucket)", name: "blu_serve_wall_seconds_bucket", hasQ: true, quantile: 0.5},
		{in: "blu_slo_burn_rate > 2", name: "blu_slo_burn_rate", cmp: ">", val: 2},
		{in: "blu_slo_burn_rate >= 2.5", name: "blu_slo_burn_rate", cmp: ">=", val: 2.5},
		{in: "blu_x != 0", name: "blu_x", cmp: "!=", val: 0},
		{in: "", err: true},
		{in: "bad name", err: true},
		{in: "rate(blu_x)", err: true},                  // missing range
		{in: "rate(blu_x[0s])", err: true},              // non-positive range
		{in: "histogram_quantile(2, blu_x)", err: true}, // φ out of range
		{in: `blu_x{a=1}`, err: true},                   // unquoted matcher
		{in: "blu_x{", err: true},                       // unclosed braces
		{in: "histogram_quantile(0.5, delta(blu_x[5s]))", err: true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if c.err {
			if err == nil {
				t.Errorf("%q: expected error, got %+v", c.in, e)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if e.Name != c.name || e.Fn != c.fn || e.Window != c.win ||
			e.HasQuant != c.hasQ || e.Quantile != c.quantile ||
			e.CmpOp != c.cmp || e.CmpVal != c.val || len(e.Matchers) != c.matchers {
			t.Errorf("%q: parsed %+v", c.in, e)
		}
	}
}

func TestParseRules(t *testing.T) {
	data := []byte(`# fleet-wide breaker page
alert: AllBreakersOpen
expr: blu_device_quarantined
kind: breaker
mode: all
for: 10s
severity: page
summary: every breaker open

alert: HighBurn
expr: blu_slo_burn_rate > 2
for: 30s
`)
	rules, err := ParseRules(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Name != "AllBreakersOpen" || r.Kind != "breaker" || r.Mode != "all" ||
		r.For != 10*time.Second || r.Severity != "page" || r.Summary != "every breaker open" {
		t.Fatalf("rule 0: %+v", r)
	}
	if rules[1].Name != "HighBurn" || rules[1].For != 30*time.Second {
		t.Fatalf("rule 1: %+v", rules[1])
	}

	for _, bad := range []string{
		"",
		"not a rule line",
		"alert: X\nexpr: blu_y\nfor: nope",
		"alert: X\nexpr: blu_y\nbogus: z",
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Errorf("ParseRules(%q) should fail", bad)
		}
	}

	// Semantic errors surface at SetRules.
	s := New(Options{Step: time.Second})
	if err := s.SetRules([]Rule{{Name: "X", Expr: "???"}}); err == nil {
		t.Error("bad expr must fail SetRules")
	}
	if err := s.SetRules([]Rule{{Name: "X", Expr: "blu_y", Kind: "bogus"}}); err == nil {
		t.Error("bad kind must fail SetRules")
	}
	if err := s.SetRules([]Rule{{Name: "X", Expr: "blu_y", Severity: "fatal"}}); err == nil {
		t.Error("bad severity must fail SetRules")
	}
	if err := s.SetRules([]Rule{{Expr: "blu_y"}}); err == nil {
		t.Error("missing name must fail SetRules")
	}
}
