package obsd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blugpu/internal/metrics"
)

// goldenEnv drives a deterministic scenario: queue depth ramps, the
// admitted counter climbs, the wall histogram fills, a threshold rule
// goes pending → firing → resolved — all on the pinned clock.
func goldenEnv(t *testing.T) *testEnv {
	t.Helper()
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: 2 * time.Minute})
	err := e.store.SetRules([]Rule{{
		Name:     "DeepQueue",
		Expr:     "blu_serve_queue_depth > 5",
		For:      10 * time.Second,
		Severity: metrics.SeverityPage,
		Summary:  "admission queue too deep",
	}})
	if err != nil {
		t.Fatal(err)
	}
	depths := []int{0, 2, 8, 9, 10, 10, 3, 1}
	var admitted uint64
	var cum uint64
	for _, d := range depths {
		admitted += 12
		cum += 10
		e.setAdmission(simpleAdmission(d, admitted, admitted/6, []uint64{cum / 2, cum - 2, cum - 1, cum}))
		e.advance()
	}
	return e
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func get(t *testing.T, mux *http.ServeMux, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func TestQueryRangeGolden(t *testing.T) {
	e := goldenEnv(t)
	mux := http.NewServeMux()
	e.store.Mount(mux)

	start := baseTime.Unix()
	end := e.clock().Unix()
	for name, query := range map[string]string{
		"query_range_depth.json":    "blu_serve_queue_depth",
		"query_range_rate.json":     "rate(blu_serve_queries_total%7Boutcome%3D%22admitted%22%7D[20s])",
		"query_range_quantile.json": "histogram_quantile(0.99,%20blu_serve_wall_seconds_bucket)",
	} {
		url := fmt.Sprintf("/api/v1/query_range?query=%s&start=%d&end=%d&step=5", query, start, end)
		rr, body := get(t, mux, url)
		if rr.Code != 200 {
			t.Fatalf("%s: HTTP %d: %s", name, rr.Code, body)
		}
		checkGolden(t, name, body)
	}

	// Byte-identical across a rebuilt identical scenario.
	e2 := goldenEnv(t)
	mux2 := http.NewServeMux()
	e2.store.Mount(mux2)
	url := fmt.Sprintf("/api/v1/query_range?query=blu_serve_queue_depth&start=%d&end=%d&step=5", start, end)
	_, b1 := get(t, mux, url)
	_, b2 := get(t, mux2, url)
	if !bytes.Equal(b1, b2) {
		t.Fatal("query_range not byte-identical across identical runs")
	}
}

func TestQueryRangeErrors(t *testing.T) {
	e := goldenEnv(t)
	mux := http.NewServeMux()
	e.store.Mount(mux)
	for _, url := range []string{
		"/api/v1/query_range",                                    // missing query
		"/api/v1/query_range?query=blu_x",                        // missing times
		"/api/v1/query_range?query=blu_x&start=10&end=5&step=1",  // end < start
		"/api/v1/query_range?query=blu_x&start=1&end=2&step=bad", // bad step
		"/api/v1/query_range?query=bad%20name&start=1&end=2&step=1",
		"/api/v1/query?query=bad%20name",
	} {
		rr, body := get(t, mux, url)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", url, rr.Code)
		}
		var env struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Status != "error" {
			t.Errorf("%s: bad error envelope %s", url, body)
		}
	}
}

func TestQueryInstantHTTP(t *testing.T) {
	e := goldenEnv(t)
	mux := http.NewServeMux()
	e.store.Mount(mux)
	rr, body := get(t, mux, fmt.Sprintf("/api/v1/query?query=blu_serve_queue_depth&time=%d", e.clock().Unix()))
	if rr.Code != 200 {
		t.Fatalf("HTTP %d: %s", rr.Code, body)
	}
	var env struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Value  []any             `json:"value"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "success" || env.Data.ResultType != "vector" || len(env.Data.Result) != 1 {
		t.Fatalf("instant query: %s", body)
	}
	if env.Data.Result[0].Metric["__name__"] != "blu_serve_queue_depth" {
		t.Fatalf("metric name: %v", env.Data.Result[0].Metric)
	}
	if env.Data.Result[0].Value[1] != "1" {
		t.Fatalf("last depth: %v", env.Data.Result[0].Value)
	}
}

func TestAlertsGolden(t *testing.T) {
	e := goldenEnv(t)
	mux := http.NewServeMux()
	e.store.Mount(mux)
	rr, body := get(t, mux, "/debug/alerts")
	if rr.Code != 200 {
		t.Fatalf("HTTP %d", rr.Code)
	}
	checkGolden(t, "alerts.json", body)

	// The scenario walked pending → firing → resolved.
	var snap metrics.AlertsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	var tos []string
	for _, tr := range snap.Transitions {
		tos = append(tos, tr.To)
	}
	want := []string{"pending", "firing", "resolved"}
	if len(tos) != len(want) {
		t.Fatalf("transitions %v, want %v", tos, want)
	}
	for i := range want {
		if tos[i] != want[i] {
			t.Fatalf("transitions %v, want %v", tos, want)
		}
	}
}

func TestDashGolden(t *testing.T) {
	e := goldenEnv(t)
	mux := http.NewServeMux()
	e.store.Mount(mux)
	rr, body := get(t, mux, "/debug/dash")
	if rr.Code != 200 {
		t.Fatalf("HTTP %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	checkGolden(t, "dash.html", body)

	// Byte-identical across identical runs.
	e2 := goldenEnv(t)
	mux2 := http.NewServeMux()
	e2.store.Mount(mux2)
	_, b2 := get(t, mux2, "/debug/dash")
	if !bytes.Equal(body, b2) {
		t.Fatal("dash not byte-identical across identical runs")
	}
}

// /healthz flips 200 → 503 while a page alert fires and recovers after
// it resolves (satellite: alert state unified with health).
func TestHealthzAlertTransition(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	err := e.store.SetRules([]Rule{{
		Name: "DeepQueue", Expr: "blu_serve_queue_depth > 5",
		For: 5 * time.Second, Severity: metrics.SeverityPage,
	}})
	if err != nil {
		t.Fatal(err)
	}
	admin := metrics.AdminMux(func() metrics.Sources {
		return metrics.Sources{Obs: e.store.ObsSnapshot}
	})
	status := func() int {
		rr, _ := get(t, admin, "/healthz")
		return rr.Code
	}

	e.setAdmission(simpleAdmission(0, 1, 0, nil))
	e.advance()
	if got := status(); got != 200 {
		t.Fatalf("healthy: HTTP %d, want 200", got)
	}
	e.setAdmission(simpleAdmission(10, 1, 0, nil))
	e.advance() // pending
	if got := status(); got != 200 {
		t.Fatalf("pending must not degrade health: HTTP %d", got)
	}
	e.advance() // firing after 5s hold
	rr, body := get(t, admin, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("firing page alert: HTTP %d, want 503", rr.Code)
	}
	var hb struct {
		Status string `json:"status"`
		Alerts *struct {
			PagesFiring int `json:"pages_firing"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != metrics.HealthUnhealthy || hb.Alerts == nil || hb.Alerts.PagesFiring != 1 {
		t.Fatalf("healthz body: %s", body)
	}
	e.setAdmission(simpleAdmission(0, 1, 0, nil))
	e.advance() // resolved
	if got := status(); got != 200 {
		t.Fatalf("resolved: HTTP %d, want 200", got)
	}
}
