package obsd

import (
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// dashPanel is one sparkline panel on /debug/dash.
type dashPanel struct {
	Title string
	Query string // expression template; %s receives the rate window
	Unit  string
}

// dashPanels are the headline series, in render order. Rate windows
// span 4 scrape steps, matching DefaultRules.
var dashPanels = []dashPanel{
	{Title: "p50 wall by class", Query: "histogram_quantile(0.50, rate(blu_serve_wall_seconds_bucket[%s]))", Unit: "s"},
	{Title: "p99 wall by class", Query: "histogram_quantile(0.99, rate(blu_serve_wall_seconds_bucket[%s]))", Unit: "s"},
	{Title: "queue depth", Query: "blu_serve_queue_depth", Unit: ""},
	{Title: "shed rate", Query: `rate(blu_serve_queries_total{outcome="shed"}[%s])`, Unit: "/s"},
	{Title: "device busy ratio", Query: "blu_device_busy_ratio", Unit: ""},
	{Title: "fusion H2D saved", Query: "rate(blu_transfer_saved_bytes_total[%s])", Unit: "B/s"},
	{Title: "SLO burn rate", Query: "blu_slo_burn_rate", Unit: "x"},
}

// sparkline geometry.
const (
	sparkW   = 240
	sparkH   = 48
	sparkPad = 4
)

// palette cycles per series within a panel; plain hex, no dependencies.
var palette = []string{"#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2"}

// handleDash renders the dependency-free HTML dashboard: one inline
// SVG sparkline per headline panel over the retention window, plus the
// alert table. Under an injected clock the page is byte-stable.
func (s *Store) handleDash(w http.ResponseWriter, req *http.Request) {
	now := s.clock()
	start := now.Add(-s.retention)
	window := (4 * s.step).String()

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>blu dash</title>\n")
	b.WriteString("<style>body{font:13px monospace;margin:16px;background:#fafafa;color:#111}")
	b.WriteString(".panel{display:inline-block;margin:6px;padding:8px;background:#fff;border:1px solid #ddd;vertical-align:top}")
	b.WriteString(".t{font-weight:bold;margin-bottom:4px}.leg{font-size:11px;color:#555}")
	b.WriteString("table{border-collapse:collapse;margin-top:12px}td,th{border:1px solid #ddd;padding:3px 8px;text-align:left}")
	b.WriteString(".firing{color:#dc2626;font-weight:bold}.pending{color:#ea580c}.inactive{color:#16a34a}</style></head><body>\n")
	fmt.Fprintf(&b, "<h3>blu dash</h3>\n<div class=\"leg\">as of %s · step %s · retention %s</div>\n",
		html.EscapeString(now.UTC().Format(time.RFC3339)), s.step, s.retention)

	for _, p := range dashPanels {
		expr := p.Query
		if strings.Contains(expr, "%s") {
			expr = fmt.Sprintf(expr, window)
		}
		series, err := s.QueryRange(expr, start, now, s.step)
		b.WriteString("<div class=\"panel\"><div class=\"t\">")
		b.WriteString(html.EscapeString(p.Title))
		b.WriteString("</div>\n")
		if err != nil {
			fmt.Fprintf(&b, "<div class=\"leg\">error: %s</div>", html.EscapeString(err.Error()))
		} else {
			writeSparkline(&b, series, p.Unit)
		}
		b.WriteString("</div>\n")
	}

	// Alert table.
	snap := s.engine.snapshot()
	b.WriteString("<table><tr><th>alert</th><th>severity</th><th>state</th><th>since</th><th>value</th><th>summary</th></tr>\n")
	if snap.Rules == 0 {
		b.WriteString("<tr><td colspan=\"6\">no rules loaded</td></tr>\n")
	}
	for _, st := range snap.States {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=%q>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(st.Name), html.EscapeString(st.Severity), st.State, st.State,
			html.EscapeString(st.Since), formatVal(st.Value), html.EscapeString(st.Summary))
	}
	b.WriteString("</table>\n")

	if len(snap.Transitions) > 0 {
		b.WriteString("<table><tr><th>at</th><th>alert</th><th>→</th><th>value</th></tr>\n")
		// Newest last in the ring; render newest first.
		for i := len(snap.Transitions) - 1; i >= 0; i-- {
			tr := snap.Transitions[i]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=%q>%s</td><td>%s</td></tr>\n",
				html.EscapeString(tr.At), html.EscapeString(tr.Alert), tr.To, tr.To, formatVal(tr.Value))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(b.String()))
}

// writeSparkline renders one panel's series as SVG polylines with a
// shared y-scale and a per-series legend line.
func writeSparkline(b *strings.Builder, series []RangeSeries, unit string) {
	if len(series) == 0 {
		b.WriteString("<div class=\"leg\">no data</div>")
		return
	}
	// Shared scale across the panel's series.
	var tMin, tMax, vMin, vMax float64
	first := true
	for _, rs := range series {
		for _, p := range rs.Points {
			if first {
				tMin, tMax, vMin, vMax = p.T, p.T, p.V, p.V
				first = false
				continue
			}
			if p.T < tMin {
				tMin = p.T
			}
			if p.T > tMax {
				tMax = p.T
			}
			if p.V < vMin {
				vMin = p.V
			}
			if p.V > vMax {
				vMax = p.V
			}
		}
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	sx := func(t float64) float64 {
		return sparkPad + (t-tMin)/(tMax-tMin)*(sparkW-2*sparkPad)
	}
	sy := func(v float64) float64 {
		return sparkH - sparkPad - (v-vMin)/(vMax-vMin)*(sparkH-2*sparkPad)
	}
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">", sparkW, sparkH, sparkW, sparkH)
	for i, rs := range series {
		color := palette[i%len(palette)]
		var pts strings.Builder
		for j, p := range rs.Points {
			if j > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.2f,%.2f", sx(p.T), sy(p.V))
		}
		fmt.Fprintf(b, "<polyline fill=\"none\" stroke=%q stroke-width=\"1.5\" points=%q/>", color, pts.String())
	}
	b.WriteString("</svg>\n")
	for i, rs := range series {
		color := palette[i%len(palette)]
		last := rs.Points[len(rs.Points)-1].V
		label := seriesLegend(rs)
		fmt.Fprintf(b, "<div class=\"leg\"><span style=\"color:%s\">—</span> %s: %s%s</div>\n",
			color, html.EscapeString(label), formatVal(last), html.EscapeString(unit))
	}
}

// seriesLegend compresses a series identity for the legend: label
// values only when present, else the metric name.
func seriesLegend(rs RangeSeries) string {
	if len(rs.Labels) == 0 {
		return rs.Name
	}
	vals := make([]string, len(rs.Labels))
	for i, l := range rs.Labels {
		vals[i] = l.Value
	}
	return strings.Join(vals, "/")
}
