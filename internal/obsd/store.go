// Package obsd is the embedded observability daemon: a bounded,
// deterministic time-series store plus alert engine that converts the
// process's point-in-time /metrics snapshots into in-process history.
//
// A self-scraper samples the metrics registry on an injectable clock
// into fixed-size ring series (one ring per exposition sample series;
// counters store raw monotonic values, with rate/delta/quantile
// evaluated at query time). A rule engine evaluates declarative alert
// rules over those series with `for:` hold-down and resolved
// transitions, emitting state into blu_alerts_* metrics, the qlog
// event stream, GET /debug/alerts, and GET /debug/dash. History is
// queryable through a Prometheus-compatible subset on
// GET /api/v1/query_range.
//
// Determinism contract: with an injected clock and identical source
// state, every surface — query_range JSON, /debug/alerts, the dash
// HTML, alert transitions, qlog events — is byte-identical across
// runs. Nothing in the store reads the real clock except the scrape
// overhead attribution (prof wall time, which is informational).
package obsd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"blugpu/internal/metrics"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
)

// Defaults for Options zero values.
const (
	DefaultStep      = 5 * time.Second
	DefaultRetention = 15 * time.Minute
	DefaultMaxSeries = 4096
)

// Options configures a Store.
type Options struct {
	// Step is the scrape interval; it also sets the instant-query
	// lookback window (2×Step) and ring granularity.
	Step time.Duration
	// Retention bounds how far back rings hold samples. Ring capacity
	// is Retention/Step points; older points are evicted in place.
	Retention time.Duration
	// Clock stamps samples and drives rule evaluation. Defaults to
	// time.Now; tests inject a fixed clock for byte-stable surfaces.
	Clock func() time.Time
	// Sources is called per scrape to snapshot the live registry. The
	// returned Sources may include this store's own Obs hook — the
	// scrape collects without holding store locks, so the blu_obsd_*
	// and blu_alerts_* families appear in history like any other.
	Sources func() metrics.Sources
	// Log, when set, receives one EventAlert record per rule-state
	// transition (pending, firing, resolved).
	Log *qlog.Logger
	// Prof, when set, bills scrape+evaluate wall time to the "obsd"
	// class, "scrape" phase — the store's own overhead, attributed.
	Prof *prof.Accountant
	// MaxSeries bounds distinct ring series; new series past the bound
	// are dropped (counted in blu_obsd_dropped_series_total).
	MaxSeries int
}

// point is one retained sample: unix-millisecond timestamp + value.
type point struct {
	t int64
	v float64
}

// ring is a fixed-capacity circular buffer of points, oldest evicted
// in place once full.
type ring struct {
	buf   []point
	start int
	n     int
}

func (r *ring) push(p point) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = p
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % len(r.buf)
}

// at returns the i-th oldest retained point.
func (r *ring) at(i int) point { return r.buf[(r.start+i)%len(r.buf)] }

// series is one ring plus its identity.
type series struct {
	name   string
	labels []metrics.Label // sorted, as flattened by metrics.Samples
	ring   ring
}

// Store is the embedded time-series store + alert engine.
type Store struct {
	step      time.Duration
	retention time.Duration
	clock     func() time.Time
	sources   func() metrics.Sources
	log       *qlog.Logger
	prof      *prof.Accountant
	maxSeries int
	cap       int

	mu      sync.RWMutex
	series  map[string]*series
	keys    []string // sorted series keys, maintained on insert
	scrapes uint64
	samples uint64
	dropped uint64
	wallSec float64
	last    time.Time

	engine *engine // rule engine; owns its own lock

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// New builds a Store. Sources is required.
func New(opts Options) *Store {
	if opts.Step <= 0 {
		opts.Step = DefaultStep
	}
	if opts.Retention <= 0 {
		opts.Retention = DefaultRetention
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = DefaultMaxSeries
	}
	capacity := int(opts.Retention / opts.Step)
	if capacity < 2 {
		capacity = 2
	}
	return &Store{
		step:      opts.Step,
		retention: opts.Retention,
		clock:     opts.Clock,
		sources:   opts.Sources,
		log:       opts.Log,
		prof:      opts.Prof,
		maxSeries: opts.MaxSeries,
		cap:       capacity,
		series:    make(map[string]*series),
		engine:    newEngine(opts.Log),
		stopCh:    make(chan struct{}),
	}
}

// Step returns the configured scrape interval.
func (s *Store) Step() time.Duration { return s.step }

// SetRules loads (replacing) the alert rules. Rule expressions are
// parsed eagerly so a bad rules file fails at load, not at runtime.
func (s *Store) SetRules(rules []Rule) error {
	return s.engine.setRules(rules)
}

// seriesKey renders the canonical series identity — the exposition
// sample line's left-hand side.
func seriesKey(name string, labels []metrics.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Scrape takes one sample+evaluate cycle at the injected clock's
// current time: collect the sources into a fresh registry, flatten it
// into sample points, append each to its ring, then evaluate the alert
// rules against the new history. Collection runs without store locks,
// so a Sources.Obs hook pointing back at this store is safe.
func (s *Store) Scrape() {
	wallStart := time.Now()
	now := s.clock()
	tMs := now.UnixMilli()

	var samples []metrics.Sample
	if s.sources != nil {
		samples = metrics.Collect(s.sources()).Samples()
	}

	s.mu.Lock()
	for _, sm := range samples {
		key := seriesKey(sm.Name, sm.Labels)
		sr, ok := s.series[key]
		if !ok {
			if len(s.series) >= s.maxSeries {
				s.dropped++
				continue
			}
			sr = &series{name: sm.Name, labels: sm.Labels, ring: ring{buf: make([]point, s.cap)}}
			s.series[key] = sr
			i := sort.SearchStrings(s.keys, key)
			s.keys = append(s.keys, "")
			copy(s.keys[i+1:], s.keys[i:])
			s.keys[i] = key
		}
		sr.ring.push(point{t: tMs, v: sm.Value})
		s.samples++
	}
	s.scrapes++
	s.last = now
	s.mu.Unlock()

	s.engine.evaluate(s, now)

	wall := time.Since(wallStart)
	s.mu.Lock()
	s.wallSec += wall.Seconds()
	s.mu.Unlock()
	if s.prof != nil {
		s.prof.AddWall("obsd", "scrape", wall)
	}
}

// Start launches the background scraper at the configured step.
// Deployments call this once; tests drive Scrape directly instead.
func (s *Store) Start() {
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.step)
		defer tick.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-tick.C:
				s.Scrape()
			}
		}
	}()
}

// Stop halts the background scraper and waits for it to exit.
func (s *Store) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	if s.done != nil {
		<-s.done
	}
}

// SeriesCount returns the number of live ring series.
func (s *Store) SeriesCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// PagesFiring reports how many severity-page rules are currently
// firing — the serving layer's admission shedder hook.
func (s *Store) PagesFiring() int {
	return s.engine.pagesFiring()
}

// ObsSnapshot snapshots the store + alert engine for metrics.Collect
// (the Sources.Obs hook) and /healthz.
func (s *Store) ObsSnapshot() *metrics.ObsSnapshot {
	s.mu.RLock()
	o := &metrics.ObsSnapshot{
		Scrapes:           s.scrapes,
		Samples:           s.samples,
		Series:            len(s.series),
		DroppedSeries:     s.dropped,
		ScrapeWallSeconds: s.wallSec,
		StepSeconds:       s.step.Seconds(),
		RetentionSeconds:  s.retention.Seconds(),
	}
	if !s.last.IsZero() {
		o.LastScrape = s.last.UTC().Format(time.RFC3339Nano)
	}
	s.mu.RUnlock()
	o.Alerts = s.engine.snapshot()
	return o
}

// labelsToMap converts a sorted label slice (plus the series name under
// __name__) into the Prometheus result "metric" object.
func labelsToMap(name string, labels []metrics.Label) map[string]string {
	m := make(map[string]string, len(labels)+1)
	m["__name__"] = name
	for _, l := range labels {
		m[l.Name] = l.Value
	}
	return m
}

// formatVal renders a sample value like the text exposition: integers
// plain, everything else shortest-roundtrip 'g'.
func formatVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
