package obsd

import (
	"bytes"
	"flag"
	"sync"
	"testing"
	"time"

	"blugpu/internal/metrics"
	"blugpu/internal/monitor"
	"blugpu/internal/qlog"
	"blugpu/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// baseTime pins every test clock for byte-stable surfaces.
var baseTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// testEnv is a store over a mutable fake admission snapshot, driven by
// a hand-advanced clock.
type testEnv struct {
	store *Store

	mu    sync.Mutex
	now   time.Time
	adm   *metrics.AdmissionSnapshot
	qbuf  bytes.Buffer
	qlock sync.Mutex
}

func (e *testEnv) clock() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

func (e *testEnv) setAdmission(a *metrics.AdmissionSnapshot) {
	e.mu.Lock()
	e.adm = a
	e.mu.Unlock()
}

// advance moves the clock one step and scrapes.
func (e *testEnv) advance() {
	e.mu.Lock()
	e.now = e.now.Add(e.store.step)
	e.mu.Unlock()
	e.store.Scrape()
}

type lockedWriter struct{ e *testEnv }

func (w lockedWriter) Write(p []byte) (int, error) {
	w.e.qlock.Lock()
	defer w.e.qlock.Unlock()
	return w.e.qbuf.Write(p)
}

func (e *testEnv) qlogBytes() []byte {
	e.qlock.Lock()
	defer e.qlock.Unlock()
	return append([]byte(nil), e.qbuf.Bytes()...)
}

func newTestEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	e := &testEnv{now: baseTime}
	opts.Clock = e.clock
	if opts.Log == nil {
		opts.Log = qlog.New(lockedWriter{e}, qlog.WithClock(e.clock))
	}
	opts.Sources = func() metrics.Sources {
		e.mu.Lock()
		a := e.adm
		e.mu.Unlock()
		src := metrics.Sources{Obs: e.store.ObsSnapshot}
		if a != nil {
			src.Admission = func() *metrics.AdmissionSnapshot { return a }
		}
		return src
	}
	e.store = New(opts)
	return e
}

// simpleAdmission fabricates a snapshot with a queue depth and one
// class with a wall-latency histogram.
func simpleAdmission(depth int, admitted, shed uint64, wallCum []uint64) *metrics.AdmissionSnapshot {
	bounds := []vtime.Duration{10 * vtime.Millisecond, 50 * vtime.Millisecond, 200 * vtime.Millisecond, vtime.Second}
	var buckets []monitor.HistBucket
	var count uint64
	for i, b := range bounds {
		var c uint64
		if i < len(wallCum) {
			c = wallCum[i]
		} else if len(wallCum) > 0 {
			c = wallCum[len(wallCum)-1]
		}
		buckets = append(buckets, monitor.HistBucket{UpperBound: b, CumCount: c})
		count = c
	}
	return &metrics.AdmissionSnapshot{
		QueueDepth: depth,
		Submitted:  admitted + shed,
		Admitted:   admitted,
		Shed:       shed,
		Classes: []metrics.ClassAdmissionSnapshot{{
			Class:        "simple",
			WallBuckets:  buckets,
			WallSum:      float64(count) * 0.02,
			WallCount:    count,
			SLOThreshold: 0.05,
			SLOObjective: 0.99,
		}},
	}
}

func TestScrapeAndInstantQuery(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	e.setAdmission(simpleAdmission(7, 10, 0, []uint64{5, 8, 9, 10}))
	e.advance()
	e.advance()

	got, err := e.store.QueryInstant("blu_serve_queue_depth", e.clock())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Points[0].V != 7 {
		t.Fatalf("queue depth query: %+v", got)
	}
	// Self-scrape: the store's own families appear in history too.
	obs, err := e.store.QueryInstant("blu_obsd_scrapes_total", e.clock())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("blu_obsd_scrapes_total not in history: %+v", obs)
	}
}

func TestRateOverWindow(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: 5 * time.Minute})
	// Counter rises 10 per 5s scrape → rate 2/s.
	var admitted uint64
	for i := 0; i < 6; i++ {
		admitted += 10
		e.setAdmission(simpleAdmission(0, admitted, 0, nil))
		e.advance()
	}
	got, err := e.store.QueryInstant(`rate(blu_serve_queries_total{outcome="admitted"}[20s])`, e.clock())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rate query returned %d series", len(got))
	}
	// Window 20s covers 4 points → 3 deltas of 10 → 30/20 = 1.5.
	if v := got[0].Points[0].V; v != 1.5 {
		t.Fatalf("rate = %v, want 1.5", v)
	}
}

func TestRateCounterReset(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: 5 * time.Minute})
	for _, admitted := range []uint64{100, 110, 5, 15} {
		e.setAdmission(simpleAdmission(0, admitted, 0, nil))
		e.advance()
	}
	got, err := e.store.QueryInstant(`rate(blu_serve_queries_total{outcome="admitted"}[20s])`, e.clock())
	if err != nil {
		t.Fatal(err)
	}
	// Deltas: +10, reset→+5, +10 = 25 over 20s.
	if v := got[0].Points[0].V; v != 1.25 {
		t.Fatalf("rate with reset = %v, want 1.25", v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	// 100 observations: 50 ≤10ms, 90 ≤50ms, 99 ≤200ms, 100 ≤1s.
	e.setAdmission(simpleAdmission(0, 100, 0, []uint64{50, 90, 99, 100}))
	e.advance()

	got, err := e.store.QueryInstant("histogram_quantile(0.50, blu_serve_wall_seconds_bucket)", e.clock())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("quantile returned %d series: %+v", len(got), got)
	}
	// rank = 50, first bucket cum 50 → interpolate within [0, 0.01]:
	// 0 + 0.01*(50-0)/(50-0) = 0.01.
	if v := got[0].Points[0].V; v != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", v)
	}
	got99, err := e.store.QueryInstant("histogram_quantile(0.99, blu_serve_wall_seconds_bucket)", e.clock())
	if err != nil {
		t.Fatal(err)
	}
	// rank = 99 → exactly the 0.2 bound.
	if v := got99[0].Points[0].V; v != 0.2 {
		t.Fatalf("p99 = %v, want 0.2", v)
	}
	// The le label must be gone; class must remain.
	if lm := labelsToMap(got[0].Name, got[0].Labels); lm["le"] != "" || lm["class"] != "simple" {
		t.Fatalf("quantile labels wrong: %v", lm)
	}
}

func TestRingEvictionAtRetention(t *testing.T) {
	// Retention 20s at 5s step → capacity 4 points.
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: 20 * time.Second})
	for i := 0; i < 10; i++ {
		e.setAdmission(simpleAdmission(i, uint64(i), 0, nil))
		e.advance()
	}
	s := e.store
	s.mu.RLock()
	sr := s.series["blu_serve_queue_depth"]
	n := sr.ring.n
	oldest := sr.ring.at(0)
	newest := sr.ring.at(n - 1)
	s.mu.RUnlock()
	if n != 4 {
		t.Fatalf("ring holds %d points, want capacity 4", n)
	}
	if newest.v != 9 || oldest.v != 6 {
		t.Fatalf("ring window wrong: oldest %v newest %v", oldest.v, newest.v)
	}
	// A query at an evicted timestamp finds nothing (instant lookback
	// only reaches 2 steps back from the query time).
	early := baseTime.Add(5 * time.Second)
	got, err := e.store.QueryInstant("blu_serve_queue_depth", early)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("evicted point still visible: %+v", got)
	}
}

func TestMaxSeriesBound(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute, MaxSeries: 3})
	e.setAdmission(simpleAdmission(1, 1, 0, []uint64{1, 1, 1, 1}))
	e.advance()
	snap := e.store.ObsSnapshot()
	if snap.Series != 3 {
		t.Fatalf("series = %d, want bound 3", snap.Series)
	}
	if snap.DroppedSeries == 0 {
		t.Fatalf("expected dropped series past the bound")
	}
}

func TestRuleHoldDownAndFlapSuppression(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: 5 * time.Minute})
	err := e.store.SetRules([]Rule{{
		Name:     "DeepQueue",
		Expr:     "blu_serve_queue_depth > 5",
		For:      10 * time.Second, // 2 steps
		Severity: metrics.SeverityPage,
		Summary:  "queue too deep",
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Condition true once, then false: pending, then silently inactive.
	e.setAdmission(simpleAdmission(10, 0, 0, nil))
	e.advance()
	if st := e.store.ObsSnapshot().Alerts.States[0]; st.State != metrics.AlertPending {
		t.Fatalf("after 1 true eval: %q, want pending", st.State)
	}
	e.setAdmission(simpleAdmission(0, 0, 0, nil))
	e.advance()
	snap := e.store.ObsSnapshot().Alerts
	if st := snap.States[0]; st.State != metrics.AlertInactive {
		t.Fatalf("flap: %q, want inactive", st.State)
	}
	// Flap must be suppressed: only the pending transition recorded.
	if len(snap.Transitions) != 1 || snap.Transitions[0].To != "pending" {
		t.Fatalf("flap transitions: %+v", snap.Transitions)
	}
	if e.store.PagesFiring() != 0 {
		t.Fatalf("flap must not fire")
	}

	// Held condition: pending at t1, firing once for: elapses.
	e.setAdmission(simpleAdmission(10, 0, 0, nil))
	e.advance() // pending
	e.advance() // held 5s < 10s... still pending
	if st := e.store.ObsSnapshot().Alerts.States[0]; st.State != metrics.AlertPending {
		t.Fatalf("one step into hold-down: %q, want pending", st.State)
	}
	e.advance() // held 10s → firing
	snap = e.store.ObsSnapshot().Alerts
	if st := snap.States[0]; st.State != metrics.AlertFiring {
		t.Fatalf("after hold-down: %q, want firing", st.State)
	}
	if snap.PagesFiring != 1 || e.store.PagesFiring() != 1 {
		t.Fatalf("pages firing = %d/%d, want 1", snap.PagesFiring, e.store.PagesFiring())
	}

	// Recovery: resolved transition.
	e.setAdmission(simpleAdmission(0, 0, 0, nil))
	e.advance()
	snap = e.store.ObsSnapshot().Alerts
	if st := snap.States[0]; st.State != metrics.AlertInactive {
		t.Fatalf("after recovery: %q, want inactive", st.State)
	}
	last := snap.Transitions[len(snap.Transitions)-1]
	if last.To != "resolved" {
		t.Fatalf("last transition %q, want resolved", last.To)
	}

	// The full lifecycle is in the qlog stream as alert events.
	recs, err := qlog.Decode(e.qlogBytes())
	if err != nil {
		t.Fatalf("qlog decode: %v", err)
	}
	var states []string
	for _, r := range recs {
		if r.Event == qlog.EventAlert {
			states = append(states, r.AlertState)
		}
	}
	want := []string{"pending", "pending", "firing", "resolved"}
	if len(states) != len(want) {
		t.Fatalf("qlog alert events %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("qlog alert events %v, want %v", states, want)
		}
	}
}

func TestBreakerRuleModes(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	mk := func(a, b int) *metrics.AdmissionSnapshot {
		return &metrics.AdmissionSnapshot{Classes: []metrics.ClassAdmissionSnapshot{
			{Class: "alpha", Active: a},
			{Class: "beta", Active: b},
		}}
	}
	err := e.store.SetRules([]Rule{
		{Name: "Any", Expr: "blu_serve_class_active", Kind: KindBreaker, Mode: "any", Severity: metrics.SeverityWarn},
		{Name: "All", Expr: "blu_serve_class_active", Kind: KindBreaker, Mode: "all", Severity: metrics.SeverityPage},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.setAdmission(mk(1, 0))
	e.advance()
	snap := e.store.ObsSnapshot().Alerts
	if snap.States[0].State != metrics.AlertFiring || snap.States[1].State != metrics.AlertInactive {
		t.Fatalf("any/all with one nonzero: %+v", snap.States)
	}
	e.setAdmission(mk(1, 2))
	e.advance()
	snap = e.store.ObsSnapshot().Alerts
	if snap.States[1].State != metrics.AlertFiring {
		t.Fatalf("all with both nonzero: %+v", snap.States[1])
	}
	if snap.States[1].Value != 2 {
		t.Fatalf("breaker value = %v, want 2 (nonzero count)", snap.States[1].Value)
	}
}

func TestAbsentRule(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	err := e.store.SetRules([]Rule{{
		Name: "AdmissionAbsent", Expr: "blu_serve_queue_depth",
		Kind: KindAbsent, Severity: metrics.SeverityInfo,
	}})
	if err != nil {
		t.Fatal(err)
	}
	e.advance() // no admission source → absent fires (no for:)
	if st := e.store.ObsSnapshot().Alerts.States[0]; st.State != metrics.AlertFiring {
		t.Fatalf("absent: %q, want firing", st.State)
	}
	e.setAdmission(simpleAdmission(1, 1, 0, nil))
	e.advance()
	if st := e.store.ObsSnapshot().Alerts.States[0]; st.State != metrics.AlertInactive {
		t.Fatalf("absent after data: %q, want inactive", st.State)
	}
}

func TestDefaultRulesLoad(t *testing.T) {
	e := newTestEnv(t, Options{Step: 5 * time.Second, Retention: time.Minute})
	if err := e.store.SetRules(DefaultRules(5 * time.Second)); err != nil {
		t.Fatalf("default rules must parse: %v", err)
	}
	snap := e.store.ObsSnapshot().Alerts
	if snap.Rules != 5 {
		t.Fatalf("default rules = %d, want 5", snap.Rules)
	}
}

// Scraper vs rule engine vs query surfaces under -race.
func TestConcurrentScrapeAndQuery(t *testing.T) {
	e := newTestEnv(t, Options{Step: time.Millisecond, Retention: 100 * time.Millisecond})
	if err := e.store.SetRules(DefaultRules(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	e.setAdmission(simpleAdmission(3, 50, 2, []uint64{10, 20, 30, 40}))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.advance()
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.store.QueryRange("blu_serve_queue_depth", baseTime, e.clock(), e.store.Step())
			e.store.QueryInstant(`rate(blu_serve_queries_total{outcome="admitted"}[20ms])`, e.clock())
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.store.ObsSnapshot()
			e.store.PagesFiring()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.store.SeriesCount()
		}
	}()
	wg.Wait()
	if e.store.ObsSnapshot().Scrapes != 200 {
		t.Fatalf("scrapes = %d, want 200", e.store.ObsSnapshot().Scrapes)
	}
}

func TestStartStop(t *testing.T) {
	e := newTestEnv(t, Options{Step: time.Millisecond, Retention: 50 * time.Millisecond})
	e.setAdmission(simpleAdmission(1, 1, 0, nil))
	e.store.Start()
	time.Sleep(20 * time.Millisecond)
	e.store.Stop()
	if e.store.ObsSnapshot().Scrapes == 0 {
		t.Fatal("background scraper took no scrapes")
	}
}
