package obsd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Mount registers the store's HTTP surface:
//
//	/api/v1/query_range   Prometheus-compatible range query
//	/api/v1/query         Prometheus-compatible instant query
//	/debug/alerts         rule-engine state + recent transitions (JSON)
//	/debug/dash           dependency-free HTML dashboard (inline SVG)
func (s *Store) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/api/v1/query_range", s.handleQueryRange)
	mux.HandleFunc("/api/v1/query", s.handleQuery)
	mux.HandleFunc("/debug/alerts", s.handleAlerts)
	mux.HandleFunc("/debug/dash", s.handleDash)
}

// apiError writes the Prometheus API error envelope.
func apiError(w http.ResponseWriter, status int, errType, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{
		"status":    "error",
		"errorType": errType,
		"error":     msg,
	})
}

// parseTime accepts unix seconds (float) or RFC3339.
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, fmt.Errorf("missing time parameter")
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		sec := int64(f)
		return time.Unix(sec, int64((f-float64(sec))*1e9)).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad time %q", s)
	}
	return t.UTC(), nil
}

// parseStep accepts a duration string or bare seconds.
func parseStep(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("missing step parameter")
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(f * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}

// promPair marshals one [ts, "value"] pair with millisecond timestamp
// precision and exposition-style value formatting — byte-stable.
type promPair RangePoint

func (p promPair) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`[%s,%q]`, strconv.FormatFloat(p.T, 'f', 3, 64), formatVal(p.V))), nil
}

// promSeries is one matrix/vector entry in the Prometheus API shape.
// encoding/json sorts map keys, so the metric object is deterministic.
type promSeries struct {
	Metric map[string]string `json:"metric"`
	Values []promPair        `json:"values,omitempty"`
	Value  *promPair         `json:"value,omitempty"`
}

func writeMatrix(w http.ResponseWriter, series []RangeSeries) {
	result := make([]promSeries, 0, len(series))
	for _, rs := range series {
		ps := promSeries{Metric: labelsToMap(rs.Name, rs.Labels)}
		for _, p := range rs.Points {
			ps.Values = append(ps.Values, promPair(p))
		}
		result = append(result, ps)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data": map[string]any{
			"resultType": "matrix",
			"result":     result,
		},
	})
}

func (s *Store) handleQueryRange(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	expr := q.Get("query")
	if expr == "" {
		apiError(w, http.StatusBadRequest, "bad_data", "missing query parameter")
		return
	}
	start, err := parseTime(q.Get("start"))
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_data", "start: "+err.Error())
		return
	}
	end, err := parseTime(q.Get("end"))
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_data", "end: "+err.Error())
		return
	}
	step, err := parseStep(q.Get("step"))
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_data", "step: "+err.Error())
		return
	}
	series, err := s.QueryRange(expr, start, end, step)
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_data", err.Error())
		return
	}
	writeMatrix(w, series)
}

func (s *Store) handleQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	expr := q.Get("query")
	if expr == "" {
		apiError(w, http.StatusBadRequest, "bad_data", "missing query parameter")
		return
	}
	ts := q.Get("time")
	var t time.Time
	if ts == "" {
		t = s.clock()
	} else {
		var err error
		t, err = parseTime(ts)
		if err != nil {
			apiError(w, http.StatusBadRequest, "bad_data", "time: "+err.Error())
			return
		}
	}
	series, err := s.QueryInstant(expr, t)
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_data", err.Error())
		return
	}
	result := make([]promSeries, 0, len(series))
	for _, rs := range series {
		p := promPair(rs.Points[0])
		result = append(result, promSeries{Metric: labelsToMap(rs.Name, rs.Labels), Value: &p})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data": map[string]any{
			"resultType": "vector",
			"result":     result,
		},
	})
}

func (s *Store) handleAlerts(w http.ResponseWriter, req *http.Request) {
	snap := s.engine.snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
