package obsd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"blugpu/internal/metrics"
)

// The query language is the Prometheus subset the dash and rules need:
//
//	name
//	name{label="value",...}                 instant vector (equality matchers)
//	rate(sel[dur])                          per-second positive-delta rate
//	delta(sel[dur])                         last - first over the window
//	histogram_quantile(φ, sel | rate(...))  bucket interpolation, grouped
//	                                        by labels minus le
//	<any of the above> OP number            filter (> >= < <= == !=)
//
// Instant selectors look back 2×Step for the newest point. Rates
// divide the summed positive deltas by the literal window, so a
// counter that moved X over rate(c[10s]) reads X/10 — deterministic
// and independent of sample phase.

// Expr is one parsed query expression.
type Expr struct {
	Quantile float64 // histogram_quantile φ
	HasQuant bool
	Fn       string // "", "rate", "delta"
	Window   time.Duration
	Name     string
	Matchers []metrics.Label // equality only
	CmpOp    string          // "", ">", ">=", "<", "<=", "==", "!="
	CmpVal   float64
	src      string
}

// String returns the original expression text.
func (e *Expr) String() string { return e.src }

// ParseExpr parses the query subset above.
func ParseExpr(input string) (*Expr, error) {
	e := &Expr{src: input}
	s := strings.TrimSpace(input)
	if s == "" {
		return nil, fmt.Errorf("obsd: empty query")
	}

	// Trailing comparison: "expr OP number".
	if op, rest, num, ok := splitComparison(s); ok {
		e.CmpOp, e.CmpVal = op, num
		s = rest
	}

	if strings.HasPrefix(s, "histogram_quantile(") {
		inner := strings.TrimPrefix(s, "histogram_quantile(")
		if !strings.HasSuffix(inner, ")") {
			return nil, fmt.Errorf("obsd: unclosed histogram_quantile in %q", input)
		}
		inner = inner[:len(inner)-1]
		comma := strings.Index(inner, ",")
		if comma < 0 {
			return nil, fmt.Errorf("obsd: histogram_quantile needs (φ, expr) in %q", input)
		}
		phi, err := strconv.ParseFloat(strings.TrimSpace(inner[:comma]), 64)
		if err != nil || phi < 0 || phi > 1 {
			return nil, fmt.Errorf("obsd: bad quantile %q in %q", inner[:comma], input)
		}
		e.Quantile, e.HasQuant = phi, true
		s = strings.TrimSpace(inner[comma+1:])
	}

	for _, fn := range []string{"rate", "delta"} {
		if strings.HasPrefix(s, fn+"(") {
			inner := strings.TrimPrefix(s, fn+"(")
			if !strings.HasSuffix(inner, ")") {
				return nil, fmt.Errorf("obsd: unclosed %s in %q", fn, input)
			}
			inner = inner[:len(inner)-1]
			lb := strings.LastIndex(inner, "[")
			if lb < 0 || !strings.HasSuffix(inner, "]") {
				return nil, fmt.Errorf("obsd: %s needs a range selector sel[dur] in %q", fn, input)
			}
			d, err := time.ParseDuration(inner[lb+1 : len(inner)-1])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("obsd: bad range %q in %q", inner[lb+1:len(inner)-1], input)
			}
			e.Fn, e.Window = fn, d
			s = strings.TrimSpace(inner[:lb])
			break
		}
	}

	name, matchers, err := parseSelector(s)
	if err != nil {
		return nil, fmt.Errorf("obsd: %w in %q", err, input)
	}
	e.Name, e.Matchers = name, matchers
	if e.HasQuant && e.Fn == "delta" {
		return nil, fmt.Errorf("obsd: histogram_quantile over delta is not supported in %q", input)
	}
	return e, nil
}

// splitComparison peels a trailing top-level "OP number" off s.
func splitComparison(s string) (op, rest string, num float64, ok bool) {
	depth := 0
	for i := len(s) - 1; i >= 0; i-- {
		switch s[i] {
		case ')', '}', ']':
			depth++
		case '(', '{', '[':
			depth--
		case '>', '<', '=', '!':
			if depth != 0 {
				continue
			}
			start := i
			if i > 0 && (s[i-1] == '>' || s[i-1] == '<' || s[i-1] == '=' || s[i-1] == '!') {
				start = i - 1
			}
			candidate := strings.TrimSpace(s[start:])
			for _, o := range []string{">=", "<=", "==", "!=", ">", "<"} {
				if strings.HasPrefix(candidate, o) {
					n, err := strconv.ParseFloat(strings.TrimSpace(candidate[len(o):]), 64)
					if err != nil {
						return "", "", 0, false
					}
					return o, strings.TrimSpace(s[:start]), n, true
				}
			}
			return "", "", 0, false
		}
	}
	return "", "", 0, false
}

// parseSelector parses name{k="v",...}.
func parseSelector(s string) (string, []metrics.Label, error) {
	s = strings.TrimSpace(s)
	brace := strings.Index(s, "{")
	name := s
	var matchers []metrics.Label
	if brace >= 0 {
		if !strings.HasSuffix(s, "}") {
			return "", nil, fmt.Errorf("unclosed selector braces")
		}
		name = s[:brace]
		body := s[brace+1 : len(s)-1]
		for _, part := range splitMatchers(body) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			eq := strings.Index(part, "=")
			if eq < 0 {
				return "", nil, fmt.Errorf("bad matcher %q", part)
			}
			key := strings.TrimSpace(part[:eq])
			val := strings.TrimSpace(part[eq+1:])
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return "", nil, fmt.Errorf("matcher value must be quoted in %q", part)
			}
			matchers = append(matchers, metrics.L(key, val[1:len(val)-1]))
		}
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("empty metric name")
	}
	for _, c := range name {
		if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			return "", nil, fmt.Errorf("bad metric name %q", name)
		}
	}
	sort.Slice(matchers, func(i, j int) bool { return matchers[i].Name < matchers[j].Name })
	return name, matchers, nil
}

// splitMatchers splits on commas outside quotes.
func splitMatchers(s string) []string {
	var out []string
	inQ := false
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, s[last:i])
				last = i + 1
			}
		}
	}
	return append(out, s[last:])
}

// samplePoint is one instant-vector element.
type samplePoint struct {
	key    string
	name   string
	labels []metrics.Label
	v      float64
}

// matches reports whether a series satisfies the selector.
func (e *Expr) matches(sr *series, matchName string) bool {
	if sr.name != matchName {
		return false
	}
	for _, m := range e.Matchers {
		found := false
		for _, l := range sr.labels {
			if l.Name == m.Name {
				found = l.Value == m.Value
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// evalInstant evaluates e at tMs, holding s.mu.RLock for the scan.
func (s *Store) evalInstant(e *Expr, tMs int64) []samplePoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	matchName := e.Name
	if e.HasQuant {
		// histogram_quantile consumes the flattened bucket series.
		if !strings.HasSuffix(matchName, "_bucket") {
			matchName += "_bucket"
		}
	}

	var out []samplePoint
	for _, key := range s.keys {
		sr := s.series[key]
		if !e.matches(sr, matchName) {
			continue
		}
		var v float64
		var ok bool
		switch e.Fn {
		case "rate":
			v, ok = rateOver(&sr.ring, tMs, e.Window)
		case "delta":
			v, ok = deltaOver(&sr.ring, tMs, e.Window)
		default:
			v, ok = instantAt(&sr.ring, tMs, 2*s.step)
		}
		if !ok {
			continue
		}
		out = append(out, samplePoint{key: key, name: sr.name, labels: sr.labels, v: v})
	}

	if e.HasQuant {
		out = histogramQuantile(e.Quantile, matchName, out)
	}
	if e.CmpOp != "" {
		kept := out[:0]
		for _, p := range out {
			if compare(p.v, e.CmpOp, e.CmpVal) {
				kept = append(kept, p)
			}
		}
		out = kept
	}
	return out
}

func compare(v float64, op string, ref float64) bool {
	switch op {
	case ">":
		return v > ref
	case ">=":
		return v >= ref
	case "<":
		return v < ref
	case "<=":
		return v <= ref
	case "==":
		return v == ref
	case "!=":
		return v != ref
	}
	return false
}

// instantAt returns the newest point at or before tMs within lookback.
func instantAt(r *ring, tMs int64, lookback time.Duration) (float64, bool) {
	lb := tMs - lookback.Milliseconds()
	for i := r.n - 1; i >= 0; i-- {
		p := r.at(i)
		if p.t > tMs {
			continue
		}
		if p.t <= lb {
			return 0, false
		}
		return p.v, true
	}
	return 0, false
}

// rateOver sums positive deltas of points in (tMs-window, tMs] and
// divides by the window — counter resets contribute the post-reset
// value, like Prometheus.
func rateOver(r *ring, tMs int64, window time.Duration) (float64, bool) {
	lo := tMs - window.Milliseconds()
	var prev point
	havePrev := false
	sum := 0.0
	count := 0
	for i := 0; i < r.n; i++ {
		p := r.at(i)
		if p.t <= lo || p.t > tMs {
			continue
		}
		if havePrev {
			if p.v >= prev.v {
				sum += p.v - prev.v
			} else {
				sum += p.v // counter reset
			}
		}
		prev, havePrev = p, true
		count++
	}
	if count < 2 {
		return 0, false
	}
	return sum / window.Seconds(), true
}

// deltaOver returns last-first over the window (gauges).
func deltaOver(r *ring, tMs int64, window time.Duration) (float64, bool) {
	lo := tMs - window.Milliseconds()
	var first, last point
	count := 0
	for i := 0; i < r.n; i++ {
		p := r.at(i)
		if p.t <= lo || p.t > tMs {
			continue
		}
		if count == 0 {
			first = p
		}
		last = p
		count++
	}
	if count < 2 {
		return 0, false
	}
	return last.v - first.v, true
}

// histogramQuantile groups flattened bucket samples by labels minus le
// and interpolates the φ-quantile inside the target bucket, Prometheus
// style. Input samples are cumulative bucket counts (or their rates).
func histogramQuantile(phi float64, bucketName string, in []samplePoint) []samplePoint {
	type bucket struct {
		le  float64
		cum float64
	}
	groups := make(map[string]*struct {
		labels []metrics.Label
		bks    []bucket
	})
	var order []string
	name := strings.TrimSuffix(bucketName, "_bucket")
	for _, p := range in {
		var le float64
		rest := make([]metrics.Label, 0, len(p.labels))
		haveLe := false
		for _, l := range p.labels {
			if l.Name == "le" {
				v, err := strconv.ParseFloat(l.Value, 64)
				if err != nil {
					continue
				}
				le, haveLe = v, true
				continue
			}
			rest = append(rest, l)
		}
		if !haveLe {
			continue
		}
		gk := seriesKey(name, rest)
		g, ok := groups[gk]
		if !ok {
			g = &struct {
				labels []metrics.Label
				bks    []bucket
			}{labels: rest}
			groups[gk] = g
			order = append(order, gk)
		}
		g.bks = append(g.bks, bucket{le: le, cum: p.v})
	}

	var out []samplePoint
	for _, gk := range order {
		g := groups[gk]
		sort.Slice(g.bks, func(i, j int) bool { return g.bks[i].le < g.bks[j].le })
		// Enforce monotone cumulative counts (rates can jitter).
		for i := 1; i < len(g.bks); i++ {
			if g.bks[i].cum < g.bks[i-1].cum {
				g.bks[i].cum = g.bks[i-1].cum
			}
		}
		n := len(g.bks)
		if n < 2 {
			continue
		}
		total := g.bks[n-1].cum
		if total <= 0 {
			continue
		}
		rank := phi * total
		idx := 0
		for idx < n && g.bks[idx].cum < rank {
			idx++
		}
		if idx >= n {
			idx = n - 1
		}
		var v float64
		switch {
		case idx == n-1:
			// Target falls in the +Inf bucket: report the highest
			// finite bound (Prometheus behavior).
			v = g.bks[n-2].le
		default:
			lower, lowerCum := 0.0, 0.0
			if idx > 0 {
				lower, lowerCum = g.bks[idx-1].le, g.bks[idx-1].cum
			}
			upper, upperCum := g.bks[idx].le, g.bks[idx].cum
			if upperCum > lowerCum {
				v = lower + (upper-lower)*(rank-lowerCum)/(upperCum-lowerCum)
			} else {
				v = upper
			}
		}
		out = append(out, samplePoint{key: gk, name: name, labels: g.labels, v: v})
	}
	return out
}

// RangePoint is one evaluated (time, value) pair; T is unix seconds.
type RangePoint struct {
	T float64
	V float64
}

// RangeSeries is one series of a range-query matrix.
type RangeSeries struct {
	Name   string
	Labels []metrics.Label
	Points []RangePoint
}

// QueryRange evaluates expr at every step from start to end inclusive
// and groups results into a deterministic matrix (series sorted by
// identity).
func (s *Store) QueryRange(expr string, start, end time.Time, step time.Duration) ([]RangeSeries, error) {
	e, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	if step <= 0 {
		return nil, fmt.Errorf("obsd: non-positive step")
	}
	if end.Before(start) {
		return nil, fmt.Errorf("obsd: end before start")
	}
	if end.Sub(start)/step > 10000 {
		return nil, fmt.Errorf("obsd: range too dense (>10000 points)")
	}
	byKey := make(map[string]*RangeSeries)
	var order []string
	for t := start; !t.After(end); t = t.Add(step) {
		tMs := t.UnixMilli()
		for _, p := range s.evalInstant(e, tMs) {
			rs, ok := byKey[p.key]
			if !ok {
				rs = &RangeSeries{Name: p.name, Labels: p.labels}
				byKey[p.key] = rs
				order = append(order, p.key)
			}
			rs.Points = append(rs.Points, RangePoint{T: float64(tMs) / 1000, V: p.v})
		}
	}
	sort.Strings(order)
	out := make([]RangeSeries, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out, nil
}

// QueryInstant evaluates expr at t, returning a deterministic vector.
func (s *Store) QueryInstant(expr string, t time.Time) ([]RangeSeries, error) {
	e, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	pts := s.evalInstant(e, t.UnixMilli())
	sort.Slice(pts, func(i, j int) bool { return pts[i].key < pts[j].key })
	out := make([]RangeSeries, 0, len(pts))
	for _, p := range pts {
		out = append(out, RangeSeries{
			Name:   p.name,
			Labels: p.labels,
			Points: []RangePoint{{T: float64(t.UnixMilli()) / 1000, V: p.v}},
		})
	}
	return out, nil
}
