package obsd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"blugpu/internal/metrics"
	"blugpu/internal/qlog"
)

// Rule kinds.
const (
	KindThreshold = "threshold" // fires when the (filtered) vector is non-empty
	KindAbsent    = "absent"    // fires when the selector matches nothing
	KindBreaker   = "breaker"   // fires when any/all matching series are nonzero
)

// Rule is one declarative alert rule.
type Rule struct {
	Name     string        // alert name (required)
	Expr     string        // query expression (required)
	Kind     string        // threshold (default) | absent | breaker
	Mode     string        // breaker only: any (default) | all
	For      time.Duration // hold-down before pending becomes firing
	Severity string        // info | warn | page (default warn)
	Summary  string        // freeform operator text

	parsed *Expr
}

// transitionRingCap bounds the recent-transitions ring in snapshots.
const transitionRingCap = 64

// ruleState is one rule's live state.
type ruleState struct {
	state string // metrics.AlertInactive | AlertPending | AlertFiring
	since time.Time
	value float64
}

// engine evaluates rules over the store on every scrape.
type engine struct {
	log *qlog.Logger

	mu          sync.Mutex
	rules       []Rule
	states      []ruleState
	transitions []metrics.AlertTransition // ring, newest last
	counts      map[[2]string]uint64      // (alert, to) lifetime transitions
}

func newEngine(log *qlog.Logger) *engine {
	return &engine{log: log, counts: make(map[[2]string]uint64)}
}

// setRules parses and installs a replacement rule set, resetting state.
func (en *engine) setRules(rules []Rule) error {
	parsed := make([]Rule, len(rules))
	for i, r := range rules {
		if r.Name == "" {
			return fmt.Errorf("obsd: rule %d: missing alert name", i+1)
		}
		if r.Expr == "" {
			return fmt.Errorf("obsd: rule %q: missing expr", r.Name)
		}
		if r.Kind == "" {
			r.Kind = KindThreshold
		}
		switch r.Kind {
		case KindThreshold, KindAbsent, KindBreaker:
		default:
			return fmt.Errorf("obsd: rule %q: unknown kind %q", r.Name, r.Kind)
		}
		if r.Mode == "" {
			r.Mode = "any"
		}
		if r.Mode != "any" && r.Mode != "all" {
			return fmt.Errorf("obsd: rule %q: unknown mode %q", r.Name, r.Mode)
		}
		if r.Severity == "" {
			r.Severity = metrics.SeverityWarn
		}
		switch r.Severity {
		case metrics.SeverityInfo, metrics.SeverityWarn, metrics.SeverityPage:
		default:
			return fmt.Errorf("obsd: rule %q: unknown severity %q", r.Name, r.Severity)
		}
		e, err := ParseExpr(r.Expr)
		if err != nil {
			return fmt.Errorf("obsd: rule %q: %w", r.Name, err)
		}
		r.parsed = e
		parsed[i] = r
	}
	en.mu.Lock()
	defer en.mu.Unlock()
	en.rules = parsed
	en.states = make([]ruleState, len(parsed))
	for i := range en.states {
		en.states[i].state = metrics.AlertInactive
	}
	return nil
}

// evaluate runs every rule at now, in load order, applying the state
// machine: inactive → pending on a true condition (or straight to
// firing with no for:), pending → firing once the hold-down elapses,
// pending → inactive silently on a false condition (flap suppression),
// firing → inactive with a "resolved" transition. Transitions are
// recorded in the ring, counted, and logged as qlog alert events.
func (en *engine) evaluate(s *Store, now time.Time) {
	en.mu.Lock()
	defer en.mu.Unlock()
	for i := range en.rules {
		r := &en.rules[i]
		cond, value := evalCondition(s, r, now)
		st := &en.states[i]
		st.value = value
		switch st.state {
		case metrics.AlertInactive:
			if cond {
				st.since = now
				if r.For <= 0 {
					st.state = metrics.AlertFiring
					en.recordLocked(r, "firing", value, now)
				} else {
					st.state = metrics.AlertPending
					en.recordLocked(r, "pending", value, now)
				}
			}
		case metrics.AlertPending:
			switch {
			case !cond:
				// Flap suppression: a pending rule that stops being
				// true goes quietly back to inactive.
				st.state = metrics.AlertInactive
				st.since = time.Time{}
			case now.Sub(st.since) >= r.For:
				st.state = metrics.AlertFiring
				en.recordLocked(r, "firing", value, now)
			}
		case metrics.AlertFiring:
			if !cond {
				st.state = metrics.AlertInactive
				st.since = time.Time{}
				en.recordLocked(r, "resolved", value, now)
			}
		}
	}
}

// evalCondition evaluates one rule's condition and representative value.
func evalCondition(s *Store, r *Rule, now time.Time) (bool, float64) {
	pts := s.evalInstant(r.parsed, now.UnixMilli())
	switch r.Kind {
	case KindAbsent:
		return len(pts) == 0, 0
	case KindBreaker:
		nonzero := 0
		for _, p := range pts {
			if p.v != 0 {
				nonzero++
			}
		}
		if r.Mode == "all" {
			return len(pts) > 0 && nonzero == len(pts), float64(nonzero)
		}
		return nonzero > 0, float64(nonzero)
	default: // threshold
		max := 0.0
		for i, p := range pts {
			if i == 0 || p.v > max {
				max = p.v
			}
		}
		return len(pts) > 0, max
	}
}

// recordLocked appends a transition to the ring, bumps the lifetime
// count, and emits the qlog alert event.
func (en *engine) recordLocked(r *Rule, to string, value float64, now time.Time) {
	tr := metrics.AlertTransition{
		At:       now.UTC().Format(time.RFC3339Nano),
		Alert:    r.Name,
		Severity: r.Severity,
		To:       to,
		Value:    value,
	}
	en.transitions = append(en.transitions, tr)
	if len(en.transitions) > transitionRingCap {
		en.transitions = en.transitions[len(en.transitions)-transitionRingCap:]
	}
	en.counts[[2]string{r.Name, to}]++
	en.log.Log(qlog.Record{
		Event:         qlog.EventAlert,
		Alert:         r.Name,
		AlertState:    to,
		AlertSeverity: r.Severity,
		AlertValue:    value,
	})
}

// pagesFiring counts firing severity-page rules.
func (en *engine) pagesFiring() int {
	en.mu.Lock()
	defer en.mu.Unlock()
	n := 0
	for i := range en.rules {
		if en.rules[i].Severity == metrics.SeverityPage && en.states[i].state == metrics.AlertFiring {
			n++
		}
	}
	return n
}

// snapshot renders the engine state deterministically: states in rule
// load order, transition counts sorted by (alert, to).
func (en *engine) snapshot() metrics.AlertsSnapshot {
	en.mu.Lock()
	defer en.mu.Unlock()
	out := metrics.AlertsSnapshot{Rules: len(en.rules)}
	for i := range en.rules {
		r := &en.rules[i]
		st := &en.states[i]
		as := metrics.AlertState{
			Name:     r.Name,
			Severity: r.Severity,
			State:    st.state,
			Value:    st.value,
			Summary:  r.Summary,
		}
		if !st.since.IsZero() {
			as.Since = st.since.UTC().Format(time.RFC3339Nano)
		}
		switch st.state {
		case metrics.AlertFiring:
			out.Firing++
			if r.Severity == metrics.SeverityPage {
				out.PagesFiring++
			}
		case metrics.AlertPending:
			out.Pending++
		}
		out.States = append(out.States, as)
	}
	out.Transitions = append(out.Transitions, en.transitions...)
	for k, v := range en.counts {
		out.TransitionCounts = append(out.TransitionCounts, metrics.AlertTransitionCount{Alert: k[0], To: k[1], Count: v})
	}
	sort.Slice(out.TransitionCounts, func(i, j int) bool {
		a, b := out.TransitionCounts[i], out.TransitionCounts[j]
		if a.Alert != b.Alert {
			return a.Alert < b.Alert
		}
		return a.To < b.To
	})
	return out
}

// ParseRules parses a rules file: blank-line-separated blocks of
// "key: value" lines, # comments. Keys: alert, expr, kind, mode, for,
// severity, summary.
//
//	# page when the whole GPU fleet is quarantined
//	alert: AllBreakersOpen
//	expr: blu_device_quarantined
//	kind: breaker
//	mode: all
//	for: 10s
//	severity: page
//	summary: every device breaker is open; serving on CPU fallback only
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	var cur *Rule
	flush := func() {
		if cur != nil {
			rules = append(rules, *cur)
			cur = nil
		}
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("obsd: rules line %d: want \"key: value\", got %q", ln+1, line)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		if cur == nil {
			cur = &Rule{}
		}
		switch key {
		case "alert":
			cur.Name = val
		case "expr":
			cur.Expr = val
		case "kind":
			cur.Kind = val
		case "mode":
			cur.Mode = val
		case "for":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("obsd: rules line %d: bad for: %w", ln+1, err)
			}
			cur.For = d
		case "severity":
			cur.Severity = val
		case "summary":
			cur.Summary = val
		default:
			return nil, fmt.Errorf("obsd: rules line %d: unknown key %q", ln+1, key)
		}
	}
	flush()
	if len(rules) == 0 {
		return nil, fmt.Errorf("obsd: empty rules file")
	}
	return rules, nil
}

// DefaultRules derives a rule set from the repo's existing SLO
// objectives and breaker semantics, scaled to the scrape step: breaker
// alerts hold for 2 steps, rate windows span 4.
func DefaultRules(step time.Duration) []Rule {
	hold := 2 * step
	window := 4 * step
	return []Rule{
		{
			Name:     "AllBreakersOpen",
			Expr:     "blu_device_quarantined",
			Kind:     KindBreaker,
			Mode:     "all",
			For:      hold,
			Severity: metrics.SeverityPage,
			Summary:  "every device circuit breaker is open; all queries run on CPU fallback",
		},
		{
			Name:     "BreakerOpen",
			Expr:     "blu_device_quarantined",
			Kind:     KindBreaker,
			Mode:     "any",
			For:      hold,
			Severity: metrics.SeverityWarn,
			Summary:  "at least one device circuit breaker is open",
		},
		{
			Name:     "HighSLOBurn",
			Expr:     "blu_slo_burn_rate > 2",
			Kind:     KindThreshold,
			For:      hold,
			Severity: metrics.SeverityWarn,
			Summary:  "a query class is burning SLO error budget at more than twice the sustainable rate",
		},
		{
			Name:     "ShedSpike",
			Expr:     fmt.Sprintf(`rate(blu_serve_queries_total{outcome="shed"}[%s]) > 5`, window),
			Kind:     KindThreshold,
			For:      hold,
			Severity: metrics.SeverityWarn,
			Summary:  "admission control is shedding more than 5 queries/second",
		},
		{
			Name:     "AdmissionMetricsAbsent",
			Expr:     "blu_serve_queue_depth",
			Kind:     KindAbsent,
			For:      hold,
			Severity: metrics.SeverityInfo,
			Summary:  "the serving layer is not reporting admission metrics",
		},
	}
}
