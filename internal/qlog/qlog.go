// Package qlog is the structured query log: one JSON record per query
// with the wall-clock phase breakdown the modeled-time surfaces cannot
// provide. It also owns the request-ID context plumbing — the stable
// per-query ID the serving layer assigns (or honors from X-Request-ID)
// and threads through engine attrs, trace spans, EXPLAIN ANALYZE
// reports and this log, so one grep joins every surface.
//
// Records encode with encoding/json over a fixed struct, so the field
// order is deterministic; the clock is injectable, so the golden test
// locks the output byte-for-byte. Wall-clock values are real time —
// informational, never gated — while the modeled_ms column carries the
// bit-stable virtual time alongside for cross-reference.
package qlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Schema versions the record layout. Consumers reject unknown schemas.
const Schema = 1

// Event names the record kinds.
const (
	EventQuery = "query"      // one per resolved submission
	EventSlow  = "slow_query" // additionally emitted over the slow threshold
	EventAlert = "alert"      // one per alert-rule state transition
)

// Outcomes mirror the serving layer's double-entry ledger, plus "error"
// for admitted queries that failed in parse/plan/execution.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeShed     = "shed"
	OutcomeTimedOut = "timed_out"
	OutcomeDrained  = "drained"
)

var validOutcomes = map[string]bool{
	OutcomeOK: true, OutcomeError: true, OutcomeShed: true,
	OutcomeTimedOut: true, OutcomeDrained: true,
}

var validEvents = map[string]bool{EventQuery: true, EventSlow: true, EventAlert: true}

// Alert transition destinations carried by EventAlert records.
var validAlertStates = map[string]bool{"pending": true, "firing": true, "resolved": true}

// Phases is the wall-clock phase breakdown of one query, in
// milliseconds. QueueWait covers enqueue→admit; Admission the
// breaker-aware placement backoff; Parse/Plan the SQL front-end; Exec
// the engine execution (with the GPU-kernel / host-evaluator / gather
// split inside it, informational); Serialize the result encoding. The
// named phases sum to within a few percent of the record's TotalMs —
// the residue is scheduling jitter and accounting overhead.
type Phases struct {
	QueueWaitMs  float64 `json:"queue_wait_ms"`
	AdmissionMs  float64 `json:"admission_ms"`
	ParseMs      float64 `json:"parse_ms"`
	PlanMs       float64 `json:"plan_ms"`
	ExecMs       float64 `json:"exec_ms"`
	ExecGPUMs    float64 `json:"exec_gpu_ms,omitempty"`
	ExecHostMs   float64 `json:"exec_host_ms,omitempty"`
	ExecGatherMs float64 `json:"exec_gather_ms,omitempty"`
	SerializeMs  float64 `json:"serialize_ms"`
}

// SumMs totals the top-level phases (the GPU/host/gather split is a
// breakdown *inside* ExecMs, not additional time).
func (p Phases) SumMs() float64 {
	return p.QueueWaitMs + p.AdmissionMs + p.ParseMs + p.PlanMs + p.ExecMs + p.SerializeMs
}

// Record is one query-log line. Field order here is the JSON field
// order — append new fields at the end to keep old goldens readable.
type Record struct {
	Schema    int    `json:"schema"`
	TS        string `json:"ts"` // RFC3339Nano UTC, stamped by the Logger
	Event     string `json:"event"`
	RequestID string `json:"request_id"`
	Session   string `json:"session,omitempty"`
	Query     string `json:"query,omitempty"` // resolved query name
	Class     string `json:"class,omitempty"`
	SQL       string `json:"sql,omitempty"`
	Outcome   string `json:"outcome"`
	Error     string `json:"error,omitempty"`
	Reason    string `json:"reason,omitempty"` // shed/drain refusal reason

	Rows          int     `json:"rows,omitempty"`
	ResultBytes   int     `json:"result_bytes,omitempty"`
	GPUUsed       bool    `json:"gpu_used,omitempty"`
	Devices       []int   `json:"devices,omitempty"` // device IDs that ran kernels
	PlaceRetries  int     `json:"place_retries,omitempty"`
	FallbackCause string  `json:"fallback_cause,omitempty"` // GPU fault → CPU fallback
	TransferBytes int64   `json:"transfer_bytes,omitempty"` // PCIe bytes moved
	ModeledMs     float64 `json:"modeled_ms,omitempty"`     // bit-stable virtual time

	Slow            bool    `json:"slow,omitempty"`
	SlowThresholdMs float64 `json:"slow_threshold_ms,omitempty"`

	Phases  Phases  `json:"phases"`
	TotalMs float64 `json:"total_ms"` // submit→resolve wall time

	// Alert fields, set only on EventAlert records (obsd rule-engine
	// state transitions). Appended at the end per the field-order
	// contract above.
	Alert         string  `json:"alert,omitempty"`
	AlertState    string  `json:"alert_state,omitempty"` // pending | firing | resolved
	AlertSeverity string  `json:"alert_severity,omitempty"`
	AlertValue    float64 `json:"alert_value,omitempty"`
}

// Ms converts a duration to milliseconds rounded to 1 µs resolution,
// the precision the log carries.
func Ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Microsecond)) / 1000
}

// Option configures a Logger.
type Option func(*Logger)

// WithClock injects the timestamp source (tests pin it for byte-stable
// goldens). nil restores time.Now.
func WithClock(now func() time.Time) Option {
	return func(l *Logger) {
		if now != nil {
			l.now = now
		}
	}
}

// Logger writes one JSON record per line. Safe for concurrent use.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	now     func() time.Time
	records uint64
}

// New builds a Logger over w.
func New(w io.Writer, opts ...Option) *Logger {
	l := &Logger{w: w, now: time.Now}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Log stamps the record (Schema, TS) and writes it as one JSON line.
func (l *Logger) Log(rec Record) error {
	if l == nil {
		return nil
	}
	rec.Schema = Schema
	if rec.Event == "" {
		rec.Event = EventQuery
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.TS = l.now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		return err
	}
	l.records++
	return nil
}

// Records returns the number of records written.
func (l *Logger) Records() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Validate checks a query-log stream line by line: every line must
// decode as a Record with a known schema, event and outcome, a
// non-empty request ID, a parseable timestamp, and non-negative phase
// and total times. It is the schema check behind `make qlog-smoke`.
func Validate(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	seen := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		seen++
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("qlog: line %d: %w", line, err)
		}
		switch {
		case rec.Schema != Schema:
			return fmt.Errorf("qlog: line %d: schema %d, want %d", line, rec.Schema, Schema)
		case !validEvents[rec.Event]:
			return fmt.Errorf("qlog: line %d: unknown event %q", line, rec.Event)
		case rec.TotalMs < 0:
			return fmt.Errorf("qlog: line %d: negative total_ms", line)
		}
		if rec.Event == EventAlert {
			// Alert transitions carry no request or outcome; they must
			// name the rule and a known destination state instead.
			switch {
			case rec.Alert == "":
				return fmt.Errorf("qlog: line %d: alert event missing alert name", line)
			case !validAlertStates[rec.AlertState]:
				return fmt.Errorf("qlog: line %d: unknown alert_state %q", line, rec.AlertState)
			}
		} else {
			switch {
			case rec.RequestID == "":
				return fmt.Errorf("qlog: line %d: missing request_id", line)
			case !validOutcomes[rec.Outcome]:
				return fmt.Errorf("qlog: line %d: unknown outcome %q", line, rec.Outcome)
			}
		}
		if _, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil {
			return fmt.Errorf("qlog: line %d: bad ts: %w", line, err)
		}
		for _, ph := range []struct {
			name string
			v    float64
		}{
			{"queue_wait_ms", rec.Phases.QueueWaitMs},
			{"admission_ms", rec.Phases.AdmissionMs},
			{"parse_ms", rec.Phases.ParseMs},
			{"plan_ms", rec.Phases.PlanMs},
			{"exec_ms", rec.Phases.ExecMs},
			{"serialize_ms", rec.Phases.SerializeMs},
		} {
			if ph.v < 0 {
				return fmt.Errorf("qlog: line %d: negative %s", line, ph.name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("qlog: %w", err)
	}
	if seen == 0 {
		return fmt.Errorf("qlog: empty log")
	}
	return nil
}

// Decode parses a query-log stream into records (skipping blank lines).
func Decode(data []byte) ([]Record, error) {
	if err := Validate(data); err != nil {
		return nil, err
	}
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ctxKey keys the request ID on a context.Context.
type ctxKey struct{}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx, "" when absent.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
