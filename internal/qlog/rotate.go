package qlog

import (
	"fmt"
	"os"
	"sync"
)

// Config bounds the on-disk query log. Zero values mean unbounded: no
// rotation, one ever-growing file (the pre-rotation behavior).
type Config struct {
	// MaxBytes rotates the file before a write would push it past this
	// size. Rotation happens only at whole-record boundaries — the
	// Logger writes exactly one record per Write call — so every
	// generation is independently Validate/Decode-clean.
	MaxBytes int64
	// Keep is how many rotated generations to retain (path.1 newest …
	// path.Keep oldest). 0 defaults to 3 when MaxBytes is set.
	Keep int
}

// File is a size-capped rotating log sink: the io.Writer handed to
// qlog.New for sustained serve runs, where an unbounded log would grow
// without limit. Safe for concurrent use (the Logger serializes writes
// anyway, but File guards itself for direct users).
type File struct {
	mu   sync.Mutex
	path string
	cfg  Config
	f    *os.File
	size int64
	rots uint64
}

// OpenFile opens (creating or appending) a rotating log file at path.
func OpenFile(path string, cfg Config) (*File, error) {
	if cfg.MaxBytes > 0 && cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{path: path, cfg: cfg, f: f, size: st.Size()}, nil
}

// Write appends one record line, rotating first when the line would
// push the live file past MaxBytes. A single record larger than
// MaxBytes still writes whole — records are never split across
// generations.
func (w *File) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cfg.MaxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.cfg.MaxBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotateLocked shifts path.(k-1)→path.k … path→path.1 and reopens a
// fresh live file, dropping the oldest generation past Keep.
func (w *File) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	os.Remove(fmt.Sprintf("%s.%d", w.path, w.cfg.Keep))
	for i := w.cfg.Keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", w.path, i), fmt.Sprintf("%s.%d", w.path, i+1))
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.size = 0
	w.rots++
	return nil
}

// Rotations reports how many times the live file has rotated.
func (w *File) Rotations() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rots
}

// Close closes the live file.
func (w *File) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
