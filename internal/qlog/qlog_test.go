package qlog

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock steps one second per call from a pinned instant, so the
// golden log is byte-stable.
func fixedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// goldenRecords covers the four scenarios the serving layer emits:
// a happy GPU query, a shed submission, a deadline timeout, and a GPU
// fault that fell back to the CPU path — plus the slow_query event a
// threshold breach appends.
func goldenRecords() []Record {
	happy := Record{
		RequestID: "blu-000001", Session: "analyst", Query: "serve-1",
		Class: "intermediate", SQL: "SELECT k, SUM(v) FROM t GROUP BY k",
		Outcome: OutcomeOK, Rows: 7, ResultBytes: 412, GPUUsed: true,
		Devices: []int{0, 1}, TransferBytes: 65536, ModeledMs: 1.25,
		Phases: Phases{
			QueueWaitMs: 0.125, AdmissionMs: 0.002, ParseMs: 0.04,
			PlanMs: 0.03, ExecMs: 2.5, ExecGPUMs: 1.8, ExecHostMs: 0.4,
			ExecGatherMs: 0.2, SerializeMs: 0.09,
		},
		TotalMs: 2.801,
	}
	shed := Record{
		RequestID: "req-client-7", Session: "analyst", Class: "complex",
		SQL: "SELECT * FROM big JOIN bigger", Outcome: OutcomeShed,
		Reason: "queue_full", TotalMs: 0.011,
	}
	timeout := Record{
		RequestID: "blu-000003", Query: "serve-3", Class: "simple",
		SQL: "SELECT v FROM t", Outcome: OutcomeTimedOut,
		Error:   "serve: query serve-3 exceeded its deadline: context deadline exceeded",
		Phases:  Phases{QueueWaitMs: 4.2, ExecMs: 10.0},
		TotalMs: 14.21,
	}
	fallback := Record{
		RequestID: "blu-000004", Query: "serve-4", Class: "intermediate",
		SQL: "SELECT k, COUNT(*) FROM t GROUP BY k", Outcome: OutcomeOK,
		Rows: 7, GPUUsed: false, PlaceRetries: 2,
		FallbackCause: "gpu: injected kernel fault",
		Phases: Phases{
			QueueWaitMs: 0.3, AdmissionMs: 0.8, ParseMs: 0.05, PlanMs: 0.02,
			ExecMs: 5.1, ExecHostMs: 4.9, SerializeMs: 0.07,
		},
		TotalMs: 6.35,
	}
	slow := happy
	slow.Event = EventSlow
	slow.RequestID = "blu-000005"
	slow.Slow = true
	slow.SlowThresholdMs = 250
	slow.TotalMs = 312.44
	return []Record{happy, shed, timeout, fallback, slow}
}

func TestGoldenLog(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, WithClock(fixedClock()))
	for _, rec := range goldenRecords() {
		if err := l.Log(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != 5 {
		t.Fatalf("records = %d, want 5", l.Records())
	}
	path := filepath.Join("testdata", "qlog_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("query log diverged from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden must also satisfy the validator the smoke check runs.
	if err := Validate(want); err != nil {
		t.Fatalf("golden log fails validation: %v", err)
	}
	recs, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	if recs[0].Phases.SumMs() == 0 {
		t.Fatal("decoded phases lost their values")
	}
}

func TestPhaseSumExcludesExecBreakdown(t *testing.T) {
	p := Phases{
		QueueWaitMs: 1, AdmissionMs: 2, ParseMs: 3, PlanMs: 4,
		ExecMs: 10, ExecGPUMs: 6, ExecHostMs: 3, ExecGatherMs: 1,
		SerializeMs: 5,
	}
	if got := p.SumMs(); got != 25 {
		t.Fatalf("SumMs = %v, want 25 (GPU/host/gather are inside exec, not additional)", got)
	}
}

func TestMsRounding(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want float64
	}{
		{0, 0},
		{time.Millisecond, 1},
		{1500 * time.Nanosecond, 0.002}, // rounds to 2µs
		{499 * time.Nanosecond, 0},
		{2*time.Millisecond + 345*time.Microsecond, 2.345},
	} {
		if got := Ms(tc.d); got != tc.want {
			t.Fatalf("Ms(%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mutate func(*Record)) []byte {
		rec := Record{RequestID: "r1", Outcome: OutcomeOK}
		var buf bytes.Buffer
		l := New(&buf, WithClock(fixedClock()))
		l.Log(rec)
		recs := buf.String()
		if mutate != nil {
			var r Record
			r = rec
			mutate(&r)
			buf.Reset()
			l2 := New(&buf, WithClock(fixedClock()))
			l2.Log(r)
			recs = buf.String()
		}
		return []byte(recs)
	}
	if err := Validate(nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty log must be rejected, got %v", err)
	}
	if err := Validate(mk(nil)); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if err := Validate(mk(func(r *Record) { r.RequestID = "" })); err == nil {
		t.Fatal("missing request_id must be rejected")
	}
	if err := Validate(mk(func(r *Record) { r.Outcome = "exploded" })); err == nil {
		t.Fatal("unknown outcome must be rejected")
	}
	if err := Validate(mk(func(r *Record) { r.TotalMs = -1 })); err == nil {
		t.Fatal("negative total_ms must be rejected")
	}
	if err := Validate(mk(func(r *Record) { r.Phases.ExecMs = -0.5 })); err == nil {
		t.Fatal("negative phase must be rejected")
	}
	if err := Validate([]byte(`{"schema":99,"ts":"2026-01-02T03:04:06Z","event":"query","request_id":"x","outcome":"ok","phases":{"queue_wait_ms":0,"admission_ms":0,"parse_ms":0,"plan_ms":0,"exec_ms":0,"serialize_ms":0},"total_ms":0}` + "\n")); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
	if err := Validate([]byte(`{"schema":1,"ts":"x","event":"query","request_id":"x","outcome":"ok","unknown_field":1,"phases":{"queue_wait_ms":0,"admission_ms":0,"parse_ms":0,"plan_ms":0,"exec_ms":0,"serialize_ms":0},"total_ms":0}` + "\n")); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Fatalf("empty ctx carries %q", got)
	}
	ctx = WithRequestID(ctx, "blu-42")
	if got := RequestIDFrom(ctx); got != "blu-42" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	if WithRequestID(context.Background(), "") != context.Background() {
		t.Fatal("empty ID must not allocate a context")
	}
	if got := RequestIDFrom(nil); got != "" {
		t.Fatalf("nil ctx carries %q", got)
	}
}
