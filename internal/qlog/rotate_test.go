package qlog

import (
	"os"
	"path/filepath"
	"testing"
)

// Rotation must happen only at whole-record boundaries: every
// generation independently validates and decodes, and no record is ever
// split across files.
func TestRotateBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qlog.jsonl")
	f, err := OpenFile(path, Config{MaxBytes: 600, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := New(f, WithClock(fixedClock()))

	total := 20
	for i := 0; i < total; i++ {
		if err := l.Log(Record{RequestID: "req-1", Outcome: OutcomeOK, Query: "q1", TotalMs: 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rotations() == 0 {
		t.Fatal("expected at least one rotation at 600-byte cap")
	}

	decoded := 0
	for _, p := range []string{path, path + ".1", path + ".2"} {
		data, err := os.ReadFile(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		if err := Validate(data); err != nil {
			t.Fatalf("%s: post-rotate validate: %v", filepath.Base(p), err)
		}
		recs, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: post-rotate decode: %v", filepath.Base(p), err)
		}
		decoded += len(recs)
		if st, _ := os.Stat(p); p != path && st.Size() > 600 {
			t.Errorf("%s: generation over cap: %d bytes", filepath.Base(p), st.Size())
		}
	}
	// Keep=2 bounds retention; with 20 records at ~175B each against a
	// 600-byte cap, older generations were dropped — but live + kept
	// generations must hold only whole records.
	if decoded == 0 || decoded > total {
		t.Fatalf("decoded %d records across generations, want 1..%d", decoded, total)
	}
}

// A record larger than MaxBytes must still write whole.
func TestRotateOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qlog.jsonl")
	f, err := OpenFile(path, Config{MaxBytes: 64, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := New(f, WithClock(fixedClock()))
	big := make([]byte, 200)
	for i := range big {
		big[i] = 'x'
	}
	for i := 0; i < 3; i++ {
		if err := l.Log(Record{RequestID: "r", Outcome: OutcomeOK, SQL: string(big)}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("live file invalid after oversize writes: %v", err)
	}
}

// Reopening an existing file must account its size, so the cap holds
// across process restarts.
func TestRotateReopenAccountsSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qlog.jsonl")
	if err := os.WriteFile(path, make([]byte, 500), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path, Config{MaxBytes: 600, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if f.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1 (500+200 > 600)", f.Rotations())
	}
}

// Zero config means unbounded append — the pre-rotation behavior.
func TestNoRotationWithoutCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qlog.jsonl")
	f, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 50; i++ {
		if _, err := f.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rotations() != 0 {
		t.Fatalf("unexpected rotation with zero config")
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("unexpected rotated generation")
	}
}

// Alert events validate without request_id/outcome but require an alert
// name and known state.
func TestValidateAlertEvents(t *testing.T) {
	var buf testBuffer
	l := New(&buf, WithClock(fixedClock()))
	if err := l.Log(Record{Event: EventAlert, Alert: "AllBreakersOpen", AlertState: "firing", AlertSeverity: "page", AlertValue: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(Record{Event: EventAlert, Alert: "AllBreakersOpen", AlertState: "resolved", AlertSeverity: "page"}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.data); err != nil {
		t.Fatalf("alert events must validate: %v", err)
	}
	recs, err := Decode(buf.data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].AlertState != "firing" || recs[1].AlertState != "resolved" {
		t.Fatalf("decoded alert records wrong: %+v", recs)
	}

	var bad testBuffer
	lb := New(&bad, WithClock(fixedClock()))
	lb.Log(Record{Event: EventAlert, AlertState: "firing"}) // no alert name
	if err := Validate(bad.data); err == nil {
		t.Fatal("alert event without name must fail validation")
	}
	var bad2 testBuffer
	lb2 := New(&bad2, WithClock(fixedClock()))
	lb2.Log(Record{Event: EventAlert, Alert: "X", AlertState: "exploded"})
	if err := Validate(bad2.data); err == nil {
		t.Fatal("alert event with unknown state must fail validation")
	}
}

type testBuffer struct{ data []byte }

func (b *testBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
