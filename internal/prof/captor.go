package prof

import (
	"bytes"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Options configures a Captor.
type Options struct {
	// Window is the length of each CPU-profile capture (default 1s).
	Window time.Duration
	// Gap is the idle time between capture windows (default = Window,
	// a 50% duty cycle — long enough that an operator's explicit
	// /debug/pprof/profile request can usually grab the profiler).
	Gap time.Duration
	// Keep bounds the capture ring (default 8).
	Keep int
	// TopN is the hotspot digest's function count (default 20).
	TopN int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.Gap <= 0 {
		o.Gap = o.Window
	}
	if o.Keep <= 0 {
		o.Keep = 8
	}
	if o.TopN <= 0 {
		o.TopN = 20
	}
	return o
}

// Capture is one profiling window kept in the ring: the raw gzipped
// pprof CPU profile, a heap snapshot taken at the window's end, and the
// decoded CPU summary.
type Capture struct {
	Seq      uint64
	CPU      []byte
	Heap     []byte
	Samples  int
	CPUNanos int64
}

// CaptorStats summarizes captor activity.
type CaptorStats struct {
	// Captures is the number of completed profile windows.
	Captures uint64
	// Skips counts windows that could not start because the process
	// CPU profiler was already running (e.g. an operator-driven
	// /debug/pprof/profile request).
	Skips uint64
	// RingLen is the number of captures currently retained.
	RingLen int
	// CPUNanos is the total profiled CPU time over all captures
	// (including ones evicted from the ring).
	CPUNanos int64
	// Samples is the total sample count over all captures.
	Samples uint64
}

// Captor periodically captures CPU profiles and heap snapshots, folds
// labeled CPU samples back into an Accountant, and keeps a bounded ring
// of raw profiles plus a cumulative hotspot aggregate for the digest.
// Safe for concurrent use; the process-global CPU profiler is
// serialized internally.
type Captor struct {
	acct *Accountant
	opt  Options

	// profMu serializes use of the process-global CPU profiler between
	// the background loop and on-demand CaptureNow calls.
	profMu sync.Mutex

	mu       sync.Mutex
	ring     []Capture
	seq      uint64
	captures uint64
	skips    uint64
	samples  uint64
	totalNs  int64
	byLabel  map[LabelKey]int64
	byFunc   map[string]int64
	running  bool
	stop     chan struct{}
	done     chan struct{}
}

// NewCaptor returns a stopped captor feeding acct (which may be nil —
// the ring and digest still work, only the per-class CPU account is
// skipped).
func NewCaptor(acct *Accountant, opt Options) *Captor {
	return &Captor{
		acct:    acct,
		opt:     opt.withDefaults(),
		byLabel: map[LabelKey]int64{},
		byFunc:  map[string]int64{},
	}
}

// Start launches the periodic capture loop. Idempotent.
func (c *Captor) Start() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()

	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.CaptureNow(c.opt.Window) // skip/error already accounted
			select {
			case <-stop:
				return
			case <-time.After(c.opt.Gap):
			}
		}
	}()
}

// Stop halts the capture loop, waiting for an in-flight window (at most
// ~Window) to finish. Idempotent.
func (c *Captor) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

// CaptureNow runs one synchronous capture window of the given length
// (clamped to [10ms, 10s]; <=0 means the configured window) and returns
// the capture. It fails without waiting when the CPU profiler is
// already busy.
func (c *Captor) CaptureNow(window time.Duration) (Capture, error) {
	if window <= 0 {
		window = c.opt.Window
	}
	if window < 10*time.Millisecond {
		window = 10 * time.Millisecond
	}
	if window > 10*time.Second {
		window = 10 * time.Second
	}

	c.profMu.Lock()
	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		c.profMu.Unlock()
		c.mu.Lock()
		c.skips++
		c.mu.Unlock()
		return Capture{}, fmt.Errorf("prof: cpu profiler busy: %w", err)
	}
	time.Sleep(window)
	pprof.StopCPUProfile()
	c.profMu.Unlock()

	var heapBuf bytes.Buffer
	if err := pprof.WriteHeapProfile(&heapBuf); err != nil {
		heapBuf.Reset() // keep the CPU capture; heap snapshot is best-effort
	}

	parsed, err := ParseCPUProfile(cpuBuf.Bytes())
	if err != nil {
		c.mu.Lock()
		c.skips++
		c.mu.Unlock()
		return Capture{}, err
	}

	for k, ns := range parsed.ByLabel {
		c.acct.AddCPU(k.Class, k.Phase, float64(ns)/1e9)
	}

	cap := Capture{
		CPU:      cpuBuf.Bytes(),
		Heap:     heapBuf.Bytes(),
		Samples:  parsed.Samples,
		CPUNanos: parsed.TotalNanos,
	}
	c.mu.Lock()
	c.seq++
	cap.Seq = c.seq
	c.captures++
	c.samples += uint64(parsed.Samples)
	c.totalNs += parsed.TotalNanos
	for k, ns := range parsed.ByLabel {
		c.byLabel[k] += ns
	}
	for name, ns := range parsed.ByFunc {
		c.byFunc[name] += ns
	}
	c.ring = append(c.ring, cap)
	if len(c.ring) > c.opt.Keep {
		c.ring = c.ring[len(c.ring)-c.opt.Keep:]
	}
	c.mu.Unlock()
	return cap, nil
}

// Stats returns captor counters.
func (c *Captor) Stats() CaptorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CaptorStats{
		Captures: c.captures,
		Skips:    c.skips,
		RingLen:  len(c.ring),
		CPUNanos: c.totalNs,
		Samples:  c.samples,
	}
}

// Captures returns a copy of the ring, oldest first.
func (c *Captor) Captures() []Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Capture, len(c.ring))
	copy(out, c.ring)
	return out
}

// WriteHotspots renders the hotspot digest: capture counters, the CPU
// split by class/phase label, and the top-N leaf functions by self
// time. The text is deterministic for a given captor state — fixed
// section order, fixed float formatting, ties broken by name.
func (c *Captor) WriteHotspots(w io.Writer) error {
	c.mu.Lock()
	stats := CaptorStats{
		Captures: c.captures,
		Skips:    c.skips,
		RingLen:  len(c.ring),
		CPUNanos: c.totalNs,
		Samples:  c.samples,
	}
	labels := make([]labelNanos, 0, len(c.byLabel))
	for k, ns := range c.byLabel {
		labels = append(labels, labelNanos{k, ns})
	}
	funcs := make([]funcNanos, 0, len(c.byFunc))
	for name, ns := range c.byFunc {
		funcs = append(funcs, funcNanos{name, ns})
	}
	topN := c.opt.TopN
	c.mu.Unlock()

	sort.Slice(labels, func(i, j int) bool {
		if labels[i].ns != labels[j].ns {
			return labels[i].ns > labels[j].ns
		}
		if labels[i].key.Class != labels[j].key.Class {
			return labels[i].key.Class < labels[j].key.Class
		}
		return labels[i].key.Phase < labels[j].key.Phase
	})
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].ns != funcs[j].ns {
			return funcs[i].ns > funcs[j].ns
		}
		return funcs[i].name < funcs[j].name
	})
	if len(funcs) > topN {
		funcs = funcs[:topN]
	}

	bw := &errWriter{w: w}
	bw.printf("prof hotspots: captures=%d skips=%d ring=%d samples=%d cpu=%.3fms\n",
		stats.Captures, stats.Skips, stats.RingLen, stats.Samples, float64(stats.CPUNanos)/1e6)
	if len(labels) == 0 {
		bw.printf("(no labeled cpu samples captured)\n")
	} else {
		bw.printf("by class/phase:\n")
		for _, l := range labels {
			bw.printf("  class=%-16s phase=%-12s cpu=%.3fms\n", l.key.Class, l.key.Phase, float64(l.ns)/1e6)
		}
	}
	if len(funcs) > 0 {
		bw.printf("top functions (self time):\n")
		for i, f := range funcs {
			bw.printf("  %2d. %10.3fms  %s\n", i+1, float64(f.ns)/1e6, f.name)
		}
	}
	return bw.err
}

type labelNanos struct {
	key LabelKey
	ns  int64
}

type funcNanos struct {
	name string
	ns   int64
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
