// Minimal pprof profile.proto reader. The Go toolchain writes CPU
// profiles as gzipped protobuf; the stdlib offers no decoder, and this
// repo takes no external dependencies, so the Captor carries its own —
// a wire-format walker that understands exactly the Profile fields the
// hotspot digest and label attribution need and skips everything else.
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// LabelKey identifies one labeled attribution cell in a CPU profile.
type LabelKey struct {
	Class string
	Phase string
}

// CPUProfile is the decoded summary of one CPU profile: total on-CPU
// time, its split by blu_class/blu_phase label, and its split by leaf
// function (the hotspot view).
type CPUProfile struct {
	// Samples is the number of sample records in the profile (each
	// aggregates all ticks with one stack+label set).
	Samples int
	// TotalNanos is the summed CPU nanoseconds over all samples.
	TotalNanos int64
	// DurationNanos is the profile's own recorded capture duration.
	DurationNanos int64
	// ByLabel maps (blu_class, blu_phase) to CPU nanoseconds. Samples
	// without those labels land under {Untagged, Untagged}.
	ByLabel map[LabelKey]int64
	// ByFunc maps the leaf function name of each sample's stack to CPU
	// nanoseconds — the flat (self-time) hotspot account.
	ByFunc map[string]int64
}

// profile.proto field numbers (github.com/google/pprof/proto/profile.proto).
const (
	fProfileSampleType    = 1
	fProfileSample        = 2
	fProfileLocation      = 4
	fProfileFunction      = 5
	fProfileStringTable   = 6
	fProfileDurationNanos = 10

	fValueTypeUnit = 2

	fSampleLocationID = 1
	fSampleValue      = 2
	fSampleLabel      = 3

	fLabelKey = 1
	fLabelStr = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

var gzipMagic = []byte{0x1f, 0x8b}

// ParseCPUProfile decodes a (possibly gzipped) pprof CPU profile.
func ParseCPUProfile(data []byte) (*CPUProfile, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}
	return parseProfileProto(data)
}

// rawSample holds one Sample message before string/location resolution.
type rawSample struct {
	leafLoc uint64     // first location_id = leaf frame
	values  []int64    // one per sample_type
	labels  [][2]int64 // (key string idx, str string idx)
}

func parseProfileProto(data []byte) (*CPUProfile, error) {
	var (
		strtab     []string
		unitIdxs   []int64 // sample_type unit string indexes, in order
		samples    []rawSample
		locLeafFn  = map[uint64]uint64{} // location id -> leaf line's function id
		fnName     = map[uint64]int64{}  // function id -> name string idx
		durationNs int64
	)

	d := decoder{b: data}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case fProfileStringTable:
			s, err := d.bytesField(wire)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		case fProfileSampleType:
			msg, err := d.bytesField(wire)
			if err != nil {
				return nil, err
			}
			unit, err := parseValueTypeUnit(msg)
			if err != nil {
				return nil, err
			}
			unitIdxs = append(unitIdxs, unit)
		case fProfileSample:
			msg, err := d.bytesField(wire)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case fProfileLocation:
			msg, err := d.bytesField(wire)
			if err != nil {
				return nil, err
			}
			id, fn, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			locLeafFn[id] = fn
		case fProfileFunction:
			msg, err := d.bytesField(wire)
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			fnName[id] = name
		case fProfileDurationNanos:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			durationNs = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i <= 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}

	// CPU profiles carry sample_type [samples/count, cpu/nanoseconds];
	// pick the value column whose unit is nanoseconds, defaulting to the
	// last column (pprof's own default sample type).
	valueIdx := len(unitIdxs) - 1
	for i, u := range unitIdxs {
		if str(u) == "nanoseconds" {
			valueIdx = i
			break
		}
	}
	if valueIdx < 0 {
		return nil, errors.New("prof: profile has no sample types")
	}

	p := &CPUProfile{
		DurationNanos: durationNs,
		ByLabel:       map[LabelKey]int64{},
		ByFunc:        map[string]int64{},
	}
	for _, s := range samples {
		if valueIdx >= len(s.values) {
			continue
		}
		ns := s.values[valueIdx]
		p.Samples++
		p.TotalNanos += ns

		key := LabelKey{Untagged, Untagged}
		for _, lb := range s.labels {
			switch str(lb[0]) {
			case LabelClass:
				if key.Class == Untagged {
					key.Class = str(lb[1])
				}
			case LabelPhase:
				if key.Phase == Untagged {
					key.Phase = str(lb[1])
				}
			}
		}
		p.ByLabel[key] += ns

		name := "unknown"
		if fid, ok := locLeafFn[s.leafLoc]; ok {
			if n := str(fnName[fid]); n != "" {
				name = n
			}
		}
		p.ByFunc[name] += ns
	}
	return p, nil
}

func parseValueTypeUnit(msg []byte) (int64, error) {
	var unit int64
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return 0, err
		}
		if num == fValueTypeUnit {
			v, err := d.varintField(wire)
			if err != nil {
				return 0, err
			}
			unit = int64(v)
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, err
		}
	}
	return unit, nil
}

func parseSample(msg []byte) (rawSample, error) {
	var s rawSample
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case fSampleLocationID:
			ids, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			if s.leafLoc == 0 && len(ids) > 0 {
				s.leafLoc = ids[0] // first frame is the leaf
			}
		case fSampleValue:
			vs, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			for _, v := range vs {
				s.values = append(s.values, int64(v))
			}
		case fSampleLabel:
			lmsg, err := d.bytesField(wire)
			if err != nil {
				return s, err
			}
			key, strIdx, err := parseLabel(lmsg)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, [2]int64{key, strIdx})
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(msg []byte) (key, strIdx int64, err error) {
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case fLabelKey, fLabelStr:
			v, err := d.varintField(wire)
			if err != nil {
				return 0, 0, err
			}
			if num == fLabelKey {
				key = int64(v)
			} else {
				strIdx = int64(v)
			}
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return key, strIdx, nil
}

// parseLocation returns the location id and the function id of its
// first Line (the innermost frame after inlining expansion).
func parseLocation(msg []byte) (id, fn uint64, err error) {
	d := decoder{b: msg}
	haveFn := false
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case fLocationID:
			v, err := d.varintField(wire)
			if err != nil {
				return 0, 0, err
			}
			id = v
		case fLocationLine:
			lmsg, err := d.bytesField(wire)
			if err != nil {
				return 0, 0, err
			}
			if !haveFn {
				f, err := parseLineFunction(lmsg)
				if err != nil {
					return 0, 0, err
				}
				fn, haveFn = f, true
			}
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, fn, nil
}

func parseLineFunction(msg []byte) (uint64, error) {
	var fn uint64
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return 0, err
		}
		if num == fLineFunctionID {
			v, err := d.varintField(wire)
			if err != nil {
				return 0, err
			}
			fn = v
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, err
		}
	}
	return fn, nil
}

func parseFunction(msg []byte) (id uint64, name int64, err error) {
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case fFunctionID:
			v, err := d.varintField(wire)
			if err != nil {
				return 0, 0, err
			}
			id = v
		case fFunctionName:
			v, err := d.varintField(wire)
			if err != nil {
				return 0, 0, err
			}
			name = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}

// decoder walks protobuf wire format: varint (0), fixed64 (1),
// length-delimited (2), fixed32 (5).
type decoder struct {
	b []byte
	i int
}

var errTruncated = errors.New("prof: truncated profile")

func (d *decoder) done() bool { return d.i >= len(d.b) }

func (d *decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.i >= len(d.b) {
			return 0, errTruncated
		}
		c := d.b[d.i]
		d.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("prof: varint overflow")
		}
	}
}

func (d *decoder) tag() (num int, wire int, err error) {
	t, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(t >> 3), int(t & 7), nil
}

// bytesField returns a length-delimited field's payload.
func (d *decoder) bytesField(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: expected length-delimited field, got wire type %d", wire)
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.i) {
		return nil, errTruncated
	}
	out := d.b[d.i : d.i+int(n)]
	d.i += int(n)
	return out, nil
}

// varintField returns a scalar varint field's value.
func (d *decoder) varintField(wire int) (uint64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: expected varint field, got wire type %d", wire)
	}
	return d.uvarint()
}

// packedVarints reads a repeated varint field in either encoding:
// packed (one length-delimited blob) or a single unpacked element.
func (d *decoder) packedVarints(wire int) ([]uint64, error) {
	switch wire {
	case 0:
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		blob, err := d.bytesField(wire)
		if err != nil {
			return nil, err
		}
		var out []uint64
		p := decoder{b: blob}
		for !p.done() {
			v, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("prof: unexpected wire type %d for repeated varint", wire)
	}
}

func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.uvarint()
		return err
	case 1:
		if len(d.b)-d.i < 8 {
			return errTruncated
		}
		d.i += 8
		return nil
	case 2:
		_, err := d.bytesField(wire)
		return err
	case 5:
		if len(d.b)-d.i < 4 {
			return errTruncated
		}
		d.i += 4
		return nil
	default:
		return fmt.Errorf("prof: unknown wire type %d", wire)
	}
}
