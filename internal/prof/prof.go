// Package prof is the always-on resource-attribution layer: it answers
// "which query class spends the CPU, the allocations, and the wall time,
// and in which phase?" with numbers that reconcile against the query
// log's wall-clock phase breakdown.
//
// The serving layer opens a request account with WithRequest (class +
// request ID), and every phase of query execution — parse, plan, exec,
// serialize, admission — runs inside Phase, which:
//
//   - applies pprof labels (blu_class/blu_phase/blu_request) via
//     runtime/pprof.Do, so CPU profile samples taken while the phase runs
//     carry the attribution;
//   - measures the phase's wall time and heap-allocation delta
//     (runtime/metrics /gc/heap/allocs:bytes) and adds both to the
//     request's Accountant.
//
// Wall time is the exact axis: the duration Phase returns is the same
// value the query log records for that phase, so summing qlog phases
// over a set of request IDs matches the accountant to within the log's
// microsecond rounding. CPU seconds arrive asynchronously from the
// Captor (captor.go), which parses periodic CPU profiles and folds the
// labeled samples back into the accountant; sampling makes them
// statistical, not exact. Allocation deltas read a process-global
// counter, so under concurrent queries a phase may absorb a neighbor's
// allocations — totals stay conserved, per-phase splits are approximate.
package prof

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Label keys applied to profile samples while a phase runs.
const (
	LabelClass   = "blu_class"
	LabelPhase   = "blu_phase"
	LabelRequest = "blu_request"
)

// Untagged is the class/phase bucket for CPU samples that carry no blu_*
// labels (runtime goroutines, the serving loop itself). Keeping them in
// a named bucket conserves the process CPU total across the account.
const Untagged = "untagged"

// PhaseStats is the account of one (class, phase) cell.
type PhaseStats struct {
	Class string
	Phase string
	// Count is the number of Phase invocations recorded.
	Count uint64
	// WallSeconds is the summed wall time of those invocations —
	// the exact counterpart of the query log's phase columns.
	WallSeconds float64
	// CPUSeconds is the profiled on-CPU time attributed by label;
	// statistical (profile sampling), bounded above by wall only in
	// expectation.
	CPUSeconds float64
	// AllocBytes is the summed heap-allocation delta observed across
	// the invocations (approximate under concurrency).
	AllocBytes uint64
}

type phaseKey struct{ class, phase string }

type phaseCell struct {
	count uint64
	wall  float64
	cpu   float64
	alloc uint64
}

// Accountant accumulates per-(class, phase) resource accounts. Safe for
// concurrent use. The zero value is not usable; call NewAccountant.
type Accountant struct {
	mu    sync.Mutex
	cells map[phaseKey]*phaseCell
}

// NewAccountant returns an empty account.
func NewAccountant() *Accountant {
	return &Accountant{cells: make(map[phaseKey]*phaseCell)}
}

func (a *Accountant) cell(class, phase string) *phaseCell {
	k := phaseKey{class, phase}
	c := a.cells[k]
	if c == nil {
		c = &phaseCell{}
		a.cells[k] = c
	}
	return c
}

// AddWall charges d of wall time (and one invocation) to (class, phase)
// without running code under labels. The serving layer uses it for
// queue_wait, where the goroutine is blocked, not executing.
func (a *Accountant) AddWall(class, phase string, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	c := a.cell(class, phase)
	c.count++
	c.wall += d.Seconds()
	a.mu.Unlock()
}

// AddCPU charges profiled CPU seconds to (class, phase). The Captor
// calls it when folding parsed profile samples into the account.
func (a *Accountant) AddCPU(class, phase string, seconds float64) {
	if a == nil || seconds <= 0 {
		return
	}
	a.mu.Lock()
	a.cell(class, phase).cpu += seconds
	a.mu.Unlock()
}

func (a *Accountant) addPhase(class, phase string, wall time.Duration, alloc uint64) {
	a.mu.Lock()
	c := a.cell(class, phase)
	c.count++
	c.wall += wall.Seconds()
	c.alloc += alloc
	a.mu.Unlock()
}

// Snapshot returns the account sorted by class then phase — a
// deterministic order for exposition and tests.
func (a *Accountant) Snapshot() []PhaseStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]PhaseStats, 0, len(a.cells))
	for k, c := range a.cells {
		out = append(out, PhaseStats{
			Class:       k.class,
			Phase:       k.phase,
			Count:       c.count,
			WallSeconds: c.wall,
			CPUSeconds:  c.cpu,
			AllocBytes:  c.alloc,
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// request is the per-request attribution carried in a context.
type request struct {
	acct  *Accountant
	class string
	id    string
}

type ctxKey struct{}

// WithRequest opens a resource account on the context: phases run under
// it are charged to (class, phase) on acct and labeled with the request
// ID in CPU profiles. A nil acct returns ctx unchanged, making the
// whole layer a no-op for unwired callers.
func WithRequest(ctx context.Context, acct *Accountant, class, requestID string) context.Context {
	if acct == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &request{acct: acct, class: class, id: requestID})
}

// FromContext returns the accountant and class bound to ctx, or nil/""
// when no request account is open.
func FromContext(ctx context.Context) (*Accountant, string) {
	r, _ := ctx.Value(ctxKey{}).(*request)
	if r == nil {
		return nil, ""
	}
	return r.acct, r.class
}

// allocSample is the cached runtime/metrics sample descriptor for the
// cumulative heap-allocation counter. The slice is recreated per read
// (metrics.Read mutates it) but the name is fixed.
const allocMetric = "/gc/heap/allocs:bytes"

func allocBytes() uint64 {
	s := []metrics.Sample{{Name: allocMetric}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Phase runs f as one named phase of the request bound to ctx: under
// pprof labels for CPU attribution, with wall time and the heap-alloc
// delta charged to the request's accountant. It returns f's error and
// the measured wall duration — callers feed that same duration to the
// query log so the two surfaces agree exactly.
//
// When ctx carries no request account, f still runs (unlabeled) and the
// duration is still measured, so engine code calls Phase
// unconditionally.
func Phase(ctx context.Context, phase string, f func(context.Context) error) (time.Duration, error) {
	r, _ := ctx.Value(ctxKey{}).(*request)
	if r == nil {
		start := time.Now()
		err := f(ctx)
		return time.Since(start), err
	}
	var err error
	a0 := allocBytes()
	start := time.Now()
	pprof.Do(ctx, pprof.Labels(
		LabelClass, r.class,
		LabelPhase, phase,
		LabelRequest, r.id,
	), func(lctx context.Context) {
		err = f(lctx)
	})
	elapsed := time.Since(start)
	a1 := allocBytes()
	var alloc uint64
	if a1 > a0 {
		alloc = a1 - a0
	}
	r.acct.addPhase(r.class, phase, elapsed, alloc)
	return elapsed, err
}

// AddWallCtx charges wall time to the request account bound to ctx (no
// labels, no alloc delta). No-op without an account.
func AddWallCtx(ctx context.Context, phase string, d time.Duration) {
	if r, _ := ctx.Value(ctxKey{}).(*request); r != nil {
		r.acct.AddWall(r.class, phase, d)
	}
}
