package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAccountantAddWallAndSnapshotOrder(t *testing.T) {
	a := NewAccountant()
	a.AddWall("Simple", "queue_wait", 2*time.Millisecond)
	a.AddWall("Complex", "exec", 5*time.Millisecond)
	a.AddWall("Complex", "exec", 5*time.Millisecond)
	a.AddWall("Complex", "admission", time.Millisecond)
	a.AddCPU("Complex", "exec", 0.25)

	snap := a.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d cells, want 3: %+v", len(snap), snap)
	}
	// Sorted by class then phase.
	want := []struct {
		class, phase string
		count        uint64
		wall         float64
	}{
		{"Complex", "admission", 1, 0.001},
		{"Complex", "exec", 2, 0.010},
		{"Simple", "queue_wait", 1, 0.002},
	}
	for i, w := range want {
		g := snap[i]
		if g.Class != w.class || g.Phase != w.phase || g.Count != w.count {
			t.Fatalf("cell %d = %+v, want %+v", i, g, w)
		}
		if diff := g.WallSeconds - w.wall; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cell %d wall = %v, want %v", i, g.WallSeconds, w.wall)
		}
	}
	if snap[1].CPUSeconds != 0.25 {
		t.Fatalf("cpu = %v, want 0.25", snap[1].CPUSeconds)
	}

	// nil accountant: everything is a no-op.
	var nilAcct *Accountant
	nilAcct.AddWall("x", "y", time.Second)
	nilAcct.AddCPU("x", "y", 1)
	if s := nilAcct.Snapshot(); s != nil {
		t.Fatalf("nil snapshot = %v, want nil", s)
	}
}

func TestPhaseRecordsWallAllocAndLabels(t *testing.T) {
	a := NewAccountant()
	ctx := WithRequest(context.Background(), a, "Intermediate", "req-1")

	var sawClass, sawPhase, sawReq string
	var sink [][]byte
	d, err := Phase(ctx, "exec", func(ctx context.Context) error {
		lbls := func(k string) string {
			v, _ := pprof.Label(ctx, k)
			return v
		}
		sawClass, sawPhase, sawReq = lbls(LabelClass), lbls(LabelPhase), lbls(LabelRequest)
		sink = append(sink, make([]byte, 1<<20))
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	if sawClass != "Intermediate" || sawPhase != "exec" || sawReq != "req-1" {
		t.Fatalf("labels = %q/%q/%q", sawClass, sawPhase, sawReq)
	}
	if d < 2*time.Millisecond {
		t.Fatalf("phase duration %v < slept 2ms", d)
	}
	snap := a.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d cells, want 1", len(snap))
	}
	c := snap[0]
	if c.Class != "Intermediate" || c.Phase != "exec" || c.Count != 1 {
		t.Fatalf("cell = %+v", c)
	}
	if c.WallSeconds != d.Seconds() {
		t.Fatalf("accountant wall %v != returned duration %v — the two must be the same value", c.WallSeconds, d.Seconds())
	}
	if c.AllocBytes < 1<<20 {
		t.Fatalf("alloc delta %d < the 1MB allocated in-phase", c.AllocBytes)
	}
}

func TestPhaseWithoutAccountStillRuns(t *testing.T) {
	ran := false
	d, err := Phase(context.Background(), "exec", func(ctx context.Context) error {
		ran = true
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	if d < time.Millisecond {
		t.Fatalf("duration %v < slept 1ms", d)
	}
	if a, class := FromContext(context.Background()); a != nil || class != "" {
		t.Fatalf("FromContext on empty ctx = %v, %q", a, class)
	}
}

func TestPhasePropagatesError(t *testing.T) {
	a := NewAccountant()
	ctx := WithRequest(context.Background(), a, "Simple", "req-2")
	wantErr := context.DeadlineExceeded
	_, err := Phase(ctx, "exec", func(ctx context.Context) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The phase is still charged: work happened even though it failed.
	if snap := a.Snapshot(); len(snap) != 1 || snap[0].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := WithRequest(context.Background(), a, "Simple", "req")
			for i := 0; i < 50; i++ {
				Phase(ctx, "exec", func(ctx context.Context) error { return nil })
				a.AddWall("Simple", "queue_wait", time.Microsecond)
				a.AddCPU("Simple", "exec", 1e-6)
			}
		}(g)
	}
	wg.Wait()
	snap := a.Snapshot()
	var execCount uint64
	for _, c := range snap {
		if c.Phase == "exec" {
			execCount = c.Count
		}
	}
	if execCount != 400 {
		t.Fatalf("exec count = %d, want 400", execCount)
	}
}

// --- synthetic profile encoding for the parser tests ---

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, num, wire int) []byte {
	return appendUvarint(b, uint64(num)<<3|uint64(wire))
}

func appendBytesField(b []byte, num int, payload []byte) []byte {
	b = appendTag(b, num, 2)
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendVarintField(b []byte, num int, v uint64) []byte {
	b = appendTag(b, num, 0)
	return appendUvarint(b, v)
}

func appendPackedVarints(b []byte, num int, vs ...uint64) []byte {
	var p []byte
	for _, v := range vs {
		p = appendUvarint(p, v)
	}
	return appendBytesField(b, num, p)
}

// syntheticProfile builds a two-sample CPU profile: 3ms labeled
// {blu_class=interactive, blu_phase=exec} and 1ms unlabeled, both with
// leaf function "mainfn".
func syntheticProfile() []byte {
	strtab := []string{"", "samples", "count", "cpu", "nanoseconds",
		LabelClass, "interactive", LabelPhase, "exec", "mainfn"}

	var p []byte
	for _, s := range strtab {
		p = appendBytesField(p, fProfileStringTable, []byte(s))
	}

	var vt1 []byte
	vt1 = appendVarintField(vt1, 1, 1) // type = "samples"
	vt1 = appendVarintField(vt1, fValueTypeUnit, 2)
	p = appendBytesField(p, fProfileSampleType, vt1)
	var vt2 []byte
	vt2 = appendVarintField(vt2, 1, 3) // type = "cpu"
	vt2 = appendVarintField(vt2, fValueTypeUnit, 4)
	p = appendBytesField(p, fProfileSampleType, vt2)

	var fn []byte
	fn = appendVarintField(fn, fFunctionID, 1)
	fn = appendVarintField(fn, fFunctionName, 9)
	p = appendBytesField(p, fProfileFunction, fn)

	var line []byte
	line = appendVarintField(line, fLineFunctionID, 1)
	var loc []byte
	loc = appendVarintField(loc, fLocationID, 1)
	loc = appendBytesField(loc, fLocationLine, line)
	p = appendBytesField(p, fProfileLocation, loc)

	var lbl1 []byte
	lbl1 = appendVarintField(lbl1, fLabelKey, 5)
	lbl1 = appendVarintField(lbl1, fLabelStr, 6)
	var lbl2 []byte
	lbl2 = appendVarintField(lbl2, fLabelKey, 7)
	lbl2 = appendVarintField(lbl2, fLabelStr, 8)

	var s1 []byte
	s1 = appendPackedVarints(s1, fSampleLocationID, 1)
	s1 = appendPackedVarints(s1, fSampleValue, 3, 3_000_000)
	s1 = appendBytesField(s1, fSampleLabel, lbl1)
	s1 = appendBytesField(s1, fSampleLabel, lbl2)
	p = appendBytesField(p, fProfileSample, s1)

	var s2 []byte
	// Unpacked encoding on purpose: the parser must accept both.
	s2 = appendVarintField(s2, fSampleLocationID, 1)
	s2 = appendVarintField(s2, fSampleValue, 1)
	s2 = appendVarintField(s2, fSampleValue, 1_000_000)
	p = appendBytesField(p, fProfileSample, s2)

	p = appendVarintField(p, fProfileDurationNanos, 10_000_000)
	return p
}

func TestParseCPUProfileSynthetic(t *testing.T) {
	raw := syntheticProfile()

	check := func(t *testing.T, data []byte) {
		t.Helper()
		p, err := ParseCPUProfile(data)
		if err != nil {
			t.Fatal(err)
		}
		if p.Samples != 2 || p.TotalNanos != 4_000_000 || p.DurationNanos != 10_000_000 {
			t.Fatalf("samples=%d total=%d duration=%d", p.Samples, p.TotalNanos, p.DurationNanos)
		}
		if got := p.ByLabel[LabelKey{"interactive", "exec"}]; got != 3_000_000 {
			t.Fatalf("labeled nanos = %d, want 3000000 (%v)", got, p.ByLabel)
		}
		if got := p.ByLabel[LabelKey{Untagged, Untagged}]; got != 1_000_000 {
			t.Fatalf("untagged nanos = %d, want 1000000 (%v)", got, p.ByLabel)
		}
		if got := p.ByFunc["mainfn"]; got != 4_000_000 {
			t.Fatalf("mainfn nanos = %d, want 4000000 (%v)", got, p.ByFunc)
		}
	}

	t.Run("raw", func(t *testing.T) { check(t, raw) })
	t.Run("gzipped", func(t *testing.T) {
		var z bytes.Buffer
		zw := gzip.NewWriter(&z)
		zw.Write(raw)
		zw.Close()
		check(t, z.Bytes())
	})
}

func TestParseCPUProfileTruncated(t *testing.T) {
	raw := syntheticProfile()
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		if _, err := ParseCPUProfile(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed without error", cut)
		}
	}
}

// TestCaptorRealProfile drives a real capture window over a labeled
// busy loop. Sample counts depend on the host's SIGPROF delivery, so
// assertions on CPU content are soft; the structural ones are strict.
func TestCaptorRealProfile(t *testing.T) {
	a := NewAccountant()
	c := NewCaptor(a, Options{Keep: 2})

	ctx := WithRequest(context.Background(), a, "burn", "req-burn")
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			Phase(ctx, "exec", func(ctx context.Context) error {
				x := 0
				for i := 0; i < 1_000_000; i++ {
					x += i * i
				}
				_ = x
				return nil
			})
		}
	}()
	defer close(stop)

	for i := 0; i < 3; i++ {
		if _, err := c.CaptureNow(20 * time.Millisecond); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Captures != 3 {
		t.Fatalf("captures = %d, want 3", st.Captures)
	}
	if st.RingLen != 2 {
		t.Fatalf("ring = %d, want bound 2", st.RingLen)
	}
	caps := c.Captures()
	if len(caps) != 2 || caps[0].Seq != 2 || caps[1].Seq != 3 {
		t.Fatalf("ring keeps newest: %+v", caps)
	}
	for _, cp := range caps {
		if len(cp.CPU) == 0 {
			t.Fatal("capture has no CPU profile bytes")
		}
		if _, err := ParseCPUProfile(cp.CPU); err != nil {
			t.Fatalf("ring profile does not parse: %v", err)
		}
	}
	if st.Samples > 0 {
		t.Logf("captured %d samples, %.3fms cpu", st.Samples, float64(st.CPUNanos)/1e6)
	}

	var out bytes.Buffer
	if err := c.WriteHotspots(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "prof hotspots: captures=3") {
		t.Fatalf("digest header missing:\n%s", out.String())
	}
}

func TestHotspotDigestDeterministic(t *testing.T) {
	c := NewCaptor(nil, Options{TopN: 3})
	c.captures, c.skips, c.samples, c.totalNs = 2, 1, 5, 7_500_000
	c.byLabel = map[LabelKey]int64{
		{"interactive", "exec"}: 5_000_000,
		{"batch", "parse"}:      1_500_000,
		{Untagged, Untagged}:    1_000_000,
	}
	c.byFunc = map[string]int64{
		"hot.alpha": 3_000_000,
		"hot.beta":  3_000_000, // tie with alpha: name breaks it
		"hot.gamma": 1_000_000,
		"hot.delta": 500_000, // beyond TopN: dropped
	}

	var a, b bytes.Buffer
	if err := c.WriteHotspots(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteHotspots(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("digest not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	want := "prof hotspots: captures=2 skips=1 ring=0 samples=5 cpu=7.500ms\n" +
		"by class/phase:\n" +
		"  class=interactive      phase=exec         cpu=5.000ms\n" +
		"  class=batch            phase=parse        cpu=1.500ms\n" +
		"  class=untagged         phase=untagged     cpu=1.000ms\n" +
		"top functions (self time):\n" +
		"   1.      3.000ms  hot.alpha\n" +
		"   2.      3.000ms  hot.beta\n" +
		"   3.      1.000ms  hot.gamma\n"
	if a.String() != want {
		t.Fatalf("digest drifted:\n--- got ---\n%s--- want ---\n%s", a.String(), want)
	}
}
