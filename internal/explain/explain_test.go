package explain

import (
	"strings"
	"testing"

	"blugpu/internal/optimizer"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

func TestCollectorOrderAndPrognosisPop(t *testing.T) {
	p1 := optimizer.Prognose([]string{"a"}, optimizer.Estimate{Rows: 100}, optimizer.DefaultThresholds(), 0)
	p2 := optimizer.Prognose([]string{"b"}, optimizer.Estimate{Rows: 200}, optimizer.DefaultThresholds(), 0)
	c := NewCollector([]optimizer.Prognosis{p1, p2})

	// Execution is bottom-up: the deepest aggregate pops first and must
	// get the plan-order *last* prognosis.
	if got := c.NextPrognosis(); got == nil || got.Keys[0] != "b" {
		t.Fatalf("first pop = %+v, want keys [b]", got)
	}
	if got := c.NextPrognosis(); got == nil || got.Keys[0] != "a" {
		t.Fatalf("second pop = %+v, want keys [a]", got)
	}
	if got := c.NextPrognosis(); got != nil {
		t.Fatalf("empty collector pop = %+v, want nil", got)
	}

	c.Record(OpRecord{Op: "scan"})
	c.Record(OpRecord{Op: "groupby"})
	ops := c.Ops()
	if len(ops) != 2 || ops[0].Op != "scan" || ops[1].Op != "groupby" {
		t.Fatalf("ops = %+v", ops)
	}

	// nil collector: every method is a safe no-op.
	var nilC *Collector
	nilC.Record(OpRecord{})
	if nilC.NextPrognosis() != nil || nilC.Ops() != nil {
		t.Fatal("nil collector must be inert")
	}
}

// buildTestInput assembles a synthetic query: a scan feeding a group-by
// that took the GPU path with one kernel, two transfers, one placement
// and an injected-fault retry before succeeding on a second device.
func buildTestInput(t *testing.T) Input {
	t.Helper()
	tr := trace.New()
	tc := tr.StartQuery("q1", 0)

	scan := tc.Begin("op", "scan", 0)
	scan.End(vtime.Time(0.001), trace.Int("rows", 1000))

	op := tc.Begin("op", "groupby", vtime.Time(0.001))
	place := op.Begin("sched", "place", vtime.Time(0.001))
	place.End(vtime.Time(0.001), trace.Int("demand_bytes", 4096), trace.Int("device", 0))
	g1 := op.Begin("gpu", "gpu-groupby attempt 1", vtime.Time(0.001))
	tr.RecordDeviceEvent(g1.ID(), 0, "kernel", "grpby_k1", 0, 100*vtime.Microsecond)
	g1.Annotate(trace.Str("fault", "kernel"))
	g1.End(vtime.Time(0.0011), trace.Str("error", "injected"))
	op.Emit("gpu", "retry-backoff", vtime.Time(0.0011), 100*vtime.Microsecond, trace.Str("cause", "injected"))
	place2 := op.Begin("sched", "place", vtime.Time(0.0012))
	place2.End(vtime.Time(0.0012), trace.Int("demand_bytes", 8192), trace.Int("device", 1))
	g2 := op.Begin("gpu", "gpu-groupby attempt 2", vtime.Time(0.0012))
	tr.RecordDeviceEvent(g2.ID(), 1, "h2d", "h2d", 2048, 10*vtime.Microsecond)
	tr.RecordDeviceEvent(g2.ID(), 1, "kernel", "grpby_k1", 0, 100*vtime.Microsecond)
	tr.RecordDeviceEvent(g2.ID(), 1, "d2h", "d2h", 512, 5*vtime.Microsecond)
	g2.End(vtime.Time(0.0014), trace.Int("device", 1))
	op.End(vtime.Time(0.0014), trace.Int("rows", 8))
	tc.End(vtime.Time(0.0014), trace.Int("rows", 8))

	// Estimates above T1/T2 and within device memory: the plan-time
	// decision is "gpu (eligible)", matching the runtime outcome below.
	pr := optimizer.Prognose([]string{"k"}, optimizer.Estimate{Rows: 100_000, Groups: 64, MemoryDemand: 4096},
		optimizer.DefaultThresholds(), 1<<30)
	ops := []OpRecord{
		{Op: "scan", Detail: "t", Depth: 2, Rows: 1000, Span: scan.ID(), Start: 0, End: vtime.Time(0.001), Modeled: vtime.Duration(0.001)},
		{Op: "groupby", Detail: "gpu/grpby_k1", Depth: 1, Rows: 8, Span: op.ID(),
			Start: vtime.Time(0.001), End: vtime.Time(0.0014), Modeled: vtime.Duration(0.0003),
			Agg: &AggRecord{
				Keys: []string{"k"}, Plan: &pr, InputRows: 1000, EstGroups: 8, ActualGroups: 8,
				MemoryDemand: 4096, Decision: "gpu", Reason: "eligible", Path: "gpu/grpby_k1",
				Attempts: 2, Retries: 1, Devices: []int{0, 1},
			}},
		{Op: "limit", Depth: 0, Rows: 8, Span: 0, Start: vtime.Time(0.0014), End: vtime.Time(0.0014)},
	}
	return Input{
		Query:      "q1",
		SQL:        "SELECT ...",
		Plan:       "limit(aggregate(scan(t)))",
		GPUEnabled: true,
		Thresholds: optimizer.DefaultThresholds(),
		Modeled:    vtime.Duration(0.0014),
		Rows:       8,
		Ops:        ops,
		Spans:      tr.QuerySpans(1),
		Monitor:    Totals{Kernels: 2, Transfers: 2, TransferBytes: 2560, Retries: 1, Faults: 1},
		Host:       HostMemStats{WatermarkBytes: 4096, FreeSpans: 1, MaxFreeSpans: 2, Allocs: 3},
		Orphans:    0,
	}
}

func TestBuildReconciles(t *testing.T) {
	rep := Build(buildTestInput(t))
	if !rep.Reconciled() {
		t.Fatalf("synthetic query must reconcile: unattributed=%d orphans=%d mismatches=%v",
			rep.Unattributed, rep.Orphans, rep.Totals.Mismatches)
	}
	// Display order is plan order: root (limit) first, scan last.
	if rep.Ops[0].Op != "limit" || rep.Ops[2].Op != "scan" {
		t.Fatalf("display order wrong: %s .. %s", rep.Ops[0].Op, rep.Ops[2].Op)
	}
	gb := rep.Ops[1]
	if gb.Kernels != 2 || gb.Transfers != 2 || gb.TransferBytes != 2560 {
		t.Fatalf("groupby device tallies: kernels=%d transfers=%d bytes=%d", gb.Kernels, gb.Transfers, gb.TransferBytes)
	}
	if gb.Placements != 2 || gb.Retries != 1 || gb.Faults != 1 {
		t.Fatalf("groupby robustness tallies: placements=%d retries=%d faults=%d", gb.Placements, gb.Retries, gb.Faults)
	}
	if gb.Groupby == nil || gb.Groupby.Plan == nil || !gb.Groupby.Plan.Agrees {
		t.Fatalf("groupby audit missing or disagreeing: %+v", gb.Groupby)
	}
	// The device high-water is the largest successful reservation.
	if rep.Memory.DeviceHighWaterBytes != 8192 {
		t.Fatalf("device high-water = %d, want 8192", rep.Memory.DeviceHighWaterBytes)
	}
	// The zero-span limit operator still counts as attributed: it charged
	// no time.
	if !rep.Ops[0].Attributed {
		t.Fatal("zero-width limit must be attributed")
	}
}

func TestBuildFlagsMismatches(t *testing.T) {
	in := buildTestInput(t)
	in.Monitor.Kernels = 5   // monitor says 5, spans say 2
	in.Monitor.Fallbacks = 1 // no fallback attr anywhere
	rep := Build(in)
	if rep.Reconciled() {
		t.Fatal("cooked totals must not reconcile")
	}
	joined := strings.Join(rep.Totals.Mismatches, "; ")
	for _, want := range []string{"kernels: monitor=5 spans=2", "fallbacks: monitor=1 spans=0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("mismatches %q missing %q", joined, want)
		}
	}
	if !strings.Contains(rep.Text(), "status: MISMATCH") {
		t.Error("text render must flag the mismatch")
	}
}

func TestBuildCountsUnattributed(t *testing.T) {
	in := buildTestInput(t)
	// An operator that charged time but lost its span.
	in.Ops[0].Span = trace.SpanID(999999)
	rep := Build(in)
	if rep.Unattributed == 0 {
		t.Fatal("dangling span id must count as unattributed")
	}
	if rep.Reconciled() {
		t.Fatal("unattributed run must not reconcile")
	}
	if !strings.Contains(rep.Text(), "UNATTRIBUTED") {
		t.Error("text render must mark the unattributed operator")
	}
}

func TestRenderDeterminismAndJSONRoundTrip(t *testing.T) {
	in := buildTestInput(t)
	r1, r2 := Build(in), Build(in)
	if r1.Text() != r2.Text() {
		t.Fatal("text render differs across identical builds")
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := r2.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON render differs across identical builds")
	}
	if err := ValidateReport(j1); err != nil {
		t.Fatalf("generated JSON must self-validate: %v", err)
	}
	back, err := Decode(j1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Query != r1.Query || len(back.Ops) != len(r1.Ops) || !back.Reconciled() {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestValidateReportRejects(t *testing.T) {
	good, err := Build(buildTestInput(t)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "{", "invalid JSON"},
		{"wrong schema", `{"schema": 99}`, "schema 99"},
		{"no ops", `{"schema": 1, "query": "q", "plan": "p", "thresholds": "t",
			"modeled_ms": 1, "rows": 1, "unattributed": 0, "orphans": 0, "ops": []}`, "no operators"},
	}
	for _, c := range cases {
		if err := ValidateReport([]byte(c.doc)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	// Deleting a required totals key must fail even though the struct
	// would decode fine (the validator is independent of the struct).
	mangled := strings.Replace(string(good), `"kernel_spans"`, `"kernel_spanz"`, 1)
	if err := ValidateReport([]byte(mangled)); err == nil {
		t.Error("renamed totals key must fail validation")
	}
	if err := ValidateReport(good); err != nil {
		t.Errorf("good report rejected: %v", err)
	}
}
