package explain

import (
	"fmt"
	"math"

	"blugpu/internal/optimizer"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// ReportSchema versions the JSON report layout; ValidateReport refuses
// documents from a different schema.
const ReportSchema = 1

// Totals are the monitor-counter deltas the engine attributes to one
// query (snapshots taken immediately before and after execution).
type Totals struct {
	Kernels       uint64
	Transfers     uint64
	TransferBytes int64
	// Retries counts cross-device group-by retries; PlaceRetries counts
	// the scheduler's same-placement retries down its candidate ranking
	// (those have no dedicated span, so they reconcile separately).
	Retries      uint64
	PlaceRetries uint64
	Fallbacks    uint64
	Faults       uint64
}

// HostMemStats is the pinned host segment's per-query accounting.
type HostMemStats struct {
	// WatermarkBytes is the segment's in-use peak during the query (the
	// registry's watermark, re-armed just before execution).
	WatermarkBytes int64
	FreeSpans      int
	MaxFreeSpans   int
	Allocs         uint64
	Fails          uint64
}

// Input is everything Build joins into a report.
type Input struct {
	Query      string
	RequestID  string // serving-layer request ID; empty for direct calls
	SQL        string
	Plan       string
	GPUEnabled bool
	Thresholds optimizer.Thresholds
	Modeled    vtime.Duration
	Rows       int
	// Ops are the engine hooks' records in execution order.
	Ops []OpRecord
	// Spans is the query's complete span subtree (Tracer.QuerySpans) and
	// Root the query-root span id.
	Spans []trace.Span
	Root  trace.SpanID
	// Monitor holds the query's counter deltas; Host the pinned-segment
	// accounting; Orphans the tracer's orphaned-device-event delta.
	Monitor Totals
	Host    HostMemStats
	// Busy is the per-device busy-time delta across the query, split by
	// activity kind. Modeled virtual time, so the rendered resources
	// section stays deterministic.
	Busy    []DeviceBusy
	Orphans uint64
}

// DeviceBusy is one device's modeled busy-time delta over the audited
// query.
type DeviceBusy struct {
	Device int
	Kernel vtime.Duration
	H2D    vtime.Duration
	D2H    vtime.Duration
}

// PlanReport is the plan-time half of a group-by audit.
type PlanReport struct {
	Rows        int64  `json:"rows"`
	Groups      int64  `json:"groups"`
	DemandBytes int64  `json:"demand_bytes"`
	Decision    string `json:"decision"`
	Reason      string `json:"reason"`
	// Agrees reports whether the runtime decision matched the plan-time
	// one — the headline of the decision audit.
	Agrees bool `json:"agrees"`
}

// GroupbyReport is the estimate-accountability and path audit of one
// group-by operator.
type GroupbyReport struct {
	Keys []string    `json:"keys"`
	Plan *PlanReport `json:"plan,omitempty"`
	// InputRows/EstGroups/DemandBytes are what the runtime Figure-3
	// decision actually saw; ActualGroups what the operator produced.
	InputRows     int64   `json:"input_rows"`
	EstGroups     int64   `json:"est_groups"`
	ActualGroups  int64   `json:"actual_groups"`
	RelErr        float64 `json:"rel_err"`
	DemandBytes   int64   `json:"demand_bytes"`
	Decision      string  `json:"decision"`
	Reason        string  `json:"reason"`
	Path          string  `json:"path"`
	Attempts      int     `json:"attempts"`
	Retries       int     `json:"retries"`
	FallbackCause string  `json:"fallback_cause,omitempty"`
	Devices       []int   `json:"devices,omitempty"`
	// Fused-chain audit: present only when the group-by ran as a fused
	// device chain (see AggRecord).
	Fused          bool  `json:"fused,omitempty"`
	FusedStages    int   `json:"fused_stages,omitempty"`
	SavedBytes     int64 `json:"saved_bytes,omitempty"`
	UploadBytes    int64 `json:"upload_bytes,omitempty"`
	ChainHighWater int64 `json:"chain_high_water,omitempty"`
}

// SortReport is the hybrid sort's job-queue breakdown. JobSpans is the
// span-side count of "sort-job" spans under the operator, which must
// equal Jobs in a fully attributed run.
type SortReport struct {
	Jobs      int `json:"jobs"`
	GPUJobs   int `json:"gpu_jobs"`
	CPUJobs   int `json:"cpu_jobs"`
	Requeues  int `json:"requeues"`
	Fallbacks int `json:"fallbacks"`
	MaxDepth  int `json:"max_depth"`
	JobSpans  int `json:"job_spans"`
}

// OpReport is one operator of the audited plan, annotated with both the
// engine-side record and the span-subtree evidence.
type OpReport struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	Depth  int    `json:"depth"`
	Rows   int    `json:"rows"`
	// VtimeMs is the operator's span-bounded virtual time (includes retry
	// backoff); SelfMs is the engine-charged operator cost (excludes it).
	VtimeMs float64 `json:"vtime_ms"`
	SelfMs  float64 `json:"self_ms"`
	// Span-subtree evidence: device work, placement attempts, breaker
	// exclusions and degradations under this operator.
	Kernels         int            `json:"kernels"`
	Transfers       int            `json:"transfers"`
	TransferBytes   int64          `json:"transfer_bytes"`
	Placements      int            `json:"placements"`
	PlaceFailures   int            `json:"place_failures"`
	QuarantineSkips int            `json:"quarantine_skips"`
	Retries         int            `json:"retries"`
	Fallbacks       int            `json:"fallbacks"`
	Faults          int            `json:"faults"`
	Attributed      bool           `json:"attributed"`
	Groupby         *GroupbyReport `json:"groupby,omitempty"`
	Sort            *SortReport    `json:"sort,omitempty"`
}

// TotalsReport is the query-level double-entry ledger: each monitor
// counter next to its span-tree counterpart. Mismatches lists every
// disagreement (empty in a reconciled run).
type TotalsReport struct {
	Kernels           uint64   `json:"kernels"`
	KernelSpans       int      `json:"kernel_spans"`
	Transfers         uint64   `json:"transfers"`
	TransferSpans     int      `json:"transfer_spans"`
	TransferBytes     int64    `json:"transfer_bytes"`
	TransferSpanBytes int64    `json:"transfer_span_bytes"`
	Retries           uint64   `json:"retries"`
	RetrySpans        int      `json:"retry_spans"`
	PlaceRetries      uint64   `json:"place_retries"`
	Fallbacks         uint64   `json:"fallbacks"`
	FallbackSpans     int      `json:"fallback_spans"`
	Faults            uint64   `json:"faults"`
	FaultAttrs        int      `json:"fault_attrs"`
	Placements        int      `json:"placements"`
	PlaceFailures     int      `json:"place_failures"`
	QuarantineSkips   int      `json:"quarantine_skips"`
	Mismatches        []string `json:"mismatches,omitempty"`
}

// MemoryReport is the query's memory accounting.
type MemoryReport struct {
	// DeviceHighWaterBytes is the largest single device reservation the
	// query held (max demand among successful placements).
	DeviceHighWaterBytes int64  `json:"device_high_water_bytes"`
	HostWatermarkBytes   int64  `json:"host_watermark_bytes"`
	HostFreeSpans        int    `json:"host_free_spans"`
	HostMaxFreeSpans     int    `json:"host_max_free_spans"`
	HostAllocs           uint64 `json:"host_allocs"`
	HostAllocFails       uint64 `json:"host_alloc_fails"`
}

// DeviceResourceReport is one device's row of the resources section:
// the modeled busy time this query put on it, split by kind. All values
// are quantized milliseconds of virtual time.
type DeviceResourceReport struct {
	Device   int     `json:"device"`
	BusyMs   float64 `json:"busy_ms"`
	KernelMs float64 `json:"kernel_ms"`
	H2DMs    float64 `json:"h2d_ms"`
	D2HMs    float64 `json:"d2h_ms"`
}

// Report is one query's complete decision audit.
type Report struct {
	Schema int    `json:"schema"`
	Query  string `json:"query"`
	// RequestID joins the report against the query log and the live
	// trace ring; omitted for queries run outside the serving layer.
	RequestID  string  `json:"request_id,omitempty"`
	SQL        string  `json:"sql,omitempty"`
	Plan       string  `json:"plan"`
	GPUEnabled bool    `json:"gpu_enabled"`
	Thresholds string  `json:"thresholds"`
	ModeledMs  float64 `json:"modeled_ms"`
	Rows       int     `json:"rows"`
	// Ops is in display order: the plan root first, its input below it.
	Ops    []OpReport   `json:"ops"`
	Totals TotalsReport `json:"totals"`
	Memory MemoryReport `json:"memory"`
	// Resources is the per-device utilization delta over the query
	// (modeled busy time by kind), one row per engine device. Absent in
	// reports built without device snapshots (schema stays 1 — the field
	// is optional).
	Resources []DeviceResourceReport `json:"resources,omitempty"`
	// Unattributed counts operators that did work without a span plus
	// device-work spans claimed by no operator; Orphans is the tracer's
	// orphaned-event count for the query. Both are 0 in a clean run.
	Unattributed int    `json:"unattributed"`
	Orphans      uint64 `json:"orphans"`
}

// quantMs quantizes a virtual duration to 1e-6 ms (one modeled
// nanosecond) — the same quantum as the bench snapshots, and for the
// same reason: parallel host pools accumulate chunk durations in
// completion order, which drifts by ~1 ulp run to run, and the rendered
// report must be byte-stable.
func quantMs(d vtime.Duration) float64 {
	return math.Round(d.Milliseconds()*1e6) / 1e6
}

// spanStats is what one span subtree contributes to an operator.
type spanStats struct {
	kernels, transfers         int
	transferBytes              int64
	placements, placeFails     int
	quarantineSkips            int
	retries, fallbacks, faults int
	jobSpans                   int
}

// Build joins the engine's operator records, the query's span subtree
// and the monitor deltas into a Report.
func Build(in Input) *Report {
	r := &Report{
		Schema:     ReportSchema,
		Query:      in.Query,
		RequestID:  in.RequestID,
		SQL:        in.SQL,
		Plan:       in.Plan,
		GPUEnabled: in.GPUEnabled,
		Thresholds: in.Thresholds.String(),
		ModeledMs:  quantMs(in.Modeled),
		Rows:       in.Rows,
		Orphans:    in.Orphans,
	}
	for _, b := range in.Busy {
		r.Resources = append(r.Resources, DeviceResourceReport{
			Device:   b.Device,
			BusyMs:   quantMs(b.Kernel + b.H2D + b.D2H),
			KernelMs: quantMs(b.Kernel),
			H2DMs:    quantMs(b.H2D),
			D2HMs:    quantMs(b.D2H),
		})
	}

	// Index the span subtree: id -> span, parent -> children, both in
	// creation order (deterministic).
	byID := make(map[trace.SpanID]*trace.Span, len(in.Spans))
	children := make(map[trace.SpanID][]trace.SpanID, len(in.Spans))
	for i := range in.Spans {
		s := &in.Spans[i]
		byID[s.ID] = s
		children[s.Parent] = append(children[s.Parent], s.ID)
	}

	// tally accumulates one span (not its children) into st.
	tally := func(s *trace.Span, st *spanStats) {
		switch s.Cat {
		case "kernel":
			st.kernels++
		case "transfer":
			st.transfers++
			for _, a := range s.Attrs {
				if a.Key == "bytes" && a.IsInt {
					st.transferBytes += a.Int
				}
			}
		case "sort-job":
			st.jobSpans++
		case "sched":
			if s.Name == "place" {
				ok := false
				for _, a := range s.Attrs {
					if a.Key == "device" {
						ok = true
					}
				}
				if ok {
					st.placements++
				} else {
					st.placeFails++
				}
			}
		case "gpu":
			if s.Name == "retry-backoff" {
				st.retries++
			}
		}
		for _, a := range s.Attrs {
			switch a.Key {
			case "quarantined":
				st.quarantineSkips++
			case "fault":
				st.faults++
			case "fallback", "gpu-error":
				st.fallbacks++
			}
		}
	}

	// walk tallies a whole subtree rooted at id (inclusive), marking every
	// visited span as claimed.
	claimed := make(map[trace.SpanID]bool, len(in.Spans))
	var walk func(id trace.SpanID, st *spanStats)
	walk = func(id trace.SpanID, st *spanStats) {
		s := byID[id]
		if s == nil {
			return
		}
		claimed[id] = true
		tally(s, st)
		for _, c := range children[id] {
			walk(c, st)
		}
	}

	// deviceHighWater scans successful placements for the largest demand.
	var deviceHighWater int64
	for i := range in.Spans {
		s := &in.Spans[i]
		if s.Cat != "sched" || s.Name != "place" {
			continue
		}
		var demand int64
		ok := false
		for _, a := range s.Attrs {
			if a.Key == "demand_bytes" && a.IsInt {
				demand = a.Int
			}
			if a.Key == "device" {
				ok = true
			}
		}
		if ok && demand > deviceHighWater {
			deviceHighWater = demand
		}
	}

	// Per-operator reports, in execution order first.
	unattributed := 0
	execOrder := make([]OpReport, 0, len(in.Ops))
	for _, rec := range in.Ops {
		op := OpReport{
			Op:     rec.Op,
			Detail: rec.Detail,
			Depth:  rec.Depth,
			Rows:   rec.Rows,
			SelfMs: quantMs(rec.Modeled),
		}
		var st spanStats
		if rec.Span != 0 {
			if s := byID[rec.Span]; s != nil {
				walk(rec.Span, &st)
				op.VtimeMs = quantMs(s.End.Sub(s.Start))
				op.Attributed = true
			}
		}
		if !op.Attributed {
			op.VtimeMs = quantMs(rec.End.Sub(rec.Start))
			// An operator that charged no time needs no span to be
			// accounted for (limit does pure bookkeeping).
			if rec.Modeled == 0 && rec.End == rec.Start {
				op.Attributed = true
			} else {
				unattributed++
			}
		}
		op.Kernels = st.kernels
		op.Transfers = st.transfers
		op.TransferBytes = st.transferBytes
		op.Placements = st.placements
		op.PlaceFailures = st.placeFails
		op.QuarantineSkips = st.quarantineSkips
		op.Retries = st.retries
		op.Fallbacks = st.fallbacks
		op.Faults = st.faults
		if rec.Agg != nil {
			a := rec.Agg
			g := &GroupbyReport{
				Keys:          a.Keys,
				InputRows:     a.InputRows,
				EstGroups:     a.EstGroups,
				ActualGroups:  a.ActualGroups,
				RelErr:        math.Round(a.RelErr*1e6) / 1e6,
				DemandBytes:   a.MemoryDemand,
				Decision:      a.Decision,
				Reason:        a.Reason,
				Path:          a.Path,
				Attempts:      a.Attempts,
				Retries:       a.Retries,
				FallbackCause: a.FallbackCause,
				Devices:       a.Devices,
			}
			if a.Fused {
				g.Fused = true
				g.FusedStages = a.FusedStages
				g.SavedBytes = a.SavedBytes
				g.UploadBytes = a.UploadBytes
				g.ChainHighWater = a.ChainHighWater
			}
			if a.Plan != nil {
				g.Plan = &PlanReport{
					Rows:        a.Plan.Estimate.Rows,
					Groups:      a.Plan.Estimate.Groups,
					DemandBytes: a.Plan.Estimate.MemoryDemand,
					Decision:    a.Plan.Decision.String(),
					Reason:      a.Plan.Reason.String(),
					Agrees:      a.Plan.Decision.String() == a.Decision,
				}
			}
			op.Groupby = g
		}
		if rec.Sort != nil {
			s := rec.Sort
			op.Sort = &SortReport{
				Jobs: s.Jobs, GPUJobs: s.GPUJobs, CPUJobs: s.CPUJobs,
				Requeues: s.Requeues, Fallbacks: s.Fallbacks, MaxDepth: s.MaxDepth,
				JobSpans: st.jobSpans,
			}
		}
		execOrder = append(execOrder, op)
	}
	// Display order: plan root first.
	r.Ops = make([]OpReport, 0, len(execOrder))
	for i := len(execOrder) - 1; i >= 0; i-- {
		r.Ops = append(r.Ops, execOrder[i])
	}

	// Query-level span totals over the whole subtree, then device-work
	// spans no operator claimed.
	var qt spanStats
	for i := range in.Spans {
		tally(&in.Spans[i], &qt)
	}
	for i := range in.Spans {
		s := &in.Spans[i]
		if claimed[s.ID] {
			continue
		}
		if s.Cat == "kernel" || s.Cat == "transfer" {
			unattributed++
		}
	}
	r.Unattributed = unattributed

	t := TotalsReport{
		Kernels:           in.Monitor.Kernels,
		KernelSpans:       qt.kernels,
		Transfers:         in.Monitor.Transfers,
		TransferSpans:     qt.transfers,
		TransferBytes:     in.Monitor.TransferBytes,
		TransferSpanBytes: qt.transferBytes,
		Retries:           in.Monitor.Retries,
		RetrySpans:        qt.retries,
		PlaceRetries:      in.Monitor.PlaceRetries,
		Fallbacks:         in.Monitor.Fallbacks,
		FallbackSpans:     qt.fallbacks,
		Faults:            in.Monitor.Faults,
		FaultAttrs:        qt.faults,
		Placements:        qt.placements,
		PlaceFailures:     qt.placeFails,
		QuarantineSkips:   qt.quarantineSkips,
	}
	mismatch := func(name string, counter uint64, spans int) {
		if counter != uint64(spans) {
			t.Mismatches = append(t.Mismatches,
				fmt.Sprintf("%s: monitor=%d spans=%d", name, counter, spans))
		}
	}
	mismatch("kernels", t.Kernels, t.KernelSpans)
	mismatch("transfers", t.Transfers, t.TransferSpans)
	if t.TransferBytes != t.TransferSpanBytes {
		t.Mismatches = append(t.Mismatches,
			fmt.Sprintf("transfer-bytes: monitor=%d spans=%d", t.TransferBytes, t.TransferSpanBytes))
	}
	mismatch("retries", t.Retries, t.RetrySpans)
	mismatch("fallbacks", t.Fallbacks, t.FallbackSpans)
	mismatch("faults", t.Faults, t.FaultAttrs)
	r.Totals = t

	r.Memory = MemoryReport{
		DeviceHighWaterBytes: deviceHighWater,
		HostWatermarkBytes:   in.Host.WatermarkBytes,
		HostFreeSpans:        in.Host.FreeSpans,
		HostMaxFreeSpans:     in.Host.MaxFreeSpans,
		HostAllocs:           in.Host.Allocs,
		HostAllocFails:       in.Host.Fails,
	}
	return r
}

// Reconciled reports whether the double-entry ledger balanced and every
// operator was attributed.
func (r *Report) Reconciled() bool {
	return r.Unattributed == 0 && r.Orphans == 0 && len(r.Totals.Mismatches) == 0
}
