package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders the report as a byte-stable text tree: the plan
// root first, inputs indented below it, every operator annotated with
// planned-vs-actual facts. Only quantized virtual-time values and
// deterministically ordered counters appear, so repeated runs of the
// same query render identically (the golden tests lock this).
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXPLAIN ANALYZE %s\n", r.Query)
	if r.RequestID != "" {
		fmt.Fprintf(w, "request: %s\n", r.RequestID)
	}
	if r.SQL != "" {
		fmt.Fprintf(w, "sql: %s\n", r.SQL)
	}
	fmt.Fprintf(w, "plan: %s\n", r.Plan)
	gpu := "off"
	if r.GPUEnabled {
		gpu = "on"
	}
	fmt.Fprintf(w, "gpu: %s (thresholds %s)\n", gpu, r.Thresholds)
	fmt.Fprintf(w, "modeled: %.3f ms, %d operators, %d result rows\n", r.ModeledMs, len(r.Ops), r.Rows)

	fmt.Fprintf(w, "\noperators:\n")
	for _, op := range r.Ops {
		indent := strings.Repeat("  ", op.Depth+1)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s%s", indent, op.Op)
		if op.Detail != "" {
			fmt.Fprintf(&sb, " [%s]", op.Detail)
		}
		fmt.Fprintf(&sb, "  rows=%d vtime=%.3fms self=%.3fms", op.Rows, op.VtimeMs, op.SelfMs)
		if op.Kernels > 0 || op.Transfers > 0 {
			fmt.Fprintf(&sb, " kernels=%d transfers=%d (%d B)", op.Kernels, op.Transfers, op.TransferBytes)
		}
		if op.Placements > 0 || op.PlaceFailures > 0 {
			fmt.Fprintf(&sb, " placements=%d/%d", op.Placements, op.Placements+op.PlaceFailures)
		}
		if op.QuarantineSkips > 0 {
			fmt.Fprintf(&sb, " quarantine-skips=%d", op.QuarantineSkips)
		}
		if op.Retries > 0 {
			fmt.Fprintf(&sb, " retries=%d", op.Retries)
		}
		if op.Fallbacks > 0 {
			fmt.Fprintf(&sb, " fallbacks=%d", op.Fallbacks)
		}
		if op.Faults > 0 {
			fmt.Fprintf(&sb, " faults=%d", op.Faults)
		}
		if !op.Attributed {
			sb.WriteString(" UNATTRIBUTED")
		}
		fmt.Fprintf(w, "%s\n", sb.String())

		sub := indent + "    "
		if g := op.Groupby; g != nil {
			if g.Plan != nil {
				agree := "DISAGREES"
				if g.Plan.Agrees {
					agree = "agrees"
				}
				fmt.Fprintf(w, "%splan: est rows<=%d groups~%d demand=%d B -> %s (%s) [%s]\n",
					sub, g.Plan.Rows, g.Plan.Groups, g.Plan.DemandBytes, g.Plan.Decision, g.Plan.Reason, agree)
			}
			fmt.Fprintf(w, "%srun:  rows=%d kmv~%d actual=%d err=%.2f%% demand=%d B -> %s (%s)\n",
				sub, g.InputRows, g.EstGroups, g.ActualGroups, g.RelErr*100, g.DemandBytes, g.Decision, g.Reason)
			fmt.Fprintf(w, "%sexec: path=%s", sub, g.Path)
			if g.Attempts > 0 {
				fmt.Fprintf(w, " attempts=%d retries=%d devices=%v", g.Attempts, g.Retries, g.Devices)
			}
			if g.FallbackCause != "" {
				fmt.Fprintf(w, " fallback=%q", g.FallbackCause)
			}
			fmt.Fprintf(w, "\n")
			if g.Fused {
				fmt.Fprintf(w, "%sfused: stages=%d saved=%d B upload=%d B chain-high-water=%d B\n",
					sub, g.FusedStages, g.SavedBytes, g.UploadBytes, g.ChainHighWater)
			}
		}
		if s := op.Sort; s != nil {
			fmt.Fprintf(w, "%sjobs: total=%d gpu=%d cpu=%d requeues=%d fallbacks=%d maxdepth=%d spans=%d\n",
				sub, s.Jobs, s.GPUJobs, s.CPUJobs, s.Requeues, s.Fallbacks, s.MaxDepth, s.JobSpans)
		}
	}

	m := r.Memory
	fmt.Fprintf(w, "\nmemory:\n")
	fmt.Fprintf(w, "  device reservation high-water: %d B\n", m.DeviceHighWaterBytes)
	fmt.Fprintf(w, "  pinned host: peak %d B, allocs %d (%d failed), free spans %d (max %d)\n",
		m.HostWatermarkBytes, m.HostAllocs, m.HostAllocFails, m.HostFreeSpans, m.HostMaxFreeSpans)

	if len(r.Resources) > 0 {
		fmt.Fprintf(w, "\nresources:\n")
		for _, d := range r.Resources {
			fmt.Fprintf(w, "  gpu%d: busy %.3f ms (kernel %.3f, h2d %.3f, d2h %.3f)\n",
				d.Device, d.BusyMs, d.KernelMs, d.H2DMs, d.D2HMs)
		}
	}

	t := r.Totals
	fmt.Fprintf(w, "\nreconciliation (monitor = span tree):\n")
	fmt.Fprintf(w, "  kernels:        %d = %d\n", t.Kernels, t.KernelSpans)
	fmt.Fprintf(w, "  transfers:      %d = %d (%d B = %d B)\n", t.Transfers, t.TransferSpans, t.TransferBytes, t.TransferSpanBytes)
	fmt.Fprintf(w, "  retries:        %d = %d (+%d placement retries)\n", t.Retries, t.RetrySpans, t.PlaceRetries)
	fmt.Fprintf(w, "  cpu-fallbacks:  %d = %d\n", t.Fallbacks, t.FallbackSpans)
	fmt.Fprintf(w, "  faults:         %d = %d\n", t.Faults, t.FaultAttrs)
	fmt.Fprintf(w, "  placements: %d ok, %d failed, %d quarantine skips\n", t.Placements, t.PlaceFailures, t.QuarantineSkips)
	fmt.Fprintf(w, "  unattributed operators: %d, orphaned events: %d\n", r.Unattributed, r.Orphans)
	if r.Reconciled() {
		fmt.Fprintf(w, "  status: RECONCILED\n")
	} else {
		fmt.Fprintf(w, "  status: MISMATCH\n")
		for _, msg := range t.Mismatches {
			fmt.Fprintf(w, "    %s\n", msg)
		}
	}
}

// Text renders the report to a string.
func (r *Report) Text() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}

// JSON renders the report as indented JSON with a trailing newline.
// Struct field order is fixed and no maps are involved, so the output
// is byte-stable for a given report.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a JSON report.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	return &r, nil
}

// ValidateReport checks a JSON document against the report schema the
// way the trace and metrics validators do: parsing the raw JSON
// independently of the Report struct, so a marshalling bug cannot
// validate itself.
func ValidateReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("explain: invalid JSON: %w", err)
	}
	num := func(key string) (float64, error) {
		v, ok := doc[key]
		if !ok {
			return 0, fmt.Errorf("explain: missing %q", key)
		}
		f, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("explain: %q is not a number", key)
		}
		return f, nil
	}
	schema, err := num("schema")
	if err != nil {
		return err
	}
	if int(schema) != ReportSchema {
		return fmt.Errorf("explain: schema %d, want %d", int(schema), ReportSchema)
	}
	for _, key := range []string{"query", "plan", "thresholds"} {
		v, ok := doc[key]
		if !ok {
			return fmt.Errorf("explain: missing %q", key)
		}
		if _, ok := v.(string); !ok {
			return fmt.Errorf("explain: %q is not a string", key)
		}
	}
	for _, key := range []string{"modeled_ms", "rows", "unattributed", "orphans"} {
		if _, err := num(key); err != nil {
			return err
		}
	}
	opsV, ok := doc["ops"]
	if !ok {
		return fmt.Errorf("explain: missing \"ops\"")
	}
	ops, ok := opsV.([]any)
	if !ok {
		return fmt.Errorf("explain: \"ops\" is not an array")
	}
	if len(ops) == 0 {
		return fmt.Errorf("explain: report has no operators")
	}
	for i, opV := range ops {
		op, ok := opV.(map[string]any)
		if !ok {
			return fmt.Errorf("explain: ops[%d] is not an object", i)
		}
		if _, ok := op["op"].(string); !ok {
			return fmt.Errorf("explain: ops[%d] missing string \"op\"", i)
		}
		for _, key := range []string{"depth", "rows", "vtime_ms", "self_ms", "kernels", "transfers"} {
			if _, ok := op[key].(float64); !ok {
				return fmt.Errorf("explain: ops[%d] (%v) missing number %q", i, op["op"], key)
			}
		}
		if _, ok := op["attributed"].(bool); !ok {
			return fmt.Errorf("explain: ops[%d] missing bool \"attributed\"", i)
		}
	}
	for _, key := range []string{"totals", "memory"} {
		v, ok := doc[key]
		if !ok {
			return fmt.Errorf("explain: missing %q", key)
		}
		if _, ok := v.(map[string]any); !ok {
			return fmt.Errorf("explain: %q is not an object", key)
		}
	}
	totals := doc["totals"].(map[string]any)
	for _, key := range []string{"kernels", "kernel_spans", "transfers", "transfer_spans", "fallbacks", "fallback_spans"} {
		if _, ok := totals[key].(float64); !ok {
			return fmt.Errorf("explain: totals missing number %q", key)
		}
	}
	memory := doc["memory"].(map[string]any)
	for _, key := range []string{"device_high_water_bytes", "host_watermark_bytes", "host_free_spans"} {
		if _, ok := memory[key].(float64); !ok {
			return fmt.Errorf("explain: memory missing number %q", key)
		}
	}
	return nil
}
