// Package explain implements EXPLAIN ANALYZE for the hybrid engine: a
// per-query decision audit that reconciles what the optimizer planned
// with what actually ran.
//
// The engine already produces three partial views of one execution —
// the tracer's span tree (which operator, which attempt, which kernel),
// the monitor's aggregate counters (how much, fleet-wide), and the
// optimizer's Figure-3 decisions (where work *should* run). None of
// them answers the operational question "was the plan right for this
// query?". This package joins all three: lightweight hooks in the
// engine record per-operator facts into a Collector while the query
// runs, and Build then cross-checks them against the query's span
// subtree and the monitor deltas, producing a Report whose per-operator
// kernel/transfer/fallback counts sum exactly to the query totals.
//
// Reports render two ways, following the repo's exporter conventions:
// a byte-stable text tree (golden-locked — only virtual-time values and
// deterministic orderings appear) and JSON with an independent
// validator (ValidateReport), the same pattern as trace.ValidateChrome
// and metrics.ValidateExposition.
package explain

import (
	"sync"

	"blugpu/internal/optimizer"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// AggRecord is the group-by-specific slice of an operator record: the
// estimate-accountability and path-decision facts only the engine's
// aggregate executor knows.
type AggRecord struct {
	Keys []string
	// Plan is the plan-time prognosis (from table statistics), when the
	// planner produced one for this group-by.
	Plan *optimizer.Prognosis
	// InputRows is the exact input cardinality the runtime decision saw.
	InputRows int64
	// EstGroups is the KMV sketch's group-count estimate; ActualGroups
	// is what the group-by actually produced. RelErr is
	// |EstGroups-ActualGroups|/ActualGroups (0 when ActualGroups is 0).
	EstGroups    int64
	ActualGroups int64
	RelErr       float64
	// MemoryDemand is the exact device demand the runtime decision saw.
	MemoryDemand int64
	// Decision/Reason are the runtime Figure-3 outcome; Path is what
	// finally executed ("gpu/<kernel>" or "cpu (<reason>)").
	Decision string
	Reason   string
	Path     string
	// Attempts counts device placements tried; Retries the cross-device
	// retries among them; FallbackCause is the terminal GPU error that
	// routed the query to the CPU (empty when the GPU path succeeded or
	// was never tried).
	Attempts      int
	Retries       int
	FallbackCause string
	// Devices lists the device ids of successful placements, in order.
	Devices []int
	// Fused marks a group-by that ran as a fused device chain: its input
	// operators executed on-device under one chain-level reservation, and
	// H2D collapsed to column-cache misses. FusedStages counts the fused
	// pipeline stages ahead of the group-by; SavedBytes/UploadBytes are
	// the H2D bytes avoided (cache hits) vs moved (cache fills);
	// ChainHighWater is the chain reservation's peak allocation.
	Fused          bool
	FusedStages    int
	SavedBytes     int64
	UploadBytes    int64
	ChainHighWater int64
}

// SortRecord is the sort-specific slice of an operator record: the
// hybrid job-queue breakdown.
type SortRecord struct {
	Jobs      int
	GPUJobs   int
	CPUJobs   int
	Requeues  int // duplicate ranges the GPU handed back
	Fallbacks int // GPU-eligible jobs that ended up on the host
	MaxDepth  int
}

// OpRecord is one executed operator as the engine's hooks saw it.
type OpRecord struct {
	Op     string
	Detail string
	// Depth is the operator's depth in the plan tree (the root operator
	// is depth 0); execution order is deepest-first.
	Depth int
	Rows  int
	// Span is the operator's trace span id (0 when the operator emits no
	// span, e.g. limit). Start/End bound the operator on the query's
	// virtual timeline; Modeled is the engine-charged self time (which
	// excludes retry backoff — the span bounds include it).
	Span       trace.SpanID
	Start, End vtime.Time
	Modeled    vtime.Duration
	Agg        *AggRecord
	Sort       *SortRecord
}

// Collector accumulates operator records during one query execution.
// The engine threads one through its per-query context; hooks are
// no-ops when no collector is attached. Safe for concurrent use (the
// engine is single-threaded per query today, but hooks follow the
// tracer's locking discipline).
type Collector struct {
	mu        sync.Mutex
	ops       []OpRecord
	prognoses []optimizer.Prognosis
}

// NewCollector returns a collector pre-loaded with the plan-time
// prognoses in plan order (root first). Execution visits aggregates
// bottom-up, so NextPrognosis pops from the back.
func NewCollector(prognoses []optimizer.Prognosis) *Collector {
	return &Collector{prognoses: prognoses}
}

// Record appends one operator record in execution order.
func (c *Collector) Record(rec OpRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops = append(c.ops, rec)
}

// NextPrognosis hands out the next plan-time prognosis in execution
// (bottom-up) order, nil when none remain.
func (c *Collector) NextPrognosis() *optimizer.Prognosis {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.prognoses) == 0 {
		return nil
	}
	p := c.prognoses[len(c.prognoses)-1]
	c.prognoses = c.prognoses[:len(c.prognoses)-1]
	return &p
}

// Ops returns the recorded operators in execution order.
func (c *Collector) Ops() []OpRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]OpRecord(nil), c.ops...)
}
