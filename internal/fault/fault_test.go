package fault

import (
	"math"
	"sync"
	"testing"
)

// Two injectors with the same seed make identical decisions regardless
// of how calls interleave across devices.
func TestDeterministic(t *testing.T) {
	a := New(Config{Seed: 7, Kernel: 0.5, Reserve: 0.25})
	b := New(Config{Seed: 7, Kernel: 0.5, Reserve: 0.25})

	var seqA, seqB []bool
	// a: device 0 then device 1; b: interleaved. Per-(site,device)
	// sequences must still match.
	for n := 0; n < 200; n++ {
		seqA = append(seqA, a.Fail(Kernel, 0))
	}
	for n := 0; n < 200; n++ {
		seqA = append(seqA, a.Fail(Kernel, 1))
	}
	var b0, b1 []bool
	for n := 0; n < 200; n++ {
		b1 = append(b1, b.Fail(Kernel, 1))
		b0 = append(b0, b.Fail(Kernel, 0))
	}
	seqB = append(b0, b1...)
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d differs between interleavings", i)
		}
	}
}

func TestRates(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		inj := New(Config{Seed: 42, H2D: rate})
		const n = 5000
		hits := 0
		for i := 0; i < n; i++ {
			if inj.Fail(H2D, 0) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.03 {
			t.Errorf("rate %.2f: observed %.3f", rate, got)
		}
		if c := inj.Counts(); c.H2D != uint64(hits) || c.Total() != uint64(hits) {
			t.Errorf("rate %.2f: counts %+v, want %d", rate, c, hits)
		}
	}
}

func TestOtherSitesUnaffected(t *testing.T) {
	inj := New(Config{Seed: 1, Kernel: 1})
	for i := 0; i < 100; i++ {
		if inj.Fail(Reserve, 0) || inj.Fail(H2D, 0) || inj.Fail(D2H, 0) {
			t.Fatal("fault injected at a zero-rate site")
		}
	}
	if !inj.Fail(Kernel, 0) {
		t.Fatal("rate-1 site did not fault")
	}
}

func TestDeadDevice(t *testing.T) {
	inj := New(Config{Seed: 3})
	if inj.Fail(Kernel, 1) {
		t.Fatal("zero-rate injector faulted")
	}
	inj.KillDevice(1)
	if !inj.Dead(1) || inj.Dead(0) {
		t.Fatal("Dead() wrong after KillDevice(1)")
	}
	for _, s := range Sites() {
		if !inj.Fail(s, 1) {
			t.Fatalf("dead device did not fault at %s", s)
		}
		if inj.Fail(s, 0) {
			t.Fatalf("living device faulted at %s", s)
		}
	}
	if got := inj.Counts().Total(); got != 4 {
		t.Fatalf("counts after dead-device ops: %d, want 4", got)
	}
	inj.ReviveDevice(1)
	if inj.Dead(1) || inj.Fail(Kernel, 1) {
		t.Fatal("device still failing after revive")
	}
}

// Nil injectors never inject and never panic.
func TestNilSafe(t *testing.T) {
	var inj *Injector
	if inj.Fail(Kernel, 0) || inj.Dead(0) {
		t.Fatal("nil injector injected")
	}
	inj.KillDevice(0)
	inj.ReviveDevice(0)
	if inj.Counts().Total() != 0 {
		t.Fatal("nil injector counted")
	}
}

// Concurrent use is safe and every fired fault is counted exactly once.
func TestConcurrent(t *testing.T) {
	inj := New(Config{Seed: 9, Kernel: 0.3, Reserve: 0.3})
	const workers, per = 8, 500
	hits := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if inj.Fail(Kernel, w%2) {
					hits[w]++
				}
				if inj.Fail(Reserve, w%2) {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, h := range hits {
		total += h
	}
	if got := inj.Counts().Total(); got != total {
		t.Fatalf("counts %d, callers observed %d", got, total)
	}
}
