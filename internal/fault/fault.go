// Package fault provides a deterministic, seedable fault injector for
// the simulated GPU substrate. The paper's infrastructure layer
// (Section 2.1.1) is defined by its failure discipline — reserve the
// whole device-memory demand up front and, on any failure, wait or fall
// back to the CPU path — and this package exists to *prove* that
// discipline: gpu.Device consults an Injector at every operation site
// (reservation, H2D/D2H transfer, kernel launch), and an injector can
// also declare a whole device lost mid-run.
//
// Decisions are deterministic and interleaving-independent: whether the
// n-th operation at a given site on a given device fails depends only on
// (seed, site, device, n), never on goroutine scheduling. Two runs with
// the same seed and the same per-device operation sequences inject the
// same faults, which is what makes differential fault-sweep testing
// reproducible.
//
// All methods are safe for concurrent use and nil-safe: a nil *Injector
// never injects, so callers need no guards.
package fault

import (
	"fmt"
	"sync"
)

// Site identifies a GPU operation site where faults can be injected.
type Site int

const (
	// Reserve is the up-front device-memory reservation (models an
	// out-of-memory or allocator failure).
	Reserve Site = iota
	// H2D is a host-to-device transfer.
	H2D
	// D2H is a device-to-host transfer.
	D2H
	// Kernel is a kernel launch/execution fault.
	Kernel

	numSites
)

func (s Site) String() string {
	switch s {
	case Reserve:
		return "reserve"
	case H2D:
		return "h2d"
	case D2H:
		return "d2h"
	case Kernel:
		return "kernel"
	default:
		return fmt.Sprintf("site(%d)", int(s))
	}
}

// Sites lists every injectable site, in a stable order.
func Sites() []Site { return []Site{Reserve, H2D, D2H, Kernel} }

// Config sets the seed and the per-site fault probabilities, each in
// [0, 1]. A zero Config injects nothing.
type Config struct {
	// Seed drives the deterministic decision hash. Two injectors with
	// the same seed and rates make identical decisions.
	Seed uint64
	// Per-site fault probabilities.
	Reserve float64
	H2D     float64
	D2H     float64
	Kernel  float64
}

func (c Config) rate(s Site) float64 {
	switch s {
	case Reserve:
		return c.Reserve
	case H2D:
		return c.H2D
	case D2H:
		return c.D2H
	case Kernel:
		return c.Kernel
	default:
		return 0
	}
}

// Counts reports how many faults an injector has fired, by site.
type Counts struct {
	Reserve uint64
	H2D     uint64
	D2H     uint64
	Kernel  uint64
}

// Total sums the per-site counts.
func (c Counts) Total() uint64 { return c.Reserve + c.H2D + c.D2H + c.Kernel }

type callKey struct {
	site   Site
	device int
}

// Injector decides, per operation, whether to inject a fault. The zero
// value and nil both inject nothing.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	calls    map[callKey]uint64
	injected [numSites]uint64
	dead     map[int]bool
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:   cfg,
		calls: make(map[callKey]uint64),
		dead:  make(map[int]bool),
	}
}

// Fail decides whether the current operation at site on device fails,
// advancing that (site, device) operation counter. Operations on a dead
// device always fail and are counted as injected faults.
func (i *Injector) Fail(site Site, device int) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.calls == nil {
		i.calls = make(map[callKey]uint64)
	}
	k := callKey{site: site, device: device}
	n := i.calls[k]
	i.calls[k] = n + 1
	if i.dead[device] {
		i.injected[site]++
		return true
	}
	rate := i.cfg.rate(site)
	if rate <= 0 {
		return false
	}
	if rate >= 1 || unit(i.cfg.Seed, site, device, n) < rate {
		i.injected[site]++
		return true
	}
	return false
}

// KillDevice marks device lost: every subsequent operation on it fails
// until ReviveDevice.
func (i *Injector) KillDevice(device int) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.dead == nil {
		i.dead = make(map[int]bool)
	}
	i.dead[device] = true
}

// ReviveDevice undoes KillDevice.
func (i *Injector) ReviveDevice(device int) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.dead, device)
}

// Dead reports whether device is currently marked lost.
func (i *Injector) Dead(device int) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.dead[device]
}

// Counts returns the faults injected so far, by site.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return Counts{
		Reserve: i.injected[Reserve],
		H2D:     i.injected[H2D],
		D2H:     i.injected[D2H],
		Kernel:  i.injected[Kernel],
	}
}

// unit hashes (seed, site, device, n) to a uniform float64 in [0, 1)
// with a splitmix64 finalizer, so each decision is an independent,
// reproducible coin flip.
func unit(seed uint64, site Site, device int, n uint64) float64 {
	x := seed
	x ^= 0x9e3779b97f4a7c15 * (uint64(site) + 1)
	x ^= 0xbf58476d1ce4e5b9 * (uint64(int64(device)) + 0x100)
	x ^= n * 0x94d049bb133111eb
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
