package monitor

import (
	"sort"

	"blugpu/internal/vtime"
)

// DecisionStats counts the Figure-3 optimizer outcomes recorded under
// one (decision, reason) pair — the placement-policy breakdown behind
// blu_optimizer_decisions_total.
type DecisionStats struct {
	Decision string
	Reason   string
	Count    uint64
}

// KMVErrorStats summarizes the KMV group-count estimator's relative
// error |estimated-actual|/actual across every group-by that ran: the
// estimate-accountability numbers EXPLAIN ANALYZE and the Prometheus
// blu_kmv_relative_error histogram are built from.
type KMVErrorStats struct {
	Count   uint64
	Sum     float64 // sum of relative errors
	Max     float64
	Buckets []HistBucket
}

// Mean returns the average relative error, 0 when empty.
func (k KMVErrorStats) Mean() float64 {
	if k.Count == 0 {
		return 0
	}
	return k.Sum / float64(k.Count)
}

// RecordDecision tallies one optimizer path decision (e.g. "gpu",
// "eligible") at group-by execution time.
func (m *Monitor) RecordDecision(decision, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.decisions == nil {
		m.decisions = make(map[[2]string]uint64)
	}
	m.decisions[[2]string{decision, reason}]++
}

// Decisions returns the optimizer decision counts sorted by decision
// then reason, so exports are deterministic.
func (m *Monitor) Decisions() []DecisionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DecisionStats, 0, len(m.decisions))
	for k, n := range m.decisions {
		out = append(out, DecisionStats{Decision: k[0], Reason: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Decision != out[j].Decision {
			return out[i].Decision < out[j].Decision
		}
		return out[i].Reason < out[j].Reason
	})
	return out
}

// RecordKMVError records one group-by's estimator relative error. The
// value is dimensionless; it reuses the log-scale histogram machinery,
// which covers ratios just as well as latencies.
func (m *Monitor) RecordKMVError(relErr float64) {
	if relErr < 0 {
		relErr = -relErr
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// vtime.Duration is a bare float64 of seconds, so a ratio maps onto
	// it losslessly: bucket upper bounds come back out as plain ratios.
	m.kmvErr.Observe(vtime.Duration(relErr))
}

// KMVError returns the estimator relative-error summary.
func (m *Monitor) KMVError() KMVErrorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return KMVErrorStats{
		Count:   m.kmvErr.Count(),
		Sum:     m.kmvErr.Total().Seconds(),
		Max:     m.kmvErr.Max().Seconds(),
		Buckets: m.kmvErr.Buckets(),
	}
}
