package monitor

import (
	"strings"
	"testing"

	"blugpu/internal/vtime"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// 90 fast samples, 10 slow ones: p50 must land near the fast
	// cluster, p99 near the slow one (bucket resolution is 2x).
	for i := 0; i < 90; i++ {
		h.Observe(10 * vtime.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * vtime.Millisecond)
	}
	p50, p95, p99 := h.Quantiles()
	if p50 < 5*vtime.Microsecond || p50 > 20*vtime.Microsecond {
		t.Errorf("p50 = %s, want ~10µs", p50)
	}
	if p95 < 5*vtime.Millisecond || p95 > 10*vtime.Millisecond {
		t.Errorf("p95 = %s, want ~10ms", p95)
	}
	if p99 < p95 {
		t.Errorf("p99 %s < p95 %s", p99, p95)
	}
	if h.Count() != 100 || h.Max() != 10*vtime.Millisecond {
		t.Errorf("count=%d max=%s", h.Count(), h.Max())
	}
	// Quantiles never exceed the observed maximum.
	if h.Quantile(1) > h.Max() {
		t.Errorf("p100 %s > max %s", h.Quantile(1), h.Max())
	}
}

func TestHistExtremes(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(vtime.Duration(1e30))
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); q > h.Max() {
		t.Errorf("quantile %s exceeds max", q)
	}
}

func TestMemSampleCap(t *testing.T) {
	m := New()
	const total = 100000
	for i := 0; i < total; i++ {
		m.RecordMemSample(1, vtime.Time(float64(i)), int64(i), total)
	}
	s := m.MemSeries(1)
	if len(s) == 0 || len(s) > MaxMemSamples {
		t.Fatalf("series length = %d, want in (0, %d]", len(s), MaxMemSamples)
	}
	// Downsampling must keep the series in time order and spread across
	// the whole run, not just the head.
	for i := 1; i < len(s); i++ {
		if s[i].At.Before(s[i-1].At) {
			t.Fatalf("series out of order at %d", i)
		}
	}
	if last := s[len(s)-1].At; last < vtime.Time(total/2) {
		t.Errorf("downsampled series ends at %v, want coverage of the whole run", last)
	}
}

func TestQueryRollups(t *testing.T) {
	m := New()
	m.RecordQuery("Q1", 10*vtime.Millisecond, true)
	m.RecordQuery("Q1", 30*vtime.Millisecond, false)
	m.RecordQuery("Q2", vtime.Second, true)
	qs := m.Queries()
	if len(qs) != 2 || qs[0].Name != "Q1" || qs[1].Name != "Q2" {
		t.Fatalf("queries = %+v", qs)
	}
	if qs[0].Count != 2 || qs[0].GPURuns != 1 || qs[0].Total != 40*vtime.Millisecond {
		t.Errorf("Q1 rollup = %+v", qs[0])
	}
	if qs[0].P50 <= 0 || qs[0].P99 < qs[0].P50 {
		t.Errorf("Q1 quantiles = %+v", qs[0])
	}
}

func TestReportThroughputAndDegraded(t *testing.T) {
	m := New()
	var sb strings.Builder
	m.Report(&sb)
	out := sb.String()
	// Degraded-op counts appear in the main table even when all-zero
	// (no separate robustness section in that case).
	if !strings.Contains(out, "degraded ops: retries=0 cpu-fallbacks=0 faults=0 breaker-trips=0") {
		t.Errorf("report missing zero degraded-op line:\n%s", out)
	}
	if strings.Contains(out, "robustness:") {
		t.Errorf("empty report should not print the robustness detail section:\n%s", out)
	}
	// Transfer throughput prints alongside raw totals.
	if !strings.Contains(out, "MB/s") {
		t.Errorf("report missing transfer throughput:\n%s", out)
	}
}
