package monitor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReportGolden locks the monitor's human-readable report to a golden
// file. The report prints only modeled (virtual-time) values, so its
// bytes are deterministic for a fixed event sequence; ordering drift in
// any accessor shows up here as a diff.
func TestReportGolden(t *testing.T) {
	m := New()
	for _, k := range []struct {
		name string
		d    vtime.Duration
	}{
		{"grpby_k1", 2 * vtime.Millisecond},
		{"grpby_k1", 3 * vtime.Millisecond},
		{"grpby_k2", 500 * vtime.Microsecond},
		{"radix_partition", vtime.Millisecond},
	} {
		m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: k.name, Modeled: k.d})
	}
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferH2D, Bytes: 1 << 20, Modeled: 100 * vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferD2H, Bytes: 1 << 18, Modeled: 40 * vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserveFail})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "kernel"})
	m.RecordEvaluator("LCOG", 4096, 250*vtime.Microsecond)
	m.RecordEvaluator("HASH", 4096, 700*vtime.Microsecond)
	m.RecordQuery("bd-complex-1", 4*vtime.Millisecond, true)
	m.RecordQuery("bd-complex-1", 5*vtime.Millisecond, false)
	m.RecordQuery("rolap-07", 2*vtime.Millisecond, true)
	m.RecordGPURetry("place", true)
	m.RecordFallback("groupby", false)
	m.RecordBreaker(1, true)
	m.RecordMemSample(0, vtime.Time(0.001), 1<<20, 1<<30)
	m.RecordMemSample(0, vtime.Time(0.002), 3<<20, 1<<30)

	var got bytes.Buffer
	m.Report(&got)
	// The report must render identically on a second call: accessors
	// must not mutate state or vary their ordering.
	var again bytes.Buffer
	m.Report(&again)
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("two reports of the same monitor differ")
	}

	path := filepath.Join("testdata", "report_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test ./internal/monitor -update`)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("report drifted from golden (run -update after reviewing)\n--- got ---\n%s", got.Bytes())
	}
}
