package monitor

import (
	"strings"
	"sync"
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

func TestKernelAggregation(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "groupby_k1", Modeled: 10 * vtime.Millisecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "groupby_k1", Modeled: 30 * vtime.Millisecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "radix_sort", Modeled: 5 * vtime.Millisecond})

	ks := m.Kernels()
	if len(ks) != 2 {
		t.Fatalf("kernels = %d, want 2", len(ks))
	}
	if ks[0].Name != "groupby_k1" || ks[0].Count != 2 || ks[0].Total != 40*vtime.Millisecond {
		t.Errorf("top kernel = %+v", ks[0])
	}
	if ks[0].Max != 30*vtime.Millisecond {
		t.Errorf("max = %v, want 30ms", ks[0].Max)
	}
}

func TestTransferAggregation(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferH2D, Bytes: 1024, Modeled: vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferH2D, Bytes: 2048, Modeled: vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferD2H, Bytes: 512, Modeled: vtime.Microsecond})
	h2d, d2h := m.Transfers()
	if h2d.Count != 2 || h2d.Bytes != 3072 {
		t.Errorf("h2d = %+v", h2d)
	}
	if d2h.Count != 1 || d2h.Bytes != 512 {
		t.Errorf("d2h = %+v", d2h)
	}
}

func TestReserveCounts(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve, Bytes: 100})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserveFail, Bytes: 100})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve, Bytes: 100})
	ok, fail := m.ReserveCounts()
	if ok != 2 || fail != 1 {
		t.Errorf("reserves = (%d, %d), want (2, 1)", ok, fail)
	}
}

func TestEvaluators(t *testing.T) {
	m := New()
	m.RecordEvaluator("HASH", 1000, vtime.Millisecond)
	m.RecordEvaluator("HASH", 2000, vtime.Millisecond)
	m.RecordEvaluator("MEMCPY", 500, 10*vtime.Millisecond)
	evals := m.Evaluators()
	if len(evals) != 2 {
		t.Fatalf("evals = %d, want 2", len(evals))
	}
	if evals[0].Name != "MEMCPY" {
		t.Errorf("top evaluator by time = %s, want MEMCPY", evals[0].Name)
	}
	if evals[1].Rows != 3000 || evals[1].Count != 2 {
		t.Errorf("HASH stats = %+v", evals[1])
	}
}

func TestMemSeries(t *testing.T) {
	m := New()
	m.RecordMemSample(0, vtime.Time(1), 4<<30, 12<<30)
	m.RecordMemSample(0, vtime.Time(2), 8<<30, 12<<30)
	m.RecordMemSample(1, vtime.Time(1), 1<<30, 12<<30)
	if got := m.Devices(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Devices = %v", got)
	}
	s := m.MemSeries(0)
	if len(s) != 2 || s[1].Used != 8<<30 {
		t.Errorf("series = %+v", s)
	}
	// Returned slice is a copy.
	s[0].Used = 0
	if m.MemSeries(0)[0].Used != 4<<30 {
		t.Error("MemSeries must return a copy")
	}
}

func TestResetAndReport(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "k", Modeled: vtime.Second})
	m.RecordEvaluator("LCOG", 5, vtime.Millisecond)
	var sb strings.Builder
	m.Report(&sb)
	out := sb.String()
	for _, want := range []string{"kernels:", "k", "transfers:", "reservations:", "LCOG"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	m.Reset()
	if len(m.Kernels()) != 0 || len(m.Evaluators()) != 0 {
		t.Error("Reset did not clear telemetry")
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "k", Modeled: vtime.Microsecond})
				m.RecordEvaluator("HASH", 1, vtime.Nanosecond)
				m.RecordMemSample(0, vtime.Time(i), int64(i), 100)
			}
		}()
	}
	wg.Wait()
	if ks := m.Kernels(); ks[0].Count != 8000 {
		t.Errorf("kernel count = %d, want 8000", ks[0].Count)
	}
	if n := len(m.MemSeries(0)); n == 0 || n > MaxMemSamples {
		t.Errorf("mem samples = %d, want in (0, %d]", n, MaxMemSamples)
	}
}

func TestReportIncludesMemorySummary(t *testing.T) {
	m := New()
	m.RecordMemSample(0, vtime.Time(1), 6<<30, 12<<30)
	m.RecordMemSample(0, vtime.Time(2), 0, 12<<30)
	var sb strings.Builder
	m.Report(&sb)
	out := sb.String()
	if !strings.Contains(out, "device memory:") || !strings.Contains(out, "gpu0") {
		t.Errorf("report missing memory summary:\n%s", out)
	}
	if !strings.Contains(out, "50.0% of capacity") {
		t.Errorf("report missing peak percentage:\n%s", out)
	}
}

// TestResetClearsEverything populates every aggregate the monitor owns —
// kernel/evaluator/query histograms, transfer totals, reservation
// counts, memory series, fault/retry/fallback/breaker counters — and
// demands that Reset returns each accessor to its zero state, then that
// recording resumes from scratch rather than on stale histograms.
func TestResetClearsEverything(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventKernel, Name: "k", Modeled: vtime.Millisecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferH2D, Bytes: 1 << 20, Modeled: vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventTransferD2H, Bytes: 1 << 10, Modeled: vtime.Microsecond})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserve})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventReserveFail})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "kernel"})
	m.RecordEvaluator("HASH", 100, vtime.Millisecond)
	m.RecordQuery("q1", vtime.Millisecond, true)
	m.RecordGPURetry("place", true)
	m.RecordFallback("groupby", false)
	m.RecordBreaker(0, true)
	m.RecordBreaker(0, false)
	m.RecordMemSample(0, vtime.Time(1), 1<<20, 1<<30)

	m.Reset()

	if n := len(m.Kernels()); n != 0 {
		t.Errorf("Kernels after Reset = %d entries", n)
	}
	if n := len(m.Evaluators()); n != 0 {
		t.Errorf("Evaluators after Reset = %d entries", n)
	}
	if n := len(m.Queries()); n != 0 {
		t.Errorf("Queries after Reset = %d entries", n)
	}
	h2d, d2h := m.Transfers()
	if h2d.Count != 0 || h2d.Bytes != 0 || d2h.Count != 0 || d2h.Bytes != 0 {
		t.Errorf("Transfers after Reset: h2d=%+v d2h=%+v", h2d, d2h)
	}
	if ok, fail := m.ReserveCounts(); ok != 0 || fail != 0 {
		t.Errorf("ReserveCounts after Reset = %d, %d", ok, fail)
	}
	if n := len(m.Devices()); n != 0 {
		t.Errorf("Devices after Reset = %v", m.Devices())
	}
	if n := len(m.MemSeries(0)); n != 0 {
		t.Errorf("MemSeries after Reset = %d samples", n)
	}
	if n := m.FaultTotal(); n != 0 {
		t.Errorf("FaultTotal after Reset = %d", n)
	}
	if fc := m.FaultCounts(); len(fc) != 0 {
		t.Errorf("FaultCounts after Reset = %v", fc)
	}
	if n := len(m.Retries()); n != 0 {
		t.Errorf("Retries after Reset = %d entries", n)
	}
	if n := len(m.Fallbacks()); n != 0 {
		t.Errorf("Fallbacks after Reset = %d entries", n)
	}
	if trips, recov := m.BreakerCounts(); trips != 0 || recov != 0 {
		t.Errorf("BreakerCounts after Reset = %d, %d", trips, recov)
	}

	// Recording after Reset must start fresh histograms, not resume the
	// old ones: one sample, count 1, one populated bucket.
	m.RecordQuery("q1", 2*vtime.Millisecond, false)
	qs := m.Queries()
	if len(qs) != 1 || qs[0].Count != 1 {
		t.Fatalf("post-Reset query stats = %+v", qs)
	}
	if len(qs[0].Buckets) != 1 || qs[0].Buckets[0].CumCount != 1 {
		t.Errorf("post-Reset histogram carries stale buckets: %+v", qs[0].Buckets)
	}
	if qs[0].Max != 2*vtime.Millisecond {
		t.Errorf("post-Reset max = %v, want 2ms", qs[0].Max)
	}
}
