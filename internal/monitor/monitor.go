// Package monitor implements the engine-integrated GPU performance
// monitoring of paper Section 2.3.
//
// Off-the-shelf tools (nvidia-smi) cannot attribute device time to the
// query operators of a host application, so the paper's prototype grew its
// own monitoring, folded into the engine's existing monitor. This package
// plays that role: it is the gpu.EventSink for every device, aggregates
// kernel and transfer timings by name, tracks evaluator timings on the
// host side, and samples device-memory utilization over virtual time (the
// series behind Figure 9).
package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// KernelStats aggregates executions of one named kernel.
type KernelStats struct {
	Name  string
	Count uint64
	Total vtime.Duration
	Max   vtime.Duration
}

// TransferStats aggregates one transfer direction.
type TransferStats struct {
	Count uint64
	Bytes int64
	Total vtime.Duration
}

// EvalStats aggregates one host-side evaluator (LCOG, HASH, MEMCPY, ...).
type EvalStats struct {
	Name  string
	Count uint64
	Rows  int64
	Total vtime.Duration
}

// MemSample is one point of the device-memory utilization series.
type MemSample struct {
	At    vtime.Time
	Used  int64
	Total int64
}

// Monitor collects all performance telemetry. Safe for concurrent use.
type Monitor struct {
	mu           sync.Mutex
	kernels      map[string]*KernelStats
	h2d, d2h     TransferStats
	evals        map[string]*EvalStats
	reserves     uint64
	reserveFails uint64
	memSamples   map[int][]MemSample
	degrade      degradeState
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{
		kernels:    make(map[string]*KernelStats),
		evals:      make(map[string]*EvalStats),
		memSamples: make(map[int][]MemSample),
		degrade:    newDegradeState(),
	}
}

// RecordGPUEvent implements gpu.EventSink.
func (m *Monitor) RecordGPUEvent(e gpu.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Kind {
	case gpu.EventKernel:
		ks := m.kernels[e.Name]
		if ks == nil {
			ks = &KernelStats{Name: e.Name}
			m.kernels[e.Name] = ks
		}
		ks.Count++
		ks.Total += e.Modeled
		if e.Modeled > ks.Max {
			ks.Max = e.Modeled
		}
	case gpu.EventTransferH2D:
		m.h2d.Count++
		m.h2d.Bytes += e.Bytes
		m.h2d.Total += e.Modeled
	case gpu.EventTransferD2H:
		m.d2h.Count++
		m.d2h.Bytes += e.Bytes
		m.d2h.Total += e.Modeled
	case gpu.EventReserve:
		m.reserves++
	case gpu.EventReserveFail:
		m.reserveFails++
	case gpu.EventFault:
		m.recordFault(e)
	}
}

// RecordEvaluator accumulates one host-side evaluator execution.
func (m *Monitor) RecordEvaluator(name string, rows int64, d vtime.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.evals[name]
	if es == nil {
		es = &EvalStats{Name: name}
		m.evals[name] = es
	}
	es.Count++
	es.Rows += rows
	es.Total += d
}

// RecordMemSample appends one device-memory utilization sample.
func (m *Monitor) RecordMemSample(device int, at vtime.Time, used, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.memSamples[device] = append(m.memSamples[device], MemSample{At: at, Used: used, Total: total})
}

// Kernels returns aggregated kernel stats sorted by total time descending.
func (m *Monitor) Kernels() []KernelStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]KernelStats, 0, len(m.kernels))
	for _, ks := range m.kernels {
		out = append(out, *ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Evaluators returns aggregated evaluator stats sorted by total time
// descending.
func (m *Monitor) Evaluators() []EvalStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EvalStats, 0, len(m.evals))
	for _, es := range m.evals {
		out = append(out, *es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Transfers returns (host-to-device, device-to-host) aggregates.
func (m *Monitor) Transfers() (TransferStats, TransferStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h2d, m.d2h
}

// ReserveCounts returns (successful, failed) device-memory reservations.
func (m *Monitor) ReserveCounts() (uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserves, m.reserveFails
}

// MemSeries returns the memory-utilization samples for one device, in
// insertion order.
func (m *Monitor) MemSeries(device int) []MemSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.memSamples[device]
	out := make([]MemSample, len(s))
	copy(out, s)
	return out
}

// Devices returns the ids of devices with memory samples, ascending.
func (m *Monitor) Devices() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.memSamples))
	for d := range m.memSamples {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Reset clears all telemetry.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kernels = make(map[string]*KernelStats)
	m.evals = make(map[string]*EvalStats)
	m.h2d, m.d2h = TransferStats{}, TransferStats{}
	m.reserves, m.reserveFails = 0, 0
	m.memSamples = make(map[int][]MemSample)
	m.degrade = newDegradeState()
}

// Report writes a human-readable summary, the moral equivalent of the
// paper's internal tuning tool output.
func (m *Monitor) Report(w io.Writer) {
	kernels := m.Kernels()
	evals := m.Evaluators()
	h2d, d2h := m.Transfers()
	ok, fail := m.ReserveCounts()

	fmt.Fprintf(w, "=== GPU performance monitor ===\n")
	fmt.Fprintf(w, "kernels:\n")
	for _, k := range kernels {
		avg := vtime.Duration(0)
		if k.Count > 0 {
			avg = k.Total / vtime.Duration(float64(k.Count))
		}
		fmt.Fprintf(w, "  %-24s calls=%-6d total=%-12s avg=%-12s max=%s\n",
			k.Name, k.Count, k.Total, avg, k.Max)
	}
	fmt.Fprintf(w, "transfers:\n")
	fmt.Fprintf(w, "  h2d: %d copies, %.1f MB, %s\n", h2d.Count, float64(h2d.Bytes)/(1<<20), h2d.Total)
	fmt.Fprintf(w, "  d2h: %d copies, %.1f MB, %s\n", d2h.Count, float64(d2h.Bytes)/(1<<20), d2h.Total)
	fmt.Fprintf(w, "reservations: %d ok, %d failed\n", ok, fail)
	if len(evals) > 0 {
		fmt.Fprintf(w, "evaluators:\n")
		for _, e := range evals {
			fmt.Fprintf(w, "  %-24s calls=%-6d rows=%-12d total=%s\n", e.Name, e.Count, e.Rows, e.Total)
		}
	}
	if devs := m.Devices(); len(devs) > 0 {
		fmt.Fprintf(w, "device memory:\n")
		for _, d := range devs {
			series := m.MemSeries(d)
			var peak, total int64
			for _, s := range series {
				if s.Used > peak {
					peak = s.Used
				}
				total = s.Total
			}
			pctOf := 0.0
			if total > 0 {
				pctOf = float64(peak) / float64(total) * 100
			}
			fmt.Fprintf(w, "  gpu%d: %d samples, peak %.1f MB (%.1f%% of capacity)\n",
				d, len(series), float64(peak)/(1<<20), pctOf)
		}
	}
	m.reportRobustness(w)
}
