// Package monitor implements the engine-integrated GPU performance
// monitoring of paper Section 2.3.
//
// Off-the-shelf tools (nvidia-smi) cannot attribute device time to the
// query operators of a host application, so the paper's prototype grew its
// own monitoring, folded into the engine's existing monitor. This package
// plays that role: it is the gpu.EventSink for every device, aggregates
// kernel and transfer timings by name, tracks evaluator timings on the
// host side, keeps log-scale latency histograms (p50/p95/p99 per kernel,
// per evaluator and per query), and samples device-memory utilization
// over virtual time (the series behind Figure 9).
package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// KernelStats aggregates executions of one named kernel.
type KernelStats struct {
	Name  string
	Count uint64
	Total vtime.Duration
	Max   vtime.Duration
	// P50/P95/P99 are log-scale-histogram latency quantiles.
	P50, P95, P99 vtime.Duration
	// Buckets is the cumulative latency distribution (see Hist.Buckets).
	Buckets []HistBucket
}

// TransferStats aggregates one transfer direction.
type TransferStats struct {
	Count uint64
	Bytes int64
	Total vtime.Duration
}

// Throughput returns bytes per virtual-time second, 0 when no time was
// spent.
func (t TransferStats) Throughput() float64 {
	if t.Total <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.Total.Seconds()
}

// EvalStats aggregates one host-side evaluator (LCOG, HASH, MEMCPY, ...).
type EvalStats struct {
	Name          string
	Count         uint64
	Rows          int64
	Total         vtime.Duration
	Max           vtime.Duration
	P50, P95, P99 vtime.Duration
	Buckets       []HistBucket
}

// QueryStats is the per-query rollup: every execution recorded under
// one query name (workload id or auto-assigned q<N>).
type QueryStats struct {
	Name          string
	Count         uint64
	Total         vtime.Duration
	Max           vtime.Duration
	P50, P95, P99 vtime.Duration
	Buckets       []HistBucket
	// GPURuns counts the executions that took a device path.
	GPURuns uint64
}

// MemSample is one point of the device-memory utilization series.
type MemSample struct {
	At    vtime.Time
	Used  int64
	Total int64
}

// MaxMemSamples bounds the per-device memory series. When the cap is
// hit the series is stride-downsampled: every second retained sample is
// dropped and the recording stride doubles, so a run of any length
// keeps an evenly spread series of at most MaxMemSamples points.
const MaxMemSamples = 2048

// memSeries is the bounded per-device sample store.
type memSeries struct {
	samples []MemSample
	stride  int // record every stride-th offered sample
	seen    int // samples offered since the last stride change
}

type kernelAgg struct {
	name string
	hist Hist
}

type evalAgg struct {
	name string
	rows int64
	hist Hist
}

type queryAgg struct {
	name    string
	hist    Hist
	gpuRuns uint64
}

// Monitor collects all performance telemetry. Safe for concurrent use.
type Monitor struct {
	mu           sync.Mutex
	kernels      map[string]*kernelAgg
	h2d, d2h     TransferStats
	evals        map[string]*evalAgg
	queries      map[string]*queryAgg
	queryOrder   []string
	reserves     uint64
	reserveFails uint64
	memSamples   map[int]*memSeries
	degrade      degradeState
	// decisions counts optimizer outcomes by (decision, reason); kmvErr
	// is the KMV estimator relative-error distribution (see estimator.go).
	decisions map[[2]string]uint64
	kmvErr    Hist
	// wall is the wall-clock (not modeled) per-query latency
	// distribution, recorded by the engine around each execution — the
	// first instrument of the ROADMAP's wall-clock campaign.
	wall Hist
	// fusedChains / fusedSaved / fusedUploaded count completed fused
	// device chains and their H2D bytes avoided (cache hits) vs moved
	// (cache fills).
	fusedChains   uint64
	fusedSaved    int64
	fusedUploaded int64
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{
		kernels:    make(map[string]*kernelAgg),
		evals:      make(map[string]*evalAgg),
		queries:    make(map[string]*queryAgg),
		memSamples: make(map[int]*memSeries),
		degrade:    newDegradeState(),
	}
}

// RecordGPUEvent implements gpu.EventSink.
func (m *Monitor) RecordGPUEvent(e gpu.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Kind {
	case gpu.EventKernel:
		ks := m.kernels[e.Name]
		if ks == nil {
			ks = &kernelAgg{name: e.Name}
			m.kernels[e.Name] = ks
		}
		ks.hist.Observe(e.Modeled)
	case gpu.EventTransferH2D:
		m.h2d.Count++
		m.h2d.Bytes += e.Bytes
		m.h2d.Total += e.Modeled
	case gpu.EventTransferD2H:
		m.d2h.Count++
		m.d2h.Bytes += e.Bytes
		m.d2h.Total += e.Modeled
	case gpu.EventReserve:
		m.reserves++
	case gpu.EventReserveFail:
		m.reserveFails++
	case gpu.EventFault:
		m.recordFault(e)
	}
}

// RecordEvaluator accumulates one host-side evaluator execution.
func (m *Monitor) RecordEvaluator(name string, rows int64, d vtime.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.evals[name]
	if es == nil {
		es = &evalAgg{name: name}
		m.evals[name] = es
	}
	es.rows += rows
	es.hist.Observe(d)
}

// RecordQuery accumulates one completed query execution under name.
func (m *Monitor) RecordQuery(name string, modeled vtime.Duration, gpuUsed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qs := m.queries[name]
	if qs == nil {
		qs = &queryAgg{name: name}
		m.queries[name] = qs
		m.queryOrder = append(m.queryOrder, name)
	}
	qs.hist.Observe(modeled)
	if gpuUsed {
		qs.gpuRuns++
	}
}

// RecordQueryWall accumulates one query's wall-clock execution time into
// the global wall-latency histogram. Wall time is real elapsed time, not
// modeled: it varies run to run and is reported but never gated on.
func (m *Monitor) RecordQueryWall(d vtime.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wall.Observe(d)
}

// WallHist returns a copy of the wall-clock per-query latency histogram.
// Callers can diff two snapshots with Hist.Sub to get quantiles for just
// the queries run in between.
func (m *Monitor) WallHist() Hist {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wall
}

// RecordFusedChain accumulates one completed fused device chain: saved is
// the H2D bytes avoided because the chain's input columns were already
// device-resident, uploaded the bytes its cache fills actually moved.
func (m *Monitor) RecordFusedChain(saved, uploaded int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fusedChains++
	m.fusedSaved += saved
	m.fusedUploaded += uploaded
}

// FusedStats returns (chains completed, H2D bytes saved, H2D bytes
// uploaded by cache fills) for the fused data path.
func (m *Monitor) FusedStats() (chains uint64, saved, uploaded int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fusedChains, m.fusedSaved, m.fusedUploaded
}

// RecordMemSample appends one device-memory utilization sample, subject
// to the MaxMemSamples stride-downsampling cap.
func (m *Monitor) RecordMemSample(device int, at vtime.Time, used, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.memSamples[device]
	if ms == nil {
		ms = &memSeries{stride: 1}
		m.memSamples[device] = ms
	}
	ms.seen++
	if (ms.seen-1)%ms.stride != 0 {
		return
	}
	ms.samples = append(ms.samples, MemSample{At: at, Used: used, Total: total})
	if len(ms.samples) >= MaxMemSamples {
		// Compact: keep every second sample, double the stride.
		half := len(ms.samples) / 2
		for i := 0; i < half; i++ {
			ms.samples[i] = ms.samples[2*i]
		}
		ms.samples = ms.samples[:half]
		ms.stride *= 2
		ms.seen = 0
	}
}

func kernelSnapshot(a *kernelAgg) KernelStats {
	p50, p95, p99 := a.hist.Quantiles()
	return KernelStats{
		Name: a.name, Count: a.hist.Count(), Total: a.hist.Total(),
		Max: a.hist.Max(), P50: p50, P95: p95, P99: p99,
		Buckets: a.hist.Buckets(),
	}
}

// Kernels returns aggregated kernel stats sorted by total time
// descending, ties broken by name so the order is deterministic.
func (m *Monitor) Kernels() []KernelStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]KernelStats, 0, len(m.kernels))
	for _, ks := range m.kernels {
		out = append(out, kernelSnapshot(ks))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Evaluators returns aggregated evaluator stats sorted by total time
// descending, ties broken by name so the order is deterministic.
func (m *Monitor) Evaluators() []EvalStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EvalStats, 0, len(m.evals))
	for _, es := range m.evals {
		p50, p95, p99 := es.hist.Quantiles()
		out = append(out, EvalStats{
			Name: es.name, Count: es.hist.Count(), Rows: es.rows,
			Total: es.hist.Total(), Max: es.hist.Max(), P50: p50, P95: p95, P99: p99,
			Buckets: es.hist.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Queries returns per-query rollups in first-seen order.
func (m *Monitor) Queries() []QueryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryStats, 0, len(m.queryOrder))
	for _, name := range m.queryOrder {
		qs := m.queries[name]
		p50, p95, p99 := qs.hist.Quantiles()
		out = append(out, QueryStats{
			Name: qs.name, Count: qs.hist.Count(), Total: qs.hist.Total(),
			Max: qs.hist.Max(), P50: p50, P95: p95, P99: p99,
			Buckets: qs.hist.Buckets(), GPURuns: qs.gpuRuns,
		})
	}
	return out
}

// Transfers returns (host-to-device, device-to-host) aggregates.
func (m *Monitor) Transfers() (TransferStats, TransferStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h2d, m.d2h
}

// ReserveCounts returns (successful, failed) device-memory reservations.
func (m *Monitor) ReserveCounts() (uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserves, m.reserveFails
}

// MemSeries returns the memory-utilization samples for one device, in
// insertion order.
func (m *Monitor) MemSeries(device int) []MemSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.memSamples[device]
	if ms == nil {
		return nil
	}
	out := make([]MemSample, len(ms.samples))
	copy(out, ms.samples)
	return out
}

// Devices returns the ids of devices with memory samples, ascending.
func (m *Monitor) Devices() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.memSamples))
	for d := range m.memSamples {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Reset clears all telemetry.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kernels = make(map[string]*kernelAgg)
	m.evals = make(map[string]*evalAgg)
	m.queries = make(map[string]*queryAgg)
	m.queryOrder = nil
	m.h2d, m.d2h = TransferStats{}, TransferStats{}
	m.reserves, m.reserveFails = 0, 0
	m.memSamples = make(map[int]*memSeries)
	m.degrade = newDegradeState()
	m.decisions = nil
	m.kmvErr = Hist{}
	m.wall = Hist{}
	m.fusedChains, m.fusedSaved, m.fusedUploaded = 0, 0, 0
}

// Report writes a human-readable summary, the moral equivalent of the
// paper's internal tuning tool output.
func (m *Monitor) Report(w io.Writer) {
	kernels := m.Kernels()
	evals := m.Evaluators()
	queries := m.Queries()
	h2d, d2h := m.Transfers()
	ok, fail := m.ReserveCounts()

	fmt.Fprintf(w, "=== GPU performance monitor ===\n")
	fmt.Fprintf(w, "kernels:\n")
	for _, k := range kernels {
		avg := vtime.Duration(0)
		if k.Count > 0 {
			avg = k.Total / vtime.Duration(float64(k.Count))
		}
		fmt.Fprintf(w, "  %-24s calls=%-6d total=%-12s avg=%-12s p50=%-10s p95=%-10s p99=%-10s max=%s\n",
			k.Name, k.Count, k.Total, avg, k.P50, k.P95, k.P99, k.Max)
	}
	writeDir := func(label string, t TransferStats) {
		fmt.Fprintf(w, "  %s: %d copies, %.1f MB, %s (%.1f MB/s)\n",
			label, t.Count, float64(t.Bytes)/(1<<20), t.Total, t.Throughput()/(1<<20))
	}
	fmt.Fprintf(w, "transfers:\n")
	writeDir("h2d", h2d)
	writeDir("d2h", d2h)
	fmt.Fprintf(w, "reservations: %d ok, %d failed\n", ok, fail)
	if chains, saved, uploaded := m.FusedStats(); chains > 0 {
		fmt.Fprintf(w, "fused chains: %d, %.1f MB transfer saved, %.1f MB uploaded by cache fills\n",
			chains, float64(saved)/(1<<20), float64(uploaded)/(1<<20))
	}
	// Degraded-op counts live in the main table; the robustness section
	// below adds per-op detail only when something actually degraded.
	var retryN, fbN uint64
	for _, ds := range m.Retries() {
		retryN += ds.Count
	}
	for _, ds := range m.Fallbacks() {
		fbN += ds.Count
	}
	trips, _ := m.BreakerCounts()
	fmt.Fprintf(w, "degraded ops: retries=%d cpu-fallbacks=%d faults=%d breaker-trips=%d\n",
		retryN, fbN, m.FaultTotal(), trips)
	if len(evals) > 0 {
		fmt.Fprintf(w, "evaluators:\n")
		for _, e := range evals {
			fmt.Fprintf(w, "  %-24s calls=%-6d rows=%-12d total=%-12s p50=%-10s p95=%-10s p99=%s\n",
				e.Name, e.Count, e.Rows, e.Total, e.P50, e.P95, e.P99)
		}
	}
	if len(queries) > 0 {
		fmt.Fprintf(w, "queries:\n")
		for _, q := range queries {
			fmt.Fprintf(w, "  %-24s runs=%-5d gpu=%-5d total=%-12s p50=%-10s p95=%-10s p99=%-10s max=%s\n",
				q.Name, q.Count, q.GPURuns, q.Total, q.P50, q.P95, q.P99, q.Max)
		}
	}
	if devs := m.Devices(); len(devs) > 0 {
		fmt.Fprintf(w, "device memory:\n")
		for _, d := range devs {
			series := m.MemSeries(d)
			var peak, total int64
			for _, s := range series {
				if s.Used > peak {
					peak = s.Used
				}
				total = s.Total
			}
			pctOf := 0.0
			if total > 0 {
				pctOf = float64(peak) / float64(total) * 100
			}
			fmt.Fprintf(w, "  gpu%d: %d samples, peak %.1f MB (%.1f%% of capacity)\n",
				d, len(series), float64(peak)/(1<<20), pctOf)
		}
	}
	m.reportRobustness(w)
}
