package monitor

import (
	"strings"
	"testing"

	"blugpu/internal/gpu"
)

func TestDegradationCounters(t *testing.T) {
	m := New()
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "kernel"})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "kernel"})
	m.RecordGPUEvent(gpu.Event{Kind: gpu.EventFault, Name: "reserve"})
	m.RecordGPURetry("groupby", true)
	m.RecordGPURetry("place", false)
	m.RecordFallback("groupby", true)
	m.RecordFallback("sort", false)
	m.RecordBreaker(0, true)
	m.RecordBreaker(0, false)

	if got := m.FaultTotal(); got != 3 {
		t.Errorf("FaultTotal = %d, want 3", got)
	}
	if c := m.FaultCounts(); c["kernel"] != 2 || c["reserve"] != 1 {
		t.Errorf("FaultCounts = %v", c)
	}
	retries := m.Retries()
	if len(retries) != 2 || retries[0].Op != "groupby" || retries[0].Faulted != 1 ||
		retries[1].Op != "place" || retries[1].Faulted != 0 {
		t.Errorf("Retries = %+v", retries)
	}
	fallbacks := m.Fallbacks()
	if len(fallbacks) != 2 || fallbacks[0].Op != "groupby" || fallbacks[1].Op != "sort" {
		t.Errorf("Fallbacks = %+v", fallbacks)
	}
	trips, recovers := m.BreakerCounts()
	if trips != 1 || recovers != 1 {
		t.Errorf("BreakerCounts = %d, %d", trips, recovers)
	}

	var sb strings.Builder
	m.Report(&sb)
	rep := sb.String()
	for _, want := range []string{"robustness:", "faults injected:", "kernel=2", "retries:", "cpu fallbacks:", "breaker: 1 trips, 1 recoveries"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	m.Reset()
	if m.FaultTotal() != 0 || len(m.Retries()) != 0 || len(m.Fallbacks()) != 0 {
		t.Error("Reset did not clear degradation counters")
	}
	sb.Reset()
	m.Report(&sb)
	if strings.Contains(sb.String(), "robustness:") {
		t.Error("robustness section printed with all counters zero")
	}
}
