package monitor

import (
	"math"

	"blugpu/internal/vtime"
)

// histBuckets is the bucket count of the log-scale latency histogram.
// Bucket i covers durations in [2^(i-31), 2^(i-30)) seconds — bucket 0
// holds everything below ~0.5 ns and the top bucket everything from
// ~2^32 s up, a range no modeled latency escapes.
const histBuckets = 64

// Hist is a log-scale (power-of-two bucket) latency histogram. It
// replaces max-only tracking: alongside count/total/max it answers
// Quantile queries with bucket-resolution (±~41%) accuracy, which is
// what p50/p95/p99 columns need without storing samples.
//
// Not safe for concurrent use on its own; the Monitor guards it.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    vtime.Duration
	max    vtime.Duration
}

// histBucket maps a duration to its bucket index.
func histBucket(d vtime.Duration) int {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	// frac*2^exp with frac in [0.5,1) => floor(log2 s) == exp-1.
	_, exp := math.Frexp(s)
	i := exp - 1 + 31
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Hist) Observe(d vtime.Duration) {
	h.counts[histBucket(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest sample observed.
func (h *Hist) Max() vtime.Duration { return h.max }

// Total returns the sum of all samples.
func (h *Hist) Total() vtime.Duration { return h.sum }

// Mean returns the average sample, 0 when empty.
func (h *Hist) Mean() vtime.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / vtime.Duration(float64(h.n))
}

// Quantile returns an estimate of the p-quantile (p in [0,1]): the
// geometric midpoint of the bucket holding the ceil(p*n)-th sample,
// clamped to the observed maximum. Returns 0 when empty.
func (h *Hist) Quantile(p float64) vtime.Duration {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			if i == 0 {
				// Sub-resolution bucket: its upper bound is already
				// ~0.5ns; report the max if even that overshoots.
				return vtime.Min(h.max, vtime.Duration(math.Ldexp(1, -31)))
			}
			// Geometric midpoint of [2^(i-31), 2^(i-30)).
			mid := vtime.Duration(math.Ldexp(math.Sqrt2, i-31))
			return vtime.Min(mid, h.max)
		}
	}
	return h.max
}

// Quantiles returns the (p50, p95, p99) triple.
func (h *Hist) Quantiles() (p50, p95, p99 vtime.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// Sub returns the histogram of samples observed since prev, assuming
// prev is an earlier copy of h (counts monotonically grew from it).
// The max of the delta is not recoverable from buckets alone; it is
// carried over from h, an upper bound for the interval.
func (h Hist) Sub(prev Hist) Hist {
	var out Hist
	for i := 0; i < histBuckets; i++ {
		out.counts[i] = h.counts[i] - prev.counts[i]
	}
	out.n = h.n - prev.n
	out.sum = h.sum - prev.sum
	out.max = h.max
	return out
}

// HistBucket is one exported histogram bucket: the cumulative count of
// samples at or below UpperBound. The Prometheus exposition's le series
// is built directly from these.
type HistBucket struct {
	UpperBound vtime.Duration
	CumCount   uint64
}

// Buckets returns the non-empty buckets as cumulative counts with their
// upper bounds (2^(i-30) seconds for bucket i). Empty buckets are
// skipped — cumulative counts stay valid and the series stays minimal
// and deterministic. An empty histogram returns nil.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] == 0 {
			continue
		}
		cum += h.counts[i]
		out = append(out, HistBucket{
			UpperBound: vtime.Duration(math.Ldexp(1, i-30)),
			CumCount:   cum,
		})
	}
	return out
}
