package monitor

import (
	"fmt"
	"io"
	"sort"

	"blugpu/internal/gpu"
)

// DegradeStats aggregates one degradation counter (same-placement
// retries or CPU fallbacks) for one operation ("place", "groupby",
// "sort").
type DegradeStats struct {
	Op    string
	Count uint64
	// Faulted is the subset of Count caused by injected faults or
	// device loss, as opposed to organic admission races and memory
	// pressure. Summed across retries and fallbacks it must equal the
	// injected-fault total: every fault is accounted for.
	Faulted uint64
}

type degradeState struct {
	faults    map[string]uint64 // injected faults by site name
	retries   map[string]*DegradeStats
	fallbacks map[string]*DegradeStats
	trips     uint64
	recovers  uint64
}

func newDegradeState() degradeState {
	return degradeState{
		faults:    make(map[string]uint64),
		retries:   make(map[string]*DegradeStats),
		fallbacks: make(map[string]*DegradeStats),
	}
}

// recordFault tallies one injected-fault event (gpu.EventFault carries
// the site name). Called with m.mu held, from RecordGPUEvent.
func (m *Monitor) recordFault(e gpu.Event) {
	m.degrade.faults[e.Name]++
}

// RecordGPURetry implements the scheduler/engine retry half of the
// degradation sink: the operation failed on one device and was retried
// on another within the same query.
func (m *Monitor) RecordGPURetry(op string, faulted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bump(m.degrade.retries, op, faulted)
}

// RecordFallback records a query routed to the CPU path after its GPU
// attempt(s) failed.
func (m *Monitor) RecordFallback(op string, faulted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bump(m.degrade.fallbacks, op, faulted)
}

// RecordBreaker records a circuit-breaker transition.
func (m *Monitor) RecordBreaker(device int, tripped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tripped {
		m.degrade.trips++
	} else {
		m.degrade.recovers++
	}
}

func bump(set map[string]*DegradeStats, op string, faulted bool) {
	ds := set[op]
	if ds == nil {
		ds = &DegradeStats{Op: op}
		set[op] = ds
	}
	ds.Count++
	if faulted {
		ds.Faulted++
	}
}

// FaultCounts returns injected-fault counts keyed by site name
// ("reserve", "h2d", "d2h", "kernel").
func (m *Monitor) FaultCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.degrade.faults))
	for k, v := range m.degrade.faults {
		out[k] = v
	}
	return out
}

// FaultTotal returns the total number of injected faults observed.
func (m *Monitor) FaultTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, v := range m.degrade.faults {
		total += v
	}
	return total
}

// Retries returns the same-placement retry stats, sorted by operation.
func (m *Monitor) Retries() []DegradeStats { return m.degradeList(true) }

// Fallbacks returns the CPU-fallback stats, sorted by operation.
func (m *Monitor) Fallbacks() []DegradeStats { return m.degradeList(false) }

func (m *Monitor) degradeList(retries bool) []DegradeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.degrade.fallbacks
	if retries {
		set = m.degrade.retries
	}
	out := make([]DegradeStats, 0, len(set))
	for _, ds := range set {
		out = append(out, *ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// BreakerCounts returns circuit-breaker (trips, recoveries).
func (m *Monitor) BreakerCounts() (uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degrade.trips, m.degrade.recovers
}

// reportRobustness appends the degradation section to Report when any
// robustness counter is nonzero.
func (m *Monitor) reportRobustness(w io.Writer) {
	faults := m.FaultCounts()
	retries := m.Retries()
	fallbacks := m.Fallbacks()
	trips, recovers := m.BreakerCounts()
	if len(faults) == 0 && len(retries) == 0 && len(fallbacks) == 0 && trips == 0 {
		return
	}
	fmt.Fprintf(w, "robustness:\n")
	if len(faults) > 0 {
		sites := make([]string, 0, len(faults))
		for s := range faults {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		fmt.Fprintf(w, "  faults injected:")
		var total uint64
		for _, s := range sites {
			fmt.Fprintf(w, " %s=%d", s, faults[s])
			total += faults[s]
		}
		fmt.Fprintf(w, " (total %d)\n", total)
	}
	writeDegrade := func(label string, set []DegradeStats) {
		if len(set) == 0 {
			return
		}
		fmt.Fprintf(w, "  %s:", label)
		for _, ds := range set {
			fmt.Fprintf(w, " %s=%d (faulted %d)", ds.Op, ds.Count, ds.Faulted)
		}
		fmt.Fprintln(w)
	}
	writeDegrade("retries", retries)
	writeDegrade("cpu fallbacks", fallbacks)
	if trips > 0 || recovers > 0 {
		fmt.Fprintf(w, "  breaker: %d trips, %d recoveries\n", trips, recovers)
	}
}
