package gpu

import (
	"errors"
	"fmt"

	"blugpu/internal/fault"
	"blugpu/internal/trace"
)

// ErrInjected marks an error as caused by fault injection (or simulated
// device loss). It is always joined with a site-specific sentinel —
// ErrOutOfMemory for reservations, ErrTransfer for copies,
// ErrKernelFault for launches, ErrDeviceLost when the whole device is
// gone — so existing errors.Is checks on those keep working while
// degradation accounting can still distinguish injected faults from
// organic admission failures.
var ErrInjected = errors.New("gpu: injected fault")

// ErrDeviceLost is returned for any operation on a device the injector
// has marked dead.
var ErrDeviceLost = errors.New("gpu: device lost")

// ErrTransfer is a failed H2D or D2H transfer.
var ErrTransfer = errors.New("gpu: transfer failed")

// ErrKernelFault is a kernel that faulted at launch.
var ErrKernelFault = errors.New("gpu: kernel fault")

// Alive reports whether the device is functioning. A device is only
// ever lost through the fault injector; without one it is always alive.
func (d *Device) Alive() bool { return !d.inj.Dead(d.id) }

// injectFault consults the injector at site and, when a fault fires,
// emits an EventFault under sp and returns the site-appropriate error
// (always wrapping ErrInjected). It returns nil when no fault fires.
//
// Sites are placed so that a fault leaves all host-visible state
// untouched: reservations fail before accounting, transfers before the
// copy, kernels before the body runs.
func (d *Device) injectFault(site fault.Site, sp trace.SpanID) error {
	if !d.inj.Fail(site, d.id) {
		return nil
	}
	d.emit(Event{Kind: EventFault, Name: site.String(), Span: sp})
	var base error
	switch site {
	case fault.Reserve:
		base = ErrOutOfMemory
	case fault.H2D, fault.D2H:
		base = ErrTransfer
	case fault.Kernel:
		base = ErrKernelFault
	}
	if d.inj.Dead(d.id) {
		base = ErrDeviceLost
	}
	return fmt.Errorf("gpu: device %d: injected %s fault: %w: %w", d.id, site, base, ErrInjected)
}
