package gpu

import (
	"errors"
	"fmt"
	"sync/atomic"

	"blugpu/internal/fault"
	"blugpu/internal/trace"
)

// ErrOutOfMemory is returned when a reservation or allocation exceeds the
// device's free memory. Per Section 2.1.1 the caller then either waits for
// memory to become available or falls back to the CPU path — it never
// starts a kernel that could fail mid-flight.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Reservation is an up-front claim on device memory. All buffers a kernel
// call needs are allocated from its reservation, so admission control
// happens once, before any work starts; a task whose reservation succeeds
// cannot hit an out-of-memory error during execution.
type Reservation struct {
	dev      *Device
	total    int64
	used     int64
	buffers  []*Buffer
	released bool
	span     atomic.Uint64 // trace.SpanID attribution for buffer ops
}

// Reserve claims n bytes of device memory up front. It fails fast with
// ErrOutOfMemory when the device cannot satisfy the claim.
func (d *Device) Reserve(n int64) (*Reservation, error) {
	return d.ReserveSpan(n, 0)
}

// ReserveSpan is Reserve with the caller's tracer span attached: the
// reserve event (and any injected reservation fault) is reported under
// sp, and the reservation starts bound to sp — transfers through its
// buffers inherit the span until BindSpan rebinds it. sp 0 means
// untraced.
func (d *Device) ReserveSpan(n int64, sp trace.SpanID) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: invalid reservation size %d", n)
	}
	if err := d.injectFault(fault.Reserve, sp); err != nil {
		d.emit(Event{Kind: EventReserveFail, Bytes: n, Span: sp})
		return nil, err
	}
	d.mu.Lock()
	if d.memUsed+n > d.spec.DeviceMemory {
		d.mu.Unlock()
		d.emit(Event{Kind: EventReserveFail, Bytes: n, Span: sp})
		return nil, ErrOutOfMemory
	}
	d.memUsed += n
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	d.mu.Unlock()
	d.emit(Event{Kind: EventReserve, Bytes: n, Span: sp})
	r := &Reservation{dev: d, total: n}
	r.span.Store(uint64(sp))
	return r, nil
}

// BindSpan rebinds the reservation (and every buffer allocated from it)
// to a tracer span. The scheduler reserves under its placement span;
// the owner then rebinds to the span doing the actual compute so kernel
// and transfer events attribute to it.
func (r *Reservation) BindSpan(sp trace.SpanID) { r.span.Store(uint64(sp)) }

// Span returns the reservation's current trace binding, 0 if untraced.
func (r *Reservation) Span() trace.SpanID { return trace.SpanID(r.span.Load()) }

// Size returns the reserved byte count.
func (r *Reservation) Size() int64 { return r.total }

// Used returns bytes allocated out of the reservation so far.
func (r *Reservation) Used() int64 { return r.used }

// Device returns the owning device.
func (r *Reservation) Device() *Device { return r.dev }

// AllocWords allocates a zeroed buffer of n 64-bit words from the
// reservation. Device memory is word-addressed in the model: 64-bit words
// are the natural unit for the hash-table kernels and match the device's
// atomic operations.
func (r *Reservation) AllocWords(n int) (*Buffer, error) {
	if r.released {
		return nil, errors.New("gpu: allocation from released reservation")
	}
	if n <= 0 {
		return nil, fmt.Errorf("gpu: invalid buffer size %d words", n)
	}
	bytes := int64(n) * 8
	if r.used+bytes > r.total {
		return nil, fmt.Errorf("gpu: reservation overflow: need %d bytes, %d of %d used: %w",
			bytes, r.used, r.total, ErrOutOfMemory)
	}
	r.used += bytes
	b := &Buffer{res: r, words: make([]uint64, n)}
	r.buffers = append(r.buffers, b)
	return b, nil
}

// Release returns the entire reservation (and every buffer allocated from
// it) to the device. Release is idempotent. Kernel completion paths call
// it so reserved memory is immediately reusable by queued tasks.
func (r *Reservation) Release() {
	if r.released {
		return
	}
	r.released = true
	for _, b := range r.buffers {
		b.words = nil
	}
	r.buffers = nil
	r.dev.mu.Lock()
	r.dev.memUsed -= r.total
	r.dev.mu.Unlock()
}

// Buffer is device memory: a slice of 64-bit words. Kernels operate on it
// directly; the host must go through the transfer engine (CopyToDevice /
// CopyFromDevice) so PCIe costs are modeled.
type Buffer struct {
	res   *Reservation
	words []uint64
}

// Words exposes the device words to kernel code. Host code must not touch
// this; use the transfer engine.
func (b *Buffer) Words() []uint64 { return b.words }

// Span returns the trace span bound to the buffer's reservation, 0 if
// untraced or reservation-less.
func (b *Buffer) Span() trace.SpanID {
	if b.res == nil {
		return 0
	}
	return b.res.Span()
}

// Len returns the buffer length in words.
func (b *Buffer) Len() int { return len(b.words) }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(len(b.words)) * 8 }

// AtomicCAS performs an atomic compare-and-swap on word i, mirroring CUDA
// atomicCAS on 64-bit values. It reports whether the swap happened.
func (b *Buffer) AtomicCAS(i int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&b.words[i], old, new)
}

// AtomicLoad returns word i with acquire semantics.
func (b *Buffer) AtomicLoad(i int) uint64 { return atomic.LoadUint64(&b.words[i]) }

// AtomicStore writes word i with release semantics.
func (b *Buffer) AtomicStore(i int, v uint64) { atomic.StoreUint64(&b.words[i], v) }

// AtomicAdd adds delta (two's complement) to word i and returns the new
// value, mirroring CUDA atomicAdd on 64-bit integers.
func (b *Buffer) AtomicAdd(i int, delta uint64) uint64 {
	return atomic.AddUint64(&b.words[i], delta)
}

// AtomicMinInt64 lowers word i (interpreted as int64) to v if v is
// smaller, CAS-looping like the canonical CUDA atomicMin emulation.
// It returns the number of CAS retries (contention signal for the cost
// model).
func (b *Buffer) AtomicMinInt64(i int, v int64) int {
	retries := 0
	for {
		cur := atomic.LoadUint64(&b.words[i])
		if int64(cur) <= v {
			return retries
		}
		if atomic.CompareAndSwapUint64(&b.words[i], cur, uint64(v)) {
			return retries
		}
		retries++
	}
}

// AtomicMaxInt64 raises word i (interpreted as int64) to v if v is larger,
// returning CAS retries.
func (b *Buffer) AtomicMaxInt64(i int, v int64) int {
	retries := 0
	for {
		cur := atomic.LoadUint64(&b.words[i])
		if int64(cur) >= v {
			return retries
		}
		if atomic.CompareAndSwapUint64(&b.words[i], cur, uint64(v)) {
			return retries
		}
		retries++
	}
}

// AtomicMinFloat64 lowers word i (interpreted as a float64 bit pattern)
// to v if v is smaller, CAS-looping. Returns CAS retries.
func (b *Buffer) AtomicMinFloat64(i int, v float64) int {
	retries := 0
	for {
		cur := atomic.LoadUint64(&b.words[i])
		if float64FromBits(cur) <= v {
			return retries
		}
		if atomic.CompareAndSwapUint64(&b.words[i], cur, float64Bits(v)) {
			return retries
		}
		retries++
	}
}

// AtomicMaxFloat64 raises word i (interpreted as a float64 bit pattern) to
// v if v is larger, CAS-looping. Returns CAS retries.
func (b *Buffer) AtomicMaxFloat64(i int, v float64) int {
	retries := 0
	for {
		cur := atomic.LoadUint64(&b.words[i])
		if float64FromBits(cur) >= v {
			return retries
		}
		if atomic.CompareAndSwapUint64(&b.words[i], cur, float64Bits(v)) {
			return retries
		}
		retries++
	}
}

// AtomicAddFloat64 adds v to word i interpreted as a float64 bit pattern,
// CAS-looping (CUDA has no 64-bit float atomicAdd on Kepler either; the
// paper uses atomicCAS emulation). Returns CAS retries.
func (b *Buffer) AtomicAddFloat64(i int, v float64) int {
	retries := 0
	for {
		cur := atomic.LoadUint64(&b.words[i])
		next := float64FromBits(cur) + v
		if atomic.CompareAndSwapUint64(&b.words[i], cur, float64Bits(next)) {
			return retries
		}
		retries++
	}
}

// LockSet is an array of per-entry spin locks, used for grouping keys and
// aggregate payloads wider than the device's atomic width (Section 4.4,
// strategy 2) and for the row-lock kernel (Section 4.3.3).
type LockSet struct {
	locks []uint32
	spins atomic.Uint64
}

// NewLockSet returns n spin locks, all unlocked.
func NewLockSet(n int) *LockSet { return &LockSet{locks: make([]uint32, n)} }

// Lock acquires lock i, spinning while held. Each failed acquisition
// attempt is counted; the total feeds the lock cost in the model.
func (l *LockSet) Lock(i int) {
	for !atomic.CompareAndSwapUint32(&l.locks[i], 0, 1) {
		l.spins.Add(1)
	}
}

// Unlock releases lock i.
func (l *LockSet) Unlock(i int) { atomic.StoreUint32(&l.locks[i], 0) }

// Spins returns the total number of failed acquisition attempts observed.
func (l *LockSet) Spins() uint64 { return l.spins.Load() }
