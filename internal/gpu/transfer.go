package gpu

import (
	"fmt"

	"blugpu/internal/fault"
	"blugpu/internal/vtime"
)

// model returns the device's cost model, defaulting lazily. Devices are
// normally created by the scheduler with an explicit model.
func (d *Device) modelRef() *vtime.CostModel {
	if d.model == nil {
		d.model = vtime.Default()
	}
	return d.model
}

// WithModel attaches a cost model (defaults to vtime.Default()).
func WithModel(m *vtime.CostModel) Option { return func(d *Device) { d.model = m } }

// CopyToDevice copies len(src) words from host memory into dst, modeling
// PCIe time. pinned reports whether src lives in the registered host
// segment (Section 2.1.2): pinned transfers run ~4x faster.
func (d *Device) CopyToDevice(dst *Buffer, src []uint64, pinned bool) (vtime.Duration, error) {
	if len(src) > dst.Len() {
		return 0, fmt.Errorf("gpu: h2d copy of %d words into %d-word buffer", len(src), dst.Len())
	}
	sp := dst.Span()
	if err := d.injectFault(fault.H2D, sp); err != nil {
		return 0, err
	}
	copy(dst.words, src)
	bytes := int64(len(src)) * 8
	t := d.modelRef().Transfer(bytes, pinned)
	d.mu.Lock()
	d.transfers++
	d.mu.Unlock()
	d.emit(Event{Kind: EventTransferH2D, Bytes: bytes, Modeled: t, Span: sp})
	return t, nil
}

// CopyFromDevice copies min(len(dst), src.Len()) words back to the host,
// modeling PCIe time.
func (d *Device) CopyFromDevice(dst []uint64, src *Buffer, pinned bool) (vtime.Duration, error) {
	n := len(dst)
	if n > src.Len() {
		n = src.Len()
	}
	sp := src.Span()
	if err := d.injectFault(fault.D2H, sp); err != nil {
		return 0, err
	}
	copy(dst[:n], src.words[:n])
	bytes := int64(n) * 8
	t := d.modelRef().Transfer(bytes, pinned)
	d.mu.Lock()
	d.transfers++
	d.mu.Unlock()
	d.emit(Event{Kind: EventTransferD2H, Bytes: bytes, Modeled: t, Span: sp})
	return t, nil
}

// TransferTime models (without performing) a transfer of n bytes.
func (d *Device) TransferTime(bytes int64, pinned bool) vtime.Duration {
	return d.modelRef().Transfer(bytes, pinned)
}

// PipelineChunks is the double-buffering depth used by PipelineTime: the
// input is staged in this many chunks so the first kernel work starts
// after one chunk's transfer, not the whole input's.
const PipelineChunks = 8

// PipelineTime models a kernel whose input transfer is double-buffered
// against its execution through CUDA streams: the path costs the longer
// of (transfer, kernel) plus one pipeline-fill chunk, not their sum.
// Output transfers stay serial (they depend on the kernel's last write).
func PipelineTime(transferIn, kernel vtime.Duration) vtime.Duration {
	return transferIn/PipelineChunks + vtime.Max(transferIn, kernel)
}
