package gpu

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"blugpu/internal/vtime"
)

func newTestDevice(opts ...Option) *Device {
	return NewDevice(0, vtime.TeslaK40(), opts...)
}

func TestReserveRelease(t *testing.T) {
	d := newTestDevice()
	total := d.TotalMemory()
	r, err := d.Reserve(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if d.FreeMemory() != total-(1<<30) {
		t.Errorf("FreeMemory = %d, want %d", d.FreeMemory(), total-(1<<30))
	}
	r.Release()
	if d.FreeMemory() != total {
		t.Errorf("FreeMemory after release = %d, want %d", d.FreeMemory(), total)
	}
	r.Release() // idempotent
	if d.FreeMemory() != total {
		t.Error("double release corrupted accounting")
	}
}

func TestReserveOutOfMemory(t *testing.T) {
	d := newTestDevice()
	if _, err := d.Reserve(d.TotalMemory() + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected ErrOutOfMemory, got %v", err)
	}
	// Two reservations that fit individually but not together: admission
	// control must reject the second up front, not mid-kernel.
	r1, err := d.Reserve(8 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Reserve(8 << 30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("second 8GB reservation should fail on a 12GB device, got %v", err)
	}
	r1.Release()
	if _, err := d.Reserve(8 << 30); err != nil {
		t.Errorf("after release the reservation should succeed: %v", err)
	}
}

func TestReserveInvalid(t *testing.T) {
	d := newTestDevice()
	if _, err := d.Reserve(0); err == nil {
		t.Error("Reserve(0) should fail")
	}
	if _, err := d.Reserve(-1); err == nil {
		t.Error("Reserve(-1) should fail")
	}
}

func TestAllocWithinReservation(t *testing.T) {
	d := newTestDevice()
	r, _ := d.Reserve(1 << 20)
	b, err := r.AllocWords(1024)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1024 || b.Bytes() != 8192 {
		t.Errorf("buffer len=%d bytes=%d, want 1024/8192", b.Len(), b.Bytes())
	}
	if r.Used() != 8192 {
		t.Errorf("Used = %d, want 8192", r.Used())
	}
	// Overflowing the reservation must fail without touching the device.
	if _, err := r.AllocWords(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("reservation overflow should wrap ErrOutOfMemory, got %v", err)
	}
	r.Release()
	if _, err := r.AllocWords(1); err == nil {
		t.Error("alloc from released reservation should fail")
	}
}

func TestAtomics(t *testing.T) {
	d := newTestDevice()
	r, _ := d.Reserve(1 << 16)
	b, _ := r.AllocWords(4)
	defer r.Release()

	if !b.AtomicCAS(0, 0, 42) {
		t.Error("CAS from zero should succeed")
	}
	if b.AtomicCAS(0, 0, 99) {
		t.Error("CAS with stale old value should fail")
	}
	if got := b.AtomicLoad(0); got != 42 {
		t.Errorf("load = %d, want 42", got)
	}
	b.AtomicAdd(1, 10)
	b.AtomicAdd(1, ^uint64(2)) // add -3 two's complement
	if got := int64(b.AtomicLoad(1)); got != 7 {
		t.Errorf("add sequence = %d, want 7", got)
	}
	b.AtomicStore(2, uint64(int64(100)))
	b.AtomicMinInt64(2, 50)
	b.AtomicMinInt64(2, 80) // no-op
	if got := int64(b.AtomicLoad(2)); got != 50 {
		t.Errorf("min = %d, want 50", got)
	}
	b.AtomicMaxInt64(2, 60)
	if got := int64(b.AtomicLoad(2)); got != 60 {
		t.Errorf("max = %d, want 60", got)
	}
	b.AtomicAddFloat64(3, 1.5)
	b.AtomicAddFloat64(3, 2.25)
	if got := math.Float64frombits(b.AtomicLoad(3)); got != 3.75 {
		t.Errorf("float add = %v, want 3.75", got)
	}
}

func TestAtomicsConcurrent(t *testing.T) {
	d := newTestDevice()
	r, _ := d.Reserve(1 << 16)
	b, _ := r.AllocWords(3)
	defer r.Release()
	b.AtomicStore(1, uint64(int64(math.MaxInt64))) // min slot
	b.AtomicStore(2, uint64(1)<<63)                // max slot = MinInt64 bit pattern

	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.AtomicAdd(0, 1)
				v := int64(g*per + i)
				b.AtomicMinInt64(1, v)
				b.AtomicMaxInt64(2, v)
			}
		}()
	}
	wg.Wait()
	if got := b.AtomicLoad(0); got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
	if got := int64(b.AtomicLoad(1)); got != 0 {
		t.Errorf("min = %d, want 0", got)
	}
	if got := int64(b.AtomicLoad(2)); got != goroutines*per-1 {
		t.Errorf("max = %d, want %d", got, goroutines*per-1)
	}
}

func TestLockSet(t *testing.T) {
	l := NewLockSet(4)
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Lock(2)
				counter++
				l.Unlock(2)
			}
		}()
	}
	wg.Wait()
	if counter != 40000 {
		t.Errorf("counter = %d, want 40000 (lock not mutually exclusive)", counter)
	}
}

func TestRunKernelParallelFor(t *testing.T) {
	d := newTestDevice()
	const n = 100000
	out := make([]uint64, n)
	res := d.RunKernel("square", nil, func(g *Grid) (vtime.Duration, error) {
		err := g.ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = uint64(i) * uint64(i)
			}
		})
		return 5 * vtime.Millisecond, err
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Modeled <= 5*vtime.Millisecond {
		t.Error("modeled time must include kernel launch overhead")
	}
	for _, i := range []int{0, 1, 777, n - 1} {
		if out[i] != uint64(i)*uint64(i) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
	if c := d.Counters(); c.Kernels != 1 {
		t.Errorf("kernel counter = %d, want 1", c.Kernels)
	}
	if d.Outstanding() != 0 {
		t.Error("outstanding should be 0 after completion")
	}
}

func TestKernelCancellation(t *testing.T) {
	d := newTestDevice()
	cancel := NewCancel()
	cancel.Cancel()
	res := d.RunKernel("doomed", cancel, func(g *Grid) (vtime.Duration, error) {
		err := g.ParallelFor(1<<20, func(lo, hi int) {})
		return vtime.Second, err
	})
	if !errors.Is(res.Err, ErrCancelled) {
		t.Errorf("expected ErrCancelled, got %v", res.Err)
	}
}

func TestForEachSMX(t *testing.T) {
	d := newTestDevice()
	seen := make([]bool, d.Spec().SMXCount)
	var mu sync.Mutex
	res := d.RunKernel("smx", nil, func(g *Grid) (vtime.Duration, error) {
		err := g.ForEachSMX(func(smx int) {
			mu.Lock()
			seen[smx] = true
			mu.Unlock()
		})
		return 0, err
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("SMX %d never ran", i)
		}
	}
}

func TestTransfers(t *testing.T) {
	d := newTestDevice()
	r, _ := d.Reserve(1 << 16)
	defer r.Release()
	b, _ := r.AllocWords(128)
	src := make([]uint64, 128)
	for i := range src {
		src[i] = uint64(i * 3)
	}
	tp, err := d.CopyToDevice(b, src, true)
	if err != nil {
		t.Fatal(err)
	}
	tu, _ := d.CopyToDevice(b, src, false)
	if tu <= tp {
		t.Errorf("unpinned (%v) should be slower than pinned (%v)", tu, tp)
	}
	dst := make([]uint64, 128)
	if _, err := d.CopyFromDevice(dst, b, true); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	// Oversized copy is rejected.
	if _, err := d.CopyToDevice(b, make([]uint64, 129), true); err == nil {
		t.Error("oversized h2d copy should fail")
	}
	if c := d.Counters(); c.Transfers != 3 {
		t.Errorf("transfer count = %d, want 3", c.Transfers)
	}
}

func TestSharedMemSplit(t *testing.T) {
	d := newTestDevice()
	if d.SharedMemBytes() != 48<<10 {
		t.Errorf("default shared split = %d, want 48KiB", d.SharedMemBytes())
	}
	d2 := newTestDevice(WithSharedSplit(16 << 10))
	if d2.SharedMemBytes() != 16<<10 {
		t.Errorf("configured split = %d, want 16KiB", d2.SharedMemBytes())
	}
	// Splits above the hardware pool clamp.
	d3 := newTestDevice(WithSharedSplit(1 << 20))
	if d3.SharedMemBytes() != d3.Spec().SharedMemPerSMX {
		t.Error("shared split should clamp to the SMX pool size")
	}
}

type captureSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *captureSink) RecordGPUEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func TestEventsEmitted(t *testing.T) {
	sink := &captureSink{}
	d := NewDevice(3, vtime.TeslaK40(), WithSink(sink))
	r, _ := d.Reserve(1 << 16)
	b, _ := r.AllocWords(8)
	d.CopyToDevice(b, make([]uint64, 8), true)
	d.RunKernel("k", nil, func(g *Grid) (vtime.Duration, error) { return 0, nil })
	d.CopyFromDevice(make([]uint64, 8), b, true)
	r.Release()
	d.Reserve(d.TotalMemory() * 2) // fails -> reserve-fail event

	kinds := map[EventKind]int{}
	sink.mu.Lock()
	for _, e := range sink.events {
		if e.Device != 3 {
			t.Errorf("event device = %d, want 3", e.Device)
		}
		kinds[e.Kind]++
	}
	sink.mu.Unlock()
	for _, k := range []EventKind{EventReserve, EventTransferH2D, EventKernel, EventTransferD2H, EventReserveFail} {
		if kinds[k] != 1 {
			t.Errorf("event kind %v count = %d, want 1", k, kinds[k])
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	d := newTestDevice()
	f := func(n uint16) bool {
		size := int(n%5000) + 1
		covered := make([]uint64, size)
		res := d.RunKernel("cover", nil, func(g *Grid) (vtime.Duration, error) {
			return 0, g.ParallelFor(size, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddUint64(&covered[i], 1)
				}
			})
		})
		if res.Err != nil {
			return false
		}
		for i := range covered {
			if covered[i] != 1 {
				return false // missed or double-visited
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
