package gpu

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"blugpu/internal/fault"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// ErrCancelled is returned by a kernel that observed its cancel token.
// The GPU moderator races kernels and cancels the losers (Section 4.2).
var ErrCancelled = errors.New("gpu: kernel cancelled")

// Cancel is a cooperative cancellation token shared between the moderator
// and a running kernel.
type Cancel struct {
	flag atomic.Bool
}

// NewCancel returns a fresh, un-triggered token.
func NewCancel() *Cancel { return &Cancel{} }

// Cancel triggers the token.
func (c *Cancel) Cancel() { c.flag.Store(true) }

// Cancelled reports whether the token has been triggered.
func (c *Cancel) Cancelled() bool { return c.flag.Load() }

// Grid is the execution context handed to kernel bodies. It exposes
// data-parallel iteration over the device's (simulated) thread grid and
// the cancellation token.
type Grid struct {
	dev     *Device
	workers int
	cancel  *Cancel
}

// Device returns the device executing the kernel.
func (g *Grid) Device() *Device { return g.dev }

// Cancelled reports whether the moderator cancelled this kernel.
func (g *Grid) Cancelled() bool { return g.cancel != nil && g.cancel.Cancelled() }

// ParallelFor executes body over [0,n) split into contiguous chunks across
// the worker pool, mirroring a grid-stride CUDA loop. It returns
// ErrCancelled if the cancel token fired before all chunks ran; bodies
// already running complete their chunk.
func (g *Grid) ParallelFor(n int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	workers := g.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if g.Cancelled() {
			return ErrCancelled
		}
		body(0, n)
		return nil
	}
	// Chunks are finer than workers so cancellation is responsive.
	chunks := workers * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	var next atomic.Int64
	var wg sync.WaitGroup
	var cancelled atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if g.Cancelled() {
					cancelled.Store(true)
					return
				}
				lo := int(next.Add(int64(chunkSize))) - chunkSize
				if lo >= n {
					return
				}
				hi := lo + chunkSize
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return ErrCancelled
	}
	return nil
}

// ForEachSMX runs body once per streaming multiprocessor, in parallel.
// Kernel 2 uses this to build per-SMX shared-memory hash tables.
func (g *Grid) ForEachSMX(body func(smx int)) error {
	return g.ParallelFor(g.dev.spec.SMXCount, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			body(s)
		}
	})
}

// KernelResult reports a finished kernel execution.
type KernelResult struct {
	Name    string
	Modeled vtime.Duration
	Err     error
}

// RunKernel admits and executes one kernel call. The body performs the
// functional work through the Grid and returns the modeled device time
// (computed from measured work by the kernel's cost function). RunKernel
// adds the kernel-launch overhead, updates device counters, and reports
// the event to the monitor sink.
//
// cancel may be nil for non-raced kernels.
func (d *Device) RunKernel(name string, cancel *Cancel, body func(g *Grid) (vtime.Duration, error)) KernelResult {
	return d.RunKernelSpan(name, 0, cancel, body)
}

// RunKernelSpan is RunKernel with the caller's tracer span attached:
// the kernel event (and any injected kernel fault) is reported under
// sp, so the tracer can attribute device time to the query operator
// that launched the kernel. sp 0 means untraced.
func (d *Device) RunKernelSpan(name string, sp trace.SpanID, cancel *Cancel, body func(g *Grid) (vtime.Duration, error)) KernelResult {
	d.mu.Lock()
	d.outstanding++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.outstanding--
		d.kernels++
		d.mu.Unlock()
	}()

	if err := d.injectFault(fault.Kernel, sp); err != nil {
		return KernelResult{Name: name, Err: err}
	}

	g := &Grid{dev: d, workers: deviceWorkers(), cancel: cancel}
	modeled, err := body(g)
	if err == nil && g.Cancelled() {
		err = ErrCancelled
	}
	modeled += d.modelRef().GPUKernelLaunch
	if err == nil {
		d.emit(Event{Kind: EventKernel, Name: name, Modeled: modeled, Span: sp})
	}
	return KernelResult{Name: name, Modeled: modeled, Err: err}
}

// deviceWorkers bounds the goroutine pool that stands in for the CUDA
// cores. Functional throughput only affects wall-clock test time, not
// modeled results.
func deviceWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if w > 16 {
		w = 16
	}
	return w
}

func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
