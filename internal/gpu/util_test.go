package gpu

import (
	"testing"

	"blugpu/internal/vtime"
)

// TestDeviceUtilization proves busy time accumulates per kind without a
// sink attached, and that reservation occupancy tracks its peak.
func TestDeviceUtilization(t *testing.T) {
	d := NewDevice(0, vtime.Default().GPU)

	if u := d.Util(); u.Busy() != 0 || u.ReservedBytes != 0 || u.ReservedPeakBytes != 0 {
		t.Fatalf("fresh device utilization not zero: %+v", u)
	}

	res, err := d.Reserve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := res.AllocWords(1024)
	if err != nil {
		t.Fatal(err)
	}

	src := make([]uint64, 1024)
	h2d, err := d.CopyToDevice(buf, src, true)
	if err != nil {
		t.Fatal(err)
	}
	d2h, err := d.CopyFromDevice(src, buf, true)
	if err != nil {
		t.Fatal(err)
	}

	kr := d.RunKernel("util_test", nil, func(g *Grid) (vtime.Duration, error) {
		return 3 * vtime.Millisecond, nil
	})
	if kr.Err != nil {
		t.Fatal(kr.Err)
	}

	u := d.Util()
	if u.Kernel != kr.Modeled {
		t.Fatalf("kernel busy = %v, want %v", u.Kernel, kr.Modeled)
	}
	if u.H2D != h2d {
		t.Fatalf("h2d busy = %v, want %v", u.H2D, h2d)
	}
	if u.D2H != d2h {
		t.Fatalf("d2h busy = %v, want %v", u.D2H, d2h)
	}
	if got, want := u.Busy(), kr.Modeled+h2d+d2h; got != want {
		t.Fatalf("total busy = %v, want %v", got, want)
	}
	if u.ReservedBytes != 1<<20 || u.ReservedPeakBytes != 1<<20 {
		t.Fatalf("occupancy = %d peak %d, want 1MiB both", u.ReservedBytes, u.ReservedPeakBytes)
	}

	res.Release()
	u = d.Util()
	if u.ReservedBytes != 0 {
		t.Fatalf("occupancy after release = %d, want 0", u.ReservedBytes)
	}
	if u.ReservedPeakBytes != 1<<20 {
		t.Fatalf("peak after release = %d, want 1MiB (peak is lifetime)", u.ReservedPeakBytes)
	}
}
