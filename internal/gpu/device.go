// Package gpu implements the simulated GPU device the engine offloads to.
//
// The paper's prototype targets Nvidia Tesla K40 cards through CUDA. A
// pure-Go, stdlib-only reproduction cannot drive real CUDA hardware, so
// this package provides a *functional* device model with the same
// programming surface the paper's kernels rely on:
//
//   - a device-memory heap with the up-front reservation discipline of
//     Section 2.1.1 (reserve-or-fail before kernel launch; wait or fall
//     back to the CPU on failure),
//   - CUDA-style data-parallel kernel launches executed by a bounded
//     goroutine pool, with atomic CAS/add/min/max and per-entry spin locks
//     (Section 4.4's two aggregation strategies),
//   - SMX shared-memory constraints (64 KiB configurable 48/16 between
//     shared memory and L1, Section 4.3.2),
//   - a transfer engine distinguishing pinned from unpinned host memory.
//
// Kernels execute for real — hash tables are really built, sorts really
// sort — while elapsed time is modeled through vtime.CostModel so that the
// performance *shape* of a K40 (massive parallel throughput, kernel-launch
// latency, PCIe transfer cost) is preserved. Contention is measured, not
// assumed: kernels report CAS retries and lock spins, and those counts
// feed the model.
package gpu

import (
	"fmt"
	"sync"

	"blugpu/internal/fault"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// EventKind classifies monitor events emitted by the device.
type EventKind int

const (
	// EventKernel is a kernel execution.
	EventKernel EventKind = iota
	// EventTransferH2D is a host-to-device copy.
	EventTransferH2D
	// EventTransferD2H is a device-to-host copy.
	EventTransferD2H
	// EventReserve is a device-memory reservation.
	EventReserve
	// EventReserveFail is a failed device-memory reservation.
	EventReserveFail
	// EventFault is an injected fault firing at an operation site (the
	// Name field carries the fault.Site string).
	EventFault
)

func (k EventKind) String() string {
	switch k {
	case EventKernel:
		return "kernel"
	case EventTransferH2D:
		return "h2d"
	case EventTransferD2H:
		return "d2h"
	case EventReserve:
		return "reserve"
	case EventReserveFail:
		return "reserve-fail"
	case EventFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Event is one timed device activity, reported to the EventSink.
type Event struct {
	Device  int
	Kind    EventKind
	Name    string
	Bytes   int64
	Modeled vtime.Duration
	// Span is the tracer span the operation runs under, 0 when the
	// caller is untraced. Kernels carry the span passed to
	// RunKernelSpan; transfers and faults inherit the span bound to the
	// reservation their buffer came from.
	Span trace.SpanID
}

// EventSink receives device events. The engine's performance monitor
// (internal/monitor) implements it; a nil sink discards events.
type EventSink interface {
	RecordGPUEvent(Event)
}

// Device is one simulated GPU.
type Device struct {
	id    int
	spec  vtime.GPUSpec
	sink  EventSink
	model *vtime.CostModel
	inj   *fault.Injector

	mu          sync.Mutex
	memUsed     int64 // bytes allocated or reserved
	memPeak     int64 // lifetime high-water mark of memUsed
	outstanding int   // kernel calls admitted but not finished
	kernels     uint64
	transfers   uint64

	// Per-kind busy time in modeled (virtual) seconds, accumulated
	// sink-independently so utilization accounting works even on devices
	// without a monitor attached. Kernel time can overlap across
	// concurrent launches, so busy totals are device-work time, not
	// elapsed time — the ratio against the virtual clock may exceed 1.
	busyKernel vtime.Duration
	busyH2D    vtime.Duration
	busyD2H    vtime.Duration

	// sharedSplit is the byte count of the SMX pool configured as shared
	// memory (the rest is L1). The group-by kernels set 48 KiB.
	sharedSplit int
}

// Option configures a Device.
type Option func(*Device)

// WithSink attaches a monitor sink.
func WithSink(s EventSink) Option { return func(d *Device) { d.sink = s } }

// WithSharedSplit sets the shared-memory portion of each SMX's 64 KiB
// configurable pool (default: 48 KiB shared / 16 KiB L1).
func WithSharedSplit(bytes int) Option { return func(d *Device) { d.sharedSplit = bytes } }

// WithFaults attaches a fault injector consulted at every operation
// site (reservation, transfers, kernel launches). A nil injector — the
// default — never injects.
func WithFaults(inj *fault.Injector) Option { return func(d *Device) { d.inj = inj } }

// NewDevice creates a simulated device with the given id and spec.
func NewDevice(id int, spec vtime.GPUSpec, opts ...Option) *Device {
	d := &Device{
		id:          id,
		spec:        spec,
		sharedSplit: 48 << 10,
	}
	for _, o := range opts {
		o(d)
	}
	if d.sharedSplit > spec.SharedMemPerSMX {
		d.sharedSplit = spec.SharedMemPerSMX
	}
	return d
}

// ID returns the device index.
func (d *Device) ID() int { return d.id }

// Spec returns the device's hardware description.
func (d *Device) Spec() vtime.GPUSpec { return d.spec }

// SharedMemBytes returns the per-SMX shared-memory budget under the
// current split (paper: 48 KiB shared / 16 KiB L1).
func (d *Device) SharedMemBytes() int { return d.sharedSplit }

// TotalMemory returns the device-memory capacity in bytes.
func (d *Device) TotalMemory() int64 { return d.spec.DeviceMemory }

// FreeMemory returns unreserved device memory in bytes.
func (d *Device) FreeMemory() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.DeviceMemory - d.memUsed
}

// UsedMemory returns allocated+reserved device memory in bytes.
func (d *Device) UsedMemory() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memUsed
}

// Outstanding returns the number of admitted, unfinished kernel calls.
// The multi-GPU scheduler balances on this.
func (d *Device) Outstanding() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.outstanding
}

// Counters is a snapshot of device activity totals.
type Counters struct {
	Kernels   uint64
	Transfers uint64
	MemUsed   int64
}

// Counters returns a snapshot of device activity.
func (d *Device) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Counters{Kernels: d.kernels, Transfers: d.transfers, MemUsed: d.memUsed}
}

// Utilization is a snapshot of the device's cumulative busy time split
// by activity kind, plus its reservation occupancy. Busy time is
// modeled virtual time, so snapshots are deterministic for a given
// workload.
type Utilization struct {
	Kernel vtime.Duration
	H2D    vtime.Duration
	D2H    vtime.Duration
	// ReservedBytes is current reservation occupancy (= UsedMemory).
	ReservedBytes int64
	// ReservedPeakBytes is the lifetime high-water mark of occupancy.
	ReservedPeakBytes int64
}

// Busy returns total device-busy time across all kinds.
func (u Utilization) Busy() vtime.Duration { return u.Kernel + u.H2D + u.D2H }

// Util returns the device's utilization snapshot.
func (d *Device) Util() Utilization {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Utilization{
		Kernel:            d.busyKernel,
		H2D:               d.busyH2D,
		D2H:               d.busyD2H,
		ReservedBytes:     d.memUsed,
		ReservedPeakBytes: d.memPeak,
	}
}

func (d *Device) emit(e Event) {
	e.Device = d.id
	d.mu.Lock()
	switch e.Kind {
	case EventKernel:
		d.busyKernel += e.Modeled
	case EventTransferH2D:
		d.busyH2D += e.Modeled
	case EventTransferD2H:
		d.busyD2H += e.Modeled
	}
	d.mu.Unlock()
	if d.sink != nil {
		d.sink.RecordGPUEvent(e)
	}
}

func (d *Device) String() string {
	return fmt.Sprintf("gpu%d(%s, %.1fGB)", d.id, d.spec.Name, float64(d.spec.DeviceMemory)/(1<<30))
}
