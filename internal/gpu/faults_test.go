package gpu

import (
	"errors"
	"testing"

	"blugpu/internal/fault"
	"blugpu/internal/vtime"
)

type faultEventSink struct{ faults []string }

func (s *faultEventSink) RecordGPUEvent(e Event) {
	if e.Kind == EventFault {
		s.faults = append(s.faults, e.Name)
	}
}

func TestInjectedReserveFault(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, Reserve: 1})
	sink := &faultEventSink{}
	d := NewDevice(0, vtime.TeslaK40(), WithFaults(inj), WithSink(sink))
	_, err := d.Reserve(1 << 20)
	if !errors.Is(err, ErrOutOfMemory) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrOutOfMemory+ErrInjected, got %v", err)
	}
	if d.UsedMemory() != 0 {
		t.Error("faulted reservation changed memory accounting")
	}
	if len(sink.faults) != 1 || sink.faults[0] != "reserve" {
		t.Errorf("fault events = %v, want [reserve]", sink.faults)
	}
}

func TestInjectedTransferFaultLeavesDataUntouched(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 2, H2D: 1, D2H: 1})
	d := NewDevice(0, vtime.TeslaK40(), WithFaults(inj))
	res, err := d.Reserve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	buf, err := res.AllocWords(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CopyToDevice(buf, []uint64{1, 2, 3, 4}, false); !errors.Is(err, ErrTransfer) || !errors.Is(err, ErrInjected) {
		t.Fatalf("h2d: want ErrTransfer+ErrInjected, got %v", err)
	}
	for i, w := range buf.Words() {
		if w != 0 {
			t.Fatalf("faulted h2d wrote word %d = %d", i, w)
		}
	}
	host := []uint64{9, 9, 9, 9}
	if _, err := d.CopyFromDevice(host, buf, false); !errors.Is(err, ErrTransfer) {
		t.Fatalf("d2h: want ErrTransfer, got %v", err)
	}
	for i, w := range host {
		if w != 9 {
			t.Fatalf("faulted d2h wrote host word %d = %d", i, w)
		}
	}
}

func TestInjectedKernelFaultSkipsBody(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 3, Kernel: 1})
	d := NewDevice(0, vtime.TeslaK40(), WithFaults(inj))
	ran := false
	kr := d.RunKernel("k", nil, func(g *Grid) (vtime.Duration, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(kr.Err, ErrKernelFault) || !errors.Is(kr.Err, ErrInjected) {
		t.Fatalf("want ErrKernelFault+ErrInjected, got %v", kr.Err)
	}
	if ran {
		t.Error("faulted kernel body still ran")
	}
	if d.Outstanding() != 0 {
		t.Error("faulted kernel left outstanding count nonzero")
	}
}

func TestDeadDevice(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 4})
	d := NewDevice(0, vtime.TeslaK40(), WithFaults(inj))
	if !d.Alive() {
		t.Fatal("device should start alive")
	}
	inj.KillDevice(0)
	if d.Alive() {
		t.Fatal("killed device reports alive")
	}
	if _, err := d.Reserve(1 << 20); !errors.Is(err, ErrDeviceLost) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrDeviceLost+ErrInjected, got %v", err)
	}
	inj.ReviveDevice(0)
	if !d.Alive() {
		t.Fatal("revived device reports dead")
	}
	res, err := d.Reserve(1 << 20)
	if err != nil {
		t.Fatalf("revived device should reserve: %v", err)
	}
	res.Release()
}

func TestNoInjectorNeverFaults(t *testing.T) {
	d := NewDevice(0, vtime.TeslaK40())
	if !d.Alive() {
		t.Error("device without injector should be alive")
	}
	res, err := d.Reserve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
}
