package gpu

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"blugpu/internal/vtime"
)

func TestFloatAtomicsMinMax(t *testing.T) {
	d := newTestDevice()
	r, _ := d.Reserve(1 << 12)
	defer r.Release()
	b, _ := r.AllocWords(2)
	b.AtomicStore(0, math.Float64bits(math.Inf(1)))  // min slot
	b.AtomicStore(1, math.Float64bits(math.Inf(-1))) // max slot

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := float64(g*2000+i) / 7
				b.AtomicMinFloat64(0, v)
				b.AtomicMaxFloat64(1, v)
			}
		}()
	}
	wg.Wait()
	if got := math.Float64frombits(b.AtomicLoad(0)); got != 0 {
		t.Errorf("min = %v, want 0", got)
	}
	want := float64(8*2000-1) / 7
	if got := math.Float64frombits(b.AtomicLoad(1)); got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	// No-op paths.
	if n := b.AtomicMinFloat64(0, 100); n != 0 {
		t.Error("min no-op should not retry")
	}
	if n := b.AtomicMaxFloat64(1, -1); n != 0 {
		t.Error("max no-op should not retry")
	}
}

func TestDeviceStringAndAccessors(t *testing.T) {
	d := NewDevice(7, vtime.TeslaK40())
	s := d.String()
	if !strings.Contains(s, "gpu7") || !strings.Contains(s, "12.0GB") {
		t.Errorf("String = %q", s)
	}
	if d.ID() != 7 {
		t.Error("ID wrong")
	}
	r, _ := d.Reserve(1 << 20)
	if d.UsedMemory() != 1<<20 {
		t.Errorf("UsedMemory = %d", d.UsedMemory())
	}
	if r.Size() != 1<<20 || r.Device() != d {
		t.Error("reservation accessors wrong")
	}
	b, _ := r.AllocWords(4)
	if len(b.Words()) != 4 {
		t.Error("Words accessor wrong")
	}
	r.Release()
	if d.UsedMemory() != 0 {
		t.Error("release did not return memory")
	}
	// TransferTime estimation without a copy.
	if d.TransferTime(1<<20, true) >= d.TransferTime(1<<20, false) {
		t.Error("pinned estimate should be faster")
	}
	// Event kind strings.
	for k := EventKernel; k <= EventReserveFail; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Error("unknown kind fallback wrong")
	}
}

func TestWithModelOption(t *testing.T) {
	slow := vtime.Default()
	slow.PCIe.PinnedBps = 1e9 // 12x slower
	fast := NewDevice(0, vtime.TeslaK40())
	slowDev := NewDevice(1, vtime.TeslaK40(), WithModel(slow))
	if slowDev.TransferTime(1<<24, true) <= fast.TransferTime(1<<24, true) {
		t.Error("WithModel not applied")
	}
}

func TestGridDeviceAccessor(t *testing.T) {
	d := newTestDevice()
	kr := d.RunKernel("probe", nil, func(g *Grid) (vtime.Duration, error) {
		if g.Device() != d {
			t.Error("grid device accessor wrong")
		}
		return 0, nil
	})
	if kr.Err != nil {
		t.Fatal(kr.Err)
	}
}

func TestParallelForMidRunCancellation(t *testing.T) {
	d := newTestDevice()
	cancel := NewCancel()
	started := make(chan struct{})
	var once sync.Once
	done := make(chan KernelResult, 1)
	go func() {
		done <- d.RunKernel("slow", cancel, func(g *Grid) (vtime.Duration, error) {
			return 0, g.ParallelFor(1<<16, func(lo, hi int) {
				once.Do(func() { close(started) })
				time.Sleep(200 * time.Microsecond)
			})
		})
	}()
	<-started
	cancel.Cancel()
	res := <-done
	if res.Err != ErrCancelled {
		t.Errorf("mid-run cancel: err = %v", res.Err)
	}
}

func TestParallelForSingleWorkerCancelled(t *testing.T) {
	d := newTestDevice()
	cancel := NewCancel()
	cancel.Cancel()
	kr := d.RunKernel("tiny", cancel, func(g *Grid) (vtime.Duration, error) {
		// n=1 takes the single-worker fast path.
		return 0, g.ParallelFor(1, func(lo, hi int) {})
	})
	if kr.Err != ErrCancelled {
		t.Errorf("single-worker cancel: %v", kr.Err)
	}
}

func TestLockSetSpinsCounter(t *testing.T) {
	l := NewLockSet(1)
	l.Lock(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Lock(0) // must spin at least once
		l.Unlock(0)
	}()
	time.Sleep(2 * time.Millisecond)
	l.Unlock(0)
	wg.Wait()
	if l.Spins() == 0 {
		t.Error("contended lock should record spins")
	}
}
