// Package parallel is the engine's chunked host-side worker pool — the
// reproduction's stand-in for the "parallel host threads" that build the
// partial key buffer (paper Section 3) and run the BLU evaluator chain on
// the 96-hardware-thread POWER8 testbed.
//
// The package is dependency-free on purpose: every host-side hot path
// (columnar gather, predicate scans, LCOG/CCAT/HASH key packing, sort key
// generation) shares the same range-splitting discipline so that parallel
// execution stays bit-identical to the sequential reference:
//
//   - [0, n) is split into at most Degree contiguous ranges, each at
//     least `grain` items, and each worker always receives the same
//     range for the same (n, grain, degree) — per-worker partial
//     results indexed by worker id therefore merge deterministically.
//   - Range boundaries are aligned to 64 items, so workers writing
//     disjoint row ranges of a shared bitmap (64 rows per word) never
//     touch the same word.
//   - With a single worker the body runs inline on the calling
//     goroutine: degree 1 *is* the sequential path, not a simulation
//     of it.
package parallel

import (
	"runtime"
	"sync"
)

// rangeAlign aligns worker range boundaries so bitmap words (64 rows)
// are never shared between workers.
const rangeAlign = 64

// Degree normalizes a requested parallelism degree: values >= 1 are
// returned unchanged, anything else defaults to runtime.GOMAXPROCS(0).
// Every consumer of a Degree knob (evaluator.Deps, bsort.Config, the
// engine) funnels through this helper so an unset degree means "use the
// machine", never "run sequentially".
func Degree(d int) int {
	if d >= 1 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// plan computes the worker count and per-worker range size for n items.
// Worker w covers [w*per, min(n, (w+1)*per)).
func plan(n, grain, degree int) (workers, per int) {
	if n <= 0 {
		return 0, 0
	}
	w := Degree(degree)
	if grain < 1 {
		grain = 1
	}
	if maxW := (n + grain - 1) / grain; w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	per = (n + w - 1) / w
	per = (per + rangeAlign - 1) &^ (rangeAlign - 1)
	return (n + per - 1) / per, per
}

// Workers returns the number of workers For launches for n items at the
// given grain and degree. Callers size per-worker partial-result slots
// with it; slot w is filled by exactly the worker that receives range w.
func Workers(n, grain, degree int) int {
	w, _ := plan(n, grain, degree)
	return w
}

// For splits [0, n) into one contiguous, 64-aligned range per worker and
// runs body(lo, hi, worker) for each. Ranges are disjoint and cover
// [0, n); worker w always receives the w-th range in index order, so
// per-worker partials merge deterministically. Items below `grain` per
// worker shrink the pool rather than the chunks. With one worker the
// body runs inline and For is exactly a sequential loop.
func For(n, grain, degree int, body func(lo, hi, worker int)) {
	w, per := plan(n, grain, degree)
	if w == 0 {
		return
	}
	if w == 1 {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		lo := i * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		go func(lo, hi, worker int) {
			defer wg.Done()
			body(lo, hi, worker)
		}(lo, hi, i)
	}
	wg.Wait()
}

// ForErr is For with error propagation. Every worker runs to completion
// (ranges are disjoint, so partial work is never observed); the error of
// the lowest-numbered failing worker is returned, which makes the
// reported error deterministic across degrees.
func ForErr(n, grain, degree int, body func(lo, hi, worker int) error) error {
	w, _ := plan(n, grain, degree)
	if w == 0 {
		return nil
	}
	if w == 1 {
		return body(0, n, 0)
	}
	errs := make([]error, w)
	For(n, grain, degree, func(lo, hi, worker int) {
		errs[worker] = body(lo, hi, worker)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
