package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegreeDefaultsToGOMAXPROCS(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, d := range []int{0, -1, -100} {
		if got := Degree(d); got != want {
			t.Errorf("Degree(%d) = %d, want GOMAXPROCS %d", d, got, want)
		}
	}
	for _, d := range []int{1, 2, 24, 96} {
		if got := Degree(d); got != d {
			t.Errorf("Degree(%d) = %d, want %d", d, got, d)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4097} {
		for _, degree := range []int{1, 2, 8} {
			hits := make([]int32, n)
			For(n, 1, degree, func(lo, hi, worker int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d degree=%d: bad range [%d,%d)", n, degree, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d degree=%d: index %d visited %d times", n, degree, i, h)
				}
			}
		}
	}
}

func TestForRangesAre64Aligned(t *testing.T) {
	For(1000, 1, 8, func(lo, hi, worker int) {
		if lo%64 != 0 {
			t.Errorf("worker %d range starts at %d, not 64-aligned", worker, lo)
		}
		if hi != 1000 && hi%64 != 0 {
			t.Errorf("worker %d range ends at %d, not 64-aligned", worker, hi)
		}
	})
}

func TestForWorkerAssignmentDeterministic(t *testing.T) {
	// Worker w must always receive the w-th range, so per-worker
	// partials merge in a deterministic order.
	n, grain, degree := 10_000, 64, 8
	w := Workers(n, grain, degree)
	type rng struct{ lo, hi int }
	run := func() []rng {
		got := make([]rng, w)
		For(n, grain, degree, func(lo, hi, worker int) {
			got[worker] = rng{lo, hi}
		})
		return got
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("worker ranges changed across runs: %v vs %v", got, first)
		}
	}
	// Ranges must be contiguous and ordered by worker id.
	prev := 0
	for wi, r := range first {
		if r.lo != prev {
			t.Fatalf("worker %d range [%d,%d) not contiguous after %d", wi, r.lo, r.hi, prev)
		}
		prev = r.hi
	}
	if prev != n {
		t.Fatalf("ranges cover [0,%d), want [0,%d)", prev, n)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	calls := 0
	For(100, 1, 1, func(lo, hi, worker int) {
		calls++
		if lo != 0 || hi != 100 || worker != 0 {
			t.Errorf("inline call got [%d,%d) worker %d", lo, hi, worker)
		}
	})
	if calls != 1 {
		t.Errorf("degree 1 made %d calls, want 1 inline call", calls)
	}
}

func TestForGrainLimitsWorkers(t *testing.T) {
	// 100 items with grain 64: at most ceil(100/64)=2 workers,
	// regardless of the requested degree.
	if w := Workers(100, 64, 16); w > 2 {
		t.Errorf("Workers(100, 64, 16) = %d, want <= 2", w)
	}
	if w := Workers(0, 64, 16); w != 0 {
		t.Errorf("Workers(0, ...) = %d, want 0", w)
	}
	if w := Workers(1<<20, 64, 8); w != 8 {
		t.Errorf("Workers(1<<20, 64, 8) = %d, want 8", w)
	}
}

func TestForErrPropagatesLowestWorker(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := ForErr(1024, 1, 8, func(lo, hi, worker int) error {
		switch worker {
		case 2:
			return errHigh
		case 1:
			return errLow
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("ForErr returned %v, want error of lowest failing worker", err)
	}
	if err := ForErr(1024, 1, 8, func(lo, hi, worker int) error { return nil }); err != nil {
		t.Errorf("ForErr with no failures returned %v", err)
	}
	if err := ForErr(0, 1, 8, func(lo, hi, worker int) error { return errLow }); err != nil {
		t.Errorf("ForErr over empty range returned %v", err)
	}
}

func TestForErrSequentialPath(t *testing.T) {
	want := errors.New("boom")
	err := ForErr(10, 1, 1, func(lo, hi, worker int) error { return want })
	if !errors.Is(err, want) {
		t.Errorf("sequential ForErr returned %v", err)
	}
}

func TestForParallelSumMatchesSequential(t *testing.T) {
	n := 100_000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i * 31)
	}
	var seq int64
	for _, v := range data {
		seq += v
	}
	for _, degree := range []int{1, 2, 8} {
		w := Workers(n, 64, degree)
		partial := make([]int64, w)
		For(n, 64, degree, func(lo, hi, worker int) {
			var s int64
			for _, v := range data[lo:hi] {
				s += v
			}
			partial[worker] = s
		})
		var got int64
		for _, s := range partial {
			got += s
		}
		if got != seq {
			t.Errorf("degree %d: parallel sum %d != sequential %d", degree, got, seq)
		}
	}
}
