// Package evaluator implements the BLU group-by evaluator chain of the
// paper's Figures 1 and 2. The host-side evaluators — LCOG/LCOV (load
// grouping keys and payloads), CCAT (concatenate multi-column keys), HASH
// (hash grouping keys, feeding the KMV group estimator) and MEMCPY (stage
// the vectors into the pinned host segment) — transform a columnar table
// plus a selection into the groupby.Input the kernels consume. The LGHT
// and aggregation evaluators of the original CPU chain live in
// groupby.RunCPU.
package evaluator

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"blugpu/internal/columnar"
	"blugpu/internal/groupby"
	"blugpu/internal/hostmem"
	"blugpu/internal/kmv"
	"blugpu/internal/monitor"
	"blugpu/internal/murmur"
	"blugpu/internal/parallel"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// evalGrain is the minimum rows per worker for the parallel evaluators.
const evalGrain = 1024

// AggColumn is one aggregation request: a function over a column.
// Count with an empty column is COUNT(*); Count with a column is
// rewritten to SUM(col IS NOT NULL) so NULLs are not counted.
type AggColumn struct {
	Kind   groupby.AggKind
	Column string
}

// Spec describes one group-by/aggregation.
type Spec struct {
	// Keys are the grouping columns.
	Keys []string
	// Aggs are the aggregation functions.
	Aggs []AggColumn
}

// Deps carries the chain's environment.
type Deps struct {
	// Model is the cost model (required).
	Model *vtime.CostModel
	// Degree is host parallelism for the evaluators.
	Degree int
	// Monitor receives per-evaluator timings; may be nil.
	Monitor *monitor.Monitor
	// Registry is the pinned host segment for MEMCPY staging; nil or
	// exhausted falls back to unregistered memory (slow transfers).
	Registry *hostmem.Registry
	// Stage selects the GPU-bound chain of Figure 2 (with the MEMCPY
	// evaluator). When false, the chain matches Figure 1's CPU shape: no
	// staging happens and no MEMCPY time is charged. The optimizer picks
	// the chain up front from its estimates.
	Stage bool
	// Trace is the parent span for per-evaluator stage spans
	// (LCOG/CCAT/LCOV/HASH/MEMCPY); the zero value disables them.
	Trace trace.Context
	// TraceAt is the virtual-time offset the chain starts at; stage spans
	// lay out sequentially from here.
	TraceAt vtime.Time
}

// KeyField describes how one grouping column is packed into the key.
type KeyField struct {
	Column string
	Type   columnar.Type
	// BitOffset/Bits locate the field in a narrow packed key.
	BitOffset, Bits int
	// ByteOffset/Bytes locate the field in a wide concatenated key.
	ByteOffset, Bytes int
	// MinI rebases Int64 fields (code = value - MinI) in narrow keys.
	MinI int64
	// Dict decodes String fields.
	Dict *columnar.StringColumn
	// HasNull reports whether a NULL code was reserved (code 0; real
	// codes shift up by one).
	HasNull bool
}

// Result is the chain's output: a kernel-ready input plus everything
// needed to decode group keys and account the work.
type Result struct {
	// Input is ready for groupby.RunCPU / groupby.RunGPU.
	Input *groupby.Input
	// Fields decode packed keys back into column values.
	Fields []KeyField
	// Staged is the pinned staging block (nil when staging fell back to
	// unregistered memory). The caller releases it after the kernel call.
	Staged *hostmem.Block
	// Pinned reports whether MEMCPY landed in the registered segment.
	Pinned bool
	// Modeled is total host evaluator time (LCOG+LCOV+CCAT+HASH+MEMCPY).
	Modeled vtime.Duration
}

// BuildInput runs the host evaluator chain over the selected rows of tbl.
// sel may be nil to select every row.
func BuildInput(tbl *columnar.Table, sel *columnar.Bitmap, spec Spec, deps Deps) (*Result, error) {
	if deps.Model == nil {
		return nil, errors.New("evaluator: Deps.Model is required")
	}
	// An unset degree means "use the machine", not "run sequentially":
	// the evaluators are the paper's parallel host threads.
	deps.Degree = parallel.Degree(deps.Degree)
	if len(spec.Keys) == 0 {
		return nil, errors.New("evaluator: at least one grouping column required")
	}

	rows := selectedRows(tbl, sel, deps.Degree)
	n := len(rows)
	at := deps.TraceAt
	record := func(name string, nrows int64, d vtime.Duration) {
		if deps.Monitor != nil {
			deps.Monitor.RecordEvaluator(name, nrows, d)
		}
		if deps.Trace.Enabled() {
			deps.Trace.Emit("eval", name, at, d, trace.Int("rows", nrows))
			at = at.Add(d)
		}
	}

	// --- LCOG: load grouping key columns, compute field geometry ---
	fields, err := planKeyFields(tbl, spec.Keys, deps.Degree)
	if err != nil {
		return nil, err
	}
	lcogT := deps.Model.CPUTime(float64(n*len(spec.Keys)), deps.Model.CPUScanRate, deps.Degree)
	record("LCOG", int64(n), lcogT)

	totalBits := 0
	totalBytes := 0
	for _, f := range fields {
		totalBits += f.Bits
		totalBytes += f.Bytes
	}
	wide := totalBits > 63

	in := &groupby.Input{NumRows: n}
	var ccatT vtime.Duration
	// Each worker packs a disjoint row range into preallocated vectors,
	// so parallel CCAT output is bit-identical to the sequential pack.
	if wide {
		in.KeyBytes = totalBytes
		in.WideKeys = make([][]byte, n)
		flat := make([]byte, n*totalBytes)
		parallel.For(n, evalGrain, deps.Degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				r := rows[i]
				key := flat[i*totalBytes : (i+1)*totalBytes]
				for _, f := range fields {
					encodeWideField(tbl, f, int(r), key[f.ByteOffset:f.ByteOffset+f.Bytes])
				}
				in.WideKeys[i] = key
			}
		})
		ccatT = deps.Model.CPUTime(float64(n*len(fields)), deps.Model.CPUExprRate, deps.Degree)
	} else {
		in.KeyBytes = 8
		in.KeyBits = totalBits
		in.Keys = make([]uint64, n)
		parallel.For(n, evalGrain, deps.Degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				r := rows[i]
				var key uint64
				for _, f := range fields {
					key |= narrowCode(tbl, f, int(r)) << uint(f.BitOffset)
				}
				in.Keys[i] = key
			}
		})
		if len(fields) > 1 {
			ccatT = deps.Model.CPUTime(float64(n*len(fields)), deps.Model.CPUExprRate, deps.Degree)
		}
	}
	record("CCAT", int64(n), ccatT)

	// --- LCOV + aggregation specs ---
	var lcovRows int64
	for _, a := range spec.Aggs {
		aspec, payload, err := buildPayload(tbl, rows, a, deps.Degree)
		if err != nil {
			return nil, err
		}
		in.Aggs = append(in.Aggs, aspec)
		in.Payloads = append(in.Payloads, payload)
		if payload != nil {
			lcovRows += int64(n)
		}
	}
	lcovT := deps.Model.CPUTime(float64(lcovRows), deps.Model.CPUScanRate, deps.Degree)
	record("LCOV", lcovRows, lcovT)

	// --- HASH + KMV ---
	// Each worker hashes its row range into a private KMV sketch; the
	// sketches merge at the end. The union of per-part k-minimum sets
	// contains the global k minima, and merging is order-independent,
	// so the estimate is identical to the sequential sketch's.
	in.Hashes = make([]uint64, n)
	nw := parallel.Workers(n, evalGrain, deps.Degree)
	sketches := make([]*kmv.Sketch, nw)
	for i := range sketches {
		sketches[i] = kmv.MustNew(kmv.DefaultK)
	}
	parallel.For(n, evalGrain, deps.Degree, func(lo, hi, worker int) {
		sk := sketches[worker]
		if wide {
			for i := lo; i < hi; i++ {
				h := murmur.Sum64(in.WideKeys[i], 0x5bd1e995)
				in.Hashes[i] = h
				sk.AddHash(h)
			}
		} else {
			// The HASH evaluator mixes the packed key into a hashed
			// value; the kernel's "mod hash" then maps it onto the
			// table with a mask. Feeding raw packed codes straight to
			// linear probing would cluster catastrophically —
			// dictionary codes are dense and sequential.
			for i := lo; i < hi; i++ {
				h := murmur.Sum64Uint64(in.Keys[i], 0x5bd1e995)
				in.Hashes[i] = h
				sk.AddHash(h)
			}
		}
	})
	sketch := kmv.MustNew(kmv.DefaultK)
	for _, sk := range sketches {
		sketch.Merge(sk)
	}
	in.EstGroups = sketch.EstimateUint64()
	hashT := deps.Model.CPUTime(float64(n), deps.Model.CPUExprRate, deps.Degree)
	record("HASH", int64(n), hashT)

	// --- MEMCPY: stage into the pinned segment (GPU chain only) ---
	res := &Result{Input: in, Fields: fields}
	var memcpyT vtime.Duration
	if deps.Stage {
		stagedBytes := groupby.InputDeviceBytes(in)
		if stagedBytes > 0 {
			if deps.Registry != nil {
				if blk, err := deps.Registry.Alloc(int(stagedBytes)); err == nil {
					stageCopy(blk.Bytes(), in, deps.Degree)
					res.Staged = blk
					res.Pinned = true
				}
			}
			memcpyT = deps.Model.HostCopy(stagedBytes, deps.Degree)
			record("MEMCPY", int64(n), memcpyT)
		}
	}

	res.Modeled = lcogT + ccatT + lcovT + hashT + memcpyT
	return res, nil
}

// DecodeKey reconstructs field f's column value from a narrow packed key.
func DecodeKey(key uint64, f KeyField) columnar.Value {
	code := (key >> uint(f.BitOffset)) & ((1 << uint(f.Bits)) - 1)
	return decodeCode(code, f)
}

// DecodeWideKey reconstructs field f's column value from a wide key.
func DecodeWideKey(key []byte, f KeyField) columnar.Value {
	seg := key[f.ByteOffset : f.ByteOffset+f.Bytes]
	var code uint64
	switch f.Bytes {
	case 4:
		code = uint64(binary.LittleEndian.Uint32(seg))
	default:
		code = binary.LittleEndian.Uint64(seg)
	}
	if f.Type == columnar.Float64 {
		if f.HasNull && code == floatNullCode {
			return columnar.NullValue(columnar.Float64)
		}
		return columnar.FloatValue(math.Float64frombits(code))
	}
	return decodeCode(code, f)
}

// floatNullCode marks NULL in float key fields: a NaN bit pattern that
// arithmetic never produces (quiet NaNs are 0x7FF8...0). Shifting float
// codes like int codes would alias adjacent bit patterns.
const floatNullCode = ^uint64(0)

func decodeCode(code uint64, f KeyField) columnar.Value {
	if f.HasNull {
		if code == 0 {
			return columnar.NullValue(f.Type)
		}
		code--
	}
	switch f.Type {
	case columnar.String:
		return columnar.StringValue(f.Dict.Decode(int32(code)))
	case columnar.Float64:
		return columnar.FloatValue(math.Float64frombits(code))
	default:
		return columnar.IntValue(int64(code) + f.MinI)
	}
}

// --- helpers ---

func selectedRows(tbl *columnar.Table, sel *columnar.Bitmap, degree int) []int32 {
	if sel == nil {
		return columnar.IotaRows(tbl.Rows(), degree)
	}
	return sel.IndicesDegree(degree)
}

// planKeyFields computes per-column packing geometry. Int columns are
// rebased to their min so the code fits the value range; string columns
// use dictionary codes. A NULL code is reserved when the column has nulls.
func planKeyFields(tbl *columnar.Table, keys []string, degree int) ([]KeyField, error) {
	fields := make([]KeyField, 0, len(keys))
	bitOff, byteOff := 0, 0
	for _, name := range keys {
		col := tbl.Column(name)
		if col == nil {
			return nil, fmt.Errorf("evaluator: unknown grouping column %q", name)
		}
		f := KeyField{Column: name, Type: col.Type(), BitOffset: bitOff, ByteOffset: byteOff}
		hasNull := false
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				hasNull = true
				break
			}
		}
		f.HasNull = hasNull
		switch c := col.(type) {
		case *columnar.StringColumn:
			f.Dict = c
			span := uint64(c.DictSize())
			if hasNull {
				span++
			}
			f.Bits = bitsFor(span)
			f.Bytes = 4
		case *columnar.Int64Column:
			minV, maxV := columnMinMax(c, degree)
			f.MinI = minV
			span := uint64(maxV-minV) + 1
			if hasNull {
				span++
			}
			f.Bits = bitsFor(span)
			f.Bytes = 8
		case *columnar.Float64Column:
			f.Bits = 64 // floats group by raw bits: always the wide path
			f.Bytes = 8
		default:
			return nil, fmt.Errorf("evaluator: unsupported key column type %v", col.Type())
		}
		bitOff += f.Bits
		byteOff += f.Bytes
		fields = append(fields, f)
	}
	return fields, nil
}

// columnMinMax scans for the non-null value range with per-worker
// partial minima/maxima reduced in worker order (min/max are exact and
// commutative, so the result is degree-independent).
func columnMinMax(c *columnar.Int64Column, degree int) (minV, maxV int64) {
	data := c.Data()
	nw := parallel.Workers(len(data), evalGrain, degree)
	mins := make([]int64, nw)
	maxs := make([]int64, nw)
	anys := make([]bool, nw)
	parallel.For(len(data), evalGrain, degree, func(lo, hi, worker int) {
		mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
		any := false
		for i := lo; i < hi; i++ {
			if c.IsNull(i) {
				continue
			}
			any = true
			if v := data[i]; v < mn {
				mn = v
			}
			if v := data[i]; v > mx {
				mx = v
			}
		}
		mins[worker], maxs[worker], anys[worker] = mn, mx, any
	})
	minV, maxV = int64(math.MaxInt64), int64(math.MinInt64)
	any := false
	for w := 0; w < nw; w++ {
		if !anys[w] {
			continue
		}
		any = true
		if mins[w] < minV {
			minV = mins[w]
		}
		if maxs[w] > maxV {
			maxV = maxs[w]
		}
	}
	if !any {
		return 0, 0
	}
	return minV, maxV
}

// narrowCode returns the packed code of field f at row r.
func narrowCode(tbl *columnar.Table, f KeyField, r int) uint64 {
	col := tbl.Column(f.Column)
	if col.IsNull(r) {
		return 0
	}
	var code uint64
	switch c := col.(type) {
	case *columnar.StringColumn:
		code = uint64(c.Code(r))
	case *columnar.Int64Column:
		code = uint64(c.Int64(r) - f.MinI)
	}
	if f.HasNull {
		code++
	}
	return code
}

// encodeWideField writes field f's fixed-width encoding at row r into dst.
func encodeWideField(tbl *columnar.Table, f KeyField, r int, dst []byte) {
	col := tbl.Column(f.Column)
	var code uint64
	if col.IsNull(r) {
		if f.Type == columnar.Float64 {
			code = floatNullCode
		}
	} else {
		switch c := col.(type) {
		case *columnar.StringColumn:
			code = uint64(c.Code(r))
			if f.HasNull {
				code++
			}
		case *columnar.Int64Column:
			code = uint64(c.Int64(r) - f.MinI)
			if f.HasNull {
				code++
			}
		case *columnar.Float64Column:
			code = math.Float64bits(c.Float64(r))
		}
	}
	switch f.Bytes {
	case 4:
		binary.LittleEndian.PutUint32(dst, uint32(code))
	default:
		binary.LittleEndian.PutUint64(dst, code)
	}
}

// buildPayload materializes one aggregate's payload vector. NULL inputs
// become the aggregate's identity so they cannot affect the result;
// COUNT(col) is rewritten to SUM(0/1).
func buildPayload(tbl *columnar.Table, rows []int32, a AggColumn, degree int) (groupby.AggSpec, []uint64, error) {
	if a.Kind == groupby.Count && a.Column == "" {
		return groupby.AggSpec{Kind: groupby.Count}, nil, nil
	}
	col := tbl.Column(a.Column)
	if col == nil {
		return groupby.AggSpec{}, nil, fmt.Errorf("evaluator: unknown aggregate column %q", a.Column)
	}
	if a.Kind == groupby.Count {
		// COUNT(col): sum 1 for non-null rows.
		payload := make([]uint64, len(rows))
		parallel.For(len(rows), evalGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				if !col.IsNull(int(rows[i])) {
					payload[i] = 1
				}
			}
		})
		return groupby.AggSpec{Kind: groupby.Sum, Type: columnar.Int64}, payload, nil
	}
	spec := groupby.AggSpec{Kind: a.Kind}
	switch col.Type() {
	case columnar.Int64:
		spec.Type = columnar.Int64
	case columnar.Float64:
		spec.Type = columnar.Float64
	default:
		return groupby.AggSpec{}, nil, fmt.Errorf("evaluator: cannot aggregate %v column %q", col.Type(), a.Column)
	}
	identity := spec.InitWord()
	payload := make([]uint64, len(rows))
	parallel.For(len(rows), evalGrain, degree, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			r := int(rows[i])
			if col.IsNull(r) {
				payload[i] = identity
				continue
			}
			switch c := col.(type) {
			case *columnar.Int64Column:
				payload[i] = uint64(c.Int64(r))
			case *columnar.Float64Column:
				payload[i] = math.Float64bits(c.Float64(r))
			}
		}
	})
	return spec, payload, nil
}

// stageCopy writes the kernel input vectors into the pinned block — the
// MEMCPY evaluator's actual byte traffic. Every row's destination offset
// is computable up front (keys, then hashes, then payloads, 8-byte
// words), so workers copy disjoint regions and the staged bytes are
// identical to a sequential copy.
func stageCopy(dst []byte, in *groupby.Input, degree int) {
	put := func(off int, v uint64) {
		if off+8 <= len(dst) {
			binary.LittleEndian.PutUint64(dst[off:], v)
		}
	}
	n := in.NumRows
	off := 0
	if in.Wide() {
		wpk := (in.KeyBytes + 7) / 8 // words per padded wide key
		parallel.For(n, evalGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				k := in.WideKeys[i]
				o := off + i*wpk*8
				for len(k) >= 8 {
					put(o, binary.LittleEndian.Uint64(k))
					k = k[8:]
					o += 8
				}
				if len(k) > 0 {
					var tail [8]byte
					copy(tail[:], k)
					put(o, binary.LittleEndian.Uint64(tail[:]))
				}
			}
		})
		off += n * wpk * 8
	} else {
		parallel.For(n, evalGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				put(off+i*8, in.Keys[i])
			}
		})
		off += n * 8
	}
	parallel.For(n, evalGrain, degree, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			put(off+i*8, in.Hashes[i])
		}
	})
	off += len(in.Hashes) * 8
	for _, p := range in.Payloads {
		p := p
		base := off
		parallel.For(len(p), evalGrain, degree, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				put(base+i*8, p[i])
			}
		})
		off += len(p) * 8
	}
}

func bitsFor(span uint64) int {
	if span <= 1 {
		return 1
	}
	return bits.Len64(span - 1)
}
