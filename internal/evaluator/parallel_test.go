package evaluator

import (
	"bytes"
	"fmt"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/groupby"
	"blugpu/internal/vtime"
)

var testDegrees = []int{1, 2, 8}

// diffTable builds a table that exercises both key paths: few distinct
// int codes (narrow) plus long strings and a second int column (wide),
// with NULLs sprinkled through keys and payloads.
func diffTable(n int) *columnar.Table {
	kb := columnar.NewInt64Builder("k")
	gb := columnar.NewStringBuilder("g")
	wb := columnar.NewInt64Builder("w")
	vb := columnar.NewFloat64Builder("v")
	for r := 0; r < n; r++ {
		if r%11 == 5 {
			kb.AppendNull()
		} else {
			kb.Append(int64(r%13 - 6))
		}
		if r%17 == 2 {
			gb.AppendNull()
		} else {
			gb.Append(fmt.Sprintf("group-with-a-long-name-%04d", r%29))
		}
		wb.Append(int64(r) * 1_000_003)
		if r%5 == 0 {
			vb.AppendNull()
		} else {
			vb.Append(float64(r) * 0.25)
		}
	}
	return columnar.MustNewTable("t", kb.Build(), gb.Build(), wb.Build(), vb.Build())
}

func buildAt(t *testing.T, tbl *columnar.Table, sel *columnar.Bitmap, spec Spec, degree int) *Result {
	t.Helper()
	res, err := BuildInput(tbl, sel, spec, Deps{Model: vtime.Default(), Degree: degree})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameInput(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	si, pi := seq.Input, par.Input
	if si.NumRows != pi.NumRows || si.KeyBytes != pi.KeyBytes || si.KeyBits != pi.KeyBits {
		t.Fatalf("%s: shape (%d,%d,%d) != (%d,%d,%d)",
			label, pi.NumRows, pi.KeyBytes, pi.KeyBits, si.NumRows, si.KeyBytes, si.KeyBits)
	}
	if si.EstGroups != pi.EstGroups {
		t.Fatalf("%s: EstGroups %d != %d", label, pi.EstGroups, si.EstGroups)
	}
	for i := range si.Keys {
		if si.Keys[i] != pi.Keys[i] {
			t.Fatalf("%s: Keys[%d] = %x, want %x", label, i, pi.Keys[i], si.Keys[i])
		}
	}
	for i := range si.WideKeys {
		if !bytes.Equal(si.WideKeys[i], pi.WideKeys[i]) {
			t.Fatalf("%s: WideKeys[%d] = %x, want %x", label, i, pi.WideKeys[i], si.WideKeys[i])
		}
	}
	for i := range si.Hashes {
		if si.Hashes[i] != pi.Hashes[i] {
			t.Fatalf("%s: Hashes[%d] = %x, want %x", label, i, pi.Hashes[i], si.Hashes[i])
		}
	}
	if len(si.Payloads) != len(pi.Payloads) {
		t.Fatalf("%s: %d payload vectors, want %d", label, len(pi.Payloads), len(si.Payloads))
	}
	for a := range si.Payloads {
		for i := range si.Payloads[a] {
			if si.Payloads[a][i] != pi.Payloads[a][i] {
				t.Fatalf("%s: Payloads[%d][%d] = %x, want %x",
					label, a, i, pi.Payloads[a][i], si.Payloads[a][i])
			}
		}
	}
	if len(seq.Fields) != len(par.Fields) {
		t.Fatalf("%s: %d fields, want %d", label, len(par.Fields), len(seq.Fields))
	}
	for i := range seq.Fields {
		sf, pf := seq.Fields[i], par.Fields[i]
		pf.Dict, sf.Dict = nil, nil
		if sf != pf {
			t.Fatalf("%s: field %d = %+v, want %+v", label, i, pf, sf)
		}
	}
}

// TestBuildInputDegreeMatchesSequential sweeps narrow and wide specs,
// with and without a selection, and proves the chain's functional output
// (keys, hashes, KMV estimate, payloads, field plan) is bit-identical at
// every degree. Modeled time legitimately varies with degree and is not
// compared.
func TestBuildInputDegreeMatchesSequential(t *testing.T) {
	specs := map[string]Spec{
		"narrow": {Keys: []string{"k"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "v"}, {Kind: groupby.Count}}},
		"wide":   {Keys: []string{"k", "g", "w"}, Aggs: []AggColumn{{Kind: groupby.Count, Column: "v"}, {Kind: groupby.Min, Column: "v"}}},
	}
	for _, n := range []int{0, 1, 63, 1000, 4097} {
		tbl := diffTable(n)
		sel := columnar.NewBitmap(n)
		for i := 0; i < n; i++ {
			if i%3 != 1 {
				sel.Set(i)
			}
		}
		for name, spec := range specs {
			for _, s := range []*columnar.Bitmap{nil, sel} {
				seq := buildAt(t, tbl, s, spec, 1)
				for _, d := range testDegrees[1:] {
					par := buildAt(t, tbl, s, spec, d)
					label := fmt.Sprintf("%s n=%d sel=%v degree=%d", name, n, s != nil, d)
					sameInput(t, label, seq, par)
				}
			}
		}
	}
}

// TestDegreeDefaultsToGOMAXPROCS covers the Deps.Degree < 1 path: it must
// behave like an explicit positive degree, not like degree 1 only.
func TestDegreeDefaultsToGOMAXPROCS(t *testing.T) {
	tbl := diffTable(1000)
	spec := Spec{Keys: []string{"k", "g", "w"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "v"}}}
	seq := buildAt(t, tbl, nil, spec, 1)
	def := buildAt(t, tbl, nil, spec, 0)
	sameInput(t, "default degree", seq, def)
}
