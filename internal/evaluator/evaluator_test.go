package evaluator

import (
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/gpu"
	"blugpu/internal/groupby"
	"blugpu/internal/hostmem"
	"blugpu/internal/monitor"
	"blugpu/internal/vtime"
)

// salesTable: 1000 rows, month in 1..12, region in 4 values, qty ints,
// price floats, some NULL qty rows.
func salesTable(t *testing.T) *columnar.Table {
	t.Helper()
	month := columnar.NewInt64Builder("month")
	region := columnar.NewStringBuilder("region")
	qty := columnar.NewInt64Builder("qty")
	price := columnar.NewFloat64Builder("price")
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 1000; i++ {
		month.Append(int64(i%12 + 1))
		region.Append(regions[(i/12)%4])
		if i%10 == 9 {
			qty.AppendNull()
		} else {
			qty.Append(int64(i % 50))
		}
		price.Append(float64(i%30) + 0.25)
	}
	return columnar.MustNewTable("sales", month.Build(), region.Build(), qty.Build(), price.Build())
}

func deps() Deps {
	return Deps{Model: vtime.Default(), Degree: 4}
}

func TestBuildInputNarrow(t *testing.T) {
	tbl := salesTable(t)
	spec := Spec{
		Keys: []string{"month", "region"},
		Aggs: []AggColumn{
			{Kind: groupby.Sum, Column: "qty"},
			{Kind: groupby.Count},
			{Kind: groupby.Min, Column: "price"},
		},
	}
	res, err := BuildInput(tbl, nil, spec, deps())
	if err != nil {
		t.Fatal(err)
	}
	in := res.Input
	if in.Wide() {
		t.Fatal("12 months x 4 regions should pack narrow")
	}
	if in.NumRows != 1000 || len(in.Keys) != 1000 {
		t.Fatalf("rows = %d", in.NumRows)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// 48 distinct (month, region) combinations.
	if in.EstGroups != 48 {
		t.Errorf("estimated groups = %d, want 48 (below KMV k is exact)", in.EstGroups)
	}
	if res.Modeled <= 0 {
		t.Error("chain must charge host time")
	}
	// Run the CPU kernel over it and decode a group key.
	out, err := groupby.RunCPU(in, 4, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != 48 {
		t.Fatalf("groups = %d, want 48", out.Groups)
	}
	foundJan := false
	for g := 0; g < out.Groups; g++ {
		mv := DecodeKey(out.Keys[g], res.Fields[0])
		rv := DecodeKey(out.Keys[g], res.Fields[1])
		if mv.Null || rv.Null {
			t.Fatal("no NULL keys expected")
		}
		if mv.I == 1 && rv.S == "east" {
			foundJan = true
		}
		if mv.I < 1 || mv.I > 12 {
			t.Fatalf("decoded month %d out of range", mv.I)
		}
	}
	if !foundJan {
		t.Error("missing (1, east) group")
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	tbl := salesTable(t)
	spec := Spec{
		Keys: []string{"region"},
		Aggs: []AggColumn{{Kind: groupby.Count, Column: "qty"}, {Kind: groupby.Count}},
	}
	res, err := BuildInput(tbl, nil, spec, deps())
	if err != nil {
		t.Fatal(err)
	}
	// COUNT(qty) is rewritten to SUM of 0/1.
	if res.Input.Aggs[0].Kind != groupby.Sum {
		t.Errorf("COUNT(col) should become SUM, got %v", res.Input.Aggs[0].Kind)
	}
	out, err := groupby.RunCPU(res.Input, 2, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	var countQty, countStar int64
	for g := 0; g < out.Groups; g++ {
		countQty += int64(out.AggWords[0][g])
		countStar += int64(out.AggWords[1][g])
	}
	if countStar != 1000 {
		t.Errorf("COUNT(*) total = %d, want 1000", countStar)
	}
	if countQty != 900 {
		t.Errorf("COUNT(qty) total = %d, want 900 (100 NULLs skipped)", countQty)
	}
}

func TestSelectionBitmap(t *testing.T) {
	tbl := salesTable(t)
	sel := columnar.NewBitmap(tbl.Rows())
	for i := 0; i < 100; i++ {
		sel.Set(i)
	}
	res, err := BuildInput(tbl, sel, Spec{Keys: []string{"month"}, Aggs: []AggColumn{{Kind: groupby.Count}}}, deps())
	if err != nil {
		t.Fatal(err)
	}
	if res.Input.NumRows != 100 {
		t.Errorf("selected rows = %d, want 100", res.Input.NumRows)
	}
}

func TestNullGroupingKey(t *testing.T) {
	b := columnar.NewInt64Builder("k")
	v := columnar.NewInt64Builder("v")
	b.Append(5)
	b.AppendNull()
	b.Append(5)
	b.AppendNull()
	for i := 0; i < 4; i++ {
		v.Append(int64(i))
	}
	tbl := columnar.MustNewTable("t", b.Build(), v.Build())
	res, err := BuildInput(tbl, nil, Spec{Keys: []string{"k"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "v"}}}, deps())
	if err != nil {
		t.Fatal(err)
	}
	out, err := groupby.RunCPU(res.Input, 1, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != 2 {
		t.Fatalf("groups = %d, want 2 (5 and NULL)", out.Groups)
	}
	var gotNull, got5 bool
	for g := 0; g < out.Groups; g++ {
		kv := DecodeKey(out.Keys[g], res.Fields[0])
		if kv.Null {
			gotNull = true
			if int64(out.AggWords[0][g]) != 1+3 {
				t.Errorf("NULL group sum = %d, want 4", int64(out.AggWords[0][g]))
			}
		} else if kv.I == 5 {
			got5 = true
			if int64(out.AggWords[0][g]) != 0+2 {
				t.Errorf("group 5 sum = %d, want 2", int64(out.AggWords[0][g]))
			}
		}
	}
	if !gotNull || !got5 {
		t.Error("expected NULL group and value-5 group")
	}
}

func TestWidePathManyColumns(t *testing.T) {
	// Keys spanning > 63 bits force the wide (CCAT) path: three int
	// columns with huge ranges.
	a := columnar.NewInt64Builder("a")
	b := columnar.NewInt64Builder("b")
	c := columnar.NewInt64Builder("c")
	v := columnar.NewInt64Builder("v")
	for i := 0; i < 500; i++ {
		a.Append(int64(i%7) * 1e15)
		b.Append(int64(i%5) * 1e15)
		c.Append(int64(i%3) * 1e15)
		v.Append(1)
	}
	tbl := columnar.MustNewTable("t", a.Build(), b.Build(), c.Build(), v.Build())
	res, err := BuildInput(tbl, nil, Spec{Keys: []string{"a", "b", "c"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "v"}}}, deps())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Input.Wide() {
		t.Fatal("three 1e15-range keys must take the wide path")
	}
	if err := res.Input.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := groupby.RunCPU(res.Input, 2, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != 7*5*3 {
		t.Fatalf("groups = %d, want 105", out.Groups)
	}
	// Decode one wide key and verify values are multiples of 1e15.
	kv := DecodeWideKey(out.WideKeys[0], res.Fields[0])
	if kv.I%1e15 != 0 {
		t.Errorf("decoded a = %d, want multiple of 1e15", kv.I)
	}
	// Total count preserved.
	var total int64
	for g := 0; g < out.Groups; g++ {
		total += int64(out.AggWords[0][g])
	}
	if total != 500 {
		t.Errorf("sum over groups = %d, want 500", total)
	}
}

func TestPinnedStaging(t *testing.T) {
	tbl := salesTable(t)
	reg, _ := hostmem.NewRegistry(1 << 20)
	mon := monitor.New()
	d := Deps{Model: vtime.Default(), Degree: 2, Registry: reg, Monitor: mon, Stage: true}
	res, err := BuildInput(tbl, nil, Spec{Keys: []string{"month"}, Aggs: []AggColumn{{Kind: groupby.Count}}}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pinned || res.Staged == nil {
		t.Fatal("staging should land in the registered segment")
	}
	if reg.InUse() == 0 {
		t.Error("registry should show the staged block")
	}
	res.Staged.Release()
	if reg.InUse() != 0 {
		t.Error("release should empty the registry")
	}
	// Monitor saw the evaluators.
	names := map[string]bool{}
	for _, e := range mon.Evaluators() {
		names[e.Name] = true
	}
	for _, want := range []string{"LCOG", "HASH", "MEMCPY"} {
		if !names[want] {
			t.Errorf("monitor missing evaluator %s", want)
		}
	}
}

func TestStagingFallsBackWhenExhausted(t *testing.T) {
	tbl := salesTable(t)
	reg, _ := hostmem.NewRegistry(64) // far too small
	d := Deps{Model: vtime.Default(), Degree: 2, Registry: reg, Stage: true}
	res, err := BuildInput(tbl, nil, Spec{Keys: []string{"month"}, Aggs: []AggColumn{{Kind: groupby.Count}}}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pinned || res.Staged != nil {
		t.Error("exhausted registry must fall back to unpinned")
	}
}

func TestErrors(t *testing.T) {
	tbl := salesTable(t)
	if _, err := BuildInput(tbl, nil, Spec{Keys: []string{"nope"}, Aggs: nil}, deps()); err == nil {
		t.Error("unknown key column should error")
	}
	if _, err := BuildInput(tbl, nil, Spec{Keys: nil}, deps()); err == nil {
		t.Error("empty keys should error")
	}
	if _, err := BuildInput(tbl, nil, Spec{Keys: []string{"month"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "nope"}}}, deps()); err == nil {
		t.Error("unknown aggregate column should error")
	}
	if _, err := BuildInput(tbl, nil, Spec{Keys: []string{"month"}, Aggs: []AggColumn{{Kind: groupby.Sum, Column: "region"}}}, deps()); err == nil {
		t.Error("SUM over string should error")
	}
	if _, err := BuildInput(tbl, nil, Spec{Keys: []string{"month"}}, Deps{}); err == nil {
		t.Error("missing model should error")
	}
}

func TestGPUPathEndToEnd(t *testing.T) {
	tbl := salesTable(t)
	spec := Spec{
		Keys: []string{"month"},
		Aggs: []AggColumn{{Kind: groupby.Sum, Column: "qty"}, {Kind: groupby.Max, Column: "price"}},
	}
	res, err := BuildInput(tbl, nil, spec, deps())
	if err != nil {
		t.Fatal(err)
	}
	cpuOut, err := groupby.RunCPU(res.Input, 4, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	dev := newDevice()
	reservation, err := dev.Reserve(groupby.MemoryDemand(res.Input))
	if err != nil {
		t.Fatal(err)
	}
	defer reservation.Release()
	gpuOut, err := groupby.RunGPU(res.Input, reservation, vtime.Default(), groupby.GPUOptions{Pinned: res.Pinned})
	if err != nil {
		t.Fatal(err)
	}
	if cpuOut.Groups != gpuOut.Groups {
		t.Fatalf("cpu %d groups vs gpu %d", cpuOut.Groups, gpuOut.Groups)
	}
	// Compare totals.
	sumOf := func(r *groupby.Result, a int) (tot int64) {
		for g := 0; g < r.Groups; g++ {
			tot += int64(r.AggWords[a][g])
		}
		return
	}
	if sumOf(cpuOut, 0) != sumOf(gpuOut, 0) {
		t.Error("SUM(qty) differs between CPU and GPU paths")
	}
}

func newDevice() *gpu.Device { return gpu.NewDevice(0, vtime.TeslaK40()) }
