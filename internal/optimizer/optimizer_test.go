package optimizer

import (
	"testing"

	"blugpu/internal/columnar"
)

func statsTable(t *testing.T) *columnar.Table {
	t.Helper()
	id := columnar.NewInt64Builder("id")
	month := columnar.NewInt64Builder("month")
	price := columnar.NewFloat64Builder("price")
	state := columnar.NewStringBuilder("state")
	states := []string{"NY", "CA", "TX", "WA"}
	for i := 0; i < 10_000; i++ {
		id.Append(int64(i))
		month.Append(int64(i%12 + 1))
		if i%100 == 0 {
			price.AppendNull()
		} else {
			price.Append(float64(i%500) / 10)
		}
		state.Append(states[i%len(states)])
	}
	return columnar.MustNewTable("sales", id.Build(), month.Build(), price.Build(), state.Build())
}

func TestAnalyze(t *testing.T) {
	ts := Analyze(statsTable(t))
	if ts.Rows != 10_000 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	if got := ts.Columns["month"]; got.NDV != 12 || got.MinI != 1 || got.MaxI != 12 {
		t.Errorf("month stats = %+v", got)
	}
	if got := ts.Columns["state"]; got.NDV != 4 {
		t.Errorf("state NDV = %d, want 4 (dictionary exact)", got.NDV)
	}
	if got := ts.Columns["price"]; got.Nulls != 100 {
		t.Errorf("price nulls = %d, want 100", got.Nulls)
	}
	// id is unique: NDV should be within KMV error of 10k.
	idNDV := float64(ts.Columns["id"].NDV)
	if idNDV < 8500 || idNDV > 11500 {
		t.Errorf("id NDV = %v, want ~10000", idNDV)
	}
}

func TestEstimateGroups(t *testing.T) {
	ts := Analyze(statsTable(t))
	if g := ts.EstimateGroups([]string{"month"}, 10_000); g != 12 {
		t.Errorf("groups(month) = %d, want 12", g)
	}
	// Product of NDVs: 12 * 4 = 48.
	if g := ts.EstimateGroups([]string{"month", "state"}, 10_000); g != 48 {
		t.Errorf("groups(month,state) = %d, want 48", g)
	}
	// Capped by row count.
	if g := ts.EstimateGroups([]string{"id", "month"}, 10_000); g != 10_000 {
		t.Errorf("groups(id,month) = %d, want cap 10000", g)
	}
	// Unknown column falls back to sqrt.
	if g := ts.EstimateGroups([]string{"nope"}, 10_000); g != 100 {
		t.Errorf("groups(unknown) = %d, want 100", g)
	}
	if g := ts.EstimateGroups([]string{"month"}, 0); g != 0 {
		t.Errorf("zero rows should estimate 0 groups, got %d", g)
	}
}

func TestDecideFigure3(t *testing.T) {
	th := DefaultThresholds()
	const devMem = 12 << 30
	cases := []struct {
		name   string
		est    Estimate
		want   Decision
		reason Reason
	}{
		{"small rows -> cpu", Estimate{Rows: 10_000, Groups: 1000, MemoryDemand: 1 << 20}, UseCPU, ReasonSmallRows},
		{"small groups -> cpu", Estimate{Rows: 1_000_000, Groups: 2, MemoryDemand: 1 << 20}, UseCPU, ReasonSmallGroups},
		{"eligible -> gpu", Estimate{Rows: 1_000_000, Groups: 500, MemoryDemand: 1 << 24}, UseGPU, ReasonEligible},
		{"huge rows -> cpu", Estimate{Rows: 500_000_000, Groups: 500, MemoryDemand: 1 << 24}, UseCPU, ReasonTooManyRows},
		{"memory bound -> cpu", Estimate{Rows: 1_000_000, Groups: 500, MemoryDemand: 20 << 30}, UseCPU, ReasonMemory},
	}
	for _, c := range cases {
		got, reason := Decide(c.est, th, devMem)
		if got != c.want || reason != c.reason {
			t.Errorf("%s: got (%v, %v), want (%v, %v)", c.name, got, reason, c.want, c.reason)
		}
	}
	// No device at all.
	if d, r := Decide(Estimate{Rows: 1 << 30}, th, 0); d != UseCPU || r != ReasonNoDevice {
		t.Errorf("no device: (%v, %v)", d, r)
	}
	// The 12-group birth-month example must stay GPU-eligible (T2 < 12).
	if d, _ := Decide(Estimate{Rows: 1_000_000, Groups: 12, MemoryDemand: 1 << 24}, th, devMem); d != UseGPU {
		t.Error("12-group large query should be GPU-eligible (kernel 2 territory)")
	}
}

func TestReasonStrings(t *testing.T) {
	for r := ReasonEligible; r <= ReasonNoDevice; r++ {
		if r.String() == "unknown" {
			t.Errorf("reason %d has no string", r)
		}
	}
	if UseCPU.String() != "cpu" || UseGPU.String() != "gpu" {
		t.Error("decision strings wrong")
	}
}
