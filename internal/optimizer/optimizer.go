// Package optimizer provides the planning metadata the hybrid engine's
// path decisions run on: per-table column statistics (row counts,
// distinct-value estimates, min/max), group-count estimation for
// group-by queries, predicate selectivity guesses, and the Figure-3
// decision procedure with its thresholds T1 (too few rows), T2 (too few
// groups) and T3 (too many rows for device memory).
package optimizer

import (
	"fmt"
	"math"

	"blugpu/internal/columnar"
	"blugpu/internal/kmv"
)

// ColumnStats summarizes one column.
type ColumnStats struct {
	Name string
	Type columnar.Type
	// NDV is the estimated number of distinct values.
	NDV uint64
	// Nulls is the number of NULL rows.
	Nulls int
	// MinI/MaxI bound Int64 columns (valid when the column has a non-null
	// row).
	MinI, MaxI int64
	// MinF/MaxF bound Float64 columns.
	MinF, MaxF float64
}

// TableStats summarizes one table.
type TableStats struct {
	Table   string
	Rows    int
	Columns map[string]ColumnStats
}

// Analyze computes statistics for every column of tbl. NDV for string
// columns is exact (the dictionary size); numeric columns use a KMV
// sketch, matching the engine's runtime estimator.
func Analyze(tbl *columnar.Table) *TableStats {
	ts := &TableStats{
		Table:   tbl.Name(),
		Rows:    tbl.Rows(),
		Columns: make(map[string]ColumnStats, tbl.NumColumns()),
	}
	for _, col := range tbl.Columns() {
		cs := ColumnStats{Name: col.Name(), Type: col.Type()}
		switch c := col.(type) {
		case *columnar.StringColumn:
			cs.NDV = uint64(c.DictSize())
			for i := 0; i < c.Len(); i++ {
				if c.IsNull(i) {
					cs.Nulls++
				}
			}
		case *columnar.Int64Column:
			sk := kmv.MustNew(kmv.DefaultK)
			first := true
			for i, v := range c.Data() {
				if c.IsNull(i) {
					cs.Nulls++
					continue
				}
				sk.AddUint64(uint64(v))
				if first || v < cs.MinI {
					cs.MinI = v
				}
				if first || v > cs.MaxI {
					cs.MaxI = v
				}
				first = false
			}
			cs.NDV = sk.EstimateUint64()
		case *columnar.Float64Column:
			sk := kmv.MustNew(kmv.DefaultK)
			first := true
			for i, v := range c.Data() {
				if c.IsNull(i) {
					cs.Nulls++
					continue
				}
				sk.AddUint64(math.Float64bits(v))
				if first || v < cs.MinF {
					cs.MinF = v
				}
				if first || v > cs.MaxF {
					cs.MaxF = v
				}
				first = false
			}
			cs.NDV = sk.EstimateUint64()
		}
		if cs.NDV == 0 && tbl.Rows() > 0 && cs.Nulls < tbl.Rows() {
			cs.NDV = 1
		}
		ts.Columns[col.Name()] = cs
	}
	return ts
}

// EstimateGroups estimates the group count for grouping on the named
// columns: the product of per-column NDVs, capped by the row count.
// Unknown columns contribute a conservative sqrt(rows).
func (ts *TableStats) EstimateGroups(cols []string, rows int64) uint64 {
	if rows <= 0 {
		return 0
	}
	est := 1.0
	for _, c := range cols {
		if cs, ok := ts.Columns[c]; ok && cs.NDV > 0 {
			est *= float64(cs.NDV)
		} else {
			est *= math.Sqrt(float64(rows))
		}
		if est > float64(rows) {
			return uint64(rows)
		}
	}
	return uint64(est + 0.5)
}

// Selectivity guesses what fraction of rows a predicate keeps. The engine
// uses it to size downstream estimates; exact counts replace it at
// runtime once the scan has executed.
type Selectivity float64

// Standard selectivity guesses, System-R style.
const (
	SelEquality Selectivity = 0.01
	SelRange    Selectivity = 0.33
	SelIn       Selectivity = 0.05
	SelDefault  Selectivity = 0.5
)

// --- Figure 3: path selection ---

// Thresholds are the paper's T1/T2/T3 knobs.
type Thresholds struct {
	// T1Rows: at or below this many input rows the CPU is already fast
	// and transfer overhead dominates — stay on the host.
	T1Rows int64
	// T2Groups: at or below this many groups *and* small rows the CPU
	// wins; with rows above T1 and groups above T2 the GPU path opens.
	T2Groups int64
	// T3Rows: above this many rows the input cannot fit device memory;
	// the prototype processes such queries on the CPU (partitioning
	// across CPU+GPU is future work in the paper).
	T3Rows int64
}

// DefaultThresholds returns the calibrated defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		T1Rows:   50_000,
		T2Groups: 4,
		T3Rows:   200_000_000,
	}
}

// Decision says where a group-by/aggregation (or sort) should run.
type Decision int

// Decisions.
const (
	// UseCPU keeps the whole chain on the host.
	UseCPU Decision = iota
	// UseGPU offloads the heavy phase to a device.
	UseGPU
)

func (d Decision) String() string {
	if d == UseCPU {
		return "cpu"
	}
	return "gpu"
}

// Reason explains a Decision.
type Reason int

// Reasons.
const (
	// ReasonEligible: rows and groups clear T1/T2 and memory fits.
	ReasonEligible Reason = iota
	// ReasonSmallRows: rows <= T1.
	ReasonSmallRows
	// ReasonSmallGroups: groups <= T2.
	ReasonSmallGroups
	// ReasonTooManyRows: rows > T3.
	ReasonTooManyRows
	// ReasonMemory: the up-front demand exceeds every device's capacity.
	ReasonMemory
	// ReasonNoDevice: no GPU configured.
	ReasonNoDevice
)

func (r Reason) String() string {
	switch r {
	case ReasonEligible:
		return "eligible"
	case ReasonSmallRows:
		return "rows<=T1"
	case ReasonSmallGroups:
		return "groups<=T2"
	case ReasonTooManyRows:
		return "rows>T3"
	case ReasonMemory:
		return "exceeds-device-memory"
	case ReasonNoDevice:
		return "no-device"
	default:
		return "unknown"
	}
}

// Estimate is the metadata a decision runs on: optimizer estimates before
// execution, or exact counts once the chain's first phase has run.
type Estimate struct {
	Rows         int64
	Groups       int64
	MemoryDemand int64
}

// Decide implements Figure 3. maxDeviceMem is the largest single device's
// capacity (0 means no device).
func Decide(est Estimate, th Thresholds, maxDeviceMem int64) (Decision, Reason) {
	if maxDeviceMem <= 0 {
		return UseCPU, ReasonNoDevice
	}
	if est.Rows <= th.T1Rows {
		return UseCPU, ReasonSmallRows
	}
	if est.Groups > 0 && est.Groups <= th.T2Groups {
		return UseCPU, ReasonSmallGroups
	}
	if th.T3Rows > 0 && est.Rows > th.T3Rows {
		return UseCPU, ReasonTooManyRows
	}
	if est.MemoryDemand > maxDeviceMem {
		return UseCPU, ReasonMemory
	}
	return UseGPU, ReasonEligible
}

func (ts *TableStats) String() string {
	return fmt.Sprintf("stats(%s: %d rows, %d columns)", ts.Table, ts.Rows, len(ts.Columns))
}

// String renders the Figure-3 knobs compactly, for decision audits.
func (t Thresholds) String() string {
	return fmt.Sprintf("T1=%d T2=%d T3=%d", t.T1Rows, t.T2Groups, t.T3Rows)
}

// Prognosis is one group-by's plan-time path prediction: the estimate
// the decision ran on, the thresholds in force, and the outcome. The
// engine's EXPLAIN renders these, and EXPLAIN ANALYZE carries them into
// the per-operator audit so the plan-time call can be compared with
// what actually ran.
type Prognosis struct {
	Keys       []string
	Estimate   Estimate
	Thresholds Thresholds
	Decision   Decision
	Reason     Reason
}

// Prognose runs Decide and captures its full context for later audit.
func Prognose(keys []string, est Estimate, th Thresholds, maxDeviceMem int64) Prognosis {
	d, r := Decide(est, th, maxDeviceMem)
	return Prognosis{Keys: keys, Estimate: est, Thresholds: th, Decision: d, Reason: r}
}
