package bsort

import (
	"errors"
	"fmt"
)

// SDS is the Sort Data Store of paper Section 3: incoming tuples are
// appended to fixed-capacity buckets and *never move* during the sort —
// all reordering happens in the partial key buffer, whose 4-byte payloads
// address tuples here. Keeping tuples immobile is the point: they "could
// be quite large", and swapping them during sorting would dwarf the key
// work.
type SDS struct {
	bucketCap int
	buckets   [][][]byte
	count     int
}

// DefaultBucketCap is the default tuples-per-bucket.
const DefaultBucketCap = 4096

// NewSDS returns an empty store with the given bucket capacity
// (DefaultBucketCap if <= 0).
func NewSDS(bucketCap int) *SDS {
	if bucketCap <= 0 {
		bucketCap = DefaultBucketCap
	}
	return &SDS{bucketCap: bucketCap}
}

// Append stores one tuple and returns its payload: the stable address the
// partial key buffer carries through every sort pass. Payloads are dense
// row ids (bucket*cap + offset); they fit the paper's 4-byte payload up
// to ~4 billion tuples, after which the buffer would grow its payload
// width — this store rejects that point instead.
func (s *SDS) Append(tuple []byte) (uint32, error) {
	if s.count == 1<<32-1 {
		return 0, errors.New("bsort: SDS exceeds 4-byte payload addressing")
	}
	if len(s.buckets) == 0 || len(s.buckets[len(s.buckets)-1]) == s.bucketCap {
		s.buckets = append(s.buckets, make([][]byte, 0, s.bucketCap))
	}
	last := len(s.buckets) - 1
	s.buckets[last] = append(s.buckets[last], tuple)
	id := uint32(s.count)
	s.count++
	return id, nil
}

// Tuple returns the stored tuple for a payload. The returned slice
// aliases the stored data; sorting never copies it.
func (s *SDS) Tuple(payload uint32) []byte {
	b := int(payload) / s.bucketCap
	o := int(payload) % s.bucketCap
	return s.buckets[b][o]
}

// Len returns the number of stored tuples.
func (s *SDS) Len() int { return s.count }

// Buckets returns the bucket count (monitoring).
func (s *SDS) Buckets() int { return len(s.buckets) }

// KeySource adapts the SDS for sorting: extract derives each tuple's
// fixed-width binary-sortable key (width bytes, padded to a multiple of
// 4). This is the "generate partial keys and payloads" step the host
// threads run per job.
func (s *SDS) KeySource(width int, extract func(tuple []byte, dst []byte)) (*SDSKeySource, error) {
	if width <= 0 {
		return nil, fmt.Errorf("bsort: invalid key width %d", width)
	}
	padded := (width + 3) &^ 3
	return &SDSKeySource{sds: s, width: padded, raw: width, extract: extract}, nil
}

// SDSKeySource derives partial keys from SDS tuples on demand, matching
// the paper's lazy "subsequent fetches of the next partial key".
type SDSKeySource struct {
	sds     *SDS
	width   int // padded to 4
	raw     int
	extract func(tuple, dst []byte)
}

// NumRows implements KeySource.
func (k *SDSKeySource) NumRows() int { return k.sds.Len() }

// MaxDepth implements KeySource.
func (k *SDSKeySource) MaxDepth() int { return k.width / 4 }

// PartialKey implements KeySource: it re-derives the tuple's key and
// returns the 4-byte segment at the requested depth.
func (k *SDSKeySource) PartialKey(row int32, depth int) uint32 {
	buf := make([]byte, k.width)
	k.extract(k.sds.Tuple(uint32(row)), buf[:k.raw])
	var v uint32
	for i := 0; i < 4; i++ {
		v <<= 8
		if idx := depth*4 + i; idx < len(buf) {
			v |= uint32(buf[idx])
		}
	}
	return v
}
