package bsort

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blugpu/internal/gpu"
	"blugpu/internal/parallel"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
)

// Config controls a hybrid sort.
type Config struct {
	// Model is the cost model (required).
	Model *vtime.CostModel
	// Scheduler places GPU jobs; nil disables the device path entirely.
	Scheduler *sched.Scheduler
	// Degree is host-side parallelism for key generation and CPU sorting.
	Degree int
	// GPUThreshold is the minimum job size (rows) worth dispatching to a
	// device; below it, transfer + launch overhead exceeds the gain.
	GPUThreshold int
	// Pinned reports whether the partial key buffer is staged through the
	// registered host segment.
	Pinned bool
	// Partitions > 1 splits the input into that many conflict-free ranges
	// (by leading key byte) before enqueueing, so multiple devices can
	// work without a merge step.
	Partitions int
	// Monitor receives degradation events (GPU sort jobs routed to the
	// host); may be nil.
	Monitor Sink
	// Trace is the parent span for per-job sort spans; the zero value
	// disables them.
	Trace trace.Context
	// TraceBase is the virtual-time offset of the sort's start; job spans
	// lay out sequentially from here (an approximation — CPU and GPU jobs
	// actually drain the queue concurrently).
	TraceBase vtime.Time
}

// Sink receives sort-level degradation events. The engine's performance
// monitor implements it structurally.
type Sink interface {
	RecordFallback(op string, faulted bool)
}

// DefaultGPUThreshold is the default CPU/GPU crossover in rows.
const DefaultGPUThreshold = 1 << 16

// Stats reports how a hybrid sort executed.
type Stats struct {
	Rows     int
	Jobs     int
	GPUJobs  int
	CPUJobs  int
	MaxDepth int // deepest key segment consulted
	// Requeues counts duplicate ranges the GPU handed back for the next
	// key depth; Fallbacks counts GPU-eligible jobs that ended up on the
	// host because placement or a device operation failed.
	Requeues  int
	Fallbacks int

	KeyGen  vtime.Duration // host partial-key/payload generation
	CPUTime vtime.Duration // host sorting
	GPUTime vtime.Duration // busiest device: kernels + transfers
	Modeled vtime.Duration // end-to-end: keygen + max(CPU, GPU)
}

type job struct {
	r     Range
	depth int
	// requeued marks a duplicate range the GPU handed back for the next
	// key depth, so its trace span is distinguishable from a fresh job.
	requeued bool
}

// Sort orders the rows of src ascending by their full binary key, ties
// broken by row id, and returns the permutation of row ids. It implements
// the paper's job-queue design: partial keys are generated on the host,
// large jobs go to the GPU radix kernel which reports duplicate ranges
// for requeueing at the next key depth, and small jobs are sorted on the
// host — both paths draining the same queue.
func Sort(src KeySource, cfg Config) ([]int32, Stats, error) {
	if cfg.Model == nil {
		return nil, Stats{}, errors.New("bsort: Config.Model is required")
	}
	cfg.Degree = parallel.Degree(cfg.Degree)
	if cfg.GPUThreshold <= 0 {
		cfg.GPUThreshold = DefaultGPUThreshold
	}
	n := src.NumRows()
	st := Stats{Rows: n}
	if n == 0 {
		return nil, st, nil
	}

	entries := make([]Entry, n)
	parallel.For(n, keygenGrain, cfg.Degree, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			entries[i] = MakeEntry(0, uint32(i))
		}
	})

	var queue []job
	var keygenRows int64
	var cpuWork float64
	gpuBusy := map[int]vtime.Duration{}

	// rekey regenerates the partial keys for a job's range at its depth,
	// split across the worker pool — the paper's "partial key buffer ...
	// built by parallel host threads". Payloads survive every sort, so the
	// key source is always consulted fresh ("subsequent fetches of the
	// next partial key"), and each worker writes a disjoint range.
	rekey := func(r Range, depth int) {
		parallel.For(r.Len(), keygenGrain, cfg.Degree, func(lo, hi, _ int) {
			for i := r.Lo + lo; i < r.Lo+hi; i++ {
				p := entries[i].Payload()
				entries[i] = MakeEntry(src.PartialKey(int32(p), depth), p)
			}
		})
		keygenRows += int64(r.Len())
	}

	if cfg.Partitions > 1 && n > 1 && src.MaxDepth() > 0 {
		// Conflict-free range partitioning by the leading key byte: each
		// partition sorts independently, so no merge step is ever needed.
		rekey(Range{0, n}, 0)
		scratch := make([]Entry, n)
		offsets := partitionTopByte(entries, cfg.Degree, scratch)
		cpuWork += float64(n) // one extra linear pass
		// Group the 256 buckets into ~Partitions contiguous jobs.
		per := (n + cfg.Partitions - 1) / cfg.Partitions
		lo := 0
		for b := 0; b < 256; {
			hi := lo
			bb := b
			for bb < 256 && hi-lo < per {
				hi = offsets[bb+1]
				bb++
			}
			if hi > lo {
				queue = append(queue, job{r: Range{lo, hi}})
			}
			lo = hi
			b = bb
		}
	} else {
		queue = append(queue, job{r: Range{0, n}})
	}

	// Per-job spans lay out sequentially from the sort's start; each
	// job's duration is its own modeled cost at the configured degree.
	traceAt := cfg.TraceBase
	jobSpan := func(j job) trace.Context {
		if !cfg.Trace.Enabled() {
			return trace.Context{}
		}
		js := cfg.Trace.Begin("sort-job", fmt.Sprintf("job depth=%d", j.depth), traceAt)
		if j.requeued {
			js.Annotate(trace.Int("requeued", 1))
		}
		return js
	}
	endJob := func(js trace.Context, d vtime.Duration, attrs ...trace.Attr) {
		if !js.Enabled() {
			return
		}
		traceAt = traceAt.Add(d)
		js.End(traceAt, attrs...)
	}

	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if j.r.Len() <= 1 {
			continue
		}
		st.Jobs++
		if j.depth > st.MaxDepth {
			st.MaxDepth = j.depth
		}
		js := jobSpan(j)
		if j.depth >= src.MaxDepth() {
			// Keys fully equal: deterministic tie-break by row id.
			sortByPayload(entries[j.r.Lo:j.r.Hi])
			cpuWork += nlogn(j.r.Len())
			st.CPUJobs++
			endJob(js, cfg.Model.CPUTime(nlogn(j.r.Len()), cfg.Model.CPUSortRate, cfg.Degree),
				trace.Str("path", "cpu-tiebreak"), trace.Int("rows", int64(j.r.Len())))
			continue
		}
		rekey(j.r, j.depth)
		rekeyT := cfg.Model.CPUTime(float64(j.r.Len()), cfg.Model.CPUKeyGenRate, cfg.Degree)

		if cfg.Scheduler != nil && j.r.Len() >= cfg.GPUThreshold {
			// Device path: the job needs two entry buffers on the device.
			need := int64(j.r.Len()) * 16
			if placement, err := cfg.Scheduler.TryPlaceTraced(js, traceAt, need); err == nil {
				placement.Reservation().BindSpan(js.ID())
				dups, t, gerr := gpuRadixSort(entries, j.r, placement.Reservation(), cfg.Model, cfg.Pinned)
				placement.Release()
				if gerr == nil {
					cfg.Scheduler.ReportSuccess(placement.Device())
					gpuBusy[placement.Device().ID()] += t
					st.GPUJobs++
					st.Requeues += len(dups)
					for _, d := range dups {
						queue = append(queue, job{r: d, depth: j.depth + 1, requeued: true})
					}
					endJob(js, rekeyT+t, trace.Str("path", "gpu"),
						trace.Int("rows", int64(j.r.Len())), trace.Int("dups", int64(len(dups))))
					continue
				}
				// gpuRadixSort touches the host entries only after every
				// transfer succeeded, so the range is intact for the host
				// path below.
				if errors.Is(gerr, gpu.ErrInjected) {
					cfg.Scheduler.ReportFailure(placement.Device())
				}
				st.Fallbacks++
				if cfg.Monitor != nil {
					cfg.Monitor.RecordFallback("sort", errors.Is(gerr, gpu.ErrInjected))
				}
				js.Annotate(trace.Str("gpu-error", gerr.Error()))
			} else {
				st.Fallbacks++
				if cfg.Monitor != nil {
					cfg.Monitor.RecordFallback("sort", errors.Is(err, gpu.ErrInjected))
				}
			}
			// No device admitted the job (or it failed): fall back to the
			// host, like Section 2.1.1's fallback path.
		}

		// Host path: finish this range completely (all remaining depths
		// plus the row-id tie-break), so it never requeues. Large ranges
		// partition by leading byte and sort bucket-parallel; the modeled
		// cost charge is per-range, so it is identical at any degree.
		hostSortRange(entries, j.r, j.depth, src, cfg.Degree)
		hostWork := nlogn(j.r.Len()) * float64(src.MaxDepth()-j.depth)
		cpuWork += hostWork
		st.CPUJobs++
		endJob(js, rekeyT+cfg.Model.CPUTime(hostWork, cfg.Model.CPUSortRate, cfg.Degree),
			trace.Str("path", "cpu"), trace.Int("rows", int64(j.r.Len())))
	}

	perm := make([]int32, n)
	for i, e := range entries {
		perm[i] = int32(e.Payload())
	}

	st.KeyGen = cfg.Model.CPUTime(float64(keygenRows), cfg.Model.CPUKeyGenRate, cfg.Degree)
	st.CPUTime = cfg.Model.CPUTime(cpuWork, cfg.Model.CPUSortRate, cfg.Degree)
	for _, t := range gpuBusy {
		if t > st.GPUTime {
			st.GPUTime = t
		}
	}
	// CPU jobs and GPU jobs drain the queue concurrently.
	st.Modeled = st.KeyGen + vtime.Max(st.CPUTime, st.GPUTime)
	return perm, st, nil
}

func sortByPayload(es []Entry) {
	sort.Slice(es, func(a, b int) bool { return es[a].Payload() < es[b].Payload() })
}

func nlogn(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	return float64(n) * math.Log2(float64(n))
}
