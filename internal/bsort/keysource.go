// Package bsort implements the paper's hybrid CPU/GPU sort (Section 3).
//
// Tuples stay unmoved in the Sort Data Store (SDS); sorting operates on an
// intermediate *partial key buffer* of (4-byte partial key, 4-byte
// payload) entries, where the key is a binary-sortable prefix of the sort
// key and the payload addresses the tuple. A job queue drives the sort:
// the initial job covers the whole data set; after a GPU radix pass sorts
// a job by its 4-byte prefix, every *duplicate range* (a run of equal
// prefixes) becomes a new job at the next 4-byte key depth. Small jobs are
// sorted on the CPU instead — the transfer plus launch cost exceeds the
// device's advantage — so CPU and GPU run jobs from the same queue
// concurrently, and conflict-free partitioning keeps the design merge-free.
package bsort

import "math"

// KeySource supplies binary-sortable keys for the rows being sorted: the
// engine's window into the SDS buckets. Keys are fixed width and compared
// 4 bytes at a time ("subsequent fetches of the next partial key may be
// required to determine the final ordering").
type KeySource interface {
	// NumRows is the tuple count.
	NumRows() int
	// MaxDepth is the key width in 4-byte segments.
	MaxDepth() int
	// PartialKey returns the 4-byte big-endian-sortable segment at the
	// given depth for the given row.
	PartialKey(row int32, depth int) uint32
}

// BytesKeySource adapts pre-encoded fixed-width sortable byte keys.
type BytesKeySource struct {
	keys  [][]byte
	depth int
}

// NewBytesKeySource wraps keys, which must share a length that is a
// positive multiple of 4 (pad with zeros via EncodePad if needed).
func NewBytesKeySource(keys [][]byte) *BytesKeySource {
	if len(keys) == 0 {
		return &BytesKeySource{}
	}
	return &BytesKeySource{keys: keys, depth: (len(keys[0]) + 3) / 4}
}

// NumRows implements KeySource.
func (s *BytesKeySource) NumRows() int { return len(s.keys) }

// MaxDepth implements KeySource.
func (s *BytesKeySource) MaxDepth() int { return s.depth }

// PartialKey implements KeySource.
func (s *BytesKeySource) PartialKey(row int32, depth int) uint32 {
	k := s.keys[row]
	var v uint32
	for i := 0; i < 4; i++ {
		v <<= 8
		if idx := depth*4 + i; idx < len(k) {
			v |= uint32(k[idx])
		}
	}
	return v
}

// --- order-preserving key encoding ---
//
// The engine transforms every sort column "into a binary stream that is
// sorted on 4 bytes at a time" regardless of type (Section 3). These
// helpers produce big-endian, unsigned-comparable encodings.

// AppendInt64Key appends an order-preserving 8-byte encoding of v
// (offset-binary: flip the sign bit). desc inverts the encoding.
func AppendInt64Key(dst []byte, v int64, desc bool) []byte {
	u := uint64(v) ^ (1 << 63)
	if desc {
		u = ^u
	}
	return appendUint64(dst, u)
}

// AppendFloat64Key appends an order-preserving 8-byte encoding of v using
// the standard IEEE-754 total-order trick.
func AppendFloat64Key(dst []byte, v float64, desc bool) []byte {
	b := math.Float64bits(v)
	if b>>63 == 1 {
		b = ^b // negative: flip all
	} else {
		b |= 1 << 63 // positive: flip sign
	}
	if desc {
		b = ^b
	}
	return appendUint64(dst, b)
}

// AppendUint32Key appends a 4-byte big-endian encoding of v (used for
// dictionary codes, which are order-preserving because dictionaries are
// sorted).
func AppendUint32Key(dst []byte, v uint32, desc bool) []byte {
	if desc {
		v = ^v
	}
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// EncodePad pads dst with zero bytes to a multiple of 4.
func EncodePad(dst []byte) []byte {
	for len(dst)%4 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
