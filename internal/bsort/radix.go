package bsort

import (
	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// Entry packs one partial-key-buffer element: the 4-byte partial key in
// the high word (so unsigned uint64 order sorts by key) and the 4-byte
// payload — the tuple's address in the SDS — in the low word.
type Entry uint64

// MakeEntry builds an entry.
func MakeEntry(key uint32, payload uint32) Entry {
	return Entry(uint64(key)<<32 | uint64(payload))
}

// Key returns the 4-byte partial key.
func (e Entry) Key() uint32 { return uint32(e >> 32) }

// Payload returns the tuple address.
func (e Entry) Payload() uint32 { return uint32(e) }

// Range is a half-open interval of entry indices.
type Range struct{ Lo, Hi int }

// Len returns the range length.
func (r Range) Len() int { return r.Hi - r.Lo }

// gpuRadixSort sorts entries[r.Lo:r.Hi] by partial key on the device — the
// stand-in for Nvidia's Merrill/Grimshaw "Duane" radix sort kernel — and
// returns the duplicate ranges the GPU identifies (runs of more than one
// equal partial key), along with modeled kernel + transfer time.
//
// The device cost is the published kernel's throughput (~1G keys/s on a
// K40); the functional sort is an LSD counting sort over the 4 key bytes.
func gpuRadixSort(entries []Entry, r Range, res *gpu.Reservation, model *vtime.CostModel, pinned bool) ([]Range, vtime.Duration, error) {
	n := r.Len()
	if n <= 1 {
		return nil, 0, nil
	}
	dev := res.Device()

	// Stage the job's slice of the partial key buffer onto the device.
	buf, err := res.AllocWords(n)
	if err != nil {
		return nil, 0, err
	}
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = uint64(entries[r.Lo+i])
	}
	tin, err := dev.CopyToDevice(buf, words, pinned)
	if err != nil {
		return nil, 0, err
	}

	// Scratch buffer for the out-of-place counting-sort passes.
	scratch, err := res.AllocWords(n)
	if err != nil {
		return nil, 0, err
	}

	kr := dev.RunKernelSpan("radix_sort", buf.Span(), nil, func(g *gpu.Grid) (vtime.Duration, error) {
		src, dst := buf.Words(), scratch.Words()
		for pass := 0; pass < 4; pass++ {
			shift := uint(32 + 8*pass)
			var counts [256]int
			for _, w := range src {
				counts[(w>>shift)&0xFF]++
			}
			sum := 0
			for b := 0; b < 256; b++ {
				c := counts[b]
				counts[b] = sum
				sum += c
			}
			for _, w := range src {
				b := (w >> shift) & 0xFF
				dst[counts[b]] = w
				counts[b]++
			}
			src, dst = dst, src
		}
		// 4 passes: result is back in buf.Words().
		return vtime.Duration(float64(n) / model.GPURadixSortRate), nil
	})
	if kr.Err != nil {
		return nil, 0, kr.Err
	}

	// Copy the sorted buffer back.
	tout, err := dev.CopyFromDevice(words, buf, pinned)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < n; i++ {
		entries[r.Lo+i] = Entry(words[i])
	}

	// The GPU identifies duplicate ranges for requeueing.
	var dups []Range
	i := 0
	for i < n {
		j := i + 1
		for j < n && Entry(words[j]).Key() == Entry(words[i]).Key() {
			j++
		}
		if j-i > 1 {
			dups = append(dups, Range{Lo: r.Lo + i, Hi: r.Lo + j})
		}
		i = j
	}
	// The input copy is double-buffered against the radix passes (CUDA
	// streams): the job pays max(transfer, kernel) plus a pipeline-fill
	// chunk rather than the serial sum.
	modeled := gpu.PipelineTime(tin, kr.Modeled) + tout
	return dups, modeled, nil
}
