package bsort

import (
	"sort"
	"sync"

	"blugpu/internal/parallel"
)

// keygenGrain is the minimum rows per worker for partial-key generation;
// SDS key extraction is expensive enough that small chunks still pay.
const keygenGrain = 512

// partitionGrain is the minimum entries per worker for the histogram and
// scatter passes of the conflict-free partition.
const partitionGrain = 4096

// hostPartitionMin is the smallest range worth partition-parallel
// sorting on the host; below it a single comparison sort wins.
const hostPartitionMin = 1 << 14

// BuildKeyBuffer materializes the partial key buffer for every row of
// src at the given depth: entry i carries row i's 4-byte partial key and
// its payload. This is the paper's "partial key buffer ... built by
// parallel host threads" (Section 3); Sort runs the same per-range
// generation internally, and the benchmarks drive this entry point.
func BuildKeyBuffer(src KeySource, depth, degree int) []Entry {
	n := src.NumRows()
	entries := make([]Entry, n)
	parallel.For(n, keygenGrain, degree, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			entries[i] = MakeEntry(src.PartialKey(int32(i), depth), uint32(i))
		}
	})
	return entries
}

// partitionTopByte stably scatters es into 256 buckets by the leading
// byte of the current partial key, using scratch (len >= len(es)) as the
// out-of-place target, and returns the 257 bucket offsets. The histogram
// and the scatter both run on the worker pool; per-(bucket, worker)
// write cursors reproduce the sequential stable scatter exactly, because
// worker ranges cover the input in index order.
func partitionTopByte(es []Entry, degree int, scratch []Entry) [257]int {
	n := len(es)
	nw := parallel.Workers(n, partitionGrain, degree)
	counts := make([][256]int, nw)
	parallel.For(n, partitionGrain, degree, func(lo, hi, worker int) {
		c := &counts[worker]
		for _, e := range es[lo:hi] {
			c[e.Key()>>24]++
		}
	})
	var offsets [257]int
	next := make([][256]int, nw)
	pos := 0
	for b := 0; b < 256; b++ {
		offsets[b] = pos
		for w := 0; w < nw; w++ {
			next[w][b] = pos
			pos += counts[w][b]
		}
	}
	offsets[256] = pos
	parallel.For(n, partitionGrain, degree, func(lo, hi, worker int) {
		nx := &next[worker]
		for _, e := range es[lo:hi] {
			b := e.Key() >> 24
			scratch[nx[b]] = e
			nx[b]++
		}
	})
	copy(es[:n], scratch[:n])
	return offsets
}

// hostSortRange finishes a job's range entirely on the host: entries are
// ordered by every remaining key depth with the row-id tie-break, so the
// range never requeues. Large ranges at degree > 1 take the
// partition-parallel fallback: a conflict-free scatter into 256 buckets
// by the leading byte of the current partial key (the CPU analogue of
// the device's partition pass), then the buckets sort concurrently on a
// small worker pool. The comparator is a total order, so the
// concatenated buckets are bit-identical to a sequential sort.
//
// The caller must have rekeyed the range at `depth` so the top byte of
// each entry's partial key is the partition digit.
func hostSortRange(entries []Entry, r Range, depth int, src KeySource, degree int) {
	maxDepth := src.MaxDepth()
	less := func(a, b Entry) bool {
		pa, pb := a.Payload(), b.Payload()
		for d := depth; d < maxDepth; d++ {
			ka, kb := src.PartialKey(int32(pa), d), src.PartialKey(int32(pb), d)
			if ka != kb {
				return ka < kb
			}
		}
		return pa < pb
	}
	es := entries[r.Lo:r.Hi]
	workers := parallel.Degree(degree)
	if workers <= 1 || len(es) < hostPartitionMin {
		sort.Slice(es, func(a, b int) bool { return less(es[a], es[b]) })
		return
	}
	scratch := make([]Entry, len(es))
	offsets := partitionTopByte(es, degree, scratch)
	buckets := make(chan Range, 256)
	for b := 0; b < 256; b++ {
		if offsets[b+1]-offsets[b] > 1 {
			buckets <- Range{offsets[b], offsets[b+1]}
		}
	}
	close(buckets)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for br := range buckets {
				bs := es[br.Lo:br.Hi]
				sort.Slice(bs, func(a, b int) bool { return less(bs[a], bs[b]) })
			}
		}()
	}
	wg.Wait()
}
