package bsort

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"blugpu/internal/vtime"
)

func TestSDSAppendAndAddressing(t *testing.T) {
	s := NewSDS(4) // tiny buckets to exercise rollover
	var ids []uint32
	for i := 0; i < 11; i++ {
		id, err := s.Append([]byte(fmt.Sprintf("tuple-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if s.Len() != 11 || s.Buckets() != 3 {
		t.Fatalf("len=%d buckets=%d", s.Len(), s.Buckets())
	}
	for i, id := range ids {
		if got := string(s.Tuple(id)); got != fmt.Sprintf("tuple-%02d", i) {
			t.Fatalf("tuple %d = %q", i, got)
		}
	}
}

func TestSDSTuplesNeverMove(t *testing.T) {
	// The address handed out at append time must stay valid after many
	// more appends (buckets grow, existing data stays put).
	s := NewSDS(8)
	id, _ := s.Append([]byte("anchor"))
	first := &s.Tuple(id)[0]
	for i := 0; i < 1000; i++ {
		s.Append([]byte("filler"))
	}
	if &s.Tuple(id)[0] != first {
		t.Error("tuple memory moved after later appends")
	}
}

func TestSDSSortIntegration(t *testing.T) {
	// Store variable-size tuples whose first 8 bytes are a big-endian
	// sortable value; sort through the hybrid path without moving them.
	s := NewSDS(0)
	rng := rand.New(rand.NewSource(5))
	n := 20_000
	vals := make([]int64, n)
	for i := range vals {
		v := rng.Int63n(1 << 40)
		vals[i] = v
		tuple := make([]byte, 8+rng.Intn(24)) // ragged payloads
		binary.BigEndian.PutUint64(tuple, uint64(v))
		if _, err := s.Append(tuple); err != nil {
			t.Fatal(err)
		}
	}
	src, err := s.KeySource(8, func(tuple, dst []byte) { copy(dst, tuple[:8]) })
	if err != nil {
		t.Fatal(err)
	}
	if src.MaxDepth() != 2 {
		t.Fatalf("depth = %d, want 2", src.MaxDepth())
	}
	perm, st, err := Sort(src, Config{Model: vtime.Default(), Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		a := int64(binary.BigEndian.Uint64(s.Tuple(uint32(perm[i-1]))))
		b := int64(binary.BigEndian.Uint64(s.Tuple(uint32(perm[i]))))
		if a > b {
			t.Fatalf("out of order at %d: %d > %d", i, a, b)
		}
	}
	if st.Rows != n {
		t.Errorf("stats rows = %d", st.Rows)
	}
}

func TestSDSKeyWidthPadding(t *testing.T) {
	s := NewSDS(0)
	s.Append([]byte{0xAB, 0xCD, 0xEF})
	// A 3-byte key pads to one 4-byte segment.
	src, err := s.KeySource(3, func(tuple, dst []byte) { copy(dst, tuple) })
	if err != nil {
		t.Fatal(err)
	}
	if src.MaxDepth() != 1 {
		t.Fatalf("depth = %d", src.MaxDepth())
	}
	if got := src.PartialKey(0, 0); got != 0xABCDEF00 {
		t.Errorf("padded key = %08x, want ABCDEF00", got)
	}
	if _, err := s.KeySource(0, nil); err == nil {
		t.Error("zero width should be rejected")
	}
}
