package bsort

import (
	"fmt"
	"math/rand"
	"testing"

	"blugpu/internal/vtime"
)

var testDegrees = []int{1, 2, 8}

// randomVals covers the depth-2 int64 key path with a duplicate-heavy
// distribution so duplicate ranges requeue at the next depth.
func randomVals(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(97) - 48
	}
	return vals
}

func sortDegree(t *testing.T, vals []int64, cfg Config) ([]int32, Stats) {
	t.Helper()
	perm, st, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return perm, st
}

// TestSortDegreeMatchesSequential proves the permutation and the
// queue-shape stats are identical at every degree, for both the CPU-only
// and the partitioned configuration, including sizes that cross the
// partition-parallel host sort threshold.
func TestSortDegreeMatchesSequential(t *testing.T) {
	sizes := []int{0, 1, 5, 63, 1000, hostPartitionMin + 123}
	for _, n := range sizes {
		vals := randomVals(n, int64(n)+1)
		for _, partitions := range []int{0, 4} {
			base := Config{Model: vtime.Default(), Degree: 1, Partitions: partitions}
			seqPerm, seqSt := sortDegree(t, vals, base)
			for _, d := range testDegrees[1:] {
				cfg := base
				cfg.Degree = d
				perm, st := sortDegree(t, vals, cfg)
				label := fmt.Sprintf("n=%d partitions=%d degree=%d", n, partitions, d)
				if len(perm) != len(seqPerm) {
					t.Fatalf("%s: perm length %d != %d", label, len(perm), len(seqPerm))
				}
				for i := range perm {
					if perm[i] != seqPerm[i] {
						t.Fatalf("%s: perm[%d] = %d, want %d", label, i, perm[i], seqPerm[i])
					}
				}
				if st.Jobs != seqSt.Jobs || st.CPUJobs != seqSt.CPUJobs ||
					st.GPUJobs != seqSt.GPUJobs || st.MaxDepth != seqSt.MaxDepth {
					t.Fatalf("%s: stats %+v, want %+v", label, st, seqSt)
				}
			}
		}
	}
}

// TestSortDegreeMatchesWithGPU repeats the differential check with the
// device path enabled, where duplicate ranges requeue at deeper depths.
func TestSortDegreeMatchesWithGPU(t *testing.T) {
	vals := randomVals(1<<17, 7)
	base := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		Degree:       1,
		GPUThreshold: 1 << 12,
	}
	seqPerm, seqSt := sortDegree(t, vals, base)
	if seqSt.GPUJobs == 0 {
		t.Fatal("test did not exercise the GPU path")
	}
	for _, d := range testDegrees[1:] {
		cfg := base
		cfg.Scheduler = twoGPUSched()
		cfg.Degree = d
		perm, st := sortDegree(t, vals, cfg)
		for i := range perm {
			if perm[i] != seqPerm[i] {
				t.Fatalf("degree %d: perm[%d] = %d, want %d", d, i, perm[i], seqPerm[i])
			}
		}
		if st.Jobs != seqSt.Jobs || st.MaxDepth != seqSt.MaxDepth {
			t.Fatalf("degree %d: stats %+v, want %+v", d, st, seqSt)
		}
	}
}

// TestBuildKeyBuffer checks the exported partial-key-buffer build against
// a direct sequential construction at every depth and degree.
func TestBuildKeyBuffer(t *testing.T) {
	vals := randomVals(4097, 3)
	src := intSource(vals)
	for depth := 0; depth < src.MaxDepth(); depth++ {
		want := make([]Entry, src.NumRows())
		for i := range want {
			want[i] = MakeEntry(src.PartialKey(int32(i), depth), uint32(i))
		}
		for _, d := range testDegrees {
			got := BuildKeyBuffer(src, depth, d)
			if len(got) != len(want) {
				t.Fatalf("depth=%d degree=%d: %d entries, want %d", depth, d, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("depth=%d degree=%d: entry %d = %x, want %x", depth, d, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHostSortRangeCrossesPartitionPath sorts a range just above the
// partition threshold directly and checks it against sort at degree 1.
func TestHostSortRangeCrossesPartitionPath(t *testing.T) {
	n := hostPartitionMin + 77
	vals := randomVals(n, 11)
	src := intSource(vals)
	mk := func(degree int) []Entry {
		es := BuildKeyBuffer(src, 0, degree)
		hostSortRange(es, Range{0, n}, 0, src, degree)
		return es
	}
	want := mk(1)
	for _, d := range testDegrees[1:] {
		got := mk(d)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("degree %d: entry %d = %x, want %x", d, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkPartialKeyBuild tracks the paper's host-side partial key
// buffer generation; compare degree sub-benchmarks for the speedup.
func BenchmarkPartialKeyBuild(b *testing.B) {
	const n = 1 << 20
	vals := randomVals(n, 5)
	src := intSource(vals)
	for _, degree := range []int{1, 8} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				BuildKeyBuffer(src, 0, degree)
			}
		})
	}
}
