package bsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"blugpu/internal/gpu"
	"blugpu/internal/sched"
	"blugpu/internal/vtime"
)

func twoGPUSched() *sched.Scheduler {
	s, err := sched.New(gpu.NewDevice(0, vtime.TeslaK40()), gpu.NewDevice(1, vtime.TeslaK40()))
	if err != nil {
		panic(err)
	}
	return s
}

// intSource builds a KeySource over int64 values.
func intSource(vals []int64) *BytesKeySource {
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = AppendInt64Key(nil, v, false)
	}
	return NewBytesKeySource(keys)
}

func checkSorted(t *testing.T, vals []int64, perm []int32) {
	t.Helper()
	if len(perm) != len(vals) {
		t.Fatalf("perm length %d, want %d", len(perm), len(vals))
	}
	seen := make([]bool, len(vals))
	for i := 1; i < len(perm); i++ {
		a, b := vals[perm[i-1]], vals[perm[i]]
		if a > b {
			t.Fatalf("out of order at %d: %d > %d", i, a, b)
		}
		if a == b && perm[i-1] > perm[i] {
			t.Fatalf("tie not broken by row id at %d", i)
		}
	}
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("row %d appears twice", p)
		}
		seen[p] = true
	}
}

func TestEncodings(t *testing.T) {
	// Int64 encoding must be order-preserving under bytewise comparison.
	ints := []int64{-1 << 62, -1000, -1, 0, 1, 7, 1 << 40}
	for i := 1; i < len(ints); i++ {
		a := AppendInt64Key(nil, ints[i-1], false)
		b := AppendInt64Key(nil, ints[i], false)
		if string(a) >= string(b) {
			t.Errorf("int encoding not monotone: %d vs %d", ints[i-1], ints[i])
		}
		// DESC inverts.
		ad := AppendInt64Key(nil, ints[i-1], true)
		bd := AppendInt64Key(nil, ints[i], true)
		if string(ad) <= string(bd) {
			t.Errorf("desc int encoding not anti-monotone: %d vs %d", ints[i-1], ints[i])
		}
	}
	floats := []float64{-1e300, -3.5, -0.0, 0.0, 1e-10, 2.5, 1e300}
	for i := 1; i < len(floats); i++ {
		a := AppendFloat64Key(nil, floats[i-1], false)
		b := AppendFloat64Key(nil, floats[i], false)
		if string(a) > string(b) {
			t.Errorf("float encoding not monotone: %g vs %g", floats[i-1], floats[i])
		}
	}
	u32s := []uint32{0, 1, 255, 1 << 16, 1<<31 + 5}
	for i := 1; i < len(u32s); i++ {
		a := AppendUint32Key(nil, u32s[i-1], false)
		b := AppendUint32Key(nil, u32s[i], false)
		if string(a) >= string(b) {
			t.Errorf("u32 encoding not monotone")
		}
	}
	if got := len(EncodePad([]byte{1, 2, 3})); got != 4 {
		t.Errorf("pad to %d, want 4", got)
	}
}

func TestEntryPacking(t *testing.T) {
	e := MakeEntry(0xDEADBEEF, 42)
	if e.Key() != 0xDEADBEEF || e.Payload() != 42 {
		t.Fatalf("entry round trip: key=%x payload=%d", e.Key(), e.Payload())
	}
	// Entries order by key under plain integer comparison.
	if MakeEntry(2, 0) <= MakeEntry(1, 0xFFFFFFFF) {
		t.Error("entries must order by key first")
	}
}

func TestCPUOnlySort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1000) - 500
	}
	perm, st, err := Sort(intSource(vals), Config{Model: vtime.Default(), Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, vals, perm)
	if st.GPUJobs != 0 {
		t.Errorf("CPU-only config ran %d GPU jobs", st.GPUJobs)
	}
	if st.CPUJobs == 0 || st.Modeled <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHybridSortUsesGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 200_000)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	cfg := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		Degree:       24,
		GPUThreshold: 1 << 14,
		Pinned:       true,
	}
	perm, st, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, vals, perm)
	if st.GPUJobs == 0 {
		t.Error("large sort should dispatch GPU jobs")
	}
	if st.GPUTime <= 0 || st.KeyGen <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDuplicateRangeRecursion(t *testing.T) {
	// Values sharing the top 4 key bytes force duplicate ranges: the high
	// 32 bits of the encoded key are equal for small non-negative ints.
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 100_000)
	for i := range vals {
		vals[i] = rng.Int63n(50_000) // top 4 encoded bytes identical
	}
	cfg := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		Degree:       8,
		GPUThreshold: 1 << 14,
		Pinned:       true,
	}
	perm, st, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, vals, perm)
	if st.MaxDepth == 0 {
		t.Error("duplicate ranges should force deeper key depths")
	}
}

func TestAllEqualKeys(t *testing.T) {
	vals := make([]int64, 70_000)
	cfg := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		GPUThreshold: 1 << 14,
		Degree:       4,
	}
	perm, _, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All equal: permutation must be identity (row-id tie-break).
	for i, p := range perm {
		if int(p) != i {
			t.Fatalf("equal keys should yield identity permutation, perm[%d]=%d", i, p)
		}
	}
}

func TestSmallInputsStayOnCPU(t *testing.T) {
	vals := []int64{5, 3, 8, 1}
	cfg := Config{Model: vtime.Default(), Scheduler: twoGPUSched(), Degree: 2}
	perm, st, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, vals, perm)
	if st.GPUJobs != 0 {
		t.Error("tiny sort must not use the GPU")
	}
}

func TestPartitionedSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int64, 150_000)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	cfg := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		Degree:       16,
		GPUThreshold: 1 << 14,
		Partitions:   4,
		Pinned:       true,
	}
	perm, st, err := Sort(intSource(vals), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, vals, perm)
	if st.Jobs < 2 {
		t.Errorf("partitioned sort should create multiple jobs, got %d", st.Jobs)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	perm, st, err := Sort(intSource(nil), Config{Model: vtime.Default()})
	if err != nil || len(perm) != 0 || st.Rows != 0 {
		t.Errorf("empty sort: perm=%v st=%+v err=%v", perm, st, err)
	}
	perm, _, err = Sort(intSource([]int64{42}), Config{Model: vtime.Default()})
	if err != nil || len(perm) != 1 || perm[0] != 0 {
		t.Errorf("single-row sort: %v, %v", perm, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Sort(intSource([]int64{1}), Config{}); err == nil {
		t.Error("missing model should error")
	}
}

func TestMultiColumnKey(t *testing.T) {
	// Sort by (a ASC, b DESC): encode both into one key.
	type row struct{ a, b int64 }
	rows := []row{{1, 5}, {0, 2}, {1, 9}, {0, 7}, {1, 5}}
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		k := AppendInt64Key(nil, r.a, false)
		k = AppendInt64Key(k, r.b, true)
		keys[i] = k
	}
	perm, _, err := Sort(NewBytesKeySource(keys), Config{Model: vtime.Default(), Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 1, 2, 0, 4} // (0,7) (0,2) (1,9) (1,5)@0 (1,5)@4
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSortMatchesReferenceProperty(t *testing.T) {
	cfg := Config{
		Model:        vtime.Default(),
		Scheduler:    twoGPUSched(),
		Degree:       8,
		GPUThreshold: 256, // force GPU involvement on small inputs
		Pinned:       true,
	}
	f := func(raw []int16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		perm, _, err := Sort(intSource(vals), cfg)
		if err != nil {
			return false
		}
		got := make([]int64, len(vals))
		for i, p := range perm {
			got[i] = vals[p]
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
