package murmur

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Reference vectors produced by the canonical C++ MurmurHash3_x64_128
// implementation with seed 0.
func TestSum128Vectors(t *testing.T) {
	cases := []struct {
		in     string
		h1, h2 uint64
	}{
		{"", 0x0000000000000000, 0x0000000000000000},
		{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"The quick brown fox jumps over the lazy dog", 0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.in), 0)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Sum128(%q) = (%#x, %#x), want (%#x, %#x)", c.in, h1, h2, c.h1, c.h2)
		}
	}
}

func TestSum128AllTailLengths(t *testing.T) {
	// Exercise every tail-length branch (0..15 plus full blocks) and check
	// determinism and that a one-byte change changes the hash.
	buf := make([]byte, 40)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	for n := 0; n <= len(buf); n++ {
		h1a, h2a := Sum128(buf[:n], 42)
		h1b, h2b := Sum128(buf[:n], 42)
		if h1a != h1b || h2a != h2b {
			t.Fatalf("non-deterministic at n=%d", n)
		}
		if n > 0 {
			mod := append([]byte(nil), buf[:n]...)
			mod[n-1] ^= 0x01
			m1, m2 := Sum128(mod, 42)
			if m1 == h1a && m2 == h2a {
				t.Errorf("flipping last byte at n=%d did not change hash", n)
			}
		}
	}
}

func TestSeedChangesHash(t *testing.T) {
	in := []byte("grouping-key")
	a, _ := Sum128(in, 1)
	b, _ := Sum128(in, 2)
	if a == b {
		t.Error("different seeds should produce different hashes")
	}
}

func TestSum64Uint64Distribution(t *testing.T) {
	// Rough avalanche check: consecutive integers should spread across
	// buckets nearly uniformly.
	const buckets = 64
	counts := make([]int, buckets)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		counts[Sum64Uint64(i, 0)%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d entries, want ~%d", b, c, want)
		}
	}
}

func TestSum64MatchesSum128(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		h1, _ := Sum128(data, seed)
		return Sum64(data, seed) == h1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64VsBytesAgreeOnMixing(t *testing.T) {
	// Sum64Uint64 is a different construction than Sum128 over 8 bytes, but
	// both must be deterministic and sensitive to every input bit.
	f := func(v uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return Sum64Uint64(v, 7) == Sum64Uint64(v, 7) &&
			Sum64Uint64(v, 7) != Sum64Uint64(v^1, 7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
