// Package murmur implements the MurmurHash3 x64 128-bit hash function.
//
// The paper's group-by kernels hash grouping keys wider than 64 bits with
// "the Murmur hashing algorithm" (Section 4.3.1); narrower keys use a
// simple mod hash. This is a faithful, allocation-free port of the public
// domain MurmurHash3_x64_128 reference.
package murmur

import "encoding/binary"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 returns the 128-bit MurmurHash3 of data with the given seed, as
// two 64-bit halves.
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = rotl(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = rotl(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)

	h1 += h2
	h2 += h1

	h1 = fmix(h1)
	h2 = fmix(h2)

	h1 += h2
	h2 += h1

	return h1, h2
}

// Sum64 returns the first 64 bits of the 128-bit hash.
func Sum64(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// Sum64Uint64 hashes a single 64-bit value without allocating. It applies
// the Murmur3 finalizer, which is a high-quality 64-bit mixer.
func Sum64Uint64(v, seed uint64) uint64 {
	return fmix(v ^ seed*c1)
}

func rotl(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

func fmix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
