package groupby

import (
	"errors"
	"fmt"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// Kernel identifies one of the three GPU group-by kernels.
type Kernel int

// Kernel choices.
const (
	// KAuto lets the moderator pick.
	KAuto Kernel = iota
	// K1Regular is the global-table atomic kernel (Section 4.3.1).
	K1Regular
	// K2Shared is the shared-memory two-phase kernel (Section 4.3.2).
	K2Shared
	// K3RowLock is the whole-row-lock kernel (Section 4.3.3).
	K3RowLock
)

func (k Kernel) String() string {
	switch k {
	case K1Regular:
		return "k1-regular"
	case K2Shared:
		return "k2-shared"
	case K3RowLock:
		return "k3-rowlock"
	default:
		return "auto"
	}
}

// ManyAggsThreshold is the aggregate count above which per-aggregate
// atomics lose to the row lock ("more than 5", Section 4.3.3).
const ManyAggsThreshold = 5

// LowContentionRatio is the rows/groups ratio below which contention is
// low enough that kernel 3's single lock beats kernel 1's atomics.
const LowContentionRatio = 4

// GPUOptions configures a device execution.
type GPUOptions struct {
	// Kernel forces a specific kernel; KAuto consults the moderator.
	Kernel Kernel
	// Race runs a second eligible kernel concurrently when the
	// reservation has room for its table, keeping the faster result
	// (Section 4.2).
	Race bool
	// Pinned reports whether the input was staged through the registered
	// host segment (fast transfers).
	Pinned bool
	// Feedback, when set, lets the learning moderator override the static
	// kernel choice once it has observed this query signature, and
	// records every execution's outcome.
	Feedback *FeedbackModerator
	// Fused marks a fused-chain execution: the input vectors are already
	// resident on the device (uploaded or reused by the fused pipeline),
	// so no input staging or H2D transfer happens here. The chain-exit
	// result transfer still runs.
	Fused bool
}

// ChooseKernel is the GPU moderator's primary selection, from optimizer
// metadata: estimated groups, exact row count, aggregate count.
func ChooseKernel(in *Input, dev *gpu.Device) Kernel {
	if !in.Wide() && SharedTableFits(in, dev) {
		return K2Shared
	}
	est := float64(in.EstGroups)
	if est == 0 {
		est = float64(in.NumRows)
	}
	ratio := float64(in.NumRows) / est
	if len(in.Aggs) > ManyAggsThreshold || ratio < LowContentionRatio {
		return K3RowLock
	}
	return K1Regular
}

// secondChoice returns the kernel the moderator races against primary, or
// KAuto when none is distinct and eligible.
func secondChoice(primary Kernel, in *Input, dev *gpu.Device) Kernel {
	switch primary {
	case K2Shared:
		return K1Regular
	case K1Regular:
		return K3RowLock
	case K3RowLock:
		if !in.Wide() && SharedTableFits(in, dev) {
			return K2Shared
		}
		return K1Regular
	}
	return KAuto
}

// RunGPU executes the group-by on the device owning res, which must carry
// at least MemoryDemand(in) bytes. It models the pinned/unpinned input
// transfer, initializes the global hash table from the mask, runs the
// selected kernel (racing a second one if requested and affordable),
// handles the table-full error path by doubling the table once, extracts
// the result and models the return transfer.
func RunGPU(in *Input, res *gpu.Reservation, model *vtime.CostModel, opts GPUOptions) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.NumRows == 0 {
		return &Result{AggWords: newAggColumns(len(in.Aggs), 0),
			Stats: ExecStats{Path: PathGPU, Kernel: "empty"}}, nil
	}
	dev := res.Device()
	primary := opts.Kernel
	if primary == KAuto && opts.Feedback != nil {
		primary = opts.Feedback.Choose(in, dev)
	}
	if primary == KAuto {
		primary = ChooseKernel(in, dev)
	}

	var transferIn vtime.Duration
	if !opts.Fused {
		var err error
		transferIn, err = stageInput(in, res, opts.Pinned)
		if err != nil {
			return nil, err
		}
	}

	type attempt struct {
		kernel  Kernel
		result  *Result
		modeled vtime.Duration
		retried int
		table   *deviceTable
	}
	runOne := func(k Kernel) (*attempt, error) {
		slots := TableSlots(in.EstGroups, in.NumRows)
		retried := 0
		for {
			t, initT, err := newDeviceTable(res, in, slots, model, k == K3RowLock)
			if err != nil {
				return nil, err
			}
			var kt vtime.Duration
			switch k {
			case K1Regular:
				kt, _, err = runKernel1(in, t, dev, model, nil)
			case K2Shared:
				kt, _, err = runKernel2(in, t, dev, model, nil)
			case K3RowLock:
				kt, _, err = runKernel3(in, t, dev, model, nil)
			default:
				return nil, fmt.Errorf("groupby: invalid kernel %v", k)
			}
			if errors.Is(err, ErrTableFull) {
				// Error path (Section 4.2): the KMV estimate was low.
				// Double the table and retry within the reservation's
				// headroom; the wasted attempt still costs time.
				if retried >= 1 {
					return nil, ErrTableFull
				}
				retried++
				slots *= 2
				continue
			}
			if err != nil {
				return nil, err
			}
			result, extractT := t.extract(in, model)
			result.Stats.KernelTime = initT + kt + extractT
			return &attempt{kernel: k, result: result, modeled: initT + kt + extractT, retried: retried, table: t}, nil
		}
	}

	winner, err := runOne(primary)
	if err != nil {
		return nil, err
	}
	raced := []string{primary.String()}
	if opts.Feedback != nil {
		opts.Feedback.Observe(in, primary, winner.modeled)
	}

	if opts.Race {
		second := secondChoice(primary, in, dev)
		if second != KAuto && second != primary {
			// Only race when the reservation still has room for the
			// second kernel's table ("if we have enough compute resources
			// and memory on the GPU").
			slots := TableSlots(in.EstGroups, in.NumRows)
			need := TableBytes(slots, in.EntryWords())
			if res.Size()-res.Used() >= need {
				if alt, err := runOne(second); err == nil {
					raced = append(raced, second.String())
					if opts.Feedback != nil {
						opts.Feedback.Observe(in, second, alt.modeled)
					}
					if alt.modeled < winner.modeled {
						winner = alt
					}
				}
			}
		}
	}

	result := winner.result
	transferOut, err := copyResultOut(in, result, winner.table, dev, opts.Pinned)
	if err != nil {
		return nil, err
	}
	result.Stats.Path = PathGPU
	result.Stats.Kernel = winner.kernel.String()
	result.Stats.Retried = winner.retried
	result.Stats.Raced = raced
	result.Stats.TransferIn = transferIn
	result.Stats.TransferOut = transferOut
	// The input transfer is double-buffered against kernel execution
	// (CUDA streams): chunks of the staged vectors copy while earlier
	// chunks are being grouped.
	result.Stats.Modeled = gpu.PipelineTime(transferIn, result.Stats.KernelTime) + transferOut
	return result, nil
}

// copyResultOut performs the chain-exit device-to-host copy of the dense
// result block (groups x entry words). Earlier versions only modeled this
// transfer, which is why historical snapshots report zero
// transfer_d2h_bytes even though every result leaves the device; routing
// the copy through Device.CopyFromDevice makes the D2H counters real and
// gives the injector's D2H site an operation that actually fires. The
// result rows live in the winning kernel's hash table, so the copy
// sources from that table's buffer, bounded to the dense result size.
func copyResultOut(in *Input, result *Result, table *deviceTable, dev *gpu.Device, pinned bool) (vtime.Duration, error) {
	words := int(ResultDeviceBytes(in, result.Groups) / 8)
	if words == 0 || table == nil {
		return 0, nil
	}
	if tw := table.buf.Len(); words > tw {
		words = tw
	}
	dst := make([]uint64, words)
	return dev.CopyFromDevice(dst, table.buf, pinned)
}

// stageInput allocates device buffers for the task's vectors out of the
// reservation and performs the host-to-device copies, in the compressed
// widths InputDeviceBytes models. The kernels read the (identical) host
// slices directly — a simulation shortcut — but the device-memory
// accounting and transfer timing follow the real compressed data.
func stageInput(in *Input, res *gpu.Reservation, pinned bool) (vtime.Duration, error) {
	dev := res.Device()
	var total vtime.Duration
	copyVec := func(vec []uint64) error {
		if len(vec) == 0 {
			return nil
		}
		buf, err := res.AllocWords(len(vec))
		if err != nil {
			return err
		}
		t, err := dev.CopyToDevice(buf, vec, pinned)
		total += t
		return err
	}
	// copyCompressed ships vec as 4-byte codes: two per 64-bit word.
	copyCompressed := func(vec []uint64) error {
		if len(vec) == 0 {
			return nil
		}
		packed := make([]uint64, (len(vec)+1)/2)
		for i, v := range vec {
			packed[i/2] |= (v & 0xFFFFFFFF) << (uint(i%2) * 32)
		}
		return copyVec(packed)
	}
	if in.Wide() {
		kw := in.KeyWords()
		packed := make([]uint64, in.NumRows*kw)
		for i, k := range in.WideKeys {
			packKey(k, packed[i*kw:(i+1)*kw])
		}
		if err := copyVec(packed); err != nil {
			return total, err
		}
		// Wide keys ship their precomputed Murmur hashes; narrow keys do
		// not — the device derives the mod hash from the key itself.
		if err := copyVec(in.Hashes); err != nil {
			return total, err
		}
	} else if in.KeyBits > 0 && in.KeyBits <= 32 {
		if err := copyCompressed(in.Keys); err != nil {
			return total, err
		}
	} else {
		if err := copyVec(in.Keys); err != nil {
			return total, err
		}
	}
	for _, p := range in.Payloads {
		if err := copyCompressed(p); err != nil {
			return total, err
		}
	}
	return total, nil
}
