package groupby

import (
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// --- feedback moderator ---

func TestFeedbackDefersUntilTwoKernels(t *testing.T) {
	m := NewFeedbackModerator()
	dev := testDevice()
	in := buildInput(makeKeys(10000, 500), stdAggs, 500)
	if k := m.Choose(in, dev); k != KAuto {
		t.Errorf("empty moderator should defer, got %v", k)
	}
	m.Observe(in, K1Regular, vtime.Millisecond)
	if k := m.Choose(in, dev); k != KAuto {
		t.Errorf("one kernel observed should still defer, got %v", k)
	}
	m.Observe(in, K3RowLock, 2*vtime.Millisecond)
	if k := m.Choose(in, dev); k != K1Regular {
		t.Errorf("learned choice = %v, want K1 (faster)", k)
	}
}

func TestFeedbackLearnsFromOutcomes(t *testing.T) {
	m := NewFeedbackModerator()
	m.Epsilon = 0 // deterministic for the test
	dev := testDevice()
	in := buildInput(makeKeys(10000, 500), stdAggs, 500)
	// K3 starts slower...
	m.Observe(in, K1Regular, 10*vtime.Millisecond)
	m.Observe(in, K3RowLock, 20*vtime.Millisecond)
	if k := m.Choose(in, dev); k != K1Regular {
		t.Fatalf("choice = %v", k)
	}
	// ...but repeated fast K3 runs flip the EMA.
	for i := 0; i < 20; i++ {
		m.Observe(in, K3RowLock, vtime.Millisecond)
	}
	if k := m.Choose(in, dev); k != K3RowLock {
		t.Errorf("moderator failed to re-learn, still picks %v", k)
	}
}

func TestFeedbackRespectsEligibility(t *testing.T) {
	m := NewFeedbackModerator()
	m.Epsilon = 0
	dev := testDevice()
	wide := buildWideInput(1000, 10, []AggSpec{{Kind: Count}})
	// Teach it that K2 is "fast" for this signature — it must still never
	// pick K2 for wide keys.
	m.Observe(wide, K2Shared, vtime.Microsecond)
	m.Observe(wide, K1Regular, vtime.Millisecond)
	if k := m.Choose(wide, dev); k == K2Shared {
		t.Error("wide keys must never route to the shared-memory kernel")
	}
}

func TestFeedbackDistinguishesSignatures(t *testing.T) {
	m := NewFeedbackModerator()
	m.Epsilon = 0
	dev := testDevice()
	small := buildInput(makeKeys(1000, 10), stdAggs, 10)
	big := buildInput(makeKeys(1_000_000, 10), stdAggs, 10)
	m.Observe(small, K1Regular, vtime.Millisecond)
	m.Observe(small, K2Shared, vtime.Microsecond)
	// The big signature is untrained: must defer.
	if k := m.Choose(big, dev); k != KAuto {
		t.Errorf("untrained signature should defer, got %v", k)
	}
	if k := m.Choose(small, dev); k != K2Shared {
		t.Errorf("trained signature choice = %v", k)
	}
	if obs := m.Observations(small); obs[K1Regular] != 1 || obs[K2Shared] != 1 {
		t.Errorf("observations = %v", obs)
	}
}

func TestRunGPUWithFeedback(t *testing.T) {
	m := NewFeedbackModerator()
	m.Epsilon = 0
	dev := testDevice()
	in := buildInput(makeKeys(30000, 2000), stdAggs, 2000)
	// Two runs: the first trains, both must be correct.
	for i := 0; i < 2; i++ {
		res := reserveFor(t, dev, in)
		out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Pinned: true, Feedback: m})
		res.Release()
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, in, out)
	}
	if obs := m.Observations(in); len(obs) == 0 {
		t.Error("feedback moderator recorded nothing")
	}
}

// --- partitioned multi-GPU group-by ---

func TestPartitionedMatchesCPU(t *testing.T) {
	in := buildInput(makeKeys(40000, 700), stdAggs, 700)
	d0 := gpu.NewDevice(0, vtime.TeslaK40())
	d1 := gpu.NewDevice(1, vtime.TeslaK40())
	// Each chunk needs its own demand; over-reserve simply.
	r0, err := d0.Reserve(MemoryDemand(in))
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Release()
	r1, err := d1.Reserve(MemoryDemand(in))
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Release()
	out, err := RunGPUPartitioned(in, []*gpu.Reservation{r0, r1}, vtime.Default(), GPUOptions{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
	if out.Stats.Kernel == "" || out.Stats.Modeled <= 0 {
		t.Errorf("stats = %+v", out.Stats)
	}
}

func TestPartitionedWideKeys(t *testing.T) {
	in := buildWideInput(12000, 300, []AggSpec{{Kind: Sum, Type: 0}, {Kind: Count}})
	d0 := gpu.NewDevice(0, vtime.TeslaK40())
	d1 := gpu.NewDevice(1, vtime.TeslaK40())
	r0, _ := d0.Reserve(MemoryDemand(in))
	r1, _ := d1.Reserve(MemoryDemand(in))
	defer r0.Release()
	defer r1.Release()
	out, err := RunGPUPartitioned(in, []*gpu.Reservation{r0, r1}, vtime.Default(), GPUOptions{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
}

func TestPartitionedSingleDeviceDegenerate(t *testing.T) {
	in := buildInput(makeKeys(5000, 100), stdAggs, 100)
	dev := testDevice()
	r := reserveFor(t, dev, in)
	defer r.Release()
	out, err := RunGPUPartitioned(in, []*gpu.Reservation{r}, vtime.Default(), GPUOptions{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
}

func TestPartitionedValidation(t *testing.T) {
	in := buildInput(makeKeys(100, 5), stdAggs, 5)
	if _, err := RunGPUPartitioned(in, nil, vtime.Default(), GPUOptions{}); err == nil {
		t.Error("no reservations should error")
	}
	empty := buildInput(nil, stdAggs, 0)
	dev := testDevice()
	r, _ := dev.Reserve(1 << 20)
	defer r.Release()
	out, err := RunGPUPartitioned(empty, []*gpu.Reservation{r}, vtime.Default(), GPUOptions{})
	if err != nil || out.Groups != 0 {
		t.Errorf("empty partitioned run: %v, %v", out, err)
	}
}

func TestPartitionedFasterThanSingleOnTwoDevices(t *testing.T) {
	// Two devices halve the slowest-chunk time for a large task.
	in := buildInput(makeKeys(400000, 50000), stdAggs, 50000)
	model := vtime.Default()
	dev := testDevice()
	r := reserveFor(t, dev, in)
	single, err := RunGPU(in, r, model, GPUOptions{Pinned: true})
	r.Release()
	if err != nil {
		t.Fatal(err)
	}
	d0 := gpu.NewDevice(0, vtime.TeslaK40())
	d1 := gpu.NewDevice(1, vtime.TeslaK40())
	r0, _ := d0.Reserve(MemoryDemand(in))
	r1, _ := d1.Reserve(MemoryDemand(in))
	defer r0.Release()
	defer r1.Release()
	parted, err := RunGPUPartitioned(in, []*gpu.Reservation{r0, r1}, model, GPUOptions{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	if parted.Stats.Modeled >= single.Stats.Modeled {
		t.Errorf("partitioned (%v) should beat single device (%v)", parted.Stats.Modeled, single.Stats.Modeled)
	}
}
