package groupby

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"blugpu/internal/columnar"
	"blugpu/internal/gpu"
	"blugpu/internal/murmur"
	"blugpu/internal/vtime"
)

// buildInput constructs a narrow-key task: keys[i] groups row i; payload
// for each non-COUNT aggregate is derived deterministically from the row.
func buildInput(keys []uint64, aggs []AggSpec, est uint64) *Input {
	n := len(keys)
	in := &Input{
		NumRows:   n,
		Keys:      keys,
		KeyBytes:  8,
		Hashes:    make([]uint64, n),
		Aggs:      aggs,
		Payloads:  make([][]uint64, len(aggs)),
		EstGroups: est,
	}
	for i, k := range keys {
		in.Hashes[i] = k // mod hashing for <=64-bit keys
	}
	for a, spec := range aggs {
		if spec.Kind == Count {
			continue
		}
		p := make([]uint64, n)
		for i := range p {
			if spec.Type == columnar.Float64 {
				p[i] = math.Float64bits(float64(i%17) + 0.5)
			} else {
				p[i] = uint64(int64(i%23 - 11))
			}
		}
		in.Payloads[a] = p
	}
	return in
}

// refGroupBy computes the expected result with plain maps.
func refGroupBy(in *Input) map[uint64][]uint64 {
	out := make(map[uint64][]uint64)
	for i := 0; i < in.NumRows; i++ {
		var k uint64
		if in.Wide() {
			k = murmur.Sum64(in.WideKeys[i], 0)
		} else {
			k = in.Keys[i]
		}
		acc := out[k]
		if acc == nil {
			acc = newAccumulator(in.Aggs)
			out[k] = acc
		}
		for a, spec := range in.Aggs {
			applyAgg(acc, a, spec, payloadAt(in, a, i))
		}
	}
	return out
}

// checkResult verifies res against the map reference.
func checkResult(t *testing.T, in *Input, res *Result) {
	t.Helper()
	want := refGroupBy(in)
	if res.Groups != len(want) {
		t.Fatalf("groups = %d, want %d", res.Groups, len(want))
	}
	for g := 0; g < res.Groups; g++ {
		var k uint64
		if in.Wide() {
			k = murmur.Sum64(res.WideKeys[g], 0)
		} else {
			k = res.Keys[g]
		}
		acc, ok := want[k]
		if !ok {
			t.Fatalf("unexpected group key %v", k)
		}
		for a, spec := range in.Aggs {
			got := res.AggWords[a][g]
			if got != acc[a] {
				t.Fatalf("group %v agg %d (%v): got %#x want %#x", k, a, spec.Kind, got, acc[a])
			}
		}
	}
}

func testDevice() *gpu.Device { return gpu.NewDevice(0, vtime.TeslaK40()) }

func reserveFor(t *testing.T, dev *gpu.Device, in *Input) *gpu.Reservation {
	t.Helper()
	res, err := dev.Reserve(MemoryDemand(in))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var stdAggs = []AggSpec{
	{Kind: Sum, Type: columnar.Int64},
	{Kind: Count},
	{Kind: Min, Type: columnar.Int64},
	{Kind: Max, Type: columnar.Float64},
}

func makeKeys(n, groups int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64((i*2654435761 + 7) % groups)
	}
	return keys
}

func TestCPUGroupBy(t *testing.T) {
	in := buildInput(makeKeys(10000, 100), stdAggs, 100)
	res, err := RunCPU(in, 24, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res)
	if res.Stats.Path != PathCPU || res.Stats.Modeled <= 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestCPUSingleThread(t *testing.T) {
	in := buildInput(makeKeys(500, 7), stdAggs, 7)
	res, err := RunCPU(in, 1, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res)
}

func TestGPUKernel1(t *testing.T) {
	in := buildInput(makeKeys(20000, 3000), stdAggs, 3000)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K1Regular, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
	if out.Stats.Kernel != "k1-regular" {
		t.Errorf("kernel = %s", out.Stats.Kernel)
	}
	if out.Stats.TransferIn <= 0 || out.Stats.TransferOut <= 0 || out.Stats.Modeled <= 0 {
		t.Errorf("transfer times missing: %+v", out.Stats)
	}
}

func TestGPUKernel2SmallGroups(t *testing.T) {
	// 12 groups (the birth-month example): fits shared memory easily.
	in := buildInput(makeKeys(50000, 12), stdAggs, 12)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K2Shared, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
}

func TestGPUKernel3RowLock(t *testing.T) {
	manyAggs := []AggSpec{
		{Kind: Sum, Type: columnar.Int64},
		{Kind: Sum, Type: columnar.Float64},
		{Kind: Min, Type: columnar.Int64},
		{Kind: Max, Type: columnar.Int64},
		{Kind: Min, Type: columnar.Float64},
		{Kind: Max, Type: columnar.Float64},
		{Kind: Count},
	}
	in := buildInput(makeKeys(20000, 5000), manyAggs, 5000)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K3RowLock, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
}

func buildWideInput(n, groups int, aggs []AggSpec) *Input {
	in := &Input{
		NumRows:   n,
		KeyBytes:  16,
		WideKeys:  make([][]byte, n),
		Hashes:    make([]uint64, n),
		Aggs:      aggs,
		Payloads:  make([][]uint64, len(aggs)),
		EstGroups: uint64(groups),
	}
	for i := 0; i < n; i++ {
		k := make([]byte, 16)
		g := uint64(i % groups)
		binary.LittleEndian.PutUint64(k, g)
		binary.LittleEndian.PutUint64(k[8:], g*31+7)
		in.WideKeys[i] = k
		in.Hashes[i] = murmur.Sum64(k, 0) // Murmur for >64-bit keys
	}
	for a, spec := range aggs {
		if spec.Kind == Count {
			continue
		}
		p := make([]uint64, n)
		for i := range p {
			p[i] = uint64(int64(i % 13))
		}
		in.Payloads[a] = p
	}
	return in
}

func TestGPUWideKeys(t *testing.T) {
	aggs := []AggSpec{{Kind: Sum, Type: columnar.Int64}, {Kind: Count}}
	in := buildWideInput(8000, 250, aggs)
	dev := testDevice()
	for _, k := range []Kernel{K1Regular, K3RowLock} {
		res := reserveFor(t, dev, in)
		out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: k, Pinned: true})
		res.Release()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		checkResult(t, in, out)
	}
}

func TestCPUWideKeys(t *testing.T) {
	aggs := []AggSpec{{Kind: Max, Type: columnar.Int64}}
	in := buildWideInput(3000, 40, aggs)
	res, err := RunCPU(in, 8, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res)
}

func TestErrorPathRetry(t *testing.T) {
	// Estimate of 10 but 200 actual groups: table fills, the error path
	// doubles once; 10*1.5 -> 16 slots, doubled to 32 — still too small,
	// so the retry fails and the caller falls back.
	in := buildInput(makeKeys(5000, 200), stdAggs, 10)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	_, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K1Regular, Pinned: true})
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("want ErrTableFull after exhausted retry, got %v", err)
	}
}

func TestErrorPathRetrySucceeds(t *testing.T) {
	// Estimate 40 -> 64 slots; 100 actual groups overflow; doubling to 128
	// slots fits. The query must still complete (Section 4.2).
	in := buildInput(makeKeys(5000, 100), stdAggs, 40)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K1Regular, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
	if out.Stats.Retried != 1 {
		t.Errorf("retried = %d, want 1", out.Stats.Retried)
	}
}

func TestModeratorChoice(t *testing.T) {
	dev := testDevice()
	// Few groups -> K2.
	small := buildInput(makeKeys(1000, 12), stdAggs, 12)
	if k := ChooseKernel(small, dev); k != K2Shared {
		t.Errorf("12 groups -> %v, want k2", k)
	}
	// Regular -> K1.
	reg := buildInput(makeKeys(100000, 5000), stdAggs, 5000)
	if k := ChooseKernel(reg, dev); k != K1Regular {
		t.Errorf("regular -> %v, want k1", k)
	}
	// Many aggregates -> K3.
	manyAggs := make([]AggSpec, 7)
	for i := range manyAggs {
		manyAggs[i] = AggSpec{Kind: Sum, Type: columnar.Int64}
	}
	many := buildInput(makeKeys(100000, 5000), manyAggs, 5000)
	if k := ChooseKernel(many, dev); k != K3RowLock {
		t.Errorf("many aggs -> %v, want k3", k)
	}
	// Low contention (rows ~ groups) -> K3.
	low := buildInput(makeKeys(10000, 10000), stdAggs, 10000)
	if k := ChooseKernel(low, dev); k != K3RowLock {
		t.Errorf("low contention -> %v, want k3", k)
	}
	// Wide keys never pick K2.
	wide := buildWideInput(1000, 5, []AggSpec{{Kind: Count}})
	if k := ChooseKernel(wide, dev); k == K2Shared {
		t.Error("wide keys must not pick the shared-memory kernel")
	}
}

func TestAutoKernelRuns(t *testing.T) {
	in := buildInput(makeKeys(30000, 12), stdAggs, 12)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
	if out.Stats.Kernel != "k2-shared" {
		t.Errorf("auto choice = %s, want k2-shared", out.Stats.Kernel)
	}
}

func TestKernelRace(t *testing.T) {
	in := buildInput(makeKeys(20000, 12), stdAggs, 12)
	dev := testDevice()
	res := reserveFor(t, dev, in)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Race: true, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, out)
	if len(out.Stats.Raced) != 2 {
		t.Errorf("raced = %v, want two kernels", out.Stats.Raced)
	}
	// The winner of a k2-eligible race should be k2.
	if out.Stats.Kernel != "k2-shared" {
		t.Errorf("race winner = %s, want k2-shared", out.Stats.Kernel)
	}
}

func TestRaceSkippedWhenNoHeadroom(t *testing.T) {
	in := buildInput(makeKeys(5000, 12), stdAggs, 12)
	dev := testDevice()
	// Reserve exactly enough for input + one table + result: no headroom.
	slots := TableSlots(in.EstGroups, in.NumRows)
	tight := InputDeviceBytes(in) + TableBytes(slots, in.EntryWords()) + ResultDeviceBytes(in, 12)
	res, err := dev.Reserve(tight)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Race: true, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.Raced) != 1 {
		t.Errorf("race should be skipped without memory headroom, raced=%v", out.Stats.Raced)
	}
}

func TestMaskTable1(t *testing.T) {
	// The paper's Table 1: SELECT SUM(C1), MAX(C2), MIN(C3) ... GROUP BY C1
	// with C1, C2 64-bit ints and C3 32-bit int (we model it as Int64).
	in := &Input{
		NumRows:  0,
		Keys:     []uint64{},
		KeyBytes: 8,
		Hashes:   []uint64{},
		Aggs: []AggSpec{
			{Kind: Sum, Type: columnar.Int64},
			{Kind: Max, Type: columnar.Int64},
			{Kind: Min, Type: columnar.Int64},
		},
		Payloads: [][]uint64{{}, {}, {}},
	}
	mask := Mask(in)
	if len(mask) != in.EntryWords() {
		t.Fatalf("mask len = %d, want %d", len(mask), in.EntryWords())
	}
	if mask[0] != EmptyKey {
		t.Errorf("key mask = %#x, want all Fs", mask[0])
	}
	if mask[1] != 0 {
		t.Errorf("SUM init = %d, want 0", mask[1])
	}
	if int64(mask[2]) != math.MinInt64 {
		t.Errorf("MAX init = %d, want -9223372036854775808", int64(mask[2]))
	}
	if int64(mask[3]) != math.MaxInt64 {
		t.Errorf("MIN init = %d, want 9223372036854775807", int64(mask[3]))
	}
	// 4 words -> padded to 16-byte boundary already (4 words = 32 bytes).
	if in.EntryWords()%2 != 0 {
		t.Error("entry must be 16-byte aligned")
	}
}

func TestMaskFloatInits(t *testing.T) {
	in := &Input{
		NumRows: 0, Keys: []uint64{}, KeyBytes: 8, Hashes: []uint64{},
		Aggs: []AggSpec{
			{Kind: Min, Type: columnar.Float64},
			{Kind: Max, Type: columnar.Float64},
		},
		Payloads: [][]uint64{{}, {}},
	}
	mask := Mask(in)
	if !math.IsInf(math.Float64frombits(mask[1]), 1) {
		t.Error("float MIN init should be +Inf")
	}
	if !math.IsInf(math.Float64frombits(mask[2]), -1) {
		t.Error("float MAX init should be -Inf")
	}
}

func TestValidate(t *testing.T) {
	good := buildInput(makeKeys(10, 2), stdAggs, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := buildInput(makeKeys(10, 2), stdAggs, 2)
	bad.Keys = bad.Keys[:5]
	if err := bad.Validate(); err == nil {
		t.Error("short keys should fail validation")
	}
	sentinel := buildInput(makeKeys(10, 2), stdAggs, 2)
	sentinel.Keys[3] = EmptyKey
	if err := sentinel.Validate(); err == nil {
		t.Error("sentinel key collision should fail validation")
	}
	countPayload := buildInput(makeKeys(10, 2), []AggSpec{{Kind: Count}}, 2)
	countPayload.Payloads[0] = make([]uint64, 10)
	if err := countPayload.Validate(); err == nil {
		t.Error("COUNT with payload should fail validation")
	}
	strAgg := buildInput(makeKeys(10, 2), []AggSpec{{Kind: Sum, Type: columnar.String}}, 2)
	if err := strAgg.Validate(); err == nil {
		t.Error("string payload should fail validation")
	}
}

func TestMemoryDemand(t *testing.T) {
	in := buildInput(makeKeys(1000, 50), stdAggs, 50)
	d := MemoryDemand(in)
	// Must cover at least the input vectors and the table.
	min := InputDeviceBytes(in) + TableBytes(TableSlots(50, 1000), in.EntryWords())
	if d < min {
		t.Errorf("demand %d < floor %d", d, min)
	}
	// Unknown estimate blows the table up to row count.
	unknown := buildInput(makeKeys(1000, 50), stdAggs, 0)
	if MemoryDemand(unknown) <= d {
		t.Error("unknown group estimate should demand more memory")
	}
}

func TestTableSlots(t *testing.T) {
	if s := TableSlots(0, 100); s < 150 {
		t.Errorf("unknown estimate: slots=%d, want >= 1.5x rows", s)
	}
	if s := TableSlots(10, 1_000_000); s != 16 {
		t.Errorf("est 10 -> %d slots, want 16", s)
	}
	if s := TableSlots(1000, 1_000_000); s != 2048 {
		t.Errorf("est 1000 -> %d slots, want 2048", s)
	}
	// Power of two.
	for _, est := range []uint64{1, 5, 100, 999, 12345} {
		s := TableSlots(est, 1<<20)
		if s&(s-1) != 0 {
			t.Errorf("slots %d not a power of two", s)
		}
	}
}

func TestGPUCostShapes(t *testing.T) {
	model := vtime.Default()
	dev := testDevice()
	// Shared-memory kernel should model faster than k1 on few groups.
	in := buildInput(makeKeys(200000, 12), stdAggs, 12)
	res1 := reserveFor(t, dev, in)
	k1, err := RunGPU(in, res1, model, GPUOptions{Kernel: K1Regular, Pinned: true})
	res1.Release()
	if err != nil {
		t.Fatal(err)
	}
	res2 := reserveFor(t, dev, in)
	k2, err := RunGPU(in, res2, model, GPUOptions{Kernel: K2Shared, Pinned: true})
	res2.Release()
	if err != nil {
		t.Fatal(err)
	}
	if k2.Stats.KernelTime >= k1.Stats.KernelTime {
		t.Errorf("k2 (%v) should beat k1 (%v) on 12 groups", k2.Stats.KernelTime, k1.Stats.KernelTime)
	}
}

func TestK3BeatsK1OnManyAggs(t *testing.T) {
	model := vtime.Default()
	dev := testDevice()
	aggs := make([]AggSpec, 8)
	for i := range aggs {
		aggs[i] = AggSpec{Kind: Sum, Type: columnar.Int64}
	}
	in := buildInput(makeKeys(100000, 50000), aggs, 50000)
	res1 := reserveFor(t, dev, in)
	k1, err := RunGPU(in, res1, model, GPUOptions{Kernel: K1Regular, Pinned: true})
	res1.Release()
	if err != nil {
		t.Fatal(err)
	}
	res3 := reserveFor(t, dev, in)
	k3, err := RunGPU(in, res3, model, GPUOptions{Kernel: K3RowLock, Pinned: true})
	res3.Release()
	if err != nil {
		t.Fatal(err)
	}
	if k3.Stats.KernelTime >= k1.Stats.KernelTime {
		t.Errorf("k3 (%v) should beat k1 (%v) with 8 aggregates at low contention",
			k3.Stats.KernelTime, k1.Stats.KernelTime)
	}
}

func TestEmptyInput(t *testing.T) {
	in := buildInput(nil, stdAggs, 0)
	cpu, err := RunCPU(in, 4, vtime.Default())
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Groups != 0 {
		t.Error("empty input should give zero groups")
	}
	dev := testDevice()
	res, _ := dev.Reserve(1 << 20)
	defer res.Release()
	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Groups != 0 {
		t.Error("empty GPU input should give zero groups")
	}
}

func TestGPUMatchesCPUProperty(t *testing.T) {
	model := vtime.Default()
	dev := testDevice()
	f := func(seed uint32, groupsRaw uint8, kernelRaw uint8) bool {
		groups := int(groupsRaw%60) + 1
		n := 500 + int(seed%2000)
		keys := make([]uint64, n)
		r := uint64(seed)*2654435761 + 1
		for i := range keys {
			r = r*6364136223846793005 + 1442695040888963407
			keys[i] = (r >> 33) % uint64(groups)
		}
		in := buildInput(keys, stdAggs, uint64(groups))
		cpuRes, err := RunCPU(in, 8, model)
		if err != nil {
			return false
		}
		kernel := []Kernel{KAuto, K1Regular, K3RowLock}[kernelRaw%3]
		res, err := dev.Reserve(MemoryDemand(in))
		if err != nil {
			return false
		}
		defer res.Release()
		gpuRes, err := RunGPU(in, res, model, GPUOptions{Kernel: kernel, Pinned: true})
		if err != nil {
			return false
		}
		if cpuRes.Groups != gpuRes.Groups {
			return false
		}
		// Compare as sorted (key, aggs...) tuples.
		return sameResults(cpuRes, gpuRes, len(stdAggs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func sameResults(a, b *Result, aggs int) bool {
	type row struct {
		key  uint64
		aggs [8]uint64
	}
	collect := func(r *Result) []row {
		rows := make([]row, r.Groups)
		for g := 0; g < r.Groups; g++ {
			rows[g].key = r.Keys[g]
			for x := 0; x < aggs; x++ {
				rows[g].aggs[x] = r.AggWords[x][g]
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		return rows
	}
	ra, rb := collect(a), collect(b)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}
