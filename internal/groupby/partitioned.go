package groupby

import (
	"errors"
	"fmt"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// RunGPUPartitioned executes one group-by across several devices: the
// input is split into contiguous chunks, each chunk runs the full kernel
// pipeline on its own device, and the per-device partial results are
// merged on the host ("the input data is partitioned ... into multiple
// smaller chunks, and these smaller chunks are sent to some number of
// available GPU devices, to be operated on concurrently. The results are
// then merged together in the final step", Section 2.2).
//
// The paper's prototype routes over-T3 queries to the CPU instead; this
// is the multi-device path it describes as the design intent. Each
// reservation must carry MemoryDemand of its chunk; devices work
// concurrently, so the modeled device time is the slowest chunk, plus
// the host-side merge.
func RunGPUPartitioned(in *Input, reservations []*gpu.Reservation, model *vtime.CostModel, opts GPUOptions) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(reservations) == 0 {
		return nil, errors.New("groupby: partitioned run needs at least one reservation")
	}
	if in.NumRows == 0 {
		return &Result{AggWords: newAggColumns(len(in.Aggs), 0),
			Stats: ExecStats{Path: PathGPU, Kernel: "empty"}}, nil
	}
	parts := len(reservations)
	if parts > in.NumRows {
		parts = in.NumRows
		reservations = reservations[:parts]
	}

	// Split into contiguous row chunks.
	chunk := (in.NumRows + parts - 1) / parts
	partials := make([]*Result, 0, parts)
	var slowest vtime.Duration
	var raced []string
	for p := 0; p < parts; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > in.NumRows {
			hi = in.NumRows
		}
		if lo >= hi {
			break
		}
		sub := sliceInput(in, lo, hi)
		out, err := RunGPU(sub, reservations[p], model, opts)
		if err != nil {
			return nil, fmt.Errorf("groupby: partition %d: %w", p, err)
		}
		partials = append(partials, out)
		if out.Stats.Modeled > slowest {
			slowest = out.Stats.Modeled
		}
		raced = out.Stats.Raced
	}

	// Host merge of the partial tables.
	merged, mergedEntries := mergePartials(in, partials)
	mergeT := model.CPUTime(float64(mergedEntries), model.CPUMergeRate, model.CPU.Cores)
	merged.Stats = ExecStats{
		Path:       PathGPU,
		Kernel:     fmt.Sprintf("partitioned[%d]/%s", len(partials), partials[0].Stats.Kernel),
		Raced:      raced,
		KernelTime: slowest,
		HostTime:   mergeT,
		Modeled:    slowest + mergeT,
	}
	return merged, nil
}

// sliceInput views rows [lo,hi) of in as a standalone task.
func sliceInput(in *Input, lo, hi int) *Input {
	sub := &Input{
		NumRows:  hi - lo,
		KeyBytes: in.KeyBytes,
		KeyBits:  in.KeyBits,
		Hashes:   in.Hashes[lo:hi],
		Aggs:     in.Aggs,
		Payloads: make([][]uint64, len(in.Payloads)),
	}
	if in.Wide() {
		sub.WideKeys = in.WideKeys[lo:hi]
	} else {
		sub.Keys = in.Keys[lo:hi]
	}
	for i, p := range in.Payloads {
		if p != nil {
			sub.Payloads[i] = p[lo:hi]
		}
	}
	// Chunk group estimate: capped by the chunk size; a chunk can still
	// contain every group.
	est := in.EstGroups
	if est > uint64(sub.NumRows) {
		est = uint64(sub.NumRows)
	}
	sub.EstGroups = est
	return sub
}

// mergePartials folds per-device partial results into one, returning the
// result and the number of entries merged (for the cost model).
func mergePartials(in *Input, partials []*Result) (*Result, int) {
	entries := 0
	res := &Result{}
	if in.Wide() {
		global := make(map[string][]uint64)
		for _, p := range partials {
			entries += p.Groups
			for g := 0; g < p.Groups; g++ {
				k := string(p.WideKeys[g])
				acc := global[k]
				if acc == nil {
					acc = newAccumulator(in.Aggs)
					copyPartial(acc, p, g, in)
					global[k] = acc
					continue
				}
				for a, spec := range in.Aggs {
					mergeAgg(acc, a, spec, p.AggWords[a][g])
				}
			}
		}
		res.Groups = len(global)
		res.AggWords = newAggColumns(len(in.Aggs), len(global))
		for k, acc := range global {
			res.WideKeys = append(res.WideKeys, []byte(k))
			for a := range in.Aggs {
				res.AggWords[a] = append(res.AggWords[a], acc[a])
			}
		}
		return res, entries
	}
	global := make(map[uint64][]uint64)
	for _, p := range partials {
		entries += p.Groups
		for g := 0; g < p.Groups; g++ {
			k := p.Keys[g]
			acc := global[k]
			if acc == nil {
				acc = newAccumulator(in.Aggs)
				copyPartial(acc, p, g, in)
				global[k] = acc
				continue
			}
			for a, spec := range in.Aggs {
				mergeAgg(acc, a, spec, p.AggWords[a][g])
			}
		}
	}
	res.Groups = len(global)
	res.AggWords = newAggColumns(len(in.Aggs), len(global))
	for k, acc := range global {
		res.Keys = append(res.Keys, k)
		for a := range in.Aggs {
			res.AggWords[a] = append(res.AggWords[a], acc[a])
		}
	}
	return res, entries
}

func copyPartial(acc []uint64, p *Result, g int, in *Input) {
	for a, spec := range in.Aggs {
		mergeAgg(acc, a, spec, p.AggWords[a][g])
	}
}
