package groupby

import (
	"fmt"
	"math"
	"sync"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// FeedbackModerator implements the feedback loop the paper describes but
// leaves unimplemented ("add feedback logic to the design that informs a
// software moderator about the computation of the query using a specific
// kernel. The moderator can then learn over time which of the kernels to
// use, given a specific type of query. This feature is not yet
// implemented.", Section 4).
//
// Queries are bucketed into coarse signatures (log-scale row count and
// group count, aggregate count, key width); per signature the moderator
// tracks an exponential moving average of each kernel's modeled time per
// row. Until a signature has observations for at least two kernels it
// defers to the static ChooseKernel rules; afterwards it picks the
// learned fastest, still refusing kernels that are ineligible (wide keys
// in shared memory, tables too big for the shared split).
type FeedbackModerator struct {
	mu    sync.Mutex
	stats map[signature]map[Kernel]*ema
	// Epsilon is the exploration rate: one in 1/Epsilon decisions tries
	// the runner-up so a changed workload can be re-learned. Zero
	// disables exploration.
	Epsilon float64
	picks   uint64
}

type signature struct {
	rowsLog   int
	groupsLog int
	aggs      int
	wide      bool
}

type ema struct {
	perRow float64
	n      uint64
}

// NewFeedbackModerator returns an empty learner with 10% exploration.
func NewFeedbackModerator() *FeedbackModerator {
	return &FeedbackModerator{
		stats:   make(map[signature]map[Kernel]*ema),
		Epsilon: 0.1,
	}
}

func signatureOf(in *Input) signature {
	groups := in.EstGroups
	if groups == 0 {
		groups = uint64(in.NumRows)
	}
	return signature{
		rowsLog:   logBucket(uint64(in.NumRows)),
		groupsLog: logBucket(groups),
		aggs:      len(in.Aggs),
		wide:      in.Wide(),
	}
}

func logBucket(v uint64) int {
	if v == 0 {
		return 0
	}
	return int(math.Log2(float64(v)))
}

// Observe records one kernel execution outcome.
func (m *FeedbackModerator) Observe(in *Input, k Kernel, modeled vtime.Duration) {
	if in.NumRows == 0 {
		return
	}
	perRow := modeled.Seconds() / float64(in.NumRows)
	sig := signatureOf(in)
	m.mu.Lock()
	defer m.mu.Unlock()
	byKernel := m.stats[sig]
	if byKernel == nil {
		byKernel = make(map[Kernel]*ema)
		m.stats[sig] = byKernel
	}
	e := byKernel[k]
	if e == nil {
		byKernel[k] = &ema{perRow: perRow, n: 1}
		return
	}
	const alpha = 0.3
	e.perRow = (1-alpha)*e.perRow + alpha*perRow
	e.n++
}

// Choose returns the learned kernel for the task, or KAuto when the
// moderator has not yet seen enough of this signature to beat the static
// rules.
func (m *FeedbackModerator) Choose(in *Input, dev *gpu.Device) Kernel {
	sig := signatureOf(in)
	m.mu.Lock()
	defer m.mu.Unlock()
	byKernel := m.stats[sig]
	if len(byKernel) < 2 {
		return KAuto
	}
	type cand struct {
		k Kernel
		t float64
	}
	var cands []cand
	for k, e := range byKernel {
		if !m.eligible(k, in, dev) {
			continue
		}
		cands = append(cands, cand{k, e.perRow})
	}
	if len(cands) == 0 {
		return KAuto
	}
	// Sort by learned time; explore the runner-up occasionally.
	best, second := -1, -1
	for i := range cands {
		if best == -1 || cands[i].t < cands[best].t {
			second = best
			best = i
		} else if second == -1 || cands[i].t < cands[second].t {
			second = i
		}
	}
	m.picks++
	if second >= 0 && m.Epsilon > 0 && float64(m.picks)*m.Epsilon >= 1 {
		m.picks = 0
		return cands[second].k
	}
	return cands[best].k
}

func (m *FeedbackModerator) eligible(k Kernel, in *Input, dev *gpu.Device) bool {
	switch k {
	case K2Shared:
		return !in.Wide() && SharedTableFits(in, dev)
	case K1Regular, K3RowLock:
		return true
	default:
		return false
	}
}

// Observations returns how many executions of the task's signature have
// been recorded per kernel (testing and monitoring).
func (m *FeedbackModerator) Observations(in *Input) map[Kernel]uint64 {
	sig := signatureOf(in)
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[Kernel]uint64{}
	for k, e := range m.stats[sig] {
		out[k] = e.n
	}
	return out
}

// String summarizes learned state.
func (m *FeedbackModerator) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("feedback-moderator(%d signatures)", len(m.stats))
}
