package groupby

import (
	"math"
	"runtime"
	"sync"

	"blugpu/internal/columnar"
	"blugpu/internal/vtime"
)

// RunCPU executes the group-by entirely on the host, the way BLU's
// original chain does (Figure 1): parallel threads build local hash
// tables over row ranges (LGHT), applying the aggregation evaluators as
// they go, and the local tables are merged into a global hash table at
// the end.
//
// degree is the intra-query parallelism (DB2's "degree"); the modeled
// time uses it through the SMT-aware effective-parallelism curve.
func RunCPU(in *Input, degree int, model *vtime.CostModel) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if degree < 1 {
		degree = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > degree {
		workers = degree
	}
	if workers < 1 {
		workers = 1
	}

	type local struct {
		narrow map[uint64][]uint64
		wide   map[string][]uint64
	}
	locals := make([]local, workers)
	chunk := (in.NumRows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > in.NumRows {
			hi = in.NumRows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			l := &locals[w]
			if in.Wide() {
				l.wide = make(map[string][]uint64)
			} else {
				l.narrow = make(map[uint64][]uint64)
			}
			for i := lo; i < hi; i++ {
				var acc []uint64
				if in.Wide() {
					k := string(in.WideKeys[i])
					acc = l.wide[k]
					if acc == nil {
						acc = newAccumulator(in.Aggs)
						l.wide[k] = acc
					}
				} else {
					k := in.Keys[i]
					acc = l.narrow[k]
					if acc == nil {
						acc = newAccumulator(in.Aggs)
						l.narrow[k] = acc
					}
				}
				for a, spec := range in.Aggs {
					var payload uint64
					if spec.Kind != Count {
						payload = in.Payloads[a][i]
					}
					applyAgg(acc, a, spec, payload)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge phase: fold local tables into a global one.
	var localEntries int
	res := &Result{}
	if in.Wide() {
		global := make(map[string][]uint64)
		for _, l := range locals {
			localEntries += len(l.wide)
			for k, acc := range l.wide {
				g := global[k]
				if g == nil {
					global[k] = acc
					continue
				}
				for a, spec := range in.Aggs {
					mergeAgg(g, a, spec, acc[a])
				}
			}
		}
		res.Groups = len(global)
		res.WideKeys = make([][]byte, 0, len(global))
		res.AggWords = newAggColumns(len(in.Aggs), len(global))
		for k, acc := range global {
			res.WideKeys = append(res.WideKeys, []byte(k))
			for a := range in.Aggs {
				res.AggWords[a] = append(res.AggWords[a], acc[a])
			}
		}
	} else {
		global := make(map[uint64][]uint64)
		for _, l := range locals {
			localEntries += len(l.narrow)
			for k, acc := range l.narrow {
				g := global[k]
				if g == nil {
					global[k] = acc
					continue
				}
				for a, spec := range in.Aggs {
					mergeAgg(g, a, spec, acc[a])
				}
			}
		}
		res.Groups = len(global)
		res.Keys = make([]uint64, 0, len(global))
		res.AggWords = newAggColumns(len(in.Aggs), len(global))
		for k, acc := range global {
			res.Keys = append(res.Keys, k)
			for a := range in.Aggs {
				res.AggWords[a] = append(res.AggWords[a], acc[a])
			}
		}
	}

	rows := float64(in.NumRows)
	// The probe rate degrades once the hash tables blow past cache — the
	// regime the GPU's bandwidth advantage targets.
	rate := model.CPUGroupByRateFor(float64(res.Groups))
	host := model.CPUTime(rows, rate, degree) +
		model.CPUTime(rows*float64(len(in.Aggs)), model.CPUAggRate, degree) +
		model.CPUTime(float64(localEntries), model.CPUMergeRate, degree)
	res.Stats = ExecStats{
		Path:     PathCPU,
		Kernel:   "cpu-lght",
		HostTime: host,
		Modeled:  host,
	}
	return res, nil
}

// newAccumulator returns a fresh accumulator row initialized to the mask
// values (Section 4.3.1's Table 1).
func newAccumulator(aggs []AggSpec) []uint64 {
	acc := make([]uint64, len(aggs))
	for i, a := range aggs {
		acc[i] = a.InitWord()
	}
	return acc
}

func newAggColumns(aggs, capacity int) [][]uint64 {
	out := make([][]uint64, aggs)
	for i := range out {
		out[i] = make([]uint64, 0, capacity)
	}
	return out
}

// applyAgg folds one row's payload into accumulator word a.
func applyAgg(acc []uint64, a int, spec AggSpec, payload uint64) {
	switch spec.Kind {
	case Count:
		acc[a]++
	case Sum:
		if spec.Type == columnar.Float64 {
			acc[a] = math.Float64bits(math.Float64frombits(acc[a]) + math.Float64frombits(payload))
		} else {
			acc[a] = uint64(int64(acc[a]) + int64(payload))
		}
	case Min:
		if spec.Type == columnar.Float64 {
			if math.Float64frombits(payload) < math.Float64frombits(acc[a]) {
				acc[a] = payload
			}
		} else if int64(payload) < int64(acc[a]) {
			acc[a] = payload
		}
	case Max:
		if spec.Type == columnar.Float64 {
			if math.Float64frombits(payload) > math.Float64frombits(acc[a]) {
				acc[a] = payload
			}
		} else if int64(payload) > int64(acc[a]) {
			acc[a] = payload
		}
	}
}

// mergeAgg folds a partial accumulator into a global one. COUNT and SUM
// add; MIN/MAX compare.
func mergeAgg(dst []uint64, a int, spec AggSpec, src uint64) {
	switch spec.Kind {
	case Count:
		dst[a] += src
	case Sum:
		if spec.Type == columnar.Float64 {
			dst[a] = math.Float64bits(math.Float64frombits(dst[a]) + math.Float64frombits(src))
		} else {
			dst[a] = uint64(int64(dst[a]) + int64(src))
		}
	case Min:
		if spec.Type == columnar.Float64 {
			if math.Float64frombits(src) < math.Float64frombits(dst[a]) {
				dst[a] = src
			}
		} else if int64(src) < int64(dst[a]) {
			dst[a] = src
		}
	case Max:
		if spec.Type == columnar.Float64 {
			if math.Float64frombits(src) > math.Float64frombits(dst[a]) {
				dst[a] = src
			}
		} else if int64(src) > int64(dst[a]) {
			dst[a] = src
		}
	}
}
