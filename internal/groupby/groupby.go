// Package groupby implements the paper's hybrid hash-based
// group-by/aggregation (Section 4): a CPU path equivalent to BLU's
// local-hash-table chain (LGHT + aggregation evaluators) and three GPU
// kernels selected at runtime by a moderator from optimizer metadata —
// the exact row count, the KMV-estimated group count, and the number and
// types of the aggregation functions.
package groupby

import (
	"errors"
	"fmt"
	"math"

	"blugpu/internal/columnar"
	"blugpu/internal/vtime"
)

// AggKind enumerates the aggregation functions the kernels support.
// AVG is decomposed into SUM and COUNT by the planner; COUNT(col) is
// rewritten as SUM(col IS NOT NULL) so the kernel COUNT is COUNT(*).
type AggKind int

// Aggregation functions.
const (
	Sum AggKind = iota
	Count
	Min
	Max
)

func (k AggKind) String() string {
	return [...]string{"SUM", "COUNT", "MIN", "MAX"}[k]
}

// AggSpec is one aggregation function over one payload column.
type AggSpec struct {
	Kind AggKind
	// Type is the payload's value type (Int64 or Float64). Count ignores
	// it.
	Type columnar.Type
}

// InitWord returns the hash-table mask word for this aggregate — the
// initial accumulator value of Section 4.3.1's table mask: 0 for
// SUM/COUNT, the type's maximum for MIN, the type's minimum for MAX.
func (a AggSpec) InitWord() uint64 {
	switch a.Kind {
	case Sum, Count:
		return 0
	case Min:
		if a.Type == columnar.Float64 {
			return math.Float64bits(math.Inf(1))
		}
		return uint64(int64(math.MaxInt64))
	case Max:
		if a.Type == columnar.Float64 {
			return math.Float64bits(math.Inf(-1))
		}
		return uint64(1) << 63 // MinInt64 bit pattern
	}
	return 0
}

// EmptyKey is the sentinel marking an unoccupied hash-table slot: the
// all-Fs pattern of the paper's mask. Packed grouping keys must therefore
// never equal it; the evaluator chain guarantees packed keys use < 64 bits.
const EmptyKey = ^uint64(0)

// Input is one group-by/aggregation task, as produced by the evaluator
// chain (LCOG/LCOV -> CCAT -> HASH, plus the KMV sketch).
type Input struct {
	// NumRows is the exact input row count (known by kernel launch time).
	NumRows int
	// Keys holds the packed grouping key per row when the key fits 64
	// bits (KeyBytes <= 8); each value must be != EmptyKey.
	Keys []uint64
	// WideKeys holds fixed-width concatenated keys when the grouping key
	// exceeds 64 bits; all entries share KeyBytes length. The device then
	// uses Murmur hashing and per-slot locks instead of atomicCAS.
	WideKeys [][]byte
	// KeyBytes is the fixed key width in bytes.
	KeyBytes int
	// KeyBits is the number of bits the packed narrow key actually uses
	// (0 = unknown, treated as 64). Keys using <= 32 bits ship to the
	// device as compressed 4-byte codes, matching BLU's compressed page
	// format ("process DB2 BLU data with minimum conversion cost").
	KeyBits int
	// Hashes is the per-row output of the HASH evaluator.
	Hashes []uint64
	// Aggs describes the aggregation functions.
	Aggs []AggSpec
	// Payloads holds, per aggregate, the raw 64-bit payload per row
	// (int64 two's-complement or float64 bits per AggSpec.Type). Count
	// aggregates carry a nil payload.
	Payloads [][]uint64
	// EstGroups is the KMV estimate of the number of groups (may be 0
	// when unknown, in which case tables are sized by NumRows).
	EstGroups uint64
}

// Wide reports whether the task uses the wide-key (lock-based) path.
func (in *Input) Wide() bool { return in.KeyBytes > 8 }

// Validate checks internal consistency.
func (in *Input) Validate() error {
	if in.NumRows < 0 {
		return fmt.Errorf("groupby: negative row count %d", in.NumRows)
	}
	if in.KeyBytes <= 0 {
		return errors.New("groupby: KeyBytes must be positive")
	}
	if in.Wide() {
		if len(in.WideKeys) != in.NumRows {
			return fmt.Errorf("groupby: %d wide keys for %d rows", len(in.WideKeys), in.NumRows)
		}
		for i, k := range in.WideKeys {
			if len(k) != in.KeyBytes {
				return fmt.Errorf("groupby: wide key %d has %d bytes, want %d", i, len(k), in.KeyBytes)
			}
		}
	} else {
		if len(in.Keys) != in.NumRows {
			return fmt.Errorf("groupby: %d keys for %d rows", len(in.Keys), in.NumRows)
		}
		for i, k := range in.Keys {
			if k == EmptyKey {
				return fmt.Errorf("groupby: key %d collides with the empty sentinel", i)
			}
		}
	}
	if len(in.Hashes) != in.NumRows {
		return fmt.Errorf("groupby: %d hashes for %d rows", len(in.Hashes), in.NumRows)
	}
	if len(in.Payloads) != len(in.Aggs) {
		return fmt.Errorf("groupby: %d payload columns for %d aggregates", len(in.Payloads), len(in.Aggs))
	}
	for i, a := range in.Aggs {
		if a.Kind == Count {
			if in.Payloads[i] != nil {
				return fmt.Errorf("groupby: COUNT aggregate %d must have nil payload", i)
			}
			continue
		}
		if len(in.Payloads[i]) != in.NumRows {
			return fmt.Errorf("groupby: payload %d has %d rows, want %d", i, len(in.Payloads[i]), in.NumRows)
		}
		if a.Type != columnar.Int64 && a.Type != columnar.Float64 {
			return fmt.Errorf("groupby: aggregate %d has unsupported payload type %v", i, a.Type)
		}
	}
	return nil
}

// KeyWords returns the per-slot key width in 64-bit words.
func (in *Input) KeyWords() int { return (in.KeyBytes + 7) / 8 }

// EntryWords returns the hash-table slot width in words: key words plus
// one accumulator word per aggregate, padded per the device's 16-byte
// alignment rule (Section 4.3.1's padding column).
func (in *Input) EntryWords() int {
	w := in.KeyWords() + len(in.Aggs)
	if w%2 != 0 {
		w++ // pad to 16-byte alignment
	}
	return w
}

// Result is a completed group-by: one entry per group.
type Result struct {
	// Groups is the number of distinct groups found.
	Groups int
	// Keys holds the packed key per group (narrow path).
	Keys []uint64
	// WideKeys holds the concatenated key per group (wide path).
	WideKeys [][]byte
	// AggWords holds, per aggregate, the raw accumulator per group.
	AggWords [][]uint64
	// Stats describes how the task executed.
	Stats ExecStats
}

// Path identifies where a group-by executed.
type Path int

// Execution paths.
const (
	// PathCPU is the host-only LGHT chain.
	PathCPU Path = iota
	// PathGPU is a device kernel.
	PathGPU
)

func (p Path) String() string {
	if p == PathCPU {
		return "cpu"
	}
	return "gpu"
}

// ExecStats reports how a group-by ran and its modeled time split.
type ExecStats struct {
	Path   Path
	Kernel string
	// Retried counts table-full retries taken by the error path
	// (Section 4.2: the estimate may be low; the query must still run).
	Retried int
	// Raced lists kernels raced by the moderator (including the winner).
	Raced []string

	// TransferIn/KernelTime/TransferOut split the modeled device path;
	// HostTime is host-side work (staging, or the whole CPU path).
	TransferIn  vtime.Duration
	KernelTime  vtime.Duration
	TransferOut vtime.Duration
	HostTime    vtime.Duration
	// Modeled is the end-to-end modeled duration.
	Modeled vtime.Duration
}
