package groupby

import (
	"math"
	"sync/atomic"

	"blugpu/internal/columnar"
	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// kernelStats accumulates measured work counts from a functional kernel
// run; they feed the cost formulas.
type kernelStats struct {
	probes     atomic.Uint64 // extra probe steps beyond the first slot
	full       atomic.Bool   // table overflow observed
	flushes    atomic.Uint64 // kernel-2 shared-memory flushes
	mergeEntry atomic.Uint64 // kernel-2 entries merged into device memory
}

// insertNarrow probes the table for a <=64-bit key using mod hashing and
// atomicCAS claiming (Section 4.3.1), returning the slot or -1 on a full
// table.
func insertNarrow(t *deviceTable, key, hash uint64, st *kernelStats) int {
	mask := t.slots - 1
	s := int(hash) & mask
	for step := 0; step < t.slots; step++ {
		base := t.keyBase(s)
		cur := t.buf.AtomicLoad(base)
		if cur == EmptyKey {
			if t.buf.AtomicCAS(base, EmptyKey, key) {
				return s
			}
			cur = t.buf.AtomicLoad(base)
		}
		if cur == key {
			return s
		}
		s = (s + 1) & mask
		st.probes.Add(1)
	}
	st.full.Store(true)
	return -1
}

// insertWide probes the table for a >64-bit key under per-slot locks with
// Murmur hashing (the hash arrives precomputed from the HASH evaluator).
// It returns the slot or -1 on a full table. The slot remains locked on
// success so the caller can aggregate under it; the caller must unlock.
func insertWide(t *deviceTable, key []byte, hash uint64, st *kernelStats, keyBuf []uint64) int {
	packKey(key, keyBuf)
	mask := t.slots - 1
	s := int(hash) & mask
	for step := 0; step < t.slots; step++ {
		base := t.keyBase(s)
		t.locks.Lock(s)
		cur := t.buf.Words()[base]
		if cur == EmptyKey {
			copy(t.buf.Words()[base:base+t.keyWords], keyBuf)
			return s
		}
		if wordsEqual(t.buf.Words()[base:base+t.keyWords], keyBuf) {
			return s
		}
		t.locks.Unlock(s)
		s = (s + 1) & mask
		st.probes.Add(1)
	}
	st.full.Store(true)
	return -1
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// atomicAgg applies one aggregate atomically to the table (Section 4.4
// strategy 1: CUDA atomic calls).
func atomicAgg(t *deviceTable, slot, a int, spec AggSpec, payload uint64) {
	idx := t.aggBase(slot, a)
	switch spec.Kind {
	case Count:
		t.buf.AtomicAdd(idx, 1)
	case Sum:
		if spec.Type == columnar.Float64 {
			t.buf.AtomicAddFloat64(idx, float64FromBits(payload))
		} else {
			t.buf.AtomicAdd(idx, payload)
		}
	case Min:
		if spec.Type == columnar.Float64 {
			t.buf.AtomicMinFloat64(idx, float64FromBits(payload))
		} else {
			t.buf.AtomicMinInt64(idx, int64(payload))
		}
	case Max:
		if spec.Type == columnar.Float64 {
			t.buf.AtomicMaxFloat64(idx, float64FromBits(payload))
		} else {
			t.buf.AtomicMaxInt64(idx, int64(payload))
		}
	}
}

// plainAgg applies one aggregate non-atomically; only valid under a held
// row lock (kernel 3 and the wide-key path).
func plainAgg(t *deviceTable, slot, a int, spec AggSpec, payload uint64) {
	idx := t.aggBase(slot, a)
	applyAgg(t.buf.Words()[idx:idx+1], 0, spec, payload)
}

// --- Kernel 1: regular queries (Section 4.3.1) ---

// runKernel1 is the regular kernel: global table, atomicCAS insert,
// per-aggregate atomic updates.
func runKernel1(in *Input, t *deviceTable, dev *gpu.Device, model *vtime.CostModel, cancel *gpu.Cancel) (vtime.Duration, int, error) {
	st := &kernelStats{}
	groups := 0
	kr := dev.RunKernelSpan("groupby_k1", t.buf.Span(), cancel, func(g *gpu.Grid) (vtime.Duration, error) {
		var err error
		if in.Wide() {
			keyWords := in.KeyWords()
			err = g.ParallelFor(in.NumRows, func(lo, hi int) {
				keyBuf := make([]uint64, keyWords)
				for i := lo; i < hi; i++ {
					if st.full.Load() {
						return
					}
					slot := insertWide(t, in.WideKeys[i], in.Hashes[i], st, keyBuf)
					if slot < 0 {
						return
					}
					t.locks.Unlock(slot)
					for a, spec := range in.Aggs {
						atomicAgg(t, slot, a, spec, payloadAt(in, a, i))
					}
				}
			})
		} else {
			err = g.ParallelFor(in.NumRows, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if st.full.Load() {
						return
					}
					slot := insertNarrow(t, in.Keys[i], in.Hashes[i], st)
					if slot < 0 {
						return
					}
					for a, spec := range in.Aggs {
						atomicAgg(t, slot, a, spec, payloadAt(in, a, i))
					}
				}
			})
		}
		if err != nil || st.full.Load() {
			return 0, err
		}
		groups = countGroups(t)
		return kernel1Cost(in, t, st, model, groups), nil
	})
	if kr.Err != nil {
		return 0, 0, kr.Err
	}
	if st.full.Load() {
		return 0, 0, ErrTableFull
	}
	return kr.Modeled, groups, nil
}

func kernel1Cost(in *Input, t *deviceTable, st *kernelStats, model *vtime.CostModel, groups int) vtime.Duration {
	rows := float64(in.NumRows)
	probes := rows + float64(st.probes.Load())
	insert := vtime.Duration(probes / model.GPUHashInsertRate)
	var aggT vtime.Duration
	cf := model.AtomicContentionFactor(rows, float64(groups))
	aggWork := rows * float64(len(in.Aggs))
	if in.Wide() {
		// Lock-based insert claims dominate; aggregates are still atomic.
		lf := model.LockContentionFactor(rows, float64(groups))
		insert += vtime.Duration(rows / model.GPULockRate * lf)
	}
	aggT = vtime.Duration(aggWork / model.GPUAtomicRate * cf)
	return insert + aggT
}

// --- Kernel 2: small number of groups (Section 4.3.2) ---

// SharedTableFits reports whether a per-SMX shared-memory table for the
// estimated group count fits the device's 48 KiB shared split.
func SharedTableFits(in *Input, dev *gpu.Device) bool {
	est := in.EstGroups
	if est == 0 {
		return false
	}
	slots := TableSlots(est, in.NumRows)
	return TableBytes(slots, in.EntryWords()) <= int64(dev.SharedMemBytes())
}

// runKernel2 performs a two-phase group-by: per-SMX partial tables in
// shared memory, merged into the global device-memory table.
func runKernel2(in *Input, t *deviceTable, dev *gpu.Device, model *vtime.CostModel, cancel *gpu.Cancel) (vtime.Duration, int, error) {
	if in.Wide() {
		// Shared-memory slots carry one key word; wide keys go to
		// kernel 1 or 3. The moderator never routes wide keys here.
		return 0, 0, ErrTableFull
	}
	st := &kernelStats{}
	smx := dev.Spec().SMXCount
	slots2 := TableSlots(in.EstGroups, in.NumRows)
	if TableBytes(slots2, in.EntryWords()) > int64(dev.SharedMemBytes()) {
		return 0, 0, ErrTableFull
	}
	entryWords := in.EntryWords()
	keyWords := in.KeyWords()
	mask := Mask(in)

	groups := 0
	kr := dev.RunKernelSpan("groupby_k2_shared", t.buf.Span(), cancel, func(g *gpu.Grid) (vtime.Duration, error) {
		chunk := (in.NumRows + smx - 1) / smx
		err := g.ForEachSMX(func(s int) {
			lo := s * chunk
			hi := lo + chunk
			if hi > in.NumRows {
				hi = in.NumRows
			}
			if lo >= hi {
				return
			}
			// The SMX's shared-memory table.
			local := make([]uint64, slots2*entryWords)
			reset := func() {
				for i := 0; i < slots2; i++ {
					copy(local[i*entryWords:(i+1)*entryWords], mask)
				}
			}
			reset()
			flush := func() {
				for i := 0; i < slots2; i++ {
					base := i * entryWords
					if local[base] == EmptyKey {
						continue
					}
					slot := insertNarrow(t, local[base], hashMix(local[base]), st)
					if slot < 0 {
						return
					}
					for a, spec := range in.Aggs {
						mergeAtomic(t, slot, a, spec, local[base+keyWords+a])
					}
					st.mergeEntry.Add(1)
				}
			}
			for i := lo; i < hi; i++ {
				if st.full.Load() {
					return
				}
				key := in.Keys[i]
				h := int(in.Hashes[i]) & (slots2 - 1)
				inserted := false
				for step := 0; step < slots2; step++ {
					base := h * entryWords
					if local[base] == EmptyKey {
						local[base] = key
						for a, spec := range in.Aggs {
							local[base+keyWords+a] = spec.InitWord()
						}
					}
					if local[base] == key {
						for a, spec := range in.Aggs {
							acc := local[base+keyWords+a : base+keyWords+a+1]
							applyAgg(acc, 0, spec, payloadAt(in, a, i))
						}
						inserted = true
						break
					}
					h = (h + 1) & (slots2 - 1)
				}
				if !inserted {
					// Shared table full: merge the partial result into
					// device memory and start fresh (Section 4.3.2).
					flush()
					reset()
					st.flushes.Add(1)
					i-- // retry the row against the fresh table
				}
			}
			flush()
		})
		if err != nil || st.full.Load() {
			return 0, err
		}
		groups = countGroups(t)
		rows := float64(in.NumRows)
		merged := float64(st.mergeEntry.Load())
		return vtime.Duration(rows/model.GPUSharedGroupRate) +
			vtime.Duration(merged/model.GPUMergeRate), nil
	})
	if kr.Err != nil {
		return 0, 0, kr.Err
	}
	if st.full.Load() {
		return 0, 0, ErrTableFull
	}
	return kr.Modeled, groups, nil
}

// mergeAtomic folds a partial accumulator into the global table with
// atomics (the kernel-2 merge step).
func mergeAtomic(t *deviceTable, slot, a int, spec AggSpec, partial uint64) {
	idx := t.aggBase(slot, a)
	switch spec.Kind {
	case Count, Sum:
		if spec.Type == columnar.Float64 && spec.Kind == Sum {
			t.buf.AtomicAddFloat64(idx, float64FromBits(partial))
		} else {
			t.buf.AtomicAdd(idx, partial)
		}
	case Min:
		if spec.Type == columnar.Float64 {
			t.buf.AtomicMinFloat64(idx, float64FromBits(partial))
		} else {
			t.buf.AtomicMinInt64(idx, int64(partial))
		}
	case Max:
		if spec.Type == columnar.Float64 {
			t.buf.AtomicMaxFloat64(idx, float64FromBits(partial))
		} else {
			t.buf.AtomicMaxInt64(idx, int64(partial))
		}
	}
}

// --- Kernel 3: many aggregation functions (Section 4.3.3) ---

// runKernel3 locks the whole hash-table row once per input row and
// applies every aggregation function under the single lock — cheaper than
// per-aggregate atomics when there are many aggregates or contention is
// low.
func runKernel3(in *Input, t *deviceTable, dev *gpu.Device, model *vtime.CostModel, cancel *gpu.Cancel) (vtime.Duration, int, error) {
	st := &kernelStats{}
	groups := 0
	kr := dev.RunKernelSpan("groupby_k3_rowlock", t.buf.Span(), cancel, func(g *gpu.Grid) (vtime.Duration, error) {
		var err error
		if in.Wide() {
			keyWords := in.KeyWords()
			err = g.ParallelFor(in.NumRows, func(lo, hi int) {
				keyBuf := make([]uint64, keyWords)
				for i := lo; i < hi; i++ {
					if st.full.Load() {
						return
					}
					slot := insertWide(t, in.WideKeys[i], in.Hashes[i], st, keyBuf)
					if slot < 0 {
						return
					}
					// Slot lock already held; apply every aggregate
					// plainly, then release once.
					for a, spec := range in.Aggs {
						plainAgg(t, slot, a, spec, payloadAt(in, a, i))
					}
					t.locks.Unlock(slot)
				}
			})
		} else {
			err = g.ParallelFor(in.NumRows, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if st.full.Load() {
						return
					}
					slot := insertNarrow(t, in.Keys[i], in.Hashes[i], st)
					if slot < 0 {
						return
					}
					t.locks.Lock(slot)
					for a, spec := range in.Aggs {
						plainAgg(t, slot, a, spec, payloadAt(in, a, i))
					}
					t.locks.Unlock(slot)
				}
			})
		}
		if err != nil || st.full.Load() {
			return 0, err
		}
		groups = countGroups(t)
		rows := float64(in.NumRows)
		probes := rows + float64(st.probes.Load())
		lf := model.LockContentionFactor(rows, float64(groups))
		return vtime.Duration(probes/model.GPUHashInsertRate) +
			vtime.Duration(rows/model.GPULockRate*lf) +
			vtime.Duration(rows*float64(len(in.Aggs))/model.GPUPlainAggRate), nil
	})
	if kr.Err != nil {
		return 0, 0, kr.Err
	}
	if st.full.Load() {
		return 0, 0, ErrTableFull
	}
	return kr.Modeled, groups, nil
}

// --- shared helpers ---

func payloadAt(in *Input, a, i int) uint64 {
	if in.Payloads[a] == nil {
		return 0
	}
	return in.Payloads[a][i]
}

func countGroups(t *deviceTable) int {
	words := t.buf.Words()
	n := 0
	for s := 0; s < t.slots; s++ {
		if words[t.keyBase(s)] != EmptyKey {
			n++
		}
	}
	return n
}

// hashMix rehashes a key for the kernel-2 merge (the original row hash is
// unavailable for flushed entries).
func hashMix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
