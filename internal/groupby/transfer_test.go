package groupby

import (
	"testing"

	"blugpu/internal/gpu"
	"blugpu/internal/monitor"
	"blugpu/internal/vtime"
)

// TestRunGPUAccountsD2H pins the chain-exit accounting: the dense result
// block leaves the device through Device.CopyFromDevice, so an attached
// monitor must see real D2H transfers with the result's byte volume —
// not the zero the counters reported when the copy was modeled only as
// kernel-side time.
func TestRunGPUAccountsD2H(t *testing.T) {
	mon := monitor.New()
	dev := gpu.NewDevice(0, vtime.TeslaK40(), gpu.WithSink(mon))
	in := buildInput(makeKeys(20000, 3000), stdAggs, 3000)
	res := reserveFor(t, dev, in)
	defer res.Release()

	out, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K1Regular, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	h2d, d2h := mon.Transfers()
	if h2d.Count == 0 || h2d.Bytes == 0 {
		t.Errorf("no H2D transfers recorded: %+v", h2d)
	}
	if d2h.Count == 0 {
		t.Fatalf("chain-exit copy not accounted: no D2H transfers recorded")
	}
	// The result block is (key + agg columns) x groups at 8 bytes per
	// word; the recorded bytes must cover at least that.
	minBytes := int64(out.Groups) * int64(1+len(stdAggs)) * 8
	if d2h.Bytes < minBytes {
		t.Errorf("D2H bytes = %d, want >= %d (the dense result block)", d2h.Bytes, minBytes)
	}
	if d2h.Total <= 0 {
		t.Error("D2H transfer carries no modeled time")
	}
	if out.Stats.TransferOut <= 0 {
		t.Errorf("result stats missing transfer-out time: %+v", out.Stats)
	}
}

// TestRunGPUFusedSkipsInputStaging is the fused-path counterpart: with
// GPUOptions.Fused the input is already device-resident (the engine's
// chain uploaded or found it), so RunGPU must not stage it again — no
// H2D traffic — while the exit copy still pays D2H.
func TestRunGPUFusedSkipsInputStaging(t *testing.T) {
	mon := monitor.New()
	dev := gpu.NewDevice(0, vtime.TeslaK40(), gpu.WithSink(mon))
	in := buildInput(makeKeys(20000, 3000), stdAggs, 3000)
	res := reserveFor(t, dev, in)
	defer res.Release()

	if _, err := RunGPU(in, res, vtime.Default(), GPUOptions{Kernel: K1Regular, Pinned: true, Fused: true}); err != nil {
		t.Fatal(err)
	}
	h2d, d2h := mon.Transfers()
	if h2d.Count != 0 || h2d.Bytes != 0 {
		t.Errorf("fused run staged input over PCIe anyway: %+v", h2d)
	}
	if d2h.Count == 0 || d2h.Bytes == 0 {
		t.Errorf("fused run skipped the chain-exit D2H copy: %+v", d2h)
	}
}
