package groupby

import (
	"errors"
	"fmt"

	"blugpu/internal/gpu"
	"blugpu/internal/vtime"
)

// ErrTableFull is returned when the device hash table overflowed even
// after the error path's retry — the KMV estimate was badly low and the
// reservation has no headroom left. The caller falls back to the CPU.
var ErrTableFull = errors.New("groupby: device hash table full")

// Mask returns one hash-table entry's initial words — the paper's Table 1
// mask: all-Fs for each key word, then each aggregate's initial value
// (SUM/COUNT -> 0, MAX -> type minimum, MIN -> type maximum), then zero
// padding to the 16-byte alignment boundary.
func Mask(in *Input) []uint64 {
	entry := make([]uint64, in.EntryWords())
	kw := in.KeyWords()
	for i := 0; i < kw; i++ {
		entry[i] = EmptyKey
	}
	for a, spec := range in.Aggs {
		entry[kw+a] = spec.InitWord()
	}
	// Remaining words (if any) are padding and stay zero.
	return entry
}

// TableSlots returns the global hash-table slot count for the given
// group estimate: the next power of two above 1.5x the estimate
// ("slightly larger than the estimated number of groups"), floored at a
// small minimum. When the estimate is unknown (0), the table must be
// sized by the row count instead — exactly the waste the KMV sketch
// exists to avoid.
func TableSlots(estGroups uint64, numRows int) int {
	target := float64(estGroups) * 1.5
	if estGroups == 0 {
		target = float64(numRows) * 1.5
	}
	slots := 16
	for float64(slots) < target {
		slots <<= 1
	}
	return slots
}

// TableBytes returns the device footprint of a table with the given
// geometry.
func TableBytes(slots, entryWords int) int64 {
	return int64(slots) * int64(entryWords) * 8
}

// InputDeviceBytes returns the bytes shipped host-to-device for the
// task. The vectors travel in BLU's compressed page format (the paper's
// "minimum conversion cost" design): narrow keys whose codes fit 32 bits
// and numeric payload codes ship as 4-byte values; the device expands
// them into 64-bit accumulators on arrival. Narrow keys need no hash
// vector — the device recomputes the mod hash from the key itself; wide
// keys ship their precomputed Murmur hashes.
func InputDeviceBytes(in *Input) int64 {
	n := int64(in.NumRows)
	var b int64
	if in.Wide() {
		perRow := int64((in.KeyBytes + 7) / 8 * 8)
		b += perRow * n
		b += 8 * n // murmur hashes
	} else if in.KeyBits > 0 && in.KeyBits <= 32 {
		b += 4 * n
	} else {
		b += 8 * n
	}
	for _, p := range in.Payloads {
		if p != nil {
			b += 4 * n // compressed payload codes
		}
	}
	return b
}

// ResultDeviceBytes bounds the bytes shipped device-to-host: one entry
// per (estimated) group.
func ResultDeviceBytes(in *Input, groups int) int64 {
	return int64(groups) * int64(in.EntryWords()) * 8
}

// MemoryDemand computes the up-front device-memory demand for the task:
// the staged input, the global hash table, one table doubling of headroom
// for the error path, and the result buffer. The scheduler admits tasks
// on this number (Section 2.2: "we know the amount of memory that each
// kernel invocation call needs in advance").
func MemoryDemand(in *Input) int64 {
	slots := TableSlots(in.EstGroups, in.NumRows)
	table := TableBytes(slots, in.EntryWords())
	est := int(in.EstGroups)
	if est == 0 {
		est = in.NumRows
	}
	return InputDeviceBytes(in) + table*3 + ResultDeviceBytes(in, est)
}

// deviceTable is a linear-probed hash table in device memory.
type deviceTable struct {
	buf        *gpu.Buffer
	slots      int // power of two
	keyWords   int
	entryWords int
	locks      *gpu.LockSet // wide-key and kernel-3 paths
}

// newDeviceTable allocates and mask-initializes a table from the
// reservation, returning the table and the modeled initialization time
// (the parallel mask copy of Section 4.3.1).
func newDeviceTable(res *gpu.Reservation, in *Input, slots int, model *vtime.CostModel, withLocks bool) (*deviceTable, vtime.Duration, error) {
	entryWords := in.EntryWords()
	buf, err := res.AllocWords(slots * entryWords)
	if err != nil {
		return nil, 0, fmt.Errorf("groupby: table allocation: %w", err)
	}
	t := &deviceTable{
		buf:        buf,
		slots:      slots,
		keyWords:   in.KeyWords(),
		entryWords: entryWords,
	}
	if withLocks || in.Wide() {
		t.locks = gpu.NewLockSet(slots)
	}
	mask := Mask(in)
	words := buf.Words()
	dev := res.Device()
	kr := dev.RunKernelSpan("ht_init_mask", buf.Span(), nil, func(g *gpu.Grid) (vtime.Duration, error) {
		err := g.ParallelFor(slots, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				copy(words[s*entryWords:(s+1)*entryWords], mask)
			}
		})
		return model.DeviceFill(TableBytes(slots, entryWords)), err
	})
	if kr.Err != nil {
		return nil, 0, kr.Err
	}
	return t, kr.Modeled, nil
}

// keyAt returns the first key word of slot s (narrow path compares just
// this word; wide path compares all key words under the slot lock).
func (t *deviceTable) keyBase(s int) int { return s * t.entryWords }

// aggBase returns the index of aggregate a's accumulator in slot s.
func (t *deviceTable) aggBase(s, a int) int { return s*t.entryWords + t.keyWords + a }

// extract gathers the occupied slots into a Result, returning the modeled
// device-side scan time (the result transfer is modeled by the caller,
// which knows pinnedness).
func (t *deviceTable) extract(in *Input, model *vtime.CostModel) (*Result, vtime.Duration) {
	res := &Result{AggWords: newAggColumns(len(in.Aggs), 0)}
	words := t.buf.Words()
	for s := 0; s < t.slots; s++ {
		base := t.keyBase(s)
		if words[base] == EmptyKey {
			continue
		}
		if in.Wide() {
			key := make([]byte, in.KeyBytes)
			unpackKey(words[base:base+t.keyWords], key)
			res.WideKeys = append(res.WideKeys, key)
		} else {
			res.Keys = append(res.Keys, words[base])
		}
		for a := range in.Aggs {
			res.AggWords[a] = append(res.AggWords[a], words[t.aggBase(s, a)])
		}
		res.Groups++
	}
	scan := vtime.Duration(float64(TableBytes(t.slots, t.entryWords)) / model.GPU.MemBandwidthBps)
	return res, model.GPUKernelLaunch + scan
}

// packKey packs key bytes into little-endian words; the first byte of a
// valid key must not make the first word equal EmptyKey (dictionary codes
// and packed column values never do).
func packKey(key []byte, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range key {
		dst[i/8] |= uint64(b) << (uint(i%8) * 8)
	}
}

// unpackKey reverses packKey into dst (whose length selects the bytes).
func unpackKey(words []uint64, dst []byte) {
	for i := range dst {
		dst[i] = byte(words[i/8] >> (uint(i%8) * 8))
	}
}
