package serve

import (
	"sync/atomic"
	"testing"
)

// A firing severity-page alert must halve effective admission capacity
// exactly as the all-breakers-open unhealthy state does, and flip the
// shed reason to queue_full_unhealthy.
func TestPagesFiringHalvesCapacity(t *testing.T) {
	var pages atomic.Int64
	exec := &stubExec{}
	s, err := New(exec, Config{
		QueueCapacity: 8,
		PagesFiring:   func() int { return int(pages.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	cap0 := s.effectiveCapLocked()
	s.mu.Unlock()
	if cap0 != 8 {
		t.Fatalf("healthy capacity = %d, want 8", cap0)
	}

	pages.Store(1)
	s.mu.Lock()
	cap1 := s.effectiveCapLocked()
	reasonHealth := s.healthLocked()
	s.mu.Unlock()
	if cap1 != 4 {
		t.Fatalf("firing-page capacity = %d, want 4", cap1)
	}
	if reasonHealth != "unhealthy" {
		t.Fatalf("health with firing page = %q, want unhealthy", reasonHealth)
	}

	pages.Store(0)
	s.mu.Lock()
	cap2 := s.effectiveCapLocked()
	s.mu.Unlock()
	if cap2 != 8 {
		t.Fatalf("resolved capacity = %d, want 8", cap2)
	}
	reconcile(t, s)
}
