package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blugpu/internal/metrics"
	"blugpu/internal/workload"
)

func postQuery(t *testing.T, srv *httptest.Server, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

func TestHTTPQuery(t *testing.T) {
	eng := newServeTestEngine(t)
	s, _ := New(eng, Config{})
	srv := httptest.NewServer(NewMux(s, metrics.AdminMux(metrics.SourcesFromEngine(eng))))
	defer srv.Close()

	code, _, body := postQuery(t, srv, `{"sql":"SELECT k, SUM(v) AS s FROM t GROUP BY k","session":"u1"}`)
	if code != http.StatusOK {
		t.Fatalf("POST /query: %d %s", code, body)
	}
	var qr queryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body)
	}
	if qr.RowCount != 7 || len(qr.Rows) != 7 || len(qr.Columns) != 2 {
		t.Fatalf("unexpected result shape: %+v", qr)
	}
	if qr.Session != "u1" || qr.Class == "" || qr.Query == "" {
		t.Fatalf("missing attribution fields: %+v", qr)
	}
	if qr.ModeledMs <= 0 {
		t.Fatalf("modeled_ms = %v, want > 0", qr.ModeledMs)
	}

	// Inline EXPLAIN ANALYZE.
	code, _, body = postQuery(t, srv, `{"sql":"SELECT k, SUM(v) AS s FROM t GROUP BY k","explain":true}`)
	if code != http.StatusOK {
		t.Fatalf("explain query: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil || len(qr.Explain) == 0 {
		t.Fatalf("explain missing from response: err=%v body=%s", err, body)
	}

	// Bad SQL → 400, still admitted.
	code, _, _ = postQuery(t, srv, `{"sql":"SELECT FROM nothing"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad SQL: %d, want 400", code)
	}

	// Session via header.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(`{"sql":"SELECT k FROM t LIMIT 1"}`))
	req.Header.Set("X-Session", "header-session")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Admin surface rides the same mux.
	hres, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("/healthz through serve mux: %d", hres.StatusCode)
	}

	// Sessions listing knows both sessions.
	sres, err := http.Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(sres.Body)
	sres.Body.Close()
	var sessions []SessionInfo
	if err := json.Unmarshal(data, &sessions); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, sess := range sessions {
		ids[sess.ID] = true
	}
	if !ids["u1"] || !ids["header-session"] {
		t.Fatalf("sessions = %v, want u1 and header-session", ids)
	}

	// GET on /query is rejected.
	gres, _ := http.Get(srv.URL + "/query")
	gres.Body.Close()
	if gres.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d, want 405", gres.StatusCode)
	}
}

func TestHTTPShedAndDrainCodes(t *testing.T) {
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 1,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
	})
	srv := httptest.NewServer(NewMux(s, nil))
	defer srv.Close()

	// Saturate: 1 executing + 1 queued, then overflow → 429.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postQuery(t, srv, `{"sql":"SELECT 1 FROM t","class":"simple"}`)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.AdmissionSnapshot()
		if (snap.Inflight == 1 && snap.QueueDepth == 1) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr, body := postQuery(t, srv, `{"sql":"SELECT 1 FROM t","class":"simple"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Reason != "queue_full" {
		t.Fatalf("shed body: %s", body)
	}

	// Drain while one query still runs; release it shortly after.
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	dres, err := http.Post(srv.URL+"/drain?deadline_ms=2000", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(dres.Body)
	dres.Body.Close()
	var rep DrainReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("drain body: %v %s", err, data)
	}
	wg.Wait()

	// Post-drain submissions → 503 + Retry-After.
	code, hdr, body = postQuery(t, srv, `{"sql":"SELECT 3 FROM t","class":"simple"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d %s, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}

	// /debug/serve reconciles over HTTP.
	sres, err := http.Get(srv.URL + "/debug/serve")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(sres.Body)
	sres.Body.Close()
	var snap metrics.AdmissionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Admitted+snap.Shed+snap.TimedOut+snap.Drained != snap.Submitted {
		t.Fatalf("HTTP snapshot does not reconcile: %+v", snap)
	}
	if !snap.Draining {
		t.Fatal("snapshot must report draining")
	}
}

func TestHTTPDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, _ := New(&stubExec{release: release}, Config{})
	srv := httptest.NewServer(NewMux(s, nil))
	defer srv.Close()
	code, _, body := postQuery(t, srv, `{"sql":"SELECT 1 FROM t","class":"simple","deadline_ms":20}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d %s, want 504", code, body)
	}
	snap := s.AdmissionSnapshot()
	if snap.TimedOut != 1 {
		t.Fatalf("timed_out = %d, want 1", snap.TimedOut)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s, _ := New(&stubExec{}, Config{})
	srv := httptest.NewServer(NewMux(s, nil))
	defer srv.Close()
	if code, _, _ := postQuery(t, srv, `not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", code)
	}
	if code, _, _ := postQuery(t, srv, `{"sql":""}`); code != http.StatusBadRequest {
		t.Fatalf("empty sql: %d, want 400", code)
	}
	if code, _, _ := postQuery(t, srv, `{"sql":"SELECT 1 FROM t","class":"wizard"}`); code != http.StatusBadRequest {
		t.Fatalf("bad class: %d, want 400", code)
	}
}
