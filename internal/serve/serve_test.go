package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/explain"
	"blugpu/internal/gpu"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// stubExec is a controllable Executor: each execution blocks until
// release is closed (nil release runs immediately), honoring ctx like
// the real engine does between operators.
type stubExec struct {
	sch     *sched.Scheduler
	release chan struct{}

	mu        sync.Mutex
	started   int
	active    int
	maxActive int
}

func stubResult() *engine.Result {
	b := columnar.NewInt64Builder("x")
	b.Append(42)
	return &engine.Result{
		Table:   columnar.MustNewTable("out", b.Build()),
		Columns: []string{"x"},
		Modeled: vtime.Millisecond,
	}
}

func (s *stubExec) QueryNamedCtxAttrs(ctx context.Context, name, sql string, attrs ...trace.Attr) (*engine.Result, error) {
	s.mu.Lock()
	s.started++
	s.active++
	if s.active > s.maxActive {
		s.maxActive = s.active
	}
	release := s.release
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()
	if release != nil {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, fmt.Errorf("stub: query canceled: %w", ctx.Err())
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("stub: query canceled: %w", err)
	}
	return stubResult(), nil
}

func (s *stubExec) ExplainAnalyzeNamedCtx(ctx context.Context, name, sql string) (*explain.Report, *engine.Result, error) {
	res, err := s.QueryNamedCtxAttrs(ctx, name, sql)
	if err != nil {
		return nil, nil, err
	}
	return &explain.Report{Schema: explain.ReportSchema, Query: name, SQL: sql}, res, nil
}

func (s *stubExec) Scheduler() *sched.Scheduler { return s.sch }

func reconcile(t *testing.T, s *Server) {
	t.Helper()
	snap := s.AdmissionSnapshot()
	if got := snap.Admitted + snap.Shed + snap.TimedOut + snap.Drained; got != snap.Submitted {
		t.Fatalf("outcome partition broken: admitted=%d shed=%d timed_out=%d drained=%d sum=%d submitted=%d",
			snap.Admitted, snap.Shed, snap.TimedOut, snap.Drained, got, snap.Submitted)
	}
	var classSum uint64
	for _, c := range snap.Classes {
		classSum += c.Admitted + c.Shed + c.TimedOut + c.Drained
	}
	if classSum != snap.Submitted {
		t.Fatalf("per-class outcomes sum to %d, want %d", classSum, snap.Submitted)
	}
}

func TestAdmitAndExecute(t *testing.T) {
	exec := &stubExec{}
	s, err := New(exec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Session: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != workload.Simple {
		t.Fatalf("class = %s, want simple", resp.Class)
	}
	if resp.Result.Table.Rows() != 1 {
		t.Fatalf("rows = %d", resp.Result.Table.Rows())
	}
	if resp.Query != "serve-1" {
		t.Fatalf("query name = %q", resp.Query)
	}
	snap := s.AdmissionSnapshot()
	if snap.Submitted != 1 || snap.Admitted != 1 || snap.Sessions != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	reconcile(t, s)
}

func TestClassLimitsHold(t *testing.T) {
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 100,
		ClassLimits:   map[workload.Class]int{workload.Simple: 3, workload.Intermediate: 2, workload.Complex: 1},
	})
	const n = 30
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
		}()
	}
	// Wait for the limit to fill, then release everything.
	deadline := time.Now().Add(5 * time.Second)
	for {
		exec.mu.Lock()
		active := exec.active
		exec.mu.Unlock()
		if active == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.AdmissionSnapshot()
	if snap.Inflight != 3 {
		t.Fatalf("inflight = %d, want the simple-class limit 3", snap.Inflight)
	}
	close(release)
	wg.Wait()
	if exec.maxActive > 3 {
		t.Fatalf("max concurrent executions %d exceeded class limit 3", exec.maxActive)
	}
	reconcile(t, s)
	if got := s.AdmissionSnapshot().Admitted; got != n {
		t.Fatalf("admitted = %d, want %d", got, n)
	}
}

func TestWeightedDequeueInterleaves(t *testing.T) {
	// One execution slot per class, everything queued up front, then a
	// single slot-releasing pump: the admit order must interleave classes
	// by weight rather than drain one class first.
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 100,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
		ClassWeights:  map[workload.Class]int{workload.Simple: 2, workload.Intermediate: 1, workload.Complex: 1},
	})
	var wg sync.WaitGroup
	for _, c := range []workload.Class{workload.Simple, workload.Simple, workload.Intermediate, workload.Complex} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(c workload.Class) {
				defer wg.Done()
				if _, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: c}); err != nil {
					t.Error(err)
				}
			}(c)
		}
	}
	close(release)
	wg.Wait()
	snap := s.AdmissionSnapshot()
	if snap.Admitted != 16 {
		t.Fatalf("admitted = %d, want 16", snap.Admitted)
	}
	for _, c := range snap.Classes {
		if c.WaitCount == 0 {
			t.Fatalf("class %s recorded no wait samples", c.Class)
		}
	}
	reconcile(t, s)
}

func TestShedOnQueueFull(t *testing.T) {
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 2,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
	})
	// Fill the single simple slot, then the queue (2), then overflow.
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.AdmissionSnapshot()
		if snap.Shed >= 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.AdmissionSnapshot()
	if snap.Shed != 5 { // 8 submitted - 1 executing - 2 queued
		t.Fatalf("shed = %d, want 5 (snapshot %+v)", snap.Shed, snap)
	}
	var refused *RefusedError
	sawRefusal := false
	for i := 0; i < 5; i++ {
		if err := <-errs; err != nil && errors.As(err, &refused) {
			sawRefusal = true
			if refused.Reason != "queue_full" {
				t.Fatalf("reason = %q, want queue_full", refused.Reason)
			}
			if refused.RetryAfter <= 0 {
				t.Fatal("refusal must carry a Retry-After hint")
			}
		}
	}
	if !sawRefusal {
		t.Fatal("no RefusedError surfaced")
	}
	close(release) // let the executing + queued queries finish
	wg.Wait()
	reconcile(t, s)
}

func TestBreakerHalvesEffectiveCapacity(t *testing.T) {
	spec := vtime.TeslaK40()
	devices := []*gpu.Device{gpu.NewDevice(0, spec), gpu.NewDevice(1, spec)}
	sch, err := sched.New(devices...)
	if err != nil {
		t.Fatal(err)
	}
	exec := &stubExec{sch: sch}
	s, _ := New(exec, Config{QueueCapacity: 16})
	if got := s.AdmissionSnapshot().EffectiveCap; got != 16 {
		t.Fatalf("healthy effective capacity = %d, want 16", got)
	}
	for _, d := range devices {
		for i := 0; i < sched.DefaultFailThreshold; i++ {
			sch.ReportFailure(d)
		}
	}
	if got := s.AdmissionSnapshot().EffectiveCap; got != 8 {
		t.Fatalf("unhealthy effective capacity = %d, want 8", got)
	}
	// The shed reason carries the degradation signal. With the simple
	// limit 8 and the halved queue capacity 8, 32 submissions resolve as
	// 8 executing + 8 queued + 16 shed.
	release := make(chan struct{})
	exec.release = release
	var wg sync.WaitGroup
	sawUnhealthy := make(chan struct{}, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
			var refused *RefusedError
			if errors.As(err, &refused) && refused.Reason == "queue_full_unhealthy" {
				sawUnhealthy <- struct{}{}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.AdmissionSnapshot().Shed < 16 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	select {
	case <-sawUnhealthy:
	default:
		t.Fatal("no shed carried the unhealthy reason")
	}
	reconcile(t, s)
}

func TestDeadlineWhileQueued(t *testing.T) {
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 10,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
	})
	// Occupy the slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.AdmissionSnapshot().Inflight == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// This one queues behind it and abandons.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-timeout error = %v, want DeadlineExceeded", err)
	}
	if got := s.AdmissionSnapshot().TimedOut; got != 1 {
		t.Fatalf("timed_out = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	reconcile(t, s)
}

func TestDeadlineMidExecution(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{})
	_, err := s.Do(context.Background(), Request{
		SQL: "SELECT 1 FROM t", Class: workload.Simple, Deadline: 10 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-execution timeout error = %v, want DeadlineExceeded", err)
	}
	snap := s.AdmissionSnapshot()
	if snap.TimedOut != 1 || snap.Admitted != 0 {
		t.Fatalf("timed_out=%d admitted=%d, want 1/0", snap.TimedOut, snap.Admitted)
	}
	reconcile(t, s)
}

func TestDrainLifecycle(t *testing.T) {
	release := make(chan struct{})
	exec := &stubExec{release: release}
	s, _ := New(exec, Config{
		QueueCapacity: 10,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
	})
	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ { // 1 executes, 3 queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.AdmissionSnapshot()
		if (snap.Inflight == 1 && snap.QueueDepth == 3) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Release the in-flight query just after drain starts.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	rep := s.Drain(2 * time.Second)
	if rep.Flushed != 3 {
		t.Fatalf("flushed = %d, want 3", rep.Flushed)
	}
	if rep.ForcedCancels != 0 {
		t.Fatalf("forced cancels = %d, want 0 (drain finished in-flight work)", rep.ForcedCancels)
	}
	wg.Wait()

	snap := s.AdmissionSnapshot()
	if snap.Admitted != 1 || snap.Drained != 3 || snap.Inflight != 0 || !snap.Draining {
		t.Fatalf("post-drain snapshot %+v", snap)
	}
	var refused *RefusedError
	drainedErrs := 0
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil && errors.As(err, &refused) && refused.Reason == "drained" {
			drainedErrs++
		}
	}
	if drainedErrs != 3 {
		t.Fatalf("drained refusals = %d, want 3", drainedErrs)
	}

	// New submissions are refused while draining.
	_, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
	if !errors.As(err, &refused) || refused.Reason != "draining" || !refused.Draining {
		t.Fatalf("post-drain submission error = %v, want draining refusal", err)
	}
	reconcile(t, s)
}

func TestDrainForceCancelsAtDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	exec := &stubExec{release: release} // never released before drain
	s, _ := New(exec, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: workload.Simple})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.AdmissionSnapshot().Inflight == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rep := s.Drain(30 * time.Millisecond)
	if rep.ForcedCancels != 1 {
		t.Fatalf("forced cancels = %d, want 1", rep.ForcedCancels)
	}
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("force-canceled query error = %v, want Canceled", err)
	}
	snap := s.AdmissionSnapshot()
	if snap.TimedOut != 1 || snap.Inflight != 0 {
		t.Fatalf("post-force-drain snapshot %+v", snap)
	}
	reconcile(t, s)
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sql  string
		want workload.Class
	}{
		{"SELECT x FROM t LIMIT 5", workload.Simple},
		{"SELECT a, SUM(b) AS s FROM t GROUP BY a", workload.Simple},
		{"SELECT a, SUM(b) AS s FROM t JOIN d ON a = b GROUP BY a", workload.Intermediate},
		{"SELECT a, SUM(b) AS s, AVG(c) AS m FROM t JOIN d ON a = b JOIN e ON a = c GROUP BY a ORDER BY s", workload.Complex},
	}
	for _, tc := range cases {
		if got := Classify(tc.sql); got != tc.want {
			t.Errorf("Classify(%q) = %s, want %s", tc.sql, got, tc.want)
		}
	}
	// The heuristic should agree with the workload's own classes for
	// most of BD Insights (it is a fallback, not an oracle).
	agree, total := 0, 0
	for _, q := range workload.BDInsights() {
		total++
		if Classify(q.SQL) == q.Class {
			agree++
		}
	}
	if agree*10 < total*6 {
		t.Fatalf("heuristic agrees with only %d/%d BD Insights classes", agree, total)
	}
}

func TestInvalidRequests(t *testing.T) {
	s, _ := New(&stubExec{}, Config{})
	if _, err := s.Do(context.Background(), Request{SQL: "   "}); err == nil {
		t.Fatal("empty SQL must error")
	}
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT 1 FROM t", Class: "bogus"}); err == nil {
		t.Fatal("unknown class must error")
	}
	// Invalid requests are rejected before accounting.
	if snap := s.AdmissionSnapshot(); snap.Submitted != 0 {
		t.Fatalf("invalid requests counted as submitted: %+v", snap)
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil executor must error")
	}
}

func TestExecErrorStillAdmitted(t *testing.T) {
	// A real engine surfaces parse errors; they count as admitted (the
	// controller did its job) with the error tallied separately.
	eng := newServeTestEngine(t)
	s, _ := New(eng, Config{})
	_, err := s.Do(context.Background(), Request{SQL: "SELECT nonsense FROM missing", Class: workload.Simple})
	if err == nil {
		t.Fatal("bad SQL must surface the engine error")
	}
	snap := s.AdmissionSnapshot()
	if snap.Admitted != 1 || snap.ExecErrors != 1 {
		t.Fatalf("admitted=%d exec_errors=%d, want 1/1", snap.Admitted, snap.ExecErrors)
	}
	reconcile(t, s)
}

// newServeTestEngine builds a tiny real engine for end-to-end tests.
func newServeTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{Devices: 2, Degree: 4, NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	k := columnar.NewInt64Builder("k")
	v := columnar.NewInt64Builder("v")
	f := columnar.NewFloat64Builder("f")
	for i := 0; i < 500; i++ {
		k.Append(int64(i % 7))
		v.Append(int64(i))
		f.Append(float64(i) * 0.5)
	}
	tbl := columnar.MustNewTable("t", k.Build(), v.Build(), f.Build())
	if err := e.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndWithEngine(t *testing.T) {
	eng := newServeTestEngine(t)
	s, _ := New(eng, Config{})
	want, err := eng.Query("SELECT k, SUM(v) AS s FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Do(context.Background(), Request{SQL: "SELECT k, SUM(v) AS s FROM t GROUP BY k", Session: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Table.Rows() != want.Table.Rows() {
		t.Fatalf("served rows %d != direct rows %d", resp.Result.Table.Rows(), want.Table.Rows())
	}
	// Explain rides inline and is serialized server-side.
	resp, err = s.Do(context.Background(), Request{SQL: "SELECT k, SUM(v) AS s FROM t GROUP BY k", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report == nil || resp.Report.Query == "" {
		t.Fatal("explain request must return a report")
	}
	reconcile(t, s)
}
