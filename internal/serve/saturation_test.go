package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
	"blugpu/internal/fault"
	"blugpu/internal/metrics"
	"blugpu/internal/optimizer"
	"blugpu/internal/qlog"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// saturationSF keeps the differential sweep fast while still routing
// work through every operator path.
const saturationSF = 0.004

// diffLocal compares two results cell by cell: integers, strings and
// NULLs exactly, floats with 1e-9 relative tolerance (parallel float
// aggregation is order-sensitive in the last bits). Mirrors the bench
// fault-sweep comparator; serve cannot import bench (bench imports
// serve for the sustained-throughput experiment).
func diffLocal(want, got *engine.Result) string {
	wt, gt := want.Table, got.Table
	if wt.Rows() != gt.Rows() {
		return fmt.Sprintf("%d rows vs %d", gt.Rows(), wt.Rows())
	}
	wc, gc := wt.Columns(), gt.Columns()
	if len(wc) != len(gc) {
		return fmt.Sprintf("%d columns vs %d", len(gc), len(wc))
	}
	for ci := range wc {
		if wc[ci].Name() != gc[ci].Name() {
			return fmt.Sprintf("column %d named %q vs %q", ci, gc[ci].Name(), wc[ci].Name())
		}
		for ri := 0; ri < wt.Rows(); ri++ {
			if !cellsEqualLocal(wc[ci].Value(ri), gc[ci].Value(ri)) {
				return fmt.Sprintf("row %d column %q: %v vs %v", ri, wc[ci].Name(), gc[ci].Value(ri), wc[ci].Value(ri))
			}
		}
	}
	return ""
}

func cellsEqualLocal(a, b columnar.Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	if a.Type == columnar.Float64 || b.Type == columnar.Float64 {
		toF := func(v columnar.Value) float64 {
			if v.Type == columnar.Int64 {
				return float64(v.I)
			}
			return v.F
		}
		x, y := toF(a), toF(b)
		if x == y {
			return true
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= 1e-9*math.Max(scale, 1)
	}
	return a.Equal(b)
}

// gatedEngine wraps a real engine so tests can hold queries in flight
// (the drain phase needs deterministic in-flight + queued work).
type gatedEngine struct {
	*engine.Engine
	mu   sync.Mutex
	gate chan struct{}
}

func (g *gatedEngine) setGate(gate chan struct{}) {
	g.mu.Lock()
	g.gate = gate
	g.mu.Unlock()
}

func (g *gatedEngine) QueryNamedCtxAttrs(ctx context.Context, name, sql string, attrs ...trace.Attr) (*engine.Result, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, fmt.Errorf("gated: query canceled: %w", ctx.Err())
		}
	}
	return g.Engine.QueryNamedCtxAttrs(ctx, name, sql, attrs...)
}

func newSaturationEngine(t *testing.T, data *workload.Dataset, inj *fault.Injector) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{
		Devices:    2,
		DeviceSpec: vtime.TeslaK40(),
		Degree:     4,
		Faults:     inj,
		// The sweep runs at a tiny scale factor so 200+ users finish
		// quickly; drop T1 so queries still take the GPU path (that is
		// where faults fire and the Section 2.1.1 fallback must stay
		// bit-identical).
		Thresholds: optimizer.Thresholds{T1Rows: 1, T2Groups: 0, T3Rows: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := data.RegisterAll(e); err != nil {
		t.Fatal(err)
	}
	return e
}

// parseServeMetrics pulls the admission counters back out of a live
// /metrics exposition — the second ledger of the double-entry check.
func parseServeMetrics(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		var v uint64
		switch {
		case strings.HasPrefix(line, "blu_serve_submitted_total "):
			fmt.Sscanf(line, "blu_serve_submitted_total %d", &v)
			out["submitted"] = v
		case strings.HasPrefix(line, `blu_serve_queries_total{outcome="`):
			rest := strings.TrimPrefix(line, `blu_serve_queries_total{outcome="`)
			i := strings.Index(rest, `"`)
			if i < 0 {
				continue
			}
			fmt.Sscanf(rest[i:], `"} %d`, &v)
			out[rest[:i]] = v
		}
	}
	return out
}

// TestSaturationDifferential is the acceptance sweep: a UserMix scaled
// to 205 users against a saturated server (shedding active) under fault
// rates 0 / 0.1 / 0.5 / device-dead. Every admitted query's result must
// be bit-identical to the unloaded single-user reference, and the four
// outcomes must partition the submission count exactly — double-entry
// on the server's own counters AND on the /metrics scrape.
func TestSaturationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is long")
	}
	data := workload.Generate(saturationSF, 20160626)

	// The unloaded single-user reference: one clean engine, each distinct
	// statement once.
	refEng := newSaturationEngine(t, data, nil)
	mix := workload.UserMix{Simple: 140, Intermediate: 45, Complex: 20, QueriesPerUser: 1}
	if mix.Users() < 200 {
		t.Fatalf("mix has %d users; the acceptance floor is 200", mix.Users())
	}
	streams := workload.BDInsightsStreams(mix)
	reference := map[string]*engine.Result{}
	for _, stream := range streams {
		for _, q := range stream {
			if reference[q.SQL] != nil {
				continue
			}
			res, err := refEng.Query(q.SQL)
			if err != nil {
				t.Fatalf("reference %s: %v", q.ID, err)
			}
			reference[q.SQL] = res
		}
	}

	scenarios := []struct {
		name string
		inj  func() *fault.Injector
		kill bool
	}{
		{name: "rate-0", inj: func() *fault.Injector { return nil }},
		{name: "rate-0.1", inj: func() *fault.Injector {
			return fault.New(fault.Config{Seed: 7, Reserve: 0.1, H2D: 0.1, D2H: 0.1, Kernel: 0.1})
		}},
		{name: "rate-0.5", inj: func() *fault.Injector {
			return fault.New(fault.Config{Seed: 11, Reserve: 0.5, H2D: 0.5, D2H: 0.5, Kernel: 0.5})
		}},
		{name: "device-dead", inj: func() *fault.Injector {
			return fault.New(fault.Config{Seed: 13, Reserve: 0.2, H2D: 0.2, D2H: 0.2, Kernel: 0.2})
		}, kill: true},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			inj := sc.inj()
			eng := newSaturationEngine(t, data, inj)
			gated := &gatedEngine{Engine: eng}
			cfg := Config{
				// Tight bounds so 205 users genuinely saturate and shed.
				QueueCapacity: 16,
				ClassLimits:   map[workload.Class]int{workload.Simple: 4, workload.Intermediate: 2, workload.Complex: 1},
			}
			// The rate-0 scenario also carries the observability plane: a
			// query log (the third ledger checked below) and a live tracer
			// so the request-ID join proof runs under real saturation.
			var logBuf bytes.Buffer
			if sc.name == "rate-0" {
				eng.SetTracer(trace.New())
				cfg.Log = qlog.New(&logBuf)
			}
			s, err := New(gated, cfg)
			if err != nil {
				t.Fatal(err)
			}

			var clientSubmitted, succeeded atomic.Uint64
			var mismatches atomic.Uint64

			// Load phase: every user retries shed submissions (each retry
			// is a fresh submission on both ledgers) until admitted.
			var wg sync.WaitGroup
			for _, stream := range streams {
				for _, q := range stream {
					wg.Add(1)
					go func(q workload.Query) {
						defer wg.Done()
						for attempt := 0; attempt < 2000; attempt++ {
							clientSubmitted.Add(1)
							resp, err := s.Do(context.Background(), Request{
								SQL: q.SQL, Class: q.Class, Name: q.ID,
							})
							var refused *RefusedError
							if errors.As(err, &refused) {
								time.Sleep(500 * time.Microsecond)
								continue
							}
							if err != nil {
								t.Errorf("%s failed under load: %v", q.ID, err)
								return
							}
							if msg := diffLocal(reference[q.SQL], resp.Result); msg != "" {
								mismatches.Add(1)
								t.Errorf("%s diverged from the unloaded reference: %s", q.ID, msg)
							}
							succeeded.Add(1)
							return
						}
						t.Errorf("%s never admitted", q.ID)
					}(q)
				}
			}
			if sc.kill {
				// Lose device 0 mid-load: wait for part of the load to land
				// first so both halves of the run are exercised.
				go func() {
					for succeeded.Load() < 60 {
						time.Sleep(time.Millisecond)
					}
					inj.KillDevice(0)
				}()
			}
			wg.Wait()
			if mismatches.Load() != 0 {
				t.Fatalf("%d admitted results diverged", mismatches.Load())
			}
			loadSnap := s.AdmissionSnapshot()
			if loadSnap.Shed == 0 {
				t.Fatal("the load phase must actually shed (server not saturated)")
			}

			// Request-ID join proof: one identified EXPLAIN query issued
			// right after the load phase must surface the same ID in the
			// query-log record (with phases accounting for the total), in
			// the live trace ring, and in the EXPLAIN ANALYZE report.
			if sc.name == "rate-0" {
				const joinID = "saturation-join-1"
				var outBuf bytes.Buffer
				clientSubmitted.Add(1)
				resp, err := s.Do(context.Background(), Request{
					SQL: "SELECT sr_item_sk FROM store_returns LIMIT 1", Class: workload.Simple,
					Name: "saturation-join", Explain: true, RequestID: joinID,
					Serialize: func(r *Response) (int, error) {
						if err := json.NewEncoder(&outBuf).Encode(r.Result.Columns); err != nil {
							return 0, err
						}
						return outBuf.Len(), nil
					},
				})
				if err != nil {
					t.Fatalf("join query: %v", err)
				}
				if resp.RequestID != joinID {
					t.Fatalf("response carries %q, want %q", resp.RequestID, joinID)
				}
				if resp.Report == nil || resp.Report.RequestID != joinID {
					t.Fatalf("EXPLAIN report does not carry the request ID: %+v", resp.Report)
				}
				entry, ok := s.TraceRing().Get(joinID)
				if !ok || len(entry.Spans) == 0 {
					t.Fatalf("trace ring has no spans for %s", joinID)
				}
				recs, err := qlog.Decode(logBuf.Bytes())
				if err != nil {
					t.Fatalf("query log invalid after load: %v", err)
				}
				found := false
				for _, rec := range recs {
					if rec.RequestID != joinID || rec.Event != qlog.EventQuery {
						continue
					}
					found = true
					if rec.Outcome != qlog.OutcomeOK || rec.ResultBytes == 0 {
						t.Fatalf("join record %+v", rec)
					}
					phasesCloseToTotal(t, rec)
				}
				if !found {
					t.Fatalf("no query-log record for %s", joinID)
				}
			}

			// Deterministic timed_out: expired contexts resolve as
			// timed_out whether caught queued or mid-execution.
			for i := 0; i < 3; i++ {
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				clientSubmitted.Add(1)
				_, err := s.Do(ctx, Request{SQL: "SELECT sr_item_sk FROM store_returns LIMIT 1", Class: workload.Simple})
				cancel()
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("expired submission returned %v", err)
				}
			}

			// Drain phase: hold 7 queries in flight (the class limits) and
			// queue 5 more, then drain — the queued 5 resolve as drained,
			// the in-flight 7 finish normally once the gate opens.
			gate := make(chan struct{})
			gated.setGate(gate)
			drainResults := make(chan error, 12)
			inflightPlan := []workload.Class{
				workload.Simple, workload.Simple, workload.Simple, workload.Simple,
				workload.Intermediate, workload.Intermediate, workload.Complex,
			}
			for _, c := range inflightPlan {
				clientSubmitted.Add(1)
				go func(c workload.Class) {
					_, err := s.Do(context.Background(), Request{SQL: "SELECT sr_item_sk FROM store_returns LIMIT 1", Class: c})
					drainResults <- err
				}(c)
			}
			deadline := time.Now().Add(10 * time.Second)
			for s.AdmissionSnapshot().Inflight != len(inflightPlan) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			for i := 0; i < 5; i++ {
				clientSubmitted.Add(1)
				go func() {
					_, err := s.Do(context.Background(), Request{SQL: "SELECT sr_item_sk FROM store_returns LIMIT 1", Class: workload.Simple})
					drainResults <- err
				}()
			}
			for s.AdmissionSnapshot().QueueDepth != 5 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			go func() {
				time.Sleep(20 * time.Millisecond)
				close(gate)
			}()
			rep := s.Drain(10 * time.Second)
			if rep.Flushed != 5 {
				t.Fatalf("drain flushed %d, want 5", rep.Flushed)
			}
			if rep.ForcedCancels != 0 {
				t.Fatalf("drain force-canceled %d queries, want 0", rep.ForcedCancels)
			}
			drainedSeen, finished := 0, 0
			for i := 0; i < 12; i++ {
				err := <-drainResults
				var refused *RefusedError
				switch {
				case err == nil:
					finished++
				case errors.As(err, &refused) && refused.Reason == "drained":
					drainedSeen++
				default:
					t.Fatalf("drain-phase query: %v", err)
				}
			}
			if drainedSeen != 5 || finished != 7 {
				t.Fatalf("drained=%d finished=%d, want 5/7", drainedSeen, finished)
			}

			// Submissions during drain are refused and still counted.
			clientSubmitted.Add(1)
			_, err = s.Do(context.Background(), Request{SQL: "SELECT sr_item_sk FROM store_returns LIMIT 1", Class: workload.Simple})
			var refused *RefusedError
			if !errors.As(err, &refused) || refused.Reason != "draining" {
				t.Fatalf("post-drain submission: %v", err)
			}

			// Double-entry ledger one: the server's own counters.
			snap := s.AdmissionSnapshot()
			if snap.Submitted != clientSubmitted.Load() {
				t.Fatalf("server saw %d submissions, clients sent %d", snap.Submitted, clientSubmitted.Load())
			}
			if got := snap.Admitted + snap.Shed + snap.TimedOut + snap.Drained; got != snap.Submitted {
				t.Fatalf("outcomes do not partition submissions: %d+%d+%d+%d = %d != %d",
					snap.Admitted, snap.Shed, snap.TimedOut, snap.Drained, got, snap.Submitted)
			}
			if snap.Inflight != 0 || snap.QueueDepth != 0 {
				t.Fatalf("drained server still holds work: %+v", snap)
			}
			if snap.TimedOut < 3 {
				t.Fatalf("timed_out = %d, want >= 3", snap.TimedOut)
			}
			if snap.Drained != 5 {
				t.Fatalf("drained = %d, want 5", snap.Drained)
			}

			// Double-entry ledger two: the /metrics exposition.
			var sb strings.Builder
			metrics.Collect(metrics.Sources{
				Monitor:   eng.Monitor(),
				Sched:     eng.Scheduler(),
				Devices:   eng.Devices(),
				Admission: s.AdmissionSnapshot,
			}).WriteText(&sb)
			scraped := parseServeMetrics(t, sb.String())
			if scraped["submitted"] != snap.Submitted {
				t.Fatalf("/metrics submitted %d != %d", scraped["submitted"], snap.Submitted)
			}
			if got := scraped["admitted"] + scraped["shed"] + scraped["timed_out"] + scraped["drained"]; got != scraped["submitted"] {
				t.Fatalf("/metrics outcomes %d do not partition submitted %d", got, scraped["submitted"])
			}
			if scraped["admitted"] != snap.Admitted || scraped["drained"] != snap.Drained {
				t.Fatalf("/metrics outcome mismatch: scrape %v vs snapshot %+v", scraped, snap)
			}

			// Double-entry ledger three (rate-0 only): the query log. One
			// query record per submission, outcome counts matching the
			// server's own counters exactly.
			if sc.name == "rate-0" {
				recs, err := qlog.Decode(logBuf.Bytes())
				if err != nil {
					t.Fatalf("final query log invalid: %v", err)
				}
				counts := map[string]uint64{}
				var total uint64
				for _, rec := range recs {
					if rec.Event != qlog.EventQuery {
						continue
					}
					counts[rec.Outcome]++
					total++
				}
				if total != snap.Submitted {
					t.Fatalf("query log holds %d records for %d submissions", total, snap.Submitted)
				}
				if counts[qlog.OutcomeOK] != snap.Admitted ||
					counts[qlog.OutcomeShed] != snap.Shed ||
					counts[qlog.OutcomeTimedOut] != snap.TimedOut ||
					counts[qlog.OutcomeDrained] != snap.Drained {
					t.Fatalf("query-log outcomes %v do not match the snapshot %+v", counts, snap)
				}
				// Per-class reconciliation: every (class, outcome) cell in
				// the query log must match the server's per-class counters,
				// and every refusal record must say why it was refused.
				type classOutcome struct{ class, outcome string }
				classCounts := map[classOutcome]uint64{}
				for _, rec := range recs {
					if rec.Event != qlog.EventQuery {
						continue
					}
					if rec.RequestID == "" || rec.Class == "" {
						t.Fatalf("query record missing identity: %+v", rec)
					}
					classCounts[classOutcome{rec.Class, rec.Outcome}]++
					switch rec.Outcome {
					case qlog.OutcomeShed, qlog.OutcomeDrained:
						if rec.Reason == "" {
							t.Fatalf("%s record without a reason: %+v", rec.Outcome, rec)
						}
					case qlog.OutcomeTimedOut:
						// Caught queued → reason; caught mid-execution →
						// the context error. One of the two must explain it.
						if rec.Reason == "" && rec.Error == "" {
							t.Fatalf("timed_out record without reason or error: %+v", rec)
						}
					}
				}
				for _, c := range snap.Classes {
					for _, oc := range []struct {
						outcome string
						want    uint64
					}{
						{qlog.OutcomeOK, c.Admitted},
						{qlog.OutcomeShed, c.Shed},
						{qlog.OutcomeTimedOut, c.TimedOut},
						{qlog.OutcomeDrained, c.Drained},
					} {
						if got := classCounts[classOutcome{c.Class, oc.outcome}]; got != oc.want {
							t.Fatalf("query log has %d %s/%s records, counter says %d",
								got, c.Class, oc.outcome, oc.want)
						}
					}
				}
			}

			if inj != nil && inj.Counts().Total() == 0 && sc.name != "rate-0" {
				t.Fatalf("scenario %s injected no faults; the sweep proved nothing", sc.name)
			}
		})
	}
}
