package serve

import (
	"sort"
	"time"

	"blugpu/internal/engine"
	"blugpu/internal/metrics"
	"blugpu/internal/qlog"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

// SLO is one user class's wall-latency objective: at least Objective
// (a fraction, e.g. 0.99) of submissions should resolve end-to-end
// within Threshold. The metrics layer turns the observed wall-latency
// distribution against these targets into error-budget burn-rate
// gauges (blu_slo_*). Wall latency is real time — the SLO surface is
// informational and never gated, unlike the modeled-time benchmarks.
type SLO struct {
	Threshold time.Duration
	Objective float64
}

// defaultSLOs are deliberately loose: the modeled engine runs queries
// in microseconds of real time, so these only trip under genuine
// saturation or pathological host load.
func defaultSLOs() map[workload.Class]SLO {
	return map[workload.Class]SLO{
		workload.Simple:       {Threshold: 50 * time.Millisecond, Objective: 0.99},
		workload.Intermediate: {Threshold: 200 * time.Millisecond, Objective: 0.95},
		workload.Complex:      {Threshold: time.Second, Objective: 0.90},
	}
}

// dequeueWindow bounds the per-class dequeue-timestamp ring the
// Retry-After derivation reads. 32 stamps per class is enough signal
// for a rate estimate while staying O(1) per admit.
const dequeueWindow = 32

// retryAfterBounds clamp the derived Retry-After hint: never less than
// a second (the HTTP header granularity) and never parking a client
// for more than a minute.
const (
	retryAfterMin = time.Second
	retryAfterMax = time.Minute
)

// noteDequeueLocked stamps one admission for the Retry-After rate
// estimate. Caller holds s.mu.
func (s *Server) noteDequeueLocked(c workload.Class) {
	q := append(s.dequeues[c], s.clock())
	if len(q) > dequeueWindow {
		q = q[len(q)-dequeueWindow:]
	}
	s.dequeues[c] = q
}

// retryAfterLocked derives the Retry-After hint a shed response
// carries from the current queue depth and the recently observed
// dequeue rate across all classes. Caller holds s.mu.
func (s *Server) retryAfterLocked() time.Duration {
	var stamps []time.Time
	for _, c := range classOrder {
		stamps = append(stamps, s.dequeues[c]...)
	}
	return retryAfterHint(s.queueDepthLocked(), stamps, s.clock(), s.cfg.RetryAfter)
}

// retryAfterHint estimates how long a shed client should wait before
// retrying: the time the server needs to dequeue one full queue at the
// recently observed dequeue rate (depth+1 admissions, so a retry lands
// behind the work already queued), clamped to [1s, 60s]. With fewer
// than two recent dequeues there is no rate signal and the configured
// fallback applies — a cold or stalled server should not advertise an
// optimistic hint it cannot honor.
func retryAfterHint(depth int, stamps []time.Time, now time.Time, fallback time.Duration) time.Duration {
	if len(stamps) < 2 {
		return clampRetryAfter(fallback)
	}
	oldest := stamps[0]
	for _, t := range stamps[1:] {
		if t.Before(oldest) {
			oldest = t
		}
	}
	window := now.Sub(oldest)
	if window <= 0 {
		return clampRetryAfter(fallback)
	}
	rate := float64(len(stamps)) / window.Seconds() // dequeues per second
	wait := time.Duration(float64(depth+1) / rate * float64(time.Second))
	return clampRetryAfter(wait)
}

func clampRetryAfter(d time.Duration) time.Duration {
	if d < retryAfterMin {
		return retryAfterMin
	}
	if d > retryAfterMax {
		return retryAfterMax
	}
	return d
}

// recentKeep bounds the recent-request ring /debug/serve and
// /debug/queries render.
const recentKeep = 32

// pushRecentLocked retains one resolved submission for the debug
// surfaces. Caller holds s.mu.
func (s *Server) pushRecentLocked(rr metrics.RecentRequest) {
	s.recent = append(s.recent, rr)
	if len(s.recent) > recentKeep {
		s.recent = s.recent[len(s.recent)-recentKeep:]
	}
}

// spanDigest summarizes one query's span subtree for the query log:
// the distinct device IDs touched, total PCIe bytes moved, and the
// first GPU→CPU fallback cause (empty when no fallback happened).
func spanDigest(spans []trace.Span) (devices []int, transferBytes int64, fallback string) {
	seen := map[int]bool{}
	for _, sp := range spans {
		for _, a := range sp.Attrs {
			switch {
			case a.Key == "device" && a.IsInt:
				if !seen[int(a.Int)] {
					seen[int(a.Int)] = true
					devices = append(devices, int(a.Int))
				}
			case a.Key == "bytes" && a.IsInt && sp.Cat == "transfer":
				transferBytes += a.Int
			case a.Key == "fallback" && fallback == "":
				fallback = a.Str
			}
		}
	}
	sort.Ints(devices)
	return devices, transferBytes, fallback
}

// captureTrace snapshots the query's span subtree off the executor's
// tracer into the live ring. The serving layer reaches the tracer via
// a runtime capability check rather than widening Executor — stub
// executors in tests simply have no traces to retain.
func (s *Server) captureTrace(reqID, name, session string, class workload.Class, res *engine.Result, total time.Duration, slow bool) []trace.Span {
	if s.ring == nil || res == nil || res.TraceSeq == 0 {
		return nil
	}
	tp, ok := s.exec.(interface{ Tracer() *trace.Tracer })
	if !ok {
		return nil
	}
	tr := tp.Tracer()
	if tr == nil {
		return nil
	}
	spans := tr.QuerySpans(res.TraceSeq)
	if len(spans) == 0 {
		return nil
	}
	s.ring.Add(trace.RingEntry{
		RequestID: reqID,
		Query:     name,
		Session:   session,
		Class:     string(class),
		Seq:       res.TraceSeq,
		Wall:      total,
		At:        s.clock(),
		Slow:      slow,
		Spans:     spans,
	})
	return spans
}

// TraceRing exposes the live trace ring (nil before New).
func (s *Server) TraceRing() *trace.Ring { return s.ring }

// logRefused emits the query-log record for a submission that never
// ran: shed at the door, flushed by drain, or abandoned while queued.
func (s *Server) logRefused(reqID string, req Request, class workload.Class, outcome, reason string, wait, total time.Duration) {
	if s.cfg.Log == nil {
		return
	}
	s.cfg.Log.Log(qlog.Record{
		Event:     qlog.EventQuery,
		RequestID: reqID,
		Session:   req.Session,
		Class:     string(class),
		SQL:       req.SQL,
		Outcome:   outcome,
		Reason:    reason,
		Phases:    qlog.Phases{QueueWaitMs: qlog.Ms(wait)},
		TotalMs:   qlog.Ms(total),
	})
}
