// Package serve is the admission-controlled query-serving layer: a
// bounded queue in front of the engine with per-user-class concurrency
// limits and weighted dequeue, per-query deadlines, load shedding tied
// to queue depth and circuit-breaker health, and graceful drain.
//
// The paper drives its hybrid engine with JMeter multi-user BD Insights
// mixes; this package is the server side of that story — the piece that
// keeps hundreds of concurrent analysts from trampling the scheduler
// while every admitted query still returns exactly the result the
// unloaded engine would.
//
// Accounting is double-entry: every submission resolves to exactly one
// of four outcomes — admitted (ran to a terminal non-deadline state,
// successful or not), shed (refused at the door), timed_out (deadline
// or caller cancellation, queued or mid-execution), drained (flushed
// from the queue at drain start) — so
//
//	submitted == admitted + shed + timed_out + drained
//
// once the server is idle. The saturation tests and serve-smoke assert
// this both on the Server's own counters and on the /metrics scrape.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"blugpu/internal/engine"
	"blugpu/internal/explain"
	"blugpu/internal/metrics"
	"blugpu/internal/monitor"
	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/sched"
	"blugpu/internal/trace"
	"blugpu/internal/vtime"
	"blugpu/internal/workload"
)

// Executor is the slice of the engine API the serving layer drives.
// *engine.Engine satisfies it; tests substitute blocking stubs to pin
// drain and timeout behavior deterministically. Implementations must
// honor ctx cancellation — the engine checks it between operators.
type Executor interface {
	QueryNamedCtxAttrs(ctx context.Context, name, sql string, attrs ...trace.Attr) (*engine.Result, error)
	ExplainAnalyzeNamedCtx(ctx context.Context, name, sql string) (*explain.Report, *engine.Result, error)
	Scheduler() *sched.Scheduler
}

// classOrder fixes the iteration order everywhere state is walked, so
// snapshots and dequeue tie-breaks are deterministic.
var classOrder = []workload.Class{workload.Simple, workload.Intermediate, workload.Complex}

// Config tunes the admission controller. Zero values take defaults.
type Config struct {
	// QueueCapacity bounds the total queued (not yet executing) queries
	// across all classes. While the fleet is unhealthy (every breaker
	// open) the effective capacity halves, shedding earlier.
	QueueCapacity int
	// ClassLimits caps concurrently executing queries per class.
	ClassLimits map[workload.Class]int
	// ClassWeights drive the smooth weighted round-robin dequeue; a
	// class with weight 4 is picked twice as often as one with 2 when
	// both have queued work and free slots.
	ClassWeights map[workload.Class]int
	// DefaultDeadline bounds each query's end-to-end time (queue wait +
	// execution) when the request carries no deadline. 0 = unbounded.
	DefaultDeadline time.Duration
	// DrainDeadline bounds Drain's wait for in-flight queries before it
	// force-cancels them.
	DrainDeadline time.Duration
	// PlaceRetries bounds the pre-execution backoff retries taken while
	// the fleet is unhealthy; after them the query runs anyway (the CPU
	// fallback path serves it).
	PlaceRetries int
	// PlaceBackoff is the first retry's wall-clock backoff (doubling).
	PlaceBackoff time.Duration
	// RetryAfter is the fallback hint returned with shed responses when
	// the server has no recent dequeue-rate signal to derive one from.
	RetryAfter time.Duration
	// SlowQuery is the end-to-end wall-clock threshold above which a
	// query is forced into the slow-trace set and logged as a
	// slow_query event. 0 takes the 250ms default; negative disables.
	SlowQuery time.Duration
	// SLOs sets per-class wall-latency objectives for the blu_slo_*
	// burn-rate gauges; nil takes loose defaults.
	SLOs map[workload.Class]SLO
	// Log receives one structured record per resolved submission (all
	// five outcomes); nil disables query logging.
	Log *qlog.Logger
	// Prof receives per-class, per-phase resource attribution (wall
	// time, pprof-labeled CPU samples, allocation deltas) for every
	// admitted query; nil disables attribution. The accountant's wall
	// columns reconcile exactly against the query log's phase fields —
	// both are fed the same measured durations.
	Prof *prof.Accountant
	// TraceRingSize bounds the live trace ring of recent query traces
	// (default 64).
	TraceRingSize int
	// SlowTraceKeep bounds the retained top-K slow-trace set
	// (default 16).
	SlowTraceKeep int
	// Clock overrides the wall clock for queue-wait stamps and the
	// Retry-After rate window; tests pin it. nil takes time.Now. The
	// server reads it from concurrent request goroutines, so injected
	// clocks must be safe for concurrent use. Execution-phase timings
	// always use the real clock.
	Clock func() time.Time
	// PagesFiring, when set, reports how many severity-page alert rules
	// are currently firing (the obsd rule engine's hook). Any firing
	// page alert halves effective admission capacity exactly as the
	// all-breakers-open unhealthy state does, so operator-declared
	// alerts and built-in breaker health shed on the same signal. Must
	// be safe for concurrent use and must not call back into the
	// server.
	PagesFiring func() int
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.ClassLimits == nil {
		c.ClassLimits = map[workload.Class]int{
			workload.Simple: 8, workload.Intermediate: 4, workload.Complex: 2,
		}
	}
	if c.ClassWeights == nil {
		c.ClassWeights = map[workload.Class]int{
			workload.Simple: 4, workload.Intermediate: 2, workload.Complex: 1,
		}
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 5 * time.Second
	}
	if c.PlaceRetries == 0 {
		c.PlaceRetries = 2
	}
	if c.PlaceBackoff <= 0 {
		c.PlaceBackoff = 200 * time.Microsecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 250 * time.Millisecond
	}
	if c.SLOs == nil {
		c.SLOs = defaultSLOs()
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 64
	}
	if c.SlowTraceKeep <= 0 {
		c.SlowTraceKeep = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Request is one query submission.
type Request struct {
	// Session identifies the client session; empty creates/uses the
	// anonymous session "".
	Session string
	// SQL is the statement to run.
	SQL string
	// Class pins the user class; empty classifies heuristically from
	// the SQL shape.
	Class workload.Class
	// Name names the query in traces and the monitor (empty picks
	// "serve-<n>").
	Name string
	// Explain additionally returns the EXPLAIN ANALYZE decision audit.
	// Explain runs are serialized server-side (the audit's counter
	// deltas are not concurrency-safe), so they wait on each other.
	Explain bool
	// Deadline overrides Config.DefaultDeadline for this query.
	Deadline time.Duration
	// RequestID correlates this submission across the query log, the
	// live trace ring, the trace spans, and the EXPLAIN ANALYZE report.
	// Empty generates a stable "blu-<n>" ID from the submission
	// counter. The HTTP layer feeds X-Request-ID through here.
	RequestID string
	// Serialize, when set, renders the response for the client and
	// returns the encoded byte count; the server times the call so the
	// query log's serialize phase covers real encoding work, not an
	// estimate. Only invoked on success.
	Serialize func(*Response) (int, error)
}

// Response is one admitted query's outcome.
type Response struct {
	Session      string
	Query        string // resolved query name
	RequestID    string // honored or generated request ID
	Class        workload.Class
	Result       *engine.Result
	Report       *explain.Report // non-nil only for Explain requests
	Wait         time.Duration   // admission-queue wait
	ExecWall     time.Duration   // wall-clock execution time
	PlaceRetries int
	Phases       qlog.Phases // wall-clock phase breakdown (post-serialize)
	Slow         bool        // over Config.SlowQuery end-to-end
}

// RefusedError reports a submission the admission controller turned
// away: shed on queue depth/breaker state, refused during drain, or
// flushed by drain while queued.
type RefusedError struct {
	Reason     string // queue_full | queue_full_unhealthy | draining | drained
	Draining   bool
	RetryAfter time.Duration
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("serve: query refused (%s), retry after %s", e.Reason, e.RetryAfter)
}

// SessionInfo is one session's public state.
type SessionInfo struct {
	ID        string         `json:"id"`
	Queries   uint64         `json:"queries"`
	LastClass workload.Class `json:"last_class,omitempty"`
	Created   time.Time      `json:"created"`
	LastSeen  time.Time      `json:"last_seen"`
}

// DrainReport summarizes one Drain call.
type DrainReport struct {
	Flushed       int           `json:"flushed"`        // queued queries resolved as drained
	ForcedCancels int           `json:"forced_cancels"` // in-flight queries canceled at the deadline
	Waited        time.Duration `json:"waited"`
}

// ticket is one queued submission. ready is closed exactly once, when
// the pump admits it or drain flushes it; which happened is recorded
// under the server mutex before the close.
type ticket struct {
	class      workload.Class
	ready      chan struct{}
	drainedOut bool
	enqueued   time.Time
}

type classCounters struct {
	admitted, shed, timedOut, drained uint64
}

// Server is the admission controller. Safe for concurrent use.
type Server struct {
	cfg  Config
	exec Executor

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when active work completes
	queues   map[workload.Class][]*ticket
	cw       map[workload.Class]int // smooth-WRR current weights
	active   map[workload.Class]int
	cancels  map[*ticket]context.CancelFunc
	sessions map[string]*SessionInfo
	draining bool
	forced   bool // drain deadline passed; cancel on registration

	submitted    uint64
	admitted     uint64
	shed         uint64
	timedOut     uint64
	drained      uint64
	execErrors   uint64
	placeRetries uint64
	slowQueries  uint64
	classCounts  map[workload.Class]*classCounters
	waitHists    map[workload.Class]*monitor.Hist
	wallHists    map[workload.Class]*monitor.Hist // end-to-end wall latency (SLO input)
	dequeues     map[workload.Class][]time.Time   // recent admit stamps (Retry-After input)
	recent       []metrics.RecentRequest          // resolved submissions, oldest first
	seq          uint64

	clock func() time.Time
	ring  *trace.Ring // live sampled trace retention

	explainMu sync.Mutex
}

// New builds a Server over an executor.
func New(exec Executor, cfg Config) (*Server, error) {
	if exec == nil {
		return nil, errors.New("serve: nil executor")
	}
	s := &Server{
		cfg:         cfg.withDefaults(),
		exec:        exec,
		queues:      make(map[workload.Class][]*ticket),
		cw:          make(map[workload.Class]int),
		active:      make(map[workload.Class]int),
		cancels:     make(map[*ticket]context.CancelFunc),
		sessions:    make(map[string]*SessionInfo),
		classCounts: make(map[workload.Class]*classCounters),
		waitHists:   make(map[workload.Class]*monitor.Hist),
		wallHists:   make(map[workload.Class]*monitor.Hist),
		dequeues:    make(map[workload.Class][]time.Time),
	}
	s.clock = s.cfg.Clock
	s.ring = trace.NewRing(s.cfg.TraceRingSize, s.cfg.SlowTraceKeep)
	s.cond = sync.NewCond(&s.mu)
	for _, c := range classOrder {
		s.classCounts[c] = &classCounters{}
		s.waitHists[c] = &monitor.Hist{}
		s.wallHists[c] = &monitor.Hist{}
	}
	return s, nil
}

// Classify buckets a statement into a user class by shape: joins and
// window functions weigh heaviest, then grouping and sheer length. It
// is a heuristic for requests that do not pin a class; the workload
// driver always pins the class from the benchmark definition.
func Classify(sql string) workload.Class {
	u := strings.ToUpper(sql)
	score := 2 * strings.Count(u, " JOIN ")
	score += 2 * strings.Count(u, "OVER (")
	score += 2 * strings.Count(u, "OVER(")
	if strings.Contains(u, "GROUP BY") {
		score++
	}
	score += len(sql) / 300
	switch {
	case score >= 5:
		return workload.Complex
	case score >= 2:
		return workload.Intermediate
	default:
		return workload.Simple
	}
}

func validClass(c workload.Class) bool {
	for _, k := range classOrder {
		if c == k {
			return true
		}
	}
	return false
}

func (s *Server) limit(c workload.Class) int  { return s.cfg.ClassLimits[c] }
func (s *Server) weight(c workload.Class) int { return s.cfg.ClassWeights[c] }

func (s *Server) queueDepthLocked() int {
	n := 0
	for _, c := range classOrder {
		n += len(s.queues[c])
	}
	return n
}

func (s *Server) activeTotalLocked() int {
	n := 0
	for _, c := range classOrder {
		n += s.active[c]
	}
	return n
}

// effectiveCapLocked is the live queue bound: the configured capacity,
// halved (min 1) while the process is unhealthy — every device breaker
// open, or a severity-page alert firing. It is the same degradation
// signal /healthz serves to load balancers.
func (s *Server) effectiveCapLocked() int {
	cap := s.cfg.QueueCapacity
	if s.healthLocked() == metrics.HealthUnhealthy {
		if cap /= 2; cap < 1 {
			cap = 1
		}
	}
	return cap
}

// healthLocked combines breaker-fleet health with the alert engine's
// firing page count (when wired).
func (s *Server) healthLocked() string {
	pages := 0
	if s.cfg.PagesFiring != nil {
		pages = s.cfg.PagesFiring()
	}
	return metrics.HealthStatusWith(s.exec.Scheduler(), pages)
}

func (s *Server) touchSessionLocked(id string, class workload.Class) *SessionInfo {
	sess := s.sessions[id]
	if sess == nil {
		sess = &SessionInfo{ID: id, Created: time.Now()}
		s.sessions[id] = sess
	}
	sess.Queries++
	sess.LastClass = class
	sess.LastSeen = time.Now()
	return sess
}

// pumpLocked admits queued tickets while any class has both queued work
// and a free slot, picking classes by smooth weighted round-robin: each
// eligible class's current weight grows by its configured weight, the
// maximum wins and pays back the eligible total. Interleaving follows
// the weight ratios without starving any class that has capacity.
func (s *Server) pumpLocked() {
	if s.draining {
		return
	}
	for {
		total := 0
		best := workload.Class("")
		bestW := math.MinInt
		for _, c := range classOrder {
			if len(s.queues[c]) == 0 || s.active[c] >= s.limit(c) {
				continue
			}
			total += s.weight(c)
			s.cw[c] += s.weight(c)
			if s.cw[c] > bestW {
				bestW, best = s.cw[c], c
			}
		}
		if best == "" {
			return
		}
		s.cw[best] -= total
		tk := s.queues[best][0]
		s.queues[best] = s.queues[best][1:]
		s.active[best]++
		s.noteDequeueLocked(best)
		close(tk.ready)
	}
}

// removeQueuedLocked pulls tk out of its class queue; false means the
// ticket was already resolved (admitted or drained).
func (s *Server) removeQueuedLocked(tk *ticket) bool {
	q := s.queues[tk.class]
	for i, cand := range q {
		if cand == tk {
			s.queues[tk.class] = append(q[:i:i], q[i+1:]...)
			return true
		}
	}
	return false
}

// Do submits one query and blocks until it resolves. Refusals return
// *RefusedError; deadline and cancellation surface the context error;
// everything else executed — the response carries the result, or the
// engine/parse error is returned as-is (still an admitted submission).
func (s *Server) Do(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, errors.New("serve: empty SQL")
	}
	class := req.Class
	if class == "" {
		class = Classify(req.SQL)
	}
	if !validClass(class) {
		return nil, fmt.Errorf("serve: unknown class %q", class)
	}

	submitStart := s.clock()
	s.mu.Lock()
	s.submitted++
	reqID := req.RequestID
	if reqID == "" {
		reqID = fmt.Sprintf("blu-%06d", s.submitted)
	}
	s.touchSessionLocked(req.Session, class)
	if s.draining {
		s.shed++
		s.classCounts[class].shed++
		retry := s.retryAfterLocked()
		s.pushRecentLocked(metrics.RecentRequest{
			RequestID: reqID, Session: req.Session, Class: string(class), Outcome: "shed",
		})
		s.mu.Unlock()
		s.logRefused(reqID, req, class, qlog.OutcomeShed, "draining", 0, s.clock().Sub(submitStart))
		return nil, &RefusedError{Reason: "draining", Draining: true, RetryAfter: retry}
	}
	if s.queueDepthLocked() >= s.effectiveCapLocked() {
		s.shed++
		s.classCounts[class].shed++
		reason := "queue_full"
		if s.healthLocked() == metrics.HealthUnhealthy {
			reason = "queue_full_unhealthy"
		}
		retry := s.retryAfterLocked()
		s.pushRecentLocked(metrics.RecentRequest{
			RequestID: reqID, Session: req.Session, Class: string(class), Outcome: "shed",
		})
		s.mu.Unlock()
		s.logRefused(reqID, req, class, qlog.OutcomeShed, reason, 0, s.clock().Sub(submitStart))
		return nil, &RefusedError{Reason: reason, RetryAfter: retry}
	}
	tk := &ticket{class: class, ready: make(chan struct{}), enqueued: s.clock()}
	s.queues[class] = append(s.queues[class], tk)
	s.seq++
	seq := s.seq
	s.pumpLocked()
	s.mu.Unlock()

	select {
	case <-tk.ready:
	case <-ctx.Done():
		s.mu.Lock()
		if s.removeQueuedLocked(tk) {
			s.timedOut++
			s.classCounts[class].timedOut++
			wait := s.clock().Sub(tk.enqueued)
			s.pushRecentLocked(metrics.RecentRequest{
				RequestID: reqID, Session: req.Session, Class: string(class),
				Outcome: "timed_out", WaitMs: qlog.Ms(wait), TotalMs: qlog.Ms(s.clock().Sub(submitStart)),
			})
			s.mu.Unlock()
			s.logRefused(reqID, req, class, qlog.OutcomeTimedOut, "abandoned_queued",
				wait, s.clock().Sub(submitStart))
			return nil, fmt.Errorf("serve: abandoned while queued: %w", ctx.Err())
		}
		// Resolved concurrently with the cancellation; follow the
		// resolution — an admitted ticket still owes its slot release.
		s.mu.Unlock()
		<-tk.ready
	}
	if tk.drainedOut {
		wait := s.clock().Sub(tk.enqueued)
		s.mu.Lock()
		retry := s.retryAfterLocked()
		s.pushRecentLocked(metrics.RecentRequest{
			RequestID: reqID, Session: req.Session, Class: string(class),
			Outcome: "drained", WaitMs: qlog.Ms(wait), TotalMs: qlog.Ms(s.clock().Sub(submitStart)),
		})
		s.mu.Unlock()
		s.logRefused(reqID, req, class, qlog.OutcomeDrained, "drained",
			wait, s.clock().Sub(submitStart))
		return nil, &RefusedError{Reason: "drained", Draining: true, RetryAfter: retry}
	}
	return s.run(ctx, req, tk, class, seq, reqID, submitStart)
}

// run executes an admitted ticket, settles its accounting, and emits
// the request's observability record: wall-clock phases to the query
// log, the span subtree to the live trace ring, and the end-to-end
// wall latency to the per-class SLO histogram.
func (s *Server) run(ctx context.Context, req Request, tk *ticket, class workload.Class, seq uint64, reqID string, submitStart time.Time) (*Response, error) {
	wait := s.clock().Sub(tk.enqueued)
	deadline := req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	// The request ID rides the context into the engine: it lands on the
	// query's root trace span and the EXPLAIN ANALYZE report, so the
	// log, the trace ring, and the audit all join on one key. The prof
	// labels ride the same context so every engine phase bills its CPU
	// samples and allocation deltas to this class and request.
	ctx = qlog.WithRequestID(ctx, reqID)
	ctx = prof.WithRequest(ctx, s.cfg.Prof, string(class), reqID)
	s.cfg.Prof.AddWall(string(class), "queue_wait", wait)
	var execCtx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		execCtx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		execCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	s.mu.Lock()
	s.cancels[tk] = cancel
	s.waitHists[class].Observe(vtime.Duration(wait.Seconds()))
	if s.forced {
		cancel() // drain deadline already passed; don't start real work
	}
	s.mu.Unlock()

	// Breaker-aware placement backoff: while every device is
	// quarantined, give the fleet a bounded chance to re-close a breaker
	// (virtual time advances as other queries execute) before running —
	// the CPU fallback guarantees the query completes either way.
	retries := 0
	admission, _ := prof.Phase(execCtx, "admission", func(context.Context) error {
		if sch := s.exec.Scheduler(); sch != nil {
			backoff := s.cfg.PlaceBackoff
			for retries < s.cfg.PlaceRetries &&
				metrics.HealthStatus(sch) == metrics.HealthUnhealthy && execCtx.Err() == nil {
				time.Sleep(backoff)
				backoff *= 2
				retries++
			}
		}
		return nil
	})

	name := req.Name
	if name == "" {
		name = fmt.Sprintf("serve-%d", seq)
	}
	attrs := []trace.Attr{
		trace.Str("serve.class", string(class)),
		trace.Str("serve.session", req.Session),
		trace.Int("serve.wait_us", wait.Microseconds()),
		trace.Int("serve.place_retries", int64(retries)),
	}

	execStart := time.Now()
	var res *engine.Result
	var rep *explain.Report
	var err error
	if req.Explain {
		s.explainMu.Lock()
		rep, res, err = s.exec.ExplainAnalyzeNamedCtx(execCtx, name, req.SQL)
		s.explainMu.Unlock()
	} else {
		res, err = s.exec.QueryNamedCtxAttrs(execCtx, name, req.SQL, attrs...)
	}
	execWall := time.Since(execStart)

	s.mu.Lock()
	delete(s.cancels, tk)
	s.active[class]--
	s.placeRetries += uint64(retries)
	canceled := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if canceled {
		s.timedOut++
		s.classCounts[class].timedOut++
	} else {
		s.admitted++
		s.classCounts[class].admitted++
		if err != nil {
			s.execErrors++
		}
	}
	s.pumpLocked()
	s.cond.Broadcast()
	s.mu.Unlock()

	resp := &Response{
		Session:      req.Session,
		Query:        name,
		RequestID:    reqID,
		Class:        class,
		Result:       res,
		Report:       rep,
		Wait:         wait,
		ExecWall:     execWall,
		PlaceRetries: retries,
	}

	// Serialize inside the request's accounting window so the query
	// log's serialize phase covers the real encoding cost. The slot was
	// already released above — encoding is client work, not engine work.
	var serialize time.Duration
	resultBytes := 0
	var serErr error
	if err == nil && req.Serialize != nil {
		serialize, serErr = prof.Phase(ctx, "serialize", func(context.Context) error {
			var sErr error
			resultBytes, sErr = req.Serialize(resp)
			return sErr
		})
	}

	// Phase attribution: when the engine measured its own phases the log
	// takes those exact durations (the prof accountant saw the same
	// values, so the two ledgers reconcile to the microsecond); on the
	// error path exec_ms falls back to the whole engine call.
	var ph qlog.Phases
	ph.QueueWaitMs = qlog.Ms(wait)
	ph.AdmissionMs = qlog.Ms(admission)
	if res != nil {
		ph.ParseMs = qlog.Ms(res.Wall.Parse)
		ph.PlanMs = qlog.Ms(res.Wall.Plan)
		ph.ExecMs = qlog.Ms(res.Wall.Exec)
		ph.ExecGPUMs = qlog.Ms(res.Wall.ExecGPU)
		ph.ExecHostMs = qlog.Ms(res.Wall.ExecHost)
		ph.ExecGatherMs = qlog.Ms(res.Wall.ExecGather)
	} else {
		ph.ExecMs = qlog.Ms(execWall)
	}
	ph.SerializeMs = qlog.Ms(serialize)
	total := s.clock().Sub(submitStart)
	slow := s.cfg.SlowQuery > 0 && total >= s.cfg.SlowQuery
	resp.Phases = ph
	resp.Slow = slow

	outcome := qlog.OutcomeOK
	errMsg := ""
	switch {
	case canceled:
		outcome = qlog.OutcomeTimedOut
		errMsg = err.Error()
	case err != nil:
		outcome = qlog.OutcomeError
		errMsg = err.Error()
	case serErr != nil:
		outcome = qlog.OutcomeError
		errMsg = serErr.Error()
	}

	spans := s.captureTrace(reqID, name, req.Session, class, res, total, slow)

	s.mu.Lock()
	s.wallHists[class].Observe(vtime.Duration(total.Seconds()))
	if slow {
		s.slowQueries++
	}
	if serErr != nil && err == nil {
		s.execErrors++
	}
	s.pushRecentLocked(metrics.RecentRequest{
		RequestID: reqID, Query: name, Session: req.Session, Class: string(class),
		Outcome: outcome, WaitMs: qlog.Ms(wait), TotalMs: qlog.Ms(total), Slow: slow,
	})
	s.mu.Unlock()

	if s.cfg.Log != nil {
		devices, transferBytes, fallback := spanDigest(spans)
		rec := qlog.Record{
			Event:         qlog.EventQuery,
			RequestID:     reqID,
			Session:       req.Session,
			Query:         name,
			Class:         string(class),
			SQL:           req.SQL,
			Outcome:       outcome,
			Error:         errMsg,
			ResultBytes:   resultBytes,
			Devices:       devices,
			PlaceRetries:  retries,
			FallbackCause: fallback,
			TransferBytes: transferBytes,
			Phases:        ph,
			TotalMs:       qlog.Ms(total),
		}
		if res != nil {
			if res.Table != nil {
				rec.Rows = res.Table.Rows()
			}
			rec.GPUUsed = res.GPUUsed
			rec.ModeledMs = res.Modeled.Milliseconds()
		}
		if slow {
			rec.Slow = true
			rec.SlowThresholdMs = qlog.Ms(s.cfg.SlowQuery)
		}
		s.cfg.Log.Log(rec)
		if slow {
			rec.Event = qlog.EventSlow
			s.cfg.Log.Log(rec)
		}
	}

	if err != nil {
		if canceled {
			return nil, fmt.Errorf("serve: query %s exceeded its deadline: %w", name, err)
		}
		return nil, err
	}
	if serErr != nil {
		return nil, fmt.Errorf("serve: serialize %s: %w", name, serErr)
	}
	return resp, nil
}

// Drain stops admission, flushes the queue (those submissions resolve
// as drained), and waits for in-flight queries to finish. In-flight
// work still running at the deadline is force-canceled (resolving as
// timed_out; the engine unwinds between operators and releases its
// reservations). Drain returns once nothing is executing. Idempotent —
// later calls just wait.
func (s *Server) Drain(deadline time.Duration) DrainReport {
	if deadline <= 0 {
		deadline = s.cfg.DrainDeadline
	}
	start := time.Now()
	var rep DrainReport

	s.mu.Lock()
	s.draining = true
	for _, c := range classOrder {
		for _, tk := range s.queues[c] {
			tk.drainedOut = true
			s.drained++
			s.classCounts[c].drained++
			close(tk.ready)
			rep.Flushed++
		}
		s.queues[c] = nil
	}
	forced := 0 // guarded by s.mu, in the closure and the read below
	timer := time.AfterFunc(deadline, func() {
		s.mu.Lock()
		s.forced = true
		for _, cancel := range s.cancels {
			forced++
			cancel()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	for s.activeTotalLocked() > 0 {
		s.cond.Wait()
	}
	rep.ForcedCancels = forced
	s.mu.Unlock()
	timer.Stop()

	rep.Waited = time.Since(start)
	return rep
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Sessions lists the live sessions, deterministically ordered by ID.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, *sess)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// AdmissionSnapshot captures the controller state for /metrics and
// /debug/serve. The outcome counters partition submissions exactly;
// unresolved (queued or executing) work is the live residue.
func (s *Server) AdmissionSnapshot() *metrics.AdmissionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &metrics.AdmissionSnapshot{
		QueueDepth:    s.queueDepthLocked(),
		QueueCapacity: s.cfg.QueueCapacity,
		EffectiveCap:  s.effectiveCapLocked(),
		Draining:      s.draining,
		Sessions:      len(s.sessions),
		Inflight:      s.activeTotalLocked(),
		Submitted:     s.submitted,
		Admitted:      s.admitted,
		Shed:          s.shed,
		TimedOut:      s.timedOut,
		Drained:       s.drained,
		ExecErrors:    s.execErrors,
		PlaceRetries:  s.placeRetries,
		SlowQueries:   s.slowQueries,
	}
	for _, c := range classOrder {
		cc := s.classCounts[c]
		h := s.waitHists[c]
		wh := s.wallHists[c]
		slo := s.cfg.SLOs[c]
		snap.Classes = append(snap.Classes, metrics.ClassAdmissionSnapshot{
			Class:        string(c),
			Active:       s.active[c],
			Limit:        s.limit(c),
			Queued:       len(s.queues[c]),
			Admitted:     cc.admitted,
			Shed:         cc.shed,
			TimedOut:     cc.timedOut,
			Drained:      cc.drained,
			WaitBuckets:  h.Buckets(),
			WaitSum:      h.Total().Seconds(),
			WaitCount:    h.Count(),
			WallBuckets:  wh.Buckets(),
			WallSum:      wh.Total().Seconds(),
			WallCount:    wh.Count(),
			SLOThreshold: slo.Threshold.Seconds(),
			SLOObjective: slo.Objective,
		})
	}
	// Newest first, matching the trace ring's ordering.
	for i := len(s.recent) - 1; i >= 0; i-- {
		snap.Recent = append(snap.Recent, s.recent[i])
	}
	return snap
}
