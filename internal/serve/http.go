package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

// queryRequest is the POST /query body. The session can also ride the
// X-Session header; the body value wins when both are set.
type queryRequest struct {
	SQL        string `json:"sql"`
	Session    string `json:"session,omitempty"`
	Class      string `json:"class,omitempty"` // simple | intermediate | complex; empty classifies
	Name       string `json:"name,omitempty"`
	Explain    bool   `json:"explain,omitempty"`
	DeadlineMs int    `json:"deadline_ms,omitempty"`
}

// queryResponse is the POST /query success body.
type queryResponse struct {
	Session      string          `json:"session"`
	Query        string          `json:"query"`
	RequestID    string          `json:"request_id"`
	Class        string          `json:"class"`
	Columns      []string        `json:"columns"`
	Rows         [][]any         `json:"rows"`
	RowCount     int             `json:"row_count"`
	ModeledMs    float64         `json:"modeled_ms"`
	WallMs       float64         `json:"wall_ms"`
	WaitMs       float64         `json:"wait_ms"`
	GPUUsed      bool            `json:"gpu_used"`
	PlaceRetries int             `json:"place_retries"`
	Explain      json.RawMessage `json:"explain,omitempty"`
}

// errorBody is every non-200 response.
type errorBody struct {
	Error      string `json:"error"`
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// NewMux builds the serving surface:
//
//	POST /query        run SQL under admission control (JSON in/out)
//	GET  /sessions     live session list
//	POST /drain        stop admitting, finish in-flight (?deadline_ms=N)
//	GET  /debug/serve  the raw admission snapshot (counter reconciliation)
//
// Unmatched paths fall through to admin (the metrics.AdminMux surface)
// when it is non-nil, so one listener serves both layers.
func NewMux(s *Server, admin http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		handleQuery(s, w, req)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, s.Sessions())
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
			return
		}
		deadline := time.Duration(0)
		if ms := req.URL.Query().Get("deadline_ms"); ms != "" {
			n, err := strconv.Atoi(ms)
			if err != nil || n < 0 {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad deadline_ms"})
				return
			}
			deadline = time.Duration(n) * time.Millisecond
		}
		writeJSON(w, http.StatusOK, s.Drain(deadline))
	})
	mux.HandleFunc("/debug/serve", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, s.AdmissionSnapshot())
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, req *http.Request) {
		handleTrace(s, w, req)
	})
	if admin != nil {
		mux.Handle("/", admin)
	}
	return mux
}

// handleTrace serves the live trace ring as Chrome trace-event JSON:
//
//	GET /debug/trace/slow           top-K slowest retained traces
//	GET /debug/trace/<request-id>   one query's retained trace
//
// Evicted or unknown request IDs return 404 — the ring is a bounded
// sample, not an archive.
func handleTrace(s *Server, w http.ResponseWriter, req *http.Request) {
	ring := s.TraceRing()
	if ring == nil {
		http.Error(w, "no trace ring attached", http.StatusNotFound)
		return
	}
	key := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
	var entries []trace.RingEntry
	if key == "slow" {
		entries = ring.Slow()
		if len(entries) == 0 {
			http.Error(w, "no slow traces retained", http.StatusNotFound)
			return
		}
	} else {
		e, ok := ring.Get(key)
		if !ok {
			http.Error(w, fmt.Sprintf("no retained trace for request %q (evicted or never traced)", key), http.StatusNotFound)
			return
		}
		entries = []trace.RingEntry{e}
	}
	w.Header().Set("Content-Type", "application/json")
	trace.ExportChromeEntries(w, entries)
}

func handleQuery(s *Server, w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	var qr queryRequest
	if err := json.Unmarshal(body, &qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if qr.Session == "" {
		qr.Session = req.Header.Get("X-Session")
	}
	// The client's X-Request-ID is honored as the correlation key; an
	// absent header gets a server-generated ID. Either way the ID is
	// echoed back on the response (success and refusal alike).
	reqID := req.Header.Get("X-Request-ID")

	// Serializing inside the hook lets the server time real JSON
	// encoding as the query's serialize phase; the handler then just
	// copies the buffer out.
	var buf bytes.Buffer
	serialize := func(resp *Response) (int, error) {
		out := queryResponse{
			Session:      resp.Session,
			Query:        resp.Query,
			RequestID:    resp.RequestID,
			Class:        string(resp.Class),
			Columns:      resp.Result.Columns,
			Rows:         TableRows(resp.Result.Table.Columns()),
			RowCount:     resp.Result.Table.Rows(),
			ModeledMs:    resp.Result.Modeled.Milliseconds(),
			WallMs:       float64(resp.ExecWall) / float64(time.Millisecond),
			WaitMs:       float64(resp.Wait) / float64(time.Millisecond),
			GPUUsed:      resp.Result.GPUUsed,
			PlaceRetries: resp.PlaceRetries,
		}
		if resp.Report != nil {
			if data, err := resp.Report.JSON(); err == nil {
				out.Explain = data
			}
		}
		if err := json.NewEncoder(&buf).Encode(out); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	}

	resp, err := s.Do(req.Context(), Request{
		Session:   qr.Session,
		SQL:       qr.SQL,
		Class:     workload.Class(qr.Class),
		Name:      qr.Name,
		Explain:   qr.Explain,
		Deadline:  time.Duration(qr.DeadlineMs) * time.Millisecond,
		RequestID: reqID,
		Serialize: serialize,
	})
	if err != nil {
		if reqID != "" {
			w.Header().Set("X-Request-ID", reqID)
		}
		writeQueryError(s, w, err)
		return
	}
	w.Header().Set("X-Request-ID", resp.RequestID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// writeQueryError maps serving errors onto status codes: shed → 429
// with Retry-After, drain refusals → 503 with Retry-After, deadline →
// 504, everything else (parse/plan/execution) → 400.
func writeQueryError(s *Server, w http.ResponseWriter, err error) {
	var refused *RefusedError
	switch {
	case errors.As(err, &refused):
		// RetryAfter is derived at shed time from the queue depth and
		// the recent dequeue rate (see retryAfterHint); round up so the
		// header never promises an earlier retry than the hint.
		retry := int((refused.RetryAfter + time.Second - 1) / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		code := http.StatusTooManyRequests
		if refused.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorBody{Error: err.Error(), Reason: refused.Reason, RetryAfter: retry})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Reason: "deadline"})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

// TableRows materializes result columns row-major for JSON: NULL → null,
// integers and floats as numbers, strings as strings. Exported so other
// serialize hooks (the sustained bench) encode the same client payload
// the HTTP handler does.
func TableRows(cols []columnar.Column) [][]any {
	if len(cols) == 0 {
		return [][]any{}
	}
	n := cols[0].Len()
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(cols))
		for j, c := range cols {
			v := c.Value(i)
			switch {
			case v.Null:
				row[j] = nil
			case v.Type == columnar.Int64:
				row[j] = v.I
			case v.Type == columnar.Float64:
				row[j] = v.F
			default:
				row[j] = v.S
			}
		}
		rows[i] = row
	}
	return rows
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}
