package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blugpu/internal/qlog"
	"blugpu/internal/trace"
	"blugpu/internal/workload"
)

func TestRetryAfterHint(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	stamps := func(n int, spacing time.Duration) []time.Time {
		out := make([]time.Time, n)
		for i := range out {
			out[i] = base.Add(time.Duration(i) * spacing)
		}
		return out
	}
	for _, tc := range []struct {
		name     string
		depth    int
		stamps   []time.Time
		now      time.Time
		fallback time.Duration
		want     time.Duration
	}{
		// No rate signal: the configured fallback applies, clamped.
		{"no-stamps", 10, nil, base, 3 * time.Second, 3 * time.Second},
		{"one-stamp", 10, stamps(1, time.Second), base.Add(time.Second), 2 * time.Second, 2 * time.Second},
		{"fallback-clamped-up", 5, nil, base, time.Millisecond, retryAfterMin},
		{"fallback-clamped-down", 5, nil, base, time.Hour, retryAfterMax},
		// 10 dequeues over 9s ending now → rate 10/9 ≈ 1.11/s; depth 10
		// needs (10+1)/1.11 ≈ 9.9s.
		{"derived", 10, stamps(10, time.Second), base.Add(9 * time.Second), time.Second, time.Duration(9.9 * float64(time.Second))},
		// Fast dequeue rate: 32 stamps in 31ms → ~1000/s; depth 4 → 5ms,
		// clamped up to the 1s header floor.
		{"derived-clamped-up", 4, stamps(32, time.Millisecond), base.Add(31 * time.Millisecond), time.Second, retryAfterMin},
		// Glacial rate: 2 stamps over 100s → 0.02/s; depth 50 → 2550s,
		// clamped down to a minute.
		{"derived-clamped-down", 50, stamps(2, 100*time.Second), base.Add(100 * time.Second), time.Second, retryAfterMax},
		// Zero/negative window (clock skew): fallback.
		{"zero-window", 3, stamps(5, 0), base, 2 * time.Second, 2 * time.Second},
	} {
		got := retryAfterHint(tc.depth, tc.stamps, tc.now, tc.fallback)
		if tc.name == "derived" {
			// Floating-point derivation: allow 1ms.
			if d := got - tc.want; d < -time.Millisecond || d > time.Millisecond {
				t.Fatalf("%s: hint = %v, want ≈%v", tc.name, got, tc.want)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("%s: hint = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestShedRetryAfterDerivedFromDequeueRate(t *testing.T) {
	// A stepping clock makes the dequeue stamps spread deterministically:
	// every clock read advances 100ms. The server reads the clock from
	// concurrent goroutines, so the closure locks.
	var clockMu sync.Mutex
	now := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(100 * time.Millisecond)
		return now
	}
	exec := &stubExec{release: make(chan struct{})}
	s, err := New(exec, Config{
		QueueCapacity: 2,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
		Clock:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One executing (admitted → one dequeue stamp), two queued → full.
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple})
			done <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap := s.AdmissionSnapshot()
			if snap.Inflight+snap.QueueDepth == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	_, err = s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple})
	refused, ok := err.(*RefusedError)
	if !ok {
		t.Fatalf("full queue returned %v, want refusal", err)
	}
	// Only one dequeue stamp so far → no rate signal → fallback (1s).
	if refused.RetryAfter != time.Second {
		t.Fatalf("cold shed RetryAfter = %v, want the 1s fallback", refused.RetryAfter)
	}
	close(exec.release)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Refill and shed again: now 3 dequeue stamps exist, each clock read
	// 100ms apart, so the hint derives from a real rate and lands inside
	// the clamp bounds rather than on the fallback constant.
	exec.mu.Lock()
	exec.release = make(chan struct{})
	exec.mu.Unlock()
	for i := 0; i < 3; i++ {
		go func() {
			_, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple})
			done <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap := s.AdmissionSnapshot()
			if snap.Inflight+snap.QueueDepth == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	_, err = s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple})
	refused, ok = err.(*RefusedError)
	if !ok {
		t.Fatalf("full queue returned %v, want refusal", err)
	}
	if refused.RetryAfter < retryAfterMin || refused.RetryAfter > retryAfterMax {
		t.Fatalf("derived RetryAfter %v outside [%v, %v]", refused.RetryAfter, retryAfterMin, retryAfterMax)
	}
	close(exec.release)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	reconcile(t, s)
}

func TestSpanDigest(t *testing.T) {
	spans := []trace.Span{
		{Cat: "gpu", Attrs: []trace.Attr{trace.Int("device", 1)}},
		{Cat: "transfer", Attrs: []trace.Attr{trace.Int("device", 0), trace.Int("bytes", 4096)}},
		{Cat: "transfer", Attrs: []trace.Attr{trace.Int("device", 1), trace.Int("bytes", 512)}},
		{Cat: "op", Attrs: []trace.Attr{trace.Str("fallback", "injected kernel fault")}},
		{Cat: "op", Attrs: []trace.Attr{trace.Str("fallback", "second cause ignored")}},
		// bytes outside a transfer span must not count.
		{Cat: "kernel", Attrs: []trace.Attr{trace.Int("bytes", 999999)}},
	}
	devices, transferBytes, fallback := spanDigest(spans)
	if fmt.Sprint(devices) != "[0 1]" {
		t.Fatalf("devices = %v, want [0 1]", devices)
	}
	if transferBytes != 4608 {
		t.Fatalf("transferBytes = %d, want 4608", transferBytes)
	}
	if fallback != "injected kernel fault" {
		t.Fatalf("fallback = %q", fallback)
	}
}

// phasesCloseToTotal asserts the named phases account for the total
// wall time within 5% (with a small absolute floor for
// microsecond-scale queries where scheduler jitter dominates).
func phasesCloseToTotal(t *testing.T, rec qlog.Record) {
	t.Helper()
	sum := rec.Phases.SumMs()
	diff := math.Abs(rec.TotalMs - sum)
	tol := math.Max(0.05*rec.TotalMs, 0.25)
	if diff > tol {
		t.Fatalf("phases sum %.3fms vs total %.3fms (diff %.3f > tol %.3f): %+v",
			sum, rec.TotalMs, diff, tol, rec.Phases)
	}
}

func decodeLog(t *testing.T, buf *bytes.Buffer) []qlog.Record {
	t.Helper()
	recs, err := qlog.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("query log invalid: %v\n%s", err, buf.String())
	}
	return recs
}

// TestRequestIDJoin is the end-to-end join proof over HTTP: one POST
// /query with X-Request-ID must land the same ID in (1) the query-log
// record, with phases summing to the total, (2) the response body and
// header, (3) the EXPLAIN ANALYZE report, and (4) the live trace ring
// served at /debug/trace/{id}. The 1µs slow threshold forces slow
// retention so the slow paths are exercised on the same request.
func TestRequestIDJoin(t *testing.T) {
	eng := newServeTestEngine(t)
	eng.SetTracer(trace.New())
	var logBuf bytes.Buffer
	s, err := New(eng, Config{Log: qlog.New(&logBuf), SlowQuery: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	mux := NewMux(s, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const reqID = "join-req-0001"
	body := `{"sql":"SELECT k, SUM(v) AS s FROM t GROUP BY k","explain":true,"session":"analyst"}`
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(body))
	req.Header.Set("X-Request-ID", reqID)
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	if got := httpResp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("response header X-Request-ID = %q, want %q", got, reqID)
	}
	var out struct {
		RequestID string          `json:"request_id"`
		Explain   json.RawMessage `json:"explain"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != reqID {
		t.Fatalf("body request_id = %q", out.RequestID)
	}
	// Join 1: the EXPLAIN ANALYZE report carries the ID.
	var rep struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(out.Explain, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.RequestID != reqID {
		t.Fatalf("explain report request_id = %q", rep.RequestID)
	}

	// Join 2: the query log has the record, with a coherent phase sum
	// and a slow_query companion (threshold is 1ns).
	recs := decodeLog(t, &logBuf)
	var queryRec, slowRec *qlog.Record
	for i := range recs {
		if recs[i].RequestID != reqID {
			continue
		}
		switch recs[i].Event {
		case qlog.EventQuery:
			queryRec = &recs[i]
		case qlog.EventSlow:
			slowRec = &recs[i]
		}
	}
	if queryRec == nil {
		t.Fatalf("no query record for %s in log:\n%s", reqID, logBuf.String())
	}
	if queryRec.Outcome != qlog.OutcomeOK || queryRec.Rows == 0 || queryRec.ResultBytes == 0 {
		t.Fatalf("record %+v", queryRec)
	}
	if queryRec.Phases.SerializeMs <= 0 {
		t.Fatal("serialize phase must be measured (the HTTP hook encodes real JSON)")
	}
	phasesCloseToTotal(t, *queryRec)
	if slowRec == nil || !slowRec.Slow || slowRec.SlowThresholdMs <= 0 {
		t.Fatalf("slow_query companion missing or unmarked: %+v", slowRec)
	}

	// Join 3: the live trace ring serves the same ID as Chrome JSON.
	traceResp, err := http.Get(srv.URL + "/debug/trace/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	traceBody := new(bytes.Buffer)
	traceBody.ReadFrom(traceResp.Body)
	traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/%s → %d: %s", reqID, traceResp.StatusCode, traceBody.String())
	}
	if err := trace.ValidateChrome(traceBody.Bytes()); err != nil {
		t.Fatalf("trace export invalid: %v", err)
	}
	if !bytes.Contains(traceBody.Bytes(), []byte(`"request_id":"`+reqID+`"`)) {
		t.Fatal("trace export missing the request ID")
	}

	// Slow retention serves the same trace at /debug/trace/slow.
	slowResp, err := http.Get(srv.URL + "/debug/trace/slow")
	if err != nil {
		t.Fatal(err)
	}
	slowBody := new(bytes.Buffer)
	slowBody.ReadFrom(slowResp.Body)
	slowResp.Body.Close()
	if slowResp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/slow → %d", slowResp.StatusCode)
	}
	if !bytes.Contains(slowBody.Bytes(), []byte(reqID)) {
		t.Fatal("slow trace export missing the request ID")
	}

	// Unknown IDs 404 — the ring is a sample, not an archive.
	missResp, err := http.Get(srv.URL + "/debug/trace/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace → %d, want 404", missResp.StatusCode)
	}

	// Join 4: /debug/serve lists the request with its queue wait.
	snap := s.AdmissionSnapshot()
	if len(snap.Recent) == 0 || snap.Recent[0].RequestID != reqID {
		t.Fatalf("recent requests missing %s: %+v", reqID, snap.Recent)
	}
	if snap.Recent[0].WaitMs < 0 || snap.Recent[0].TotalMs <= 0 {
		t.Fatalf("recent entry lacks durations: %+v", snap.Recent[0])
	}
	if snap.SlowQueries != 1 {
		t.Fatalf("slow_queries = %d, want 1", snap.SlowQueries)
	}
	reconcile(t, s)
}

func TestGeneratedRequestID(t *testing.T) {
	eng := newServeTestEngine(t)
	s, _ := New(eng, Config{})
	mux := NewMux(s, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT v FROM t LIMIT 3"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(got, "blu-") {
		t.Fatalf("generated ID = %q, want blu-<n>", got)
	}
	var out struct {
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != got {
		t.Fatalf("body ID %q != header ID %q", out.RequestID, got)
	}
}

// TestQlogOutcomeLedger drives all refusal outcomes through a stub and
// checks the query log mirrors the double-entry ledger: one query
// record per submission, each with the right outcome.
func TestQlogOutcomeLedger(t *testing.T) {
	var logBuf bytes.Buffer
	exec := &stubExec{release: make(chan struct{})}
	s, err := New(exec, Config{
		QueueCapacity: 1,
		ClassLimits:   map[workload.Class]int{workload.Simple: 1, workload.Intermediate: 1, workload.Complex: 1},
		Log:           qlog.New(&logBuf),
		SlowQuery:     -1, // no slow_query noise in the ledger count
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 executing + 1 queued; the queued one will be drained.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple})
			results <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap := s.AdmissionSnapshot()
			if snap.Inflight+snap.QueueDepth == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Shed: queue full.
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple}); err == nil {
		t.Fatal("full queue must refuse")
	}
	// Timeout: pre-expired context abandoned while queued... must go
	// through the queue, but the queue is full, so use an expired
	// deadline on a fresh server path instead: cancel mid-execution.
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Drain(time.Second)
	}()
	for i := 0; i < 2; i++ {
		<-results
	}
	// Post-drain shed.
	if _, err := s.Do(context.Background(), Request{SQL: "SELECT x FROM t", Class: workload.Simple}); err == nil {
		t.Fatal("draining server must refuse")
	}

	recs := decodeLog(t, &logBuf)
	counts := map[string]int{}
	ids := map[string]bool{}
	for _, r := range recs {
		if r.Event != qlog.EventQuery {
			continue
		}
		counts[r.Outcome]++
		if ids[r.RequestID] {
			t.Fatalf("duplicate request ID %s", r.RequestID)
		}
		ids[r.RequestID] = true
	}
	snap := s.AdmissionSnapshot()
	if uint64(len(ids)) != snap.Submitted {
		t.Fatalf("%d query records for %d submissions:\n%s", len(ids), snap.Submitted, logBuf.String())
	}
	if counts[qlog.OutcomeShed] != int(snap.Shed) {
		t.Fatalf("shed records %d != counter %d", counts[qlog.OutcomeShed], snap.Shed)
	}
	if counts[qlog.OutcomeDrained] != int(snap.Drained) {
		t.Fatalf("drained records %d != counter %d", counts[qlog.OutcomeDrained], snap.Drained)
	}
	if counts[qlog.OutcomeOK] != int(snap.Admitted) {
		t.Fatalf("ok records %d != admitted %d", counts[qlog.OutcomeOK], snap.Admitted)
	}
	reconcile(t, s)
}

func TestDeadlineTimeoutLogged(t *testing.T) {
	var logBuf bytes.Buffer
	exec := &stubExec{release: make(chan struct{})} // never released
	s, _ := New(exec, Config{Log: qlog.New(&logBuf), SlowQuery: -1})
	_, err := s.Do(context.Background(), Request{
		SQL: "SELECT x FROM t", Class: workload.Simple, Deadline: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("deadline must fire")
	}
	recs := decodeLog(t, &logBuf)
	if len(recs) != 1 || recs[0].Outcome != qlog.OutcomeTimedOut || recs[0].Error == "" {
		t.Fatalf("records %+v", recs)
	}
	reconcile(t, s)
}
