package serve

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"blugpu/internal/prof"
	"blugpu/internal/qlog"
	"blugpu/internal/workload"
)

// TestProfQlogReconciliation is the double-entry proof for the resource
// accountant: for the same set of request IDs, the blu_prof_* wall
// ledger (per class, per phase) must equal the query log's phase sums.
// Both ledgers are fed the same measured durations, so the only slack
// allowed is the query log's microsecond rounding — 0.5µs per record
// per phase.
func TestProfQlogReconciliation(t *testing.T) {
	eng := newServeTestEngine(t)
	var logBuf bytes.Buffer
	acct := prof.NewAccountant()
	s, err := New(eng, Config{
		Log:       qlog.New(&logBuf),
		Prof:      acct,
		SlowQuery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		sql   string
		class workload.Class
	}{
		{"SELECT k, SUM(v) AS s FROM t GROUP BY k", workload.Simple},
		{"SELECT k, SUM(v) AS s FROM t GROUP BY k", workload.Simple},
		{"SELECT k, SUM(f) AS s FROM t GROUP BY k", workload.Intermediate},
		{"SELECT k, COUNT(v) AS c FROM t GROUP BY k", workload.Complex},
	}
	serializer := func(resp *Response) (int, error) {
		return len(resp.Query) + resp.Result.Table.Rows(), nil
	}
	for i, q := range queries {
		_, err := s.Do(context.Background(), Request{
			SQL:       q.sql,
			Class:     q.class,
			RequestID: fmt.Sprintf("prof-rec-%d", i),
			Serialize: serializer,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Ledger A: the query log's per-(class, phase) sums over ok records.
	type cell struct{ class, phase string }
	logMs := map[cell]float64{}
	logCount := map[string]int{}
	for _, r := range decodeLog(t, &logBuf) {
		if r.Event != qlog.EventQuery || r.Outcome != qlog.OutcomeOK {
			continue
		}
		logCount[r.Class]++
		logMs[cell{r.Class, "queue_wait"}] += r.Phases.QueueWaitMs
		logMs[cell{r.Class, "admission"}] += r.Phases.AdmissionMs
		logMs[cell{r.Class, "parse"}] += r.Phases.ParseMs
		logMs[cell{r.Class, "plan"}] += r.Phases.PlanMs
		logMs[cell{r.Class, "exec"}] += r.Phases.ExecMs
		logMs[cell{r.Class, "serialize"}] += r.Phases.SerializeMs
	}
	if logCount["simple"] != 2 || logCount["intermediate"] != 1 || logCount["complex"] != 1 {
		t.Fatalf("unexpected ok-record counts: %v", logCount)
	}

	// Ledger B: the prof accountant. Every (class, phase) cell the log
	// carries must exist with a matching wall sum.
	profMs := map[cell]float64{}
	profCount := map[cell]uint64{}
	for _, st := range acct.Snapshot() {
		profMs[cell{st.Class, st.Phase}] = st.WallSeconds * 1000
		profCount[cell{st.Class, st.Phase}] = st.Count
		if st.CPUSeconds < 0 {
			t.Fatalf("negative CPU account for %s/%s", st.Class, st.Phase)
		}
	}

	phases := []string{"queue_wait", "admission", "parse", "plan", "exec", "serialize"}
	for class, n := range logCount {
		// Stated tolerance: qlog.Ms rounds each record to the
		// microsecond, so each of n records contributes ≤0.5µs = 0.0005ms
		// of rounding slack per phase.
		tol := 0.0005 * float64(n)
		for _, phase := range phases {
			k := cell{class, phase}
			got, ok := profMs[k]
			if !ok {
				t.Fatalf("prof ledger missing cell %s/%s", class, phase)
			}
			if d := math.Abs(got - logMs[k]); d > tol {
				t.Errorf("%s/%s: prof %.6fms vs qlog %.6fms (|Δ|=%.6f > %.6f)",
					class, phase, got, logMs[k], d, tol)
			}
			if phase != "queue_wait" && profCount[k] != uint64(n) {
				t.Errorf("%s/%s: prof count %d, want %d", class, phase, profCount[k], n)
			}
		}
	}
	reconcile(t, s)
}

// TestProfAccountsExplainRequests: an Explain submission bills its
// parse/plan/exec phases to the accountant exactly like a plain query —
// the exec cell covers the audited execution plus the report build.
func TestProfAccountsExplainRequests(t *testing.T) {
	eng := newServeTestEngine(t)
	var logBuf bytes.Buffer
	acct := prof.NewAccountant()
	s, err := New(eng, Config{Log: qlog.New(&logBuf), Prof: acct, SlowQuery: -1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Do(context.Background(), Request{
		SQL:       "SELECT k, SUM(v) AS s FROM t GROUP BY k",
		Class:     workload.Simple,
		Explain:   true,
		RequestID: "prof-explain-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report == nil {
		t.Fatal("explain request must return a report")
	}
	recs := decodeLog(t, &logBuf)
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	ph := recs[0].Phases
	for _, st := range acct.Snapshot() {
		if st.Class != "simple" {
			t.Fatalf("unexpected class %q in accountant", st.Class)
		}
		var want float64
		switch st.Phase {
		case "parse":
			want = ph.ParseMs
		case "plan":
			want = ph.PlanMs
		case "exec":
			want = ph.ExecMs
		case "queue_wait":
			want = ph.QueueWaitMs
		case "admission":
			want = ph.AdmissionMs
		default:
			continue
		}
		if d := math.Abs(st.WallSeconds*1000 - want); d > 0.0005 {
			t.Errorf("explain %s: prof %.6fms vs qlog %.6fms", st.Phase, st.WallSeconds*1000, want)
		}
	}
}
