package workload

import (
	"fmt"

	"blugpu/internal/columnar"
)

// Shared vocabulary for generated attributes.
var (
	dayNames    = []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	monthNames  = []string{"January", "February", "March", "April", "May", "June", "July", "August", "September", "October", "November", "December"}
	states      = []string{"AL", "CA", "CO", "FL", "GA", "IL", "MI", "NY", "OH", "TX", "VA", "WA"}
	categories  = []string{"Books", "Children", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women"}
	brands      = []string{"amalgamalg", "edu packscholar", "exportiunivamalg", "importoamalg", "scholaramalgamalg", "univmaxi", "brandbrand", "corpbrand"}
	classes     = []string{"accent", "classical", "dresses", "estate", "fragrances", "mens watch", "pants", "romance", "self-help", "wallpaper"}
	maritals    = []string{"S", "M", "D", "W", "U"}
	educations  = []string{"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree", "Unknown"}
	genders     = []string{"M", "F"}
	shipTypes   = []string{"EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"}
	reasonsDesc = []string{"Did not like the color", "Did not like the model", "Did not fit", "Gift exchange", "Found a better price", "Damaged", "Wrong size", "Changed mind"}
	buyPot      = []string{"0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"}
)

// --- dimensions ---

func genDateDim(n int) *columnar.Table {
	sk := columnar.NewInt64Builder("d_date_sk")
	year := columnar.NewInt64Builder("d_year")
	moy := columnar.NewInt64Builder("d_moy")
	dom := columnar.NewInt64Builder("d_dom")
	qoy := columnar.NewInt64Builder("d_qoy")
	dow := columnar.NewInt64Builder("d_dow")
	dname := columnar.NewStringBuilder("d_day_name")
	mname := columnar.NewStringBuilder("d_month_name")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		y := 2000 + i/365
		doy := i % 365
		m := doy / 31
		if m > 11 {
			m = 11
		}
		year.Append(int64(y))
		moy.Append(int64(m + 1))
		dom.Append(int64(doy%31 + 1))
		qoy.Append(int64(m/3 + 1))
		dow.Append(int64(i % 7))
		dname.Append(dayNames[i%7])
		mname.Append(monthNames[m])
	}
	return columnar.MustNewTable("date_dim", sk.Build(), year.Build(), moy.Build(),
		dom.Build(), qoy.Build(), dow.Build(), dname.Build(), mname.Build())
}

func genTimeDim(n int) *columnar.Table {
	sk := columnar.NewInt64Builder("t_time_sk")
	hour := columnar.NewInt64Builder("t_hour")
	minute := columnar.NewInt64Builder("t_minute")
	shift := columnar.NewStringBuilder("t_shift")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		h := i / 60
		hour.Append(int64(h))
		minute.Append(int64(i % 60))
		switch {
		case h < 8:
			shift.Append("third")
		case h < 16:
			shift.Append("first")
		default:
			shift.Append("second")
		}
	}
	return columnar.MustNewTable("time_dim", sk.Build(), hour.Build(), minute.Build(), shift.Build())
}

func genItem(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("i_item_sk")
	brand := columnar.NewStringBuilder("i_brand")
	cat := columnar.NewStringBuilder("i_category")
	class := columnar.NewStringBuilder("i_class")
	price := columnar.NewFloat64Builder("i_current_price")
	mfg := columnar.NewInt64Builder("i_manufact_id")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		brand.Append(brands[r.intn(len(brands))])
		cat.Append(categories[r.intn(len(categories))])
		class.Append(classes[r.intn(len(classes))])
		price.Append(float64(r.rangeInt(1, 300)) + 0.99)
		mfg.Append(int64(r.intn(100)))
	}
	return columnar.MustNewTable("item", sk.Build(), brand.Build(), cat.Build(),
		class.Build(), price.Build(), mfg.Build())
}

func genCustomer(sz Sizes, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("c_customer_sk")
	bm := columnar.NewInt64Builder("c_birth_month")
	by := columnar.NewInt64Builder("c_birth_year")
	addr := columnar.NewInt64Builder("c_current_addr_sk")
	cdemo := columnar.NewInt64Builder("c_current_cdemo_sk")
	hdemo := columnar.NewInt64Builder("c_current_hdemo_sk")
	for i := 0; i < sz.Customer; i++ {
		sk.Append(int64(i))
		bm.Append(int64(r.rangeInt(1, 12)))
		by.Append(int64(r.rangeInt(1930, 2005)))
		addr.Append(int64(r.intn(sz.CustomerAddr)))
		cdemo.Append(int64(r.intn(sz.CustomerDemo)))
		hdemo.Append(int64(r.intn(sz.HouseholdDemo)))
	}
	return columnar.MustNewTable("customer", sk.Build(), bm.Build(), by.Build(),
		addr.Build(), cdemo.Build(), hdemo.Build())
}

func genCustomerAddress(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("ca_address_sk")
	state := columnar.NewStringBuilder("ca_state")
	zip := columnar.NewInt64Builder("ca_zip")
	gmt := columnar.NewInt64Builder("ca_gmt_offset")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		state.Append(states[r.intn(len(states))])
		zip.Append(int64(r.rangeInt(10000, 99999)))
		gmt.Append(int64(-r.rangeInt(5, 8)))
	}
	return columnar.MustNewTable("customer_address", sk.Build(), state.Build(), zip.Build(), gmt.Build())
}

func genCustomerDemo(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("cd_demo_sk")
	gender := columnar.NewStringBuilder("cd_gender")
	marital := columnar.NewStringBuilder("cd_marital_status")
	edu := columnar.NewStringBuilder("cd_education_status")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		gender.Append(genders[r.intn(len(genders))])
		marital.Append(maritals[r.intn(len(maritals))])
		edu.Append(educations[r.intn(len(educations))])
	}
	return columnar.MustNewTable("customer_demographics", sk.Build(), gender.Build(),
		marital.Build(), edu.Build())
}

func genHouseholdDemo(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("hd_demo_sk")
	income := columnar.NewInt64Builder("hd_income_band_sk")
	buy := columnar.NewStringBuilder("hd_buy_potential")
	dep := columnar.NewInt64Builder("hd_dep_count")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		income.Append(int64(r.intn(20)))
		buy.Append(buyPot[r.intn(len(buyPot))])
		dep.Append(int64(r.intn(10)))
	}
	return columnar.MustNewTable("household_demographics", sk.Build(), income.Build(),
		buy.Build(), dep.Build())
}

func genStore(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("s_store_sk")
	name := columnar.NewStringBuilder("s_store_name")
	state := columnar.NewStringBuilder("s_state")
	market := columnar.NewInt64Builder("s_market_id")
	sqft := columnar.NewInt64Builder("s_floor_space")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		name.Append(fmt.Sprintf("Store #%d", i+1))
		state.Append(states[r.intn(len(states))])
		market.Append(int64(r.rangeInt(1, 6)))
		sqft.Append(int64(r.rangeInt(5_000_000, 9_000_000)))
	}
	return columnar.MustNewTable("store", sk.Build(), name.Build(), state.Build(),
		market.Build(), sqft.Build())
}

func genPromotion(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("p_promo_sk")
	name := columnar.NewStringBuilder("p_promo_name")
	channel := columnar.NewStringBuilder("p_channel")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		name.Append(fmt.Sprintf("promo-%d", i))
		channel.Append([]string{"mail", "email", "tv", "radio", "event"}[r.intn(5)])
	}
	return columnar.MustNewTable("promotion", sk.Build(), name.Build(), channel.Build())
}

func genWarehouse(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("w_warehouse_sk")
	name := columnar.NewStringBuilder("w_warehouse_name")
	state := columnar.NewStringBuilder("w_state")
	sqft := columnar.NewInt64Builder("w_warehouse_sq_ft")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		name.Append(fmt.Sprintf("Warehouse %d", i+1))
		state.Append(states[r.intn(len(states))])
		sqft.Append(int64(r.rangeInt(50_000, 990_000)))
	}
	return columnar.MustNewTable("warehouse", sk.Build(), name.Build(), state.Build(), sqft.Build())
}

func genWebSite(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("web_site_sk")
	name := columnar.NewStringBuilder("web_name")
	class := columnar.NewStringBuilder("web_class")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		name.Append(fmt.Sprintf("site_%d", i))
		class.Append([]string{"Unknown", "business", "consumer"}[r.intn(3)])
	}
	return columnar.MustNewTable("web_site", sk.Build(), name.Build(), class.Build())
}

func genWebPage(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("wp_web_page_sk")
	typ := columnar.NewStringBuilder("wp_type")
	links := columnar.NewInt64Builder("wp_link_count")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		typ.Append([]string{"order", "feedback", "general", "protected", "welcome"}[r.intn(5)])
		links.Append(int64(r.rangeInt(2, 25)))
	}
	return columnar.MustNewTable("web_page", sk.Build(), typ.Build(), links.Build())
}

func genCallCenter(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("cc_call_center_sk")
	name := columnar.NewStringBuilder("cc_name")
	emp := columnar.NewInt64Builder("cc_employees")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		name.Append(fmt.Sprintf("call center %d", i+1))
		emp.Append(int64(r.rangeInt(50, 700)))
	}
	return columnar.MustNewTable("call_center", sk.Build(), name.Build(), emp.Build())
}

func genCatalogPage(n int, r *rng) *columnar.Table {
	sk := columnar.NewInt64Builder("cp_catalog_page_sk")
	cat := columnar.NewInt64Builder("cp_catalog_number")
	typ := columnar.NewStringBuilder("cp_type")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		cat.Append(int64(r.rangeInt(1, 20)))
		typ.Append([]string{"bi-annual", "quarterly", "monthly"}[r.intn(3)])
	}
	return columnar.MustNewTable("catalog_page", sk.Build(), cat.Build(), typ.Build())
}

func genShipMode(n int) *columnar.Table {
	sk := columnar.NewInt64Builder("sm_ship_mode_sk")
	typ := columnar.NewStringBuilder("sm_type")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		typ.Append(shipTypes[i%len(shipTypes)])
	}
	return columnar.MustNewTable("ship_mode", sk.Build(), typ.Build())
}

func genReason(n int) *columnar.Table {
	sk := columnar.NewInt64Builder("r_reason_sk")
	desc := columnar.NewStringBuilder("r_reason_desc")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		desc.Append(reasonsDesc[i%len(reasonsDesc)])
	}
	return columnar.MustNewTable("reason", sk.Build(), desc.Build())
}

func genIncomeBand(n int) *columnar.Table {
	sk := columnar.NewInt64Builder("ib_income_band_sk")
	lower := columnar.NewInt64Builder("ib_lower_bound")
	upper := columnar.NewInt64Builder("ib_upper_bound")
	for i := 0; i < n; i++ {
		sk.Append(int64(i))
		lower.Append(int64(i * 10000))
		upper.Append(int64((i+1)*10000 - 1))
	}
	return columnar.MustNewTable("income_band", sk.Build(), lower.Build(), upper.Build())
}

// --- facts ---

func genStoreSales(sz Sizes, r *rng) *columnar.Table {
	n := sz.StoreSales
	date := columnar.NewInt64Builder("ss_sold_date_sk")
	tm := columnar.NewInt64Builder("ss_sold_time_sk")
	item := columnar.NewInt64Builder("ss_item_sk")
	cust := columnar.NewInt64Builder("ss_customer_sk")
	store := columnar.NewInt64Builder("ss_store_sk")
	promo := columnar.NewInt64Builder("ss_promo_sk")
	ticket := columnar.NewInt64Builder("ss_ticket_number")
	qty := columnar.NewInt64Builder("ss_quantity")
	whole := columnar.NewFloat64Builder("ss_wholesale_cost")
	list := columnar.NewFloat64Builder("ss_list_price")
	sales := columnar.NewFloat64Builder("ss_sales_price")
	paid := columnar.NewFloat64Builder("ss_net_paid")
	profit := columnar.NewFloat64Builder("ss_net_profit")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		tm.Append(int64(r.intn(sz.TimeDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		if r.intn(50) == 0 {
			cust.AppendNull()
		} else {
			cust.Append(int64(r.zipfish(sz.Customer)))
		}
		store.Append(int64(r.intn(sz.Store)))
		promo.Append(int64(r.intn(sz.Promotion)))
		ticket.Append(int64(i / 4)) // ~4 line items per ticket
		q := r.rangeInt(1, 100)
		qty.Append(int64(q))
		w := float64(r.rangeInt(1, 100)) + 0.25
		l := w * (1.2 + r.float())
		s := l * (0.5 + r.float()/2)
		whole.Append(w)
		list.Append(l)
		sales.Append(s)
		paid.Append(s * float64(q))
		profit.Append((s - w) * float64(q))
	}
	return columnar.MustNewTable("store_sales", date.Build(), tm.Build(), item.Build(),
		cust.Build(), store.Build(), promo.Build(), ticket.Build(), qty.Build(),
		whole.Build(), list.Build(), sales.Build(), paid.Build(), profit.Build())
}

func genStoreReturns(sz Sizes, r *rng) *columnar.Table {
	n := sz.StoreReturns
	date := columnar.NewInt64Builder("sr_returned_date_sk")
	item := columnar.NewInt64Builder("sr_item_sk")
	cust := columnar.NewInt64Builder("sr_customer_sk")
	store := columnar.NewInt64Builder("sr_store_sk")
	reason := columnar.NewInt64Builder("sr_reason_sk")
	qty := columnar.NewInt64Builder("sr_return_quantity")
	amt := columnar.NewFloat64Builder("sr_return_amt")
	fee := columnar.NewFloat64Builder("sr_fee")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		cust.Append(int64(r.zipfish(sz.Customer)))
		store.Append(int64(r.intn(sz.Store)))
		reason.Append(int64(r.intn(sz.Reason)))
		q := r.rangeInt(1, 20)
		qty.Append(int64(q))
		amt.Append(float64(q) * (float64(r.rangeInt(1, 150)) + 0.75))
		fee.Append(float64(r.rangeInt(0, 100)))
	}
	return columnar.MustNewTable("store_returns", date.Build(), item.Build(), cust.Build(),
		store.Build(), reason.Build(), qty.Build(), amt.Build(), fee.Build())
}

func genCatalogSales(sz Sizes, r *rng) *columnar.Table {
	n := sz.CatalogSales
	date := columnar.NewInt64Builder("cs_sold_date_sk")
	item := columnar.NewInt64Builder("cs_item_sk")
	cust := columnar.NewInt64Builder("cs_bill_customer_sk")
	cc := columnar.NewInt64Builder("cs_call_center_sk")
	page := columnar.NewInt64Builder("cs_catalog_page_sk")
	ship := columnar.NewInt64Builder("cs_ship_mode_sk")
	wh := columnar.NewInt64Builder("cs_warehouse_sk")
	qty := columnar.NewInt64Builder("cs_quantity")
	price := columnar.NewFloat64Builder("cs_sales_price")
	paid := columnar.NewFloat64Builder("cs_net_paid")
	profit := columnar.NewFloat64Builder("cs_net_profit")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		cust.Append(int64(r.zipfish(sz.Customer)))
		cc.Append(int64(r.intn(sz.CallCenter)))
		page.Append(int64(r.intn(sz.CatalogPage)))
		ship.Append(int64(r.intn(sz.ShipMode)))
		wh.Append(int64(r.intn(sz.Warehouse)))
		q := r.rangeInt(1, 100)
		qty.Append(int64(q))
		s := float64(r.rangeInt(1, 300)) + 0.5
		price.Append(s)
		paid.Append(s * float64(q))
		profit.Append(s*float64(q)*0.3 - float64(r.rangeInt(0, 50)))
	}
	return columnar.MustNewTable("catalog_sales", date.Build(), item.Build(), cust.Build(),
		cc.Build(), page.Build(), ship.Build(), wh.Build(), qty.Build(),
		price.Build(), paid.Build(), profit.Build())
}

func genCatalogReturns(sz Sizes, r *rng) *columnar.Table {
	n := sz.CatalogReturns
	date := columnar.NewInt64Builder("cr_returned_date_sk")
	item := columnar.NewInt64Builder("cr_item_sk")
	cust := columnar.NewInt64Builder("cr_refunded_customer_sk")
	reason := columnar.NewInt64Builder("cr_reason_sk")
	qty := columnar.NewInt64Builder("cr_return_quantity")
	amt := columnar.NewFloat64Builder("cr_return_amount")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		cust.Append(int64(r.zipfish(sz.Customer)))
		reason.Append(int64(r.intn(sz.Reason)))
		q := r.rangeInt(1, 20)
		qty.Append(int64(q))
		amt.Append(float64(q) * (float64(r.rangeInt(1, 200)) + 0.33))
	}
	return columnar.MustNewTable("catalog_returns", date.Build(), item.Build(),
		cust.Build(), reason.Build(), qty.Build(), amt.Build())
}

func genWebSales(sz Sizes, r *rng) *columnar.Table {
	n := sz.WebSales
	date := columnar.NewInt64Builder("ws_sold_date_sk")
	item := columnar.NewInt64Builder("ws_item_sk")
	cust := columnar.NewInt64Builder("ws_bill_customer_sk")
	site := columnar.NewInt64Builder("ws_web_site_sk")
	page := columnar.NewInt64Builder("ws_web_page_sk")
	ship := columnar.NewInt64Builder("ws_ship_mode_sk")
	qty := columnar.NewInt64Builder("ws_quantity")
	price := columnar.NewFloat64Builder("ws_sales_price")
	paid := columnar.NewFloat64Builder("ws_net_paid")
	profit := columnar.NewFloat64Builder("ws_net_profit")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		cust.Append(int64(r.zipfish(sz.Customer)))
		site.Append(int64(r.intn(sz.WebSite)))
		page.Append(int64(r.intn(sz.WebPage)))
		ship.Append(int64(r.intn(sz.ShipMode)))
		q := r.rangeInt(1, 100)
		qty.Append(int64(q))
		s := float64(r.rangeInt(1, 300)) + 0.5
		price.Append(s)
		paid.Append(s * float64(q))
		profit.Append(s*float64(q)*0.25 - float64(r.rangeInt(0, 40)))
	}
	return columnar.MustNewTable("web_sales", date.Build(), item.Build(), cust.Build(),
		site.Build(), page.Build(), ship.Build(), qty.Build(), price.Build(),
		paid.Build(), profit.Build())
}

func genWebReturns(sz Sizes, r *rng) *columnar.Table {
	n := sz.WebReturns
	date := columnar.NewInt64Builder("wr_returned_date_sk")
	item := columnar.NewInt64Builder("wr_item_sk")
	cust := columnar.NewInt64Builder("wr_refunded_customer_sk")
	reason := columnar.NewInt64Builder("wr_reason_sk")
	qty := columnar.NewInt64Builder("wr_return_quantity")
	amt := columnar.NewFloat64Builder("wr_return_amt")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.zipfish(sz.Item)))
		cust.Append(int64(r.zipfish(sz.Customer)))
		reason.Append(int64(r.intn(sz.Reason)))
		q := r.rangeInt(1, 15)
		qty.Append(int64(q))
		amt.Append(float64(q) * (float64(r.rangeInt(1, 180)) + 0.5))
	}
	return columnar.MustNewTable("web_returns", date.Build(), item.Build(), cust.Build(),
		reason.Build(), qty.Build(), amt.Build())
}

func genInventory(sz Sizes, r *rng) *columnar.Table {
	n := sz.Inventory
	date := columnar.NewInt64Builder("inv_date_sk")
	item := columnar.NewInt64Builder("inv_item_sk")
	wh := columnar.NewInt64Builder("inv_warehouse_sk")
	qoh := columnar.NewInt64Builder("inv_quantity_on_hand")
	for i := 0; i < n; i++ {
		date.Append(int64(r.intn(sz.DateDim)))
		item.Append(int64(r.intn(sz.Item)))
		wh.Append(int64(r.intn(sz.Warehouse)))
		qoh.Append(int64(r.intn(1000)))
	}
	return columnar.MustNewTable("inventory", date.Build(), item.Build(), wh.Build(), qoh.Build())
}
