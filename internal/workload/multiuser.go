package workload

// UserMix describes a multi-user BD Insights run — the paper's "several
// modes with both single user and varying multi-user combinations using
// the Apache JMETER load driver". Each user belongs to one analyst class
// and cycles that class's queries.
type UserMix struct {
	// Simple is the number of Returns Dashboard Analyst users.
	Simple int
	// Intermediate is the number of Sales Report Analyst users.
	Intermediate int
	// Complex is the number of Data Scientist users.
	Complex int
	// QueriesPerUser bounds each user's stream length (0 = one full pass
	// over the user's class).
	QueriesPerUser int
}

// Users returns the total user count.
func (m UserMix) Users() int { return m.Simple + m.Intermediate + m.Complex }

// DefaultUserMix mirrors the workload's class proportions at ten users:
// seven dashboard analysts, two report analysts, one data scientist.
func DefaultUserMix() UserMix {
	return UserMix{Simple: 7, Intermediate: 2, Complex: 1, QueriesPerUser: 5}
}

// BDInsightsStreams builds one query stream per user. User k of a class
// starts at a different offset into the class's query list, so concurrent
// users are not lock-stepped on identical statements.
func BDInsightsStreams(mix UserMix) [][]Query {
	bd := BDInsights()
	return buildStreams([]classUsers{
		{mix.Simple, Filter(bd, Simple)},
		{mix.Intermediate, Filter(bd, Intermediate)},
		{mix.Complex, Filter(bd, Complex)},
	}, mix.QueriesPerUser)
}

type classUsers struct {
	count int
	pool  []Query
}

// buildStreams lays out per-user streams over each class pool. Users of
// the same class start stride queries apart; when the stride would share
// a factor with the pool size (making distinct users collide on the same
// start), it falls back to consecutive offsets, so any two users u < v
// with v-u < pool size are guaranteed different opening statements. An
// empty pool yields empty streams rather than panicking, keeping the
// one-stream-per-user shape for every mix.
func buildStreams(classes []classUsers, queriesPerUser int) [][]Query {
	var streams [][]Query
	for _, c := range classes {
		if len(c.pool) == 0 {
			for u := 0; u < c.count; u++ {
				streams = append(streams, []Query{})
			}
			continue
		}
		stride := 3
		if len(c.pool)%stride == 0 {
			stride = 1
		}
		for u := 0; u < c.count; u++ {
			n := queriesPerUser
			if n <= 0 || n > len(c.pool) {
				n = len(c.pool)
			}
			stream := make([]Query, 0, n)
			for i := 0; i < n; i++ {
				stream = append(stream, c.pool[(u*stride+i)%len(c.pool)])
			}
			streams = append(streams, stream)
		}
	}
	return streams
}
