// Package workload provides the evaluation substrate of Section 5: a
// TPC-DS-derived star schema (seven fact tables, seventeen dimension
// tables) with a deterministic data generator, plus programmatic
// reconstructions of the two IBM-internal benchmarks the paper runs —
// BD Insights (100 queries: 70 simple returns-dashboard, 25 intermediate
// sales-report, 5 complex data-scientist) and Cognos ROLAP (46 complex
// analytical queries, of which a dozen are flagged memory-heavy, matching
// the 12 that exceeded the K40's device memory).
//
// The original workloads are IBM-internal; the paper characterizes them
// statistically (schema family, query-class mix, operator emphasis), and
// the generator reproduces exactly those characteristics.
package workload

import (
	"fmt"

	"blugpu/internal/columnar"
)

// rng is a splitmix64 PRNG: fast, seedable, deterministic across
// platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// zipfish returns a skewed index in [0, n): a crude Zipf-ish skew that
// concentrates mass on small indices, the way retail sales concentrate on
// popular items.
func (r *rng) zipfish(n int) int {
	if n <= 1 {
		return 0
	}
	f := r.float()
	f = f * f // square the uniform: density ~ 1/(2*sqrt(x))
	return int(f * float64(n))
}

// Sizes fixes every table's row count for a scale factor.
type Sizes struct {
	StoreSales     int
	StoreReturns   int
	CatalogSales   int
	CatalogReturns int
	WebSales       int
	WebReturns     int
	Inventory      int

	DateDim       int
	TimeDim       int
	Item          int
	Customer      int
	CustomerAddr  int
	CustomerDemo  int
	HouseholdDemo int
	Store         int
	Promotion     int
	Warehouse     int
	WebSite       int
	WebPage       int
	CallCenter    int
	CatalogPage   int
	ShipMode      int
	Reason        int
	IncomeBand    int
}

// SizesFor returns the row counts at scale factor sf. sf=1 approximates a
// small TPC-DS instance; the paper's 100 GB corresponds to a much larger
// sf, which the cost model extrapolates to — benchmarks run at laptop
// scale and report modeled time.
func SizesFor(sf float64) Sizes {
	fact := func(base int) int {
		n := int(float64(base) * sf)
		if n < 100 {
			n = 100
		}
		return n
	}
	return Sizes{
		StoreSales:     fact(2_880_000),
		StoreReturns:   fact(288_000),
		CatalogSales:   fact(1_440_000),
		CatalogReturns: fact(144_000),
		WebSales:       fact(720_000),
		WebReturns:     fact(72_000),
		Inventory:      fact(260_000),

		DateDim:       1826, // five years
		TimeDim:       1440, // minutes of a day
		Item:          2000,
		Customer:      10000,
		CustomerAddr:  5000,
		CustomerDemo:  1920,
		HouseholdDemo: 144,
		Store:         12,
		Promotion:     30,
		Warehouse:     5,
		WebSite:       6,
		WebPage:       60,
		CallCenter:    6,
		CatalogPage:   100,
		ShipMode:      20,
		Reason:        35,
		IncomeBand:    20,
	}
}

// Dataset is a generated database instance.
type Dataset struct {
	SF     float64
	Sizes  Sizes
	Tables map[string]*columnar.Table
}

// Table returns a generated table by name, or nil.
func (d *Dataset) Table(name string) *columnar.Table { return d.Tables[name] }

// FactNames lists the seven fact tables.
func FactNames() []string {
	return []string{"store_sales", "store_returns", "catalog_sales",
		"catalog_returns", "web_sales", "web_returns", "inventory"}
}

// DimensionNames lists the seventeen dimension tables.
func DimensionNames() []string {
	return []string{"date_dim", "time_dim", "item", "customer",
		"customer_address", "customer_demographics", "household_demographics",
		"store", "promotion", "warehouse", "web_site", "web_page",
		"call_center", "catalog_page", "ship_mode", "reason", "income_band"}
}

// Generate builds the full dataset at scale factor sf, deterministically
// from seed.
func Generate(sf float64, seed uint64) *Dataset {
	sz := SizesFor(sf)
	d := &Dataset{SF: sf, Sizes: sz, Tables: map[string]*columnar.Table{}}
	r := newRNG(seed)

	d.Tables["date_dim"] = genDateDim(sz.DateDim)
	d.Tables["time_dim"] = genTimeDim(sz.TimeDim)
	d.Tables["item"] = genItem(sz.Item, r)
	d.Tables["customer"] = genCustomer(sz, r)
	d.Tables["customer_address"] = genCustomerAddress(sz.CustomerAddr, r)
	d.Tables["customer_demographics"] = genCustomerDemo(sz.CustomerDemo, r)
	d.Tables["household_demographics"] = genHouseholdDemo(sz.HouseholdDemo, r)
	d.Tables["store"] = genStore(sz.Store, r)
	d.Tables["promotion"] = genPromotion(sz.Promotion, r)
	d.Tables["warehouse"] = genWarehouse(sz.Warehouse, r)
	d.Tables["web_site"] = genWebSite(sz.WebSite, r)
	d.Tables["web_page"] = genWebPage(sz.WebPage, r)
	d.Tables["call_center"] = genCallCenter(sz.CallCenter, r)
	d.Tables["catalog_page"] = genCatalogPage(sz.CatalogPage, r)
	d.Tables["ship_mode"] = genShipMode(sz.ShipMode)
	d.Tables["reason"] = genReason(sz.Reason)
	d.Tables["income_band"] = genIncomeBand(sz.IncomeBand)

	d.Tables["store_sales"] = genStoreSales(sz, r)
	d.Tables["store_returns"] = genStoreReturns(sz, r)
	d.Tables["catalog_sales"] = genCatalogSales(sz, r)
	d.Tables["catalog_returns"] = genCatalogReturns(sz, r)
	d.Tables["web_sales"] = genWebSales(sz, r)
	d.Tables["web_returns"] = genWebReturns(sz, r)
	d.Tables["inventory"] = genInventory(sz, r)
	return d
}

// Registrar registers tables (implemented by engine.Engine).
type Registrar interface {
	Register(*columnar.Table) error
}

// RegisterAll registers every generated table with the engine.
func (d *Dataset) RegisterAll(reg Registrar) error {
	// Deterministic order: dims then facts.
	for _, n := range DimensionNames() {
		if err := reg.Register(d.Tables[n]); err != nil {
			return fmt.Errorf("workload: register %s: %w", n, err)
		}
	}
	for _, n := range FactNames() {
		if err := reg.Register(d.Tables[n]); err != nil {
			return fmt.Errorf("workload: register %s: %w", n, err)
		}
	}
	return nil
}

// TotalBytes estimates the dataset's in-memory size.
func (d *Dataset) TotalBytes() int64 {
	var b int64
	for _, t := range d.Tables {
		b += t.SizeBytes()
	}
	return b
}
