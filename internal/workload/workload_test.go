package workload

import (
	"fmt"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/engine"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(0.003, 42)
}

func TestGenerateShapes(t *testing.T) {
	d := smallDataset(t)
	if len(d.Tables) != 24 {
		t.Fatalf("tables = %d, want 24 (7 facts + 17 dims)", len(d.Tables))
	}
	for _, n := range append(FactNames(), DimensionNames()...) {
		tbl := d.Table(n)
		if tbl == nil {
			t.Fatalf("missing table %s", n)
		}
		if tbl.Rows() == 0 {
			t.Errorf("table %s is empty", n)
		}
	}
	ss := d.Table("store_sales")
	if ss.Rows() != SizesFor(0.003).StoreSales {
		t.Errorf("store_sales rows = %d", ss.Rows())
	}
	// Foreign keys must be within dimension ranges.
	storeCol := ss.Column("ss_store_sk").(*columnar.Int64Column)
	for i := 0; i < ss.Rows(); i++ {
		if sk := storeCol.Int64(i); sk < 0 || sk >= int64(d.Sizes.Store) {
			t.Fatalf("ss_store_sk out of range: %d", sk)
		}
	}
	if d.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	ta := a.Table("store_sales").Column("ss_net_paid").(*columnar.Float64Column)
	tb := b.Table("store_sales").Column("ss_net_paid").(*columnar.Float64Column)
	for i := 0; i < ta.Len(); i++ {
		if ta.Float64(i) != tb.Float64(i) {
			t.Fatalf("same seed diverged at row %d", i)
		}
	}
	c := Generate(0.001, 8)
	tc := c.Table("store_sales").Column("ss_net_paid").(*columnar.Float64Column)
	same := true
	for i := 0; i < ta.Len() && i < 100; i++ {
		if ta.Float64(i) != tc.Float64(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestQuerySetShapes(t *testing.T) {
	bd := BDInsights()
	if len(bd) != 100 {
		t.Fatalf("BD Insights = %d queries, want 100", len(bd))
	}
	if n := len(Filter(bd, Simple)); n != 70 {
		t.Errorf("simple = %d, want 70", n)
	}
	if n := len(Filter(bd, Intermediate)); n != 25 {
		t.Errorf("intermediate = %d, want 25", n)
	}
	if n := len(Filter(bd, Complex)); n != 5 {
		t.Errorf("complex = %d, want 5", n)
	}
	rolap := CognosROLAP()
	if len(rolap) != 46 {
		t.Fatalf("ROLAP = %d queries, want 46", len(rolap))
	}
	heavy := 0
	for _, q := range rolap {
		if q.MemoryHeavy {
			heavy++
		}
	}
	if heavy != 12 {
		t.Errorf("memory-heavy ROLAP queries = %d, want 12", heavy)
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, q := range append(bd, rolap...) {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestThreadGroups(t *testing.T) {
	groups := MixedThreadGroups()
	if len(groups) != 5 {
		t.Fatalf("thread groups = %d, want 5", len(groups))
	}
	users := 0
	for _, g := range groups {
		users += g.Threads
		if len(g.Queries) == 0 {
			t.Errorf("group %s has no queries", g.Name)
		}
	}
	if users != 10 {
		t.Errorf("total users = %d, want 10", users)
	}
}

// TestAllQueriesExecute is the workload's functional gate: every BD
// Insights and ROLAP query must parse, plan and run on the engine.
func TestAllQueriesExecute(t *testing.T) {
	d := smallDataset(t)
	e, err := engine.New(engine.Config{Devices: 2, Degree: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAll(e); err != nil {
		t.Fatal(err)
	}
	all := append(BDInsights(), CognosROLAP()...)
	for _, g := range MixedThreadGroups() {
		all = append(all, g.Queries...)
	}
	for _, q := range all {
		res, err := e.Query(q.SQL)
		if err != nil {
			t.Errorf("%s failed: %v\nSQL: %s", q.ID, err, q.SQL)
			continue
		}
		if res.Modeled <= 0 {
			t.Errorf("%s: no modeled time", q.ID)
		}
	}
}

func TestRegisterAllDuplicate(t *testing.T) {
	d := smallDataset(t)
	e, _ := engine.New(engine.Config{})
	if err := d.RegisterAll(e); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAll(e); err == nil {
		t.Error("double registration should fail")
	}
}

func TestRNGDistribution(t *testing.T) {
	r := newRNG(1)
	counts := make([]int, 10)
	for i := 0; i < 100_000; i++ {
		counts[r.intn(10)]++
	}
	for b, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("bucket %d = %d, want ~10000", b, c)
		}
	}
	// zipfish concentrates on low indices.
	z := newRNG(2)
	low := 0
	for i := 0; i < 10_000; i++ {
		if z.zipfish(1000) < 250 {
			low++
		}
	}
	if low < 4000 {
		t.Errorf("zipfish low-quartile share = %d/10000, want skewed", low)
	}
}

func TestMultiUserStreams(t *testing.T) {
	mix := DefaultUserMix()
	if mix.Users() != 10 {
		t.Fatalf("default users = %d, want 10", mix.Users())
	}
	streams := BDInsightsStreams(mix)
	if len(streams) != 10 {
		t.Fatalf("streams = %d", len(streams))
	}
	// First seven streams are simple-class, then two intermediate, one complex.
	for i, s := range streams {
		var want Class
		switch {
		case i < 7:
			want = Simple
		case i < 9:
			want = Intermediate
		default:
			want = Complex
		}
		if len(s) == 0 {
			t.Fatalf("stream %d empty", i)
		}
		for _, q := range s {
			if q.Class != want {
				t.Fatalf("stream %d has %s query %s, want %s", i, q.Class, q.ID, want)
			}
		}
	}
	// Users of the same class should not start on the same query.
	if streams[0][0].ID == streams[1][0].ID {
		t.Error("same-class users should be offset")
	}
	// Zero QueriesPerUser takes the whole class.
	full := BDInsightsStreams(UserMix{Complex: 1})
	if len(full[0]) != 5 {
		t.Errorf("full complex pass = %d queries, want 5", len(full[0]))
	}
}

func TestMultiUserConcurrentExecution(t *testing.T) {
	d := smallDataset(t)
	e, err := engine.New(engine.Config{Devices: 2, Degree: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAll(e); err != nil {
		t.Fatal(err)
	}
	mix := UserMix{Simple: 3, Intermediate: 2, Complex: 1, QueriesPerUser: 2}
	var streams []engine.Stream
	for _, qs := range BDInsightsStreams(mix) {
		var s engine.Stream
		for _, q := range qs {
			s = append(s, q.SQL)
		}
		streams = append(streams, s)
	}
	res, err := e.RunConcurrent(streams, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Res.Queries) != mix.Users()*2 {
		t.Errorf("simulated queries = %d, want %d", len(res.Res.Queries), mix.Users()*2)
	}
	if res.Res.Makespan <= 0 {
		t.Error("makespan missing")
	}
}

func TestStreamsZeroUserClasses(t *testing.T) {
	// A mix with empty classes still yields exactly one stream per user,
	// all of the populated class.
	streams := BDInsightsStreams(UserMix{Intermediate: 4, QueriesPerUser: 2})
	if len(streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(streams))
	}
	for i, s := range streams {
		if len(s) != 2 {
			t.Fatalf("stream %d has %d queries, want 2", i, len(s))
		}
		for _, q := range s {
			if q.Class != Intermediate {
				t.Fatalf("stream %d carries %s query %s", i, q.Class, q.ID)
			}
		}
	}
	if got := BDInsightsStreams(UserMix{}); len(got) != 0 {
		t.Fatalf("empty mix produced %d streams", len(got))
	}
}

func TestStreamsQueriesPerUserClamped(t *testing.T) {
	pool := Filter(BDInsights(), Complex)
	// Asking for more queries than the class pool clamps to one full pass
	// instead of repeating statements within a stream.
	streams := BDInsightsStreams(UserMix{Complex: 2, QueriesPerUser: len(pool) * 10})
	for i, s := range streams {
		if len(s) != len(pool) {
			t.Fatalf("stream %d = %d queries, want clamp to pool size %d", i, len(s), len(pool))
		}
		seen := map[string]bool{}
		for _, q := range s {
			if seen[q.ID] {
				t.Fatalf("stream %d repeats %s after clamping", i, q.ID)
			}
			seen[q.ID] = true
		}
	}
}

func TestStreamsNoLockStep(t *testing.T) {
	// Any two same-class users closer together than the pool size must
	// open with different statements — including pool sizes divisible by
	// the offset stride, where the old fixed stride collided.
	for _, poolLen := range []int{3, 5, 6, 9, 10} {
		pool := make([]Query, poolLen)
		for i := range pool {
			pool[i] = Query{ID: fmt.Sprintf("q%d", i), Class: Simple, SQL: "SELECT 1"}
		}
		streams := buildStreams([]classUsers{{count: poolLen, pool: pool}}, 1)
		starts := map[string]int{}
		for u, s := range streams {
			if prev, dup := starts[s[0].ID]; dup {
				t.Fatalf("pool %d: users %d and %d lock-step on %s", poolLen, prev, u, s[0].ID)
			}
			starts[s[0].ID] = u
		}
	}
}

func TestStreamsEmptyPoolSafe(t *testing.T) {
	// An empty class pool must not panic on the modulo; users of that
	// class get empty streams so stream count still matches user count.
	streams := buildStreams([]classUsers{
		{count: 3, pool: nil},
		{count: 1, pool: []Query{{ID: "only", Class: Simple, SQL: "SELECT 1"}}},
	}, 2)
	if len(streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(streams))
	}
	for i := 0; i < 3; i++ {
		if len(streams[i]) != 0 {
			t.Fatalf("empty-pool stream %d has %d queries", i, len(streams[i]))
		}
	}
	if len(streams[3]) != 1 || streams[3][0].ID != "only" {
		t.Fatalf("populated stream wrong: %+v", streams[3])
	}
}
