package workload

import "fmt"

// Class labels a query's BD Insights user class.
type Class string

// Query classes.
const (
	// Simple: Returns Dashboard Analysts — short, narrow range, one fact
	// table (paper: avg ~150 ms; never sent to the GPU).
	Simple Class = "simple"
	// Intermediate: Sales Report Analysts — moderate complexity, broader
	// data range (paper: avg ~30 s; little GPU headroom).
	Intermediate Class = "intermediate"
	// Complex: Data Scientists — long-running, complicated constructs
	// over large or full ranges (paper: ~20% GPU gain).
	Complex Class = "complex"
)

// Query is one benchmark query.
type Query struct {
	ID    string
	Class Class
	SQL   string
	// MemoryHeavy marks the ROLAP queries whose device-memory demand
	// exceeded the K40 in the paper (12 of 46).
	MemoryHeavy bool
	// UsesGPUOps reports whether the query contains the operations the
	// prototype offloads (group by / aggregation / sort).
	UsesGPUOps bool
}

// BDInsights returns the 100-query BD Insights workload: 70 simple, 25
// intermediate, 5 complex, mirroring the paper's class mix.
func BDInsights() []Query {
	var qs []Query

	// --- 70 simple: returns-dashboard probes. Narrow date windows over a
	// fact table; cheap aggregates or plain selections.
	simpleTemplates := []func(i int) string{
		func(i int) string {
			lo := (i * 37) % 1700
			return fmt.Sprintf(`SELECT sr_store_sk, SUM(sr_return_amt) AS total_ret, COUNT(*) AS cnt
FROM store_returns WHERE sr_returned_date_sk BETWEEN %d AND %d
GROUP BY sr_store_sk ORDER BY total_ret DESC LIMIT 10`, lo, lo+30)
		},
		func(i int) string {
			lo := (i * 53) % 1700
			return fmt.Sprintf(`SELECT sr_reason_sk, COUNT(*) AS cnt, AVG(sr_return_amt) AS avg_amt
FROM store_returns WHERE sr_returned_date_sk BETWEEN %d AND %d
GROUP BY sr_reason_sk ORDER BY cnt DESC LIMIT 5`, lo, lo+14)
		},
		func(i int) string {
			amt := 100 + (i*29)%2000
			return fmt.Sprintf(`SELECT sr_item_sk, sr_return_amt, sr_return_quantity
FROM store_returns WHERE sr_return_amt > %d LIMIT 100`, amt)
		},
		func(i int) string {
			lo := (i * 41) % 1700
			return fmt.Sprintf(`SELECT wr_reason_sk, SUM(wr_return_amt) AS amt, COUNT(*) AS cnt
FROM web_returns WHERE wr_returned_date_sk BETWEEN %d AND %d
GROUP BY wr_reason_sk ORDER BY amt DESC LIMIT 8`, lo, lo+21)
		},
		func(i int) string {
			lo := (i * 61) % 1700
			return fmt.Sprintf(`SELECT cr_reason_sk, SUM(cr_return_amount) AS amt
FROM catalog_returns WHERE cr_returned_date_sk BETWEEN %d AND %d
GROUP BY cr_reason_sk ORDER BY amt DESC LIMIT 8`, lo, lo+21)
		},
		func(i int) string {
			q := 1 + (i*7)%15
			return fmt.Sprintf(`SELECT sr_customer_sk, sr_return_amt FROM store_returns
WHERE sr_return_quantity = %d AND sr_return_amt > 500 LIMIT 50`, q)
		},
		func(i int) string {
			lo := (i * 47) % 1700
			return fmt.Sprintf(`SELECT r_reason_desc, COUNT(*) AS cnt
FROM store_returns JOIN reason ON sr_reason_sk = r_reason_sk
WHERE sr_returned_date_sk BETWEEN %d AND %d
GROUP BY r_reason_desc ORDER BY cnt DESC LIMIT 5`, lo, lo+7)
		},
	}
	for i := 0; i < 70; i++ {
		sql := simpleTemplates[i%len(simpleTemplates)](i)
		qs = append(qs, Query{
			ID:    fmt.Sprintf("bd-simple-%02d", i+1),
			Class: Simple,
			SQL:   sql,
		})
	}

	// --- 25 intermediate: sales reports over fact + 1-2 dimensions.
	interTemplates := []func(i int) string{
		func(i int) string {
			year := 2000 + i%5
			return fmt.Sprintf(`SELECT d_moy, SUM(ss_net_paid) AS revenue, SUM(ss_net_profit) AS profit
FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk
WHERE d_year = %d GROUP BY d_moy ORDER BY revenue DESC`, year)
		},
		func(i int) string {
			return fmt.Sprintf(`SELECT i_category, SUM(cs_net_paid) AS rev, COUNT(*) AS cnt
FROM catalog_sales JOIN item ON cs_item_sk = i_item_sk
WHERE cs_quantity BETWEEN %d AND %d
GROUP BY i_category ORDER BY rev DESC LIMIT 10`, 1+i%20, 40+i%40)
		},
		func(i int) string {
			year := 2000 + i%5
			return fmt.Sprintf(`SELECT s_state, d_qoy, SUM(ss_net_paid) AS rev, AVG(ss_quantity) AS avg_qty
FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk
JOIN store ON ss_store_sk = s_store_sk
WHERE d_year = %d GROUP BY s_state, d_qoy ORDER BY rev DESC`, year)
		},
		func(i int) string {
			return fmt.Sprintf(`SELECT web_name, SUM(ws_net_paid) AS rev, COUNT(*) AS orders
FROM web_sales JOIN web_site ON ws_web_site_sk = web_site_sk
WHERE ws_quantity > %d GROUP BY web_name ORDER BY rev DESC`, 5+i%30)
		},
		func(i int) string {
			return fmt.Sprintf(`SELECT i_brand, MIN(ss_sales_price) AS mn, MAX(ss_sales_price) AS mx, AVG(ss_sales_price) AS av
FROM store_sales JOIN item ON ss_item_sk = i_item_sk
WHERE ss_quantity BETWEEN %d AND %d
GROUP BY i_brand ORDER BY av DESC LIMIT 12`, 1+i%10, 50+i%50)
		},
	}
	for i := 0; i < 25; i++ {
		sql := interTemplates[i%len(interTemplates)](i)
		qs = append(qs, Query{
			ID:         fmt.Sprintf("bd-inter-%02d", i+1),
			Class:      Intermediate,
			SQL:        sql,
			UsesGPUOps: true,
		})
	}

	// --- 5 complex: deep-dive analytics with multi-joins, wide grouping
	// sets, sorting and RANK.
	complexSQL := []string{
		// C1: category/brand/month revenue cube with ranking.
		`SELECT i_category, i_brand, d_moy, SUM(ss_net_paid) AS rev, SUM(ss_net_profit) AS profit,
  AVG(ss_quantity) AS aq, RANK() OVER (ORDER BY rev DESC) AS rnk
FROM store_sales JOIN item ON ss_item_sk = i_item_sk
JOIN date_dim ON ss_sold_date_sk = d_date_sk
GROUP BY i_category, i_brand, d_moy ORDER BY rnk LIMIT 100`,
		// C2: per-customer spend distribution (high-cardinality grouping).
		`SELECT ss_customer_sk, SUM(ss_net_paid) AS spend, COUNT(*) AS trips,
  MAX(ss_net_paid) AS biggest
FROM store_sales WHERE ss_customer_sk IS NOT NULL
GROUP BY ss_customer_sk ORDER BY spend DESC LIMIT 200`,
		// C3: store x category profitability with many aggregates.
		`SELECT s_store_name, i_category, SUM(ss_net_profit) AS profit, SUM(ss_net_paid) AS rev,
  MIN(ss_net_profit) AS worst, MAX(ss_net_profit) AS best, AVG(ss_sales_price) AS asp, COUNT(*) AS cnt
FROM store_sales JOIN store ON ss_store_sk = s_store_sk
JOIN item ON ss_item_sk = i_item_sk
GROUP BY s_store_name, i_category ORDER BY profit DESC`,
		// C4: catalog vs demographic deep dive.
		`SELECT cd_education_status, cd_marital_status, SUM(cs_net_paid) AS rev, AVG(cs_quantity) AS aq
FROM catalog_sales JOIN customer ON cs_bill_customer_sk = c_customer_sk
JOIN customer_demographics ON c_current_cdemo_sk = cd_demo_sk
GROUP BY cd_education_status, cd_marital_status ORDER BY rev DESC`,
		// C5: web conversion funnel by site and quarter, ranked.
		`SELECT web_name, d_qoy, SUM(ws_net_paid) AS rev, COUNT(*) AS orders,
  RANK() OVER (PARTITION BY web_name ORDER BY rev DESC) AS qrank
FROM web_sales JOIN web_site ON ws_web_site_sk = web_site_sk
JOIN date_dim ON ws_sold_date_sk = d_date_sk
GROUP BY web_name, d_qoy ORDER BY rev DESC`,
	}
	for i, sql := range complexSQL {
		qs = append(qs, Query{
			ID:         fmt.Sprintf("bd-complex-%d", i+1),
			Class:      Complex,
			SQL:        sql,
			UsesGPUOps: true,
		})
	}
	return qs
}

// CognosROLAP returns the 46-query Cognos ROLAP workload: complex
// analytical queries mixing join, group by and sort, some driving SORT
// through RANK(). Twelve are memory-heavy (high-cardinality grouping over
// the largest fact), matching the 12 the paper could not fit on the K40.
func CognosROLAP() []Query {
	var qs []Query
	add := func(sql string, heavy bool) {
		qs = append(qs, Query{
			ID:          fmt.Sprintf("rolap-q%02d", len(qs)+1),
			Class:       Complex,
			SQL:         sql,
			MemoryHeavy: heavy,
			UsesGPUOps:  true,
		})
	}

	// 34 device-friendly analytical queries from 7 parametrized shapes.
	for i := 0; i < 34; i++ {
		switch i % 7 {
		case 0:
			add(fmt.Sprintf(`SELECT i_category, d_year, SUM(ss_net_paid) AS rev, COUNT(*) AS cnt
FROM store_sales JOIN item ON ss_item_sk = i_item_sk
JOIN date_dim ON ss_sold_date_sk = d_date_sk
WHERE d_year = %d GROUP BY i_category, d_year ORDER BY rev DESC`, 2000+i%5), false)
		case 1:
			add(fmt.Sprintf(`SELECT s_state, SUM(ss_net_profit) AS profit, AVG(ss_sales_price) AS asp
FROM store_sales JOIN store ON ss_store_sk = s_store_sk
WHERE ss_quantity BETWEEN %d AND %d
GROUP BY s_state ORDER BY profit DESC`, 1+i, 60+i), false)
		case 2:
			add(fmt.Sprintf(`SELECT i_brand, i_class, SUM(cs_net_paid) AS rev, MAX(cs_net_profit) AS best
FROM catalog_sales JOIN item ON cs_item_sk = i_item_sk
WHERE cs_quantity > %d
GROUP BY i_brand, i_class ORDER BY rev DESC LIMIT 50`, i%25), false)
		case 3:
			add(fmt.Sprintf(`SELECT d_moy, sm_type, SUM(ws_net_paid) AS rev,
  RANK() OVER (PARTITION BY sm_type ORDER BY rev DESC) AS rnk
FROM web_sales JOIN date_dim ON ws_sold_date_sk = d_date_sk
JOIN ship_mode ON ws_ship_mode_sk = sm_ship_mode_sk
WHERE d_year = %d GROUP BY d_moy, sm_type ORDER BY rnk LIMIT 60`, 2000+i%5), false)
		case 4:
			add(fmt.Sprintf(`SELECT ca_state, SUM(cs_net_paid) AS rev, COUNT(*) AS cnt, AVG(cs_quantity) AS aq
FROM catalog_sales JOIN customer ON cs_bill_customer_sk = c_customer_sk
JOIN customer_address ON c_current_addr_sk = ca_address_sk
WHERE cs_sales_price > %d GROUP BY ca_state ORDER BY rev DESC`, 10+i*3), false)
		case 5:
			add(fmt.Sprintf(`SELECT t_shift, d_dow, SUM(ss_net_paid) AS rev, COUNT(*) AS baskets
FROM store_sales JOIN time_dim ON ss_sold_time_sk = t_time_sk
JOIN date_dim ON ss_sold_date_sk = d_date_sk
WHERE d_year = %d GROUP BY t_shift, d_dow ORDER BY rev DESC`, 2000+i%5), false)
		case 6:
			add(fmt.Sprintf(`SELECT hd_buy_potential, SUM(ss_net_paid) AS rev, AVG(ss_quantity) AS aq,
  RANK() OVER (ORDER BY rev DESC) AS rnk
FROM store_sales JOIN customer ON ss_customer_sk = c_customer_sk
JOIN household_demographics ON c_current_hdemo_sk = hd_demo_sk
WHERE ss_quantity > %d GROUP BY hd_buy_potential ORDER BY rnk`, i%20), false)
		}
	}

	// 12 memory-heavy: grouping on the highest-cardinality keys over the
	// biggest fact — the class whose device-memory demand exceeded the
	// 12 GB K40 in the paper.
	for i := 0; i < 12; i++ {
		switch i % 3 {
		case 0:
			add(fmt.Sprintf(`SELECT ss_ticket_number, SUM(ss_net_paid) AS basket, COUNT(*) AS items,
  MIN(ss_sales_price) AS mn, MAX(ss_sales_price) AS mx
FROM store_sales WHERE ss_quantity > %d
GROUP BY ss_ticket_number ORDER BY basket DESC LIMIT 100`, i), true)
		case 1:
			add(fmt.Sprintf(`SELECT ss_customer_sk, ss_item_sk, SUM(ss_net_paid) AS spend, COUNT(*) AS cnt
FROM store_sales WHERE ss_customer_sk IS NOT NULL AND ss_quantity > %d
GROUP BY ss_customer_sk, ss_item_sk ORDER BY spend DESC LIMIT 100`, i), true)
		case 2:
			add(fmt.Sprintf(`SELECT cs_bill_customer_sk, SUM(cs_net_paid) AS spend, AVG(cs_quantity) AS aq,
  MAX(cs_net_profit) AS best, MIN(cs_net_profit) AS worst, COUNT(*) AS cnt
FROM catalog_sales WHERE cs_quantity > %d
GROUP BY cs_bill_customer_sk ORDER BY spend DESC LIMIT 100`, i), true)
		}
	}
	return qs
}

// ThreadGroup is one JMeter-style group: Threads concurrent users each
// running Queries back to back.
type ThreadGroup struct {
	Name    string
	Threads int
	Queries []Query
}

// MixedThreadGroups reconstructs the Section 5.3 concurrent test: five
// thread groups of two threads (10 users). Three groups pair a
// GPU-moderate ROLAP complex query with a BD simple query; the fourth
// runs BD complex Q1 and Q3 plus a simple query; the fifth runs two
// hand-written queries that group by and sort a very large grouping set
// ("as many groups as there are rows").
func MixedThreadGroups() []ThreadGroup {
	bd := BDInsights()
	rolap := CognosROLAP()
	byID := func(qs []Query, id string) Query {
		for _, q := range qs {
			if q.ID == id {
				return q
			}
		}
		panic("workload: unknown query id " + id)
	}

	handwritten := []Query{
		{
			ID: "hand-1", Class: Complex, UsesGPUOps: true,
			SQL: `SELECT ss_ticket_number, ss_item_sk, SUM(ss_net_paid) AS paid, SUM(ss_quantity) AS q
FROM store_sales GROUP BY ss_ticket_number, ss_item_sk ORDER BY paid DESC LIMIT 50`,
		},
		{
			ID: "hand-2", Class: Complex, UsesGPUOps: true,
			SQL: `SELECT ss_customer_sk, ss_sold_date_sk, SUM(ss_net_profit) AS profit, COUNT(*) AS cnt
FROM store_sales WHERE ss_customer_sk IS NOT NULL
GROUP BY ss_customer_sk, ss_sold_date_sk ORDER BY profit DESC LIMIT 50`,
		},
	}

	return []ThreadGroup{
		{Name: "rolap-moderate-1", Threads: 2, Queries: []Query{byID(rolap, "rolap-q01"), byID(bd, "bd-simple-01")}},
		{Name: "rolap-moderate-2", Threads: 2, Queries: []Query{byID(rolap, "rolap-q02"), byID(bd, "bd-simple-02")}},
		{Name: "rolap-moderate-3", Threads: 2, Queries: []Query{byID(rolap, "rolap-q04"), byID(bd, "bd-simple-03")}},
		{Name: "bd-complex", Threads: 2, Queries: []Query{byID(bd, "bd-complex-1"), byID(bd, "bd-complex-3"), byID(bd, "bd-simple-04")}},
		{Name: "gpu-heavy", Threads: 2, Queries: handwritten},
	}
}

// Filter returns the queries of one class.
func Filter(qs []Query, c Class) []Query {
	var out []Query
	for _, q := range qs {
		if q.Class == c {
			out = append(out, q)
		}
	}
	return out
}
