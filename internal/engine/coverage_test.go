package engine

import (
	"strings"
	"sync"
	"testing"

	"blugpu/internal/columnar"
	"blugpu/internal/vtime"
)

func TestEngineAccessors(t *testing.T) {
	e := newTestEngine(t, 50)
	names := e.TableNames()
	if len(names) != 2 {
		t.Errorf("tables = %v", names)
	}
	if e.Monitor() == nil {
		t.Error("Monitor missing")
	}
	if len(e.Devices()) != 2 || e.Scheduler() == nil {
		t.Error("device plumbing missing")
	}
	// CPU-only engine has no scheduler.
	cpu, _ := New(Config{})
	if cpu.Scheduler() != nil || len(cpu.Devices()) != 0 || cpu.GPUEnabled() {
		t.Error("CPU-only engine should expose no devices")
	}
	cpu.SetGPUEnabled(true) // no-op without devices
	if cpu.GPUEnabled() {
		t.Error("enabling GPU without devices must stay off")
	}
}

func TestQueryParseAndPlanErrors(t *testing.T) {
	e := newTestEngine(t, 10)
	if _, err := e.Query("NOT SQL AT ALL"); err == nil {
		t.Error("parse errors should surface")
	}
	if _, err := e.Query("SELECT s_qty, SUM(s_qty) FROM sales"); err == nil {
		t.Error("plan errors should surface")
	}
}

func TestStringProjectionAndRename(t *testing.T) {
	e := newTestEngine(t, 50)
	// Project a string column under an alias: exercises renameColumn.
	res, err := e.Query("SELECT st_name AS store_name, st_region FROM stores LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "store_name" {
		t.Errorf("columns = %v", res.Columns)
	}
	col := res.Table.Column("store_name")
	if col == nil || col.Type() != columnar.String {
		t.Error("renamed string column missing")
	}
}

func TestComputedStringColumnPath(t *testing.T) {
	// evalToColumn's string branch: a string literal projection.
	e := newTestEngine(t, 10)
	res, err := e.Query("SELECT 'fixed' AS tag, s_qty FROM sales LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Column("tag").Value(0).S != "fixed" {
		t.Error("string literal projection broken")
	}
}

func TestComputedFloatColumn(t *testing.T) {
	e := newTestEngine(t, 10)
	res, err := e.Query("SELECT s_price * 2.0 AS dbl FROM sales LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	c := res.Table.Column("dbl").(*columnar.Float64Column)
	base := e.Table("sales").Column("s_price").(*columnar.Float64Column)
	for i := 0; i < 3; i++ {
		if c.Float64(i) != base.Float64(i)*2 {
			t.Errorf("dbl[%d] = %v", i, c.Float64(i))
		}
	}
}

func TestSortUnknownColumn(t *testing.T) {
	e := newTestEngine(t, 10)
	if _, err := e.Query("SELECT s_qty FROM sales ORDER BY s_qty, s_missing"); err == nil {
		t.Error("unknown sort column should error")
	}
}

func TestWindowWithPartition(t *testing.T) {
	e := newTestEngine(t, 600)
	res, err := e.Query(`SELECT s_store_sk, s_month, SUM(s_qty) AS total,
		RANK() OVER (PARTITION BY s_store_sk ORDER BY total DESC) AS rnk
		FROM sales GROUP BY s_store_sk, s_month ORDER BY s_store_sk, rnk`)
	if err != nil {
		t.Fatal(err)
	}
	store := res.Table.Column("s_store_sk").(*columnar.Int64Column)
	rnk := res.Table.Column("rnk").(*columnar.Int64Column)
	tot := res.Table.Column("total").(*columnar.Int64Column)
	for i := 0; i < res.Table.Rows(); i++ {
		if i == 0 || store.Int64(i) != store.Int64(i-1) {
			if rnk.Int64(i) != 1 {
				t.Fatalf("partition start rank = %d at row %d", rnk.Int64(i), i)
			}
			continue
		}
		if tot.Int64(i) > tot.Int64(i-1) {
			t.Fatalf("rank order violated inside partition at row %d", i)
		}
	}
}

func TestLimitLargerThanResult(t *testing.T) {
	e := newTestEngine(t, 5)
	res, err := e.Query("SELECT s_qty FROM sales LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 5 {
		t.Errorf("rows = %d, want all 5", res.Table.Rows())
	}
}

func TestBusyFleetFallsBackToCPU(t *testing.T) {
	// Fill both devices; the aggregate must fall back to the CPU rather
	// than fail.
	e := newTestEngine(t, 120_000)
	r0, err := e.Devices()[0].Reserve(e.Devices()[0].TotalMemory())
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Release()
	r1, err := e.Devices()[1].Reserve(e.Devices()[1].TotalMemory())
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Release()
	res, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS t FROM sales GROUP BY s_month, s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUUsed {
		t.Error("busy fleet must force the CPU path")
	}
	var reason string
	for _, op := range res.Ops {
		if op.Op == "groupby" {
			reason = op.Detail
		}
	}
	if !strings.HasPrefix(reason, "cpu") {
		t.Errorf("groupby detail = %q", reason)
	}
}

func TestRaceConfigEndToEnd(t *testing.T) {
	e, err := New(Config{Devices: 1, Degree: 8, Race: true})
	if err != nil {
		t.Fatal(err)
	}
	k := columnar.NewInt64Builder("k")
	v := columnar.NewInt64Builder("v")
	for i := 0; i < 120_000; i++ {
		k.Append(int64(i % 12))
		v.Append(int64(i % 7))
	}
	if err := e.Register(columnar.MustNewTable("t", k.Build(), v.Build())); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT k, SUM(v) AS s FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if !res.GPUUsed || res.Table.Rows() != 12 {
		t.Errorf("raced query: gpu=%v rows=%d", res.GPUUsed, res.Table.Rows())
	}
}

func TestMergePhases(t *testing.T) {
	e := newTestEngine(t, 120_000)
	res, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS t FROM sales GROUP BY s_month, s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent CPU phases must be coalesced: no two consecutive CPU
	// phases with the same parallelism cap.
	ph := res.Profile.Phases
	for i := 1; i < len(ph); i++ {
		if ph[i].Kind == ph[i-1].Kind && ph[i].Kind == 0 && ph[i].MaxPar == ph[i-1].MaxPar {
			t.Fatalf("unmerged CPU phases at %d: %+v", i, ph)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Degree != 24 || e.cfg.PinnedBytes != 512<<20 {
		t.Errorf("defaults: %+v", e.cfg)
	}
	if e.cfg.Model == nil {
		t.Error("model default missing")
	}
	if e.maxDeviceMem() != 0 {
		t.Error("no devices -> zero device memory")
	}
	_ = vtime.Default()
}

func TestRunConcurrent(t *testing.T) {
	e := newTestEngine(t, 120_000)
	big := "SELECT s_month, s_store_sk, SUM(s_qty) AS t FROM sales GROUP BY s_month, s_store_sk"
	small := "SELECT s_month, COUNT(*) AS c FROM sales GROUP BY s_month"
	streams := []Stream{{big, small}, {big, small}, {big}}
	on, err := e.RunConcurrent(streams, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Res.Queries) != 5 {
		t.Fatalf("queries simulated = %d, want 5", len(on.Res.Queries))
	}
	if len(on.Profiles) != 2 {
		t.Errorf("distinct profiles = %d, want 2", len(on.Profiles))
	}
	e.SetGPUEnabled(false)
	off, err := e.RunConcurrent(streams, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetGPUEnabled(true)
	if on.Res.Makespan >= off.Res.Makespan {
		t.Errorf("offloaded concurrent run (%v) should beat CPU-only (%v)",
			on.Res.Makespan, off.Res.Makespan)
	}
	// Memory series from the DES shows the big query's reservations.
	var peak int64
	for _, series := range on.Res.MemSeries {
		for _, s := range series {
			if s.Used > peak {
				peak = s.Used
			}
		}
	}
	if peak <= 0 {
		t.Error("concurrent run should show device-memory usage")
	}
	if _, err := e.RunConcurrent(nil, 0); err == nil {
		t.Error("empty streams should error")
	}
	if _, err := e.RunConcurrent([]Stream{{"BAD SQL"}}, 0); err == nil {
		t.Error("bad SQL should surface from profiling")
	}
}

func TestMonitorMemSamplesFromEngine(t *testing.T) {
	e := newTestEngine(t, 120_000)
	if _, err := e.Query("SELECT s_month, s_store_sk, SUM(s_qty) AS t FROM sales GROUP BY s_month, s_store_sk"); err != nil {
		t.Fatal(err)
	}
	devs := e.Monitor().Devices()
	if len(devs) == 0 {
		t.Fatal("engine GPU run should record memory samples")
	}
	series := e.Monitor().MemSeries(devs[0])
	if len(series) < 2 || series[0].Used <= 0 || series[len(series)-1].Used != 0 {
		t.Errorf("memory series should spike and drain: %+v", series)
	}
}

func TestExplain(t *testing.T) {
	e := newTestEngine(t, 120_000)
	out, err := e.Explain("SELECT s_month, SUM(s_qty) AS t FROM sales GROUP BY s_month ORDER BY t DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan:", "aggregate", "groupby keys=[s_month]", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// The 12-group estimate should keep this query GPU-eligible.
	if !strings.Contains(out, "gpu") && !strings.Contains(out, "cpu") {
		t.Errorf("explain should state a path:\n%s", out)
	}
	if _, err := e.Explain("NOT SQL"); err == nil {
		t.Error("explain should surface parse errors")
	}
	if _, err := e.Explain("SELECT x FROM sales GROUP BY"); err == nil {
		t.Error("explain should surface plan errors")
	}
}

func TestConcurrentQueriesSafe(t *testing.T) {
	// Multiple goroutines may issue queries against one engine (the
	// monitor, registry and devices are internally synchronized); only
	// SetGPUEnabled must not race with queries.
	e := newTestEngine(t, 60_000)
	queries := []string{
		"SELECT s_month, SUM(s_qty) AS t FROM sales GROUP BY s_month",
		"SELECT s_store_sk, COUNT(*) AS c FROM sales GROUP BY s_store_sk ORDER BY c DESC",
		"SELECT s_qty, s_price FROM sales WHERE s_qty > 3 LIMIT 50",
		"SELECT st_region, AVG(s_price) AS ap FROM sales JOIN stores ON s_store_sk = st_store_sk GROUP BY st_region",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
