package engine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blugpu/internal/explain"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test ./internal/engine -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run -update after reviewing)\n--- got ---\n%s", name, got)
	}
}

// TestExplainPlanGolden byte-locks the static EXPLAIN output (plan tree
// plus the optimizer's group-by prognosis) so the rendering cannot
// drift silently.
func TestExplainPlanGolden(t *testing.T) {
	e := newTestEngine(t, 120_000)
	out, err := e.Explain("SELECT s_month, SUM(s_qty) AS t FROM sales GROUP BY s_month ORDER BY t DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "explain_plan.golden", []byte(out))
}

// TestExplainAnalyzeGolden byte-locks the EXPLAIN ANALYZE text and JSON
// renders of a fixed GPU-eligible query. The report contains only
// quantized virtual-time values and deterministically ordered counters,
// so repeated runs — and reviewed golden updates — are byte-identical.
func TestExplainAnalyzeGolden(t *testing.T) {
	e := newTestEngine(t, 120_000)
	const sql = "SELECT s_store_sk, SUM(s_qty) AS t, AVG(s_price) AS ap FROM sales GROUP BY s_store_sk ORDER BY t DESC LIMIT 5"
	// Warmup settles allocator fragmentation history (MaxFreeSpans) and
	// the per-device fusion column cache so the locked run sees steady
	// state: two runs warm both devices (placement alternates while the
	// caches are lopsided), after which every run is a full cache hit on
	// the same device.
	for i := 0; i < 2; i++ {
		if _, err := e.ExplainAnalyze(sql); err != nil {
			t.Fatal(err)
		}
	}
	rep, _, err := e.ExplainAnalyzeNamed("qa", sql)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconciled() {
		t.Fatalf("golden query must reconcile: unattributed=%d orphans=%d mismatches=%v",
			rep.Unattributed, rep.Orphans, rep.Totals.Mismatches)
	}
	golden(t, "explain_analyze.golden", []byte(rep.Text()))
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := explain.ValidateReport(js); err != nil {
		t.Fatalf("golden JSON must validate: %v", err)
	}
	golden(t, "explain_analyze.json.golden", js)

	// And the render must be reproducible live, not just against the
	// committed file: a third run renders byte-identically.
	rep2, _, err := e.ExplainAnalyzeNamed("qa", sql)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Text() != rep.Text() {
		t.Error("text render differs between consecutive runs")
	}
	js2, _ := rep2.JSON()
	if !bytes.Equal(js, js2) {
		t.Error("JSON render differs between consecutive runs")
	}
}

// TestExplainAnalyzeReconciliation is the acceptance check: per-operator
// virtual time telescopes exactly across the query, and the span-tree
// evidence sums to the monitor's counter deltas.
func TestExplainAnalyzeReconciliation(t *testing.T) {
	e := newTestEngine(t, 120_000)
	const sql = "SELECT s_month, SUM(s_qty) AS t, COUNT(*) AS c FROM sales WHERE s_qty > 1 GROUP BY s_month ORDER BY t DESC"
	rep, res, err := e.ExplainAnalyzeNamed("recon", sql)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconciled() {
		t.Fatalf("not reconciled: unattributed=%d orphans=%d mismatches=%v",
			rep.Unattributed, rep.Orphans, rep.Totals.Mismatches)
	}
	if res.Table.Rows() != rep.Rows {
		t.Errorf("report rows %d != result rows %d", rep.Rows, res.Table.Rows())
	}

	// Per-operator span tallies must sum exactly to the query totals.
	var kernels, transfers, fallbacks, retries int
	var bytesSum int64
	for _, op := range rep.Ops {
		kernels += op.Kernels
		transfers += op.Transfers
		bytesSum += op.TransferBytes
		fallbacks += op.Fallbacks
		retries += op.Retries
	}
	if uint64(kernels) != rep.Totals.Kernels || kernels != rep.Totals.KernelSpans {
		t.Errorf("kernel sum %d != totals %d/%d", kernels, rep.Totals.Kernels, rep.Totals.KernelSpans)
	}
	if uint64(transfers) != rep.Totals.Transfers || bytesSum != rep.Totals.TransferBytes {
		t.Errorf("transfer sum %d (%d B) != totals %d (%d B)",
			transfers, bytesSum, rep.Totals.Transfers, rep.Totals.TransferBytes)
	}
	if uint64(fallbacks) != rep.Totals.Fallbacks || uint64(retries) != rep.Totals.Retries {
		t.Errorf("degradation sums retry=%d fallback=%d != totals retry=%d fallback=%d",
			retries, fallbacks, rep.Totals.Retries, rep.Totals.Fallbacks)
	}

	// The group-by audit must hold the estimate-accountability numbers.
	var gb *explain.GroupbyReport
	for _, op := range rep.Ops {
		if op.Groupby != nil {
			gb = op.Groupby
		}
	}
	if gb == nil {
		t.Fatal("no group-by audit in report")
	}
	if gb.EstGroups <= 0 || gb.ActualGroups != 12 {
		t.Errorf("estimate accountability: kmv~%d actual=%d", gb.EstGroups, gb.ActualGroups)
	}
	if gb.Plan == nil {
		t.Error("group-by audit missing plan-time prognosis")
	}
	if gb.Decision == "" || gb.Reason == "" || gb.Path == "" {
		t.Errorf("group-by audit incomplete: %+v", gb)
	}

	// Modeled time telescopes: operator self times sum to the query's
	// modeled duration (vtime includes retry backoff; with no faults the
	// two agree), up to the rendering quantum per operator.
	var selfSum float64
	for _, op := range rep.Ops {
		selfSum += op.SelfMs
	}
	if diff := selfSum - rep.ModeledMs; diff > 1e-6*float64(len(rep.Ops)) || diff < -1e-6*float64(len(rep.Ops)) {
		t.Errorf("self-time sum %.9f ms != modeled %.9f ms", selfSum, rep.ModeledMs)
	}

	// KMV accountability must have reached the monitor histogram.
	if k := e.Monitor().KMVError(); k.Count == 0 {
		t.Error("KMV relative error not recorded in monitor")
	}
	if len(e.Monitor().Decisions()) == 0 {
		t.Error("optimizer decision not recorded in monitor")
	}
}

// TestExplainAnalyzeFallbackAudit forces a CPU fallback (no devices)
// and checks the audit reports the degradation honestly.
func TestExplainAnalyzeCPUPath(t *testing.T) {
	e := newTestEngine(t, 120_000)
	e.SetGPUEnabled(false)
	rep, _, err := e.ExplainAnalyzeNamed("cpu-path", "SELECT s_month, SUM(s_qty) AS t FROM sales GROUP BY s_month")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconciled() {
		t.Fatalf("CPU-only run must reconcile: %v", rep.Totals.Mismatches)
	}
	if rep.GPUEnabled {
		t.Error("report must show gpu off")
	}
	var gb *explain.GroupbyReport
	for _, op := range rep.Ops {
		if op.Groupby != nil {
			gb = op.Groupby
		}
	}
	if gb == nil || gb.Decision != "cpu" || gb.Reason != "no-device" {
		t.Fatalf("CPU-only group-by must decide cpu (no-device): %+v", gb)
	}
	// The prognosis sees the same fleet state, so plan and runtime agree.
	if gb.Plan == nil || !gb.Plan.Agrees {
		t.Errorf("plan and runtime both see no devices and must agree, got %+v", gb.Plan)
	}
	if rep.Totals.Kernels != 0 || rep.Memory.DeviceHighWaterBytes != 0 {
		t.Error("CPU-only run must show zero device work")
	}
}

// TestExplainAnalyzeErrors covers parse and plan failures.
func TestExplainAnalyzeErrors(t *testing.T) {
	e := newTestEngine(t, 100)
	if _, err := e.ExplainAnalyze("NOT SQL"); err == nil {
		t.Error("parse error must surface")
	}
	if _, _, err := e.ExplainAnalyzeNamed("x", "SELECT nope FROM sales GROUP BY"); err == nil {
		t.Error("plan error must surface")
	}
	if _, err := e.ExplainAnalyze("SELECT missing_col FROM sales"); err == nil {
		t.Error("execution error must surface")
	}
	// After an error with no tracer pre-attached, the temporary tracer
	// must have been detached again.
	if e.Tracer() != nil {
		t.Error("temporary tracer leaked after error")
	}
}

// TestExplainAnalyzeSortAudit checks the job-queue breakdown reaches
// the report and matches the span-side job count.
func TestExplainAnalyzeSortAudit(t *testing.T) {
	e := newTestEngine(t, 120_000)
	rep, _, err := e.ExplainAnalyzeNamed("sorted", "SELECT s_store_sk, s_price FROM sales ORDER BY s_price DESC LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconciled() {
		t.Fatalf("sort query must reconcile: %v", rep.Totals.Mismatches)
	}
	var srt *explain.SortReport
	for _, op := range rep.Ops {
		if op.Sort != nil {
			srt = op.Sort
		}
	}
	if srt == nil {
		t.Fatal("no sort audit in report")
	}
	// Every job drains on exactly one path; requeued duplicate ranges
	// re-enter the queue and are counted again when they drain.
	if srt.Jobs == 0 || srt.Jobs != srt.GPUJobs+srt.CPUJobs {
		t.Errorf("job accounting: %+v", srt)
	}
	if srt.JobSpans != srt.Jobs {
		t.Errorf("span-side job count %d != engine-side %d", srt.JobSpans, srt.Jobs)
	}
}
