package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"blugpu/internal/columnar"
	"blugpu/internal/trace"
)

// countdownCtx is a context.Context whose Err() flips to Canceled after
// a fixed number of checks. It lets the cancellation tests hit every
// operator-boundary check deterministically: run once counting the
// checks, then sweep cancel-at-k over each of them. Done() returning a
// nil channel is legal per the context contract ("Done may return nil
// if this context can never be canceled") — the engine only polls Err.
type countdownCtx struct {
	remaining int // cancel once this many Err() calls have happened; <0 = never
	checks    int
}

func (c *countdownCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}             { return nil }
func (c *countdownCtx) Value(key interface{}) interface{} { return nil }
func (c *countdownCtx) Err() error {
	c.checks++
	if c.remaining >= 0 && c.checks > c.remaining {
		return context.Canceled
	}
	return nil
}

// newCancelTestEngine mirrors newTestEngine but disables fusion: the
// fusion cache legitimately holds device reservations across queries, so
// only a fusion-free engine can assert that a canceled query leaves
// every device and the host registry completely clean.
func newCancelTestEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	e, err := New(Config{Devices: 2, Degree: 8, NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	sk := columnar.NewInt64Builder("s_store_sk")
	month := columnar.NewInt64Builder("s_month")
	qty := columnar.NewInt64Builder("s_qty")
	price := columnar.NewFloat64Builder("s_price")
	for i := 0; i < rows; i++ {
		sk.Append(int64(i % 10))
		month.Append(int64(i%12 + 1))
		qty.Append(int64(i%7 + 1))
		price.Append(float64(i%100) + 0.5)
	}
	sales := columnar.MustNewTable("sales", sk.Build(), month.Build(), qty.Build(), price.Build())
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	dk := columnar.NewInt64Builder("st_store_sk")
	region := columnar.NewStringBuilder("st_region")
	for i := 0; i < 10; i++ {
		dk.Append(int64(i))
		if i%2 == 0 {
			region.Append("east")
		} else {
			region.Append("west")
		}
	}
	stores := columnar.MustNewTable("stores", dk.Build(), region.Build())
	if err := e.Register(stores); err != nil {
		t.Fatal(err)
	}
	return e
}

func assertClean(t *testing.T, e *Engine, when string) {
	t.Helper()
	if inUse := e.registry.InUse(); inUse != 0 {
		t.Errorf("%s: host registry holds %d bytes, want 0", when, inUse)
	}
	for _, d := range e.Devices() {
		if d.FreeMemory() != d.TotalMemory() {
			t.Errorf("%s: device %d holds %d reserved bytes, want 0",
				when, d.ID(), d.TotalMemory()-d.FreeMemory())
		}
	}
}

// TestQueryCtxCancellation sweeps cancellation across every operator
// boundary of a deep plan (scan→filter→derive→join→group-by→sort→limit)
// and proves each cut point (a) surfaces context.Canceled, (b) never
// CPU-falls-back into a completed result, and (c) releases every host
// and device reservation on unwind.
func TestQueryCtxCancellation(t *testing.T) {
	const sql = `SELECT st_region, SUM(s_qty) AS total, AVG(s_price) AS avgp
		FROM sales JOIN stores ON s_store_sk = st_store_sk
		WHERE s_month <= 6 GROUP BY st_region ORDER BY st_region LIMIT 5`

	// Pass 1: count the cancellation checks this plan performs.
	e := newCancelTestEngine(t, 4000)
	probe := &countdownCtx{remaining: -1}
	if _, err := e.QueryCtx(probe, sql); err != nil {
		t.Fatal(err)
	}
	total := probe.checks
	if total < 8 {
		t.Fatalf("expected at least one check per operator boundary, got %d", total)
	}
	assertClean(t, e, "after clean run")

	// Pass 2: cancel at every check point, each on a fresh engine so a
	// leaked reservation cannot hide behind an earlier run's.
	for k := 0; k < total; k++ {
		e := newCancelTestEngine(t, 4000)
		res, err := e.QueryCtx(&countdownCtx{remaining: k}, sql)
		if err == nil {
			t.Fatalf("cancel at check %d/%d: query completed, want cancellation", k, total)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at check %d/%d: error %v does not wrap context.Canceled", k, total, err)
		}
		if !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("cancel at check %d/%d: error %q should say canceled", k, total, err)
		}
		if res != nil {
			t.Fatalf("cancel at check %d/%d: got a result alongside the error", k, total)
		}
		assertClean(t, e, "after canceled run")
	}
}

// TestQueryCtxPreCanceled proves an already-canceled context stops the
// query before any operator runs.
func TestQueryCtxPreCanceled(t *testing.T) {
	e := newCancelTestEngine(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryCtx(ctx, "SELECT s_month FROM sales WHERE s_month = 3"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query returned %v, want context.Canceled", err)
	}
	assertClean(t, e, "after pre-canceled query")
}

// TestQueryCtxDeadline proves deadline expiry surfaces as
// context.DeadlineExceeded through the same path.
func TestQueryCtxDeadline(t *testing.T) {
	e := newCancelTestEngine(t, 100)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.QueryCtx(ctx, "SELECT s_month FROM sales WHERE s_month = 3"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired query returned %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryCtxBackgroundUnchanged pins that the ctx-free entry points
// still work and that a canceled sibling does not disturb them.
func TestQueryCtxBackgroundUnchanged(t *testing.T) {
	e := newCancelTestEngine(t, 2000)
	const sql = "SELECT s_month, SUM(s_qty) AS total FROM sales GROUP BY s_month"
	want, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryCtx(ctx, sql); err == nil {
		t.Fatal("canceled query should error")
	}
	got, err := e.QueryCtx(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if want.Table.Rows() != got.Table.Rows() {
		t.Fatalf("rows %d != %d after canceled sibling", got.Table.Rows(), want.Table.Rows())
	}
}

// TestQueryNamedCtxAttrs proves serve-layer admission attributes land on
// the query root span.
func TestQueryNamedCtxAttrs(t *testing.T) {
	e := newCancelTestEngine(t, 500)
	tr := trace.New()
	e.SetTracer(tr)
	_, err := e.QueryNamedCtxAttrs(context.Background(), "attributed",
		"SELECT s_month FROM sales WHERE s_month = 3",
		trace.Str("serve.class", "simple"), trace.Int("serve.wait_us", 42))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sp := range tr.Spans() {
		if sp.Cat != "query" || sp.Name != "attributed" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "serve.class" && a.Str == "simple" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("serve.class attribute not found on query root span")
	}
}
